module dupserve

go 1.22
