// Incremental-propagation integration: memoized fragment assembly must be
// byte-for-byte indistinguishable from full recursive re-rendering across a
// seeded update burst, and the consistency auditor must find zero
// incoherent pages in the assembled output.
package dupserve

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/odg"
	"dupserve/internal/site"
	"dupserve/internal/trigger"
)

type incrementalStack struct {
	master *db.DB
	site   *site.Site
	engine *core.Engine
	cache  *cache.Cache
	mon    *trigger.Monitor
}

func newIncrementalStack(t *testing.T, name string, fullReRender bool) *incrementalStack {
	t.Helper()
	master := db.New(name)
	graph := odg.New()
	c := cache.New(name)
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(graph, c, core.WithGenerator(gen))
	var err error
	st, err = site.Build(site.DefaultSpec(), master, engine)
	if err != nil {
		t.Fatal(err)
	}
	if fullReRender {
		st.Engine.SetFullReRender(true)
	} else {
		engine.SetAssembler(st.Engine)
	}
	if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	mon := trigger.New(trigger.Config{DB: master, Engine: engine},
		trigger.WithIndexer(st.Indexer), trigger.WithBatchWindow(0))
	if err := mon.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mon.Shutdown(context.Background()) })
	return &incrementalStack{master: master, site: st, engine: engine, cache: c, mon: mon}
}

// burst applies a deterministic update burst: partial standings, final
// results, and news stories across rng-chosen events.
func (s *incrementalStack) burst(t *testing.T, rng *rand.Rand, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		ev := s.site.Events[rng.Intn(len(s.site.Events))]
		switch rng.Intn(3) {
		case 0:
			p := ev.Participants[rng.Intn(len(ev.Participants))]
			if _, err := s.site.RecordPartial(ev, p, fmt.Sprintf("%d.%d", 100+rng.Intn(100), rng.Intn(10))); err != nil {
				t.Fatal(err)
			}
		case 1:
			g, sv, b := ev.Participants[0], ev.Participants[1], ev.Participants[2]
			if _, err := s.site.RecordResult(ev, g, sv, b, fmt.Sprintf("%d.%d", 200+rng.Intn(60), rng.Intn(10))); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := s.site.PublishNews(i, fmt.Sprintf("Story %d from %s", i, ev.Sport), "body"); err != nil {
				t.Fatal(err)
			}
		}
		s.mon.Flush()
	}
}

// TestAssemblyByteIdenticalToFullReRender runs the same seeded burst
// through an assembled stack and a full-re-render stack and requires every
// cached page to match byte for byte — memoization must never change
// output, only skip redundant work.
func TestAssemblyByteIdenticalToFullReRender(t *testing.T) {
	asm := newIncrementalStack(t, "asm", false)
	full := newIncrementalStack(t, "full", true)

	asm.burst(t, rand.New(rand.NewSource(42)), 30)
	full.burst(t, rand.New(rand.NewSource(42)), 30)

	st := asm.engine.Stats()
	if st.FragmentRenders == 0 {
		t.Fatal("assembled stack recorded no fragment renders across the burst")
	}
	if st.FragmentReuses == 0 {
		t.Fatal("assembled stack recorded no fragment reuses across the burst")
	}
	pages := asm.site.Pages()
	if len(pages) == 0 {
		t.Fatal("no pages")
	}
	diffs := 0
	for _, p := range pages {
		a, aok := asm.cache.Peek(cache.Key(p))
		f, fok := full.cache.Peek(cache.Key(p))
		if aok != fok {
			t.Fatalf("page %s cached=%v in assembled, cached=%v in full", p, aok, fok)
		}
		if !aok {
			continue
		}
		if !bytes.Equal(a.Value, f.Value) {
			diffs++
			if diffs <= 3 {
				t.Errorf("page %s diverged:\n  assembled: %.120q\n  full:      %.120q", p, a.Value, f.Value)
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d of %d pages diverged between assembly and full re-render", diffs, len(pages))
	}
}

// TestAssembledPagesAuditCoherent feeds every assembled page to the
// consistency auditor as a served sample: the shadow-render sweep must
// classify zero pages as incoherent.
func TestAssembledPagesAuditCoherent(t *testing.T) {
	s := newIncrementalStack(t, "audited", false)
	s.burst(t, rand.New(rand.NewSource(7)), 20)

	spec := site.DefaultSpec()
	aud := audit.New(audit.Config{
		Name:    "audited",
		Replica: s.master,
		Build: func(sdb *db.DB, sreg fragment.Registrar) (*fragment.Engine, []string, error) {
			rs, err := site.BuildReplica(spec, sdb, sreg)
			if err != nil {
				return nil, nil, err
			}
			return rs.Engine, rs.Pages(), nil
		},
		Indexer: func(ch db.Change) []odg.NodeID { return s.site.Indexer(ch) },
	})
	for _, p := range s.site.Pages() {
		obj, ok := s.cache.Peek(cache.Key(p))
		if !ok {
			continue
		}
		aud.Observe(httpserver.ResponseSample{Node: "n", Path: p,
			Outcome: httpserver.OutcomeHit, Object: obj})
	}
	rep, err := aud.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incoherent != 0 {
		t.Fatalf("auditor found %d incoherent assembled pages: %v", rep.Incoherent, rep.IncoherentPages)
	}
	if rep.Coherent == 0 {
		t.Fatal("auditor classified no pages as coherent")
	}
}
