package httpserver

import (
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/overload"
	"dupserve/internal/stats"
)

// TestResponseTapSeesEveryOutcome checks the tap fires once per response
// with the outcome and object the caller got.
func TestResponseTapSeesEveryOutcome(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	var got []ResponseSample
	s := New("n", c, okGen("x"), nil,
		WithResponseTap(func(smp ResponseSample) { got = append(got, smp) }))

	if _, out, err := s.Serve("/p"); err != nil || out != OutcomeMiss {
		t.Fatalf("first serve = %v %v", out, err)
	}
	if _, out, err := s.Serve("/p"); err != nil || out != OutcomeHit {
		t.Fatalf("second serve = %v %v", out, err)
	}
	if len(got) != 2 {
		t.Fatalf("tap fired %d times, want 2", len(got))
	}
	if got[0].Outcome != OutcomeMiss || got[1].Outcome != OutcomeHit {
		t.Fatalf("outcomes = %v, %v", got[0].Outcome, got[1].Outcome)
	}
	for i, smp := range got {
		if smp.Node != "n" || smp.Path != "/p" || smp.Object == nil {
			t.Fatalf("sample %d = %+v", i, smp)
		}
		if string(smp.Object.Value) != "x:/p" {
			t.Fatalf("sample %d body = %q", i, smp.Object.Value)
		}
	}
}

// TestResponseTapPerResponseStaleAge pins the satellite fix: a degraded
// response's StaleAge is the age of the copy actually served, not the
// node's high-water mark. Two pages invalidated at different times must
// report different — and correctly ordered — ages through the tap, and
// the second (younger) age must be below the first, which a high-water
// mark could never report.
func TestResponseTapPerResponseStaleAge(t *testing.T) {
	clk := &fakeTime{t: time.Unix(1000, 0)}
	c := cache.New("c", cache.WithStaleRetention(), cache.WithClock(clk.now))
	c.Put(&cache.Object{Key: "/old", Value: []byte("old"), Version: 1})
	c.Invalidate("/old") // stale copy born now
	clk.t = clk.t.Add(2 * time.Second)
	c.Put(&cache.Object{Key: "/young", Value: []byte("young"), Version: 1})
	c.Invalidate("/young") // stale copy born 2s later
	clk.t = clk.t.Add(3 * time.Second)

	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	var got []ResponseSample
	s := New("n", c, okGen("x"), nil,
		WithOverload(lim, time.Minute),
		WithResponseTap(func(smp ResponseSample) { got = append(got, smp) }))

	free := saturate(t, lim, 1)
	defer free()
	if _, out, err := s.Serve("/old"); err != nil || out != OutcomeStale {
		t.Fatalf("old serve = %v %v, want stale", out, err)
	}
	if _, out, err := s.Serve("/young"); err != nil || out != OutcomeStale {
		t.Fatalf("young serve = %v %v, want stale", out, err)
	}
	if _, out, _ := s.Serve("/missing"); out != OutcomeShed {
		t.Fatalf("missing serve = %v, want shed", out)
	}

	if len(got) != 3 {
		t.Fatalf("tap fired %d times, want 3", len(got))
	}
	if got[0].StaleAge != 5*time.Second {
		t.Fatalf("old age = %v, want 5s", got[0].StaleAge)
	}
	if got[1].StaleAge != 3*time.Second {
		t.Fatalf("young age = %v, want 3s (per-response, not the 5s high-water mark)", got[1].StaleAge)
	}
	if got[2].Outcome != OutcomeShed || got[2].Object != nil || got[2].StaleAge != 0 {
		t.Fatalf("shed sample = %+v", got[2])
	}

	// The per-response ages also feed the histogram metric.
	reg := stats.NewRegistry()
	s.RegisterMetrics(reg, nil)
	for _, fam := range reg.Snapshot() {
		if fam.Name == "served_stale_age_seconds" {
			return
		}
	}
	t.Fatal("served_stale_age_seconds histogram not registered")
}
