// Package httpserver implements the web-serving substrate (section 2 of the
// paper): a server that satisfies requests for dynamic pages cache-first,
// regenerating on miss via a persistent FastCGI-style server program.
//
// The paper's servers could serve cached dynamic pages "at roughly the same
// rates as static pages", but only because the CGI model — fork a process
// per request — was replaced with persistent server programs (FastCGI /
// NSAPI / ISAPI / ICAPI). The Server models both: its fast path is a
// direct in-process handler, and an optional per-request overhead hook
// reproduces the CGI cost for the E2 baseline benchmarks.
//
// Server doubles as the node model for the discrete-event simulation: the
// Serve method performs the full cache-first logic without any networking,
// and ServeHTTP wraps it for real sockets (cmd/olympicsd).
package httpserver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/obs"
	"dupserve/internal/overload"
	"dupserve/internal/stats"
)

// Outcome classifies how a request was satisfied.
type Outcome uint8

const (
	// OutcomeHit means the page was served from the cache.
	OutcomeHit Outcome = iota
	// OutcomeMiss means the page was generated on demand (and cached).
	OutcomeMiss
	// OutcomeStatic means the page came from the static store.
	OutcomeStatic
	// OutcomeNotFound means no static page and no generator route matched.
	OutcomeNotFound
	// OutcomeError means generation failed.
	OutcomeError
	// OutcomeStale means the node was overloaded and degraded to a
	// retained stale copy within its freshness budget instead of rendering.
	OutcomeStale
	// OutcomeShed means the node was overloaded and refused the request
	// (HTTP 503 + Retry-After); the caller should try another node.
	OutcomeShed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeStatic:
		return "static"
	case OutcomeNotFound:
		return "notfound"
	case OutcomeError:
		return "error"
	case OutcomeStale:
		return "stale"
	case OutcomeShed:
		return "shed"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// ErrNoRoute is returned by Serve for paths with neither static content nor
// a generator.
var ErrNoRoute = errors.New("httpserver: no route")

// ErrDraining is returned by Serve once Shutdown has begun: the node
// rejects new work (so the dispatcher's advisors pull it from the
// distribution list) while in-flight requests finish.
var ErrDraining = errors.New("httpserver: node draining")

// ErrOverloaded is returned (wrapping overload.ErrShed) when the node's
// admission controller refuses a render and no stale copy within the
// freshness budget exists. Unlike a node failure, an overloaded node is
// still healthy: dispatchers fail the request over without pulling the
// node from the pool.
var ErrOverloaded = errors.New("httpserver: node overloaded")

// VersionFunc reports the current data version (database LSN) so that pages
// generated on miss carry an accurate freshness stamp.
type VersionFunc func() int64

// Server is one serving node: a local cache in front of a page generator
// plus a static store. Safe for concurrent use.
type Server struct {
	name     string
	nameV    []string // []string{name}: ready-made X-Node header value
	cache    *cache.Cache
	gen      core.Generator
	version  VersionFunc
	overhead func() // simulated per-request invocation overhead (CGI fork)
	noCache  bool   // disable caching entirely (uncached-dynamic baseline)

	// Overload control: limiter gates renders on miss; staleBudget bounds
	// how old a degraded stale response may be. Both nil/zero without
	// WithOverload.
	limiter     *overload.Limiter
	staleBudget time.Duration

	mu     sync.RWMutex
	static map[string]*cache.Object

	// Lifecycle: the zero state is "running" so a Server works without
	// Start (the simulator constructs thousands and never drains them).
	draining atomic.Bool
	inflight atomic.Int64

	// tap observes responses for consistency auditing; nil without
	// WithResponseTap.
	tap ResponseTap

	// probe attributes database reads to render spans; nil without
	// WithReadProbe.
	probe *obs.ReadProbe

	requests    stats.Counter
	hits        stats.Counter
	misses      stats.Counter
	statics     stats.Counter
	notFound    stats.Counter
	errs        stats.Counter
	bytesOut    stats.Counter
	servedStale stats.Counter    // degraded responses from the stale side-table
	shed        stats.Counter    // requests refused with 503 under overload
	staleAgeMax stats.Gauge      // worst staleness ever served, microseconds
	staleAge    *stats.Histogram // per-response staleness of degraded serves, seconds
}

// ResponseSample describes one served response as seen by a ResponseTap:
// which node satisfied which path, how, with which bytes. Object is the
// served cache object (nil for OutcomeShed); StaleAge is the age of the
// retained copy for OutcomeStale and zero otherwise — the per-response age,
// not a high-water mark.
type ResponseSample struct {
	Node     string
	Path     string
	Outcome  Outcome
	Object   *cache.Object
	StaleAge time.Duration
}

// ResponseTap observes dynamic responses (hit, miss, stale, shed) as they
// are served. It runs on the request path, so it must be cheap; consistency
// auditors use it to sample served bytes for later shadow-render
// verification. Static, not-found and error outcomes are not tapped — they
// carry no cached dynamic content to audit.
type ResponseTap func(ResponseSample)

// WithResponseTap installs a response tap.
func WithResponseTap(tap ResponseTap) Option {
	return func(s *Server) { s.tap = tap }
}

// Option configures a Server.
type Option func(*Server)

// WithOverhead installs a hook executed once per dynamic request before any
// cache lookup, modeling per-invocation cost such as a CGI fork.
func WithOverhead(f func()) Option {
	return func(s *Server) { s.overhead = f }
}

// WithoutCache disables the page cache: every dynamic request regenerates.
// This is the uncached-dynamic baseline of the E2 experiment.
func WithoutCache() Option {
	return func(s *Server) { s.noCache = true }
}

// WithOverload installs admission control on the render path. Cache hits
// are always admitted — a hit costs no render capacity, which is exactly
// why the paper's caches made peak load survivable. On a miss the render
// passes through lim; when lim sheds, the node degrades to a retained
// stale copy no older than staleBudget if one exists (OutcomeStale), and
// only past that to OutcomeShed (503 + Retry-After). staleBudget <= 0
// disables the stale fallback, shedding immediately.
func WithOverload(lim *overload.Limiter, staleBudget time.Duration) Option {
	return func(s *Server) {
		s.limiter = lim
		s.staleBudget = staleBudget
	}
}

// WithReadProbe attributes database reads to serve spans: the probe's
// counter (installed on the serving replica via db.SetReadHook) is read
// before and after each render and the delta lands on the request's span as
// DBReads. Attribution is per-process — see obs.ReadProbe.
func WithReadProbe(p *obs.ReadProbe) Option {
	return func(s *Server) { s.probe = p }
}

// SpinOverhead returns an overhead hook that burns roughly n iterations of
// integer work, emulating CPU cost (a process fork, interpreter startup)
// without sleeping — so benchmarks account it as real work.
func SpinOverhead(n int) func() {
	return func() {
		x := uint64(88172645463325252)
		for i := 0; i < n; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if x == 0 { // never true; defeats dead-code elimination
			panic("xorshift reached zero")
		}
	}
}

// New returns a serving node. c is the node-local page cache (typically a
// member of the complex's cache.Group); gen regenerates dynamic pages on
// miss (nil means dynamic misses 404); version stamps generated pages.
func New(name string, c *cache.Cache, gen core.Generator, version VersionFunc, opts ...Option) *Server {
	if version == nil {
		version = func() int64 { return 0 }
	}
	s := &Server{
		name:    name,
		nameV:   []string{name},
		cache:   c,
		gen:     gen,
		version: version,
		static:  make(map[string]*cache.Object),
		// Bounds chosen around typical freshness budgets (seconds to the
		// paper's one-minute SLO).
		staleAge: stats.NewHistogram(0.001, 0.01, 0.1, 1, 5, 15, 60),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the node name.
func (s *Server) Name() string { return s.name }

// Cache returns the node-local cache.
func (s *Server) Cache() *cache.Cache { return s.cache }

// SetStatic installs a static page (served from the "file system", never
// cached or invalidated).
func (s *Server) SetStatic(path string, body []byte, contentType string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.static[path] = &cache.Object{Key: cache.Key(path), Value: body, ContentType: contentType}
}

// Start implements the uniform component lifecycle. A Server is passive —
// it holds no goroutines — so Start only clears any prior draining state,
// returning the node to service.
func (s *Server) Start(ctx context.Context) error {
	s.draining.Store(false)
	return nil
}

// Shutdown drains the node: new requests are rejected with ErrDraining
// (which the dispatcher treats as a node failure, pulling this node from
// the pool) while requests already in flight run to completion. ctx bounds
// the wait for in-flight work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for s.inflight.Load() > 0 {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return fmt.Errorf("httpserver: drain of %q: %w", s.name, ctx.Err())
			default:
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}

// Draining reports whether the node is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Ready is the synthetic health check dispatch advisors probe
// (dispatch.ReadyReporter): true unless the node is draining. Probing here
// instead of through Serve keeps advisor sweeps out of the request
// counters and span stream.
func (s *Server) Ready() bool { return !s.draining.Load() }

// Limiter returns the node's admission controller (nil without
// WithOverload).
func (s *Server) Limiter() *overload.Limiter { return s.limiter }

// LoadSignal reports the node's scalar load (see overload.Limiter.Load):
// 0 idle, ~1 fully busy, >1 queueing. Nodes without admission control
// report 0 — they never claim to be saturated, matching their unbounded
// legacy behaviour. Dispatch advisors consume this to steer work away from
// overloaded nodes before they start shedding.
func (s *Server) LoadSignal() float64 {
	if s.limiter == nil {
		return 0
	}
	return s.limiter.Load()
}

// Serve satisfies one request for path, returning the object and how it was
// satisfied. This is the transport-independent core used by both ServeHTTP
// and the simulator.
func (s *Server) Serve(path string) (*cache.Object, Outcome, error) {
	return s.ServeCtx(context.Background(), path)
}

// ServeCtx is Serve with a request context. When ctx carries a serve span
// (minted by the dispatcher; see obs.FromContext) the node stamps its stage
// boundaries — cache lookup, admission, render, stale fallback — and the
// observed LSN onto it. All span methods are nil-safe, so untraced requests
// pay only a context lookup.
func (s *Server) ServeCtx(ctx context.Context, path string) (*cache.Object, Outcome, error) {
	// Count in-flight before checking draining: Shutdown sets draining then
	// waits for inflight to hit zero, so this ordering guarantees it never
	// returns while a request that passed the check is still running.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.errs.Inc()
		return nil, OutcomeError, fmt.Errorf("%w: %q", ErrDraining, s.name)
	}
	s.requests.Inc()
	sp := obs.FromContext(ctx)

	s.mu.RLock()
	st, isStatic := s.static[path]
	s.mu.RUnlock()
	if isStatic {
		s.statics.Inc()
		s.bytesOut.Add(int64(len(st.Value)))
		return st, OutcomeStatic, nil
	}

	// Dynamic path: per-invocation overhead applies whether or not the
	// page is cached — it models invoking the server program at all.
	if s.overhead != nil {
		s.overhead()
	}

	if !s.noCache && s.cache != nil {
		obj, ok := s.cache.Get(cache.Key(path))
		sp.Stamp(obs.SpanLookup)
		if ok {
			s.hits.Inc()
			s.bytesOut.Add(int64(len(obj.Value)))
			sp.SetLSN(obj.Version)
			if s.tap != nil {
				s.tap(ResponseSample{Node: s.name, Path: path, Outcome: OutcomeHit, Object: obj})
			}
			return obj, OutcomeHit, nil
		}
	}

	if s.gen == nil {
		s.notFound.Inc()
		return nil, OutcomeNotFound, fmt.Errorf("%w: %q", ErrNoRoute, path)
	}

	// Miss: the render is the expensive part, so it alone passes through
	// admission control. A shed degrades to bounded staleness, then to 503.
	if s.limiter != nil {
		release, err := s.limiter.Acquire()
		if err != nil {
			return s.degrade(sp, path)
		}
		defer release()
		sp.Stamp(obs.SpanAdmit)
	}
	var readsBefore int64
	if s.probe != nil {
		readsBefore = s.probe.Count()
	}
	obj, err := s.gen(cache.Key(path), s.version())
	if s.probe != nil {
		sp.AddDBReads(s.probe.Count() - readsBefore)
	}
	sp.Stamp(obs.SpanRender)
	if err != nil {
		if errors.Is(err, ErrNoRoute) || isUnknownPage(err) {
			s.notFound.Inc()
			return nil, OutcomeNotFound, err
		}
		s.errs.Inc()
		return nil, OutcomeError, err
	}
	if !s.noCache && s.cache != nil {
		s.cache.Put(obj)
	}
	s.misses.Inc()
	s.bytesOut.Add(int64(len(obj.Value)))
	sp.SetLSN(obj.Version)
	if s.tap != nil {
		s.tap(ResponseSample{Node: s.name, Path: path, Outcome: OutcomeMiss, Object: obj})
	}
	return obj, OutcomeMiss, nil
}

// degrade handles a shed render: serve the invalidated entry's retained
// copy if it is within the freshness budget (stale-but-bounded beats a
// 503), otherwise refuse the request. GetStale enforces the budget itself,
// so a response can never be staler than staleBudget; staleAgeMax records
// the worst age actually served so the claim is measured, not assumed.
func (s *Server) degrade(sp *obs.Span, path string) (*cache.Object, Outcome, error) {
	if s.cache != nil && s.staleBudget > 0 {
		if obj, age, ok := s.cache.GetStale(cache.Key(path), s.staleBudget); ok {
			s.servedStale.Inc()
			s.staleAgeMax.Set(age.Microseconds()) // Max() keeps the worst ever served
			s.staleAge.Observe(age.Seconds())     // per-response distribution
			s.bytesOut.Add(int64(len(obj.Value)))
			sp.Stamp(obs.SpanStale)
			sp.SetLSN(obj.Version)
			if s.tap != nil {
				s.tap(ResponseSample{Node: s.name, Path: path, Outcome: OutcomeStale, Object: obj, StaleAge: age})
			}
			return obj, OutcomeStale, nil
		}
	}
	s.shed.Inc()
	if s.tap != nil {
		s.tap(ResponseSample{Node: s.name, Path: path, Outcome: OutcomeShed})
	}
	return nil, OutcomeShed, fmt.Errorf("%w: %q: %w", ErrOverloaded, s.name, overload.ErrShed)
}

// isUnknownPage sniffs generator "unknown page" errors without importing
// the fragment package (which would invert the layering). The fragment
// engine wraps its ErrUnknown with a message containing this marker.
func isUnknownPage(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown page")
}

// ETag derives the entity tag for a cached object from its version and
// size. Because DUP stamps every regenerated object with the LSN of the
// update that produced it, the tag changes exactly when the content does —
// conditional GETs ride the same freshness information the cache uses.
func ETag(obj *cache.Object) string {
	return fmt.Sprintf(`"v%d-%d"`, obj.Version, len(obj.Value))
}

// buildObjectHeaders formats an object's response-header material once; the
// result is memoized on the object (cache.Object.ResponseHeaders), so the
// per-request hit path only assigns ready-made slices into the header map.
func buildObjectHeaders(obj *cache.Object) *cache.ObjectHeaders {
	h := &cache.ObjectHeaders{
		ETag:    ETag(obj),
		Version: strconv.FormatInt(obj.Version, 10),
	}
	h.ETagV = []string{h.ETag}
	h.VersionV = []string{h.Version}
	if obj.ContentType != "" {
		h.ContentType = []string{obj.ContentType}
	}
	return h
}

// xCacheValue holds one ready-made header slice per outcome so the hit path
// never allocates to say how it served. Indexed by Outcome.
var xCacheValue = [...][]string{
	OutcomeHit:    {"hit"},
	OutcomeMiss:   {"miss"},
	OutcomeStatic: {"static"},
	OutcomeStale:  {"stale"},
}

// ServeHTTP implements http.Handler over Serve, with conditional-GET
// support: a matching If-None-Match yields 304 Not Modified with no body.
//
// The success path performs no heap allocation of its own: the entity tag
// and version strings are memoized on the cached object, and all header
// values are pre-built single-value slices assigned directly under their
// canonical keys (the spellings http.Header.Set would produce).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obj, outcome, err := s.Serve(r.URL.Path)
	switch outcome {
	case OutcomeNotFound:
		http.NotFound(w, r)
		return
	case OutcomeError:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	case OutcomeShed:
		// Overloaded and no bounded-stale fallback: tell the client (or
		// front-end dispatcher) to come back, not that the node is broken.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded, retry shortly", http.StatusServiceUnavailable)
		return
	}
	hdr := obj.ResponseHeaders(buildObjectHeaders)
	h := w.Header()
	h["Etag"] = hdr.ETagV
	h["X-Cache"] = xCacheValue[outcome]
	h["X-Version"] = hdr.VersionV
	h["X-Node"] = s.nameV
	if r.Header.Get("If-None-Match") == hdr.ETag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if hdr.ContentType != nil {
		h["Content-Type"] = hdr.ContentType
	}
	if _, err := w.Write(obj.Value); err != nil {
		// Client went away mid-write; nothing further to do.
		return
	}
}

// ServerStats snapshots a node's counters.
type ServerStats struct {
	Requests int64
	Hits     int64
	Misses   int64
	Statics  int64
	NotFound int64
	Errors   int64
	BytesOut int64
	// ServedStale counts degraded responses served from the stale
	// side-table under overload.
	ServedStale int64
	// Shed counts requests refused under overload (503 + Retry-After).
	Shed int64
	// StaleAgeMax is the worst staleness ever served, which the freshness
	// budget bounds.
	StaleAgeMax time.Duration
}

// HitRate returns hits/(hits+misses) over dynamic requests only.
func (s ServerStats) HitRate() float64 {
	d := s.Hits + s.Misses
	if d == 0 {
		return 0
	}
	return float64(s.Hits) / float64(d)
}

// Stats returns a snapshot of the node's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:    s.requests.Value(),
		Hits:        s.hits.Value(),
		Misses:      s.misses.Value(),
		Statics:     s.statics.Value(),
		NotFound:    s.notFound.Value(),
		Errors:      s.errs.Value(),
		BytesOut:    s.bytesOut.Value(),
		ServedStale: s.servedStale.Value(),
		Shed:        s.shed.Value(),
		StaleAgeMax: time.Duration(s.staleAgeMax.Max()) * time.Microsecond,
	}
}

// RegisterMetrics publishes the node's request counters into a registry
// under a node label (plus any extra labels).
func (s *Server) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	labels := stats.Labels{"node": s.name}
	for k, v := range extra {
		labels[k] = v
	}
	reg.RegisterCounter("http_requests_total", "requests served", labels, &s.requests)
	reg.RegisterCounter("http_cache_hits_total", "dynamic requests served from cache", labels, &s.hits)
	reg.RegisterCounter("http_cache_misses_total", "dynamic requests regenerated on miss", labels, &s.misses)
	reg.RegisterCounter("http_static_total", "static requests served", labels, &s.statics)
	reg.RegisterCounter("http_not_found_total", "requests with no route", labels, &s.notFound)
	reg.RegisterCounter("http_errors_total", "requests that failed generation", labels, &s.errs)
	reg.RegisterCounter("http_bytes_out_total", "response body bytes written", labels, &s.bytesOut)
	reg.RegisterCounter("served_stale_total",
		"responses degraded to a bounded-staleness copy under overload", labels, &s.servedStale)
	reg.RegisterCounter("shed_total",
		"requests refused under overload (503 + Retry-After)", labels, &s.shed)
	reg.RegisterFunc("served_stale_age_max_seconds",
		"worst staleness ever served; the freshness budget bounds it", labels,
		func() float64 { return float64(s.staleAgeMax.Max()) / 1e6 })
	reg.RegisterHistogram("served_stale_age_seconds",
		"per-response staleness of degraded responses", labels, s.staleAge)
	reg.RegisterFunc("http_hit_ratio", "dynamic hits/(hits+misses) since start", labels,
		func() float64 { return s.Stats().HitRate() })
	if s.limiter != nil {
		s.limiter.RegisterMetrics(reg, labels)
	}
}

// ResetStats zeroes the node's counters.
func (s *Server) ResetStats() {
	s.requests.Reset()
	s.hits.Reset()
	s.misses.Reset()
	s.statics.Reset()
	s.notFound.Reset()
	s.errs.Reset()
	s.bytesOut.Reset()
	s.servedStale.Reset()
	s.shed.Reset()
	s.staleAgeMax.Reset()
}
