// Package httpserver implements the web-serving substrate (section 2 of the
// paper): a server that satisfies requests for dynamic pages cache-first,
// regenerating on miss via a persistent FastCGI-style server program.
//
// The paper's servers could serve cached dynamic pages "at roughly the same
// rates as static pages", but only because the CGI model — fork a process
// per request — was replaced with persistent server programs (FastCGI /
// NSAPI / ISAPI / ICAPI). The Server models both: its fast path is a
// direct in-process handler, and an optional per-request overhead hook
// reproduces the CGI cost for the E2 baseline benchmarks.
//
// Server doubles as the node model for the discrete-event simulation: the
// Serve method performs the full cache-first logic without any networking,
// and ServeHTTP wraps it for real sockets (cmd/olympicsd).
package httpserver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/stats"
)

// Outcome classifies how a request was satisfied.
type Outcome uint8

const (
	// OutcomeHit means the page was served from the cache.
	OutcomeHit Outcome = iota
	// OutcomeMiss means the page was generated on demand (and cached).
	OutcomeMiss
	// OutcomeStatic means the page came from the static store.
	OutcomeStatic
	// OutcomeNotFound means no static page and no generator route matched.
	OutcomeNotFound
	// OutcomeError means generation failed.
	OutcomeError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeStatic:
		return "static"
	case OutcomeNotFound:
		return "notfound"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// ErrNoRoute is returned by Serve for paths with neither static content nor
// a generator.
var ErrNoRoute = errors.New("httpserver: no route")

// ErrDraining is returned by Serve once Shutdown has begun: the node
// rejects new work (so the dispatcher's advisors pull it from the
// distribution list) while in-flight requests finish.
var ErrDraining = errors.New("httpserver: node draining")

// VersionFunc reports the current data version (database LSN) so that pages
// generated on miss carry an accurate freshness stamp.
type VersionFunc func() int64

// Server is one serving node: a local cache in front of a page generator
// plus a static store. Safe for concurrent use.
type Server struct {
	name     string
	cache    *cache.Cache
	gen      core.Generator
	version  VersionFunc
	overhead func() // simulated per-request invocation overhead (CGI fork)
	noCache  bool   // disable caching entirely (uncached-dynamic baseline)

	mu     sync.RWMutex
	static map[string]*cache.Object

	// Lifecycle: the zero state is "running" so a Server works without
	// Start (the simulator constructs thousands and never drains them).
	draining atomic.Bool
	inflight atomic.Int64

	requests stats.Counter
	hits     stats.Counter
	misses   stats.Counter
	statics  stats.Counter
	notFound stats.Counter
	errs     stats.Counter
	bytesOut stats.Counter
}

// Option configures a Server.
type Option func(*Server)

// WithOverhead installs a hook executed once per dynamic request before any
// cache lookup, modeling per-invocation cost such as a CGI fork.
func WithOverhead(f func()) Option {
	return func(s *Server) { s.overhead = f }
}

// WithoutCache disables the page cache: every dynamic request regenerates.
// This is the uncached-dynamic baseline of the E2 experiment.
func WithoutCache() Option {
	return func(s *Server) { s.noCache = true }
}

// SpinOverhead returns an overhead hook that burns roughly n iterations of
// integer work, emulating CPU cost (a process fork, interpreter startup)
// without sleeping — so benchmarks account it as real work.
func SpinOverhead(n int) func() {
	return func() {
		x := uint64(88172645463325252)
		for i := 0; i < n; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if x == 0 { // never true; defeats dead-code elimination
			panic("xorshift reached zero")
		}
	}
}

// New returns a serving node. c is the node-local page cache (typically a
// member of the complex's cache.Group); gen regenerates dynamic pages on
// miss (nil means dynamic misses 404); version stamps generated pages.
func New(name string, c *cache.Cache, gen core.Generator, version VersionFunc, opts ...Option) *Server {
	if version == nil {
		version = func() int64 { return 0 }
	}
	s := &Server{
		name:    name,
		cache:   c,
		gen:     gen,
		version: version,
		static:  make(map[string]*cache.Object),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the node name.
func (s *Server) Name() string { return s.name }

// Cache returns the node-local cache.
func (s *Server) Cache() *cache.Cache { return s.cache }

// SetStatic installs a static page (served from the "file system", never
// cached or invalidated).
func (s *Server) SetStatic(path string, body []byte, contentType string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.static[path] = &cache.Object{Key: cache.Key(path), Value: body, ContentType: contentType}
}

// Start implements the uniform component lifecycle. A Server is passive —
// it holds no goroutines — so Start only clears any prior draining state,
// returning the node to service.
func (s *Server) Start(ctx context.Context) error {
	s.draining.Store(false)
	return nil
}

// Shutdown drains the node: new requests are rejected with ErrDraining
// (which the dispatcher treats as a node failure, pulling this node from
// the pool) while requests already in flight run to completion. ctx bounds
// the wait for in-flight work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for s.inflight.Load() > 0 {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return fmt.Errorf("httpserver: drain of %q: %w", s.name, ctx.Err())
			default:
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}

// Draining reports whether the node is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve satisfies one request for path, returning the object and how it was
// satisfied. This is the transport-independent core used by both ServeHTTP
// and the simulator.
func (s *Server) Serve(path string) (*cache.Object, Outcome, error) {
	// Count in-flight before checking draining: Shutdown sets draining then
	// waits for inflight to hit zero, so this ordering guarantees it never
	// returns while a request that passed the check is still running.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.errs.Inc()
		return nil, OutcomeError, fmt.Errorf("%w: %q", ErrDraining, s.name)
	}
	s.requests.Inc()

	s.mu.RLock()
	st, isStatic := s.static[path]
	s.mu.RUnlock()
	if isStatic {
		s.statics.Inc()
		s.bytesOut.Add(int64(len(st.Value)))
		return st, OutcomeStatic, nil
	}

	// Dynamic path: per-invocation overhead applies whether or not the
	// page is cached — it models invoking the server program at all.
	if s.overhead != nil {
		s.overhead()
	}

	if !s.noCache && s.cache != nil {
		if obj, ok := s.cache.Get(cache.Key(path)); ok {
			s.hits.Inc()
			s.bytesOut.Add(int64(len(obj.Value)))
			return obj, OutcomeHit, nil
		}
	}

	if s.gen == nil {
		s.notFound.Inc()
		return nil, OutcomeNotFound, fmt.Errorf("%w: %q", ErrNoRoute, path)
	}
	obj, err := s.gen(cache.Key(path), s.version())
	if err != nil {
		if errors.Is(err, ErrNoRoute) || isUnknownPage(err) {
			s.notFound.Inc()
			return nil, OutcomeNotFound, err
		}
		s.errs.Inc()
		return nil, OutcomeError, err
	}
	if !s.noCache && s.cache != nil {
		s.cache.Put(obj)
	}
	s.misses.Inc()
	s.bytesOut.Add(int64(len(obj.Value)))
	return obj, OutcomeMiss, nil
}

// isUnknownPage sniffs generator "unknown page" errors without importing
// the fragment package (which would invert the layering). The fragment
// engine wraps its ErrUnknown with a message containing this marker.
func isUnknownPage(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown page")
}

// ETag derives the entity tag for a cached object from its version and
// size. Because DUP stamps every regenerated object with the LSN of the
// update that produced it, the tag changes exactly when the content does —
// conditional GETs ride the same freshness information the cache uses.
func ETag(obj *cache.Object) string {
	return fmt.Sprintf(`"v%d-%d"`, obj.Version, len(obj.Value))
}

// ServeHTTP implements http.Handler over Serve, with conditional-GET
// support: a matching If-None-Match yields 304 Not Modified with no body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obj, outcome, err := s.Serve(r.URL.Path)
	switch outcome {
	case OutcomeNotFound:
		http.NotFound(w, r)
		return
	case OutcomeError:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	etag := ETag(obj)
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Version", fmt.Sprint(obj.Version))
	w.Header().Set("X-Node", s.name)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if obj.ContentType != "" {
		w.Header().Set("Content-Type", obj.ContentType)
	}
	if _, err := w.Write(obj.Value); err != nil {
		// Client went away mid-write; nothing further to do.
		return
	}
}

// ServerStats snapshots a node's counters.
type ServerStats struct {
	Requests int64
	Hits     int64
	Misses   int64
	Statics  int64
	NotFound int64
	Errors   int64
	BytesOut int64
}

// HitRate returns hits/(hits+misses) over dynamic requests only.
func (s ServerStats) HitRate() float64 {
	d := s.Hits + s.Misses
	if d == 0 {
		return 0
	}
	return float64(s.Hits) / float64(d)
}

// Stats returns a snapshot of the node's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests: s.requests.Value(),
		Hits:     s.hits.Value(),
		Misses:   s.misses.Value(),
		Statics:  s.statics.Value(),
		NotFound: s.notFound.Value(),
		Errors:   s.errs.Value(),
		BytesOut: s.bytesOut.Value(),
	}
}

// RegisterMetrics publishes the node's request counters into a registry
// under a node label (plus any extra labels).
func (s *Server) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	labels := stats.Labels{"node": s.name}
	for k, v := range extra {
		labels[k] = v
	}
	reg.RegisterCounter("http_requests_total", "requests served", labels, &s.requests)
	reg.RegisterCounter("http_cache_hits_total", "dynamic requests served from cache", labels, &s.hits)
	reg.RegisterCounter("http_cache_misses_total", "dynamic requests regenerated on miss", labels, &s.misses)
	reg.RegisterCounter("http_static_total", "static requests served", labels, &s.statics)
	reg.RegisterCounter("http_not_found_total", "requests with no route", labels, &s.notFound)
	reg.RegisterCounter("http_errors_total", "requests that failed generation", labels, &s.errs)
	reg.RegisterCounter("http_bytes_out_total", "response body bytes written", labels, &s.bytesOut)
	reg.RegisterFunc("http_hit_ratio", "dynamic hits/(hits+misses) since start", labels,
		func() float64 { return s.Stats().HitRate() })
}

// ResetStats zeroes the node's counters.
func (s *Server) ResetStats() {
	s.requests.Reset()
	s.hits.Reset()
	s.misses.Reset()
	s.statics.Reset()
	s.notFound.Reset()
	s.errs.Reset()
	s.bytesOut.Reset()
}
