package httpserver

import (
	"context"
	"errors"
	"testing"
	"time"

	"dupserve/internal/cache"
)

func drainServer(opts ...Option) *Server {
	c := cache.New("n0")
	c.Put(&cache.Object{Key: "/p", Value: []byte("body"), Version: 1})
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: []byte("gen"), Version: version}, nil
	}
	return New("n0", c, gen, func() int64 { return 1 }, opts...)
}

func TestServeRejectsWhileDraining(t *testing.T) {
	s := drainServer()
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := s.Serve("/p"); err != nil || outcome != OutcomeHit {
		t.Fatalf("healthy serve = %v %v", outcome, err)
	}

	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Fatal("not draining after Shutdown")
	}
	_, outcome, err := s.Serve("/p")
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("drained serve err = %v, want ErrDraining", err)
	}
	if outcome != OutcomeError {
		t.Fatalf("drained outcome = %v, want error", outcome)
	}
	st := s.Stats()
	if st.Errors == 0 {
		t.Fatal("rejection not counted as an error")
	}

	// Restart clears the drain.
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := s.Serve("/p"); err != nil || outcome != OutcomeHit {
		t.Fatalf("post-restart serve = %v %v", outcome, err)
	}
}

func TestShutdownWaitsForInflightRequests(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s := drainServer(WithOverhead(func() {
		close(entered)
		<-release
	}))
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}

	served := make(chan error, 1)
	go func() {
		_, _, err := s.Serve("/p")
		served <- err
	}()
	<-entered // the request is now in flight

	shut := make(chan error, 1)
	go func() { shut <- s.Shutdown(ctx) }()

	// Shutdown must not complete while the request is still being served.
	select {
	case err := <-shut:
		t.Fatalf("Shutdown returned (%v) with a request in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-served; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	select {
	case err := <-shut:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung after the request finished")
	}
}

func TestShutdownBoundedByContext(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s := drainServer(WithOverhead(func() {
		close(entered)
		<-release
	}))
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() { _, _, _ = s.Serve("/p") }()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown ignored its context deadline")
	}
	close(release)
}

func TestShutdownIdempotent(t *testing.T) {
	s := drainServer()
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
