package httpserver

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/overload"
)

// FuzzHTTPServePath throws arbitrary request paths at a serving node whose
// render capacity is fully occupied. No input may panic any layer (Serve,
// ServeHTTP, the striped cache underneath), and no input may reach the
// generator without passing admission control: with every render slot held,
// a miss must degrade (stale) or shed — a render would mean the path
// smuggled itself past the limiter.
func FuzzHTTPServePath(f *testing.F) {
	f.Add("/en/day7/home")
	f.Add("")
	f.Add("/")
	f.Add("//")
	f.Add("/static")
	f.Add("/cached")
	f.Add("/../../etc/passwd")
	f.Add("/en/%2e%2e/day7")
	f.Add("/\x00\xff")
	f.Add("/very/deep/" + string(make([]byte, 1024)))
	f.Fuzz(func(t *testing.T, path string) {
		rendered := 0
		gen := func(key cache.Key, version int64) (*cache.Object, error) {
			rendered++
			return &cache.Object{Key: key, Value: []byte("rendered"), Version: version}, nil
		}
		lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
		c := cache.New("fuzz", cache.WithStaleRetention())
		s := New("fuzz", c, gen, func() int64 { return 1 },
			WithOverload(lim, time.Second))
		s.SetStatic("/static", []byte("static"), "text/plain")
		c.Put(&cache.Object{Key: "/cached", Value: []byte("cached"), Version: 1})

		// Occupy the only render slot: any admission attempt must now shed.
		release, err := lim.Acquire()
		if err != nil {
			t.Fatalf("priming acquire failed: %v", err)
		}
		defer release()

		obj, outcome, _ := s.Serve(path)
		switch outcome {
		case OutcomeMiss:
			t.Fatalf("path %q rendered despite a saturated limiter", path)
		case OutcomeHit, OutcomeStatic, OutcomeStale:
			if obj == nil {
				t.Fatalf("path %q: outcome %v with nil object", path, outcome)
			}
		}
		if rendered != 0 {
			t.Fatalf("path %q invoked the generator %d times past admission control", path, rendered)
		}

		// The HTTP layer must be equally panic-free on the same input.
		req := &http.Request{Method: http.MethodGet, URL: &url.URL{Path: path}, Header: http.Header{}}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code == 0 {
			t.Fatalf("path %q produced no status", path)
		}
		if rendered != 0 {
			t.Fatalf("path %q rendered via ServeHTTP past admission control", path)
		}
	})
}
