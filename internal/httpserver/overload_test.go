package httpserver

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/overload"
	"dupserve/internal/stats"
)

// saturate fills every render slot of lim, returning a func that frees them.
func saturate(t *testing.T, lim *overload.Limiter, n int) func() {
	t.Helper()
	releases := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		r, err := lim.Acquire()
		if err != nil {
			t.Fatalf("saturating acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	return func() {
		for _, r := range releases {
			r()
		}
	}
}

func TestOverloadHitsAlwaysAdmitted(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	c.Put(&cache.Object{Key: "/hot", Value: []byte("fresh")})
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Second))

	free := saturate(t, lim, 1)
	defer free()
	// Every slot is busy, yet hits must not touch the limiter at all.
	for i := 0; i < 50; i++ {
		_, out, err := s.Serve("/hot")
		if err != nil || out != OutcomeHit {
			t.Fatalf("request %d under saturation: %v %v", i, out, err)
		}
	}
	if st := s.Stats(); st.Shed != 0 || st.ServedStale != 0 {
		t.Fatalf("hits consumed overload machinery: %+v", st)
	}
}

func TestOverloadShedFallsBackToStale(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	c.Put(&cache.Object{Key: "/p", Value: []byte("old copy"), Version: 1})
	c.Invalidate("/p") // DUP invalidation retains the stale copy
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Minute))

	free := saturate(t, lim, 1)
	defer free()
	obj, out, err := s.Serve("/p")
	if err != nil || out != OutcomeStale {
		t.Fatalf("Serve = %v %v, want stale", out, err)
	}
	if string(obj.Value) != "old copy" {
		t.Fatalf("stale body = %q", obj.Value)
	}
	st := s.Stats()
	if st.ServedStale != 1 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StaleAgeMax > time.Minute {
		t.Fatalf("served beyond the freshness budget: %v", st.StaleAgeMax)
	}
}

func TestOverloadShedsWithoutStaleCopy(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Minute))

	free := saturate(t, lim, 1)
	defer free()
	_, out, err := s.Serve("/never-seen")
	if out != OutcomeShed {
		t.Fatalf("outcome = %v, want shed", out)
	}
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, overload.ErrShed) {
		t.Fatalf("err = %v, want ErrOverloaded wrapping overload.ErrShed", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverloadBeyondBudgetSheds(t *testing.T) {
	clk := &fakeTime{t: time.Unix(0, 0)}
	c := cache.New("c", cache.WithStaleRetention(), cache.WithClock(clk.now))
	c.Put(&cache.Object{Key: "/p", Value: []byte("old")})
	c.Invalidate("/p")
	clk.t = clk.t.Add(time.Hour) // far beyond any budget
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Second))

	free := saturate(t, lim, 1)
	defer free()
	_, out, _ := s.Serve("/p")
	if out != OutcomeShed {
		t.Fatalf("outcome = %v, want shed (stale copy is beyond budget)", out)
	}
}

type fakeTime struct{ t time.Time }

func (f *fakeTime) now() time.Time { return f.t }

func TestOverloadRecoversAfterRelease(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Second))

	free := saturate(t, lim, 1)
	if _, out, _ := s.Serve("/p"); out != OutcomeShed {
		t.Fatalf("outcome while saturated = %v, want shed", out)
	}
	free()
	if _, out, err := s.Serve("/p"); err != nil || out != OutcomeMiss {
		t.Fatalf("Serve after drain = %v %v, want miss", out, err)
	}
}

func TestOverloadZeroBudgetDisablesStaleFallback(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	c.Put(&cache.Object{Key: "/p", Value: []byte("old")})
	c.Invalidate("/p")
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, 0))

	free := saturate(t, lim, 1)
	defer free()
	if _, out, _ := s.Serve("/p"); out != OutcomeShed {
		t.Fatalf("outcome = %v, want shed with zero budget", out)
	}
}

func TestOverloadLoadSignal(t *testing.T) {
	s := New("n", cache.New("c"), okGen("x"), nil)
	if got := s.LoadSignal(); got != 0 {
		t.Fatalf("load without limiter = %v, want 0", got)
	}
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 2})
	s2 := New("n2", cache.New("c2"), okGen("x"), nil, WithOverload(lim, 0))
	free := saturate(t, lim, 2)
	defer free()
	if got := s2.LoadSignal(); got < 1 {
		t.Fatalf("saturated load = %v, want >= 1", got)
	}
}

func TestServeHTTPShedReturns503RetryAfter(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Second))
	ts := httptest.NewServer(s)
	defer ts.Close()

	free := saturate(t, lim, 1)
	defer free()
	resp, err := http.Get(ts.URL + "/p")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestServeHTTPStaleResponse(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	c.Put(&cache.Object{Key: "/p", Value: []byte("old copy"), Version: 7})
	c.Invalidate("/p")
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Minute))
	ts := httptest.NewServer(s)
	defer ts.Close()

	free := saturate(t, lim, 1)
	defer free()
	resp, err := http.Get(ts.URL + "/p")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded, not down)", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "stale" {
		t.Fatalf("X-Cache = %q, want stale", got)
	}
	if string(body) != "old copy" {
		t.Fatalf("body = %q", body)
	}
}

func TestOverloadMetricsRegistered(t *testing.T) {
	reg := stats.NewRegistry()
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1})
	s := New("n", cache.New("c"), okGen("x"), nil, WithOverload(lim, time.Second))
	s.RegisterMetrics(reg, nil)
	found := map[string]bool{}
	for _, fam := range reg.Snapshot() {
		found[fam.Name] = true
	}
	for _, want := range []string{
		"served_stale_total", "shed_total", "served_stale_age_max_seconds",
		"overload_load", "overload_shed_total",
	} {
		if !found[want] {
			t.Fatalf("metric %q not registered (have %v)", want, found)
		}
	}
}

func TestResetStatsClearsOverloadCounters(t *testing.T) {
	c := cache.New("c", cache.WithStaleRetention())
	c.Put(&cache.Object{Key: "/p", Value: []byte("old")})
	c.Invalidate("/p")
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1})
	s := New("n", c, okGen("x"), nil, WithOverload(lim, time.Minute))
	free := saturate(t, lim, 1)
	s.Serve("/p")       // stale
	s.Serve("/missing") // shed
	free()
	s.ResetStats()
	st := s.Stats()
	if st.ServedStale != 0 || st.Shed != 0 || st.StaleAgeMax != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}
