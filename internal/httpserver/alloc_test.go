package httpserver

import (
	"net/http"
	"net/url"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/overload"
)

// reusableWriter is a minimal http.ResponseWriter whose header map persists
// across requests, so AllocsPerRun measures only ServeHTTP's own work (a
// real connection reuses its header machinery similarly).
type reusableWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *reusableWriter) Header() http.Header { return w.h }
func (w *reusableWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
func (w *reusableWriter) WriteHeader(status int) { w.status = status }

func newHitServer(t *testing.T) *Server {
	t.Helper()
	c := cache.New("alloc-node")
	c.Put(&cache.Object{
		Key:         "/en/results",
		Value:       []byte("<html>results</html>"),
		ContentType: "text/html; charset=utf-8",
		Version:     42,
		StoredAt:    time.Now(),
	})
	return New("alloc-node", c, nil, func() int64 { return 42 })
}

// TestServeHitZeroAlloc pins the transport-independent cache-hit path at
// zero heap allocations per request.
func TestServeHitZeroAlloc(t *testing.T) {
	s := newHitServer(t)
	if _, outcome, err := s.Serve("/en/results"); err != nil || outcome != OutcomeHit {
		t.Fatalf("warmup: outcome=%v err=%v", outcome, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, outcome, _ := s.Serve("/en/results"); outcome != OutcomeHit {
			t.Fatalf("outcome = %v, want hit", outcome)
		}
	})
	if allocs != 0 {
		t.Fatalf("Serve hit path allocates %.1f per run, want 0", allocs)
	}
}

// TestServeHitZeroAllocWithOverload proves admission control costs the hit
// path nothing: hits bypass the limiter entirely.
func TestServeHitZeroAllocWithOverload(t *testing.T) {
	c := cache.New("alloc-ov")
	c.Put(&cache.Object{Key: "/p", Value: []byte("x"), Version: 1})
	lim := overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: 0})
	s := New("alloc-ov", c, nil, nil, WithOverload(lim, time.Second))
	allocs := testing.AllocsPerRun(1000, func() {
		if _, outcome, _ := s.Serve("/p"); outcome != OutcomeHit {
			t.Fatalf("outcome = %v, want hit", outcome)
		}
	})
	if allocs != 0 {
		t.Fatalf("Serve hit path with limiter allocates %.1f per run, want 0", allocs)
	}
}

// TestServeHTTPHitZeroAlloc pins the HTTP layer's hit path — entity tag,
// cache/version/node headers, body write — at zero heap allocations once
// the object's headers are memoized.
func TestServeHTTPHitZeroAlloc(t *testing.T) {
	s := newHitServer(t)
	req := &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: "/en/results"},
		Header: http.Header{},
	}
	w := &reusableWriter{h: http.Header{}}
	s.ServeHTTP(w, req) // memoize object headers, size the header map
	allocs := testing.AllocsPerRun(1000, func() {
		w.status = 0
		w.n = 0
		s.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("ServeHTTP hit path allocates %.1f per run, want 0", allocs)
	}
	if w.n == 0 {
		t.Fatal("no body written")
	}
	if got := w.h.Get("ETag"); got != ETag(mustPeek(t, s, "/en/results")) {
		t.Fatalf("ETag = %q", got)
	}
	if got := w.h.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
	if got := w.h.Get("X-Node"); got != "alloc-node" {
		t.Fatalf("X-Node = %q", got)
	}
	if got := w.h.Get("X-Version"); got != "42" {
		t.Fatalf("X-Version = %q, want 42", got)
	}
	if got := w.h.Get("Content-Type"); got != "text/html; charset=utf-8" {
		t.Fatalf("Content-Type = %q", got)
	}
}

// TestServeHTTPConditionalGetZeroAlloc pins the 304 path: a matching
// If-None-Match serves no body and allocates nothing.
func TestServeHTTPConditionalGetZeroAlloc(t *testing.T) {
	s := newHitServer(t)
	etag := ETag(mustPeek(t, s, "/en/results"))
	req := &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: "/en/results"},
		Header: http.Header{"If-None-Match": {etag}},
	}
	w := &reusableWriter{h: http.Header{}}
	s.ServeHTTP(w, req)
	allocs := testing.AllocsPerRun(1000, func() {
		w.status = 0
		w.n = 0
		s.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("304 path allocates %.1f per run, want 0", allocs)
	}
	if w.status != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", w.status)
	}
	if w.n != 0 {
		t.Fatalf("304 wrote %d body bytes", w.n)
	}
}

func mustPeek(t *testing.T, s *Server, path string) *cache.Object {
	t.Helper()
	obj, ok := s.Cache().Peek(cache.Key(path))
	if !ok {
		t.Fatalf("object %s not cached", path)
	}
	return obj
}
