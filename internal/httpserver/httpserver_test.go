package httpserver

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dupserve/internal/cache"
)

func okGen(body string) func(key cache.Key, version int64) (*cache.Object, error) {
	return func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{
			Key:         key,
			Value:       []byte(body + ":" + string(key)),
			ContentType: "text/html",
			Version:     version,
		}, nil
	}
}

func TestServeStatic(t *testing.T) {
	s := New("n1", cache.New("c"), nil, nil)
	s.SetStatic("/logo.gif", []byte("GIF89a"), "image/gif")
	obj, out, err := s.Serve("/logo.gif")
	if err != nil || out != OutcomeStatic || string(obj.Value) != "GIF89a" {
		t.Fatalf("Serve = %v %v %v", obj, out, err)
	}
	if st := s.Stats(); st.Statics != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServeMissThenHit(t *testing.T) {
	s := New("n1", cache.New("c"), okGen("page"), func() int64 { return 9 })
	_, out, err := s.Serve("/a")
	if err != nil || out != OutcomeMiss {
		t.Fatalf("first Serve = %v %v", out, err)
	}
	obj, out, err := s.Serve("/a")
	if err != nil || out != OutcomeHit {
		t.Fatalf("second Serve = %v %v", out, err)
	}
	if obj.Version != 9 {
		t.Fatalf("version = %d", obj.Version)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.HitRate() != 0.5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServePrimedCacheNeverMisses(t *testing.T) {
	// Update-in-place means the trigger monitor primes caches before
	// traffic arrives; every request must then be a hit.
	c := cache.New("c")
	c.Put(&cache.Object{Key: "/hot", Value: []byte("fresh")})
	s := New("n1", c, okGen("x"), nil)
	for i := 0; i < 100; i++ {
		_, out, err := s.Serve("/hot")
		if err != nil || out != OutcomeHit {
			t.Fatalf("request %d: %v %v", i, out, err)
		}
	}
	if s.Stats().HitRate() != 1 {
		t.Fatalf("hit rate = %v", s.Stats().HitRate())
	}
}

func TestWithoutCacheAlwaysGenerates(t *testing.T) {
	calls := 0
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		calls++
		return &cache.Object{Key: key, Value: []byte("x")}, nil
	}
	s := New("n1", cache.New("c"), gen, nil, WithoutCache())
	for i := 0; i < 5; i++ {
		if _, out, err := s.Serve("/p"); err != nil || out != OutcomeMiss {
			t.Fatalf("Serve = %v %v", out, err)
		}
	}
	if calls != 5 {
		t.Fatalf("generator calls = %d, want 5", calls)
	}
}

func TestServeNoRoute(t *testing.T) {
	s := New("n1", cache.New("c"), nil, nil)
	_, out, err := s.Serve("/ghost")
	if out != OutcomeNotFound || !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Serve = %v %v", out, err)
	}
}

func TestServeGeneratorUnknownPageIs404(t *testing.T) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return nil, fmt.Errorf("fragment: unknown page or fragment: %q", key)
	}
	s := New("n1", cache.New("c"), gen, nil)
	_, out, _ := s.Serve("/ghost")
	if out != OutcomeNotFound {
		t.Fatalf("outcome = %v, want notfound", out)
	}
	if s.Stats().NotFound != 1 || s.Stats().Errors != 0 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestServeGeneratorError(t *testing.T) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return nil, errors.New("db unreachable")
	}
	s := New("n1", cache.New("c"), gen, nil)
	_, out, err := s.Serve("/p")
	if out != OutcomeError || err == nil {
		t.Fatalf("Serve = %v %v", out, err)
	}
	if s.Stats().Errors != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestOverheadAppliedToDynamicOnly(t *testing.T) {
	n := 0
	s := New("n1", cache.New("c"), okGen("x"), nil, WithOverhead(func() { n++ }))
	s.SetStatic("/s", []byte("st"), "")
	s.Serve("/s")
	if n != 0 {
		t.Fatal("overhead applied to static request")
	}
	s.Serve("/d")
	s.Serve("/d")
	if n != 2 {
		t.Fatalf("overhead calls = %d, want 2 (per dynamic request)", n)
	}
}

func TestSpinOverheadRuns(t *testing.T) {
	SpinOverhead(100)() // must not panic
}

func TestServeHTTPHeadersAndBody(t *testing.T) {
	s := New("node7", cache.New("c"), okGen("body"), func() int64 { return 3 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/en/home")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "body:/en/home" {
		t.Fatalf("body = %q", body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q", got)
	}
	if got := resp.Header.Get("X-Node"); got != "node7" {
		t.Fatalf("X-Node = %q", got)
	}
	if got := resp.Header.Get("X-Version"); got != "3" {
		t.Fatalf("X-Version = %q", got)
	}
	resp2, err := http.Get(ts.URL + "/en/home")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q", got)
	}
}

func TestServeHTTP404And500(t *testing.T) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		if key == "/boom" {
			return nil, errors.New("explode")
		}
		return nil, fmt.Errorf("unknown page %q", key)
	}
	s := New("n", cache.New("c"), gen, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/nothere")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
}

func TestConcurrentServe(t *testing.T) {
	s := New("n", cache.New("c"), okGen("x"), nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, _, err := s.Serve(fmt.Sprintf("/p%d", i%10)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != 1600 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Misses < 10 || st.Misses > 80 {
		// At most one miss per (path, racing goroutine window); typically 10.
		t.Fatalf("misses = %d, outside plausible range", st.Misses)
	}
}

func TestResetStats(t *testing.T) {
	s := New("n", cache.New("c"), okGen("x"), nil)
	s.Serve("/p")
	s.ResetStats()
	if st := s.Stats(); st.Requests != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{
		OutcomeHit: "hit", OutcomeMiss: "miss", OutcomeStatic: "static",
		OutcomeNotFound: "notfound", OutcomeError: "error",
	}
	for o, want := range names {
		if o.String() != want {
			t.Fatalf("%v.String() = %q", o, o.String())
		}
	}
}

// E2 shape at unit scale: cached dynamic serving must be far faster than
// uncached generation with CGI-like overhead.
func BenchmarkServeCachedDynamic(b *testing.B) {
	c := cache.New("c")
	c.Put(&cache.Object{Key: "/hot", Value: make([]byte, 10*1024)})
	s := New("n", c, okGen("x"), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, _ := s.Serve("/hot"); out != OutcomeHit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkServeUncachedDynamic(b *testing.B) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		// Rebuild a 10KB page each time.
		v := make([]byte, 10*1024)
		for i := range v {
			v[i] = byte(i)
		}
		return &cache.Object{Key: key, Value: v}, nil
	}
	s := New("n", cache.New("c"), gen, nil, WithoutCache())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Serve("/hot"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeUncachedCGI(b *testing.B) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		v := make([]byte, 10*1024)
		return &cache.Object{Key: key, Value: v}, nil
	}
	// SpinOverhead approximates fork+exec+interpreter-startup CPU burn.
	s := New("n", cache.New("c"), gen, nil, WithoutCache(), WithOverhead(SpinOverhead(200000)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Serve("/hot"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeStatic(b *testing.B) {
	s := New("n", cache.New("c"), nil, nil)
	s.SetStatic("/s", make([]byte, 10*1024), "text/html")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, _ := s.Serve("/s"); out != OutcomeStatic {
			b.Fatal("not static")
		}
	}
}

func TestConditionalGet304(t *testing.T) {
	s := New("n", cache.New("c"), okGen("body"), func() int64 { return 5 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/p")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag issued")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/p", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp2.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried a body: %q", body)
	}
}

func TestConditionalGetChangesWithVersion(t *testing.T) {
	// When DUP updates the page in place, the version bumps, the ETag
	// changes, and the conditional GET returns fresh content.
	c := cache.New("c")
	c.Put(&cache.Object{Key: "/p", Value: []byte("old"), Version: 1})
	s := New("n", c, nil, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/p")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")

	// DUP-style update-in-place.
	c.Put(&cache.Object{Key: "/p", Value: []byte("new content"), Version: 2})

	req, _ := http.NewRequest("GET", ts.URL+"/p", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after update", resp2.StatusCode)
	}
	if string(body) != "new content" {
		t.Fatalf("body = %q", body)
	}
	if resp2.Header.Get("ETag") == etag {
		t.Fatal("ETag did not change with version")
	}
}

func TestETagFormat(t *testing.T) {
	a := ETag(&cache.Object{Version: 1, Value: []byte("xy")})
	b := ETag(&cache.Object{Version: 2, Value: []byte("xy")})
	if a == b {
		t.Fatal("ETag ignores version")
	}
}
