package routing

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
)

// stubComplex counts requests and can be failed.
type stubComplex struct {
	name    string
	served  atomic.Int64
	failing atomic.Bool
}

func (s *stubComplex) Name() string { return s.name }
func (s *stubComplex) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	if s.failing.Load() {
		return nil, httpserver.OutcomeError, errors.New("complex offline")
	}
	s.served.Add(1)
	return &cache.Object{Key: cache.Key(path), Value: []byte(s.name)}, httpserver.OutcomeHit, nil
}

// paperTopology builds the four-complex layout: Tokyo near Japan/Asia, the
// three US sites near the US, Europe split toward the US east coast.
func paperTopology(t testing.TB) (*Router, map[string]*stubComplex) {
	t.Helper()
	r := NewRouter(NumAddresses)
	// Backbone distances dominate the primary/secondary cost spread
	// (10 vs 20), so clients reach their nearest complex and the
	// primary-address ownership only splits traffic among equidistant
	// complexes — the paper's behaviour.
	sites := map[string]map[Region]int{
		"tokyo":      {RegionJapan: 10, RegionAsia: 20, RegionUS: 80, RegionEurope: 90, RegionOther: 60},
		"schaumburg": {RegionUS: 10, RegionEurope: 50, RegionJapan: 80, RegionAsia: 70, RegionOther: 50},
		"columbus":   {RegionUS: 10, RegionEurope: 50, RegionJapan: 90, RegionAsia: 80, RegionOther: 50},
		"bethesda":   {RegionUS: 10, RegionEurope: 50, RegionJapan: 90, RegionAsia: 80, RegionOther: 50},
	}
	stubs := make(map[string]*stubComplex)
	for name, dist := range sites {
		s := &stubComplex{name: name}
		stubs[name] = s
		r.AddComplex(name, s, dist)
	}
	order := []string{"tokyo", "schaumburg", "columbus", "bethesda"}
	if err := r.AdvertiseSpread(order, 10, 20); err != nil {
		t.Fatal(err)
	}
	return r, stubs
}

func TestResolveRoundRobin(t *testing.T) {
	r := NewRouter(3)
	got := []Address{r.Resolve(), r.Resolve(), r.Resolve(), r.Resolve()}
	want := []Address{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resolve sequence = %v, want %v", got, want)
		}
	}
}

func TestAdvertiseValidation(t *testing.T) {
	r := NewRouter(2)
	if err := r.Advertise("ghost", 0, 1); !errors.Is(err, ErrUnknownComplex) {
		t.Fatalf("err = %v", err)
	}
	r.AddComplex("c", &stubComplex{name: "c"}, nil)
	if err := r.Advertise("c", 5, 1); err == nil {
		t.Fatal("out-of-range address accepted")
	}
	if err := r.Advertise("c", 0, 1); err != nil {
		t.Fatal(err)
	}
	// Re-advertising updates cost instead of duplicating.
	if err := r.Advertise("c", 0, 2); err != nil {
		t.Fatal(err)
	}
	if got := r.Route("x", 0); len(got) != 1 {
		t.Fatalf("Route = %v", got)
	}
}

func TestGeographicRouting(t *testing.T) {
	r, stubs := paperTopology(t)
	// Japanese clients land on Tokyo regardless of address, because the
	// distance term dominates the primary/secondary cost spread.
	for i := 0; i < 120; i++ {
		_, _, complexName, err := r.Request(RegionJapan, "/home")
		if err != nil {
			t.Fatal(err)
		}
		if complexName != "tokyo" {
			t.Fatalf("japan request served by %s", complexName)
		}
	}
	if stubs["tokyo"].served.Load() != 120 {
		t.Fatalf("tokyo served = %d", stubs["tokyo"].served.Load())
	}
}

func TestUSSpreadAcrossUSSites(t *testing.T) {
	r, stubs := paperTopology(t)
	// US clients: Tokyo is far; the three US sites share traffic by
	// primary address ownership (Tokyo's primaries fall to US secondaries).
	for i := 0; i < 1200; i++ {
		_, _, _, err := r.Request(RegionUS, "/home")
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := stubs["tokyo"].served.Load(); got != 0 {
		t.Fatalf("tokyo served %d US requests", got)
	}
	total := int64(0)
	for _, name := range []string{"schaumburg", "columbus", "bethesda"} {
		n := stubs[name].served.Load()
		if n == 0 {
			t.Fatalf("%s received no US traffic", name)
		}
		total += n
	}
	if total != 1200 {
		t.Fatalf("US total = %d", total)
	}
}

func TestTrafficShiftGranularity(t *testing.T) {
	// Moving one address's primary from schaumburg to columbus shifts
	// 1/12 = 8.33% of the traffic that schaumburg owned.
	r, _ := paperTopology(t)
	before := r.PrimaryShare(RegionUS, "schaumburg")
	// schaumburg is primary (cost 10) for addresses 1, 5, 9 under the
	// spread; bump address 1 to cost 30 so columbus's secondary wins.
	if err := r.Advertise("schaumburg", 1, 30); err != nil {
		t.Fatal(err)
	}
	after := r.PrimaryShare(RegionUS, "schaumburg")
	shift := before - after
	if math.Abs(shift-1.0/12) > 1e-9 {
		t.Fatalf("shift = %v, want 1/12", shift)
	}
}

func TestWithdrawMovesTraffic(t *testing.T) {
	r, _ := paperTopology(t)
	if got := r.PrimaryShare(RegionUS, "schaumburg"); got == 0 {
		t.Fatal("schaumburg owns nothing before withdrawal")
	}
	r.WithdrawAll("schaumburg")
	if got := r.PrimaryShare(RegionUS, "schaumburg"); got != 0 {
		t.Fatalf("share after WithdrawAll = %v", got)
	}
	// All addresses still routable (secondaries take over).
	for a := 0; a < NumAddresses; a++ {
		if order := r.Route(RegionUS, Address(a)); len(order) == 0 {
			t.Fatalf("address %d lost all routes", a)
		}
	}
}

func TestWithdrawSingle(t *testing.T) {
	r, _ := paperTopology(t)
	r.Withdraw("tokyo", 0)
	for _, name := range r.Route(RegionJapan, 0) {
		if name == "tokyo" {
			t.Fatal("tokyo still advertised for withdrawn address")
		}
	}
	// Other addresses unaffected.
	if order := r.Route(RegionJapan, 1); order[0] != "tokyo" {
		t.Fatalf("address 1 order = %v", order)
	}
	// Withdrawing twice or out of range is a no-op.
	r.Withdraw("tokyo", 0)
	r.Withdraw("tokyo", 99)
}

func TestComplexFailureReroutes(t *testing.T) {
	r, stubs := paperTopology(t)
	stubs["tokyo"].failing.Store(true)
	// Japanese clients must still be served — by a US site.
	for i := 0; i < 48; i++ {
		_, _, complexName, err := r.Request(RegionJapan, "/home")
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		if complexName == "tokyo" {
			t.Fatal("served by failed complex")
		}
	}
	st := r.Stats()
	if st.Reroutes == 0 {
		t.Fatal("no reroutes recorded")
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0 (elegant degradation)", st.Rejected)
	}
}

func TestComplexRecovery(t *testing.T) {
	r, stubs := paperTopology(t)
	stubs["tokyo"].failing.Store(true)
	if _, _, _, err := r.Request(RegionJapan, "/p"); err != nil {
		t.Fatal(err)
	}
	// Recover and re-enable.
	stubs["tokyo"].failing.Store(false)
	r.SetComplexUp("tokyo", true)
	_, _, complexName, err := r.Request(RegionJapan, "/p")
	if err != nil || complexName != "tokyo" {
		t.Fatalf("after recovery served by %s (err %v)", complexName, err)
	}
}

func TestAllComplexesDown(t *testing.T) {
	r, stubs := paperTopology(t)
	for _, s := range stubs {
		s.failing.Store(true)
	}
	_, _, _, err := r.Request(RegionUS, "/p")
	if err == nil {
		t.Fatal("expected total failure")
	}
	if r.Stats().Rejected == 0 {
		t.Fatal("rejected not counted")
	}
}

func TestRouteUnknownAddress(t *testing.T) {
	r, _ := paperTopology(t)
	if got := r.Route(RegionUS, -1); got != nil {
		t.Fatalf("Route(-1) = %v", got)
	}
	if got := r.Route(RegionUS, 99); got != nil {
		t.Fatalf("Route(99) = %v", got)
	}
}

func TestRegionWithoutDistanceIsFarthest(t *testing.T) {
	r := NewRouter(1)
	near := &stubComplex{name: "near"}
	far := &stubComplex{name: "far"}
	r.AddComplex("near", near, map[Region]int{"mars": 1})
	r.AddComplex("far", far, nil) // no distances at all
	if err := r.Advertise("near", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Advertise("far", 0, 10); err != nil {
		t.Fatal(err)
	}
	if order := r.Route("mars", 0); order[0] != "near" {
		t.Fatalf("order = %v", order)
	}
}

func TestStatsBreakdowns(t *testing.T) {
	r, _ := paperTopology(t)
	for i := 0; i < 10; i++ {
		r.Request(RegionJapan, "/p")
	}
	for i := 0; i < 20; i++ {
		r.Request(RegionUS, "/p")
	}
	st := r.Stats()
	if st.Requests != 30 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.ByRegion[RegionJapan] != 10 || st.ByRegion[RegionUS] != 20 {
		t.Fatalf("by region = %v", st.ByRegion)
	}
	if st.ByComplex["tokyo"] != 10 {
		t.Fatalf("by complex = %v", st.ByComplex)
	}
}

func TestRequestViaDeterministic(t *testing.T) {
	r, stubs := paperTopology(t)
	for i := 0; i < 5; i++ {
		_, _, name, err := r.RequestVia(RegionJapan, 0, "/p")
		if err != nil || name != "tokyo" {
			t.Fatalf("RequestVia = %s, %v", name, err)
		}
	}
	if stubs["tokyo"].served.Load() != 5 {
		t.Fatal("RequestVia did not hit tokyo")
	}
}

func TestNewRouterDefaultAddrs(t *testing.T) {
	r := NewRouter(0)
	if r.NumAddrs() != NumAddresses {
		t.Fatalf("NumAddrs = %d", r.NumAddrs())
	}
}

func BenchmarkRequestRouting(b *testing.B) {
	r, _ := paperTopology(b)
	regions := []Region{RegionUS, RegionJapan, RegionEurope, RegionAsia}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.Request(regions[i%len(regions)], "/p"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrimaryShare(b *testing.B) {
	r, _ := paperTopology(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PrimaryShare(RegionUS, fmt.Sprintf("%s", "schaumburg"))
	}
}
