package routing

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
	"dupserve/internal/overload"
)

// shedComplex is a backend that can be put into overload-shedding mode.
type shedComplex struct {
	name     string
	shedding atomic.Bool
	served   atomic.Int64
}

func (s *shedComplex) Name() string { return s.name }
func (s *shedComplex) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	if s.shedding.Load() {
		return nil, httpserver.OutcomeShed,
			fmt.Errorf("%w: %q: %w", httpserver.ErrOverloaded, s.name, overload.ErrShed)
	}
	s.served.Add(1)
	return &cache.Object{Key: cache.Key(path), Value: []byte(s.name)}, httpserver.OutcomeHit, nil
}

// pairTopology: two equidistant complexes, each primary for half the twelve
// addresses, so load-shed share arithmetic is exact twelfths.
func pairTopology(t testing.TB) (*Router, *shedComplex, *shedComplex) {
	t.Helper()
	r := NewRouter(NumAddresses)
	a := &shedComplex{name: "a"}
	b := &shedComplex{name: "b"}
	dist := map[Region]int{RegionUS: 0}
	r.AddComplex("a", a, dist)
	r.AddComplex("b", b, dist)
	if err := r.AdvertiseSpread([]string{"a", "b"}, 10, 20); err != nil {
		t.Fatal(err)
	}
	return r, a, b
}

func TestLoadWithdrawalShedsInTwelfths(t *testing.T) {
	r, _, _ := pairTopology(t)
	if got := r.PrimaryShare(RegionUS, "a"); got != 0.5 {
		t.Fatalf("baseline share = %v, want 0.5", got)
	}
	// Each loadShedStep above the threshold withdraws exactly one more
	// address: an 8 1/3 % traffic shift per step.
	for step := 1; step <= 6; step++ {
		load := 1.0 + 0.25*float64(step-1)
		if err := r.SetComplexLoad("a", load); err != nil {
			t.Fatal(err)
		}
		want := (6.0 - float64(step)) / 12.0
		if got := r.PrimaryShare(RegionUS, "a"); math.Abs(got-want) > 1e-9 {
			t.Fatalf("share at load %.2f = %v, want %v", load, got, want)
		}
		if got := len(r.LoadShedAddrs("a")); got != step {
			t.Fatalf("withdrawn addrs at load %.2f = %d, want %d", load, got, step)
		}
	}
	// Load subsiding re-advertises: the cascade is reversible.
	if err := r.SetComplexLoad("a", 0.3); err != nil {
		t.Fatal(err)
	}
	if got := r.PrimaryShare(RegionUS, "a"); got != 0.5 {
		t.Fatalf("share after recovery = %v, want 0.5", got)
	}
	if got := len(r.LoadShedAddrs("a")); got != 0 {
		t.Fatalf("withdrawn addrs after recovery = %d, want 0", got)
	}
}

func TestLoadWithdrawalTakesPrimariesFirst(t *testing.T) {
	r, _, _ := pairTopology(t)
	if err := r.SetComplexLoad("a", 1.0); err != nil {
		t.Fatal(err)
	}
	shed := r.LoadShedAddrs("a")
	if len(shed) != 1 {
		t.Fatalf("withdrawn = %v, want exactly one address", shed)
	}
	// Complex a is primary (cost 10) for even addresses; the first
	// withdrawal must be its cheapest advertised address, 0.
	if shed[0] != 0 {
		t.Fatalf("withdrew %v, want primary address 0 first", shed[0])
	}
	// The withdrawn address still routes — via b.
	if order := r.Route(RegionUS, 0); len(order) == 0 || order[0] != "b" {
		t.Fatalf("route for withdrawn addr = %v, want b first", order)
	}
}

func TestLoadShedDeterministic(t *testing.T) {
	mk := func() []Address {
		r, _, _ := pairTopology(t)
		r.SetComplexLoad("a", 1.6)
		return r.LoadShedAddrs("a")
	}
	x, y := mk(), mk()
	if len(x) != len(y) {
		t.Fatalf("withdrawals differ: %v vs %v", x, y)
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("withdrawals differ: %v vs %v", x, y)
		}
	}
}

func TestLoadShedNoBlackHole(t *testing.T) {
	r, a, b := pairTopology(t)
	// Both complexes drowning: every address nominally withdrawn everywhere.
	r.SetComplexLoad("a", 100)
	r.SetComplexLoad("b", 100)
	for addr := 0; addr < NumAddresses; addr++ {
		if order := r.Route(RegionUS, Address(addr)); len(order) == 0 {
			t.Fatalf("address %d black-holed by load shedding", addr)
		}
	}
	// Requests still land somewhere.
	if _, _, _, err := r.RequestVia(RegionUS, 0, "/p"); err != nil {
		t.Fatalf("request under total load shed: %v", err)
	}
	if a.served.Load()+b.served.Load() == 0 {
		t.Fatal("no complex served under total load shed")
	}
}

func TestShedRerouteKeepsComplexUp(t *testing.T) {
	r, a, b := pairTopology(t)
	a.shedding.Store(true)
	// Address 0 is a's primary; the request must fail over to b without
	// marking a down.
	obj, outcome, name, err := r.RequestVia(RegionUS, 0, "/p")
	if err != nil || outcome != httpserver.OutcomeHit {
		t.Fatalf("RequestVia = %v %v %v", outcome, name, err)
	}
	if string(obj.Value) != "b" {
		t.Fatalf("served by %q, want b", obj.Value)
	}
	st := r.Stats()
	if st.ShedReroutes != 1 || st.Reroutes != 0 {
		t.Fatalf("stats = %+v, want 1 shed reroute and 0 failure reroutes", st)
	}
	// The shedding complex must still be routable: its surge will clear.
	a.shedding.Store(false)
	if obj, _, _, err := r.RequestVia(RegionUS, 0, "/p"); err != nil || string(obj.Value) != "a" {
		t.Fatalf("complex did not recover: %v %v", obj, err)
	}
	if b.served.Load() != 1 {
		t.Fatalf("b served %d, want 1", b.served.Load())
	}
}

func TestAllComplexesSheddingReturnsShed(t *testing.T) {
	r, a, b := pairTopology(t)
	a.shedding.Store(true)
	b.shedding.Store(true)
	_, outcome, _, err := r.RequestVia(RegionUS, 0, "/p")
	if outcome != httpserver.OutcomeShed || err == nil {
		t.Fatalf("RequestVia = %v %v, want shed", outcome, err)
	}
	// Neither complex was marked down: both recover without intervention.
	a.shedding.Store(false)
	b.shedding.Store(false)
	if _, _, _, err := r.RequestVia(RegionUS, 1, "/p"); err != nil {
		t.Fatalf("request after surge: %v", err)
	}
}

func TestComplexDownDrainsCompletely(t *testing.T) {
	// SetComplexUp(false) must drain a complex entirely — every address,
	// every region — with traffic flowing to survivors and no region
	// black-holed. This is the server -> frame -> ND -> complex cascade's
	// final stage.
	r, stubs := paperTopology(t)
	r.SetComplexUp("tokyo", false)
	regions := []Region{RegionUS, RegionJapan, RegionEurope, RegionAsia, RegionOther}
	for _, reg := range regions {
		for addr := 0; addr < NumAddresses; addr++ {
			order := r.Route(reg, Address(addr))
			if len(order) == 0 {
				t.Fatalf("region %s addr %d black-holed after complex loss", reg, addr)
			}
			for _, name := range order {
				if name == "tokyo" {
					t.Fatalf("downed complex still routed for %s/%d", reg, addr)
				}
			}
			if _, _, _, err := r.RequestVia(reg, Address(addr), "/p"); err != nil {
				t.Fatalf("request %s/%d failed after complex loss: %v", reg, addr, err)
			}
		}
	}
	if got := stubs["tokyo"].served.Load(); got != 0 {
		t.Fatalf("downed complex served %d requests, want 0", got)
	}
	if got := r.PrimaryShare(RegionJapan, "tokyo"); got != 0 {
		t.Fatalf("downed complex primary share = %v, want 0", got)
	}
}
