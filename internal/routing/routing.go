// Package routing implements MSIRP — Multiple Single IP Routing — the
// wide-area traffic-distribution scheme of section 4.1 of the paper.
//
// The production site advertised twelve "SIPR" addresses, all resolving to
// www.nagano.olympic.org. Round-robin DNS cycled browsers through the
// twelve addresses; every complex advertised routes for all twelve into the
// OSPF backbone with costs reflecting primary/secondary ownership, and
// standard least-cost IP routing then delivered each request to the nearest
// complex advertising its address. Because ownership was spread across the
// addresses, operators could shift traffic between complexes in 1/12 =
// 8 1/3 % increments just by changing advertised costs — and a complex that
// stopped advertising (or failed) simply disappeared from the route table,
// with its traffic flowing to the next-cheapest advertiser. That is the top
// layer of "elegant degradation".
//
// The Router models exactly that: a route table of (address -> cost
// advertisements per complex), a geographic distance matrix standing in for
// backbone hop costs, round-robin DNS, and failover to the next-cheapest
// advertiser when a complex cannot answer.
package routing

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dupserve/internal/cache"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
	"dupserve/internal/stats"
)

// Address is one of the virtual SIPR addresses (0..NumAddresses-1).
type Address int

// NumAddresses is the paper's address count: twelve, giving 8 1/3 %
// shifting granularity.
const NumAddresses = 12

// Region identifies where a client enters the network (Figure 23 uses
// continent-scale regions).
type Region string

// Common regions used by the workload model.
const (
	RegionUS     Region = "us"
	RegionJapan  Region = "japan"
	RegionEurope Region = "europe"
	RegionAsia   Region = "asia" // non-Japan Asia/Pacific
	RegionOther  Region = "other"
)

// ErrNoRoute is returned when no complex advertises the address (or all
// advertisers failed).
var ErrNoRoute = errors.New("routing: no advertised route")

// ErrUnknownComplex is returned when advertising for an unregistered
// complex.
var ErrUnknownComplex = errors.New("routing: unknown complex")

// Load-based withdrawal thresholds: a complex whose aggregate load signal
// reaches loadShedStart withdraws one address (one twelfth of RR-DNS
// traffic); every further loadShedStep withdraws one more. With the paper's
// twelve addresses, a complex sheds traffic in 8 1/3 % increments as its
// load climbs — the operators' manual cost-shifting, driven by the overload
// signal instead of a pager.
const (
	loadShedStart = 1.0
	loadShedStep  = 0.25
)

type complexEntry struct {
	name     string
	node     dispatch.Node
	distance map[Region]int // backbone cost from each region
	up       bool
	load     float64          // last advised aggregate load signal
	shed     map[Address]bool // addresses withdrawn because of load
}

type advert struct {
	complexName string
	cost        int
}

// Router is the MSIRP model. Safe for concurrent use.
type Router struct {
	numAddrs int

	mu        sync.Mutex
	complexes map[string]*complexEntry
	// routes[addr] lists advertisements for the address.
	routes []([]advert)
	dnsRR  int

	requests     stats.Counter
	reroutes     stats.Counter
	shedReroutes stats.Counter
	rejected     stats.Counter
	byComplex    sync.Map // string -> *stats.Counter
	byRegion     sync.Map // Region -> *stats.Counter

	onShed func(complexName string, withdrawn, prev int) // fired outside mu
}

// NewRouter returns a router with the given number of SIPR addresses
// (use NumAddresses for the paper's configuration).
func NewRouter(numAddrs int) *Router {
	if numAddrs <= 0 {
		numAddrs = NumAddresses
	}
	return &Router{
		numAddrs:  numAddrs,
		complexes: make(map[string]*complexEntry),
		routes:    make([][]advert, numAddrs),
	}
}

// NumAddrs returns the number of SIPR addresses.
func (r *Router) NumAddrs() int { return r.numAddrs }

// OnShedChange installs a callback fired whenever SetComplexLoad changes
// how many addresses a complex has withdrawn (withdrawn is the new count,
// prev the old). It runs on the advising goroutine after the router's lock
// is released; it must not block. Intended for wiring time (the
// observability journal).
func (r *Router) OnShedChange(fn func(complexName string, withdrawn, prev int)) {
	r.mu.Lock()
	r.onShed = fn
	r.mu.Unlock()
}

// AddComplex registers a serving complex (typically a dispatch.Dispatcher)
// with its backbone distance from each client region. Regions absent from
// the map are treated as very distant.
func (r *Router) AddComplex(name string, node dispatch.Node, distance map[Region]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := make(map[Region]int, len(distance))
	for k, v := range distance {
		d[k] = v
	}
	r.complexes[name] = &complexEntry{
		name: name, node: node, distance: d, up: true,
		shed: make(map[Address]bool),
	}
}

// Advertise installs (or updates) complex's route for addr at the given
// OSPF cost. Lower cost wins.
func (r *Router) Advertise(complexName string, addr Address, cost int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.complexes[complexName]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownComplex, complexName)
	}
	if int(addr) < 0 || int(addr) >= r.numAddrs {
		return fmt.Errorf("routing: address %d out of range [0,%d)", addr, r.numAddrs)
	}
	list := r.routes[addr]
	for i := range list {
		if list[i].complexName == complexName {
			list[i].cost = cost
			return nil
		}
	}
	r.routes[addr] = append(list, advert{complexName: complexName, cost: cost})
	return nil
}

// Withdraw removes complex's advertisement for addr. Withdrawing an absent
// advertisement is a no-op.
func (r *Router) Withdraw(complexName string, addr Address) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(addr) < 0 || int(addr) >= r.numAddrs {
		return
	}
	list := r.routes[addr]
	for i := range list {
		if list[i].complexName == complexName {
			r.routes[addr] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// WithdrawAll removes every advertisement by the complex — what happens
// when a site stops advertising to move its traffic elsewhere.
func (r *Router) WithdrawAll(complexName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for a := range r.routes {
		list := r.routes[a]
		for i := 0; i < len(list); {
			if list[i].complexName == complexName {
				list = append(list[:i], list[i+1:]...)
			} else {
				i++
			}
		}
		r.routes[a] = list
	}
}

// SetComplexUp marks a complex reachable or failed. A failed complex keeps
// its advertisements (routers haven't converged yet) but Route skips it,
// modeling the OSPF withdrawal that follows an outage.
func (r *Router) SetComplexUp(complexName string, up bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.complexes[complexName]; ok {
		c.up = up
	}
}

// SetComplexLoad feeds a complex's aggregate load signal (typically its
// dispatcher's LoadSignal) into the route table. Load at or above
// loadShedStart withdraws addresses in 8 1/3 % steps — one more address per
// loadShedStep of excess — always cheapest-advertised (primary) addresses
// first, so each step actually moves a twelfth of RR-DNS traffic to the
// next-cheapest advertiser. Load falling back re-advertises in the same
// deterministic order. Unlike SetComplexUp(false), a load-shed complex still
// answers for its remaining addresses and still backstops any address whose
// other advertisers are gone (see Route's no-black-hole rule).
func (r *Router) SetComplexLoad(complexName string, load float64) error {
	r.mu.Lock()
	c, ok := r.complexes[complexName]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownComplex, complexName)
	}
	prev := len(c.shed)
	c.load = load
	steps := 0
	if load >= loadShedStart {
		steps = 1 + int((load-loadShedStart)/loadShedStep)
	}
	order := r.withdrawalOrderLocked(complexName)
	if steps > len(order) {
		steps = len(order)
	}
	c.shed = make(map[Address]bool, steps)
	for _, a := range order[:steps] {
		c.shed[a] = true
	}
	fn := r.onShed
	r.mu.Unlock()
	if fn != nil && steps != prev {
		fn(complexName, steps, prev)
	}
	return nil
}

// withdrawalOrderLocked returns the addresses complexName advertises,
// cheapest (primary) first with address number as tie-break — the
// deterministic order in which load shedding withdraws them. Caller holds mu.
func (r *Router) withdrawalOrderLocked(complexName string) []Address {
	type cand struct {
		addr Address
		cost int
	}
	var cs []cand
	for a := range r.routes {
		for _, ad := range r.routes[a] {
			if ad.complexName == complexName {
				cs = append(cs, cand{addr: Address(a), cost: ad.cost})
			}
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].cost != cs[j].cost {
			return cs[i].cost < cs[j].cost
		}
		return cs[i].addr < cs[j].addr
	})
	out := make([]Address, len(cs))
	for i, c := range cs {
		out[i] = c.addr
	}
	return out
}

// LoadShedAddrs returns the addresses currently withdrawn from the complex
// because of load, sorted.
func (r *Router) LoadShedAddrs(complexName string) []Address {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.complexes[complexName]
	if !ok {
		return nil
	}
	out := make([]Address, 0, len(c.shed))
	for a := range c.shed {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AdvertiseSpread installs the paper's standard configuration: every
// complex advertises every address; each address has exactly one primary
// complex (cost primaryCost) assigned round-robin across the complexes in
// the given order, with all other complexes advertising it at
// secondaryCost. With 4 complexes and 12 addresses each complex is primary
// for 3 addresses — the paper's layout.
func (r *Router) AdvertiseSpread(order []string, primaryCost, secondaryCost int) error {
	for a := 0; a < r.numAddrs; a++ {
		for i, name := range order {
			cost := secondaryCost
			if a%len(order) == i {
				cost = primaryCost
			}
			if err := r.Advertise(name, Address(a), cost); err != nil {
				return err
			}
		}
	}
	return nil
}

// Resolve performs one round-robin DNS resolution, returning the next SIPR
// address.
func (r *Router) Resolve() Address {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := Address(r.dnsRR % r.numAddrs)
	r.dnsRR++
	return a
}

// Route returns the complexes advertising addr ordered by effective cost
// (advertised OSPF cost + backbone distance from region), skipping failed
// complexes. The first entry is where standard IP routing would deliver
// the packet.
func (r *Router) Route(region Region, addr Address) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(addr) < 0 || int(addr) >= r.numAddrs {
		return nil
	}
	type scored struct {
		name string
		cost int
	}
	var list []scored
	collect := func(ignoreLoadShed bool) {
		list = list[:0]
		for _, ad := range r.routes[addr] {
			c := r.complexes[ad.complexName]
			if c == nil || !c.up {
				continue
			}
			if !ignoreLoadShed && c.shed[addr] {
				continue
			}
			dist, ok := c.distance[region]
			if !ok {
				dist = 1 << 20
			}
			list = append(list, scored{name: ad.complexName, cost: ad.cost + dist})
		}
	}
	collect(false)
	if len(list) == 0 {
		// No-black-hole rule: if load shedding removed every advertiser of
		// this address, the withdrawals are void for it — an overloaded
		// answer beats no answer. (A down complex stays excluded; only
		// load-shed ones come back.)
		collect(true)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].cost != list[j].cost {
			return list[i].cost < list[j].cost
		}
		return list[i].name < list[j].name
	})
	out := make([]string, len(list))
	for i, s := range list {
		out[i] = s.name
	}
	return out
}

// Request performs a full client interaction: RR-DNS resolution, least-cost
// routing from the client's region, and serving with failover to the
// next-cheapest complex if the chosen one cannot answer. It returns the
// object, the outcome, and the complex that finally served.
func (r *Router) Request(region Region, path string) (*cache.Object, httpserver.Outcome, string, error) {
	r.requests.Inc()
	r.counter(&r.byRegion, region).Inc()
	addr := r.Resolve()
	return r.RequestVia(region, addr, path)
}

// RequestVia is Request with an explicit resolved address (the simulator
// controls DNS itself to keep runs deterministic).
func (r *Router) RequestVia(region Region, addr Address, path string) (*cache.Object, httpserver.Outcome, string, error) {
	order := r.Route(region, addr)
	if len(order) == 0 {
		r.rejected.Inc()
		return nil, httpserver.OutcomeError, "", fmt.Errorf("%w: addr %d from %s", ErrNoRoute, addr, region)
	}
	for i, name := range order {
		r.mu.Lock()
		c := r.complexes[name]
		r.mu.Unlock()
		if c == nil {
			continue
		}
		obj, outcome, err := c.node.Serve(path)
		if outcome == httpserver.OutcomeShed {
			// The whole complex is saturated, not failed: reroute to the
			// next-cheapest advertiser but leave the complex up — its
			// remaining addresses keep serving and it recovers on its own.
			r.shedReroutes.Inc()
			if i < len(order)-1 {
				continue
			}
			r.rejected.Inc()
			return nil, outcome, name, err
		}
		if outcome == httpserver.OutcomeError && err != nil {
			// Complex-level failure: mark it down and reroute.
			r.SetComplexUp(name, false)
			r.reroutes.Inc()
			if i < len(order)-1 {
				continue
			}
			r.rejected.Inc()
			return nil, outcome, name, err
		}
		r.counter(&r.byComplex, name).Inc()
		return obj, outcome, name, err
	}
	r.rejected.Inc()
	return nil, httpserver.OutcomeError, "", fmt.Errorf("%w: all advertisers failed", ErrNoRoute)
}

func (r *Router) counter(m *sync.Map, key any) *stats.Counter {
	if c, ok := m.Load(key); ok {
		return c.(*stats.Counter)
	}
	c, _ := m.LoadOrStore(key, &stats.Counter{})
	return c.(*stats.Counter)
}

// RouterStats snapshots router counters.
type RouterStats struct {
	Requests int64
	Reroutes int64
	// ShedReroutes counts requests rerouted because a complex was shedding
	// under overload (the complex stayed up).
	ShedReroutes int64
	Rejected     int64
	ByComplex    map[string]int64
	ByRegion     map[Region]int64
	// LoadShed maps each complex to the number of addresses currently
	// withdrawn because of load.
	LoadShed map[string]int
}

// Stats returns a snapshot of routing counters.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Requests:     r.requests.Value(),
		Reroutes:     r.reroutes.Value(),
		ShedReroutes: r.shedReroutes.Value(),
		Rejected:     r.rejected.Value(),
		ByComplex:    make(map[string]int64),
		ByRegion:     make(map[Region]int64),
		LoadShed:     make(map[string]int),
	}
	r.mu.Lock()
	for name, c := range r.complexes {
		st.LoadShed[name] = len(c.shed)
	}
	r.mu.Unlock()
	r.byComplex.Range(func(k, v any) bool {
		st.ByComplex[k.(string)] = v.(*stats.Counter).Value()
		return true
	})
	r.byRegion.Range(func(k, v any) bool {
		st.ByRegion[k.(Region)] = v.(*stats.Counter).Value()
		return true
	})
	return st
}

// PrimaryShare returns the fraction of addresses for which the complex is
// currently the cheapest advertiser from the given region — the share of
// that region's traffic it will receive under pure RR-DNS.
func (r *Router) PrimaryShare(region Region, complexName string) float64 {
	n := 0
	for a := 0; a < r.numAddrs; a++ {
		order := r.Route(region, Address(a))
		if len(order) > 0 && order[0] == complexName {
			n++
		}
	}
	return float64(n) / float64(r.numAddrs)
}
