package audit

import (
	"encoding/json"
	"fmt"
	"io"
)

// Edge names one page↔vertex relation the completeness checker flagged.
type Edge struct {
	Page   string `json:"page"`
	Vertex string `json:"vertex"`
}

// Report is the outcome of one audit sweep. Slices are sorted, so a report
// over deterministic inputs serializes byte-identically.
type Report struct {
	Name string `json:"name"`
	// LSN is the pinned snapshot LSN every shadow render ran at.
	LSN int64 `json:"lsn"`
	// Pages is how many pages were shadow-rendered.
	Pages int `json:"pages"`
	// Samples is how many captured responses the sweep classified.
	Samples int `json:"samples"`
	// Dropped is the cumulative count of samples lost to the bounded
	// buffer.
	Dropped int64 `json:"dropped"`
	// Shed counts sampled refusals — nothing was served, so there is
	// nothing to verify, but the count keeps the ledger complete.
	Shed int `json:"shed"`
	// Unchecked counts samples for paths outside the shadow page set.
	Unchecked int `json:"unchecked"`
	// Coherent: served bytes matched the shadow render exactly.
	Coherent int `json:"coherent"`
	// BoundedStale: divergence explained by committed-but-unpropagated
	// changes or a degraded serve within its freshness budget.
	BoundedStale int `json:"bounded_stale"`
	// ViolatingStale: explained divergence whose in-flight propagation had
	// already exceeded the freshness SLO when the response was served.
	ViolatingStale int `json:"violating_stale"`
	// Incoherent: divergence no propagation explains — a consistency bug.
	Incoherent      int      `json:"incoherent"`
	IncoherentPages []string `json:"incoherent_pages,omitempty"`
	// MissingEdges are observed reads the dependence graph never declared;
	// SuperfluousEdges are declared db-level dependencies no read observed.
	MissingEdges     []Edge `json:"missing_edges,omitempty"`
	SuperfluousEdges []Edge `json:"superfluous_edges,omitempty"`
}

// OK reports whether the sweep found a provably coherent plant: zero
// incoherent samples and a complete, minimal dependence graph.
func (r *Report) OK() bool {
	return r.Incoherent == 0 && len(r.MissingEdges) == 0 && len(r.SuperfluousEdges) == 0
}

// Write renders the report as stable, human-readable text: one summary
// line, then one line per incoherent page and flagged edge.
func (r *Report) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"audit %s: lsn=%d pages=%d samples=%d coherent=%d bounded_stale=%d violating_stale=%d incoherent=%d shed=%d unchecked=%d missing_edges=%d superfluous_edges=%d ok=%t\n",
		r.Name, r.LSN, r.Pages, r.Samples, r.Coherent, r.BoundedStale,
		r.ViolatingStale, r.Incoherent, r.Shed, r.Unchecked,
		len(r.MissingEdges), len(r.SuperfluousEdges), r.OK())
	if err != nil {
		return err
	}
	for _, p := range r.IncoherentPages {
		if _, err := fmt.Fprintf(w, "incoherent page %s\n", p); err != nil {
			return err
		}
	}
	for _, e := range r.MissingEdges {
		if _, err := fmt.Fprintf(w, "missing edge %s <- %s\n", e.Page, e.Vertex); err != nil {
			return err
		}
	}
	for _, e := range r.SuperfluousEdges {
		if _, err := fmt.Fprintf(w, "superfluous edge %s <- %s\n", e.Page, e.Vertex); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON serializes the report as indented JSON (the /debug/audit
// payload).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
