package audit_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dupserve/internal/deploy"
	"dupserve/internal/routing"
	"dupserve/internal/site"
)

// TestCoalescedBurstLeavesNoIncoherentPages proves trigger coalescing is
// lossless: when a burst of commits lands inside one batch window and the
// monitor absorbs them into fewer propagations, every page still converges
// to the state the data dictates. The audit sweep is the oracle — after
// the burst settles, a probe of the full page set must come back entirely
// coherent with zero incoherent pages.
func TestCoalescedBurstLeavesNoIncoherentPages(t *testing.T) {
	spec := site.Spec{
		Sports: 1, EventsPerSport: 2, Athletes: 8, Countries: 3,
		NewsStories: 1, Days: 1, EventsPerAthlete: 1, Languages: []string{"en"},
	}
	d, err := deploy.New(deploy.Config{
		Spec: spec,
		Complexes: []deploy.ComplexSpec{{
			Name: "tokyo", Frames: 1, NodesPerFrame: 2,
			Distance: map[routing.Region]int{
				routing.RegionJapan: 1, routing.RegionUS: 2, routing.RegionEurope: 3,
			},
		}},
		// A wide batch window so a rapid burst of commits lands in one
		// batch and coalesces.
		BatchWindow: 40 * time.Millisecond,
	}, deploy.WithTracing(time.Minute), deploy.WithAudit())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Shutdown(context.Background()) }()
	if err := d.Prime(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	cx := d.Complexes()[0]
	events := d.MasterSite.Events

	// Commit bursts until the monitor reports coalescing. A batch only
	// absorbs under backpressure once it reaches BatchSize (16), so each
	// round fires well past that back-to-back.
	var coalesced int64
	for round := 0; round < 50 && coalesced == 0; round++ {
		for i, ev := range events {
			for j := 0; j < 24; j++ {
				if _, err := d.MasterSite.RecordPartial(ev,
					ev.Participants[(i+j)%len(ev.Participants)],
					fmt.Sprintf("burst.%d.%d.%d", round, i, j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !d.WaitFresh(10 * time.Second) {
			t.Fatal("plant did not converge after burst")
		}
		coalesced = cx.Monitor().Stats().Coalesced
	}
	if coalesced == 0 {
		t.Fatal("burst never coalesced; batch window not exercised")
	}

	// Quiescent probe: serve every page once and audit. Coalescing must
	// not have skipped any refresh.
	cx.Auditor.Discard()
	pages := cx.Site.Pages()
	for _, p := range pages {
		if _, _, err := cx.Cluster.Serve(p); err != nil {
			t.Fatalf("probe %s: %v", p, err)
		}
	}
	rep, err := cx.Auditor.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != len(pages) {
		t.Fatalf("probed %d pages, sweep saw %d samples", len(pages), rep.Samples)
	}
	if rep.Incoherent != 0 || len(rep.IncoherentPages) != 0 {
		t.Fatalf("coalesced burst left incoherent pages: %v", rep.IncoherentPages)
	}
	if rep.Coherent != rep.Samples {
		t.Fatalf("coherent=%d of %d samples after convergence: %+v",
			rep.Coherent, rep.Samples, rep)
	}
	if len(rep.MissingEdges) != 0 || len(rep.SuperfluousEdges) != 0 {
		t.Fatalf("completeness diff: missing=%v superfluous=%v",
			rep.MissingEdges, rep.SuperfluousEdges)
	}
}
