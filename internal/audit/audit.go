// Package audit is the consistency oracle for DUP: it proves, rather than
// assumes, that what the plant serves matches what the data says.
//
// The paper's whole value proposition rests on the object dependence graph
// being *complete* — every row a renderer reads must be declared as a
// dependency, or update-in-place silently serves stale bytes forever. The
// test suite exercises propagation, but nothing in it can tell a correctly
// propagated page from one whose missing edge simply never triggered a
// refresh. This package closes that gap with two instruments:
//
//   - A shadow-render oracle. Served responses (hits, misses, degraded
//     stale serves, sheds) are sampled via an httpserver.ResponseTap. A
//     sweep snapshots the replica at a pinned LSN, re-renders every page
//     against that snapshot with a fresh engine, and compares served bytes
//     to shadow bytes. Divergence is classified: *bounded-stale* when
//     committed-but-unpropagated changes explain it (or a degraded serve
//     stayed inside its freshness budget), *SLO-violating-stale* when the
//     explaining propagation had already exceeded the freshness SLO, and
//     *incoherent* when no change between the served version and the
//     snapshot reaches the page through the dependence graph — a real bug.
//
//   - An ODG completeness checker. The shadow renders run against a
//     read-tracking database view (db.SetReadHook), so the sweep knows
//     exactly which rows and membership indices each page's render
//     observed. Reads that do not reach the page through the shadow graph
//     are *missing edges* (the renderer read data it never declared);
//     declared db-level dependencies that no read observed are
//     *superfluous edges* (the declaration over-approximates, costing
//     needless regeneration).
//
// The classifier deliberately diffs against the graph the shadow renders
// themselves register, not the live complex's graph: under
// core.PolicyInvalidate a live graph lags for pages currently invalidated,
// which would flag healthy renderers. The shadow graph checks the renderer
// contract itself — "every read goes through the context" — independent of
// propagation state.
package audit

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/odg"
	"dupserve/internal/stats"
	"dupserve/internal/trace"
)

// SiteBuilder constructs the page set under audit against the given
// database, registering dependencies with registrar, and returns the render
// engine plus every auditable page path. The auditor calls it once per
// sweep with a freshly restored shadow database; builders must define
// renderers only, never seed data (site.BuildReplica has exactly this
// shape).
type SiteBuilder func(database *db.DB, registrar fragment.Registrar) (*fragment.Engine, []string, error)

// Config describes an Auditor.
type Config struct {
	// Name labels the auditor (typically the complex name).
	Name string
	// Replica is the database the audited complex renders from; sweeps
	// snapshot it and classify divergence using its retained log.
	Replica *db.DB
	// Build constructs the shadow site for each sweep.
	Build SiteBuilder
	// Indexer maps a change to its ODG vertices, exactly as the trigger
	// monitor's indexer does (site.Indexer). Nil uses Change.ChangeID only,
	// which misses membership indices — wire the real one when available.
	Indexer func(db.Change) []odg.NodeID
	// Tracer, when set, supplies in-flight propagation state at sample
	// time, used to distinguish bounded from SLO-violating staleness.
	Tracer *trace.Tracer
	// StaleBudget is the bound a degraded (OutcomeStale) response must
	// respect; within it the response is bounded-stale by contract.
	StaleBudget time.Duration
	// SLO is the freshness objective: explained divergence whose oldest
	// in-flight propagation exceeded it at serve time is SLO-violating.
	// Zero disables the violating classification.
	SLO time.Duration
	// MaxSamples bounds the sample buffer between sweeps (default 4096);
	// excess samples are dropped and counted.
	MaxSamples int
	// SampleEvery keeps one response in every n observed (default 1: keep
	// all).
	SampleEvery int
	// OnIncoherent, if set, is called once per incoherent page found by a
	// sweep, in sorted page order (on the sweeping goroutine). The
	// observability journal wires in here; the callback must not block.
	OnIncoherent func(page string)
}

// sample is one served response captured for the next sweep.
type sample struct {
	node     string
	path     string
	outcome  httpserver.Outcome
	body     []byte
	version  int64
	staleAge time.Duration
	// replicaLSN, inFlight and worst snapshot propagation state at capture
	// time.
	replicaLSN int64
	inFlight   int
	worst      time.Duration
}

// Auditor samples served responses and sweeps them against shadow renders.
// Observe is safe for concurrent use from many serving nodes; Sweep may run
// concurrently with Observe but not with another Sweep.
type Auditor struct {
	cfg Config

	mu      sync.Mutex
	seq     int64
	samples []sample

	observed   stats.Counter
	dropped    stats.Counter
	sweeps     stats.Counter
	coherent   stats.Counter
	bounded    stats.Counter
	violating  stats.Counter
	incoherent stats.Counter
	unchecked  stats.Counter
	pages      stats.Gauge
	missing    stats.Gauge
	superfl    stats.Gauge
}

// New returns an Auditor. Config.Replica and Config.Build are required.
func New(cfg Config) *Auditor {
	if cfg.Replica == nil || cfg.Build == nil {
		panic("audit: Config.Replica and Config.Build are required")
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Replica.Name()
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 4096
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.Indexer == nil {
		cfg.Indexer = func(c db.Change) []odg.NodeID {
			return []odg.NodeID{odg.NodeID(c.ChangeID())}
		}
	}
	return &Auditor{cfg: cfg}
}

// Name returns the auditor's label.
func (a *Auditor) Name() string { return a.cfg.Name }

// Observe captures one served response. It is the httpserver.ResponseTap
// for every node of the audited complex, so it runs on the request path:
// it snapshots the replica LSN and in-flight propagation state, appends to
// a bounded buffer, and returns.
func (a *Auditor) Observe(s httpserver.ResponseSample) {
	a.observed.Inc()
	var body []byte
	var version int64
	if s.Object != nil {
		body = s.Object.Value
		version = s.Object.Version
	}
	smp := sample{
		node:       s.Node,
		path:       s.Path,
		outcome:    s.Outcome,
		body:       body,
		version:    version,
		staleAge:   s.StaleAge,
		replicaLSN: a.cfg.Replica.LSN(),
	}
	if a.cfg.Tracer != nil {
		smp.inFlight = a.cfg.Tracer.InFlight()
		smp.worst = a.cfg.Tracer.WorstInFlight()
	}
	a.mu.Lock()
	a.seq++
	keep := a.seq%int64(a.cfg.SampleEvery) == 0
	if keep && len(a.samples) >= a.cfg.MaxSamples {
		keep = false
		a.dropped.Inc()
	}
	if keep {
		a.samples = append(a.samples, smp)
	}
	a.mu.Unlock()
}

// Discard drops all buffered samples, returning how many were discarded.
// Callers use it to mark an epoch: everything served before this point is
// outside the next sweep.
func (a *Auditor) Discard() int {
	a.mu.Lock()
	n := len(a.samples)
	a.samples = nil
	a.mu.Unlock()
	return n
}

// Sweep drains the buffered samples, shadow-renders the full page set
// against a pinned-LSN snapshot of the replica, runs the ODG completeness
// diff, classifies every sample, and returns the report. Counters and
// gauges registered via RegisterMetrics are updated as a side effect.
func (a *Auditor) Sweep() (*Report, error) {
	a.mu.Lock()
	samples := a.samples
	a.samples = nil
	a.mu.Unlock()
	a.sweeps.Inc()

	snap := a.cfg.Replica.Snapshot()
	shadow := db.New(a.cfg.Name + "-shadow")
	if err := shadow.Restore(snap); err != nil {
		return nil, fmt.Errorf("audit: shadow restore: %w", err)
	}
	reg := &shadowGraph{graph: odg.New()}
	engine, pages, err := a.cfg.Build(shadow, reg)
	if err != nil {
		return nil, fmt.Errorf("audit: shadow build: %w", err)
	}
	sort.Strings(pages)

	// Render every page with per-page read windows. Reads and dependency
	// registrations recorded inside a window belong to that page (including
	// fragments first rendered while the page included them).
	coll := &readCollector{}
	shadow.SetReadHook(coll.record)
	rendered := make(map[string][]byte, len(pages))
	rep := &Report{Name: a.cfg.Name, LSN: snap.LSN, Pages: len(pages), Dropped: a.dropped.Value()}
	edgeSeen := make(map[Edge]struct{})
	for _, p := range pages {
		coll.reset()
		reg.resetWindow()
		obj, err := engine.Generate(cache.Key(p), snap.LSN)
		if err != nil {
			shadow.SetReadHook(nil)
			return nil, fmt.Errorf("audit: shadow render %s: %w", p, err)
		}
		rendered[p] = obj.Value
		// Missing edges: observed reads that do not reach this page through
		// the graph the shadow renders registered.
		for _, id := range coll.list() {
			if !reg.reaches(odg.NodeID(id), p) {
				addEdge(&rep.MissingEdges, edgeSeen, Edge{Page: p, Vertex: id})
			}
		}
		// Superfluous edges: declared db-level dependencies of objects
		// registered in this window that no read observed.
		for _, r := range reg.window {
			for _, dep := range r.deps {
				if strings.HasPrefix(string(dep), "db:") && !coll.saw(string(dep)) {
					addEdge(&rep.SuperfluousEdges, edgeSeen, Edge{Page: p, Vertex: string(dep)})
				}
			}
		}
	}
	shadow.SetReadHook(nil)

	// Classify every sample against the shadow renders.
	incoherentPages := make(map[string]struct{})
	affects := make(map[odg.NodeID]map[string]struct{})
	for _, s := range samples {
		rep.Samples++
		switch a.classify(s, rendered, reg.graph, snap.LSN, affects) {
		case verdictShed:
			rep.Shed++
		case verdictUnchecked:
			rep.Unchecked++
			a.unchecked.Inc()
		case verdictCoherent:
			rep.Coherent++
			a.coherent.Inc()
		case verdictBounded:
			rep.BoundedStale++
			a.bounded.Inc()
		case verdictViolating:
			rep.ViolatingStale++
			a.violating.Inc()
		case verdictIncoherent:
			rep.Incoherent++
			a.incoherent.Inc()
			incoherentPages[s.path] = struct{}{}
		}
	}
	for p := range incoherentPages {
		rep.IncoherentPages = append(rep.IncoherentPages, p)
	}
	sort.Strings(rep.IncoherentPages)
	if a.cfg.OnIncoherent != nil {
		for _, p := range rep.IncoherentPages {
			a.cfg.OnIncoherent(p)
		}
	}
	sortEdges(rep.MissingEdges)
	sortEdges(rep.SuperfluousEdges)

	a.pages.Set(int64(rep.Pages))
	a.missing.Set(int64(len(rep.MissingEdges)))
	a.superfl.Set(int64(len(rep.SuperfluousEdges)))
	return rep, nil
}

type verdict int

const (
	verdictShed verdict = iota
	verdictUnchecked
	verdictCoherent
	verdictBounded
	verdictViolating
	verdictIncoherent
)

// classify decides what one sample's divergence (if any) means.
//
// The load-bearing step is "explained": a divergence is propagation lag,
// not a bug, iff some change committed after the served body's version (and
// at or before the snapshot) reaches the page through the shadow graph — or
// propagation was still in flight when the response was captured, which
// covers the one lag the log cannot see (a miss render splicing a fragment
// whose own refresh had not yet run, stamping a version at or above the
// change). At quiescence the in-flight escape is inert — InFlight is zero —
// so quiescent sweeps are exactly as sharp as the log-based check.
func (a *Auditor) classify(s sample, rendered map[string][]byte, g *odg.Graph, snapLSN int64, affects map[odg.NodeID]map[string]struct{}) verdict {
	if s.outcome == httpserver.OutcomeShed || s.body == nil {
		return verdictShed
	}
	want, ok := rendered[s.path]
	if !ok {
		return verdictUnchecked
	}
	if bytes.Equal(s.body, want) {
		return verdictCoherent
	}
	explained := s.inFlight > 0
	if !explained && snapLSN > s.version {
		// The explanation needs every transaction in (version, snapLSN].
		// If truncation (or a snapshot bootstrap) removed part of that
		// range from the retained log, err toward lag rather than raising
		// a false alarm.
		oldest := a.cfg.Replica.OldestRetainedLSN()
		if oldest == 0 || oldest > s.version+1 {
			explained = true
		}
	}
	if !explained {
		for _, tx := range a.cfg.Replica.LogSince(s.version) {
			if tx.LSN > snapLSN {
				break
			}
			for _, c := range tx.Changes {
				for _, id := range a.cfg.Indexer(c) {
					if a.affectsPage(g, id, s.path, affects) {
						explained = true
					}
				}
			}
			if explained {
				break
			}
		}
	}
	if !explained {
		return verdictIncoherent
	}
	if s.outcome == httpserver.OutcomeStale && a.cfg.StaleBudget > 0 && s.staleAge <= a.cfg.StaleBudget {
		return verdictBounded
	}
	if a.cfg.SLO > 0 && s.worst > a.cfg.SLO {
		return verdictViolating
	}
	return verdictBounded
}

// affectsPage reports whether changed vertex id reaches page in g,
// memoizing the affected set per vertex across one sweep.
func (a *Auditor) affectsPage(g *odg.Graph, id odg.NodeID, page string, memo map[odg.NodeID]map[string]struct{}) bool {
	set, ok := memo[id]
	if !ok {
		set = make(map[string]struct{})
		for _, n := range g.Affected(id) {
			set[string(n)] = struct{}{}
		}
		memo[id] = set
	}
	_, hit := set[page]
	return hit
}

// RegisterMetrics publishes the audit_* metric families.
func (a *Auditor) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	labels := stats.Labels{"auditor": a.cfg.Name}
	for k, v := range extra {
		labels[k] = v
	}
	reg.RegisterCounter("audit_samples_total", "served responses observed by the auditor", labels, &a.observed)
	reg.RegisterCounter("audit_samples_dropped_total", "samples dropped by the bounded buffer", labels, &a.dropped)
	reg.RegisterCounter("audit_sweeps_total", "shadow-render sweeps executed", labels, &a.sweeps)
	reg.RegisterCounter("audit_coherent_total", "samples whose bytes matched the shadow render", labels, &a.coherent)
	reg.RegisterCounter("audit_bounded_stale_total", "divergent samples explained by in-flight propagation or within the stale budget", labels, &a.bounded)
	reg.RegisterCounter("audit_violating_stale_total", "explained divergence whose propagation exceeded the freshness SLO", labels, &a.violating)
	reg.RegisterCounter("audit_incoherent_total", "divergent samples no propagation explains — consistency bugs", labels, &a.incoherent)
	reg.RegisterCounter("audit_unchecked_total", "samples for paths outside the shadow page set", labels, &a.unchecked)
	reg.RegisterFunc("audit_pages_checked", "pages shadow-rendered in the last sweep", labels,
		func() float64 { return float64(a.pages.Value()) })
	reg.RegisterFunc("audit_missing_edges", "observed reads not declared in the ODG (last sweep)", labels,
		func() float64 { return float64(a.missing.Value()) })
	reg.RegisterFunc("audit_superfluous_edges", "declared db-level dependencies no read observed (last sweep)", labels,
		func() float64 { return float64(a.superfl.Value()) })
}

// shadowGraph is the capturing registrar: it maintains the dependence graph
// the shadow renders declare (via the same ReplaceDependencies semantics as
// core.Engine) and records registrations per render window for the
// superfluous-edge diff.
type shadowGraph struct {
	graph  *odg.Graph
	window []registration
	memo   map[odg.NodeID]map[string]struct{}
}

type registration struct {
	key  cache.Key
	deps []odg.NodeID
}

func (r *shadowGraph) RegisterObject(key cache.Key, deps []odg.NodeID) {
	r.graph.ReplaceDependencies(odg.NodeID(key), deps)
	r.window = append(r.window, registration{key: key, deps: deps})
}

func (r *shadowGraph) RegisterFragment(key cache.Key, deps []odg.NodeID) {
	r.graph.ReplaceDependencies(odg.NodeID(key), deps)
	r.graph.AddNode(odg.NodeID(key), odg.KindBoth)
	r.window = append(r.window, registration{key: key, deps: deps})
}

func (r *shadowGraph) resetWindow() {
	r.window = r.window[:0]
	// Registrations change the graph, so reachability memos go stale with
	// every window.
	r.memo = nil
}

// reaches reports whether vertex id transitively affects page.
func (r *shadowGraph) reaches(id odg.NodeID, page string) bool {
	if r.memo == nil {
		r.memo = make(map[odg.NodeID]map[string]struct{})
	}
	set, ok := r.memo[id]
	if !ok {
		set = make(map[string]struct{})
		for _, n := range r.graph.Affected(id) {
			set[string(n)] = struct{}{}
		}
		r.memo[id] = set
	}
	_, hit := set[page]
	return hit
}

// readCollector accumulates the vertex names a render window read. record
// runs under the shadow database's read lock, so it only appends.
type readCollector struct {
	ids  []string
	seen map[string]struct{}
}

func (c *readCollector) record(id string) {
	if _, dup := c.seen[id]; dup {
		return
	}
	if c.seen == nil {
		c.seen = make(map[string]struct{})
	}
	c.seen[id] = struct{}{}
	c.ids = append(c.ids, id)
}

func (c *readCollector) reset() {
	c.ids = c.ids[:0]
	c.seen = make(map[string]struct{})
}

func (c *readCollector) list() []string {
	out := append([]string(nil), c.ids...)
	sort.Strings(out)
	return out
}

func (c *readCollector) saw(id string) bool {
	_, ok := c.seen[id]
	return ok
}

func addEdge(dst *[]Edge, seen map[Edge]struct{}, e Edge) {
	if _, dup := seen[e]; dup {
		return
	}
	seen[e] = struct{}{}
	*dst = append(*dst, e)
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Page != edges[j].Page {
			return edges[i].Page < edges[j].Page
		}
		return edges[i].Vertex < edges[j].Vertex
	})
}
