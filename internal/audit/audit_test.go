package audit_test

import (
	"sync"
	"testing"
	"time"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/site"
	"dupserve/internal/trace"
)

// tinySite defines a single page reading one row through the context —
// a minimal correct site for classification tests.
func tinySite(database *db.DB, reg fragment.Registrar) (*fragment.Engine, []string, error) {
	fe := fragment.New(fragment.Config{DB: database, Registrar: reg})
	fe.Define("/p", func(ctx *fragment.Context) ([]byte, error) {
		row, _, err := ctx.Get("t", "k")
		if err != nil {
			return nil, err
		}
		return []byte("v=" + row.Cols["v"]), nil
	})
	return fe, []string{"/p"}, nil
}

func seedTiny(t *testing.T) *db.DB {
	t.Helper()
	master := db.New("tiny")
	master.CreateTable("t")
	if _, err := master.Commit(master.NewTx().
		Put("t", "k", map[string]string{"v": "1"})); err != nil {
		t.Fatal(err)
	}
	return master
}

func page(body string, version int64) *cache.Object {
	return &cache.Object{Key: "/p", Value: []byte(body), Version: version}
}

// TestClassification drives one crafted sample through every verdict the
// classifier can return and checks the report's exact counts.
func TestClassification(t *testing.T) {
	master := seedTiny(t)
	tracer := trace.New(trace.WithSLO(time.Second))
	aud := audit.New(audit.Config{
		Name:        "tiny",
		Replica:     master,
		Build:       tinySite,
		Tracer:      tracer,
		StaleBudget: time.Minute,
		SLO:         time.Second,
	})

	// Second commit: the shadow snapshot will sit at LSN 2 with body v=2.
	if _, err := master.Commit(master.NewTx().
		Put("t", "k", map[string]string{"v": "2"})); err != nil {
		t.Fatal(err)
	}

	// Coherent: served bytes match the shadow render.
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeHit, Object: page("v=2", 2)})
	// Bounded-stale: old bytes, but the v=2 commit is in the retained log
	// and reaches /p through the graph — propagation lag, not a bug.
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeHit, Object: page("v=1", 1)})
	// Bounded-stale by contract: a degraded serve inside its budget.
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeStale, Object: page("v=1", 1),
		StaleAge: time.Second})
	// Incoherent: divergent bytes at the snapshot's own LSN — no later
	// change exists to explain them.
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeHit, Object: page("garbage", 2)})
	// Shed: no body to check.
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeShed})
	// Unchecked: a path outside the shadow page set.
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/nope",
		Outcome: httpserver.OutcomeHit, Object: &cache.Object{Key: "/nope", Value: []byte("x")}})
	// SLO-violating: stale bytes captured while a propagation two seconds
	// old (twice the SLO) was still in flight.
	tracer.Arrive(99, time.Now().Add(-2*time.Second))
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeHit, Object: page("v=1", 1)})

	rep, err := aud.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 7 {
		t.Fatalf("samples=%d, want 7", rep.Samples)
	}
	if rep.Coherent != 1 || rep.BoundedStale != 2 || rep.ViolatingStale != 1 ||
		rep.Incoherent != 1 || rep.Shed != 1 || rep.Unchecked != 1 {
		t.Fatalf("verdicts: %+v", rep)
	}
	if len(rep.IncoherentPages) != 1 || rep.IncoherentPages[0] != "/p" {
		t.Fatalf("incoherent pages = %v, want [/p]", rep.IncoherentPages)
	}
	// The tiny site is correct: no completeness findings.
	if len(rep.MissingEdges) != 0 || len(rep.SuperfluousEdges) != 0 {
		t.Fatalf("completeness diff on a correct site: missing=%v superfluous=%v",
			rep.MissingEdges, rep.SuperfluousEdges)
	}
	if rep.OK() {
		t.Fatal("report OK despite an incoherent sample")
	}
}

// TestSweepDrainsSamples checks that a sweep consumes the buffer: the
// next sweep classifies nothing.
func TestSweepDrainsSamples(t *testing.T) {
	master := seedTiny(t)
	aud := audit.New(audit.Config{Replica: master, Build: tinySite})
	aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
		Outcome: httpserver.OutcomeHit, Object: page("v=1", 1)})
	rep, err := aud.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1 {
		t.Fatalf("first sweep samples=%d, want 1", rep.Samples)
	}
	rep, err = aud.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 0 {
		t.Fatalf("second sweep samples=%d, want 0", rep.Samples)
	}
}

// TestBufferBound checks the bounded sample buffer drops and counts
// overflow instead of growing.
func TestBufferBound(t *testing.T) {
	master := seedTiny(t)
	aud := audit.New(audit.Config{Replica: master, Build: tinySite, MaxSamples: 2})
	for i := 0; i < 5; i++ {
		aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
			Outcome: httpserver.OutcomeHit, Object: page("v=1", 1)})
	}
	rep, err := aud.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 2 {
		t.Fatalf("samples=%d, want 2 (MaxSamples)", rep.Samples)
	}
	if rep.Dropped != 3 {
		t.Fatalf("dropped=%d, want 3", rep.Dropped)
	}
}

// TestCompletenessCleanOnRealSite sweeps the full Olympic site and
// requires a clean completeness diff: every read the renderers perform is
// declared, and nothing declared goes unread. This is the standing proof
// that the production ODG is complete and minimal.
func TestCompletenessCleanOnRealSite(t *testing.T) {
	spec := site.Spec{
		Sports: 2, EventsPerSport: 2, Athletes: 12, Countries: 4,
		NewsStories: 2, Days: 2, EventsPerAthlete: 1, Languages: []string{"en"},
	}
	master := db.New("master")
	st, err := site.Build(spec, master, nil)
	if err != nil {
		t.Fatal(err)
	}
	aud := audit.New(audit.Config{
		Name:    "real",
		Replica: master,
		Build: func(sdb *db.DB, reg fragment.Registrar) (*fragment.Engine, []string, error) {
			s, err := site.BuildReplica(spec, sdb, reg)
			if err != nil {
				return nil, nil, err
			}
			return s.Engine, s.Pages(), nil
		},
		Indexer: st.Indexer,
	})
	rep, err := aud.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pages != len(st.Pages()) || rep.Pages == 0 {
		t.Fatalf("pages=%d, want %d", rep.Pages, len(st.Pages()))
	}
	if len(rep.MissingEdges) != 0 {
		t.Fatalf("missing edges on the real site: %v", rep.MissingEdges)
	}
	if len(rep.SuperfluousEdges) != 0 {
		t.Fatalf("superfluous edges on the real site: %v", rep.SuperfluousEdges)
	}
	if !rep.OK() {
		t.Fatalf("report not OK: %+v", rep)
	}
}

// TestObserveConcurrentWithSweep exercises the Observe/Sweep locking under
// the race detector.
func TestObserveConcurrentWithSweep(t *testing.T) {
	master := seedTiny(t)
	aud := audit.New(audit.Config{Replica: master, Build: tinySite})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				aud.Observe(httpserver.ResponseSample{Node: "n", Path: "/p",
					Outcome: httpserver.OutcomeHit, Object: page("v=1", 1)})
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if _, err := aud.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if _, err := aud.Sweep(); err != nil {
		t.Fatal(err)
	}
}
