package wire

import (
	"context"
	"errors"
	"sync"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
)

// readyReporter / loadSignaler mirror the optional node interfaces the
// dispatcher probes through (dispatch.ReadyReporter and its unexported load
// signal); declaring them structurally here keeps wire usable with any node
// implementation.
type readyReporter interface{ Ready() bool }
type loadSignaler interface{ LoadSignal() float64 }

// RegisterNode exposes a serving node over s for the dispatcher's two
// remote needs: TypeServe forwards one request path and returns the
// outcome, and TypePing answers health probes with readiness plus the
// node's load signal — the wire form of the ISS advisor conversation.
func RegisterNode(s *Server, n dispatch.Node) {
	s.Handle(TypeServe, func(payload []byte) ([]byte, error) {
		path, err := DecodeString(payload)
		if err != nil {
			return nil, err
		}
		obj, outcome, serveErr := n.Serve(path)
		r := ServeResult{Outcome: outcome, Object: obj}
		if serveErr != nil {
			r.Err = serveErr.Error()
		}
		return EncodeServeResult(nil, r), nil
	})
	s.Handle(TypePing, func(payload []byte) ([]byte, error) {
		p := Pong{Ready: true}
		if rr, ok := n.(readyReporter); ok {
			p.Ready = rr.Ready()
		}
		if ls, ok := n.(loadSignaler); ok {
			p.Load = ls.LoadSignal()
		}
		return EncodePong(nil, p), nil
	})
}

// RemoteNode fronts a node in another process as a dispatch.Node: Serve
// forwards the request over the wire, Ready and LoadSignal ride the
// TypePing probe. A dispatcher pools RemoteNodes exactly as it pools local
// servers — probe failures pull the node from the distribution list, so a
// dead process degrades into failover, not errors.
type RemoteNode struct {
	name string
	c    *Client

	// Probes are cached briefly: the dispatcher reads LoadSignal on every
	// selection, and a wire round trip per selection would put the probe
	// plane on the serve path's latency budget.
	probeTTL time.Duration
	mu       sync.Mutex
	lastPong Pong
	lastAt   time.Time
	lastOK   bool
}

// NewRemoteNode wraps c as a dispatchable node named name.
func NewRemoteNode(name string, c *Client, opts ...RemoteNodeOption) *RemoteNode {
	n := &RemoteNode{name: name, c: c, probeTTL: 25 * time.Millisecond}
	for _, o := range opts {
		o(n)
	}
	return n
}

// RemoteNodeOption configures a RemoteNode.
type RemoteNodeOption func(*RemoteNode)

// WithProbeTTL sets how long one ping answer is reused for Ready and
// LoadSignal before a fresh probe is sent (default 25ms).
func WithProbeTTL(d time.Duration) RemoteNodeOption {
	return func(n *RemoteNode) {
		if d > 0 {
			n.probeTTL = d
		}
	}
}

// Name implements dispatch.Node.
func (n *RemoteNode) Name() string { return n.name }

// Client returns the underlying wire client.
func (n *RemoteNode) Client() *Client { return n.c }

// Serve implements dispatch.Node by forwarding the path over the wire.
func (n *RemoteNode) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	resp, err := n.c.Call(context.Background(), TypeServe, EncodeString(nil, path))
	if err != nil {
		return nil, httpserver.OutcomeError, err
	}
	r, err := DecodeServeResult(resp)
	if err != nil {
		return nil, httpserver.OutcomeError, err
	}
	if r.Err != "" {
		return r.Object, r.Outcome, errors.New(r.Err)
	}
	return r.Object, r.Outcome, nil
}

// probe returns a fresh-enough pong, sending a TypePing when the cache
// expired. ok is false when the node is unreachable.
func (n *RemoteNode) probe() (Pong, bool) {
	n.mu.Lock()
	if time.Since(n.lastAt) < n.probeTTL {
		p, ok := n.lastPong, n.lastOK
		n.mu.Unlock()
		return p, ok
	}
	n.mu.Unlock()

	p, ok := Pong{}, false
	if resp, err := n.c.Call(context.Background(), TypePing, nil); err == nil {
		if pong, derr := DecodePong(resp); derr == nil {
			p, ok = pong, true
		}
	}
	n.mu.Lock()
	n.lastPong, n.lastOK, n.lastAt = p, ok, time.Now()
	n.mu.Unlock()
	return p, ok
}

// Ready implements dispatch.ReadyReporter: an unreachable node is not
// ready — exactly the signal that makes the dispatcher fail over.
func (n *RemoteNode) Ready() bool {
	p, ok := n.probe()
	return ok && p.Ready
}

// LoadSignal reports the remote node's overload signal (0 when the node is
// unreachable; Ready gates admission, not load).
func (n *RemoteNode) LoadSignal() float64 {
	p, _ := n.probe()
	return p.Load
}

// Close closes the underlying client.
func (n *RemoteNode) Close() { n.c.Close() }
