package wire

import (
	"bytes"
	"testing"

	"dupserve/internal/db"
)

// FuzzDecodeFrame asserts DecodeFrame never panics on arbitrary bytes and
// that anything it accepts re-encodes byte-identically (the frame format is
// canonical: one encoding per frame).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: TypePing, ID: 1}))
	f.Add(AppendFrame(nil, Frame{Type: TypePush, ID: 42, Payload: []byte("page bytes")}))
	f.Add(AppendFrame(nil, Frame{Type: TypeTxn, ID: 7,
		Payload: EncodeTransaction(nil, db.Transaction{LSN: 3})}))
	f.Add([]byte("DUPW"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerSize+trailerSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < headerSize+trailerSize || n > len(data) {
			t.Fatalf("accepted frame reports impossible size %d (input %d)", n, len(data))
		}
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted frame does not re-encode canonically")
		}
		// The stream path must agree with the buffer path.
		fr2, n2, err := ReadFrame(bytes.NewReader(data[:n]))
		if err != nil || n2 != n || fr2.Type != fr.Type || fr2.ID != fr.ID ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("stream decode disagrees with buffer decode: %v", err)
		}
	})
}

// FuzzDecodeTransaction asserts the transaction codec never panics and
// that accepted payloads re-encode to something that decodes to the same
// transaction (maps make byte-identity too strong a property).
func FuzzDecodeTransaction(f *testing.F) {
	f.Add(EncodeTransaction(nil, db.Transaction{LSN: 1, Changes: []db.Change{
		{Table: "results", Key: "k", Op: db.OpPut, Cols: map[string]string{"a": "b"}}}}))
	f.Add(EncodeTransaction(nil, db.Transaction{}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTransaction(data)
		if err != nil {
			return
		}
		tx2, err := DecodeTransaction(EncodeTransaction(nil, tx))
		if err != nil {
			t.Fatalf("re-decode of accepted transaction failed: %v", err)
		}
		if tx2.LSN != tx.LSN || len(tx2.Changes) != len(tx.Changes) {
			t.Fatalf("decode not stable: %+v vs %+v", tx, tx2)
		}
	})
}
