package wire

import (
	"context"
	"fmt"
	"sync"

	"dupserve/internal/db"
)

// RegisterReplica exposes replica over s as a log-shipping target: TypeTxn
// applies one transaction and acks with the replica's resulting LSN,
// TypeLSN answers the current LSN. The handler is idempotent below the
// replica's LSN — a transaction the replica already holds (a retry whose
// original ack was lost with the connection) acks success instead of
// tripping the LSN-gap check, so at-least-once delivery over a flaky link
// converges instead of wedging.
func RegisterReplica(s *Server, replica *db.DB) {
	s.Handle(TypeTxn, func(payload []byte) ([]byte, error) {
		tx, err := DecodeTransaction(payload)
		if err != nil {
			return nil, err
		}
		if tx.LSN > replica.LSN() {
			if err := replica.Apply(tx); err != nil {
				return nil, err
			}
		}
		return EncodeUint(nil, uint64(replica.LSN())), nil
	})
	s.Handle(TypeLSN, func(payload []byte) ([]byte, error) {
		return EncodeUint(nil, uint64(replica.LSN())), nil
	})
}

// ReplicaClient fronts a remote replica as a db.Target: Apply ships the
// transaction as a TypeTxn frame and waits for the ack carrying the
// replica's LSN. Transport failures surface as transient errors, which
// db.StartReplicationTo parks on and retries in order — the networked
// equivalent of the local partition hold.
type ReplicaClient struct {
	c *Client

	mu      sync.Mutex
	lastLSN int64 // highest LSN the remote has acknowledged
}

// NewReplicaClient wraps c as a replication target.
func NewReplicaClient(c *Client) *ReplicaClient {
	return &ReplicaClient{c: c}
}

// Apply ships tx to the remote replica and records its acked LSN.
func (r *ReplicaClient) Apply(tx db.Transaction) error {
	resp, err := r.c.Call(context.Background(), TypeTxn, EncodeTransaction(nil, tx))
	if err != nil {
		return fmt.Errorf("wire: ship txn %d: %w", tx.LSN, err)
	}
	lsn, err := DecodeUint(resp)
	if err != nil {
		return fmt.Errorf("wire: txn %d ack: %w", tx.LSN, err)
	}
	r.note(int64(lsn))
	return nil
}

// LSN asks the remote replica for its LSN, falling back to the last acked
// value when the link is down — the replicator's catch-up filter and lag
// accounting keep working through an outage instead of reading zero and
// re-shipping the whole log.
func (r *ReplicaClient) LSN() int64 {
	resp, err := r.c.Call(context.Background(), TypeLSN, nil)
	if err == nil {
		if lsn, derr := DecodeUint(resp); derr == nil {
			r.note(int64(lsn))
			return int64(lsn)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastLSN
}

// note records a remotely acknowledged LSN (monotonic).
func (r *ReplicaClient) note(lsn int64) {
	r.mu.Lock()
	if lsn > r.lastLSN {
		r.lastLSN = lsn
	}
	r.mu.Unlock()
}

// Close closes the underlying client.
func (r *ReplicaClient) Close() { r.c.Close() }
