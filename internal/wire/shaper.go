package wire

import (
	"time"

	"dupserve/internal/netsim"
)

// ShaperFromLink adapts a netsim link into the client's frame shaper: each
// frame is charged the link's one-way propagation plus serialization time
// for its encoded size. Wiring a Modem288 or WAN LinkSpec here makes a
// loopback deployment's propagation plane feel like the paper's
// Nagano-to-Schaumburg hop without leaving the laptop.
func ShaperFromLink(link netsim.LinkSpec) func(bytes int) time.Duration {
	return func(bytes int) time.Duration { return netsim.FrameDelay(link, bytes) }
}
