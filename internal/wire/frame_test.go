package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/httpserver"
)

// TestFrameRoundTrip encodes frames of assorted sizes and decodes them back
// through both the buffer and stream paths.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 7, 64, 1000, 65537}
	for _, size := range sizes {
		payload := make([]byte, size)
		rng.Read(payload)
		f := Frame{Type: Type(1 + rng.Intn(int(numTypes)-1)), ID: rng.Uint64(), Payload: payload}

		buf := AppendFrame(nil, f)
		if len(buf) != f.wireSize() {
			t.Fatalf("size %d: encoded %d bytes, wireSize says %d", size, len(buf), f.wireSize())
		}

		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("size %d: DecodeFrame: %v", size, err)
		}
		if n != len(buf) {
			t.Fatalf("size %d: consumed %d of %d", size, n, len(buf))
		}
		if got.Type != f.Type || got.ID != f.ID || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("size %d: decode mismatch", size)
		}

		sgot, sn, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("size %d: ReadFrame: %v", size, err)
		}
		if sn != len(buf) || sgot.Type != f.Type || sgot.ID != f.ID || !bytes.Equal(sgot.Payload, f.Payload) {
			t.Fatalf("size %d: stream decode mismatch", size)
		}
	}
}

// TestFrameStreamSequence reads several back-to-back frames off one stream.
func TestFrameStreamSequence(t *testing.T) {
	var buf []byte
	want := []Frame{
		{Type: TypePing, ID: 1},
		{Type: TypePush, ID: 2, Payload: []byte("body")},
		{Type: TypeAck, ID: 2, Payload: []byte{0}},
	}
	for _, f := range want {
		buf = AppendFrame(buf, f)
	}
	r := bytes.NewReader(buf)
	for i, w := range want {
		f, _, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != w.Type || f.ID != w.ID || !bytes.Equal(f.Payload, w.Payload) {
			t.Fatalf("frame %d mismatch: %+v", i, f)
		}
	}
	if _, _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: want io.EOF, got %v", err)
	}
}

// TestFrameTruncation verifies every possible truncation point is rejected:
// DecodeFrame reports ErrTruncated, ReadFrame io.ErrUnexpectedEOF (io.EOF
// only for the empty stream).
func TestFrameTruncation(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: TypeTxn, ID: 99, Payload: []byte("truncate me please")})
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeFrame(full[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("DecodeFrame(%d/%d bytes): want ErrTruncated, got %v", n, len(full), err)
		}
		_, _, err := ReadFrame(bytes.NewReader(full[:n]))
		if n == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("ReadFrame(empty): want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("ReadFrame(%d/%d bytes): want io.ErrUnexpectedEOF, got %v", n, len(full), err)
		}
	}
}

// TestFrameCorruption flips every byte of an encoded frame and requires
// both decode paths to reject every mutation — the CRC covers everything
// the header checks don't.
func TestFrameCorruption(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: TypePush, ID: 7, Payload: []byte("checksummed payload")})
	for i := range full {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), full...)
			mut[i] ^= flip
			if _, _, err := DecodeFrame(mut); err == nil {
				t.Fatalf("DecodeFrame accepted corruption at byte %d (flip %#x)", i, flip)
			}
			if _, _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
				t.Fatalf("ReadFrame accepted corruption at byte %d (flip %#x)", i, flip)
			}
		}
	}
}

// TestFrameRejectsSpecificCorruptions pins the error identity for each
// header field.
func TestFrameRejectsSpecificCorruptions(t *testing.T) {
	base := AppendFrame(nil, Frame{Type: TypeAck, ID: 1, Payload: []byte("x")})

	mut := append([]byte(nil), base...)
	mut[0] = 'X'
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	mut = append([]byte(nil), base...)
	mut[4] = 99
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	mut = append([]byte(nil), base...)
	mut[5] = byte(numTypes)
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: got %v", err)
	}

	mut = append([]byte(nil), base...)
	mut[16], mut[17], mut[18], mut[19] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize length: got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize length via stream: got %v", err)
	}

	mut = append([]byte(nil), base...)
	mut[len(mut)-1] ^= 0xff
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bad crc: got %v", err)
	}
}

// TestAppendFramePanicsOnOversize pins the programming-error contract.
func TestAppendFramePanicsOnOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendFrame accepted a payload beyond MaxPayload")
		}
	}()
	AppendFrame(nil, Frame{Type: TypeAck, Payload: make([]byte, MaxPayload+1)})
}

// TestTransactionCodecRoundTrip round-trips a representative transaction:
// puts with columns, a delete, zero and set Created flags.
func TestTransactionCodecRoundTrip(t *testing.T) {
	tx := db.Transaction{
		LSN:     12345,
		TraceID: 777,
		Commit:  time.Unix(0, 888999111).UTC(),
		Changes: []db.Change{
			{Table: "results", Key: "ev1", Op: db.OpPut, Created: true,
				Cols: map[string]string{"gold": "jp", "score": "241.5"}},
			{Table: "results", Key: "ev2", Op: db.OpDelete},
			{Table: "news", Key: "s0", Op: db.OpPut,
				Cols: map[string]string{"title": "headline"}},
		},
	}
	got, err := DecodeTransaction(EncodeTransaction(nil, tx))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.LSN != tx.LSN || got.TraceID != tx.TraceID || !got.Commit.Equal(tx.Commit) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Changes) != len(tx.Changes) {
		t.Fatalf("change count %d != %d", len(got.Changes), len(tx.Changes))
	}
	for i, want := range tx.Changes {
		g := got.Changes[i]
		if g.Table != want.Table || g.Key != want.Key || g.Op != want.Op || g.Created != want.Created {
			t.Fatalf("change %d mismatch: %+v", i, g)
		}
		if !reflect.DeepEqual(g.Cols, want.Cols) {
			t.Fatalf("change %d cols mismatch: %v != %v", i, g.Cols, want.Cols)
		}
	}
}

// TestObjectCodecRoundTrip round-trips a cache object and checks the value
// no longer aliases the encoded payload.
func TestObjectCodecRoundTrip(t *testing.T) {
	obj := &cache.Object{
		Key:         "/en/home/day01",
		Value:       []byte("<html>day 1</html>"),
		ContentType: "text/html; charset=utf-8",
		Version:     41,
		StoredAt:    time.Unix(0, 555).UTC(),
	}
	payload := EncodeObject(nil, obj)
	got, err := DecodeObject(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Key != obj.Key || got.ContentType != obj.ContentType ||
		got.Version != obj.Version || !got.StoredAt.Equal(obj.StoredAt) ||
		!bytes.Equal(got.Value, obj.Value) {
		t.Fatalf("object mismatch: %+v", got)
	}
	for i := range payload {
		payload[i] = 0xaa
	}
	if !bytes.Equal(got.Value, obj.Value) {
		t.Fatal("decoded value aliases the payload buffer")
	}
}

// TestScalarCodecsRoundTrip covers the string, uint, pong and serve-result
// payloads.
func TestScalarCodecsRoundTrip(t *testing.T) {
	if s, err := DecodeString(EncodeString(nil, "/ja/medals")); err != nil || s != "/ja/medals" {
		t.Fatalf("string: %q, %v", s, err)
	}
	if v, err := DecodeUint(EncodeUint(nil, 1<<40+3)); err != nil || v != 1<<40+3 {
		t.Fatalf("uint: %d, %v", v, err)
	}
	p, err := DecodePong(EncodePong(nil, Pong{Ready: true, Load: 1.25}))
	if err != nil || !p.Ready || p.Load != 1.25 {
		t.Fatalf("pong: %+v, %v", p, err)
	}

	r := ServeResult{Outcome: httpserver.OutcomeHit,
		Object: &cache.Object{Key: "/en/home", Value: []byte("hi"), Version: 3}}
	got, err := DecodeServeResult(EncodeServeResult(nil, r))
	if err != nil || got.Outcome != r.Outcome || got.Object == nil ||
		got.Object.Key != r.Object.Key || !bytes.Equal(got.Object.Value, r.Object.Value) {
		t.Fatalf("serve result: %+v, %v", got, err)
	}

	r = ServeResult{Outcome: httpserver.OutcomeError, Err: "boom"}
	got, err = DecodeServeResult(EncodeServeResult(nil, r))
	if err != nil || got.Err != "boom" || got.Object != nil {
		t.Fatalf("serve error result: %+v, %v", got, err)
	}
}

// TestCodecRejectsMalformedPayloads truncates every codec's encoding at
// every length and requires a clean ErrCodec, never a panic or a silent
// partial decode.
func TestCodecRejectsMalformedPayloads(t *testing.T) {
	tx := db.Transaction{LSN: 5, Changes: []db.Change{
		{Table: "t", Key: "k", Op: db.OpPut, Cols: map[string]string{"a": "b"}}}}
	payloads := map[string][]byte{
		"txn":    EncodeTransaction(nil, tx),
		"object": EncodeObject(nil, &cache.Object{Key: "k", Value: []byte("v")}),
		"pong":   EncodePong(nil, Pong{Ready: true, Load: 2}),
		"serve": EncodeServeResult(nil, ServeResult{
			Object: &cache.Object{Key: "k", Value: []byte("v")}}),
	}
	decode := map[string]func([]byte) error{
		"txn":    func(b []byte) error { _, err := DecodeTransaction(b); return err },
		"object": func(b []byte) error { _, err := DecodeObject(b); return err },
		"pong":   func(b []byte) error { _, err := DecodePong(b); return err },
		"serve":  func(b []byte) error { _, err := DecodeServeResult(b); return err },
	}
	for name, full := range payloads {
		for n := 0; n < len(full); n++ {
			if err := decode[name](full[:n]); err == nil {
				t.Fatalf("%s: accepted truncation to %d/%d bytes", name, n, len(full))
			}
		}
		// Trailing garbage is a shape disagreement, not slack.
		if err := decode[name](append(append([]byte(nil), full...), 0)); err == nil {
			t.Fatalf("%s: accepted trailing byte", name)
		}
	}
	// A hostile count must be rejected before allocation.
	huge := appendUvarint(appendUvarint(appendUvarint(nil, 1), 1), 0) // lsn, trace, commit
	huge = appendUvarint(huge, 1<<40)                                 // change count
	if _, err := DecodeTransaction(huge); !errors.Is(err, ErrCodec) {
		t.Fatalf("hostile change count: got %v", err)
	}
}
