// Package wire is the network transport under the propagation plane: a
// framed binary protocol over TCP carrying the three flows the paper ran
// between machines — DB2 log shipping from the master to each complex's
// replica, trigger-monitor pushes into the caches of the serving nodes, and
// the Network Dispatcher's health probes (sections 3-4, figures 5-6).
//
// The rest of the repository wires those flows as in-process calls, which
// stays the default (simulations and chaos runs need determinism). This
// package provides the TCP alternative: a Server that dispatches frame
// types to registered handlers, and a Client with connection pooling,
// per-RPC deadlines, exponential-backoff reconnect, and a bounded in-flight
// window for backpressure. Codec functions translate db.Transaction log
// records and cache push/invalidate messages to and from frame payloads.
//
// Frame format (big-endian), checksummed so a torn or corrupted stream is
// detected instead of decoded:
//
//	offset  size  field
//	0       4     magic "DUPW"
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       2     reserved (must be zero)
//	8       8     request id (correlates a response to its request)
//	16      4     payload length n (max 16 MiB)
//	20      n     payload
//	20+n    4     CRC-32 (IEEE) over bytes [4, 20+n)
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Type identifies what a frame carries and therefore which handler a server
// dispatches it to.
type Type uint8

// The frame types of protocol version 1. Responses reuse the request's id;
// TypeAck carries a type-specific result payload and TypeError a message.
const (
	// TypeAck is a successful response; the payload depends on the request
	// type it answers.
	TypeAck Type = iota + 1
	// TypeError is a failure response; the payload is the error message.
	TypeError
	// TypeTxn ships one committed db.Transaction (master -> replica log
	// shipping). The ack payload is the replica's LSN after applying.
	TypeTxn
	// TypeLSN asks a replica for its current LSN (uvarint ack payload).
	TypeLSN
	// TypePush installs a freshly rendered cache object on a node (trigger
	// monitor -> serving node distribution).
	TypePush
	// TypeInvalidate drops one key from a node's cache.
	TypeInvalidate
	// TypeInvalidatePrefix drops every key under a prefix.
	TypeInvalidatePrefix
	// TypePing is a dispatcher health probe; the ack carries readiness and
	// the node's load signal.
	TypePing
	// TypeServe asks a node to satisfy one request path (the Network
	// Dispatcher forwarding a connection); the ack carries the outcome and
	// the served object.
	TypeServe
	numTypes
)

var typeNames = [numTypes]string{
	0:                    "invalid",
	TypeAck:              "ack",
	TypeError:            "error",
	TypeTxn:              "txn",
	TypeLSN:              "lsn",
	TypePush:             "push",
	TypeInvalidate:       "invalidate",
	TypeInvalidatePrefix: "invalidate-prefix",
	TypePing:             "ping",
	TypeServe:            "serve",
}

// String names the frame type.
func (t Type) String() string {
	if t == 0 || t >= numTypes {
		return fmt.Sprintf("type(%d)", uint8(t))
	}
	return typeNames[t]
}

// Version is the protocol version this package speaks. A frame with any
// other version is rejected, so incompatible ends fail loudly at the first
// frame instead of misinterpreting payloads.
const Version = 1

// MaxPayload bounds a frame's payload. A length field beyond it means a
// corrupt or hostile stream, not a big message: the largest legitimate
// payload is one rendered page plus headers, far below 16 MiB.
const MaxPayload = 16 << 20

// headerSize is the fixed prefix before the payload; trailerSize the CRC.
const (
	headerSize  = 20
	trailerSize = 4
)

var magic = [4]byte{'D', 'U', 'P', 'W'}

// The decode errors. ErrTruncated is returned by DecodeFrame when the
// buffer ends mid-frame — for a stream that is io.ErrUnexpectedEOF instead.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrBadType    = errors.New("wire: unknown frame type")
	ErrTooLarge   = errors.New("wire: frame payload exceeds limit")
	ErrChecksum   = errors.New("wire: frame checksum mismatch")
	ErrTruncated  = errors.New("wire: truncated frame")
)

// Frame is one protocol message: a type, a request-correlation id, and an
// opaque payload interpreted per type by the codec layer.
type Frame struct {
	Type    Type
	ID      uint64
	Payload []byte
}

// wireSize returns the full encoded size of the frame.
func (f Frame) wireSize() int { return headerSize + len(f.Payload) + trailerSize }

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. It panics if the payload exceeds MaxPayload — producing an
// undecodable frame is a programming error.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("wire: payload %d exceeds MaxPayload", len(f.Payload)))
	}
	start := len(dst)
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, byte(f.Type), 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[start+4:])
	return binary.BigEndian.AppendUint32(dst, sum)
}

// WriteFrame encodes and writes one frame, returning the bytes written.
func WriteFrame(w io.Writer, f Frame) (int, error) {
	buf := AppendFrame(make([]byte, 0, f.wireSize()), f)
	return w.Write(buf)
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes it consumed. The returned payload aliases b.
// A buffer that ends mid-frame returns ErrTruncated; corruption returns
// ErrBadMagic / ErrBadVersion / ErrBadType / ErrTooLarge / ErrChecksum.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < headerSize {
		return Frame{}, 0, ErrTruncated
	}
	if [4]byte(b[:4]) != magic {
		return Frame{}, 0, ErrBadMagic
	}
	if b[4] != Version {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[4])
	}
	t := Type(b[5])
	if t == 0 || t >= numTypes {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadType, b[5])
	}
	if b[6] != 0 || b[7] != 0 {
		return Frame{}, 0, fmt.Errorf("%w: nonzero reserved bytes", ErrBadMagic)
	}
	id := binary.BigEndian.Uint64(b[8:16])
	n := binary.BigEndian.Uint32(b[16:20])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrTooLarge, n)
	}
	total := headerSize + int(n) + trailerSize
	if len(b) < total {
		return Frame{}, 0, ErrTruncated
	}
	want := binary.BigEndian.Uint32(b[total-trailerSize : total])
	if crc32.ChecksumIEEE(b[4:total-trailerSize]) != want {
		return Frame{}, 0, ErrChecksum
	}
	return Frame{Type: t, ID: id, Payload: b[headerSize : total-trailerSize]}, total, nil
}

// ReadFrame reads exactly one frame from r, returning it and the bytes
// consumed. The header is validated before the payload is allocated, so a
// corrupt length can never force a huge allocation. A clean EOF before any
// byte returns io.EOF; a stream ending mid-frame returns
// io.ErrUnexpectedEOF; corruption returns the DecodeFrame errors.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, 0, io.ErrUnexpectedEOF
		}
		return Frame{}, 0, err
	}
	// Validate the fixed header via DecodeFrame's rules without the body:
	// run the same checks inline (DecodeFrame needs the whole frame for the
	// CRC).
	if [4]byte(hdr[:4]) != magic {
		return Frame{}, 0, ErrBadMagic
	}
	if hdr[4] != Version {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	t := Type(hdr[5])
	if t == 0 || t >= numTypes {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadType, hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, 0, fmt.Errorf("%w: nonzero reserved bytes", ErrBadMagic)
	}
	n := binary.BigEndian.Uint32(hdr[16:20])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrTooLarge, n)
	}
	rest := make([]byte, int(n)+trailerSize)
	if _, err := io.ReadFull(r, rest); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, 0, io.ErrUnexpectedEOF
		}
		return Frame{}, 0, err
	}
	body := rest[:n]
	want := binary.BigEndian.Uint32(rest[n:])
	sum := crc32.ChecksumIEEE(hdr[4:])
	sum = crc32.Update(sum, crc32.IEEETable, body)
	if sum != want {
		return Frame{}, 0, ErrChecksum
	}
	total := headerSize + int(n) + trailerSize
	return Frame{Type: t, ID: binary.BigEndian.Uint64(hdr[8:16]), Payload: body}, total, nil
}
