package wire

import (
	"dupserve/internal/stats"
)

// Metrics aggregates the transport's counters. One Metrics value is shared
// by every client and server of a process when registered under distinct
// label sets, or each endpoint can own its own; the zero value counts and
// is registered later, matching the repo-wide pattern of subsystems owning
// their instruments and wiring code naming them.
type Metrics struct {
	FramesSent     stats.Counter
	FramesReceived stats.Counter
	BytesSent      stats.Counter
	BytesReceived  stats.Counter
	// Connects counts successful dials/accepts; Reconnects the subset of
	// dials that replaced a previously established connection.
	Connects    stats.Counter
	Reconnects  stats.Counter
	Disconnects stats.Counter
	// PartitionDrops counts connections dropped because a fault-injection
	// partition check reported the link down.
	PartitionDrops stats.Counter
	// CallErrors counts failed RPCs (transport errors, deadline expiries,
	// and remote TypeError responses).
	CallErrors stats.Counter
	// InFlight tracks the client's bounded in-flight window occupancy; its
	// Max is the high-water mark.
	InFlight stats.Gauge
	// RPCSeconds observes per-call latency, send to response.
	RPCSeconds *stats.Histogram
}

// NewMetrics returns a Metrics with the RPC latency histogram allocated
// (loopback RPCs sit in the tens of microseconds; WAN-shaped ones in the
// hundreds of milliseconds).
func NewMetrics() *Metrics {
	return &Metrics{
		RPCSeconds: stats.NewHistogram(0.00005, 0.0001, 0.00025, 0.0005, 0.001,
			0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5),
	}
}

// observeRPC records one call's latency if the histogram exists.
func (m *Metrics) observeRPC(seconds float64) {
	if m != nil && m.RPCSeconds != nil {
		m.RPCSeconds.Observe(seconds)
	}
}

// RegisterMetrics publishes the transport counters as the wire_* families.
func (m *Metrics) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("wire_frames_sent_total",
		"frames written to the wire", labels, &m.FramesSent)
	reg.RegisterCounter("wire_frames_received_total",
		"frames read from the wire", labels, &m.FramesReceived)
	reg.RegisterCounter("wire_bytes_sent_total",
		"payload+framing bytes written to the wire", labels, &m.BytesSent)
	reg.RegisterCounter("wire_bytes_received_total",
		"payload+framing bytes read from the wire", labels, &m.BytesReceived)
	reg.RegisterCounter("wire_connects_total",
		"connections established (dials and accepts)", labels, &m.Connects)
	reg.RegisterCounter("wire_reconnects_total",
		"dials that replaced a previously established connection", labels, &m.Reconnects)
	reg.RegisterCounter("wire_disconnects_total",
		"connections lost or closed", labels, &m.Disconnects)
	reg.RegisterCounter("wire_partition_drops_total",
		"connections dropped by an injected link partition", labels, &m.PartitionDrops)
	reg.RegisterCounter("wire_call_errors_total",
		"RPCs that failed (transport, deadline, or remote error)", labels, &m.CallErrors)
	reg.RegisterFunc("wire_inflight",
		"RPCs currently in the bounded in-flight window", labels,
		func() float64 { return float64(m.InFlight.Value()) })
	reg.RegisterFunc("wire_inflight_highwater",
		"maximum simultaneous in-flight RPCs observed", labels,
		func() float64 { return float64(m.InFlight.Max()) })
	if m.RPCSeconds != nil {
		reg.RegisterHistogram("wire_rpc_seconds",
			"RPC latency, request write to response decode", labels, m.RPCSeconds)
	}
}
