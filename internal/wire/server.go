package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler services one frame type: it receives the request payload and
// returns the ack payload (nil is a valid empty ack) or an error, which the
// server sends back as a TypeError frame. Handlers run on per-frame
// goroutines, so a slow handler delays only its own response — the
// connection keeps reading, which is what lets clients pipeline an
// in-flight window deeper than one.
type Handler func(payload []byte) ([]byte, error)

// Server is the listening end of the transport: it accepts connections,
// reads frames, and dispatches each to the handler registered for its type.
// One server typically carries several flows at once — a serving node
// registers its cache store, its health probe, and its serve endpoint on
// the same port.
type Server struct {
	name    string
	metrics *Metrics
	hook    StateHook

	mu       sync.Mutex
	handlers [numTypes]Handler
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerMetrics publishes the server's transport counters into m.
func WithServerMetrics(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// WithServerStateHook installs a connection-lifecycle callback (see
// StateHook). The observability journal wires in here.
func WithServerStateHook(h StateHook) ServerOption {
	return func(s *Server) { s.hook = h }
}

// NewServer returns a server with no handlers. name appears in diagnostics
// and state-hook events.
func NewServer(name string, opts ...ServerOption) *Server {
	s := &Server{name: name, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Handle registers h for frame type t, replacing any previous handler.
// Registration is expected at wiring time, before Serve.
func (s *Server) Handle(t Type, h Handler) {
	if t == 0 || t >= numTypes {
		panic(fmt.Sprintf("wire: Handle of invalid type %d", t))
	}
	s.mu.Lock()
	s.handlers[t] = h
	s.mu.Unlock()
}

// Listen starts accepting on addr ("127.0.0.1:0" picks a free loopback
// port) and returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(l)
	return l.Addr(), nil
}

// Serve begins accepting connections from l on a background goroutine.
func (s *Server) Serve(l net.Listener) {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			if s.metrics != nil {
				s.metrics.Connects.Inc()
			}
			s.emit("accept", conn.RemoteAddr().String())
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
}

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// emit fires the state hook if installed.
func (s *Server) emit(event, detail string) {
	if s.hook != nil {
		s.hook(s.name, event, detail)
	}
}

// serveConn reads frames until the connection fails or the server closes,
// dispatching each frame on its own goroutine and serializing response
// writes through a per-connection mutex.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var wmu sync.Mutex
	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if s.metrics != nil {
			s.metrics.Disconnects.Inc()
		}
		s.emit("disconnect", conn.RemoteAddr().String())
	}()

	respond := func(f Frame) {
		wmu.Lock()
		n, err := WriteFrame(conn, f)
		wmu.Unlock()
		if s.metrics != nil && err == nil {
			s.metrics.FramesSent.Inc()
			s.metrics.BytesSent.Add(int64(n))
		}
	}

	for {
		f, n, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.emit("read_error", err.Error())
			}
			return
		}
		if s.metrics != nil {
			s.metrics.FramesReceived.Inc()
			s.metrics.BytesReceived.Add(int64(n))
		}
		s.mu.Lock()
		h := s.handlers[f.Type]
		s.mu.Unlock()
		if h == nil {
			respond(Frame{Type: TypeError, ID: f.ID,
				Payload: EncodeString(nil, fmt.Sprintf("wire: %s: no handler for %s", s.name, f.Type))})
			continue
		}
		// The payload aliases the read buffer, which the next ReadFrame
		// call replaces — but ReadFrame allocates per frame, so handing it
		// to the handler goroutine is safe without a copy.
		handlers.Add(1)
		go func(f Frame) {
			defer handlers.Done()
			out, err := h(f.Payload)
			if err != nil {
				respond(Frame{Type: TypeError, ID: f.ID, Payload: EncodeString(nil, err.Error())})
				return
			}
			respond(Frame{Type: TypeAck, ID: f.ID, Payload: out})
		}(f)
	}
}

// DropConnections severs every live connection without stopping the
// listener — the fault-injection entry point for "the network cable was
// pulled": clients observe a broken stream and must reconnect.
func (s *Server) DropConnections() int {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// Close stops the listener and severs every connection. Safe to call more
// than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.DropConnections()
	s.wg.Wait()
}
