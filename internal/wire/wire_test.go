package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/netsim"
)

// startEcho starts a server answering TypePing with its request payload.
func startEcho(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	s := NewServer("echo", opts...)
	s.Handle(TypePing, func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(s.Close)
	return s, addr.String()
}

// TestClientServerRPC covers the basic request/response path plus metrics
// and state-hook accounting.
func TestClientServerRPC(t *testing.T) {
	var events []string
	var evMu sync.Mutex
	hook := func(name, event, detail string) {
		evMu.Lock()
		events = append(events, name+":"+event)
		evMu.Unlock()
	}
	_, addr := startEcho(t)
	m := NewMetrics()
	c := Dial("t", addr, WithClientMetrics(m), WithClientStateHook(hook))
	defer c.Close()

	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf("ping-%d", i))
		resp, err := c.Call(context.Background(), TypePing, payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatalf("call %d: echo mismatch %q", i, resp)
		}
	}
	if got := m.FramesSent.Value(); got != 5 {
		t.Fatalf("frames sent = %d, want 5", got)
	}
	if got := m.FramesReceived.Value(); got != 5 {
		t.Fatalf("frames received = %d, want 5", got)
	}
	if m.BytesSent.Value() == 0 || m.BytesReceived.Value() == 0 {
		t.Fatal("byte counters did not move")
	}
	if m.Connects.Value() == 0 {
		t.Fatal("connects did not count")
	}
	if m.RPCSeconds.Count() != 5 {
		t.Fatalf("rpc histogram observed %d, want 5", m.RPCSeconds.Count())
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) == 0 || events[0] != "t:connect" {
		t.Fatalf("state hook events = %v, want leading t:connect", events)
	}
}

// TestRemoteErrorsAreNotTransient pins the error taxonomy: a handler
// failure and a missing handler both surface as *RemoteError, which retry
// layers must not treat as a link problem.
func TestRemoteErrorsAreNotTransient(t *testing.T) {
	s, addr := startEcho(t)
	s.Handle(TypeLSN, func(p []byte) ([]byte, error) { return nil, errors.New("handler boom") })
	c := Dial("t", addr)
	defer c.Close()

	_, err := c.Call(context.Background(), TypeLSN, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "handler boom" {
		t.Fatalf("handler error: got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("remote handler error classified transient")
	}

	_, err = c.Call(context.Background(), TypeServe, nil)
	if !errors.As(err, &re) {
		t.Fatalf("missing handler: got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("missing-handler error classified transient")
	}
}

// TestClientReconnect severs every server-side connection and requires the
// client to redial transparently, counting the reconnect.
func TestClientReconnect(t *testing.T) {
	s, addr := startEcho(t)
	m := NewMetrics()
	c := Dial("t", addr, WithClientMetrics(m), WithPoolSize(1))
	defer c.Close()

	if _, err := c.Call(context.Background(), TypePing, []byte("a")); err != nil {
		t.Fatalf("first call: %v", err)
	}
	if n := s.DropConnections(); n == 0 {
		t.Fatal("no connections to drop")
	}
	// The drop races the client noticing; retry until the redial lands.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Call(context.Background(), TypePing, []byte("b"))
		if err == nil {
			break
		}
		if !IsTransient(err) {
			t.Fatalf("reconnect path returned non-transient error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if m.Reconnects.Value() == 0 {
		t.Fatal("reconnect not counted")
	}
}

// TestClientBackoffFailFast requires calls during the reconnect backoff
// window to fail immediately with a transient error instead of redialing a
// dead address per call.
func TestClientBackoffFailFast(t *testing.T) {
	dials := 0
	c := Dial("t", "unreachable:1",
		WithReconnectBackoff(time.Second, time.Second),
		WithDialer(func(addr string, timeout time.Duration) (net.Conn, error) {
			dials++
			return nil, errors.New("refused")
		}))
	defer c.Close()

	if _, err := c.Call(context.Background(), TypePing, nil); !IsTransient(err) {
		t.Fatalf("first call: want transient error, got %v", err)
	}
	start := time.Now()
	_, err := c.Call(context.Background(), TypePing, nil)
	if !IsTransient(err) {
		t.Fatalf("second call: want transient error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("call during backoff took %v, want fail-fast", elapsed)
	}
	if dials != 1 {
		t.Fatalf("dialed %d times, want 1 (backoff gates the second)", dials)
	}
}

// TestClientPartitionTaxonomy runs the fault-injection contract: while the
// partition check reports true, calls fail with ErrPartitioned (transient),
// live connections are dropped and counted; after the heal the client
// reconnects and serves again.
func TestClientPartitionTaxonomy(t *testing.T) {
	_, addr := startEcho(t)
	var partitioned atomic.Bool
	m := NewMetrics()
	c := Dial("t", addr,
		WithClientMetrics(m),
		WithPoolSize(1),
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
		WithPartitionCheck(partitioned.Load))
	defer c.Close()

	if _, err := c.Call(context.Background(), TypePing, nil); err != nil {
		t.Fatalf("pre-partition call: %v", err)
	}

	partitioned.Store(true)
	_, err := c.Call(context.Background(), TypePing, nil)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned call: got %v, want ErrPartitioned", err)
	}
	if !IsTransient(err) {
		t.Fatal("ErrPartitioned must be transient")
	}
	if m.PartitionDrops.Value() == 0 {
		t.Fatal("live connection not dropped on partition")
	}
	if c.Connected() {
		t.Fatal("client still holds a connection during partition")
	}

	partitioned.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), TypePing, nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after heal")
		}
		time.Sleep(time.Millisecond)
	}
	if m.Reconnects.Value() == 0 {
		t.Fatal("post-heal reconnect not counted")
	}
}

// TestClientInFlightWindow verifies the bounded window: with the window
// full, further calls fail at their deadline instead of queueing, and the
// gauge's high-water mark records the occupancy.
func TestClientInFlightWindow(t *testing.T) {
	release := make(chan struct{})
	s := NewServer("slow")
	s.Handle(TypePing, func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()

	m := NewMetrics()
	c := Dial("t", addr.String(), WithClientMetrics(m), WithMaxInFlight(2))
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(context.Background(), TypePing, nil); err != nil {
				t.Errorf("windowed call: %v", err)
			}
		}()
	}
	// Wait until both slots are held.
	deadline := time.Now().Add(2 * time.Second)
	for m.InFlight.Value() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached 2 (at %d)", m.InFlight.Value())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, TypePing, nil); err == nil {
		t.Fatal("third call succeeded with the window full")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third call: got %v, want deadline via full window", err)
	}

	close(release)
	wg.Wait()
	if hw := m.InFlight.Max(); hw != 2 {
		t.Fatalf("in-flight high-water = %d, want 2", hw)
	}
	if m.InFlight.Value() != 0 {
		t.Fatalf("in-flight gauge leaked: %d", m.InFlight.Value())
	}
}

// TestShaperDelaysFrames wires a WAN-shaped link and requires the call to
// pay its one-way delay.
func TestShaperDelaysFrames(t *testing.T) {
	_, addr := startEcho(t)
	link := netsim.LinkSpec{DownKbps: 10_000, RTT: 40 * time.Millisecond, Efficiency: 1}
	c := Dial("t", addr, WithShaper(ShaperFromLink(link)))
	defer c.Close()

	start := time.Now()
	if _, err := c.Call(context.Background(), TypePing, nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("shaped call took %v, want >= one-way RTT/2 of 20ms", elapsed)
	}
}

// TestReplicationOverWire ships a master's log to a replica process over
// TCP, severs the link mid-stream, and requires in-order convergence after
// the heal — the park-and-replay semantics of local replication, networked.
func TestReplicationOverWire(t *testing.T) {
	replica := db.New("replica")
	s := NewServer("replica")
	RegisterReplica(s, replica)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()

	master := db.New("master")
	master.CreateTable("results")
	rc := NewReplicaClient(Dial("repl", addr.String(),
		WithCallTimeout(200*time.Millisecond),
		WithReconnectBackoff(time.Millisecond, 5*time.Millisecond)))
	defer rc.Close()

	repl := db.StartReplicationTo(master, rc)
	defer repl.Stop()

	for i := 0; i < 5; i++ {
		if _, err := master.Commit(master.NewTx().Put("results", fmt.Sprintf("ev%d", i),
			map[string]string{"n": fmt.Sprint(i)})); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if !repl.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("replica never caught up: lsn %d vs %d", replica.LSN(), master.LSN())
	}

	// Sever the link mid-stream and keep committing.
	s.DropConnections()
	for i := 5; i < 10; i++ {
		if _, err := master.Commit(master.NewTx().Put("results", fmt.Sprintf("ev%d", i),
			map[string]string{"n": fmt.Sprint(i)})); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if !repl.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("replica never converged after drop: lsn %d vs %d", replica.LSN(), master.LSN())
	}
	if replica.LSN() != master.LSN() {
		t.Fatalf("replica LSN %d != master %d", replica.LSN(), master.LSN())
	}
	row, ok, err := replica.Get("results", "ev9")
	if err != nil || !ok || row.Cols["n"] != "9" {
		t.Fatalf("replica row ev9: %v %v %v", row, ok, err)
	}
}

// TestGroupClientFanOutAndDebt drives the push plane over the wire: a put
// reaches every node; with one node unreachable the push downgrades, and
// when even the invalidation cannot be delivered the debt is recorded and
// replayed on recovery so the stale entry is purged.
func TestGroupClientFanOutAndDebt(t *testing.T) {
	newNode := func(name string) (*cache.Cache, *Server, string) {
		c := cache.New(name)
		s := NewServer(name)
		RegisterStore(s, c)
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("%s listen: %v", name, err)
		}
		return c, s, addr.String()
	}
	c1, s1, a1 := newNode("up0")
	c2, s2, a2 := newNode("up1")
	defer s1.Close()
	defer s2.Close()

	clientFor := func(name, addr string) *StoreClient {
		return NewStoreClient(name, Dial(name, addr,
			WithCallTimeout(100*time.Millisecond),
			WithReconnectBackoff(time.Millisecond, 5*time.Millisecond)))
	}
	g := NewGroupClient(
		[]*StoreClient{clientFor("up0", a1), clientFor("up1", a2)},
		WithGroupRetryPolicy(cache.RetryPolicy{
			MaxAttempts: 2, Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
			Sleep: func(time.Duration) {}}),
		WithFlushInterval(2*time.Millisecond))
	defer g.Close()

	obj := &cache.Object{Key: "/en/home", Value: []byte("v1"), Version: 1}
	g.ApplyPut(obj)
	for _, c := range []*cache.Cache{c1, c2} {
		if got, ok := c.Get("/en/home"); !ok || !bytes.Equal(got.Value, []byte("v1")) {
			t.Fatalf("%s missed the broadcast", c.Name())
		}
	}

	// Take node 2's process down entirely: push, retry, and the downgrade
	// invalidation all fail, leaving recorded debt.
	s2.Close()
	obj2 := &cache.Object{Key: "/en/home", Value: []byte("v2"), Version: 2}
	g.ApplyPut(obj2)
	if got, ok := c1.Get("/en/home"); !ok || !bytes.Equal(got.Value, []byte("v2")) {
		t.Fatal("reachable node did not receive v2")
	}
	if g.PendingDebt() == 0 {
		t.Fatal("unreachable node accrued no invalidation debt")
	}
	// Node 2 still holds v1 — exactly the stale copy the debt exists to kill.
	if _, ok := c2.Get("/en/home"); !ok {
		t.Fatal("test premise broken: node 2 should still hold v1")
	}

	// The node's process comes back on the same address (its cache survived,
	// stale v1 and all). The flusher must settle the debt unprompted.
	s2b := NewServer("up1")
	RegisterStore(s2b, c2)
	if _, err := s2b.Listen(a2); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer s2b.Close()

	deadline := time.Now().Add(5 * time.Second)
	for g.PendingDebt() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("debt never settled: %d outstanding", g.PendingDebt())
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := c2.Get("/en/home"); ok {
		t.Fatal("stale entry survived debt replay")
	}
}
