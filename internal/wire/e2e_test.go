package wire_test

// End-to-end test of the networked propagation plane: a master process
// (database, DUP engine, trigger monitor) pushing rendered pages over real
// TCP into the caches of two serving-node processes, modeled here as
// separate wire servers on loopback — the same wiring cmd/olympicsd uses in
// -role master / -role node mode, minus the process boundary.
//
// It then breaks the wire mid-stream two ways — a dropped connection (the
// client must reconnect and retry transparently) and an injected link
// partition (retries exhaust, the push downgrades, the undeliverable
// invalidation becomes debt replayed on heal) — and proves with an audit
// sweep that the degraded path never left a stale byte serveable.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/dispatch"
	"dupserve/internal/fault"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/odg"
	"dupserve/internal/site"
	"dupserve/internal/trigger"
	"dupserve/internal/wire"
)

// wireNode is one simulated serving-node process: its cache, its HTTP
// serving layer, and the wire server exposing both.
type wireNode struct {
	name   string
	cache  *cache.Cache
	server *wire.Server
	addr   string
}

// startNode brings up a node process: cache + HTTP server registered on a
// fresh loopback wire listener.
func startNode(t *testing.T, name string, gen core.Generator, version func() int64, tap func(httpserver.ResponseSample)) *wireNode {
	t.Helper()
	c := cache.New(name)
	srv := httpserver.New(name, c, gen, version, httpserver.WithResponseTap(tap))
	s := wire.NewServer(name)
	wire.RegisterStore(s, c)
	wire.RegisterNode(s, srv)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("%s: listen: %v", name, err)
	}
	t.Cleanup(s.Close)
	return &wireNode{name: name, cache: c, server: s, addr: addr.String()}
}

// snapshot captures every page's served bytes from one node cache.
func snapshot(c *cache.Cache, pages []string) map[string][]byte {
	out := make(map[string][]byte, len(pages))
	for _, p := range pages {
		if obj, ok := c.Get(cache.Key(p)); ok {
			out[p] = obj.Value
		}
	}
	return out
}

// changedPages diffs two snapshots.
func changedPages(before, after map[string][]byte) []string {
	var changed []string
	for p, b := range after {
		if prev, ok := before[p]; !ok || !bytes.Equal(prev, b) {
			changed = append(changed, p)
		}
	}
	return changed
}

func TestE2EWirePropagation(t *testing.T) {
	master := db.New("master")
	graph := odg.New()

	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}

	// Consistency oracle: node HTTP servers tap served responses into it;
	// the final sweep shadow-renders against the master and classifies
	// every sample.
	spec := site.DefaultSpec()
	spec.Days = 3
	spec.Languages = []string{"en"}
	aud := audit.New(audit.Config{
		Name:    "e2e",
		Replica: master,
		Build: func(sdb *db.DB, sreg fragment.Registrar) (*fragment.Engine, []string, error) {
			s, err := site.BuildReplica(spec, sdb, sreg)
			if err != nil {
				return nil, nil, err
			}
			return s.Engine, s.Pages(), nil
		},
		Indexer:     func(ch db.Change) []odg.NodeID { return st.Indexer(ch) },
		StaleBudget: time.Minute,
		SLO:         time.Minute,
	})

	// Two serving-node "processes" on loopback.
	n1 := startNode(t, "up0", gen, master.LSN, aud.Observe)
	n2 := startNode(t, "up1", gen, master.LSN, aud.Observe)

	// The master's push plane: one wire client per node, node 2's link
	// routed through the fault injector so -chaos-style partitions hit the
	// TCP transport with the same taxonomy as the in-process hooks.
	inj := fault.New(fault.Config{Seed: 1998})
	link2 := inj.PartitionCheck("push:up1")
	mkClient := func(name, addr string, check func() bool) *wire.StoreClient {
		opts := []wire.ClientOption{
			wire.WithCallTimeout(250 * time.Millisecond),
			wire.WithReconnectBackoff(time.Millisecond, 5*time.Millisecond),
		}
		if check != nil {
			opts = append(opts, wire.WithPartitionCheck(check))
		}
		return wire.NewStoreClient(name, wire.Dial(name, addr, opts...))
	}
	gc := wire.NewGroupClient(
		[]*wire.StoreClient{mkClient("up0", n1.addr, nil), mkClient("up1", n2.addr, link2)},
		wire.WithGroupRetryPolicy(cache.RetryPolicy{
			MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
			Sleep: time.Sleep}),
		wire.WithFlushInterval(2*time.Millisecond))
	defer gc.Close()

	// Master-side pipeline: engine pushing through the wire group, site,
	// trigger monitor on the CDC feed.
	engine := core.NewEngine(graph, gc, core.WithGenerator(gen))
	var err error
	st, err = site.Build(spec, master, engine)
	if err != nil {
		t.Fatalf("site build: %v", err)
	}
	engine.SetAssembler(st.Engine)

	if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { gc.ApplyPut(o) }); err != nil {
		t.Fatalf("prerender: %v", err)
	}
	for _, n := range []*wireNode{n1, n2} {
		for _, p := range st.Pages() {
			if _, ok := n.cache.Get(cache.Key(p)); !ok {
				t.Fatalf("%s: page %s not primed over the wire", n.name, p)
			}
		}
	}

	mon := trigger.New(trigger.Config{
		Name: "e2e", DB: master, Engine: engine,
		StartLSN: master.LSN(), BatchWindow: 5 * time.Millisecond,
	}, trigger.WithIndexer(st.Indexer))
	if err := mon.Start(context.Background()); err != nil {
		t.Fatalf("monitor: %v", err)
	}
	defer mon.Shutdown(context.Background())

	// Phase A: a commit at the master must update affected pages in every
	// node cache via the wire path.
	before1 := snapshot(n1.cache, st.Pages())
	before2 := snapshot(n2.cache, st.Pages())
	ev := st.Events[0]
	if _, err := st.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "240.0"); err != nil {
		t.Fatalf("record result: %v", err)
	}
	mon.Flush()
	ch1 := changedPages(before1, snapshot(n1.cache, st.Pages()))
	ch2 := changedPages(before2, snapshot(n2.cache, st.Pages()))
	if len(ch1) == 0 || len(ch2) == 0 {
		t.Fatalf("commit did not reach both nodes over the wire: up0=%d up1=%d changed", len(ch1), len(ch2))
	}

	// Phase B: sever node 1's connections mid-stream; the pooled client
	// must reconnect and the next propagation must still land everywhere.
	n1.server.DropConnections()
	before1 = snapshot(n1.cache, st.Pages())
	ev = st.Events[1]
	if _, err := st.RecordResult(ev, ev.Participants[1], ev.Participants[2], ev.Participants[0], "241.0"); err != nil {
		t.Fatalf("record result: %v", err)
	}
	mon.Flush()
	// The group's retry policy covers the reconnect race; by flush return
	// the push either landed or downgraded, and a downgrade would have
	// removed the page rather than leaving the old bytes.
	if ch := changedPages(before1, snapshot(n1.cache, st.Pages())); len(ch) == 0 {
		// A downgrade is acceptable only if the debt settles and the page is
		// gone; old bytes still present means the drop was swallowed.
		stale := false
		for _, p := range st.Pages() {
			if obj, ok := n1.cache.Get(cache.Key(p)); ok && bytes.Equal(obj.Value, before1[p]) {
				continue
			}
			stale = true
		}
		if !stale {
			t.Fatal("up0 saw neither fresh pages nor invalidations after reconnect")
		}
	}

	// Phase C: partition node 2's link mid-push. Retries exhaust, pushes
	// downgrade, and the undeliverable invalidations become debt.
	inj.SetPartition("push:up1", true)
	ev = st.Events[2]
	if _, err := st.RecordResult(ev, ev.Participants[2], ev.Participants[0], ev.Participants[1], "242.0"); err != nil {
		t.Fatalf("record result: %v", err)
	}
	mon.Flush()
	if gc.PendingDebt() == 0 {
		t.Fatal("partitioned node accrued no invalidation debt")
	}

	// Heal. The background flusher must settle the debt, leaving node 2
	// with no serveable stale page (misses regenerate fresh).
	inj.SetPartition("push:up1", false)
	deadline := time.Now().Add(5 * time.Second)
	for gc.PendingDebt() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("debt never settled after heal: %d outstanding", gc.PendingDebt())
		}
		time.Sleep(time.Millisecond)
	}

	// Serve every page through a dispatcher fronting both nodes over the
	// wire (TypeServe), then sweep: zero incoherence is the acceptance bar.
	nd := dispatch.New(dispatch.Config{Name: "nd", Nodes: []dispatch.Node{
		wire.NewRemoteNode("up0", wire.Dial("nd-up0", n1.addr)),
		wire.NewRemoteNode("up1", wire.Dial("nd-up1", n2.addr)),
	}})
	for _, p := range st.Pages() {
		if _, outcome, err := nd.Serve(p); outcome == httpserver.OutcomeError {
			t.Fatalf("serve %s over wire: %v", p, err)
		}
	}
	rep, err := aud.Sweep()
	if err != nil {
		t.Fatalf("audit sweep: %v", err)
	}
	if rep.Incoherent != 0 {
		t.Fatalf("audit found %d incoherent pages after wire faults: %v",
			rep.Incoherent, rep.IncoherentPages)
	}
	if rep.Samples == 0 {
		t.Fatal("audit sweep classified no samples")
	}
	t.Logf("sweep: %d samples, %d coherent, %d bounded-stale, 0 incoherent (debt replays=%d)",
		rep.Samples, rep.Coherent, rep.BoundedStale, gc.PendingDebt())
}
