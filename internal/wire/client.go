package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// StateHook observes connection-lifecycle transitions (connect, reconnect,
// disconnect, partition_drop, accept). The observability journal wires in
// here; the callback runs on transport goroutines and must not block.
type StateHook func(name, event, detail string)

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("wire: client closed")

// ErrPartitioned is returned while an injected link partition holds the
// client's link down. It is transient: the fault heals, the client redials.
var ErrPartitioned = transientError{errors.New("wire: link partitioned")}

// transientError marks failures the caller should treat as retryable —
// the link is down or flapping, not the protocol broken. db.Replicator
// checks for the Transient method to decide between parking delivery and
// stopping dead.
type transientError struct{ err error }

func (e transientError) Error() string   { return e.err.Error() }
func (e transientError) Unwrap() error   { return e.err }
func (e transientError) Transient() bool { return true }

// UnavailableError reports a failed dial or a connection lost mid-call.
type UnavailableError struct {
	Addr string
	Err  error
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("wire: %s unavailable: %v", e.Addr, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *UnavailableError) Unwrap() error { return e.Err }

// Transient marks the error retryable.
func (e *UnavailableError) Transient() bool { return true }

// RemoteError is a TypeError response: the far end executed the handler
// and it failed. Not transient — retrying the same request will fail the
// same way unless the remote state changes.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "wire: remote: " + e.Msg }

// IsTransient reports whether err is a transport-level failure worth
// retrying (partition, dial failure, lost connection), as opposed to a
// remote handler error or a codec mismatch.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Client is the dialing end of the transport: a fixed-size connection pool
// to one address, RPCs correlated by frame id, per-call deadlines, and a
// bounded in-flight window so a slow or dead peer exerts backpressure
// instead of accumulating unbounded queued requests (the same design rule
// as the trigger monitor's MaxPending high-water mark).
type Client struct {
	name string
	addr string

	dialer      func(addr string, timeout time.Duration) (net.Conn, error)
	dialTimeout time.Duration
	callTimeout time.Duration
	backoffMin  time.Duration
	backoffMax  time.Duration
	poolSize    int
	partitioned func() bool
	shape       func(bytes int) time.Duration
	metrics     *Metrics
	hook        StateHook

	window chan struct{} // bounded in-flight slots
	nextID atomic.Uint64

	mu            sync.Mutex
	conns         []*clientConn
	rr            int // round-robin cursor
	dialing       int
	backoff       time.Duration
	notBefore     time.Time
	lastDialErr   error
	everConnected bool
	// droppedConns counts connections lost since the last accounting; a
	// successful dial consumes one and reports as a reconnect, so pool
	// growth beyond the first connection is not miscounted as recovery.
	droppedConns int
	closed       bool
}

// clientConn is one pooled connection with its demultiplexing read loop.
type clientConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan Frame
	dead    bool
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize sets how many TCP connections the client multiplexes RPCs
// over (default 2: one is enough for correctness, a second hides head-of-
// line blocking behind large page pushes).
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithCallTimeout sets the default per-RPC deadline applied when the
// caller's context carries none (default 2s).
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.callTimeout = d
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 1s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithMaxInFlight bounds simultaneous outstanding RPCs (default 64). When
// the window is full, Call blocks until a slot frees or the context ends —
// backpressure, not queue growth.
func WithMaxInFlight(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.window = make(chan struct{}, n)
		}
	}
}

// WithReconnectBackoff sets the exponential redial policy: after a failed
// dial the client waits min, doubling per consecutive failure up to max
// (defaults 5ms, 1s). Calls inside the wait fail fast with the last dial
// error rather than stacking up behind a dead address.
func WithReconnectBackoff(min, max time.Duration) ClientOption {
	return func(c *Client) {
		if min > 0 {
			c.backoffMin = min
		}
		if max >= c.backoffMin {
			c.backoffMax = max
		}
	}
}

// WithPartitionCheck installs a link-partition predicate (fault injection,
// typically fault.Injector.PartitionCheck). While it reports true the
// client drops its live connections and fails calls with ErrPartitioned,
// so networked mode produces the same fault taxonomy as local mode: a
// replication target parks and replays, a push target retries and
// downgrades.
func WithPartitionCheck(f func() bool) ClientOption {
	return func(c *Client) { c.partitioned = f }
}

// WithShaper delays each frame write by the returned duration for its
// encoded size — the hook for WAN-shaped latency (see ShaperFromLink).
func WithShaper(f func(bytes int) time.Duration) ClientOption {
	return func(c *Client) { c.shape = f }
}

// WithClientMetrics publishes the client's transport counters into m.
func WithClientMetrics(m *Metrics) ClientOption {
	return func(c *Client) { c.metrics = m }
}

// WithClientStateHook installs a connection-lifecycle callback.
func WithClientStateHook(h StateHook) ClientOption {
	return func(c *Client) { c.hook = h }
}

// WithDialer substitutes the dial function (tests inject pipes and
// refusing dialers).
func WithDialer(d func(addr string, timeout time.Duration) (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dialer = d }
}

// Dial returns a client for addr. Connections are established lazily on
// the first call, so construction never blocks and a dead peer costs
// nothing until used. name appears in diagnostics and state-hook events.
func Dial(name, addr string, opts ...ClientOption) *Client {
	c := &Client{
		name:        name,
		addr:        addr,
		dialTimeout: time.Second,
		callTimeout: 2 * time.Second,
		backoffMin:  5 * time.Millisecond,
		backoffMax:  time.Second,
		poolSize:    2,
		window:      make(chan struct{}, 64),
	}
	c.dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name returns the client's diagnostic name.
func (c *Client) Name() string { return c.name }

// Addr returns the dialed address.
func (c *Client) Addr() string { return c.addr }

// emit fires the state hook if installed.
func (c *Client) emit(event, detail string) {
	if c.hook != nil {
		c.hook(c.name, event, detail)
	}
}

// Call performs one RPC: frame the payload as type t, send it on a pooled
// connection, and wait for the correlated response. The context bounds the
// whole call; without a deadline the client's default call timeout
// applies. Transport failures return transient errors (see IsTransient);
// a TypeError response returns *RemoteError.
func (c *Client) Call(ctx context.Context, t Type, payload []byte) ([]byte, error) {
	if c.partitioned != nil && c.partitioned() {
		c.dropAll(true)
		if c.metrics != nil {
			c.metrics.CallErrors.Inc()
		}
		return nil, ErrPartitioned
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
		defer cancel()
	}

	// Backpressure: take an in-flight slot or fail when the window stays
	// full for the whole deadline.
	select {
	case c.window <- struct{}{}:
	case <-ctx.Done():
		if c.metrics != nil {
			c.metrics.CallErrors.Inc()
		}
		return nil, fmt.Errorf("wire: %s in-flight window full: %w", c.name, ctx.Err())
	}
	if c.metrics != nil {
		c.metrics.InFlight.Add(1)
	}
	defer func() {
		if c.metrics != nil {
			c.metrics.InFlight.Add(-1)
		}
		<-c.window
	}()

	start := time.Now()
	out, err := c.call(ctx, t, payload)
	if err != nil {
		if c.metrics != nil {
			c.metrics.CallErrors.Inc()
		}
		return nil, err
	}
	c.metrics.observeRPC(time.Since(start).Seconds())
	return out, nil
}

// call runs the RPC against one connection.
func (c *Client) call(ctx context.Context, t Type, payload []byte) ([]byte, error) {
	cc, err := c.getConn()
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch := make(chan Frame, 1)
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return nil, &UnavailableError{Addr: c.addr, Err: errors.New("connection lost")}
	}
	cc.pending[id] = ch
	cc.mu.Unlock()
	defer func() {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
	}()

	f := Frame{Type: t, ID: id, Payload: payload}
	if c.shape != nil {
		// Model the WAN: serialization plus propagation delay for a frame
		// of this size, charged before the bytes leave.
		if d := c.shape(f.wireSize()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}

	cc.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		cc.conn.SetWriteDeadline(dl)
	}
	n, werr := WriteFrame(cc.conn, f)
	cc.wmu.Unlock()
	if werr != nil {
		c.dropConn(cc, false, werr.Error())
		return nil, &UnavailableError{Addr: c.addr, Err: werr}
	}
	if c.metrics != nil {
		c.metrics.FramesSent.Inc()
		c.metrics.BytesSent.Add(int64(n))
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, &UnavailableError{Addr: c.addr, Err: errors.New("connection lost awaiting response")}
		}
		if resp.Type == TypeError {
			msg, err := DecodeString(resp.Payload)
			if err != nil {
				msg = fmt.Sprintf("(undecodable error payload: %v)", err)
			}
			return nil, &RemoteError{Msg: msg}
		}
		return resp.Payload, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("wire: call %s to %s: %w", t, c.addr, ctx.Err())
	}
}

// getConn returns a live pooled connection, dialing a new one when the
// pool has room and the backoff gate allows.
func (c *Client) getConn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	// Prune connections whose read loop died.
	live := c.conns[:0]
	for _, cc := range c.conns {
		cc.mu.Lock()
		dead := cc.dead
		cc.mu.Unlock()
		if !dead {
			live = append(live, cc)
		}
	}
	c.conns = live

	var pick *clientConn
	if len(c.conns) > 0 {
		pick = c.conns[c.rr%len(c.conns)]
		c.rr++
	}
	doDial := false
	if len(c.conns)+c.dialing < c.poolSize && time.Now().After(c.notBefore) {
		c.dialing++
		doDial = true
	}
	lastErr := c.lastDialErr
	c.mu.Unlock()

	if !doDial {
		if pick != nil {
			return pick, nil
		}
		if lastErr == nil {
			lastErr = errors.New("reconnect backoff in progress")
		}
		return nil, &UnavailableError{Addr: c.addr, Err: lastErr}
	}

	conn, err := c.dialer(c.addr, c.dialTimeout)
	c.mu.Lock()
	c.dialing--
	if err != nil {
		c.lastDialErr = err
		if c.backoff < c.backoffMin {
			c.backoff = c.backoffMin
		} else {
			c.backoff *= 2
			if c.backoff > c.backoffMax {
				c.backoff = c.backoffMax
			}
		}
		c.notBefore = time.Now().Add(c.backoff)
		c.mu.Unlock()
		if pick != nil {
			return pick, nil // a live conn beats a failed dial
		}
		return nil, &UnavailableError{Addr: c.addr, Err: err}
	}
	c.backoff = 0
	c.lastDialErr = nil
	c.everConnected = true
	reconnect := c.droppedConns > 0
	if reconnect {
		c.droppedConns--
	}
	cc := &clientConn{conn: conn, pending: make(map[uint64]chan Frame)}
	c.conns = append(c.conns, cc)
	closed := c.closed
	c.mu.Unlock()
	if closed {
		conn.Close()
		return nil, ErrClientClosed
	}
	go c.readLoop(cc)
	if c.metrics != nil {
		c.metrics.Connects.Inc()
		if reconnect {
			c.metrics.Reconnects.Inc()
		}
	}
	if reconnect {
		c.emit("reconnect", c.addr)
	} else {
		c.emit("connect", c.addr)
	}
	return cc, nil
}

// readLoop demultiplexes responses to pending calls until the stream
// breaks, then fails everything outstanding on this connection.
func (c *Client) readLoop(cc *clientConn) {
	for {
		f, n, err := ReadFrame(cc.conn)
		if err != nil {
			c.dropConn(cc, false, err.Error())
			return
		}
		if c.metrics != nil {
			c.metrics.FramesReceived.Inc()
			c.metrics.BytesReceived.Add(int64(n))
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.ID]
		if ok {
			delete(cc.pending, f.ID)
		}
		cc.mu.Unlock()
		if ok {
			// The payload aliases ReadFrame's per-frame buffer, never
			// reused, so handing it across the channel is safe.
			ch <- f
		}
	}
}

// dropConn marks one connection dead, closes it, and fails its pending
// calls. partition tags the drop as injected-partition for accounting.
func (c *Client) dropConn(cc *clientConn, partition bool, detail string) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	pending := cc.pending
	cc.pending = make(map[uint64]chan Frame)
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
	c.mu.Lock()
	c.droppedConns++
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.Disconnects.Inc()
		if partition {
			c.metrics.PartitionDrops.Inc()
		}
	}
	if partition {
		c.emit("partition_drop", detail)
	} else {
		c.emit("disconnect", detail)
	}
}

// dropAll severs every live connection (partition enforcement or Close).
func (c *Client) dropAll(partition bool) {
	c.mu.Lock()
	conns := append([]*clientConn(nil), c.conns...)
	c.conns = c.conns[:0]
	c.mu.Unlock()
	for _, cc := range conns {
		c.dropConn(cc, partition, c.addr)
	}
}

// Connected reports whether the client currently holds at least one live
// connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.mu.Lock()
		dead := cc.dead
		cc.mu.Unlock()
		if !dead {
			return true
		}
	}
	return false
}

// Close severs every connection and fails future calls.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.dropAll(false)
}
