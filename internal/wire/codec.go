package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/httpserver"
)

// The codec layer translates propagation-plane messages to and from frame
// payloads. It is a hand-rolled streaming binary format — uvarint lengths
// and counts, raw bytes for values — rather than encoding/json or gob:
// every committed transaction and every rendered page crosses this path, so
// the encoding must be allocation-lean and byte-stable across processes.

// ErrCodec wraps every payload decoding failure.
var ErrCodec = errors.New("wire: malformed payload")

// appendUvarint appends v as a uvarint.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// decoder consumes a payload front to back, latching the first error so
// call sites read fields linearly and check once at the end.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCodec, what)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) bytes(what string) []byte {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail(what)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) string(what string) string { return string(d.bytes(what)) }

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail(what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// done reports the latched error, also failing if trailing bytes remain —
// a long payload means the two ends disagree about the message shape.
func (d *decoder) done() error {
	if d.err == nil && len(d.b) != 0 {
		d.fail(fmt.Sprintf("%d trailing bytes", len(d.b)))
	}
	return d.err
}

// appendTime appends a wall-clock instant as unix nanoseconds (two's
// complement via zigzag is unnecessary: all times here are after 1970).
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return appendUvarint(dst, 0)
	}
	return appendUvarint(dst, uint64(t.UnixNano()))
}

func (d *decoder) time(what string) time.Time {
	v := d.uvarint(what)
	if v == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(v))
}

// EncodeTransaction renders a committed transaction as a TypeTxn payload.
func EncodeTransaction(dst []byte, tx db.Transaction) []byte {
	dst = appendUvarint(dst, uint64(tx.LSN))
	dst = appendUvarint(dst, uint64(tx.TraceID))
	dst = appendTime(dst, tx.Commit)
	dst = appendUvarint(dst, uint64(len(tx.Changes)))
	for _, c := range tx.Changes {
		dst = appendString(dst, c.Table)
		dst = appendString(dst, c.Key)
		flags := byte(c.Op) & 1
		if c.Created {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = appendUvarint(dst, uint64(len(c.Cols)))
		// Map order is not deterministic; the receiver rebuilds a map, so
		// ordering only matters for byte-identity of encodings, which
		// nothing depends on.
		for k, v := range c.Cols {
			dst = appendString(dst, k)
			dst = appendString(dst, v)
		}
	}
	return dst
}

// DecodeTransaction parses a TypeTxn payload.
func DecodeTransaction(p []byte) (db.Transaction, error) {
	d := &decoder{b: p}
	tx := db.Transaction{
		LSN:     int64(d.uvarint("lsn")),
		TraceID: int64(d.uvarint("trace id")),
		Commit:  d.time("commit time"),
	}
	nc := d.uvarint("change count")
	if d.err == nil && nc > uint64(len(p)) {
		// A count larger than the remaining bytes cannot be legitimate;
		// reject before allocating.
		d.fail("change count exceeds payload")
	}
	for i := uint64(0); i < nc && d.err == nil; i++ {
		c := db.Change{
			Table: d.string("table"),
			Key:   d.string("key"),
		}
		flags := d.byte("change flags")
		c.Op = db.Op(flags & 1)
		c.Created = flags&2 != 0
		ncols := d.uvarint("column count")
		if d.err == nil && ncols > uint64(len(p)) {
			d.fail("column count exceeds payload")
		}
		if d.err == nil && ncols > 0 && c.Op == db.OpPut {
			c.Cols = make(map[string]string, ncols)
		}
		for j := uint64(0); j < ncols && d.err == nil; j++ {
			k := d.string("column key")
			v := d.string("column value")
			if c.Cols != nil {
				c.Cols[k] = v
			}
		}
		tx.Changes = append(tx.Changes, c)
	}
	if err := d.done(); err != nil {
		return db.Transaction{}, err
	}
	return tx, nil
}

// EncodeObject renders a cache object as a TypePush payload.
func EncodeObject(dst []byte, obj *cache.Object) []byte {
	dst = appendString(dst, string(obj.Key))
	dst = appendString(dst, obj.ContentType)
	dst = appendUvarint(dst, uint64(obj.Version))
	dst = appendTime(dst, obj.StoredAt)
	return appendBytes(dst, obj.Value)
}

// DecodeObject parses a TypePush payload. The object's Value is copied out
// of the payload so it can outlive the connection's read buffer (cached
// objects are immutable and long-lived by contract).
func DecodeObject(p []byte) (*cache.Object, error) {
	d := &decoder{b: p}
	obj := &cache.Object{
		Key:         cache.Key(d.string("key")),
		ContentType: d.string("content type"),
		Version:     int64(d.uvarint("version")),
		StoredAt:    d.time("stored at"),
	}
	obj.Value = append([]byte(nil), d.bytes("value")...)
	if err := d.done(); err != nil {
		return nil, err
	}
	return obj, nil
}

// EncodeString renders a bare string payload (TypeInvalidate key,
// TypeInvalidatePrefix prefix, TypeError message, TypeServe path).
func EncodeString(dst []byte, s string) []byte { return appendString(dst, s) }

// DecodeString parses a bare string payload.
func DecodeString(p []byte) (string, error) {
	d := &decoder{b: p}
	s := d.string("string")
	if err := d.done(); err != nil {
		return "", err
	}
	return s, nil
}

// EncodeUint renders a bare uvarint payload (LSN answers, invalidation
// counts).
func EncodeUint(dst []byte, v uint64) []byte { return appendUvarint(dst, v) }

// DecodeUint parses a bare uvarint payload.
func DecodeUint(p []byte) (uint64, error) {
	d := &decoder{b: p}
	v := d.uvarint("uvarint")
	if err := d.done(); err != nil {
		return 0, err
	}
	return v, nil
}

// Pong is a node's answer to a dispatcher health probe: readiness plus the
// node's overload signal (see overload.Limiter.Load).
type Pong struct {
	Ready bool
	Load  float64
}

// EncodePong renders a TypePing ack payload.
func EncodePong(dst []byte, p Pong) []byte {
	b := byte(0)
	if p.Ready {
		b = 1
	}
	dst = append(dst, b)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Load))
}

// DecodePong parses a TypePing ack payload.
func DecodePong(p []byte) (Pong, error) {
	d := &decoder{b: p}
	out := Pong{Ready: d.byte("ready") == 1}
	if d.err == nil && len(d.b) >= 8 {
		out.Load = math.Float64frombits(binary.BigEndian.Uint64(d.b[:8]))
		d.b = d.b[8:]
	} else {
		d.fail("load")
	}
	if err := d.done(); err != nil {
		return Pong{}, err
	}
	return out, nil
}

// ServeResult is a node's answer to a forwarded request: the outcome, the
// served object when one exists, and the node-side error message otherwise.
type ServeResult struct {
	Outcome httpserver.Outcome
	Object  *cache.Object
	Err     string
}

// EncodeServeResult renders a TypeServe ack payload.
func EncodeServeResult(dst []byte, r ServeResult) []byte {
	dst = append(dst, byte(r.Outcome))
	dst = appendString(dst, r.Err)
	if r.Object == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return EncodeObject(dst, r.Object)
}

// DecodeServeResult parses a TypeServe ack payload.
func DecodeServeResult(p []byte) (ServeResult, error) {
	d := &decoder{b: p}
	r := ServeResult{
		Outcome: httpserver.Outcome(d.byte("outcome")),
		Err:     d.string("error"),
	}
	has := d.byte("object flag")
	if err := d.err; err != nil {
		return ServeResult{}, err
	}
	if has == 1 {
		obj, err := DecodeObject(d.b)
		if err != nil {
			return ServeResult{}, err
		}
		r.Object = obj
		return r, nil
	}
	if err := d.done(); err != nil {
		return ServeResult{}, err
	}
	return r, nil
}
