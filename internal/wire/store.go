package wire

import (
	"context"
	"sync"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/stats"
)

// RegisterStore exposes store over s as a push target: TypePush installs an
// object, TypeInvalidate / TypeInvalidatePrefix drop entries and ack with
// the removal count. A serving node registers its local cache here; the
// master's GroupClient fans broadcasts out to one such endpoint per node.
func RegisterStore(s *Server, store core.Store) {
	s.Handle(TypePush, func(payload []byte) ([]byte, error) {
		obj, err := DecodeObject(payload)
		if err != nil {
			return nil, err
		}
		store.ApplyPut(obj)
		return nil, nil
	})
	s.Handle(TypeInvalidate, func(payload []byte) ([]byte, error) {
		key, err := DecodeString(payload)
		if err != nil {
			return nil, err
		}
		n := store.ApplyInvalidate(cache.Key(key))
		return EncodeUint(nil, uint64(n)), nil
	})
	s.Handle(TypeInvalidatePrefix, func(payload []byte) ([]byte, error) {
		prefix, err := DecodeString(payload)
		if err != nil {
			return nil, err
		}
		n := store.ApplyInvalidatePrefix(prefix)
		return EncodeUint(nil, uint64(n)), nil
	})
}

// StoreClient drives one remote node's cache over the wire. Unlike
// core.Store its methods return errors: the GroupClient above it owns the
// retry-and-downgrade policy, which needs to see failures.
type StoreClient struct {
	name string
	c    *Client
}

// NewStoreClient wraps c as a push target named name (the remote node's
// name, used in downgrade hooks and diagnostics).
func NewStoreClient(name string, c *Client) *StoreClient {
	return &StoreClient{name: name, c: c}
}

// Name returns the remote node's name.
func (sc *StoreClient) Name() string { return sc.name }

// Client returns the underlying wire client.
func (sc *StoreClient) Client() *Client { return sc.c }

// Put installs obj on the remote node.
func (sc *StoreClient) Put(obj *cache.Object) error {
	_, err := sc.c.Call(context.Background(), TypePush, EncodeObject(nil, obj))
	return err
}

// Invalidate drops key on the remote node, reporting whether it was held.
func (sc *StoreClient) Invalidate(key cache.Key) (int, error) {
	resp, err := sc.c.Call(context.Background(), TypeInvalidate, EncodeString(nil, string(key)))
	if err != nil {
		return 0, err
	}
	n, err := DecodeUint(resp)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// InvalidatePrefix drops every key under prefix on the remote node.
func (sc *StoreClient) InvalidatePrefix(prefix string) (int, error) {
	resp, err := sc.c.Call(context.Background(), TypeInvalidatePrefix, EncodeString(nil, prefix))
	if err != nil {
		return 0, err
	}
	n, err := DecodeUint(resp)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// Close closes the underlying client.
func (sc *StoreClient) Close() { sc.c.Close() }

// pendingSet is the invalidation debt owed to one unreachable node: keys
// (and prefixes) the pipeline decided must not be served stale, whose
// invalidation could not be delivered because the link was down. The debt
// is settled before any new operation reaches the node and by a background
// flusher, so a node that comes back holding a stale page has it purged
// before — not merely "eventually after" — traffic depends on it.
type pendingSet struct {
	keys     map[cache.Key]struct{}
	prefixes map[string]struct{}
}

func (p *pendingSet) empty() bool { return len(p.keys) == 0 && len(p.prefixes) == 0 }

// GroupClient is the wire analogue of cache.Group: it implements core.Store
// by fanning every put and invalidation out to a set of remote nodes,
// applying the same bounded-retry-then-downgrade policy BroadcastPut uses
// locally. The extra failure mode TCP adds — the downgrade invalidation
// itself failing because the connection is gone — is covered by per-node
// pending-invalidation debt replayed on the next contact.
type GroupClient struct {
	mu      sync.Mutex
	members []*StoreClient
	pending map[string]*pendingSet // by member name

	retry     cache.RetryPolicy
	downgrade func(node string, key cache.Key)

	pushRetries    stats.Counter
	pushFailures   stats.Counter
	pushDowngrades stats.Counter
	pendingReplays stats.Counter

	flushEvery time.Duration
	quit       chan struct{}
	quitOnce   sync.Once
	done       chan struct{}
}

// GroupClientOption configures a GroupClient.
type GroupClientOption func(*GroupClient)

// WithGroupRetryPolicy sets the per-node push retry policy (default
// cache.DefaultRetryPolicy).
func WithGroupRetryPolicy(p cache.RetryPolicy) GroupClientOption {
	return func(g *GroupClient) { g.retry = p }
}

// WithGroupDowngradeHook installs the downgrade callback (same contract as
// cache.WithDowngradeHook). The observability journal wires in here.
func WithGroupDowngradeHook(h func(node string, key cache.Key)) GroupClientOption {
	return func(g *GroupClient) { g.downgrade = h }
}

// WithFlushInterval sets how often the background flusher retries pending
// invalidation debt (default 10ms; the loop idles cheaply when no debt
// exists).
func WithFlushInterval(d time.Duration) GroupClientOption {
	return func(g *GroupClient) {
		if d > 0 {
			g.flushEvery = d
		}
	}
}

// NewGroupClient returns a group over the given members and starts its
// background debt flusher. Close must be called to stop it.
func NewGroupClient(members []*StoreClient, opts ...GroupClientOption) *GroupClient {
	g := &GroupClient{
		members:    append([]*StoreClient(nil), members...),
		pending:    make(map[string]*pendingSet),
		retry:      cache.DefaultRetryPolicy(),
		flushEvery: 10 * time.Millisecond,
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, o := range opts {
		o(g)
	}
	go g.flushLoop()
	return g
}

// Members returns the member store clients.
func (g *GroupClient) Members() []*StoreClient {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*StoreClient(nil), g.members...)
}

// flushLoop periodically settles pending invalidation debt, covering the
// case where a node's link heals but no new broadcast touches it.
func (g *GroupClient) flushLoop() {
	defer close(g.done)
	ticker := time.NewTicker(g.flushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.quit:
			return
		case <-ticker.C:
			for _, m := range g.Members() {
				g.settle(m)
			}
		}
	}
}

// owed snapshots (without clearing) the debt owed to node name.
func (g *GroupClient) owed(name string) (keys []cache.Key, prefixes []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.pending[name]
	if p == nil {
		return nil, nil
	}
	for k := range p.keys {
		keys = append(keys, k)
	}
	for pre := range p.prefixes {
		prefixes = append(prefixes, pre)
	}
	return keys, prefixes
}

// addDebt records an undeliverable invalidation for later replay.
func (g *GroupClient) addDebt(name string, key cache.Key, prefix string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.pending[name]
	if p == nil {
		p = &pendingSet{keys: make(map[cache.Key]struct{}), prefixes: make(map[string]struct{})}
		g.pending[name] = p
	}
	if key != "" {
		p.keys[key] = struct{}{}
	}
	if prefix != "" {
		p.prefixes[prefix] = struct{}{}
	}
}

// clearDebt removes one settled entry.
func (g *GroupClient) clearDebt(name string, key cache.Key, prefix string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.pending[name]
	if p == nil {
		return
	}
	if key != "" {
		delete(p.keys, key)
	}
	if prefix != "" {
		delete(p.prefixes, prefix)
	}
	if p.empty() {
		delete(g.pending, name)
	}
}

// settle replays node m's pending invalidations, stopping at the first
// failure (the link is still down; the rest would fail too). Reports
// whether no debt remains.
func (g *GroupClient) settle(m *StoreClient) bool {
	keys, prefixes := g.owed(m.Name())
	for _, pre := range prefixes {
		if _, err := m.InvalidatePrefix(pre); err != nil {
			return false
		}
		g.pendingReplays.Inc()
		g.clearDebt(m.Name(), "", pre)
	}
	for _, k := range keys {
		if _, err := m.Invalidate(k); err != nil {
			return false
		}
		g.pendingReplays.Inc()
		g.clearDebt(m.Name(), k, "")
	}
	return true
}

// PendingDebt reports how many invalidations are currently owed across all
// nodes (tests and the coherence audit use it to know when the degraded
// path has fully settled).
func (g *GroupClient) PendingDebt() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, p := range g.pending {
		n += len(p.keys) + len(p.prefixes)
	}
	return n
}

// ApplyPut implements core.Store: push obj to every member with bounded
// retries, downgrading a node to invalidation on exhaustion — and to
// recorded debt if even the invalidation cannot be delivered.
func (g *GroupClient) ApplyPut(obj *cache.Object) {
	g.mu.Lock()
	retry, downgrade := g.retry, g.downgrade
	g.mu.Unlock()
	sleep := retry.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for _, m := range g.members {
		// Settle older debt first so operations arrive in a safe order: an
		// undelivered invalidation must not outlive a newer successful push.
		g.settle(m)
		backoff := retry.Backoff
		delivered := false
		for attempt := 1; attempt <= retry.MaxAttempts; attempt++ {
			err := m.Put(obj)
			if err == nil {
				delivered = true
				// A fresh object supersedes any debt recorded for this key
				// while this broadcast was in flight.
				g.clearDebt(m.Name(), obj.Key, "")
				break
			}
			g.pushFailures.Inc()
			if attempt < retry.MaxAttempts {
				g.pushRetries.Inc()
				sleep(backoff)
				backoff *= 2
				if backoff > retry.MaxBackoff {
					backoff = retry.MaxBackoff
				}
			}
		}
		if !delivered {
			g.pushDowngrades.Inc()
			if _, err := m.Invalidate(obj.Key); err != nil {
				// The degraded remedy itself could not be delivered: the node
				// may hold a stale copy. Record the debt; the flusher and the
				// next contact replay it before the node serves unchecked.
				g.addDebt(m.Name(), obj.Key, "")
			}
			if downgrade != nil {
				downgrade(m.Name(), obj.Key)
			}
		}
	}
}

// ApplyInvalidate implements core.Store, summing per-node removal counts.
// Undeliverable invalidations become debt.
func (g *GroupClient) ApplyInvalidate(key cache.Key) int {
	total := 0
	for _, m := range g.Members() {
		g.settle(m)
		n, err := m.Invalidate(key)
		if err != nil {
			g.addDebt(m.Name(), key, "")
			continue
		}
		total += n
	}
	return total
}

// ApplyInvalidatePrefix implements core.Store.
func (g *GroupClient) ApplyInvalidatePrefix(prefix string) int {
	total := 0
	for _, m := range g.Members() {
		g.settle(m)
		n, err := m.InvalidatePrefix(prefix)
		if err != nil {
			g.addDebt(m.Name(), "", prefix)
			continue
		}
		total += n
	}
	return total
}

// RegisterMetrics publishes the group's push-degradation counters. Use
// labels to keep them distinct from a local cache.Group's identically named
// families (e.g. {"transport": "wire"}).
func (g *GroupClient) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("push_retries_total",
		"wire push attempts retried after a per-node failure", labels, &g.pushRetries)
	reg.RegisterCounter("push_failures_total",
		"individual per-node wire push attempts that failed", labels, &g.pushFailures)
	reg.RegisterCounter("push_downgrades_total",
		"wire pushes downgraded to invalidation after retry exhaustion", labels, &g.pushDowngrades)
	reg.RegisterCounter("wire_pending_replays_total",
		"pending invalidations replayed after a link recovered", labels, &g.pendingReplays)
	reg.RegisterFunc("wire_pending_invalidations",
		"invalidation debt currently owed to unreachable nodes", labels,
		func() float64 { return float64(g.PendingDebt()) })
}

// Close stops the background flusher and closes every member client.
func (g *GroupClient) Close() {
	g.quitOnce.Do(func() { close(g.quit) })
	<-g.done
	for _, m := range g.Members() {
		m.Close()
	}
}
