package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlightCapturesEveryAnomalyKind drives the flight scenario once and
// checks that each provoked anomaly produced at least one dump with
// correlated context: serve spans carrying observed LSNs, propagation
// traces, and the triggering journal events.
func TestRunFlightCapturesEveryAnomalyKind(t *testing.T) {
	res, err := RunFlight(FlightConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("kinds = %v, want all of %v", res.Kinds, flightTriggers)
	}
	byKind := map[string][]int{}
	for i, d := range res.Dumps {
		byKind[d.Kind] = append(byKind[d.Kind], i)
	}
	for _, want := range flightTriggers {
		if len(byKind[want]) == 0 {
			t.Errorf("no dump for trigger %s", want)
		}
	}
	for _, d := range res.Dumps {
		if len(d.Spans) == 0 {
			t.Errorf("dump %s has no serve spans", d.Kind)
		}
		if len(d.Traces) == 0 {
			t.Errorf("dump %s has no propagation traces", d.Kind)
		}
		if len(d.Events) == 0 {
			t.Errorf("dump %s has no journal events", d.Kind)
		}
	}
	// Serve spans must correlate back to propagation: at least one span in
	// the final dump observed a positive LSN, and at least one render span
	// counted its database reads.
	last := res.Dumps[len(res.Dumps)-1]
	var sawLSN, sawReads bool
	for _, s := range last.Spans {
		if s.LSN > 0 {
			sawLSN = true
		}
		if s.DBReads > 0 {
			sawReads = true
		}
	}
	if !sawLSN {
		t.Error("no span observed an LSN")
	}
	if !sawReads {
		t.Error("no span counted database reads")
	}
	if !strings.Contains(string(res.Canonical), `"outcome":"miss"`) {
		t.Error("canonical bytes carry no miss span")
	}
}

// TestRunFlightIsByteReproducible runs the scenario twice with the same seed
// and requires the canonical dump bytes to match exactly — the flight
// recorder's black boxes are a deterministic artifact of (seed, scenario),
// not of scheduling.
func TestRunFlightIsByteReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("two full flight runs")
	}
	a, err := RunFlight(FlightConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlight(FlightConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK || !b.OK {
		t.Fatalf("ok = %t/%t, want both true", a.OK, b.OK)
	}
	if !bytes.Equal(a.Canonical, b.Canonical) {
		d1, d2 := a.Canonical, b.Canonical
		i := 0
		for i < len(d1) && i < len(d2) && d1[i] == d2[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hi1, hi2 := i+120, i+120
		if hi1 > len(d1) {
			hi1 = len(d1)
		}
		if hi2 > len(d2) {
			hi2 = len(d2)
		}
		t.Fatalf("canonical bytes diverge at offset %d:\n run1: …%s…\n run2: …%s…",
			i, d1[lo:hi1], d2[lo:hi2])
	}
}
