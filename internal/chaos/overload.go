package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/core"
	"dupserve/internal/deploy"
	"dupserve/internal/httpserver"
	"dupserve/internal/overload"
	"dupserve/internal/routing"
	"dupserve/internal/site"
)

// nodeSlots is the per-node render concurrency for the scenario plant:
// small enough that a modest flood saturates it.
const nodeSlots = 1

// renderSpin is the synthetic per-render CPU cost (iterations of
// httpserver.SpinOverhead). Without it a render completes in microseconds
// and the flood never contends for slots; with it a commit's invalidation
// fan-out turns the flood into real slot pressure.
const renderSpin = 10_000_000

// commitPace is the gap between flood-phase commits. Each commit
// re-invalidates its event's pages; at this pace a hot page spends most of
// its time invalidated, so the flood keeps contending for render slots.
const commitPace = 100 * time.Microsecond

// clientThink paces each synthetic client between requests. Without it the
// in-process hit path is so fast that an entire flood completes before a
// single commit's invalidation has propagated; with it the flood spans
// hundreds of commit cycles and the hot pages stay contended.
const clientThink = 100 * time.Microsecond

// OverloadConfig describes an overload scenario run.
type OverloadConfig struct {
	// Seed drives client page selection.
	Seed int64
	// Clients is the estimated serving capacity in concurrent clients
	// (default: the plant's total render slots). The flood runs at
	// Surge x Clients.
	Clients int
	// Surge is the flood multiplier (default 5 — the 5:1 overload of the
	// scenario).
	Surge int
	// RequestsPerClient is how many requests each flood client issues
	// (default 80).
	RequestsPerClient int
	// StaleBudget bounds how old a degraded response may be (default 1m).
	StaleBudget time.Duration
	// SLO is the freshness objective for the residual probe (default 60s).
	SLO time.Duration
	// Timeout bounds each convergence wait (default 30s).
	Timeout time.Duration
	// Out receives the scenario report (default: discard).
	Out io.Writer
}

func (cfg OverloadConfig) withDefaults(capacity int) OverloadConfig {
	if cfg.Clients <= 0 {
		cfg.Clients = capacity
	}
	if cfg.Surge <= 0 {
		cfg.Surge = 5
	}
	if cfg.RequestsPerClient <= 0 {
		cfg.RequestsPerClient = 80
	}
	if cfg.StaleBudget <= 0 {
		cfg.StaleBudget = time.Minute
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 60 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	return cfg
}

// PhaseStats counts request outcomes over one traffic phase.
type PhaseStats struct {
	Requests int64
	Hits     int64
	Misses   int64
	Stale    int64 // degraded to a bounded-staleness copy
	Shed     int64 // client-visible refusals
	Errors   int64 // anything else — the invariant is 0
}

// OverloadResult is the scenario outcome.
type OverloadResult struct {
	Seed     int64
	Baseline PhaseStats
	Flood    PhaseStats
	// HitAdmitted: with every render slot on every node held, a cached page
	// was still served as a hit.
	HitAdmitted bool
	// StaleServed: under the same total saturation, an invalidated page was
	// served from its retained copy (OutcomeStale), not refused.
	StaleServed bool
	// Withdrawn: the load advisor withdrew advertised addresses from every
	// saturated complex.
	Withdrawn bool
	// BlackHoled: some address lost every advertiser (invariant: false).
	BlackHoled bool
	// OverBudgetServers counts servers whose worst served staleness exceeded
	// the budget (invariant: 0).
	OverBudgetServers int
	// Reconverged: every complex reached the master's LSN after the flood.
	Reconverged bool
	// Restored: loads subsided and every withdrawn address was re-advertised.
	Restored bool
	// StalePages and ResidualViolations as in the tournament (invariant: 0).
	StalePages         int
	ResidualViolations int64
	// Audit is the post-recovery consistency sweep: the reconverged plant
	// must be provably coherent against a shadow render.
	Audit AuditSummary
	OK    bool
}

// overloadDeployment builds the scenario plant: the tournament topology
// under PolicyInvalidate (so commits produce misses, which is what admission
// control meters) with per-node limiters and stale retention.
func overloadDeployment(cfg OverloadConfig) (*deploy.Deployment, error) {
	return deploy.New(deploy.Config{
		Spec:        spec(),
		Complexes:   topology(),
		BatchWindow: 2 * time.Millisecond,
		Policy:      core.PolicyInvalidate,
		RenderCost:  httpserver.SpinOverhead(renderSpin),
	},
		deploy.WithOverload(overload.Config{
			MaxConcurrent: nodeSlots,
			// No wait queue: a saturated node degrades immediately rather
			// than stacking queue delay, which keeps the scenario's
			// saturation phase deterministic.
			MaxQueue: -1,
		}, cfg.StaleBudget),
		deploy.WithTracing(cfg.SLO),
		deploy.WithAudit(),
	)
}

// capacity is the plant's total render slots.
func capacity(d *deploy.Deployment) int {
	n := 0
	for _, cx := range d.Complexes() {
		n += len(cx.Cluster.Nodes()) * nodeSlots
	}
	return n
}

// RunOverload executes the overload scenario: a synthetic request flood at
// a multiple of the plant's render capacity, asserting the
// graceful-degradation invariants of the overload path end to end:
//
//  1. Hits are always admitted. Admission control guards renders only, so a
//     fully saturated node still serves every cached page.
//  2. Degradation is stale-but-bounded, never silent. A shed render falls
//     back to the invalidated entry's retained copy within the staleness
//     budget; no server ever serves a page older than the budget, and
//     client-visible refusals stay a bounded fraction of the flood.
//  3. The routing layer reacts and recovers. Saturated complexes have
//     addresses withdrawn in 8 1/3 % steps without black-holing any
//     address, and everything is re-advertised once the surge clears.
//  4. The pipeline reconverges: after the flood, every complex reaches the
//     master's LSN with zero stale pages and zero residual freshness-SLO
//     violations.
//
// Determinism follows the tournament's convention: the report prints only
// invariant quantities (fixed request counts, zero-counts, booleans), so
// output is byte-for-byte identical across runs with the same seed as long
// as the invariants hold. Timing-dependent counts (how many requests
// degraded to stale, how many renders each node admitted) live in the
// Result for tests but never in the report.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults(0)
	d, err := overloadDeployment(cfg)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(capacity(d))
	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return nil, err
	}

	res := &OverloadResult{Seed: cfg.Seed}
	events := d.MasterSite.Events
	lastLSN := make(map[string]int64)
	regions := []routing.Region{routing.RegionJapan, routing.RegionUS, routing.RegionEurope}
	pages := floodPages(events)

	fmt.Fprintf(cfg.Out, "overload scenario: seed=%d capacity=%d clients surge=%dx requests/client=%d stale_budget=%s\n",
		cfg.Seed, cfg.Clients, cfg.Surge, cfg.RequestsPerClient, cfg.StaleBudget)

	// Phase 1 — baseline at estimated capacity: a primed site under 1x load
	// serves everything from cache with zero sheds and zero errors.
	res.Baseline = flood(d, cfg.Clients, cfg.RequestsPerClient, pages, regions, cfg.Seed)
	fmt.Fprintf(cfg.Out, "phase baseline: requests=%d errors=%d sheds=%d\n",
		res.Baseline.Requests, res.Baseline.Errors, res.Baseline.Shed)

	// Phase 2 — deterministic saturation: invalidate the hot page, then hold
	// every render slot on every node (the synthetic resident flood) and
	// assert the degradation contract point-blank.
	hot := events[0]
	tx, err := d.MasterSite.RecordPartial(hot, hot.Participants[0], "surge.0")
	if err != nil {
		return nil, fmt.Errorf("overload: surge commit: %w", err)
	}
	lastLSN[hot.Key] = tx.LSN
	if !d.WaitFresh(cfg.Timeout) {
		return nil, fmt.Errorf("overload: invalidation did not propagate")
	}
	releases := holdAllSlots(d)
	res.HitAdmitted = true
	res.StaleServed = true
	for _, region := range regions {
		// The invalidated page must degrade to its retained copy...
		if _, outcome, _, err := d.Serve(region, eventPage(hot)); err != nil || outcome != httpserver.OutcomeStale {
			res.StaleServed = false
		}
		// ...while an untouched page is still a plain admitted hit.
		if _, outcome, _, err := d.Serve(region, "/en/news/n000"); err != nil || outcome != httpserver.OutcomeHit {
			res.HitAdmitted = false
		}
	}
	loads := d.AdviseLoad()
	res.Withdrawn = true
	for _, cx := range d.Complexes() {
		if loads[cx.Name] < 1 || len(d.Router.LoadShedAddrs(cx.Name)) == 0 {
			res.Withdrawn = false
		}
	}
	for _, region := range regions {
		for addr := 0; addr < routing.NumAddresses; addr++ {
			if len(d.Router.Route(region, routing.Address(addr))) == 0 {
				res.BlackHoled = true
			}
		}
	}
	for _, release := range releases {
		release()
	}
	fmt.Fprintf(cfg.Out, "phase saturate: hit_admitted=%t stale_served=%t withdrawn=%t black_holed=%t\n",
		res.HitAdmitted, res.StaleServed, res.Withdrawn, res.BlackHoled)

	// Phase 3 — the flood: Surge x capacity concurrent clients while results
	// keep committing (each commit re-invalidates its pages, so the flood is
	// a steady mix of hits, renders, and degradations) and the load advisor
	// keeps sweeping.
	var wg sync.WaitGroup
	var fl phaseCounters
	clients := cfg.Clients * cfg.Surge
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			for r := 0; r < cfg.RequestsPerClient; r++ {
				region := regions[(id+r)%len(regions)]
				_, outcome, _, err := d.Serve(region, pages[rng.Intn(len(pages))])
				fl.record(outcome, err)
				time.Sleep(clientThink)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	commits := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-time.After(commitPace):
			ev := events[commits%len(events)]
			tx, err := d.MasterSite.RecordPartial(ev, ev.Participants[commits%len(ev.Participants)],
				fmt.Sprintf("flood.%d", commits))
			if err == nil {
				lastLSN[ev.Key] = tx.LSN
				commits++
			}
			d.AdviseLoad()
		}
	}
	res.Flood = fl.snapshot()
	shedBounded := res.Flood.Shed*10 <= res.Flood.Requests
	for _, cx := range d.Complexes() {
		for _, n := range cx.Cluster.Nodes() {
			if srv, ok := n.Server().(*httpserver.Server); ok {
				if srv.Stats().StaleAgeMax > cfg.StaleBudget {
					res.OverBudgetServers++
				}
			}
		}
	}
	fmt.Fprintf(cfg.Out, "phase flood: requests=%d errors=%d shed_bounded=%t over_budget_servers=%d\n",
		res.Flood.Requests, res.Flood.Errors, shedBounded, res.OverBudgetServers)

	// Phase 4 — recovery. Sweeper commits invalidate every page a straggling
	// render might have re-inserted mid-flood, so the stale scan below is
	// deterministic; then the plant must reconverge, re-advertise, and pass
	// the residual-SLO probe.
	for i, ev := range events {
		tx, err := d.MasterSite.RecordPartial(ev, ev.Participants[0], fmt.Sprintf("sweep.%d", i))
		if err != nil {
			return nil, fmt.Errorf("overload: sweep commit: %w", err)
		}
		lastLSN[ev.Key] = tx.LSN
	}
	res.Reconverged = d.WaitFresh(cfg.Timeout)
	loads = d.AdviseLoad()
	res.Restored = true
	for _, cx := range d.Complexes() {
		if loads[cx.Name] >= 1 || len(d.Router.LoadShedAddrs(cx.Name)) != 0 {
			res.Restored = false
		}
	}
	res.StalePages = stalePages(d, events, lastLSN)
	base := violations(d)
	probe := events[0]
	tx, err = d.MasterSite.RecordPartial(probe, probe.Participants[0], "probe")
	if err != nil {
		return nil, fmt.Errorf("overload: probe commit: %w", err)
	}
	lastLSN[probe.Key] = tx.LSN
	if !d.WaitFresh(cfg.Timeout) {
		res.Reconverged = false
	}
	res.ResidualViolations = violations(d) - base
	fmt.Fprintf(cfg.Out, "phase recover: reconverged=%t restored=%t stale_pages=%d residual_slo_violations=%d\n",
		res.Reconverged, res.Restored, res.StalePages, res.ResidualViolations)

	// Consistency audit over the reconverged plant: the flood degraded and
	// shed freely, but nothing it served — and nothing it left in any cache
	// — may diverge from the data unexplained.
	res.Audit, err = auditSweep(d, cfg.Out)
	if err != nil {
		return nil, err
	}

	res.OK = res.Baseline.Errors == 0 && res.Baseline.Shed == 0 &&
		res.HitAdmitted && res.StaleServed && res.Withdrawn && !res.BlackHoled &&
		res.Flood.Errors == 0 && shedBounded && res.OverBudgetServers == 0 &&
		res.Reconverged && res.Restored && res.StalePages == 0 && res.ResidualViolations == 0 &&
		res.Audit.OK
	fmt.Fprintf(cfg.Out, "overload: seed=%d ok=%t\n", res.Seed, res.OK)
	return res, nil
}

// floodPages is the flood's page mix: every event page (the hot set the
// commits keep invalidating) plus the news pages (a cold-but-cached set
// that must ride through the surge as pure hits).
func floodPages(events []*site.Event) []string {
	var pages []string
	for _, ev := range events {
		pages = append(pages, eventPage(ev))
	}
	for i := 0; i < spec().NewsStories; i++ {
		pages = append(pages, fmt.Sprintf("/en/news/n%03d", i))
	}
	return pages
}

// holdAllSlots occupies every render slot of every node and returns the
// releases. This is the deterministic stand-in for a resident flood: with
// all slots held, every render attempt system-wide must shed.
func holdAllSlots(d *deploy.Deployment) []func() {
	var releases []func()
	for _, cx := range d.Complexes() {
		for _, n := range cx.Cluster.Nodes() {
			srv, ok := n.Server().(*httpserver.Server)
			if !ok || srv.Limiter() == nil {
				continue
			}
			for {
				release, err := srv.Limiter().TryAcquire()
				if err != nil {
					break
				}
				releases = append(releases, release)
			}
		}
	}
	return releases
}

// phaseCounters accumulates outcomes concurrently; snapshot converts to the
// exported PhaseStats.
type phaseCounters struct {
	requests, hits, misses, stale, shed, errs atomic.Int64
}

func (p *phaseCounters) record(outcome httpserver.Outcome, err error) {
	p.requests.Add(1)
	switch {
	case outcome == httpserver.OutcomeShed:
		p.shed.Add(1)
	case err != nil:
		p.errs.Add(1)
	case outcome == httpserver.OutcomeStale:
		p.stale.Add(1)
	case outcome == httpserver.OutcomeMiss:
		p.misses.Add(1)
	case outcome == httpserver.OutcomeHit, outcome == httpserver.OutcomeStatic:
		p.hits.Add(1)
	default:
		p.errs.Add(1)
	}
}

func (p *phaseCounters) snapshot() PhaseStats {
	return PhaseStats{
		Requests: p.requests.Load(),
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Stale:    p.stale.Load(),
		Shed:     p.shed.Load(),
		Errors:   p.errs.Load(),
	}
}

// flood runs clients concurrent clients, each issuing n requests drawn from
// pages with a per-client seeded RNG, and returns the outcome counts.
func flood(d *deploy.Deployment, clients, n int, pages []string, regions []routing.Region, seed int64) PhaseStats {
	var wg sync.WaitGroup
	var pc phaseCounters
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			for r := 0; r < n; r++ {
				region := regions[(id+r)%len(regions)]
				_, outcome, _, err := d.Serve(region, pages[rng.Intn(len(pages))])
				pc.record(outcome, err)
				time.Sleep(clientThink)
			}
		}(i)
	}
	wg.Wait()
	return pc.snapshot()
}
