package chaos

import (
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"context"

	"dupserve/internal/cache"
	"dupserve/internal/deploy"
	"dupserve/internal/fault"
	"dupserve/internal/obs"
	"dupserve/internal/overload"
	"dupserve/internal/routing"
)

// FlightConfig describes a flight-recorder scenario run.
type FlightConfig struct {
	// Seed labels the run and drives the one injected fault decision.
	Seed int64
	// Timeout bounds each convergence wait (default 30s).
	Timeout time.Duration
	// Out receives the report (default: discard).
	Out io.Writer
}

// FlightResult is the scenario outcome.
type FlightResult struct {
	Seed int64
	// Dumps are the black boxes captured, oldest first.
	Dumps []obs.Dump
	// Kinds are the distinct trigger kinds among the dumps, sorted.
	Kinds []string
	// Canonical is the newline-joined canonical (time-free) projection of
	// every dump — the byte-reproducibility oracle: two runs with the same
	// seed produce identical Canonical bytes.
	Canonical []byte
	// OK is true when every anomaly kind produced at least one dump.
	OK bool
}

// flightTriggers is every anomaly kind the scenario provokes, in the order
// it provokes them.
var flightTriggers = []string{
	obs.TriggerSLOViolation,
	obs.TriggerCrash,
	obs.TriggerShedStart,
	obs.TriggerIncoherent,
}

// RunFlight drives a single-complex deployment through one instance of each
// anomaly the flight recorder triggers on — a freshness-SLO violation, a
// trigger-monitor crash, a CoDel shed transition, and an audit-incoherent
// page — and collects the black-box dumps.
//
// Where Run embraces timing variance (that is what a tournament is for),
// RunFlight sequences every step: one complex, one transaction per phase,
// convergence waits between phases, a fault budget of exactly one crash,
// and a journal armed only after the plant has converged. Under that
// regime the canonical projection of every dump — spans with their
// outcomes, nodes, observed LSNs and database reads; propagation traces
// with their IDs and LSNs; journal events with their attributes — is
// byte-for-byte identical across runs with the same seed.
func RunFlight(cfg FlightConfig) (*FlightResult, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}

	inj := fault.New(fault.Config{Seed: cfg.Seed})
	d, err := deploy.New(deploy.Config{
		Spec: spec(),
		Complexes: []deploy.ComplexSpec{
			{Name: "tokyo", Frames: 1, NodesPerFrame: 2, ReplicationDelay: time.Millisecond,
				Distance: map[routing.Region]int{
					routing.RegionJapan: 10, routing.RegionAsia: 10, routing.RegionUS: 10,
					routing.RegionEurope: 10, routing.RegionOther: 10,
				}},
		},
		BatchWindow: 2 * time.Millisecond,
	},
		deploy.WithFaults(inj),
		deploy.WithRetryPolicy(cache.RetryPolicy{
			MaxAttempts: 3,
			Backoff:     50 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Sleep:       func(time.Duration) {},
		}),
		// A 1ns SLO makes every propagation a violation, so the SLO phase
		// needs exactly one commit to trip the recorder.
		deploy.WithTracing(time.Nanosecond),
		deploy.WithAudit(),
		// One render slot with a 1ns CoDel target: a single queued waiter
		// is a standing queue, so the shed phase can flip the controller
		// with two requests.
		deploy.WithOverload(overload.Config{
			MaxConcurrent: 1, MaxQueue: 4,
			Target: time.Nanosecond, Interval: time.Nanosecond,
		}, 0),
		deploy.WithObservability(),
	)
	if err != nil {
		return nil, err
	}
	cx := d.Complexes()[0]
	// Startup timing (how much of the seed data the first monitor replays,
	// when replication lands) is racy; keep the journal disarmed until the
	// plant has converged so dumps only ever contain sequenced events.
	cx.Obs.SetArmed(false)

	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return nil, err
	}
	cx.Obs.SetArmed(true)

	events := d.MasterSite.Events
	if len(events) < 4 {
		return nil, fmt.Errorf("flight: need 4 events, spec built %d", len(events))
	}
	fmt.Fprintf(cfg.Out, "flight recorder: seed=%d complex=%s\n", cfg.Seed, cx.Name)

	// Phase 1 — hits: primed pages served through the router, so the span
	// ring carries hit spans with their observed LSNs before any anomaly.
	for _, ev := range events[:2] {
		if _, _, _, err := d.Serve(routing.RegionJapan, eventPage(ev)); err != nil {
			return nil, fmt.Errorf("flight: hit serve: %w", err)
		}
	}

	// Phase 2 — miss: invalidate one page everywhere and serve it, so the
	// ring also carries a render span with a database-read count.
	missPage := eventPage(events[2])
	cx.Cluster.Caches.ApplyInvalidate(cache.Key(missPage))
	if _, _, _, err := d.Serve(routing.RegionJapan, missPage); err != nil {
		return nil, fmt.Errorf("flight: miss serve: %w", err)
	}

	// Phase 3 — freshness-SLO violation: one commit, one propagation, one
	// violation, one dump.
	if _, err := d.MasterSite.RecordPartial(events[0],
		events[0].Participants[0], "flight.slo"); err != nil {
		return nil, fmt.Errorf("flight: slo commit: %w", err)
	}
	if !d.WaitFresh(cfg.Timeout) {
		return nil, fmt.Errorf("flight: slo phase did not converge")
	}
	if err := waitJournal(cx.Obs, "trace", "slo_violation", 1, cfg.Timeout); err != nil {
		return nil, err
	}

	// Phase 4 — monitor crash: rate 1 with a budget of 1 crashes the
	// monitor on exactly the next batch; supervision restarts it and the
	// replacement replays the dropped transaction from the retained log.
	inj.SetRate(fault.KindMonitorCrash, 1)
	inj.SetBudget(fault.KindMonitorCrash, 1)
	if _, err := d.MasterSite.RecordPartial(events[1],
		events[1].Participants[0], "flight.crash"); err != nil {
		return nil, fmt.Errorf("flight: crash commit: %w", err)
	}
	deadline := time.Now().Add(cfg.Timeout)
	for cx.MonitorRestarts() < 1 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("flight: monitor never crashed")
		}
		time.Sleep(time.Millisecond)
	}
	inj.ClearRates()
	if !d.WaitFresh(cfg.Timeout) {
		return nil, fmt.Errorf("flight: crash phase did not converge")
	}
	// The replay event lands on the monitor goroutine just after its
	// propagation; wait for it so the journal order stays sequenced.
	if err := waitJournal(cx.Obs, "trigger", "replay", 1, cfg.Timeout); err != nil {
		return nil, err
	}

	// Phase 5 — shed transition: occupy the single render slot, queue one
	// waiter, and release the slot. The waiter's queue delay stands above
	// the 1ns target for well over the 1ns interval, so its admission
	// flips the CoDel controller into shedding (shed_start → dump); its
	// release drains the limiter and flips it back (shed_stop).
	node := cx.Cluster.Nodes()[0]
	lim := node.Server().(interface{ Limiter() *overload.Limiter }).Limiter()
	hold, err := lim.TryAcquire()
	if err != nil {
		return nil, fmt.Errorf("flight: shed phase: slot not free: %w", err)
	}
	done := make(chan error, 1)
	go func() {
		rel, err := lim.Acquire()
		if err != nil {
			done <- err
			return
		}
		rel()
		done <- nil
	}()
	for lim.Waiting() < 1 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("flight: waiter never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	hold()
	if err := <-done; err != nil {
		return nil, fmt.Errorf("flight: queued waiter shed: %w", err)
	}

	// Phase 6 — incoherent page: poison one node's cache with a corrupted
	// body stamped at the replica's current LSN (so no committed change
	// can explain the divergence), serve it from that node so the audit
	// tap samples it, and sweep. The auditor classifies it incoherent and
	// the journal event trips the recorder.
	poisonPage := eventPage(events[3])
	var poisoned *cache.Cache
	for _, c := range cx.Cluster.Caches.Members() {
		if c.Name() == node.Name() {
			poisoned = c
		}
	}
	if poisoned == nil {
		return nil, fmt.Errorf("flight: no cache for node %s", node.Name())
	}
	orig, ok := poisoned.Peek(cache.Key(poisonPage))
	if !ok {
		return nil, fmt.Errorf("flight: %s not cached on %s", poisonPage, node.Name())
	}
	poisoned.Put(&cache.Object{
		Key:         orig.Key,
		Value:       append([]byte("poisoned:"), orig.Value...),
		ContentType: orig.ContentType,
		Version:     cx.Replica.LSN(),
	})
	if _, _, err := node.Serve(poisonPage); err != nil {
		return nil, fmt.Errorf("flight: poisoned serve: %w", err)
	}
	if _, err := cx.Auditor.Sweep(); err != nil {
		return nil, fmt.Errorf("flight: audit sweep: %w", err)
	}
	poisoned.Put(orig) // restore

	rec := cx.Obs.Recorder
	res := &FlightResult{
		Seed:  cfg.Seed,
		Dumps: rec.Dumps(),
		Kinds: rec.Kinds(),
		OK:    true,
	}
	for _, want := range flightTriggers {
		found := false
		for _, k := range res.Kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			res.OK = false
		}
	}
	for _, dump := range res.Dumps {
		res.Canonical = append(res.Canonical, dump.Canonical()...)
		res.Canonical = append(res.Canonical, '\n')
	}

	for i, dump := range res.Dumps {
		fmt.Fprintf(cfg.Out, "dump %d kind=%-20s spans=%d traces=%d events=%d\n",
			i, dump.Kind, len(dump.Spans), len(dump.Traces), len(dump.Events))
	}
	fmt.Fprintf(cfg.Out, "flight: seed=%d dumps=%d kinds=%d canonical_sha256=%x ok=%t\n",
		res.Seed, len(res.Dumps), len(res.Kinds), sha256.Sum256(res.Canonical), res.OK)
	return res, nil
}

// waitJournal blocks until the complex's journal holds at least n events of
// scope/kind, bounding the wait: the phases that emit events on pipeline
// goroutines (SLO violations, replay) are sequenced against the next phase
// through it.
func waitJournal(suite *obs.Suite, scope, kind string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		count := 0
		for _, e := range suite.Journal.Recent(0) {
			if e.Scope == scope && e.Kind == kind {
				count++
			}
		}
		if count >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("flight: journal never recorded %s/%s", scope, kind)
		}
		time.Sleep(time.Millisecond)
	}
}
