package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dupserve/internal/routing"
)

// BenchPoint measures the serve path at one load multiplier.
type BenchPoint struct {
	// Multiplier of estimated capacity (1 = at capacity, 5 = the flood).
	Multiplier int   `json:"multiplier"`
	Clients    int   `json:"clients"`
	Requests   int64 `json:"requests"`
	// DurationSec is the wall-clock of the measured phase.
	DurationSec float64 `json:"duration_sec"`
	// ThroughputRPS counts every answered request (fresh or stale).
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
	// HitRate/StaleRate/ShedRate partition the outcomes: admitted cache
	// hits, bounded-staleness degradations, and client-visible refusals.
	HitRate   float64 `json:"hit_rate"`
	StaleRate float64 `json:"stale_rate"`
	ShedRate  float64 `json:"shed_rate"`
	ErrorRate float64 `json:"error_rate"`
}

// BenchReport is the serialized form of a BenchOverload run.
type BenchReport struct {
	Scenario          string       `json:"scenario"`
	Seed              int64        `json:"seed"`
	CapacityClients   int          `json:"capacity_clients"`
	RequestsPerClient int          `json:"requests_per_client"`
	StaleBudget       string       `json:"stale_budget"`
	Points            []BenchPoint `json:"points"`
}

// BenchOverload measures throughput, latency percentiles, and outcome rates
// at 1x, 3x, and 5x of estimated capacity on the overload plant, with
// results committing throughout so renders and degradations are part of the
// measured mix. Latency and throughput are wall-clock measurements — unlike
// RunOverload's report they are not expected to reproduce byte-for-byte.
func BenchOverload(cfg OverloadConfig) (*BenchReport, error) {
	cfg = cfg.withDefaults(0)
	d, err := overloadDeployment(cfg)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(capacity(d))
	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return nil, err
	}

	events := d.MasterSite.Events
	regions := []routing.Region{routing.RegionJapan, routing.RegionUS, routing.RegionEurope}
	pages := floodPages(events)
	rep := &BenchReport{
		Scenario:          "overload",
		Seed:              cfg.Seed,
		CapacityClients:   cfg.Clients,
		RequestsPerClient: cfg.RequestsPerClient,
		StaleBudget:       cfg.StaleBudget.String(),
	}

	for _, mult := range []int{1, 3, 5} {
		clients := cfg.Clients * mult

		// Commit churn keeps the hot pages invalidated for the whole
		// measured window; the advisor sweep runs alongside as it would in
		// production.
		stop := make(chan struct{})
		var churn sync.WaitGroup
		churn.Add(1)
		go func(mult int) {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(commitPace):
					ev := events[i%len(events)]
					_, _ = d.MasterSite.RecordPartial(ev,
						ev.Participants[i%len(ev.Participants)], fmt.Sprintf("bench.%d.%d", mult, i))
					d.AdviseLoad()
				}
			}
		}(mult)

		var wg sync.WaitGroup
		var pc phaseCounters
		lats := make([][]time.Duration, clients)
		start := time.Now()
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
				lats[id] = make([]time.Duration, 0, cfg.RequestsPerClient)
				for r := 0; r < cfg.RequestsPerClient; r++ {
					region := regions[(id+r)%len(regions)]
					t0 := time.Now()
					_, outcome, _, err := d.Serve(region, pages[rng.Intn(len(pages))])
					lats[id] = append(lats[id], time.Since(t0))
					pc.record(outcome, err)
					time.Sleep(clientThink)
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		churn.Wait()

		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		st := pc.snapshot()
		served := st.Requests - st.Shed - st.Errors
		n := float64(st.Requests)
		rep.Points = append(rep.Points, BenchPoint{
			Multiplier:    mult,
			Clients:       clients,
			Requests:      st.Requests,
			DurationSec:   elapsed.Seconds(),
			ThroughputRPS: float64(served) / elapsed.Seconds(),
			P50Millis:     percentile(all, 0.50).Seconds() * 1e3,
			P99Millis:     percentile(all, 0.99).Seconds() * 1e3,
			HitRate:       float64(st.Hits) / n,
			StaleRate:     float64(st.Stale) / n,
			ShedRate:      float64(st.Shed) / n,
			ErrorRate:     float64(st.Errors) / n,
		})

		// Drain between points so each multiplier starts from a recovered
		// plant: propagation catches up and withdrawn addresses return.
		d.WaitFresh(cfg.Timeout)
		d.AdviseLoad()
	}
	return rep, nil
}

// WriteJSON serializes the report, indented, to w.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
