package chaos

import (
	"bytes"
	"testing"
)

// TestRunRecoveryInvariants drives the recovery scenario once and checks the
// protocol's contract: the readmitted node serves the full page set without
// a single miss or a page older than its pre-failure floor, readmission
// walks the hysteresis and slow-start ramp (more than one sweep), the flap
// storm earns exponentially growing quarantines, each flap trips a flight-
// recorder dump, and the closing audit finds the plant coherent.
func TestRunRecoveryInvariants(t *testing.T) {
	res, err := RunRecovery(RecoveryConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("res.OK = false: %+v", res)
	}
	if res.PostRejoinMisses != 0 {
		t.Errorf("post-rejoin misses = %d, want 0 (warmup must prevent the miss storm)", res.PostRejoinMisses)
	}
	if res.FloorViolations != 0 {
		t.Errorf("floor violations = %d, want 0 (LSN-floor invariant)", res.FloorViolations)
	}
	if res.RejoinSweeps < 2 {
		t.Errorf("rejoin sweeps = %d, want >= 2 (readmit hysteresis + slow-start ramp)", res.RejoinSweeps)
	}
	if len(res.Cycles) != 3 {
		t.Fatalf("flap cycles = %d, want 3", len(res.Cycles))
	}
	prevQ, prevS := 0, res.RejoinSweeps
	for i, cyc := range res.Cycles {
		if cyc.Quarantine <= prevQ {
			t.Errorf("cycle %d quarantine = %d, want > %d (exponential damping)", i, cyc.Quarantine, prevQ)
		}
		if cyc.Sweeps <= prevS {
			t.Errorf("cycle %d sweeps = %d, want > %d", i, cyc.Sweeps, prevS)
		}
		prevQ, prevS = cyc.Quarantine, cyc.Sweeps
	}
	if res.FlapDumps != 3 {
		t.Errorf("flap dumps = %d, want 3 (one capture per flap)", res.FlapDumps)
	}
	if res.Audit.Incoherent != 0 {
		t.Errorf("audit incoherent = %d, want 0", res.Audit.Incoherent)
	}
}

// TestRunRecoveryIsByteReproducible runs the scenario twice with the same
// seed and requires the canonical report bytes — invariant fields plus every
// flap dump's time-free projection — to match exactly.
func TestRunRecoveryIsByteReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("two full recovery runs")
	}
	a, err := RunRecovery(RecoveryConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRecovery(RecoveryConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK || !b.OK {
		t.Fatalf("ok = %t/%t, want both true", a.OK, b.OK)
	}
	if !bytes.Equal(a.Canonical, b.Canonical) {
		i := 0
		for i < len(a.Canonical) && i < len(b.Canonical) && a.Canonical[i] == b.Canonical[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hi1, hi2 := i+120, i+120
		if hi1 > len(a.Canonical) {
			hi1 = len(a.Canonical)
		}
		if hi2 > len(b.Canonical) {
			hi2 = len(b.Canonical)
		}
		t.Fatalf("canonical bytes diverge at offset %d:\n run1: …%s…\n run2: …%s…",
			i, a.Canonical[lo:hi1], b.Canonical[lo:hi2])
	}
}

// TestBenchRecoveryWarmBeatsCold runs the readmission benchmark and checks
// the headline: a cold rejoin misses the entire page set, a warm rejoin
// misses nothing.
func TestBenchRecoveryWarmBeatsCold(t *testing.T) {
	rep, err := BenchRecovery(RecoveryBenchConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Modes) != 2 {
		t.Fatalf("modes = %d, want 2", len(rep.Modes))
	}
	warm, cold := rep.Modes[0], rep.Modes[1]
	if warm.Mode != "warm" || cold.Mode != "cold" {
		t.Fatalf("mode order = %s/%s, want warm/cold", warm.Mode, cold.Mode)
	}
	if warm.PostRejoinMisses != 0 {
		t.Errorf("warm misses = %d, want 0", warm.PostRejoinMisses)
	}
	if cold.PostRejoinMisses != rep.Pages {
		t.Errorf("cold misses = %d, want %d (every page a render)", cold.PostRejoinMisses, rep.Pages)
	}
	if cold.PostRejoinMisses <= warm.PostRejoinMisses {
		t.Errorf("cold misses (%d) must exceed warm misses (%d)", cold.PostRejoinMisses, warm.PostRejoinMisses)
	}
	if warm.PagesFromPeer == 0 {
		t.Error("warm mode restored no pages from peers")
	}
	if rep.MissReductionPct != 100 {
		t.Errorf("miss reduction = %v%%, want 100%%", rep.MissReductionPct)
	}
}
