package chaos

import (
	"bytes"
	"testing"

	"dupserve/internal/fault"
)

// TestTournamentHoldsInvariantsAndReproduces runs the tournament twice with
// the same seed: both runs must hold every invariant (no lost transactions,
// no stale pages, no residual SLO violations) and print byte-identical
// reports.
func TestTournamentHoldsInvariantsAndReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament")
	}
	run := func() (*Result, string) {
		var buf bytes.Buffer
		res, err := Run(Config{Seed: 1, Out: &buf})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	res1, out1 := run()
	if !res1.OK {
		t.Fatalf("tournament failed:\n%s", out1)
	}
	if res1.LostTransactions != 0 || res1.StalePages != 0 || res1.ResidualViolations != 0 {
		t.Fatalf("invariants: lost=%d stale=%d residual=%d",
			res1.LostTransactions, res1.StalePages, res1.ResidualViolations)
	}
	if len(res1.Rounds) != 5 {
		t.Fatalf("rounds = %d", len(res1.Rounds))
	}

	// The tournament must actually inject faults — a silently disarmed
	// injector would pass the invariants vacuously. Crash injection is
	// probabilistic (rate 0.4 over few batch identities), so it is not
	// asserted here.
	for _, k := range []fault.Kind{fault.KindReplication, fault.KindPush,
		fault.KindRender, fault.KindNode} {
		if res1.Injected[k] == 0 {
			t.Fatalf("no %s faults injected", k)
		}
	}

	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("same-seed runs diverged:\n--- run1\n%s--- run2\n%s", out1, out2)
	}
}

// TestDistinctSeedsStillConverge: the invariants hold regardless of which
// identities the seed faults.
func TestDistinctSeedsStillConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament")
	}
	res, err := Run(Config{Seed: 7, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("seed 7 tournament failed: %+v", res)
	}
}
