package chaos

import (
	"bytes"
	"testing"

	"dupserve/internal/fault"
)

// TestTournamentHoldsInvariantsAndReproduces runs the tournament twice with
// the same seed: both runs must hold every invariant (no lost transactions,
// no stale pages, no residual SLO violations) and print byte-identical
// reports.
func TestTournamentHoldsInvariantsAndReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament")
	}
	run := func() (*Result, string) {
		var buf bytes.Buffer
		res, err := Run(Config{Seed: 1, Out: &buf})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	res1, out1 := run()
	if !res1.OK {
		t.Fatalf("tournament failed:\n%s", out1)
	}
	if res1.LostTransactions != 0 || res1.StalePages != 0 || res1.ResidualViolations != 0 {
		t.Fatalf("invariants: lost=%d stale=%d residual=%d",
			res1.LostTransactions, res1.StalePages, res1.ResidualViolations)
	}
	if len(res1.Rounds) != 5 {
		t.Fatalf("rounds = %d", len(res1.Rounds))
	}

	// The closing consistency audit: after five fault rounds every probe
	// of every page must match its shadow render, and the read-tracking
	// completeness diff must be clean on all three complexes.
	if !res1.Audit.OK || res1.Audit.Incoherent != 0 ||
		res1.Audit.MissingEdges != 0 || res1.Audit.SuperfluousEdges != 0 {
		t.Fatalf("audit: %+v", res1.Audit)
	}
	if res1.Audit.Complexes != 3 || res1.Audit.Probes != res1.Audit.Pages ||
		res1.Audit.Coherent != res1.Audit.Probes {
		t.Fatalf("audit coverage: %+v", res1.Audit)
	}
	if res1.Audit.LiveSamples == 0 {
		t.Fatal("audit saw no live traffic — the taps are disconnected")
	}

	// The tournament must actually inject faults — a silently disarmed
	// injector would pass the invariants vacuously. Crash injection is
	// probabilistic (rate 0.4 over few batch identities), so it is not
	// asserted here.
	for _, k := range []fault.Kind{fault.KindReplication, fault.KindPush,
		fault.KindRender, fault.KindNode} {
		if res1.Injected[k] == 0 {
			t.Fatalf("no %s faults injected", k)
		}
	}

	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("same-seed runs diverged:\n--- run1\n%s--- run2\n%s", out1, out2)
	}
}

// TestStandaloneAuditRun: the dedicated audit scenario (simulate -audit)
// proves the unmodified plant coherent — zero incoherent pages, zero
// missing or superfluous ODG edges — and reproduces byte-for-byte.
func TestStandaloneAuditRun(t *testing.T) {
	if testing.Short() {
		t.Skip("audit scenario")
	}
	run := func() (*AuditResult, string) {
		var buf bytes.Buffer
		res, err := RunAudit(AuditConfig{Seed: 1, Out: &buf})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	res1, out1 := run()
	if !res1.OK {
		t.Fatalf("audit run failed:\n%s", out1)
	}
	s := res1.Summary
	if s.Complexes != 3 || s.Pages == 0 || s.Probes != s.Pages || s.Coherent != s.Probes {
		t.Fatalf("audit coverage: %+v", s)
	}
	if s.Incoherent != 0 || len(s.IncoherentPages) != 0 ||
		s.MissingEdges != 0 || s.SuperfluousEdges != 0 {
		t.Fatalf("audit findings on an unmodified plant: %+v", s)
	}
	if s.LiveSamples == 0 {
		t.Fatal("audit saw no live traffic — the taps are disconnected")
	}
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("same-seed audit runs diverged:\n--- run1\n%s--- run2\n%s", out1, out2)
	}
}

// TestDistinctSeedsStillConverge: the invariants hold regardless of which
// identities the seed faults.
func TestDistinctSeedsStillConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament")
	}
	res, err := Run(Config{Seed: 7, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("seed 7 tournament failed: %+v", res)
	}
}
