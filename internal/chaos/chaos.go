// Package chaos runs fault-injection tournaments against a live deployment
// and checks the paper's two availability invariants under every fault the
// pipeline can suffer:
//
//  1. No committed transaction is ever dropped. Whatever crashes — a
//     trigger monitor mid-batch, a replication link, a serving node — once
//     the fault clears, every complex's replica and monitor reach the
//     master's LSN.
//  2. Degradation is a miss, never a stale hit. A cache may lose a page
//     (push downgraded to invalidation, node death, render fault) but may
//     never hold a page older than the last committed update to it.
//
// A tournament is a sequence of rounds, each arming one fault kind,
// committing transactions and serving traffic through the fault window,
// then clearing the fault and asserting both invariants plus freshness-SLO
// convergence (no violations once the window is closed).
//
// Determinism: fault decisions come from a seeded fault.Injector, so the
// faults themselves reproduce exactly. Timing-dependent quantities (how
// many retries a push took, which batch a crash landed on) vary across
// runs; the tournament therefore reports only invariant quantities —
// committed counts, convergence, losses, staleness, residual violations —
// and its output is byte-for-byte identical across invocations with the
// same seed as long as the invariants hold.
package chaos

import (
	"context"
	"fmt"
	"io"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/deploy"
	"dupserve/internal/fault"
	"dupserve/internal/obs"
	"dupserve/internal/routing"
	"dupserve/internal/site"
)

// Config describes a tournament.
type Config struct {
	// Seed drives every injected fault decision.
	Seed int64
	// Rounds is the number of fault rounds (default 5 — one per kind).
	Rounds int
	// TxPerRound is how many transactions commit inside each fault window
	// (default 8).
	TxPerRound int
	// SLO is the freshness objective asserted after each window closes
	// (default 60s, the paper's guarantee).
	SLO time.Duration
	// Timeout bounds each convergence wait (default 30s).
	Timeout time.Duration
	// Out receives the tournament report (default: discard).
	Out io.Writer
}

// RoundReport is the invariant outcome of one fault round.
type RoundReport struct {
	Round     int
	Kind      fault.Kind
	Committed int
	// Converged reports whether every complex reached full freshness after
	// the fault cleared.
	Converged bool
	// Lost is the total LSN shortfall across complexes after convergence —
	// committed transactions that never propagated. The invariant is 0.
	Lost int64
	// Stale counts cached pages older than the last committed update to
	// them, across every cache of every complex. The invariant is 0.
	Stale int
	// ResidualViolations counts freshness-SLO violations recorded after
	// the fault window closed. The invariant is 0.
	ResidualViolations int64
}

// Result is the tournament outcome.
type Result struct {
	Seed               int64
	Rounds             []RoundReport
	LostTransactions   int64
	StalePages         int
	ResidualViolations int64
	MonitorRestarts    int64
	// Injected counts faults fired per kind. Timing-dependent (batching
	// decides which identities are evaluated), so it appears in the Result
	// for assertions but never in the deterministic report.
	Injected [fault.NumKinds]int64
	// Audit is the end-of-tournament consistency sweep: with all faults
	// cleared and the plant converged, every page of every complex must be
	// provably coherent against a shadow render.
	Audit AuditSummary
	// Dumps are the flight-recorder black boxes captured across every
	// complex during the tournament. How many there are — and which batch a
	// crash landed on — is timing-dependent, so dumps appear in the Result
	// for inspection but never in the deterministic report (see RunFlight
	// for the sequenced, byte-reproducible variant).
	Dumps []obs.Dump
	// OK is true when every round converged with zero losses, zero stale
	// pages, and zero residual SLO violations, and the audit sweep found
	// the plant coherent.
	OK bool
}

// spec is the tournament's compact site: enough pages and events for real
// fan-out, small enough that rounds take milliseconds.
func spec() site.Spec {
	return site.Spec{
		Sports: 2, EventsPerSport: 2, Athletes: 20, Countries: 5,
		NewsStories: 3, Days: 2, EventsPerAthlete: 1, Languages: []string{"en"},
	}
}

// topology is the tournament plant: master -> tokyo and schaumburg, with
// columbus chained from schaumburg so partitions and crashes are exercised
// on both direct and chained links.
func topology() []deploy.ComplexSpec {
	dist := func(primary routing.Region) map[routing.Region]int {
		m := map[routing.Region]int{
			routing.RegionJapan: 50, routing.RegionAsia: 50, routing.RegionUS: 50,
			routing.RegionEurope: 50, routing.RegionOther: 50,
		}
		m[primary] = 10
		return m
	}
	return []deploy.ComplexSpec{
		{Name: "tokyo", Frames: 1, NodesPerFrame: 2, ReplicationDelay: time.Millisecond,
			Distance: dist(routing.RegionJapan)},
		{Name: "schaumburg", Frames: 1, NodesPerFrame: 2, ReplicationDelay: time.Millisecond,
			Distance: dist(routing.RegionUS)},
		{Name: "columbus", Frames: 1, NodesPerFrame: 2, ReplicationDelay: time.Millisecond,
			ChainFrom: "schaumburg", Distance: dist(routing.RegionEurope)},
	}
}

// Run executes one tournament.
func Run(cfg Config) (*Result, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 5
	}
	if cfg.TxPerRound <= 0 {
		cfg.TxPerRound = 8
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 60 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}

	inj := fault.New(fault.Config{Seed: cfg.Seed})
	d, err := deploy.New(deploy.Config{
		Spec:        spec(),
		Complexes:   topology(),
		BatchWindow: 2 * time.Millisecond,
	},
		deploy.WithFaults(inj),
		// Tight, sleepless retries: the burst decision is deterministic per
		// push identity, so backoff duration only costs wall-clock here.
		deploy.WithRetryPolicy(cache.RetryPolicy{
			MaxAttempts: 3,
			Backoff:     50 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Sleep:       func(time.Duration) {},
		}),
		deploy.WithTracing(cfg.SLO),
		deploy.WithAudit(),
		deploy.WithObservability(),
	)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return nil, err
	}

	res := &Result{Seed: cfg.Seed, OK: true}
	events := d.MasterSite.Events
	lastLSN := make(map[string]int64) // event key -> LSN of its last update
	regions := []routing.Region{routing.RegionJapan, routing.RegionUS, routing.RegionEurope}

	fmt.Fprintf(cfg.Out, "chaos tournament: seed=%d rounds=%d tx/round=%d slo=%s\n",
		cfg.Seed, cfg.Rounds, cfg.TxPerRound, cfg.SLO)

	for r := 0; r < cfg.Rounds; r++ {
		kind := fault.Kinds()[r%int(fault.NumKinds)]
		clear := arm(d, inj, kind, r)

		committed := 0
		for i := 0; i < cfg.TxPerRound; i++ {
			ev := events[(r+i)%len(events)]
			tx, err := d.MasterSite.RecordPartial(ev,
				ev.Participants[i%len(ev.Participants)], fmt.Sprintf("%d.%d", r, i))
			if err != nil {
				return nil, fmt.Errorf("chaos: round %d commit %d: %w", r, i, err)
			}
			lastLSN[ev.Key] = tx.LSN
			committed++
			// Traffic through the fault window: outcomes vary with timing
			// (that is the point of degradation), so they are exercised but
			// not reported.
			for _, region := range regions {
				_, _, _, _ = d.Serve(region, eventPage(ev))
			}
		}

		// Let the pipeline propagate while the fault is live — commits are
		// asynchronous, so clearing immediately would close the window before
		// a single render or push had run under it. A partition blocks
		// propagation by design; it is the one fault cleared before waiting.
		if kind != fault.KindReplication {
			d.WaitFresh(cfg.Timeout)
		}
		clear()
		converged := d.WaitFresh(cfg.Timeout)
		lost := lostTransactions(d)
		stale := stalePages(d, events, lastLSN)

		// Residual-SLO probe: with the pipeline healthy again, a fresh
		// transaction must propagate without a single new violation.
		base := violations(d)
		probeEv := events[r%len(events)]
		tx, err := d.MasterSite.RecordPartial(probeEv,
			probeEv.Participants[0], fmt.Sprintf("probe.%d", r))
		if err != nil {
			return nil, fmt.Errorf("chaos: round %d probe: %w", r, err)
		}
		lastLSN[probeEv.Key] = tx.LSN
		if !d.WaitFresh(cfg.Timeout) {
			converged = false
		}
		residual := violations(d) - base

		rep := RoundReport{
			Round: r, Kind: kind, Committed: committed,
			Converged: converged, Lost: lost, Stale: stale,
			ResidualViolations: residual,
		}
		res.Rounds = append(res.Rounds, rep)
		res.LostTransactions += lost
		res.StalePages += stale
		res.ResidualViolations += residual
		if !converged || lost != 0 || stale != 0 || residual != 0 {
			res.OK = false
		}
		fmt.Fprintf(cfg.Out,
			"round %d fault=%-13s committed=%d converged=%t lost=%d stale=%d residual_slo_violations=%d\n",
			rep.Round, rep.Kind, rep.Committed, rep.Converged, rep.Lost, rep.Stale,
			rep.ResidualViolations)
	}

	res.MonitorRestarts = d.MonitorRestarts()
	for _, k := range fault.Kinds() {
		res.Injected[k] = inj.Injected(k)
	}
	for _, cx := range d.Complexes() {
		if cx.Obs != nil {
			res.Dumps = append(res.Dumps, cx.Obs.Recorder.Dumps()...)
		}
	}

	// The consistency audit closes the tournament: with every fault cleared
	// and the plant converged, each complex's auditor shadow-renders the
	// full page set and verifies that what the nodes serve is exactly what
	// the replicas say — and that the dependence graph declared every read.
	res.Audit, err = auditSweep(d, cfg.Out)
	if err != nil {
		return nil, err
	}
	if !res.Audit.OK {
		res.OK = false
	}

	fmt.Fprintf(cfg.Out,
		"chaos: seed=%d rounds=%d lost_transactions=%d stale_pages=%d residual_slo_violations=%d ok=%t\n",
		res.Seed, len(res.Rounds), res.LostTransactions, res.StalePages,
		res.ResidualViolations, res.OK)
	return res, nil
}

// arm turns one fault kind on and returns the closure that clears it.
func arm(d *deploy.Deployment, inj *fault.Injector, kind fault.Kind, round int) func() {
	switch kind {
	case fault.KindReplication:
		// Partition tokyo's inbound link for the round; commits queue on
		// the master's feed and ship after the heal.
		cx, _ := d.Complex("tokyo")
		inj.SetPartition(cx.Link, true)
		return func() { inj.SetPartition(cx.Link, false) }
	case fault.KindMonitorCrash:
		inj.SetRate(fault.KindMonitorCrash, 0.4)
		return func() { inj.ClearRates() }
	case fault.KindPush:
		inj.SetRate(fault.KindPush, 0.35)
		return func() { inj.ClearRates() }
	case fault.KindRender:
		inj.SetRate(fault.KindRender, 0.35)
		return func() { inj.ClearRates() }
	case fault.KindNode:
		cx, _ := d.Complex("tokyo")
		nodes := cx.Cluster.Nodes()
		n := nodes[round%len(nodes)]
		n.Fail()
		cx.Cluster.Advise()
		inj.CountInjected(fault.KindNode, 1)
		return func() {
			n.Recover()
			cx.Cluster.Advise()
		}
	default:
		return func() {}
	}
}

// eventPage is the canonical page for an event in the tournament's
// single-language site.
func eventPage(ev *site.Event) string {
	return "/en/sports/" + ev.Sport + "/" + ev.Key
}

// lostTransactions sums, across complexes, how far replica and monitor LSNs
// fall short of the master — committed transactions that never arrived or
// never propagated.
func lostTransactions(d *deploy.Deployment) int64 {
	target := d.Master.LSN()
	var lost int64
	for _, cx := range d.Complexes() {
		if short := target - cx.Replica.LSN(); short > 0 {
			lost += short
		}
		if mon := cx.Monitor(); mon != nil {
			if short := target - mon.LastLSN(); short > 0 {
				lost += short
			}
		}
	}
	return lost
}

// stalePages scans every cache of every complex for event pages older than
// the event's last committed update. Absence is fine (a downgraded push is
// a miss); an old version is the invariant violation.
func stalePages(d *deploy.Deployment, events []*site.Event, lastLSN map[string]int64) int {
	stale := 0
	for _, cx := range d.Complexes() {
		for _, c := range cx.Cluster.Caches.Members() {
			for _, ev := range events {
				want, ok := lastLSN[ev.Key]
				if !ok {
					continue
				}
				obj, cached := c.Peek(cache.Key(eventPage(ev)))
				if cached && obj.Version < want {
					stale++
				}
			}
		}
	}
	return stale
}

// violations sums freshness-SLO violations across every complex's tracer.
func violations(d *deploy.Deployment) int64 {
	var v int64
	for _, cx := range d.Complexes() {
		if cx.Tracer != nil {
			v += cx.Tracer.Violations()
		}
	}
	return v
}
