package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/deploy"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
	"dupserve/internal/obs"
	"dupserve/internal/recovery"
	"dupserve/internal/routing"
)

// RecoveryConfig describes a node-recovery scenario run.
type RecoveryConfig struct {
	// Seed labels the run and picks the victim node.
	Seed int64
	// Timeout bounds each convergence wait (default 30s).
	Timeout time.Duration
	// Out receives the report (default: discard).
	Out io.Writer
}

// FlapCycle is one fail/recover cycle of the flap storm.
type FlapCycle struct {
	// Quarantine is the readmission quarantine the flap earned (good
	// observations ignored before readmission may begin).
	Quarantine int
	// Sweeps is how many advisor sweeps the node needed to regain full
	// weight — quarantine, then the readmit threshold, then the slow-start
	// ramp.
	Sweeps int
}

// RecoveryResult is the scenario outcome.
type RecoveryResult struct {
	Seed   int64
	Victim string
	Pages  int
	// CommitsWhileDown is how many transactions committed while the victim
	// was dead (its cache missed their pushes; the warmup must cover them).
	CommitsWhileDown int
	// RejoinSweeps is how many advisor sweeps the first (non-flap) rejoin
	// took to reach full weight.
	RejoinSweeps int
	// Cycles are the flap-storm rejoins; quarantine and sweeps must grow
	// monotonically (exponential flap damping).
	Cycles []FlapCycle
	// PostRejoinMisses counts cache misses serving the full page set
	// directly from the readmitted victim. The warmup invariant is 0.
	PostRejoinMisses int
	// FloorViolations counts pages the readmitted victim served older than
	// its own pre-failure copy. The LSN-floor invariant is 0.
	FloorViolations int
	// FlapDumps counts flight-recorder captures triggered by flap damping
	// (one per flap).
	FlapDumps int
	// Dumps are every black box the recorder captured.
	Dumps []obs.Dump
	// Audit is the end-of-scenario consistency sweep.
	Audit AuditSummary
	// Canonical is the deterministic projection of the run: the report
	// lines plus every dump's canonical bytes. Two runs with the same seed
	// produce identical Canonical bytes.
	Canonical []byte
	// OK: zero misses, zero floor violations, monotonically growing
	// quarantines, one dump per flap, and a coherent audit.
	OK bool
}

// recoveryPolicy is the scenario's probation policy: single-observation
// eviction (the advisor saw the node die), two-sweep readmission hysteresis,
// a quarter-weight slow start doubling per sweep, and flap damping from two
// quarantine sweeps doubling up to eight.
func recoveryPolicy() recovery.Policy {
	return recovery.Policy{
		Warm:             true,
		FailThreshold:    1,
		ReadmitThreshold: 2,
		RampStart:        0.25,
		RampFactor:       2,
		FlapWindow:       4,
		QuarantineBase:   2,
		QuarantineMax:    8,
	}
}

// recoveryComplexes is the scenario plant: one complex, three nodes, so a
// dead node always has two healthy peers to restore from.
func recoveryComplexes() []deploy.ComplexSpec {
	return []deploy.ComplexSpec{
		{Name: "tokyo", Frames: 1, NodesPerFrame: 3, ReplicationDelay: time.Millisecond,
			Distance: map[routing.Region]int{
				routing.RegionJapan: 10, routing.RegionAsia: 10, routing.RegionUS: 10,
				routing.RegionEurope: 10, routing.RegionOther: 10,
			}},
	}
}

// RunRecovery drives one node of a single-complex deployment through the
// full recovery protocol: a kill (instant eviction, cache detached), a
// window of commits the dead node misses, a warmup-gated rejoin (peer-copy
// restore to the pinned LSN floor, two-sweep readmission, slow-start ramp to
// full weight), a direct serve of the whole page set off the readmitted node
// asserting zero misses and the LSN-floor invariant, and a three-cycle flap
// storm asserting exponentially growing quarantines with one flight-recorder
// dump per flap.
//
// Every step is sequenced — commits one at a time behind convergence waits,
// advisor sweeps counted, the journal armed only after the plant has primed
// — so the canonical projection of the report and of every dump is
// byte-for-byte identical across runs with the same seed.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}

	d, err := deploy.New(deploy.Config{
		Spec:        spec(),
		Complexes:   recoveryComplexes(),
		BatchWindow: 2 * time.Millisecond,
	},
		deploy.WithRecovery(recoveryPolicy()),
		deploy.WithAudit(),
		deploy.WithObservability(),
	)
	if err != nil {
		return nil, err
	}
	cx := d.Complexes()[0]
	// Startup timing is racy; keep the journal disarmed until the plant has
	// converged so dumps only ever contain sequenced events.
	cx.Obs.SetArmed(false)

	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return nil, err
	}
	cx.Obs.SetArmed(true)

	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := cx.Cluster.Nodes()
	victim := nodes[rng.Intn(len(nodes))]
	vcache, ok := cx.Cluster.Caches.Get(victim.Name())
	if !ok {
		return nil, fmt.Errorf("recovery: no cache for node %s", victim.Name())
	}
	pages := cx.Site.Pages()
	res := &RecoveryResult{Seed: cfg.Seed, Victim: victim.Name(), Pages: len(pages)}
	fmt.Fprintf(cfg.Out, "recovery scenario: seed=%d victim=%s pages=%d\n",
		cfg.Seed, victim.Name(), len(pages))

	// The LSN floor: the victim's cached versions the instant before it
	// dies. After readmission it must never serve anything older.
	pre := make(map[string]int64, len(pages))
	for _, p := range pages {
		if obj, ok := vcache.Peek(cache.Key(p)); ok {
			pre[p] = obj.Version
		}
	}

	// Phase 1 — kill: the cache clears and detaches, the advisor sweep
	// evicts the node (node/down in the journal).
	victim.Fail()
	cx.Cluster.Advise()

	// Phase 2 — the window the dead node misses: sequenced commits, each
	// fully propagated to the survivors before the next, with traffic
	// confirming the complex serves throughout.
	events := d.MasterSite.Events
	for i := 0; i < 4; i++ {
		ev := events[i%len(events)]
		if _, err := d.MasterSite.RecordPartial(ev,
			ev.Participants[i%len(ev.Participants)], fmt.Sprintf("recovery.%d", i)); err != nil {
			return nil, fmt.Errorf("recovery: commit %d: %w", i, err)
		}
		if !d.WaitFresh(cfg.Timeout) {
			return nil, fmt.Errorf("recovery: commit %d did not converge", i)
		}
		res.CommitsWhileDown++
		for _, ev2 := range events[:2] {
			if _, _, _, err := d.Serve(routing.RegionJapan, eventPage(ev2)); err != nil {
				return nil, fmt.Errorf("recovery: serve while down: %w", err)
			}
		}
	}

	// Phase 3 — warmup-gated rejoin: Recover enters warming, the warmer
	// restores the page set from the two healthy peers (node/warmup), and
	// counted advisor sweeps walk the readmission hysteresis and the
	// slow-start ramp back to full weight (node/readmitted).
	victim.Recover()
	if !victim.WaitReady(cfg.Timeout) {
		return nil, fmt.Errorf("recovery: victim never became ready")
	}
	res.RejoinSweeps, err = sweepsToUp(cx, victim.Name())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Out, "rejoin: commits_missed=%d sweeps_to_full_weight=%d\n",
		res.CommitsWhileDown, res.RejoinSweeps)

	// Phase 4 — the warmup invariants, asserted off the victim directly:
	// every page a hit (no post-rejoin miss storm) and no page older than
	// the pre-failure floor.
	for _, p := range pages {
		obj, outcome, err := victim.Serve(p)
		if err != nil {
			return nil, fmt.Errorf("recovery: post-rejoin serve %s: %w", p, err)
		}
		if outcome != httpserver.OutcomeHit {
			res.PostRejoinMisses++
		}
		if obj != nil && obj.Version < pre[p] {
			res.FloorViolations++
		}
	}
	fmt.Fprintf(cfg.Out, "post_rejoin: misses=%d floor_violations=%d\n",
		res.PostRejoinMisses, res.FloorViolations)

	// Phase 5 — flap storm: three fail/recover cycles. Each re-eviction
	// inside the flap window counts as a flap, doubles the quarantine
	// (capped), journals node/flap_quarantine, and trips the flight
	// recorder; readmission takes exponentially more sweeps each cycle.
	for c := 0; c < 3; c++ {
		victim.Fail()
		cx.Cluster.Advise()
		cycle := FlapCycle{Quarantine: victimQuarantine(cx, victim.Name())}
		victim.Recover()
		if !victim.WaitReady(cfg.Timeout) {
			return nil, fmt.Errorf("recovery: flap cycle %d never became ready", c)
		}
		cycle.Sweeps, err = sweepsToUp(cx, victim.Name())
		if err != nil {
			return nil, fmt.Errorf("recovery: flap cycle %d: %w", c, err)
		}
		res.Cycles = append(res.Cycles, cycle)
		fmt.Fprintf(cfg.Out, "flap cycle=%d quarantine=%d sweeps_to_full_weight=%d\n",
			c, cycle.Quarantine, cycle.Sweeps)
	}

	res.Dumps = cx.Obs.Recorder.Dumps()
	for _, dump := range res.Dumps {
		if dump.Kind == obs.TriggerFlapDamping {
			res.FlapDumps++
		}
	}

	// The consistency audit closes the scenario: with the victim back at
	// full weight, every page of the complex must be provably coherent.
	res.Audit, err = auditSweep(d, cfg.Out)
	if err != nil {
		return nil, err
	}

	res.OK = res.PostRejoinMisses == 0 && res.FloorViolations == 0 &&
		res.FlapDumps == len(res.Cycles) && res.Audit.OK
	// Exponential flap damping: each cycle's quarantine and sweep count must
	// strictly exceed the previous cycle's (three cycles stay below the cap,
	// so no plateau is expected).
	prevQ, prevS := 0, res.RejoinSweeps
	for _, cyc := range res.Cycles {
		if cyc.Quarantine <= prevQ || cyc.Sweeps <= prevS {
			res.OK = false
		}
		prevQ, prevS = cyc.Quarantine, cyc.Sweeps
	}

	res.Canonical = canonicalRecovery(res)
	fmt.Fprintf(cfg.Out,
		"recovery: seed=%d rejoin_sweeps=%d flaps=%d flap_dumps=%d misses=%d floor_violations=%d ok=%t\n",
		res.Seed, res.RejoinSweeps, len(res.Cycles), res.FlapDumps,
		res.PostRejoinMisses, res.FloorViolations, res.OK)
	return res, nil
}

// canonicalRecovery renders the deterministic projection of the run: the
// invariant report fields, then every dump's canonical (time-free) bytes.
func canonicalRecovery(res *RecoveryResult) []byte {
	var out []byte
	out = fmt.Appendf(out, "recovery seed=%d victim=%s pages=%d commits_while_down=%d\n",
		res.Seed, res.Victim, res.Pages, res.CommitsWhileDown)
	out = fmt.Appendf(out, "rejoin sweeps=%d\n", res.RejoinSweeps)
	for i, cyc := range res.Cycles {
		out = fmt.Appendf(out, "flap cycle=%d quarantine=%d sweeps=%d\n",
			i, cyc.Quarantine, cyc.Sweeps)
	}
	out = fmt.Appendf(out, "post_rejoin misses=%d floor_violations=%d flap_dumps=%d\n",
		res.PostRejoinMisses, res.FloorViolations, res.FlapDumps)
	out = fmt.Appendf(out, "audit pages=%d probes=%d coherent=%d incoherent=%d ok=%t\n",
		res.Audit.Pages, res.Audit.Probes, res.Audit.Coherent, res.Audit.Incoherent, res.Audit.OK)
	for _, dump := range res.Dumps {
		out = append(out, dump.Canonical()...)
		out = append(out, '\n')
	}
	return out
}

// sweepsToUp runs advisor sweeps until the named member regains full weight
// (StateUp), returning how many it took.
func sweepsToUp(cx *deploy.Complex, name string) (int, error) {
	const maxSweeps = 64
	for i := 1; i <= maxSweeps; i++ {
		cx.Cluster.Advise()
		if st, ok := cx.Cluster.Dispatcher.MemberState(name); ok && st == dispatch.StateUp {
			return i, nil
		}
	}
	return 0, fmt.Errorf("recovery: %s not at full weight after %d sweeps", name, maxSweeps)
}

// victimQuarantine reads the named member's pending quarantine.
func victimQuarantine(cx *deploy.Complex, name string) int {
	for _, n := range cx.Cluster.Dispatcher.Stats().Nodes {
		if n.Name == name {
			return n.Quarantine
		}
	}
	return 0
}

// RecoveryBenchConfig describes a readmission benchmark run.
type RecoveryBenchConfig struct {
	// Seed labels the run.
	Seed int64
	// Commits is how many transactions land while the victim is down
	// (default 8).
	Commits int
	// Timeout bounds each convergence wait (default 30s).
	Timeout time.Duration
}

// RecoveryBenchMode measures one readmission strategy.
type RecoveryBenchMode struct {
	// Mode is "warm" (cache rebuilt to the pinned LSN floor before
	// readmission) or "cold" (the node rejoins with an empty cache).
	Mode string `json:"mode"`
	// MTTRMillis is the wall clock from Recover to full dispatcher weight.
	MTTRMillis float64 `json:"mttr_ms"`
	// PagesFromPeer/PagesRendered decompose the warmup work (zero cold).
	PagesFromPeer int64 `json:"pages_from_peer"`
	PagesRendered int64 `json:"pages_rendered"`
	// PostRejoinHits/Misses classify serving the full page set directly
	// from the readmitted node — the miss storm warmup exists to prevent.
	PostRejoinHits   int `json:"post_rejoin_hits"`
	PostRejoinMisses int `json:"post_rejoin_misses"`
}

// RecoveryBenchReport is the serialized form of a BenchRecovery run.
type RecoveryBenchReport struct {
	Scenario         string              `json:"scenario"`
	Seed             int64               `json:"seed"`
	Pages            int                 `json:"pages"`
	CommitsWhileDown int                 `json:"commits_while_down"`
	Modes            []RecoveryBenchMode `json:"modes"`
	// MissReductionPct is how much of the cold-readmission miss storm the
	// warmup eliminated (100 = every post-rejoin request a hit).
	MissReductionPct float64 `json:"miss_reduction_pct"`
}

// BenchRecovery measures warm against cold readmission on identical plants:
// same topology, same failure, same commit window, the only difference
// whether the rejoining node warms its cache to the pinned LSN floor before
// taking traffic. MTTR is a wall-clock measurement — unlike RunRecovery's
// canonical report it is not expected to reproduce byte-for-byte — while the
// hit/miss decomposition is exact: a cold cache misses the entire page set,
// a warm one misses nothing.
func BenchRecovery(cfg RecoveryBenchConfig) (*RecoveryBenchReport, error) {
	if cfg.Commits <= 0 {
		cfg.Commits = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	rep := &RecoveryBenchReport{
		Scenario:         "recovery",
		Seed:             cfg.Seed,
		CommitsWhileDown: cfg.Commits,
	}
	for _, warm := range []bool{true, false} {
		mode, pages, err := benchReadmission(cfg, warm)
		if err != nil {
			return nil, err
		}
		rep.Pages = pages
		rep.Modes = append(rep.Modes, mode)
	}
	warmMisses := float64(rep.Modes[0].PostRejoinMisses)
	coldMisses := float64(rep.Modes[1].PostRejoinMisses)
	if coldMisses > 0 {
		rep.MissReductionPct = (coldMisses - warmMisses) / coldMisses * 100
	}
	return rep, nil
}

// benchReadmission runs one mode: instant hysteresis and no ramp, so the
// measurement isolates the warmup itself rather than the probation machine.
func benchReadmission(cfg RecoveryBenchConfig, warm bool) (RecoveryBenchMode, int, error) {
	name := "cold"
	if warm {
		name = "warm"
	}
	mode := RecoveryBenchMode{Mode: name}
	d, err := deploy.New(deploy.Config{
		Spec:        spec(),
		Complexes:   recoveryComplexes(),
		BatchWindow: 2 * time.Millisecond,
	}, deploy.WithRecovery(recovery.Policy{
		Warm: warm, FailThreshold: 1, ReadmitThreshold: 1, RampStart: 1,
	}))
	if err != nil {
		return mode, 0, err
	}
	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return mode, 0, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return mode, 0, err
	}

	cx := d.Complexes()[0]
	victim := cx.Cluster.Nodes()[0]
	pages := cx.Site.Pages()
	victim.Fail()
	cx.Cluster.Advise()

	events := d.MasterSite.Events
	for i := 0; i < cfg.Commits; i++ {
		ev := events[i%len(events)]
		if _, err := d.MasterSite.RecordPartial(ev,
			ev.Participants[i%len(ev.Participants)], fmt.Sprintf("bench.%s.%d", name, i)); err != nil {
			return mode, 0, fmt.Errorf("bench recovery: commit %d: %w", i, err)
		}
	}
	if !d.WaitFresh(cfg.Timeout) {
		return mode, 0, fmt.Errorf("bench recovery: %s plant did not converge", name)
	}

	start := time.Now()
	victim.Recover()
	if !victim.WaitReady(cfg.Timeout) {
		return mode, 0, fmt.Errorf("bench recovery: %s victim never became ready", name)
	}
	if _, err := sweepsToUp(cx, victim.Name()); err != nil {
		return mode, 0, err
	}
	mode.MTTRMillis = time.Since(start).Seconds() * 1e3

	for _, p := range pages {
		_, outcome, err := victim.Serve(p)
		if err != nil {
			return mode, 0, fmt.Errorf("bench recovery: %s post-rejoin serve %s: %w", name, p, err)
		}
		if outcome == httpserver.OutcomeHit {
			mode.PostRejoinHits++
		} else {
			mode.PostRejoinMisses++
		}
	}
	if cx.Recovery != nil {
		mode.PagesFromPeer = cx.Recovery.PagesFromPeer.Value()
		mode.PagesRendered = cx.Recovery.PagesRendered.Value()
	}
	return mode, len(pages), nil
}

// WriteJSON serializes the report, indented, to w.
func (r *RecoveryBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
