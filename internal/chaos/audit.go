package chaos

import (
	"context"
	"fmt"
	"io"
	"time"

	"dupserve/internal/deploy"
	"dupserve/internal/routing"
)

// AuditSummary aggregates the consistency-audit sweeps run at the end of a
// chaos scenario. The Probe* fields come from quiescent probe sweeps —
// after convergence, every page of every complex is served once through
// its dispatcher and verified against a shadow render — and are fully
// deterministic: every probe must come back coherent. The Live* fields
// classify the samples captured while the scenario's traffic and faults
// were running; their split between coherent and bounded-stale depends on
// timing, so they appear here for assertions but never in the
// deterministic report.
type AuditSummary struct {
	Complexes int
	// Pages and Probes count shadow-rendered pages and quiescent probes
	// across all complexes (Probes == Pages when every page was checked).
	Pages  int
	Probes int
	// Probe sweep classification (invariant: everything coherent).
	Coherent       int
	BoundedStale   int
	ViolatingStale int
	Incoherent     int
	// IncoherentPages names the offending pages, if any.
	IncoherentPages []string
	// Completeness diff across all sweeps (invariant: both zero).
	MissingEdges     int
	SuperfluousEdges int
	// Live sweep classification (timing-dependent).
	LiveSamples    int
	LiveCoherent   int
	LiveBounded    int
	LiveViolating  int
	LiveIncoherent int
	// OK: every probe coherent, zero incoherent pages, zero missing and
	// superfluous edges.
	OK bool
}

// auditSweep runs the end-of-scenario consistency audit against a
// converged deployment built WithAudit. Per complex it first drains the
// samples captured during the scenario (the live sweep), then serves every
// page once through the complex's dispatcher and sweeps again (the probe
// sweep). At quiescence each probe either hits the propagated copy or
// renders fresh at the replica's LSN, so the probe sweep's counts are
// deterministic; one line per complex is printed to out.
func auditSweep(d *deploy.Deployment, out io.Writer) (AuditSummary, error) {
	var sum AuditSummary
	sum.OK = true
	for _, cx := range d.Complexes() {
		if cx.Auditor == nil {
			return sum, fmt.Errorf("chaos: complex %s has no auditor (deployment not built WithAudit)", cx.Name)
		}
		live, err := cx.Auditor.Sweep()
		if err != nil {
			return sum, fmt.Errorf("chaos: live audit sweep %s: %w", cx.Name, err)
		}
		sum.LiveSamples += live.Samples
		sum.LiveCoherent += live.Coherent
		sum.LiveBounded += live.BoundedStale
		sum.LiveViolating += live.ViolatingStale
		sum.LiveIncoherent += live.Incoherent
		sum.MissingEdges += len(live.MissingEdges)
		sum.SuperfluousEdges += len(live.SuperfluousEdges)

		// A fault window may have left healthy nodes marked down in the
		// dispatcher (a failed serve pulls the node and nothing re-adds it
		// until an advisor sweep); run the advisors so probes see the real
		// pool.
		cx.Cluster.Advise()
		pages := cx.Site.Pages()
		for _, p := range pages {
			if _, _, err := cx.Cluster.Serve(p); err != nil {
				return sum, fmt.Errorf("chaos: audit probe %s %s: %w", cx.Name, p, err)
			}
		}
		probe, err := cx.Auditor.Sweep()
		if err != nil {
			return sum, fmt.Errorf("chaos: probe audit sweep %s: %w", cx.Name, err)
		}
		sum.Complexes++
		sum.Pages += probe.Pages
		sum.Probes += probe.Samples
		sum.Coherent += probe.Coherent
		sum.BoundedStale += probe.BoundedStale
		sum.ViolatingStale += probe.ViolatingStale
		sum.Incoherent += probe.Incoherent
		sum.IncoherentPages = append(sum.IncoherentPages, probe.IncoherentPages...)
		sum.MissingEdges += len(probe.MissingEdges)
		sum.SuperfluousEdges += len(probe.SuperfluousEdges)

		ok := probe.Samples == probe.Coherent && probe.Incoherent == 0 &&
			len(live.MissingEdges) == 0 && len(live.SuperfluousEdges) == 0 &&
			len(probe.MissingEdges) == 0 && len(probe.SuperfluousEdges) == 0
		if !ok {
			sum.OK = false
		}
		fmt.Fprintf(out,
			"audit %-10s pages=%d probes=%d coherent=%d bounded_stale=%d violating_stale=%d incoherent=%d missing_edges=%d superfluous_edges=%d ok=%t\n",
			cx.Name, probe.Pages, probe.Samples, probe.Coherent, probe.BoundedStale,
			probe.ViolatingStale, probe.Incoherent,
			len(live.MissingEdges)+len(probe.MissingEdges),
			len(live.SuperfluousEdges)+len(probe.SuperfluousEdges), ok)
	}
	return sum, nil
}

// AuditConfig describes a standalone audit run.
type AuditConfig struct {
	// Seed labels the run (the scenario itself is deterministic).
	Seed int64
	// SLO is the freshness objective handed to tracers and the auditor
	// (default 60s).
	SLO time.Duration
	// Timeout bounds each convergence wait (default 30s).
	Timeout time.Duration
	// Out receives the report (default: discard).
	Out io.Writer
}

// AuditResult is the standalone audit outcome.
type AuditResult struct {
	Seed    int64
	Summary AuditSummary
	OK      bool
}

// RunAudit executes the standalone consistency audit: the tournament plant
// is brought up WithAudit, a burst of results commits while every event
// page is served from every region, the plant converges, and the audit
// sweep verifies that every complex is provably coherent — zero incoherent
// pages, zero missing or superfluous ODG edges.
func RunAudit(cfg AuditConfig) (*AuditResult, error) {
	if cfg.SLO <= 0 {
		cfg.SLO = 60 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}

	d, err := deploy.New(deploy.Config{
		Spec:        spec(),
		Complexes:   topology(),
		BatchWindow: 2 * time.Millisecond,
	},
		deploy.WithTracing(cfg.SLO),
		deploy.WithAudit(),
	)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	defer func() { _ = d.Shutdown(ctx) }()
	if err := d.Prime(cfg.Timeout); err != nil {
		return nil, err
	}

	fmt.Fprintf(cfg.Out, "audit sweep: seed=%d slo=%s\n", cfg.Seed, cfg.SLO)

	// Traffic under propagation: every event receives a result while its
	// page is served from each region, so the auditors capture hits taken
	// mid-propagation as well as settled ones.
	events := d.MasterSite.Events
	regions := []routing.Region{routing.RegionJapan, routing.RegionUS, routing.RegionEurope}
	for round := 0; round < 3; round++ {
		for i, ev := range events {
			if _, err := d.MasterSite.RecordPartial(ev,
				ev.Participants[(round+i)%len(ev.Participants)],
				fmt.Sprintf("audit.%d.%d", round, i)); err != nil {
				return nil, fmt.Errorf("audit: commit: %w", err)
			}
			for _, region := range regions {
				_, _, _, _ = d.Serve(region, eventPage(ev))
			}
		}
	}
	if !d.WaitFresh(cfg.Timeout) {
		return nil, fmt.Errorf("audit: plant did not converge")
	}

	sum, err := auditSweep(d, cfg.Out)
	if err != nil {
		return nil, err
	}
	res := &AuditResult{Seed: cfg.Seed, Summary: sum, OK: sum.OK}
	fmt.Fprintf(cfg.Out,
		"audit: seed=%d complexes=%d pages=%d incoherent=%d missing_edges=%d superfluous_edges=%d ok=%t\n",
		res.Seed, sum.Complexes, sum.Pages, sum.Incoherent, sum.MissingEdges,
		sum.SuperfluousEdges, res.OK)
	return res, nil
}
