package chaos

import (
	"bytes"
	"testing"
)

// TestOverloadScenarioHoldsInvariants runs the 5:1 overload scenario and
// checks every invariant, including that the flood actually exercised the
// degradation path (a flood with no misses and no stale serves would pass
// the invariants vacuously).
func TestOverloadScenarioHoldsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("overload scenario")
	}
	var buf bytes.Buffer
	res, err := RunOverload(OverloadConfig{Seed: 7, RequestsPerClient: 40, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("overload scenario failed:\n%s", buf.String())
	}
	if res.Baseline.Shed != 0 || res.Baseline.Errors != 0 {
		t.Fatalf("baseline not clean: %+v", res.Baseline)
	}
	if !res.HitAdmitted {
		t.Fatal("a cached page was not served under total saturation")
	}
	if !res.StaleServed {
		t.Fatal("an invalidated page was refused instead of degrading to stale")
	}
	if !res.Withdrawn || res.BlackHoled {
		t.Fatalf("routing reaction: withdrawn=%t black_holed=%t", res.Withdrawn, res.BlackHoled)
	}
	if res.Flood.Errors != 0 {
		t.Fatalf("flood produced %d hard errors", res.Flood.Errors)
	}
	if res.Flood.Misses == 0 && res.Flood.Stale == 0 {
		t.Fatalf("flood never contended for renders: %+v", res.Flood)
	}
	if res.Flood.Shed*10 > res.Flood.Requests {
		t.Fatalf("shed rate above 10%%: %+v", res.Flood)
	}
	if res.OverBudgetServers != 0 {
		t.Fatalf("%d servers exceeded the staleness budget", res.OverBudgetServers)
	}
	// The post-recovery consistency audit: every probe across every
	// complex must be provably coherent, with a clean ODG completeness
	// diff. This is the oracle check — the flood's degraded serves must
	// not have left a single page diverging from the data.
	if !res.Audit.OK || res.Audit.Incoherent != 0 ||
		res.Audit.MissingEdges != 0 || res.Audit.SuperfluousEdges != 0 {
		t.Fatalf("audit: %+v", res.Audit)
	}
	if res.Audit.Complexes != 3 || res.Audit.Probes != res.Audit.Pages ||
		res.Audit.Coherent != res.Audit.Probes {
		t.Fatalf("audit coverage: %+v", res.Audit)
	}
	if !res.Reconverged || !res.Restored || res.StalePages != 0 || res.ResidualViolations != 0 {
		t.Fatalf("recovery: reconverged=%t restored=%t stale=%d residual=%d",
			res.Reconverged, res.Restored, res.StalePages, res.ResidualViolations)
	}

	// Byte-reproducibility: the report prints only invariant quantities, so
	// as long as the invariants hold it must equal this literal exactly.
	want := "overload scenario: seed=7 capacity=6 clients surge=5x requests/client=40 stale_budget=1m0s\n" +
		"phase baseline: requests=240 errors=0 sheds=0\n" +
		"phase saturate: hit_admitted=true stale_served=true withdrawn=true black_holed=false\n" +
		"phase flood: requests=1200 errors=0 shed_bounded=true over_budget_servers=0\n" +
		"phase recover: reconverged=true restored=true stale_pages=0 residual_slo_violations=0\n" +
		"audit tokyo      pages=39 probes=39 coherent=39 bounded_stale=0 violating_stale=0 incoherent=0 missing_edges=0 superfluous_edges=0 ok=true\n" +
		"audit schaumburg pages=39 probes=39 coherent=39 bounded_stale=0 violating_stale=0 incoherent=0 missing_edges=0 superfluous_edges=0 ok=true\n" +
		"audit columbus   pages=39 probes=39 coherent=39 bounded_stale=0 violating_stale=0 incoherent=0 missing_edges=0 superfluous_edges=0 ok=true\n" +
		"overload: seed=7 ok=true\n"
	if got := buf.String(); got != want {
		t.Fatalf("report not reproducible:\n--- got\n%s--- want\n%s", got, want)
	}
}
