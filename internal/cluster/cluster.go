// Package cluster models the physical serving plant of section 3: SP2
// systems ("frames") composed of serving nodes, grouped into geographic
// complexes, with failure injection at every level so the paper's "elegant
// degradation" chain — node -> frame -> dispatcher -> complex — is a
// measurable property rather than a diagram.
//
// A Node wraps any dispatch.Node (normally an httpserver.Server) with a
// kill switch. Failing a node makes it error on every request, which causes
// the complex's Network Dispatcher to pull it from the distribution list;
// recovering it rejoins the pool with a cold cache, exactly like a rebooted
// machine whose memory-resident page cache is gone.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
)

// ErrNodeDown is returned by a failed node.
var ErrNodeDown = errors.New("cluster: node down")

// ErrNodeWarming is returned by a node rebuilding its cache before
// readmission: it is alive but must not serve until the warmup reaches the
// pinned LSN floor (internal/recovery).
var ErrNodeWarming = errors.New("cluster: node warming")

// NodeState is a node's lifecycle state.
type NodeState int32

const (
	// NodeUp: serving.
	NodeUp NodeState = iota
	// NodeWarming: recovering — the warmup hook is rebuilding the cache;
	// probes fail and LoadSignal is withdrawn until it finishes.
	NodeWarming
	// NodeDown: failed.
	NodeDown
)

func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeWarming:
		return "warming"
	default:
		return "down"
	}
}

// WarmupFunc rebuilds a node's serving state before readmission (see
// internal/recovery.Warmer). It runs on its own goroutine; returning an
// error leaves the node down.
type WarmupFunc func() error

// Node is a failable serving node.
type Node struct {
	name  string
	inner dispatch.Node
	// Optional inner interfaces, resolved once at construction so the serve
	// hot path performs no per-request type assertions.
	innerCtx  ctxServer
	innerLoad loadSignaler
	innerRdy  readyReporter
	cache     *cache.Cache // cleared on failure (memory-resident cache)
	state     atomic.Int32 // NodeState
	epoch     atomic.Int64 // bumped on every Fail; in-flight warmups abandon

	mu   sync.Mutex
	warm WarmupFunc
	hook func(name string, from, to NodeState)
}

// The optional interfaces a wrapped node may implement, mirrored here so
// they can be pre-resolved at construction.
type (
	ctxServer interface {
		ServeCtx(ctx context.Context, path string) (*cache.Object, httpserver.Outcome, error)
	}
	loadSignaler  interface{ LoadSignal() float64 }
	readyReporter interface{ Ready() bool }
)

// NewNode wraps inner with a kill switch. c may be nil when the node's
// cache should survive failures (e.g. a disk-backed store).
func NewNode(name string, inner dispatch.Node, c *cache.Cache) *Node {
	n := &Node{name: name, inner: inner, cache: c}
	n.innerCtx, _ = inner.(ctxServer)
	n.innerLoad, _ = inner.(loadSignaler)
	n.innerRdy, _ = inner.(readyReporter)
	return n
}

// Name implements dispatch.Node.
func (n *Node) Name() string { return n.name }

// Serve implements dispatch.Node, failing while the node is down.
func (n *Node) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	return n.ServeCtx(context.Background(), path)
}

// ServeCtx forwards the request context — and with it any serve span the
// dispatcher minted — through the kill switch to the inner node.
func (n *Node) ServeCtx(ctx context.Context, path string) (*cache.Object, httpserver.Outcome, error) {
	switch NodeState(n.state.Load()) {
	case NodeDown:
		return nil, httpserver.OutcomeError, fmt.Errorf("%w: %s", ErrNodeDown, n.name)
	case NodeWarming:
		return nil, httpserver.OutcomeError, fmt.Errorf("%w: %s", ErrNodeWarming, n.name)
	}
	if n.innerCtx != nil {
		return n.innerCtx.ServeCtx(ctx, path)
	}
	return n.inner.Serve(path)
}

// SetWarmup installs the recovery warmup hook: with one installed, Recover
// enters NodeWarming and runs it asynchronously, and the node only reaches
// NodeUp when the hook succeeds. Without one, Recover flips straight up
// (the legacy cold rejoin).
func (n *Node) SetWarmup(w WarmupFunc) {
	n.mu.Lock()
	n.warm = w
	n.mu.Unlock()
}

// SetStateHook registers an observer of node state transitions (journal
// wiring, cache detach on failure). The hook runs on whatever goroutine
// caused the transition, without node locks held.
func (n *Node) SetStateHook(fn func(name string, from, to NodeState)) {
	n.mu.Lock()
	n.hook = fn
	n.mu.Unlock()
}

func (n *Node) transition(from, to NodeState) {
	n.mu.Lock()
	hook := n.hook
	n.mu.Unlock()
	if hook != nil {
		hook(n.name, from, to)
	}
}

// Fail takes the node down and discards its memory-resident cache. Failing
// again while already down (or mid-warmup) is a no-op beyond abandoning
// any in-flight warmup.
func (n *Node) Fail() {
	n.epoch.Add(1)
	for {
		s := NodeState(n.state.Load())
		if s == NodeDown {
			return
		}
		if n.state.CompareAndSwap(int32(s), int32(NodeDown)) {
			if n.cache != nil {
				n.cache.Clear()
			}
			n.transition(s, NodeDown)
			return
		}
	}
}

// Recover brings the node back. With a warmup hook installed the node
// enters NodeWarming — probes fail, LoadSignal is withdrawn, serves error —
// until the hook has rebuilt the cache to the pinned LSN floor; only then
// does it report up. Without a hook it rejoins immediately with whatever
// its cache holds (empty after a Fail until the trigger monitor
// redistributes pages). A Fail during the warmup wins: the stale warmup's
// result is discarded.
func (n *Node) Recover() {
	n.mu.Lock()
	warm := n.warm
	n.mu.Unlock()
	if warm == nil {
		for {
			s := NodeState(n.state.Load())
			if s == NodeUp {
				return
			}
			if n.state.CompareAndSwap(int32(s), int32(NodeUp)) {
				n.transition(s, NodeUp)
				return
			}
		}
	}
	if !n.state.CompareAndSwap(int32(NodeDown), int32(NodeWarming)) {
		return // already up or warming
	}
	n.transition(NodeDown, NodeWarming)
	epoch := n.epoch.Load()
	go func() {
		err := warm()
		if n.epoch.Load() != epoch {
			return // failed again mid-warmup; this warmup is stale
		}
		if err != nil {
			if n.state.CompareAndSwap(int32(NodeWarming), int32(NodeDown)) {
				n.transition(NodeWarming, NodeDown)
			}
			return
		}
		if n.state.CompareAndSwap(int32(NodeWarming), int32(NodeUp)) {
			n.transition(NodeWarming, NodeUp)
		}
	}()
}

// WaitReady blocks until the node reports up or the timeout elapses,
// reporting which. Deterministic scenarios use it to sequence a rejoin.
func (n *Node) WaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if n.Ready() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// LoadSignal forwards the inner node's overload signal so the dispatcher's
// load-aware selection sees through the kill-switch wrapper. A node without
// one (or a node that is down or warming, which must not look busy — it
// looks dead) reports 0.
func (n *Node) LoadSignal() float64 {
	if NodeState(n.state.Load()) != NodeUp {
		return 0
	}
	if n.innerLoad != nil {
		return n.innerLoad.LoadSignal()
	}
	return 0
}

// Down reports whether the node is currently failed (warming nodes are not
// down — they are recovering, and report neither down nor ready).
func (n *Node) Down() bool { return NodeState(n.state.Load()) == NodeDown }

// Warming reports whether a recovery warmup is in flight.
func (n *Node) Warming() bool { return NodeState(n.state.Load()) == NodeWarming }

// State returns the node's lifecycle state.
func (n *Node) State() NodeState { return NodeState(n.state.Load()) }

// Ready implements dispatch.ReadyReporter: the advisors' synthetic health
// check. A node is ready only when it is up AND its inner server is (a
// draining httpserver reports not-ready through the same interface).
func (n *Node) Ready() bool {
	if NodeState(n.state.Load()) != NodeUp {
		return false
	}
	if n.innerRdy != nil {
		return n.innerRdy.Ready()
	}
	return true
}

// Server returns the wrapped inner node (normally the *httpserver.Server),
// so callers can reach per-server statistics through the kill-switch.
func (n *Node) Server() dispatch.Node { return n.inner }

// Frame is one SP2: a set of serving nodes that share a power boundary, so
// frame failure takes all of them down at once.
type Frame struct {
	Name  string
	Nodes []*Node
}

// Fail downs every node in the frame.
func (f *Frame) Fail() {
	for _, n := range f.Nodes {
		n.Fail()
	}
}

// Recover restores every node in the frame.
func (f *Frame) Recover() {
	for _, n := range f.Nodes {
		n.Recover()
	}
}

// Config describes a complex to build.
type Config struct {
	// Name of the complex ("tokyo").
	Name string
	// Frames is the number of SP2 systems (the paper: 3 or 4 per site).
	Frames int
	// NodesPerFrame is the number of serving uniprocessors per SP2 (the
	// paper: 8).
	NodesPerFrame int
	// Generator regenerates pages on cache miss (may be nil).
	Generator core.Generator
	// Version stamps generated pages (may be nil).
	Version httpserver.VersionFunc
	// ServerOptions are applied to every node's httpserver.
	ServerOptions []httpserver.Option
	// NodeOptions, when set, returns extra per-node httpserver options
	// keyed by node name — the hook through which deploy gives each node
	// its own overload limiter (a limiter is per-node state and must not
	// be shared).
	NodeOptions func(name string) []httpserver.Option
	// CacheOptions are applied to every node's cache (e.g. stale retention
	// for overload degradation).
	CacheOptions []cache.Option
	// Statics is installed on every node's server (the Welcome/Venues/Fun
	// sections served from the filesystem).
	Statics map[string][]byte
	// GroupOptions are applied to the complex's cache group (push hooks,
	// retry policy — the fault-injection seams).
	GroupOptions []cache.GroupOption
	// DispatcherOptions are applied to the complex's dispatcher.
	DispatcherOptions []dispatch.Option
}

// Option adjusts a Config before the complex is built.
type Option func(*Config)

// WithGroupOptions appends options for the complex's cache group — the
// seam through which fault injectors arm per-node push failures and retry
// policies.
func WithGroupOptions(opts ...cache.GroupOption) Option {
	return func(c *Config) { c.GroupOptions = append(c.GroupOptions, opts...) }
}

// WithDispatcherOptions appends options for the complex's dispatcher.
func WithDispatcherOptions(opts ...dispatch.Option) Option {
	return func(c *Config) { c.DispatcherOptions = append(c.DispatcherOptions, opts...) }
}

// Complex is one geographic serving site: frames of nodes behind a Network
// Dispatcher, with a cache group spanning every node for the trigger
// monitor's broadcasts.
type Complex struct {
	name       string
	Dispatcher *dispatch.Dispatcher
	Caches     *cache.Group
	Frames     []*Frame

	mu    sync.Mutex
	nodes map[string]*Node
}

// NewComplex builds a complex per cfg: Frames x NodesPerFrame serving
// nodes, each with its own cache registered in Caches, all pooled behind
// one dispatcher named after the complex.
func NewComplex(cfg Config, opts ...Option) *Complex {
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 1
	}
	if cfg.NodesPerFrame <= 0 {
		cfg.NodesPerFrame = 8
	}
	cx := &Complex{
		name:   cfg.Name,
		Caches: cache.NewGroup(cfg.GroupOptions...),
		nodes:  make(map[string]*Node),
	}
	var poolNodes []dispatch.Node
	for f := 0; f < cfg.Frames; f++ {
		frame := &Frame{Name: fmt.Sprintf("%s-sp2-%d", cfg.Name, f)}
		for u := 0; u < cfg.NodesPerFrame; u++ {
			name := fmt.Sprintf("%s-up%d", frame.Name, u)
			c := cache.New(name, cfg.CacheOptions...)
			cx.Caches.Add(c)
			srvOpts := cfg.ServerOptions
			if cfg.NodeOptions != nil {
				srvOpts = append(append([]httpserver.Option{}, srvOpts...), cfg.NodeOptions(name)...)
			}
			srv := httpserver.New(name, c, cfg.Generator, cfg.Version, srvOpts...)
			for path, body := range cfg.Statics {
				srv.SetStatic(path, body, "text/html; charset=utf-8")
			}
			node := NewNode(name, srv, c)
			frame.Nodes = append(frame.Nodes, node)
			poolNodes = append(poolNodes, node)
			cx.nodes[name] = node
		}
		cx.Frames = append(cx.Frames, frame)
	}
	cx.Dispatcher = dispatch.New(
		dispatch.Config{Name: cfg.Name, Nodes: poolNodes},
		cfg.DispatcherOptions...)
	return cx
}

// Name implements dispatch.Node.
func (c *Complex) Name() string { return c.name }

// Serve implements dispatch.Node by forwarding through the complex's
// dispatcher, so a Complex plugs directly into the routing layer.
func (c *Complex) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	return c.Dispatcher.Serve(path)
}

// ServeCtx forwards the request context through the complex's dispatcher so
// serve spans survive the routing layer's complex indirection.
func (c *Complex) ServeCtx(ctx context.Context, path string) (*cache.Object, httpserver.Outcome, error) {
	return c.Dispatcher.ServeCtx(ctx, path)
}

// NodeByName returns the named node.
func (c *Complex) NodeByName(name string) (*Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	return n, ok
}

// Nodes returns every node in the complex.
func (c *Complex) Nodes() []*Node {
	var out []*Node
	for _, f := range c.Frames {
		out = append(out, f.Nodes...)
	}
	return out
}

// FailFrame downs frame i and advises the dispatcher so the pool reflects
// it immediately.
func (c *Complex) FailFrame(i int) {
	if i < 0 || i >= len(c.Frames) {
		return
	}
	c.Frames[i].Fail()
	c.Advise()
}

// RecoverFrame restores frame i and advises the dispatcher.
func (c *Complex) RecoverFrame(i int) {
	if i < 0 || i >= len(c.Frames) {
		return
	}
	c.Frames[i].Recover()
	c.Advise()
}

// FailAll downs the entire complex.
func (c *Complex) FailAll() {
	for _, f := range c.Frames {
		f.Fail()
	}
	c.Advise()
}

// RecoverAll restores the entire complex.
func (c *Complex) RecoverAll() {
	for _, f := range c.Frames {
		f.Recover()
	}
	c.Advise()
}

// Advise runs one advisor sweep: nodes that are not ready (down, or
// warming toward readmission) are pulled from the dispatcher; ready nodes
// count one good observation toward readmission — instant under the
// default dispatcher policy, gated by quarantine, readmit threshold, and
// the slow-start ramp under a recovery HealthPolicy. Returns the number of
// ready nodes.
func (c *Complex) Advise() int {
	healthy := 0
	for _, n := range c.Nodes() {
		if n.Ready() {
			c.Dispatcher.MarkUp(n.Name())
			healthy++
		} else {
			c.Dispatcher.MarkDown(n.Name())
		}
	}
	return healthy
}

// Healthy reports how many nodes are currently serving.
func (c *Complex) Healthy() int { return c.Dispatcher.HealthyCount() }

// Ledger tracks availability over a sampled timeline: each Record call is
// one observation of whether the site could serve at that instant. The
// paper's headline is "available 100% of the time"; the simulation records
// a sample per simulated interval and reports the fraction.
type Ledger struct {
	mu       sync.Mutex
	samples  int64
	up       int64
	downRuns int64
	lastUp   bool
	started  bool
}

// Record adds one availability observation.
func (l *Ledger) Record(up bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples++
	if up {
		l.up++
	} else if !l.started || l.lastUp {
		l.downRuns++
	}
	l.lastUp = up
	l.started = true
}

// Availability returns the fraction of samples that were up (1 when no
// samples were recorded, matching "never observed down").
func (l *Ledger) Availability() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.samples == 0 {
		return 1
	}
	return float64(l.up) / float64(l.samples)
}

// Samples returns the number of observations.
func (l *Ledger) Samples() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.samples
}

// Outages returns the number of distinct down intervals observed.
func (l *Ledger) Outages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.downRuns
}
