package cluster

import (
	"errors"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/httpserver"
)

func gen() core.Generator {
	return func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: []byte("page:" + string(key)), Version: version}, nil
	}
}

func newComplex(t *testing.T, frames, perFrame int) *Complex {
	t.Helper()
	return NewComplex(Config{
		Name:          "tokyo",
		Frames:        frames,
		NodesPerFrame: perFrame,
		Generator:     gen(),
		Version:       func() int64 { return 1 },
	})
}

func TestComplexTopology(t *testing.T) {
	c := newComplex(t, 3, 8)
	if len(c.Frames) != 3 {
		t.Fatalf("frames = %d", len(c.Frames))
	}
	if got := len(c.Nodes()); got != 24 {
		t.Fatalf("nodes = %d, want 24", got)
	}
	if c.Caches.Len() != 24 {
		t.Fatalf("cache group = %d", c.Caches.Len())
	}
	if c.Healthy() != 24 {
		t.Fatalf("healthy = %d", c.Healthy())
	}
	if _, ok := c.NodeByName("tokyo-sp2-0-up0"); !ok {
		t.Fatal("node naming drift")
	}
	if _, ok := c.NodeByName("ghost"); ok {
		t.Fatal("unknown node found")
	}
}

func TestComplexServes(t *testing.T) {
	c := newComplex(t, 1, 2)
	obj, outcome, err := c.Serve("/p")
	if err != nil || outcome != httpserver.OutcomeMiss {
		t.Fatalf("Serve = %v %v", outcome, err)
	}
	if string(obj.Value) != "page:/p" {
		t.Fatalf("body = %q", obj.Value)
	}
}

func TestNodeFailClearsCacheAndErrors(t *testing.T) {
	c := cache.New("n")
	c.Put(&cache.Object{Key: "/p", Value: []byte("x")})
	srv := httpserver.New("n", c, gen(), nil)
	n := NewNode("n", srv, c)
	n.Fail()
	if !n.Down() {
		t.Fatal("not down after Fail")
	}
	if _, _, err := n.Serve("/p"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("cache survived the crash")
	}
	n.Recover()
	if n.Down() {
		t.Fatal("still down after Recover")
	}
	// Recovered node serves again (cold cache -> miss).
	if _, outcome, err := n.Serve("/p"); err != nil || outcome != httpserver.OutcomeMiss {
		t.Fatalf("post-recovery = %v %v", outcome, err)
	}
}

func TestNodeFailureDegradesElegantly(t *testing.T) {
	c := newComplex(t, 1, 4)
	c.Nodes()[0].Fail()
	// No advise needed: the dispatcher pulls the node on its first error.
	for i := 0; i < 40; i++ {
		if _, _, err := c.Serve("/p"); err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
	if c.Healthy() != 3 {
		t.Fatalf("healthy = %d, want 3", c.Healthy())
	}
}

func TestFrameFailure(t *testing.T) {
	c := newComplex(t, 2, 4)
	c.FailFrame(0)
	if c.Healthy() != 4 {
		t.Fatalf("healthy = %d, want 4", c.Healthy())
	}
	for i := 0; i < 20; i++ {
		if _, _, err := c.Serve("/p"); err != nil {
			t.Fatalf("serve after frame loss: %v", err)
		}
	}
	c.RecoverFrame(0)
	if c.Healthy() != 8 {
		t.Fatalf("healthy after recovery = %d", c.Healthy())
	}
	// Out-of-range indices are no-ops.
	c.FailFrame(-1)
	c.FailFrame(99)
	c.RecoverFrame(-1)
	c.RecoverFrame(99)
}

func TestComplexTotalFailure(t *testing.T) {
	c := newComplex(t, 2, 2)
	c.FailAll()
	if c.Healthy() != 0 {
		t.Fatalf("healthy = %d", c.Healthy())
	}
	if _, _, err := c.Serve("/p"); err == nil {
		t.Fatal("dead complex served")
	}
	c.RecoverAll()
	if c.Healthy() != 4 {
		t.Fatalf("healthy after recovery = %d", c.Healthy())
	}
	if _, _, err := c.Serve("/p"); err != nil {
		t.Fatalf("serve after recovery: %v", err)
	}
}

func TestAdviseRestoresRecoveredNodes(t *testing.T) {
	c := newComplex(t, 1, 2)
	n := c.Nodes()[0]
	n.Fail()
	c.Serve("/p") // dispatcher pulls the failed node on error or picks other
	c.Advise()
	if c.Healthy() != 1 {
		t.Fatalf("healthy = %d, want 1", c.Healthy())
	}
	n.Recover()
	if got := c.Advise(); got != 2 {
		t.Fatalf("Advise = %d, want 2", got)
	}
}

func TestBroadcastReachesAllNodeCaches(t *testing.T) {
	c := newComplex(t, 1, 8)
	// The trigger monitor's distribution step.
	c.Caches.BroadcastPut(&cache.Object{Key: "/hot", Value: []byte("fresh"), Version: 2})
	for i := 0; i < 8; i++ {
		obj, outcome, err := c.Serve("/hot")
		if err != nil || outcome != httpserver.OutcomeHit {
			t.Fatalf("request %d: %v %v", i, outcome, err)
		}
		if string(obj.Value) != "fresh" {
			t.Fatalf("body = %q", obj.Value)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewComplex(Config{Name: "x"})
	if len(c.Frames) != 1 || len(c.Frames[0].Nodes) != 8 {
		t.Fatalf("defaults: %d frames x %d nodes", len(c.Frames), len(c.Frames[0].Nodes))
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	if l.Availability() != 1 {
		t.Fatal("empty ledger should read fully available")
	}
	for i := 0; i < 98; i++ {
		l.Record(true)
	}
	l.Record(false)
	l.Record(false)
	if got := l.Availability(); got != 0.98 {
		t.Fatalf("availability = %v", got)
	}
	if l.Samples() != 100 {
		t.Fatalf("samples = %d", l.Samples())
	}
	if l.Outages() != 1 {
		t.Fatalf("outages = %d, want 1 contiguous run", l.Outages())
	}
	l.Record(true)
	l.Record(false)
	if l.Outages() != 2 {
		t.Fatalf("outages = %d, want 2", l.Outages())
	}
}

func TestLedgerStartsDown(t *testing.T) {
	var l Ledger
	l.Record(false)
	if l.Outages() != 1 {
		t.Fatalf("outages = %d", l.Outages())
	}
}
