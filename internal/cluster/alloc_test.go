package cluster

import (
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
	"dupserve/internal/overload"
)

// TestFullHitPathZeroAlloc pins the complete serve hit path — dispatcher
// pick, kill-switch wrapper, httpserver, striped cache — at zero heap
// allocations per request. This is the end-to-end guarantee the serve-path
// benchmark depends on: at saturation the hit path generates no garbage.
func TestFullHitPathZeroAlloc(t *testing.T) {
	cx := NewComplex(Config{
		Name:          "alloc",
		Frames:        1,
		NodesPerFrame: 4,
		NodeOptions: func(name string) []httpserver.Option {
			return []httpserver.Option{httpserver.WithOverload(
				overload.NewLimiter(overload.Config{MaxConcurrent: 4}), time.Second)}
		},
	})
	obj := &cache.Object{
		Key:     "/en/day7/home",
		Value:   []byte("<html>day seven</html>"),
		Version: 7,
	}
	if n := cx.Caches.BroadcastPut(obj); n != 4 {
		t.Fatalf("broadcast reached %d caches, want 4", n)
	}
	if _, outcome, err := cx.Serve("/en/day7/home"); err != nil || outcome != httpserver.OutcomeHit {
		t.Fatalf("warmup: outcome=%v err=%v", outcome, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, outcome, _ := cx.Serve("/en/day7/home"); outcome != httpserver.OutcomeHit {
			t.Fatalf("outcome = %v, want hit", outcome)
		}
	})
	if allocs != 0 {
		t.Fatalf("dispatcher->node->server->cache hit path allocates %.1f per run, want 0", allocs)
	}
}

// TestLockedPickPathStillServes exercises the legacy (bench-baseline)
// locked pick path through the same stack, proving behavioural equivalence
// on the hit path.
func TestLockedPickPathStillServes(t *testing.T) {
	cx := NewComplex(Config{Name: "legacy", Frames: 1, NodesPerFrame: 4},
		WithDispatcherOptions(dispatch.WithLockedPickPath()))
	obj := &cache.Object{Key: "/p", Value: []byte("x"), Version: 1}
	cx.Caches.BroadcastPut(obj)
	for i := 0; i < 40; i++ {
		if _, outcome, err := cx.Serve("/p"); err != nil || outcome != httpserver.OutcomeHit {
			t.Fatalf("outcome=%v err=%v", outcome, err)
		}
	}
	st := cx.Dispatcher.Stats()
	if st.Forwarded != 40 {
		t.Fatalf("forwarded = %d, want 40", st.Forwarded)
	}
	for _, n := range st.Nodes {
		if n.Served != 10 {
			t.Fatalf("node %s served %d, want 10 (round-robin)", n.Name, n.Served)
		}
	}
}
