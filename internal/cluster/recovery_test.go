package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWarmupGatesReadmission: with a warmup hook installed, Recover enters
// NodeWarming — serves error, Ready is false, LoadSignal is withdrawn —
// until the hook completes; only then does the node report up.
func TestWarmupGatesReadmission(t *testing.T) {
	c := newComplex(t, 1, 2)
	n := c.Nodes()[0]
	release := make(chan struct{})
	n.SetWarmup(func() error {
		<-release
		return nil
	})

	n.Fail()
	if !n.Down() {
		t.Fatal("node not down after Fail")
	}
	n.Recover()
	if !n.Warming() {
		t.Fatalf("state = %s, want warming", n.State())
	}
	if n.Ready() {
		t.Fatal("warming node reports ready")
	}
	if got := n.LoadSignal(); got != 0 {
		t.Fatalf("warming node LoadSignal = %v, want 0 (withdrawn)", got)
	}
	if _, _, err := n.Serve("/p"); !errors.Is(err, ErrNodeWarming) {
		t.Fatalf("serve during warmup: err = %v, want ErrNodeWarming", err)
	}

	close(release)
	if !n.WaitReady(5 * time.Second) {
		t.Fatal("node never became ready after warmup completed")
	}
	if _, _, err := n.Serve("/p"); err != nil {
		t.Fatalf("serve after warmup: %v", err)
	}
}

// TestWarmupErrorLeavesNodeDown: a failing warmup must not readmit the node.
func TestWarmupErrorLeavesNodeDown(t *testing.T) {
	c := newComplex(t, 1, 1)
	n := c.Nodes()[0]
	boom := errors.New("render failed")
	calls := 0
	n.SetWarmup(func() error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	})

	n.Fail()
	n.Recover()
	deadline := time.Now().Add(5 * time.Second)
	for !n.Down() {
		if time.Now().After(deadline) {
			t.Fatalf("state = %s, want down after warmup error", n.State())
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A later Recover retries the warmup and succeeds.
	n.Recover()
	if !n.WaitReady(5 * time.Second) {
		t.Fatal("node never recovered on retry")
	}
}

// TestFailDuringWarmupWins: a Fail while the warmup is in flight bumps the
// epoch, so the stale warmup's completion is discarded and the node stays
// down.
func TestFailDuringWarmupWins(t *testing.T) {
	c := newComplex(t, 1, 1)
	n := c.Nodes()[0]
	release := make(chan struct{})
	n.SetWarmup(func() error {
		<-release
		return nil
	})

	n.Fail()
	n.Recover()
	if !n.Warming() {
		t.Fatal("node not warming")
	}
	n.Fail() // re-fail mid-warmup
	close(release)

	// The stale warmup must not flip the node up.
	time.Sleep(5 * time.Millisecond)
	if !n.Down() {
		t.Fatalf("state = %s, want down (stale warmup abandoned)", n.State())
	}
}

// TestDoubleFailIsIdempotent: failing an already-down node changes nothing
// and fires no duplicate transitions.
func TestDoubleFailIsIdempotent(t *testing.T) {
	c := newComplex(t, 1, 1)
	n := c.Nodes()[0]
	var mu sync.Mutex
	var transitions []NodeState
	n.SetStateHook(func(name string, from, to NodeState) {
		mu.Lock()
		transitions = append(transitions, to)
		mu.Unlock()
	})

	n.Fail()
	n.Fail()
	n.Fail()
	mu.Lock()
	got := len(transitions)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("transitions = %d, want 1 (double Fail is a no-op)", got)
	}
	if !n.Down() {
		t.Fatal("node not down")
	}
}

// TestRecoverDuringInFlightServe: requests racing a Fail/Recover cycle
// either succeed or fail with a node-state error — never panic, never wedge.
func TestRecoverDuringInFlightServe(t *testing.T) {
	c := newComplex(t, 1, 2)
	n := c.Nodes()[0]
	n.SetWarmup(func() error { return nil })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := n.ServeCtx(context.Background(), "/p")
				if err != nil && !errors.Is(err, ErrNodeDown) && !errors.Is(err, ErrNodeWarming) {
					t.Errorf("unexpected serve error: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		n.Fail()
		n.Recover()
		n.WaitReady(time.Second)
	}
	close(stop)
	wg.Wait()
	if !n.WaitReady(5 * time.Second) {
		t.Fatal("node did not settle up")
	}
}

// TestLoadSignalThroughStates: the overload signal is withdrawn the moment
// the node leaves NodeUp and restored when it returns.
func TestLoadSignalThroughStates(t *testing.T) {
	c := newComplex(t, 1, 1)
	n := c.Nodes()[0]
	release := make(chan struct{})
	n.SetWarmup(func() error {
		<-release
		return nil
	})

	if got := n.LoadSignal(); got != 0 {
		t.Fatalf("idle up node LoadSignal = %v, want 0", got)
	}
	n.Fail()
	if got := n.LoadSignal(); got != 0 {
		t.Fatalf("down node LoadSignal = %v, want 0", got)
	}
	n.Recover()
	if got := n.LoadSignal(); got != 0 {
		t.Fatalf("warming node LoadSignal = %v, want 0", got)
	}
	close(release)
	if !n.WaitReady(5 * time.Second) {
		t.Fatal("node never became ready")
	}
	if got := n.LoadSignal(); got != 0 {
		t.Fatalf("recovered idle node LoadSignal = %v, want 0", got)
	}
}

// TestAdviseDuringWarmup: the advisor sweep treats a warming node like a
// down one — out of the distribution list until the warmup completes.
func TestAdviseDuringWarmup(t *testing.T) {
	c := newComplex(t, 1, 2)
	n := c.Nodes()[0]
	release := make(chan struct{})
	n.SetWarmup(func() error {
		<-release
		return nil
	})

	n.Fail()
	if got := c.Advise(); got != 1 {
		t.Fatalf("healthy = %d, want 1 after fail", got)
	}
	n.Recover()
	if got := c.Advise(); got != 1 {
		t.Fatalf("healthy = %d, want 1 during warmup", got)
	}
	close(release)
	if !n.WaitReady(5 * time.Second) {
		t.Fatal("node never became ready")
	}
	if got := c.Advise(); got != 2 {
		t.Fatalf("healthy = %d, want 2 after warmup", got)
	}
}
