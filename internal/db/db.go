// Package db implements the database substrate of the Olympic Games web
// site (section 3, figures 4-5 of the paper).
//
// The production system used DB2: venue scoring equipment wrote results to
// local databases, which replicated to a master in Nagano, which in turn
// replicated to the server complexes. What DUP requires from the database
// is precisely (1) transactional row storage and (2) a change-data-capture
// feed announcing which rows each committed transaction touched — that feed
// is what the trigger monitor consumes. This package provides both, plus
// master-to-replica log shipping with configurable propagation delay so the
// simulation can model geographic replication lag.
//
// All operations are safe for concurrent use. Commits are serialized and
// assigned monotonically increasing log sequence numbers (LSNs).
package db

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/stats"
)

// Op identifies the kind of change a transaction applied to a row.
type Op uint8

const (
	// OpPut inserts or replaces a row.
	OpPut Op = iota
	// OpDelete removes a row.
	OpDelete
)

// String returns "put" or "delete".
func (o Op) String() string {
	if o == OpDelete {
		return "delete"
	}
	return "put"
}

// Row is a stored record: a primary key plus named string columns. Rows are
// value types; Get returns copies so callers can never alias store memory.
type Row struct {
	Key  string
	Cols map[string]string
	// LSN is the commit sequence number of the transaction that last wrote
	// the row.
	LSN int64
}

func (r Row) clone() Row {
	cols := make(map[string]string, len(r.Cols))
	for k, v := range r.Cols {
		cols[k] = v
	}
	return Row{Key: r.Key, Cols: cols, LSN: r.LSN}
}

// Change records one row mutation within a committed transaction.
type Change struct {
	Table string
	Key   string
	Op    Op
	// Cols holds the new column values for OpPut; nil for OpDelete.
	Cols map[string]string
	// Created is set by Commit when an OpPut inserted a new row rather
	// than updating an existing one. Membership-index propagation (pages
	// built from table scans) keys off inserts and deletes only.
	Created bool
}

// ChangeID renders the canonical ODG vertex name for the changed row,
// "db:<table>:<key>". The trigger monitor and dependency registrars must
// agree on this format, so it lives here.
func (c Change) ChangeID() string { return RowID(c.Table, c.Key) }

// RowID renders the canonical ODG vertex name for a table row.
func RowID(table, key string) string { return "db:" + table + ":" + key }

// IndexID renders the canonical ODG vertex name for a table-prefix
// membership index ("db:<table>:index:<prefix>"). Scan-based renderers
// depend on it and writers that insert or delete rows under the prefix bump
// it, so pages built from table scans refresh on membership changes. It
// lives here, next to RowID, because readers (fragment contexts), writers
// (site indexers) and auditors must all agree on the format.
func IndexID(table, prefix string) string { return "db:" + table + ":index:" + prefix }

// Transaction is a committed, ordered batch of changes.
type Transaction struct {
	LSN     int64
	Changes []Change
	// Commit is the (possibly simulated) commit timestamp.
	Commit time.Time
	// TraceID is a process-unique propagation trace ID minted at commit.
	// It rides the CDC feed and log shipping unchanged, so the trigger
	// monitor can attribute every downstream propagation stage back to the
	// originating commit (internal/trace).
	TraceID int64
}

// traceSeq mints TraceIDs. Process-global rather than per-DB so a
// transaction keeps one identity as it ships master -> replica.
var traceSeq atomic.Int64

// NextTraceID mints a fresh trace ID. Exposed for components that inject
// synthetic transactions (simulators, tests).
func NextTraceID() int64 { return traceSeq.Add(1) }

// ErrNoTable is returned when an operation references a table that was
// never created.
var ErrNoTable = errors.New("db: no such table")

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("db: closed")

type table struct {
	name string
	rows map[string]Row
}

// DB is an in-memory multi-table store with a transactional write path, a
// retained transaction log, and a subscription feed for change-data
// capture.
type DB struct {
	name string
	now  func() time.Time

	mu       sync.RWMutex
	tables   map[string]*table
	log      []Transaction // retained for replica catch-up
	lsn      int64
	subs     map[int]*subscriber
	nextID   int
	closed   bool
	readHook ReadHook
}

// ReadHook observes row-level reads for dependency auditing: it receives
// the canonical ODG vertex name (RowID / IndexID) of everything Get and
// Scan touch. The hook runs under the database's read lock, so it must be
// fast and must not call back into the database — collectors should only
// append to their own storage.
type ReadHook func(id string)

// SetReadHook installs (or, with nil, removes) the read hook.
func (d *DB) SetReadHook(h ReadHook) {
	d.mu.Lock()
	d.readHook = h
	d.mu.Unlock()
}

// subscriber decouples commit from feed consumption with an unbounded
// in-memory queue: Commit never blocks and never drops a transaction (a
// dropped update would strand stale pages in the cache forever), and slow
// consumers only cost memory. A dedicated pump goroutine moves transactions
// from the queue to the subscriber's channel; it is the only goroutine that
// ever closes that channel, which makes cancellation race-free.
type subscriber struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Transaction
	closed bool
	out    chan Transaction
	done   chan struct{}
}

func newSubscriber(buffer int) *subscriber {
	s := &subscriber{out: make(chan Transaction, buffer), done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

func (s *subscriber) enqueue(tx Transaction) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, tx)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscriber) cancel() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscriber) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			close(s.out)
			return
		}
		tx := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.out <- tx:
		case <-s.done:
			close(s.out)
			return
		}
	}
}

// Option configures a DB.
type Option func(*DB)

// WithClock substitutes the commit-timestamp source.
func WithClock(now func() time.Time) Option {
	return func(d *DB) { d.now = now }
}

// New returns an empty database. name appears in diagnostics only.
func New(name string, opts ...Option) *DB {
	d := &DB{
		name:   name,
		now:    time.Now,
		tables: make(map[string]*table),
		subs:   make(map[int]*subscriber),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name returns the database's diagnostic name.
func (d *DB) Name() string { return d.name }

// CreateTable ensures a table exists. Creating an existing table is a
// no-op, so replicas can idempotently mirror master schemas.
func (d *DB) CreateTable(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		d.tables[name] = &table{name: name, rows: make(map[string]Row)}
	}
}

// Tables returns the table names, sorted.
func (d *DB) Tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a copy of the row, with ok reporting presence.
func (d *DB) Get(tbl, key string) (Row, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.readHook != nil {
		// Reported even for absent rows and tables: content derived from
		// "nothing there" depends on it staying that way, mirroring
		// fragment.Context.Get.
		d.readHook(RowID(tbl, key))
	}
	t, ok := d.tables[tbl]
	if !ok {
		return Row{}, false, fmt.Errorf("%w: %q", ErrNoTable, tbl)
	}
	r, ok := t.rows[key]
	if !ok {
		return Row{}, false, nil
	}
	return r.clone(), true, nil
}

// Scan returns copies of all rows in the table whose key begins with
// prefix, sorted by key. An empty prefix scans the whole table.
func (d *DB) Scan(tbl, prefix string) ([]Row, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[tbl]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tbl)
	}
	var out []Row
	for k, r := range t.rows {
		if strings.HasPrefix(k, prefix) {
			out = append(out, r.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if d.readHook != nil {
		for _, r := range out {
			d.readHook(RowID(tbl, r.Key))
		}
		// A scan also reads the membership: which keys exist under the
		// prefix. The index vertex expresses that, mirroring
		// fragment.Context.Scan.
		d.readHook(IndexID(tbl, prefix))
	}
	return out, nil
}

// Count returns the number of rows in the table.
func (d *DB) Count(tbl string) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tbl)
	}
	return len(t.rows), nil
}

// Tx accumulates changes for an atomic commit. A Tx is not safe for
// concurrent use; build it on one goroutine and Commit it once.
type Tx struct {
	changes []Change
}

// NewTx returns an empty transaction builder.
func (d *DB) NewTx() *Tx { return &Tx{} }

// Put stages an insert-or-replace of (tbl, key) with the given columns. The
// column map is copied immediately, so the caller may reuse it.
func (t *Tx) Put(tbl, key string, cols map[string]string) *Tx {
	cp := make(map[string]string, len(cols))
	for k, v := range cols {
		cp[k] = v
	}
	t.changes = append(t.changes, Change{Table: tbl, Key: key, Op: OpPut, Cols: cp})
	return t
}

// Delete stages a row deletion.
func (t *Tx) Delete(tbl, key string) *Tx {
	t.changes = append(t.changes, Change{Table: tbl, Key: key, Op: OpDelete})
	return t
}

// Len returns the number of staged changes.
func (t *Tx) Len() int { return len(t.changes) }

// Commit atomically applies the transaction, assigns it the next LSN,
// appends it to the retained log, and publishes it to all subscribers. It
// returns the committed transaction (whose Changes slice the caller must
// treat as read-only). Committing an empty Tx returns a zero Transaction
// and no error, and produces no log entry.
func (d *DB) Commit(tx *Tx) (Transaction, error) {
	if len(tx.changes) == 0 {
		return Transaction{}, nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return Transaction{}, ErrClosed
	}
	// Validate all tables first so a commit is all-or-nothing.
	for _, c := range tx.changes {
		if _, ok := d.tables[c.Table]; !ok {
			d.mu.Unlock()
			return Transaction{}, fmt.Errorf("%w: %q", ErrNoTable, c.Table)
		}
	}
	d.lsn++
	committed := Transaction{LSN: d.lsn, Changes: tx.changes, Commit: d.now(), TraceID: NextTraceID()}
	for i := range tx.changes {
		c := &tx.changes[i]
		t := d.tables[c.Table]
		switch c.Op {
		case OpPut:
			_, existed := t.rows[c.Key]
			c.Created = !existed
			t.rows[c.Key] = Row{Key: c.Key, Cols: c.Cols, LSN: d.lsn}
		case OpDelete:
			delete(t.rows, c.Key)
		}
	}
	d.log = append(d.log, committed)
	// Enqueue while still holding the lock so subscribers observe
	// transactions in LSN order; enqueue never blocks.
	for _, s := range d.subs {
		s.enqueue(committed)
	}
	d.mu.Unlock()

	tx.changes = nil // prevent accidental re-commit of the same batch
	return committed, nil
}

// Apply installs an already-sequenced transaction from another database's
// log — the replica side of log shipping. The LSN is taken from the
// incoming transaction; out-of-order or duplicate LSNs are rejected so
// replication bugs surface instead of silently corrupting the replica.
func (d *DB) Apply(tx Transaction) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if tx.LSN != d.lsn+1 {
		cur := d.lsn
		d.mu.Unlock()
		return fmt.Errorf("db: apply out of order: have LSN %d, got %d", cur, tx.LSN)
	}
	for _, c := range tx.Changes {
		if _, ok := d.tables[c.Table]; !ok {
			// Auto-create: replicas mirror schema lazily.
			d.tables[c.Table] = &table{name: c.Table, rows: make(map[string]Row)}
		}
	}
	d.lsn = tx.LSN
	for _, c := range tx.Changes {
		t := d.tables[c.Table]
		switch c.Op {
		case OpPut:
			t.rows[c.Key] = Row{Key: c.Key, Cols: c.Cols, LSN: tx.LSN}
		case OpDelete:
			delete(t.rows, c.Key)
		}
	}
	d.log = append(d.log, tx)
	for _, s := range d.subs {
		s.enqueue(tx)
	}
	d.mu.Unlock()
	return nil
}

// LSN returns the last committed sequence number.
func (d *DB) LSN() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lsn
}

// LogSince returns copies of all retained transactions with LSN > after, in
// order. New replicas use it to catch up before subscribing.
func (d *DB) LogSince(after int64) []Transaction {
	d.mu.RLock()
	defer d.mu.RUnlock()
	i := sort.Search(len(d.log), func(i int) bool { return d.log[i].LSN > after })
	out := make([]Transaction, len(d.log)-i)
	copy(out, d.log[i:])
	return out
}

// Subscribe registers a change-data-capture feed. Every transaction
// committed (or applied) after the call is delivered, in LSN order, on the
// returned channel, which has the given buffer capacity (an unbounded
// internal queue sits behind it, so commits never block on slow consumers).
// cancel unregisters the feed and closes the channel after any in-flight
// delivery; it is safe to call more than once.
func (d *DB) Subscribe(buffer int) (feed <-chan Transaction, cancel func()) {
	if buffer < 1 {
		buffer = 1
	}
	s := newSubscriber(buffer)
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	d.subs[id] = s
	d.mu.Unlock()
	return s.out, func() {
		d.mu.Lock()
		delete(d.subs, id)
		d.mu.Unlock()
		s.cancel()
	}
}

// RegisterMetrics publishes the database's state into a registry as
// compute-on-read gauges: committed LSN (the commit count), retained log
// length, table count, and live CDC subscriber count.
func (d *DB) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterFunc("db_lsn", "last committed log sequence number", labels,
		func() float64 { return float64(d.LSN()) })
	reg.RegisterFunc("db_log_transactions", "transactions retained for replica catch-up", labels,
		func() float64 {
			d.mu.RLock()
			defer d.mu.RUnlock()
			return float64(len(d.log))
		})
	reg.RegisterFunc("db_tables", "tables in the store", labels,
		func() float64 {
			d.mu.RLock()
			defer d.mu.RUnlock()
			return float64(len(d.tables))
		})
	reg.RegisterFunc("db_cdc_subscribers", "live change-data-capture feeds", labels,
		func() float64 {
			d.mu.RLock()
			defer d.mu.RUnlock()
			return float64(len(d.subs))
		})
}

// Close marks the database closed. Subsequent commits fail with ErrClosed;
// reads continue to work (a failed complex can still serve stale reads).
func (d *DB) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}
