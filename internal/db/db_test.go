package db

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCreateTableIdempotent(t *testing.T) {
	d := New("t")
	d.CreateTable("results")
	tx := d.NewTx().Put("results", "r1", map[string]string{"a": "1"})
	if _, err := d.Commit(tx); err != nil {
		t.Fatal(err)
	}
	d.CreateTable("results") // must not wipe rows
	if n, _ := d.Count("results"); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
	if got := d.Tables(); len(got) != 1 || got[0] != "results" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestGetMissingTable(t *testing.T) {
	d := New("t")
	if _, _, err := d.Get("ghost", "k"); err == nil {
		t.Fatal("expected ErrNoTable")
	}
	if _, err := d.Scan("ghost", ""); err == nil {
		t.Fatal("expected ErrNoTable")
	}
	if _, err := d.Count("ghost"); err == nil {
		t.Fatal("expected ErrNoTable")
	}
}

func TestCommitAssignsLSNs(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	for i := 1; i <= 3; i++ {
		tx, err := d.Commit(d.NewTx().Put("x", fmt.Sprintf("k%d", i), nil))
		if err != nil {
			t.Fatal(err)
		}
		if tx.LSN != int64(i) {
			t.Fatalf("LSN = %d, want %d", tx.LSN, i)
		}
	}
	if d.LSN() != 3 {
		t.Fatalf("LSN = %d, want 3", d.LSN())
	}
}

func TestCommitEmptyTxNoop(t *testing.T) {
	d := New("t")
	tx, err := d.Commit(d.NewTx())
	if err != nil || tx.LSN != 0 {
		t.Fatalf("empty commit = %+v, %v", tx, err)
	}
	if d.LSN() != 0 {
		t.Fatal("empty commit advanced LSN")
	}
}

func TestCommitUnknownTableAtomic(t *testing.T) {
	d := New("t")
	d.CreateTable("good")
	tx := d.NewTx().
		Put("good", "k", map[string]string{"a": "1"}).
		Put("bad", "k", nil)
	if _, err := d.Commit(tx); err == nil {
		t.Fatal("expected error for unknown table")
	}
	// Nothing may have been applied.
	if n, _ := d.Count("good"); n != 0 {
		t.Fatal("failed commit partially applied")
	}
	if d.LSN() != 0 {
		t.Fatal("failed commit advanced LSN")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	if _, err := d.Commit(d.NewTx().Put("x", "k", map[string]string{"a": "1"})); err != nil {
		t.Fatal(err)
	}
	r1, ok, _ := d.Get("x", "k")
	if !ok {
		t.Fatal("row missing")
	}
	r1.Cols["a"] = "mutated"
	r2, _, _ := d.Get("x", "k")
	if r2.Cols["a"] != "1" {
		t.Fatal("Get aliases store memory")
	}
}

func TestTxPutCopiesCols(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	cols := map[string]string{"a": "1"}
	tx := d.NewTx().Put("x", "k", cols)
	cols["a"] = "mutated"
	if _, err := d.Commit(tx); err != nil {
		t.Fatal(err)
	}
	r, _, _ := d.Get("x", "k")
	if r.Cols["a"] != "1" {
		t.Fatal("Tx.Put aliases caller memory")
	}
}

func TestDelete(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	if _, err := d.Commit(d.NewTx().Put("x", "k", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(d.NewTx().Delete("x", "k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get("x", "k"); ok {
		t.Fatal("deleted row still present")
	}
}

func TestScanPrefixSorted(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	tx := d.NewTx()
	for _, k := range []string{"ski:2", "ski:1", "skate:1", "luge:1"} {
		tx.Put("x", k, map[string]string{"k": k})
	}
	if _, err := d.Commit(tx); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Scan("x", "ski:")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Key != "ski:1" || rows[1].Key != "ski:2" {
		t.Fatalf("Scan = %v", rows)
	}
	all, _ := d.Scan("x", "")
	if len(all) != 4 {
		t.Fatalf("full scan = %d rows", len(all))
	}
}

func TestSubscribeDeliversInOrder(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	feed, cancel := d.Subscribe(4)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := d.Commit(d.NewTx().Put("x", fmt.Sprintf("k%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		tx := <-feed
		if tx.LSN != int64(i) {
			t.Fatalf("feed out of order: got LSN %d, want %d", tx.LSN, i)
		}
	}
}

func TestSubscribeSlowConsumerDoesNotBlockCommit(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	feed, cancel := d.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if _, err := d.Commit(d.NewTx().Put("x", "k", nil)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("commits blocked behind a slow subscriber")
	}
	// Now drain: all 100 must arrive, in order.
	for i := 1; i <= 100; i++ {
		select {
		case tx := <-feed:
			if tx.LSN != int64(i) {
				t.Fatalf("LSN %d, want %d", tx.LSN, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing transaction %d", i)
		}
	}
}

func TestSubscribeCancelClosesFeed(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	feed, cancel := d.Subscribe(2)
	cancel()
	cancel() // idempotent
	select {
	case _, ok := <-feed:
		if ok {
			t.Fatal("expected closed feed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("feed not closed after cancel")
	}
	// Commits after cancel must not panic or block.
	if _, err := d.Commit(d.NewTx().Put("x", "k", nil)); err != nil {
		t.Fatal(err)
	}
}

func TestCloseRejectsCommits(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	if _, err := d.Commit(d.NewTx().Put("x", "k", nil)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Commit(d.NewTx().Put("x", "k2", nil)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Reads still work.
	if _, ok, err := d.Get("x", "k"); !ok || err != nil {
		t.Fatal("reads should survive Close")
	}
}

func TestApplyOutOfOrderRejected(t *testing.T) {
	d := New("t")
	if err := d.Apply(Transaction{LSN: 2}); err == nil {
		t.Fatal("expected out-of-order rejection")
	}
	if err := d.Apply(Transaction{LSN: 1, Changes: []Change{{Table: "x", Key: "k", Op: OpPut}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(Transaction{LSN: 1}); err == nil {
		t.Fatal("expected duplicate rejection")
	}
}

func TestApplyAutoCreatesTables(t *testing.T) {
	d := New("t")
	err := d.Apply(Transaction{LSN: 1, Changes: []Change{
		{Table: "new", Key: "k", Op: OpPut, Cols: map[string]string{"a": "1"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r, ok, err := d.Get("new", "k")
	if err != nil || !ok || r.Cols["a"] != "1" {
		t.Fatalf("replicated row = %+v, %v, %v", r, ok, err)
	}
}

func TestLogSince(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	for i := 0; i < 5; i++ {
		if _, err := d.Commit(d.NewTx().Put("x", fmt.Sprintf("k%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	log := d.LogSince(3)
	if len(log) != 2 || log[0].LSN != 4 || log[1].LSN != 5 {
		t.Fatalf("LogSince(3) = %v", log)
	}
	if got := d.LogSince(99); len(got) != 0 {
		t.Fatalf("LogSince(99) = %v", got)
	}
}

func TestChangeID(t *testing.T) {
	c := Change{Table: "results", Key: "ev1"}
	if got := c.ChangeID(); got != "db:results:ev1" {
		t.Fatalf("ChangeID = %q", got)
	}
	if RowID("a", "b") != "db:a:b" {
		t.Fatal("RowID format drift")
	}
}

func TestOpString(t *testing.T) {
	if OpPut.String() != "put" || OpDelete.String() != "delete" {
		t.Fatal("Op.String drift")
	}
}

func TestReplicationCatchUpAndLive(t *testing.T) {
	master := New("master")
	master.CreateTable("x")
	// Pre-existing history before the replica attaches.
	for i := 0; i < 5; i++ {
		if _, err := master.Commit(master.NewTx().Put("x", fmt.Sprintf("old%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	replica := New("replica")
	r := StartReplication(master, replica)
	defer r.Stop()
	// Live traffic after attach.
	for i := 0; i < 5; i++ {
		if _, err := master.Commit(master.NewTx().Put("x", fmt.Sprintf("new%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if !r.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("replica lag = %d after timeout", r.Lag())
	}
	if n, _ := replica.Count("x"); n != 10 {
		t.Fatalf("replica rows = %d, want 10", n)
	}
}

func TestChainedReplication(t *testing.T) {
	// Nagano -> Schaumburg -> Columbus, as in Figure 5.
	nagano := New("nagano")
	nagano.CreateTable("x")
	schaumburg := New("schaumburg")
	columbus := New("columbus")
	r1 := StartReplication(nagano, schaumburg)
	defer r1.Stop()
	r2 := StartReplication(schaumburg, columbus)
	defer r2.Stop()
	for i := 0; i < 20; i++ {
		if _, err := nagano.Commit(nagano.NewTx().Put("x", fmt.Sprintf("k%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if columbus.LSN() == 20 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n, _ := columbus.Count("x"); n != 20 {
		t.Fatalf("columbus rows = %d, want 20", n)
	}
}

func TestReplicationDelayApplied(t *testing.T) {
	master := New("m")
	master.CreateTable("x")
	replica := New("r")
	var mu sync.Mutex
	var slept []time.Duration
	r := StartReplication(master, replica,
		WithDelay(7*time.Millisecond),
		WithSleep(func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		}))
	defer r.Stop()
	if _, err := master.Commit(master.NewTx().Put("x", "k", nil)); err != nil {
		t.Fatal(err)
	}
	if !r.WaitCaughtUp(5 * time.Second) {
		t.Fatal("not caught up")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != 7*time.Millisecond {
		t.Fatalf("slept = %v", slept)
	}
}

func TestReplicaHasOwnFeed(t *testing.T) {
	master := New("m")
	master.CreateTable("x")
	replica := New("r")
	feed, cancel := replica.Subscribe(8)
	defer cancel()
	r := StartReplication(master, replica)
	defer r.Stop()
	if _, err := master.Commit(master.NewTx().Put("x", "k", map[string]string{"a": "1"})); err != nil {
		t.Fatal(err)
	}
	select {
	case tx := <-feed:
		if tx.LSN != 1 || tx.Changes[0].Key != "k" {
			t.Fatalf("replica feed tx = %+v", tx)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replica feed silent")
	}
}

func TestConcurrentCommits(t *testing.T) {
	d := New("t")
	d.CreateTable("x")
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := d.Commit(d.NewTx().Put("x", fmt.Sprintf("w%d-%d", w, i), nil)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d.LSN() != workers*per {
		t.Fatalf("LSN = %d, want %d", d.LSN(), workers*per)
	}
	if n, _ := d.Count("x"); n != workers*per {
		t.Fatalf("rows = %d, want %d", n, workers*per)
	}
	// The log must contain exactly one transaction per LSN, in order.
	log := d.LogSince(0)
	for i, tx := range log {
		if tx.LSN != int64(i+1) {
			t.Fatalf("log[%d].LSN = %d", i, tx.LSN)
		}
	}
}

// Property: replaying a master's log into a fresh DB via Apply produces
// identical table contents (replication is deterministic).
func TestReplayEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New("m")
		m.CreateTable("x")
		for i := 0; i < 100; i++ {
			tx := m.NewTx()
			for j := 0; j <= rng.Intn(3); j++ {
				k := fmt.Sprintf("k%d", rng.Intn(20))
				if rng.Intn(4) == 0 {
					tx.Delete("x", k)
				} else {
					tx.Put("x", k, map[string]string{"v": fmt.Sprint(rng.Intn(1000))})
				}
			}
			if _, err := m.Commit(tx); err != nil {
				return false
			}
		}
		r := New("r")
		for _, tx := range m.LogSince(0) {
			if err := r.Apply(tx); err != nil {
				return false
			}
		}
		mrows, _ := m.Scan("x", "")
		rrows, _ := r.Scan("x", "")
		if len(mrows) != len(rrows) {
			return false
		}
		for i := range mrows {
			if mrows[i].Key != rrows[i].Key || mrows[i].Cols["v"] != rrows[i].Cols["v"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommitSingleRow(b *testing.B) {
	d := New("b")
	d.CreateTable("x")
	cols := map[string]string{"score": "9.81", "rank": "1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Commit(d.NewTx().Put("x", "k", cols)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	d := New("b")
	d.CreateTable("x")
	if _, err := d.Commit(d.NewTx().Put("x", "k", map[string]string{"a": "1"})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Get("x", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCommitMintsUniqueTraceIDs(t *testing.T) {
	d := New("t")
	d.CreateTable("r")
	seen := make(map[int64]bool)
	for i := 0; i < 10; i++ {
		tx, err := d.Commit(d.NewTx().Put("r", "k", map[string]string{"v": "1"}))
		if err != nil {
			t.Fatal(err)
		}
		if tx.TraceID == 0 {
			t.Fatal("commit did not mint a TraceID")
		}
		if seen[tx.TraceID] {
			t.Fatalf("duplicate TraceID %d", tx.TraceID)
		}
		seen[tx.TraceID] = true
	}
}

func TestApplyPreservesTraceID(t *testing.T) {
	master := New("m")
	master.CreateTable("r")
	tx, err := master.Commit(master.NewTx().Put("r", "k", map[string]string{"v": "1"}))
	if err != nil {
		t.Fatal(err)
	}
	replica := New("rep")
	if err := replica.Apply(tx); err != nil {
		t.Fatal(err)
	}
	got := replica.LogSince(0)
	if len(got) != 1 || got[0].TraceID != tx.TraceID {
		t.Fatalf("replica log TraceID = %+v, want %d (identity must survive log shipping)", got, tx.TraceID)
	}
}
