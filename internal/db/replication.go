package db

import (
	"errors"
	"sync"
	"time"
)

// Target is the receiving end of replication: apply one transaction, report
// the highest LSN applied. A *DB is a Target (the in-process wiring the
// simulations use); wire.ReplicaClient is a Target that ships each
// transaction over TCP to a replica in another process.
type Target interface {
	Apply(Transaction) error
	LSN() int64
}

// Replicator ships committed transactions from a master database to a
// replica, mirroring Figure 5 of the paper (master in Nagano -> Tokyo and
// Schaumburg -> Columbus and Bethesda). A replicator first catches the
// replica up from the master's retained log, then applies the live feed in
// LSN order, optionally delaying each transaction to model WAN propagation.
//
// Replicas are ordinary *DB values, so they have their own CDC feeds: the
// per-complex trigger monitors subscribe to their local replica exactly as
// the paper describes, and chained replication (Schaumburg fanning out to
// the US east-coast sites) is just a Replicator whose master is itself a
// replica.
type Replicator struct {
	master      *DB
	replica     Target
	delay       func(Transaction) time.Duration
	sleep       func(time.Duration)
	partitioned func() bool

	cancel   func()
	done     chan struct{}
	quit     chan struct{}
	quitOnce sync.Once

	mu      sync.Mutex
	applied int64
	stopped bool
}

// ReplOption configures a Replicator.
type ReplOption func(*Replicator)

// WithDelay applies a fixed propagation delay to every transaction.
func WithDelay(d time.Duration) ReplOption {
	return func(r *Replicator) { r.delay = func(Transaction) time.Duration { return d } }
}

// WithDelayFunc computes a per-transaction propagation delay.
func WithDelayFunc(f func(Transaction) time.Duration) ReplOption {
	return func(r *Replicator) { r.delay = f }
}

// WithSleep substitutes the sleep implementation (tests use a recorder; the
// discrete-event simulation bypasses Replicator entirely and calls Apply on
// its own clock).
func WithSleep(f func(time.Duration)) ReplOption {
	return func(r *Replicator) { r.sleep = f }
}

// WithPartitionCheck installs a link-partition predicate (fault injection).
// While it reports true, the replicator holds delivery — committed
// transactions queue on the master's feed and retained log — and resumes
// shipping in order once the partition heals. Nothing is lost: a partition
// delays propagation, exactly like the paper's WAN hiccups between Nagano
// and the US complexes.
func WithPartitionCheck(f func() bool) ReplOption {
	return func(r *Replicator) { r.partitioned = f }
}

// StartReplication begins shipping master's log to replica and returns the
// running Replicator. The caller must Stop it to release the feed.
func StartReplication(master, replica *DB, opts ...ReplOption) *Replicator {
	return StartReplicationTo(master, replica, opts...)
}

// StartReplicationTo begins shipping master's log to an arbitrary Target —
// a local *DB or a wire client fronting a replica in another process. Apply
// errors that expose `Transient() bool` (transport failures: the link is
// down, not the log broken) park delivery and retry the same transaction in
// order until it lands or Stop is called, preserving the partition
// semantics of local replication: committed transactions queue, nothing is
// lost, the replica catches up when the path heals.
func StartReplicationTo(master *DB, replica Target, opts ...ReplOption) *Replicator {
	r := &Replicator{
		master:  master,
		replica: replica,
		delay:   func(Transaction) time.Duration { return 0 },
		sleep:   time.Sleep,
		done:    make(chan struct{}),
		quit:    make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	feed, cancel := master.Subscribe(256)
	r.cancel = cancel

	go func() {
		defer close(r.done)
		// Catch up from the retained log first. Transactions that race onto
		// the feed during catch-up are filtered below by LSN.
		for _, tx := range master.LogSince(replica.LSN()) {
			if !r.ship(tx) {
				return
			}
		}
		for tx := range feed {
			if tx.LSN <= replica.LSN() {
				continue // already applied during catch-up
			}
			if !r.ship(tx) {
				return
			}
		}
	}()
	return r
}

// ship delivers one transaction to the replica, holding first while the
// link is partitioned. Returns false when the replicator should stop
// (Stop was called mid-hold, or the replica rejected the transaction).
func (r *Replicator) ship(tx Transaction) bool {
	for r.partitioned != nil && r.partitioned() {
		select {
		case <-r.quit:
			return false
		default:
		}
		// Poll on the wall clock (not r.sleep, which tests may stub to a
		// no-op) so a partition hold never becomes a busy spin.
		time.Sleep(200 * time.Microsecond)
	}
	if d := r.delay(tx); d > 0 {
		r.sleep(d)
	}
	r.apply(tx)
	r.mu.Lock()
	stopped := r.stopped
	r.mu.Unlock()
	return !stopped
}

func (r *Replicator) apply(tx Transaction) {
	backoff := time.Millisecond
	for {
		err := r.replica.Apply(tx)
		if err == nil {
			r.mu.Lock()
			r.applied = tx.LSN
			r.mu.Unlock()
			return
		}
		var t interface{ Transient() bool }
		if errors.As(err, &t) && t.Transient() {
			// The target is unreachable, not wrong: park and retry this
			// transaction so delivery stays in LSN order, exactly like the
			// partition hold in ship. Check quit so Stop stays prompt.
			select {
			case <-r.quit:
				r.mu.Lock()
				r.stopped = true
				r.mu.Unlock()
				return
			default:
			}
			time.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		// Non-transient Apply failures are LSN gaps (a replication bug) or a
		// closed replica (a simulated complex failure). Either way the
		// replicator must not silently skip: record and stop consuming.
		r.mu.Lock()
		r.stopped = true
		r.mu.Unlock()
		r.cancel()
		return
	}
}

// Lag returns how many transactions the replica trails the master by.
func (r *Replicator) Lag() int64 {
	return r.master.LSN() - r.replica.LSN()
}

// Applied returns the highest LSN the replicator has applied.
func (r *Replicator) Applied() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Stop unsubscribes from the master and waits for the shipping goroutine to
// drain. Safe to call multiple times. A replicator held by a partition
// check stops promptly without waiting for the partition to heal.
func (r *Replicator) Stop() {
	r.quitOnce.Do(func() { close(r.quit) })
	r.cancel()
	<-r.done
}

// WaitCaughtUp blocks until the replica has applied every transaction the
// master had committed at call time, or the timeout elapses. It reports
// whether catch-up completed.
func (r *Replicator) WaitCaughtUp(timeout time.Duration) bool {
	target := r.master.LSN()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.replica.LSN() >= target {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return r.replica.LSN() >= target
}
