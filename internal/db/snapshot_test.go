package db

import (
	"bytes"
	"fmt"
	"testing"
)

func seeded(t *testing.T, n int) *DB {
	t.Helper()
	d := New("m")
	d.CreateTable("x")
	for i := 0; i < n; i++ {
		if _, err := d.Commit(d.NewTx().Put("x", fmt.Sprintf("k%d", i), map[string]string{"v": fmt.Sprint(i)})); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := seeded(t, 10)
	snap := m.Snapshot()
	if snap.LSN != 10 || len(snap.Tables["x"]) != 10 {
		t.Fatalf("snapshot = LSN %d, %d rows", snap.LSN, len(snap.Tables["x"]))
	}
	r := New("r")
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if r.LSN() != 10 {
		t.Fatalf("restored LSN = %d", r.LSN())
	}
	row, ok, err := r.Get("x", "k3")
	if err != nil || !ok || row.Cols["v"] != "3" {
		t.Fatalf("restored row = %+v %v %v", row, ok, err)
	}
	// The replica continues from LSN 11 via Apply.
	if err := r.Apply(Transaction{LSN: 11, Changes: []Change{{Table: "x", Key: "new", Op: OpPut}}}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := seeded(t, 1)
	snap := m.Snapshot()
	snap.Tables["x"][0].Cols["v"] = "mutated"
	row, _, _ := m.Get("x", "k0")
	if row.Cols["v"] != "0" {
		t.Fatal("snapshot aliases database memory")
	}
}

func TestRestoreRejectsNonEmpty(t *testing.T) {
	m := seeded(t, 2)
	if err := m.Restore(m.Snapshot()); err == nil {
		t.Fatal("restore into non-empty database accepted")
	}
	closed := New("c")
	closed.Close()
	if err := closed.Restore(Snapshot{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSnapshotSerialization(t *testing.T) {
	m := seeded(t, 5)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 5 || len(got.Tables["x"]) != 5 {
		t.Fatalf("decoded snapshot = %+v", got)
	}
	if _, err := ReadSnapshot(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestTruncateLog(t *testing.T) {
	m := seeded(t, 10)
	if dropped := m.TruncateLog(4); dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
	if got := m.OldestRetainedLSN(); got != 5 {
		t.Fatalf("oldest = %d, want 5", got)
	}
	if log := m.LogSince(0); len(log) != 6 || log[0].LSN != 5 {
		t.Fatalf("log = %d entries from %d", len(log), log[0].LSN)
	}
	if dropped := m.TruncateLog(4); dropped != 0 {
		t.Fatalf("second truncate dropped %d", dropped)
	}
}

func TestOldestRetainedEmpty(t *testing.T) {
	d := New("e")
	if d.OldestRetainedLSN() != 0 {
		t.Fatal("empty log should report 0")
	}
}

func TestBootstrapFromSnapshotThenLiveFeed(t *testing.T) {
	// The mid-games replica bootstrap: snapshot, truncated master log, then
	// live replication.
	m := seeded(t, 20)
	snap := m.Snapshot()
	m.TruncateLog(20) // history before the snapshot is gone

	r := New("late-replica")
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	repl := StartReplication(m, r)
	defer repl.Stop()
	for i := 0; i < 5; i++ {
		if _, err := m.Commit(m.NewTx().Put("x", fmt.Sprintf("live%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if !repl.WaitCaughtUp(5e9) {
		t.Fatal("late replica never caught up")
	}
	if n, _ := r.Count("x"); n != 25 {
		t.Fatalf("replica rows = %d, want 25", n)
	}
}
