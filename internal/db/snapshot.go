package db

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a consistent full copy of a database at one LSN, suitable for
// bootstrapping a replica without replaying the whole transaction log —
// how a complex joining mid-games would initialize before switching to the
// live feed.
type Snapshot struct {
	Name   string           `json:"name"`
	LSN    int64            `json:"lsn"`
	Tables map[string][]Row `json:"tables"`
}

// Snapshot captures the current state. Rows are deep copies; mutating them
// does not affect the database.
func (d *DB) Snapshot() Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := Snapshot{Name: d.name, LSN: d.lsn, Tables: make(map[string][]Row, len(d.tables))}
	for name, t := range d.tables {
		rows := make([]Row, 0, len(t.rows))
		for _, r := range t.rows {
			rows = append(rows, r.clone())
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		s.Tables[name] = rows
	}
	return s
}

// Restore replaces the database's contents with the snapshot and sets its
// LSN, so subsequent Apply calls continue from snapshot.LSN+1. Restoring
// into a database that has already committed transactions is rejected: a
// replica bootstraps once, before attaching to a feed.
func (d *DB) Restore(s Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.lsn != 0 || len(d.log) != 0 {
		return fmt.Errorf("db: restore into non-empty database %q (LSN %d)", d.name, d.lsn)
	}
	d.tables = make(map[string]*table, len(s.Tables))
	for name, rows := range s.Tables {
		t := &table{name: name, rows: make(map[string]Row, len(rows))}
		for _, r := range rows {
			t.rows[r.Key] = r.clone()
		}
		d.tables[name] = t
	}
	d.lsn = s.LSN
	return nil
}

// WriteSnapshot serializes a snapshot as JSON.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("db: read snapshot: %w", err)
	}
	return s, nil
}

// TruncateLog discards retained transactions with LSN <= before, bounding
// the memory a long-running master spends on replica catch-up history.
// Replicas older than the truncation point must bootstrap from a Snapshot
// instead of LogSince. Returns the number of entries dropped.
func (d *DB) TruncateLog(before int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := sort.Search(len(d.log), func(i int) bool { return d.log[i].LSN > before })
	if i == 0 {
		return 0
	}
	dropped := i
	d.log = append([]Transaction(nil), d.log[i:]...)
	return dropped
}

// OldestRetainedLSN returns the LSN of the oldest retained log entry, or 0
// when the log is empty.
func (d *DB) OldestRetainedLSN() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.log) == 0 {
		return 0
	}
	return d.log[0].LSN
}
