// Package recovery implements the node-recovery protocol: warmup-gated
// readmission for serving nodes that rejoin the cluster after a failure.
//
// The paper's eviction half is instant — a failed node is pulled from the
// Network Dispatcher's distribution list the moment a request or probe dies
// on it — but a rebooted node's memory-resident cache is gone, and letting
// it straight back into the pool invites a miss storm (every request a
// render) or, worse, stale serves if anything old survived. A Warmer closes
// that gap: before the node reports ready it pins the replica's current LSN
// as a floor, rebuilds the full page set — preferring copies from healthy
// peers' caches, which kept receiving trigger-monitor pushes while the node
// was dead, and re-rendering at the floor for anything no peer holds —
// re-attaches the cache to the complex's broadcast group, and replays
// retained log entries committed past the pin. A readmitted node therefore
// never serves a page older than what it served before dying: peer copies
// are at least as new as the node's pre-failure copies, and renders are
// stamped at or past the floor.
//
// The dispatcher side of the protocol (probe hysteresis, the slow-start
// weight ramp, flap damping) lives in internal/dispatch.HealthPolicy;
// Policy here carries both halves so deploy.WithRecovery can wire them
// together.
package recovery

import (
	"fmt"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/stats"
)

// Policy configures the recovery protocol for a deployment.
type Policy struct {
	// Warm gates readmission on a cache rebuild to the pinned LSN floor.
	// False keeps readmission cold (the node rejoins with an empty cache) —
	// the baseline the recovery benchmark compares against.
	Warm bool

	// Dispatcher probation knobs, mirrored into dispatch.HealthPolicy:
	// FailThreshold consecutive bad probe observations evict,
	// ReadmitThreshold consecutive good ones begin readmission at RampStart
	// traffic share growing by RampFactor per sweep, and a re-eviction
	// within FlapWindow good observations of readmission earns a quarantine
	// of QuarantineBase sweeps, doubling per flap up to QuarantineMax.
	FailThreshold    int
	ReadmitThreshold int
	RampStart        float64
	RampFactor       float64
	FlapWindow       int
	QuarantineBase   int
	QuarantineMax    int
}

// DefaultPolicy returns a production-shaped policy: warmup on, two-probe
// hysteresis both ways, a quarter-weight slow start doubling per sweep, and
// flap damping from two quarantine sweeps up to sixteen.
func DefaultPolicy() Policy {
	return Policy{
		Warm:             true,
		FailThreshold:    2,
		ReadmitThreshold: 2,
		RampStart:        0.25,
		RampFactor:       2,
		FlapWindow:       4,
		QuarantineBase:   2,
		QuarantineMax:    16,
	}
}

// Config wires one node's Warmer. Everything is a closure so the package
// depends only on cache and db: deploy builds the closures from the
// complex's site, graph, replica, and cache group.
type Config struct {
	// Node names the recovering node (reports, metrics).
	Node string
	// Cache is the node's (cleared) cache to rebuild.
	Cache *cache.Cache
	// Peers returns the healthy peers' caches to restore from. A downed
	// node's cache is detached from the broadcast group, so the group's
	// remaining members are exactly the caches that stayed fresh.
	Peers func() []*cache.Cache
	// Pages returns the full page set to rebuild.
	Pages func() []string
	// Render regenerates one page at a version (the site builder's fragment
	// engine against the replica — the db.Snapshot-equivalent rebuild path
	// for pages no peer holds).
	Render func(path string, version int64) (*cache.Object, error)
	// CurrentLSN returns the replica's current LSN (the warmup pins this as
	// the floor).
	CurrentLSN func() int64
	// LogSince returns the replica's retained log entries past an LSN, for
	// the replay that closes the gap between the pin and the re-attach.
	LogSince func(after int64) []db.Transaction
	// AffectedPages maps a replayed transaction to the pages it obsoletes
	// (the site indexer composed with the ODG's Affected closure).
	AffectedPages func(tx db.Transaction) []string
	// Attach re-attaches the node's cache to the broadcast group once
	// restored, so trigger-monitor pushes reach it again. May be nil.
	Attach func()
	// Cold skips the rebuild entirely: the warmup only re-attaches the
	// empty cache (the benchmark's cold-readmission baseline).
	Cold bool
	// Clock stamps the warmup duration (default time.Now).
	Clock func() time.Time
	// Metrics, when set, accumulates recovery_* counters across warmups.
	Metrics *Metrics
}

// Report describes one completed warmup.
type Report struct {
	Node string
	// Cold reports whether the rebuild was skipped (Policy.Warm == false).
	Cold bool
	// FloorLSN is the pinned floor: the replica's LSN when the warmup
	// started. Every restored page is at least this fresh or provably
	// unchanged since an older LSN a peer served.
	FloorLSN int64
	// FinalLSN is the replica's LSN when the warmup finished (>= FloorLSN;
	// the replay covered the difference).
	FinalLSN int64
	// Pages is the size of the rebuilt page set.
	Pages int
	// FromPeer counts pages restored by copying a healthy peer's cache
	// entry; Rendered counts pages re-rendered at the floor because no peer
	// held them.
	FromPeer int
	Rendered int
	// ReplayedTx and ReplayedPages count the retained-log replay past the
	// pin: transactions examined and pages re-rendered because a commit
	// landed between the pin and the re-attach.
	ReplayedTx    int
	ReplayedPages int
	// Duration is the wall-clock warmup time.
	Duration time.Duration
}

// Warmer rebuilds one node's cache for readmission. Safe to reuse across
// fail/recover cycles; each Warm call pins a fresh floor.
type Warmer struct {
	cfg Config
}

// New returns a Warmer over cfg.
func New(cfg Config) *Warmer {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Warmer{cfg: cfg}
}

// Warm performs one warmup: pin the floor, restore every page (peer copy
// first, floor render as fallback), re-attach the cache to the broadcast
// group, and replay retained log entries past the pin. On error the cache
// is left detached and the node must stay down.
func (w *Warmer) Warm() (Report, error) {
	cfg := w.cfg
	start := cfg.Clock()
	rep := Report{Node: cfg.Node, Cold: cfg.Cold}

	if cfg.Cold {
		if cfg.Attach != nil {
			cfg.Attach()
		}
		rep.Duration = cfg.Clock().Sub(start)
		if cfg.Metrics != nil {
			cfg.Metrics.observe(rep, nil)
		}
		return rep, nil
	}

	rep.FloorLSN = cfg.CurrentLSN()
	pages := cfg.Pages()
	rep.Pages = len(pages)
	var peers []*cache.Cache
	if cfg.Peers != nil {
		peers = cfg.Peers()
	}
	for _, p := range pages {
		if obj := newestPeerCopy(peers, cache.Key(p)); obj != nil {
			// Store a copy of the metadata (sharing the value bytes), the
			// same discipline as Group.BroadcastPut, so caches never alias
			// each other's Object structs.
			cfg.Cache.Put(obj.Copy())
			rep.FromPeer++
			continue
		}
		obj, err := cfg.Render(p, rep.FloorLSN)
		if err != nil {
			err = fmt.Errorf("recovery: warm %s: render %s: %w", cfg.Node, p, err)
			if cfg.Metrics != nil {
				cfg.Metrics.observe(rep, err)
			}
			return rep, err
		}
		cfg.Cache.Put(obj)
		rep.Rendered++
	}
	if cfg.Attach != nil {
		cfg.Attach()
	}
	// Replay commits that landed after the pin: broadcasts since the
	// re-attach already cover the newest of them, so only pages whose
	// cached copy is still older than the replayed commit re-render.
	if cfg.LogSince != nil && cfg.AffectedPages != nil {
		for _, tx := range cfg.LogSince(rep.FloorLSN) {
			rep.ReplayedTx++
			for _, p := range cfg.AffectedPages(tx) {
				if cur, ok := cfg.Cache.Peek(cache.Key(p)); ok && cur.Version >= tx.LSN {
					continue
				}
				obj, err := cfg.Render(p, tx.LSN)
				if err != nil {
					err = fmt.Errorf("recovery: warm %s: replay %s@%d: %w", cfg.Node, p, tx.LSN, err)
					if cfg.Metrics != nil {
						cfg.Metrics.observe(rep, err)
					}
					return rep, err
				}
				cfg.Cache.Put(obj)
				rep.ReplayedPages++
			}
		}
	}
	rep.FinalLSN = cfg.CurrentLSN()
	rep.Duration = cfg.Clock().Sub(start)
	if cfg.Metrics != nil {
		cfg.Metrics.observe(rep, nil)
	}
	return rep, nil
}

// newestPeerCopy returns the freshest copy of key among peers, or nil.
func newestPeerCopy(peers []*cache.Cache, key cache.Key) *cache.Object {
	var best *cache.Object
	for _, p := range peers {
		if obj, ok := p.Peek(key); ok {
			if best == nil || obj.Version > best.Version {
				best = obj
			}
		}
	}
	return best
}

// Metrics accumulates recovery counters across a complex's warmups. The
// readmission and flap counters are fed by the dispatcher's state-change
// hook (deploy wires both sides).
type Metrics struct {
	Warmups              stats.Counter
	WarmupFailures       stats.Counter
	PagesFromPeer        stats.Counter
	PagesRendered        stats.Counter
	ReplayedTransactions stats.Counter
	ReplayedPages        stats.Counter
	Readmissions         stats.Counter
	FlapQuarantines      stats.Counter
	WarmupSeconds        *stats.Histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		WarmupSeconds: stats.NewHistogram(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
	}
}

func (m *Metrics) observe(rep Report, err error) {
	if err != nil {
		m.WarmupFailures.Inc()
		return
	}
	m.Warmups.Inc()
	m.PagesFromPeer.Add(int64(rep.FromPeer))
	m.PagesRendered.Add(int64(rep.Rendered))
	m.ReplayedTransactions.Add(int64(rep.ReplayedTx))
	m.ReplayedPages.Add(int64(rep.ReplayedPages))
	m.WarmupSeconds.Observe(rep.Duration.Seconds())
}

// Register publishes the recovery_* metric families into a registry.
// labels (may be nil) are attached to every series.
func (m *Metrics) Register(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("recovery_warmups_total",
		"node warmups completed before readmission", labels, &m.Warmups)
	reg.RegisterCounter("recovery_warmup_failures_total",
		"node warmups that failed (the node stayed down)", labels, &m.WarmupFailures)
	reg.RegisterCounter("recovery_pages_from_peer_total",
		"pages restored by copying a healthy peer's cache entry", labels, &m.PagesFromPeer)
	reg.RegisterCounter("recovery_pages_rendered_total",
		"pages re-rendered at the pinned LSN floor during warmup", labels, &m.PagesRendered)
	reg.RegisterCounter("recovery_replayed_transactions_total",
		"retained-log transactions replayed past the pinned floor", labels, &m.ReplayedTransactions)
	reg.RegisterCounter("recovery_replayed_pages_total",
		"pages re-rendered by the post-attach log replay", labels, &m.ReplayedPages)
	reg.RegisterCounter("recovery_readmissions_total",
		"nodes readmitted to the distribution list after eviction", labels, &m.Readmissions)
	reg.RegisterCounter("recovery_flap_quarantines_total",
		"flap-damping quarantines imposed on repeatedly failing nodes", labels, &m.FlapQuarantines)
	reg.RegisterHistogram("recovery_warmup_seconds",
		"wall-clock duration of node warmups", labels, m.WarmupSeconds)
}
