package recovery

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/stats"
)

// harness builds a Warmer over synthetic closures: a page set, peer caches,
// a render function stamping the requested version, and a retained log.
type harness struct {
	cache   *cache.Cache
	peers   []*cache.Cache
	pages   []string
	lsn     int64
	log     []db.Transaction
	renders []string
	renderE error
	attach  int
}

func newHarness(pages ...string) *harness {
	return &harness{
		cache: cache.New("victim"),
		pages: pages,
		lsn:   10,
	}
}

func (h *harness) addPeer(name string, versions map[string]int64) *cache.Cache {
	c := cache.New(name)
	for p, v := range versions {
		c.Put(&cache.Object{Key: cache.Key(p), Value: []byte(name + ":" + p), Version: v})
	}
	h.peers = append(h.peers, c)
	return c
}

func (h *harness) config() Config {
	return Config{
		Node:  "victim",
		Cache: h.cache,
		Peers: func() []*cache.Cache { return h.peers },
		Pages: func() []string { return h.pages },
		Render: func(path string, version int64) (*cache.Object, error) {
			if h.renderE != nil {
				return nil, h.renderE
			}
			h.renders = append(h.renders, path)
			return &cache.Object{Key: cache.Key(path), Value: []byte("render:" + path), Version: version}, nil
		},
		CurrentLSN: func() int64 { return h.lsn },
		LogSince: func(after int64) []db.Transaction {
			var out []db.Transaction
			for _, tx := range h.log {
				if tx.LSN > after {
					out = append(out, tx)
				}
			}
			return out
		},
		AffectedPages: func(tx db.Transaction) []string {
			var out []string
			for _, ch := range tx.Changes {
				out = append(out, ch.Key)
			}
			return out
		},
		Attach: func() { h.attach++ },
	}
}

func TestWarmRestoresFromPeers(t *testing.T) {
	h := newHarness("/a", "/b")
	h.addPeer("p1", map[string]int64{"/a": 5, "/b": 7})
	h.addPeer("p2", map[string]int64{"/a": 9}) // newer copy of /a

	rep, err := New(h.config()).Warm()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromPeer != 2 || rep.Rendered != 0 {
		t.Fatalf("from_peer=%d rendered=%d, want 2/0", rep.FromPeer, rep.Rendered)
	}
	if rep.FloorLSN != 10 || rep.FinalLSN != 10 {
		t.Fatalf("floor=%d final=%d, want 10/10", rep.FloorLSN, rep.FinalLSN)
	}
	if h.attach != 1 {
		t.Fatalf("attach calls = %d, want 1", h.attach)
	}
	// The newest peer copy wins.
	obj, ok := h.cache.Peek(cache.Key("/a"))
	if !ok || obj.Version != 9 {
		t.Fatalf("restored /a version = %v, want 9 (newest peer)", obj)
	}
	// Restored objects are copies of the peer's metadata, not aliases.
	p2obj, _ := h.peers[1].Peek(cache.Key("/a"))
	if obj == p2obj {
		t.Fatal("restored object aliases the peer's Object struct")
	}
}

func TestWarmRendersAtFloorWhenNoPeerHolds(t *testing.T) {
	h := newHarness("/a", "/b")
	h.addPeer("p1", map[string]int64{"/a": 5})

	rep, err := New(h.config()).Warm()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromPeer != 1 || rep.Rendered != 1 {
		t.Fatalf("from_peer=%d rendered=%d, want 1/1", rep.FromPeer, rep.Rendered)
	}
	obj, ok := h.cache.Peek(cache.Key("/b"))
	if !ok || obj.Version != 10 {
		t.Fatalf("rendered /b = %+v, want version 10 (the pinned floor)", obj)
	}
}

func TestWarmReplaysLogPastFloor(t *testing.T) {
	h := newHarness("/a", "/b")
	h.addPeer("p1", map[string]int64{"/a": 5, "/b": 5})
	// Two commits past the pin: LSN 11 touches /a, LSN 12 touches /b. The
	// peer copies predate both, so the replay re-renders each page.
	h.log = []db.Transaction{
		{LSN: 11, Changes: []db.Change{{Key: "/a"}}},
		{LSN: 12, Changes: []db.Change{{Key: "/b"}}},
	}

	rep, err := New(h.config()).Warm()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplayedTx != 2 || rep.ReplayedPages != 2 {
		t.Fatalf("replayed_tx=%d replayed_pages=%d, want 2/2", rep.ReplayedTx, rep.ReplayedPages)
	}
	if obj, _ := h.cache.Peek(cache.Key("/a")); obj.Version != 11 {
		t.Fatalf("/a version = %d, want 11", obj.Version)
	}
	if obj, _ := h.cache.Peek(cache.Key("/b")); obj.Version != 12 {
		t.Fatalf("/b version = %d, want 12", obj.Version)
	}
}

func TestWarmReplaySkipsFresherCopies(t *testing.T) {
	h := newHarness("/a")
	// The peer already holds /a at LSN 12 (a broadcast landed after the
	// change committed); replaying LSN 11 must not regress it.
	h.addPeer("p1", map[string]int64{"/a": 12})
	h.log = []db.Transaction{{LSN: 11, Changes: []db.Change{{Key: "/a"}}}}

	rep, err := New(h.config()).Warm()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplayedTx != 1 || rep.ReplayedPages != 0 {
		t.Fatalf("replayed_tx=%d replayed_pages=%d, want 1/0 (version guard)", rep.ReplayedTx, rep.ReplayedPages)
	}
	if obj, _ := h.cache.Peek(cache.Key("/a")); obj.Version != 12 {
		t.Fatalf("/a version = %d, want 12 (not regressed)", obj.Version)
	}
}

// TestWarmLSNFloorInvariant is the acceptance property: whatever mix of
// peer copies and renders the warmup used, no restored page is older than
// the pinned floor OR the newest peer copy available — a readmitted node
// never serves a page older than what the cluster already served.
func TestWarmLSNFloorInvariant(t *testing.T) {
	pages := make([]string, 8)
	for i := range pages {
		pages[i] = fmt.Sprintf("/p%d", i)
	}
	h := newHarness(pages...)
	// A peer with a scattered mix of versions; half the pages missing.
	held := map[string]int64{}
	for i, p := range pages {
		if i%2 == 0 {
			held[p] = int64(3 + i)
		}
	}
	h.addPeer("p1", held)

	rep, err := New(h.config()).Warm()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		obj, ok := h.cache.Peek(cache.Key(p))
		if !ok {
			t.Fatalf("page %s not restored", p)
		}
		floor := rep.FloorLSN
		if v, fromPeer := held[p]; fromPeer {
			floor = v
		}
		if obj.Version < floor {
			t.Errorf("page %s restored at %d, below its floor %d", p, obj.Version, floor)
		}
	}
}

func TestColdWarmupOnlyAttaches(t *testing.T) {
	h := newHarness("/a", "/b")
	h.addPeer("p1", map[string]int64{"/a": 5, "/b": 5})
	cfg := h.config()
	cfg.Cold = true

	rep, err := New(cfg).Warm()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cold || rep.FromPeer != 0 || rep.Rendered != 0 {
		t.Fatalf("cold report = %+v, want no restore work", rep)
	}
	if h.attach != 1 {
		t.Fatalf("attach calls = %d, want 1", h.attach)
	}
	if _, ok := h.cache.Peek(cache.Key("/a")); ok {
		t.Fatal("cold warmup restored a page")
	}
}

func TestWarmRenderErrorAborts(t *testing.T) {
	h := newHarness("/a")
	h.renderE = errors.New("replica gone")

	m := NewMetrics()
	cfg := h.config()
	cfg.Metrics = m
	_, err := New(cfg).Warm()
	if err == nil || !strings.Contains(err.Error(), "replica gone") {
		t.Fatalf("err = %v, want render failure", err)
	}
	if h.attach != 0 {
		t.Fatal("failed warmup attached the cache anyway")
	}
	if m.WarmupFailures.Value() != 1 || m.Warmups.Value() != 0 {
		t.Fatalf("failures=%d warmups=%d, want 1/0", m.WarmupFailures.Value(), m.Warmups.Value())
	}
}

func TestMetricsAccumulateAndRegister(t *testing.T) {
	h := newHarness("/a", "/b")
	h.addPeer("p1", map[string]int64{"/a": 5})
	m := NewMetrics()
	cfg := h.config()
	cfg.Metrics = m

	if _, err := New(cfg).Warm(); err != nil {
		t.Fatal(err)
	}
	if m.Warmups.Value() != 1 || m.PagesFromPeer.Value() != 1 || m.PagesRendered.Value() != 1 {
		t.Fatalf("metrics = warmups:%d from_peer:%d rendered:%d, want 1/1/1",
			m.Warmups.Value(), m.PagesFromPeer.Value(), m.PagesRendered.Value())
	}

	reg := stats.NewRegistry()
	m.Register(reg, stats.Labels{"complex": "tokyo"})
	var names []string
	for _, fam := range reg.Snapshot() {
		names = append(names, fam.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{
		"recovery_warmups_total", "recovery_warmup_failures_total",
		"recovery_pages_from_peer_total", "recovery_pages_rendered_total",
		"recovery_replayed_transactions_total", "recovery_replayed_pages_total",
		"recovery_readmissions_total", "recovery_flap_quarantines_total",
		"recovery_warmup_seconds",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("registry missing family %s", want)
		}
	}
}

func TestDefaultPolicyShape(t *testing.T) {
	p := DefaultPolicy()
	if !p.Warm {
		t.Error("default policy must warm")
	}
	if p.FailThreshold < 1 || p.ReadmitThreshold < 1 {
		t.Error("default thresholds must be positive")
	}
	if p.RampStart <= 0 || p.RampStart > 1 || p.RampFactor <= 1 {
		t.Errorf("default ramp %v/%v out of range", p.RampStart, p.RampFactor)
	}
	if p.QuarantineMax < p.QuarantineBase {
		t.Error("quarantine cap below base")
	}
}
