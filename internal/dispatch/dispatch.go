// Package dispatch implements the connection-routing layer of section 4.2
// of the paper: IBM's Interactive Network Dispatcher (ND) with its
// Interactive Session Support (ISS) advisors.
//
// A Dispatcher fronts a pool of serving nodes, forwarding each request to
// the node with the fewest outstanding requests (load-based distribution).
// Advisors probe node health; a node that fails a probe — or fails while
// serving — is immediately pulled from the distribution list, and requests
// in flight fail over to the surviving nodes. That instant-eviction plus
// retry behaviour is the bottom layer of the paper's "elegant degradation".
//
// # Pick-path concurrency
//
// Request routing is lock-free: the distribution list is an immutable
// snapshot swapped atomically (RCU-style) whenever membership or probation
// state changes. A pick reads the current snapshot, scans it with atomic
// per-member counters (outstanding work, slow-start credit, cached load
// signal), and never takes the dispatcher lock — so routing does not
// serialize concurrent requests, and two requests never observe a torn
// member list. The lock still guards the slow path: membership changes,
// the probation state machine, and advisor sweeps. Each member's overload
// signal is cached in the snapshot's atomics and refreshed when a request
// completes on that member and on every advisor observation, so the pick
// path never calls into a node's limiter.
//
// Dispatcher itself satisfies the Node interface, so dispatchers compose:
// the routing layer treats a whole complex (one dispatcher over many
// serving nodes) as a single node, mirroring Figure 19.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
	"dupserve/internal/obs"
	"dupserve/internal/stats"
)

// Node is anything that can satisfy a request: an httpserver.Server, a
// simulated cluster node, or another Dispatcher.
type Node interface {
	Name() string
	Serve(path string) (*cache.Object, httpserver.Outcome, error)
}

// ctxServer is the optional interface through which a node accepts the
// request context carrying the serve span. httpserver.Server, cluster.Node
// and Dispatcher itself implement it; nodes without it are served through
// plain Serve and simply record no node-side stages.
type ctxServer interface {
	ServeCtx(ctx context.Context, path string) (*cache.Object, httpserver.Outcome, error)
}

// loadSignaler is the optional interface through which a node reports its
// overload signal (see overload.Limiter.Load): 0 idle, ~1 fully busy, >1
// queueing. The dispatcher's ISS advisors fold it into node selection so an
// overloaded node loses traffic before it starts shedding — the paper's
// load-based distribution reacting to render pressure, not just connection
// counts. httpserver.Server and nested Dispatchers both implement it.
type loadSignaler interface{ LoadSignal() float64 }

// Probe reports whether a node is healthy. The default probe asks the node
// directly when it can, and otherwise serves a synthetic request.
type Probe func(Node) bool

// ReadyReporter is the optional interface through which a node exposes a
// synthetic health check. Probing through it keeps advisor sweeps out of
// the serve path entirely: no served/hit counters move and no serve spans
// are minted on behalf of a probe. httpserver.Server, cluster.Node and
// Dispatcher itself implement it.
type ReadyReporter interface{ Ready() bool }

// DefaultProbe asks the node's synthetic health check when it implements
// ReadyReporter; only nodes without one fall back to serving "/" (where any
// outcome except an error counts as healthy).
func DefaultProbe(n Node) bool {
	if rr, ok := n.(ReadyReporter); ok {
		return rr.Ready()
	}
	_, outcome, _ := n.Serve("/")
	return outcome != httpserver.OutcomeError
}

// ErrNoBackends is returned when every node in the pool is down.
var ErrNoBackends = errors.New("dispatch: no healthy backends")

// MemberState is a pool member's position in the probation state machine.
type MemberState uint8

const (
	// StateUp: full member of the distribution list at its configured weight.
	StateUp MemberState = iota
	// StateProbation: readmitted but ramping — the member takes only a
	// fraction of the traffic an equally loaded up member would, and the
	// fraction grows with each good probe observation until it reaches full
	// weight.
	StateProbation
	// StateDown: out of the distribution list.
	StateDown
)

func (s MemberState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateProbation:
		return "probation"
	default:
		return "down"
	}
}

// HealthPolicy tunes the probation state machine. The zero value (after
// normalization) reproduces the dispatcher's historical behaviour exactly:
// one bad observation evicts, one good observation readmits at full weight,
// and no flap damping — the paper's instant-eviction advisors.
type HealthPolicy struct {
	// FailThreshold is how many consecutive bad probe observations evict an
	// up or probationary member (default 1). Serving failures and explicit
	// MarkDown calls evict immediately regardless — a request that died on
	// the node is certainty, not probe noise.
	FailThreshold int
	// ReadmitThreshold is how many consecutive good observations a down
	// member needs before readmission begins (default 1).
	ReadmitThreshold int
	// RampStart is the traffic share a freshly readmitted member starts at,
	// in (0,1]. 1 (the default) disables the ramp: readmission goes straight
	// to full weight.
	RampStart float64
	// RampFactor multiplies the share on each further good observation until
	// it reaches 1 (default 2: exponential slow-start).
	RampFactor float64
	// FlapWindow arms flap damping when positive: a member evicted again
	// within this many good observations of its last readmission counts as a
	// flapping node and earns a quarantine.
	FlapWindow int
	// QuarantineBase is the number of good observations ignored before the
	// first flap's readmission may begin; each further flap doubles it.
	QuarantineBase int
	// QuarantineMax caps the quarantine growth (default: QuarantineBase<<4).
	QuarantineMax int
}

func (p HealthPolicy) normalized() HealthPolicy {
	if p.FailThreshold < 1 {
		p.FailThreshold = 1
	}
	if p.ReadmitThreshold < 1 {
		p.ReadmitThreshold = 1
	}
	if p.RampStart <= 0 || p.RampStart > 1 {
		p.RampStart = 1
	}
	if p.RampFactor <= 1 {
		p.RampFactor = 2
	}
	if p.FlapWindow < 0 {
		p.FlapWindow = 0
	}
	if p.QuarantineBase < 0 {
		p.QuarantineBase = 0
	}
	if p.QuarantineMax < p.QuarantineBase {
		p.QuarantineMax = p.QuarantineBase << 4
	}
	return p
}

// StateChange describes one probation-machine transition, delivered to the
// WithStateChange hook after the dispatcher's lock is released.
type StateChange struct {
	Node     string
	From, To MemberState
	// Cause: "probe" (advisor observation), "advisor" (explicit
	// MarkDown/MarkUp), or "serve_failure" (a request died on the node).
	Cause string
	// Flapped is true when this eviction counted as a flap and earned (or
	// grew) a quarantine.
	Flapped bool
	// Flaps and Quarantine are the member's flap count and pending
	// quarantine after the change.
	Flaps      int
	Quarantine int
}

// creditUnit is the fixed-point scale for slow-start credits and ramps
// (1.0 == one full credit).
const creditUnit = 1000

// member is one pool entry. Routing-visible fields (outstanding, credit,
// ramp, cached load, serve accounting) are atomics so the lock-free pick
// path can read and update them; the probation state machine fields are
// guarded by the dispatcher's mutex.
type member struct {
	node Node
	cs   ctxServer    // pre-resolved ServeCtx, nil if unsupported
	ls   loadSignaler // pre-resolved LoadSignal, nil if unsupported

	weight    int          // capacity multiplier (the ND weighted SMPs above UPs)
	invWeight float64      // 1/weight, precomputed for the pick path
	state     MemberState  // guarded by d.mu
	out       atomic.Int64 // outstanding requests
	served    atomic.Int64
	failures  atomic.Int64
	sheds     atomic.Int64  // requests this node refused under overload
	credit    atomic.Int64  // slow-start token bucket, creditUnit fixed-point
	rampM     atomic.Int64  // probation traffic share, creditUnit fixed-point
	loadBits  atomic.Uint64 // cached LoadSignal (float64 bits)

	// Probation state machine (guarded by d.mu; see HealthPolicy).
	failStreak int // consecutive bad observations while up/probation
	okStreak   int // consecutive good observations while down
	goodRun    int // good observations since the last readmission
	readmits   int // times this member has been readmitted
	flaps      int // flap count (cleared by a clean run past FlapWindow)
	quarantine int // good observations still ignored before readmission
}

func newMember(n Node, weight int) *member {
	m := &member{node: n, weight: weight, invWeight: 1 / float64(weight), state: StateUp}
	m.cs, _ = n.(ctxServer)
	m.ls, _ = n.(loadSignaler)
	m.refreshLoad()
	return m
}

func (m *member) inList() bool { return m.state != StateDown }

// refreshLoad re-queries the node's overload signal into the pick path's
// cache. Called when a request completes on the member and on every
// advisor observation — never from the pick path itself.
func (m *member) refreshLoad() {
	if m.ls == nil {
		return
	}
	m.loadBits.Store(math.Float64bits(m.ls.LoadSignal()))
}

// cachedLoad returns the last refreshed overload signal.
func (m *member) cachedLoad() float64 {
	return math.Float64frombits(m.loadBits.Load())
}

// load is the member's normalized queue depth: outstanding work divided by
// capacity. A weight-4 node with 4 requests in flight is as "busy" as a
// weight-1 node with one.
func (m *member) load() float64 {
	return float64(m.out.Load()) * m.invWeight
}

// score is the pick-path selection key: queue depth here at the dispatcher
// plus the member's cached overload signal. Two nodes with equal
// outstanding counts are no longer equal if one of them is queueing renders.
func (m *member) score() float64 {
	return m.load() + m.cachedLoad()
}

// liveScore is score with a live (uncached) load query, used for Stats and
// the dispatcher's own LoadSignal.
func (m *member) liveScore() float64 {
	s := m.load()
	if m.ls != nil {
		s += m.ls.LoadSignal()
	}
	return s
}

// legacyScore reproduces the pre-RCU pick path's per-member probe exactly:
// a live load query behind a per-call interface assertion. Only the locked
// (bench-baseline) pick path uses it.
func (m *member) legacyScore() float64 {
	s := m.load()
	if ls, ok := m.node.(loadSignaler); ok {
		s += ls.LoadSignal()
	}
	return s
}

// snapEntry is one member's routing-relevant state frozen into a snapshot.
// The member pointer carries the atomics that stay live across snapshots.
type snapEntry struct {
	m         *member
	probation bool
}

// snapshot is the immutable distribution list the pick path reads. A new
// one is built under the dispatcher lock and swapped in atomically on every
// membership or probation-state change; in-flight requests keep using the
// snapshot they started with (their failover bitmask indexes it).
type snapshot struct {
	entries []snapEntry
}

// Dispatcher forwards requests across a pool of nodes. Safe for concurrent
// use. Serve works as soon as New returns; Start is only needed when
// background advisors are wanted (Config.ProbeInterval > 0).
type Dispatcher struct {
	name          string
	probe         Probe
	maxRetries    int
	probeInterval time.Duration
	observer      *obs.Collector // mints serve spans; nil without WithObserver
	policy        HealthPolicy
	onChange      func(StateChange) // fired outside the lock; nil without WithStateChange
	locked        bool              // legacy locked pick path (bench baseline)

	mu      sync.Mutex
	members []*member
	started bool

	snap atomic.Pointer[snapshot]
	rrc  atomic.Uint64 // round-robin tiebreak cursor
	rr   int           // legacy locked-path cursor (guarded by mu)

	forwarded     stats.Counter
	failovers     stats.Counter
	shedFailovers stats.Counter
	rejected      stats.Counter
	evictions     stats.Counter
	readmissions  stats.Counter
	flapsTotal    stats.Counter

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// Option configures a Dispatcher.
type Option func(*Dispatcher)

// WithProbe substitutes the advisor health probe.
func WithProbe(p Probe) Option {
	return func(d *Dispatcher) { d.probe = p }
}

// WithMaxRetries bounds how many alternate nodes a request tries after a
// node failure (default: every remaining healthy node).
func WithMaxRetries(n int) Option {
	return func(d *Dispatcher) { d.maxRetries = n }
}

// WithObserver mints a serve span (into col) for every request entering
// this dispatcher whose context does not already carry one. Nested
// dispatchers leave the outer span intact, so a request through the routing
// layer records exactly one span.
func WithObserver(col *obs.Collector) Option {
	return func(d *Dispatcher) { d.observer = col }
}

// WithHealthPolicy replaces the default (legacy instant-eviction,
// instant-readmission) probation policy.
func WithHealthPolicy(p HealthPolicy) Option {
	return func(d *Dispatcher) { d.policy = p.normalized() }
}

// WithStateChange registers a hook observing every probation-machine
// transition. The hook runs after the dispatcher releases its lock, so it
// may call back into the dispatcher (and may journal, capture dumps, etc.).
func WithStateChange(fn func(StateChange)) Option {
	return func(d *Dispatcher) { d.onChange = fn }
}

// WithLockedPickPath selects the pre-RCU routing implementation: node
// selection under the dispatcher mutex with a live per-member load probe
// and a per-request failover set allocation. It exists as the measured
// baseline for the serve-path benchmark (cmd/simulate -serve-bench) and as
// an escape hatch while the lock-free path soaks; behaviour is identical,
// only the concurrency structure differs.
func WithLockedPickPath() Option {
	return func(d *Dispatcher) { d.locked = true }
}

// Config describes a Dispatcher.
type Config struct {
	// Name appears in diagnostics and error messages.
	Name string
	// Nodes seeds the pool, all initially up with weight 1. Add/AddWeighted
	// extend it later.
	Nodes []Node
	// ProbeInterval, when positive, makes Start launch a background advisor
	// loop probing the pool at this interval. Zero leaves health management
	// to explicit CheckNow / MarkDown calls (the simulator's mode).
	ProbeInterval time.Duration
}

// New returns a dispatcher over cfg. The pool serves immediately; call
// Start to launch background advisors when Config.ProbeInterval is set.
func New(cfg Config, opts ...Option) *Dispatcher {
	d := &Dispatcher{
		name:          cfg.Name,
		probe:         DefaultProbe,
		maxRetries:    -1,
		probeInterval: cfg.ProbeInterval,
		policy:        HealthPolicy{}.normalized(),
		stopCh:        make(chan struct{}),
	}
	for _, o := range opts {
		o(d)
	}
	for _, n := range cfg.Nodes {
		d.members = append(d.members, newMember(n, 1))
	}
	d.rebuildLocked()
	return d
}

// rebuildLocked swaps in a fresh immutable snapshot of the distribution
// list. Caller holds d.mu (or owns the dispatcher exclusively, as in New).
func (d *Dispatcher) rebuildLocked() {
	entries := make([]snapEntry, 0, len(d.members))
	for _, m := range d.members {
		if m.state == StateDown {
			continue
		}
		entries = append(entries, snapEntry{m: m, probation: m.state == StateProbation})
	}
	d.snap.Store(&snapshot{entries: entries})
}

// Start implements the uniform component lifecycle: if the dispatcher was
// configured with a probe interval, it launches the advisor loop (otherwise
// it only arms shutdown). Cancelling ctx initiates the same teardown as
// Shutdown. Start may be called once.
func (d *Dispatcher) Start(ctx context.Context) error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return fmt.Errorf("dispatch: %q already started", d.name)
	}
	d.started = true
	d.mu.Unlock()
	if d.probeInterval > 0 {
		d.StartAdvisors(d.probeInterval)
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				d.stop()
			case <-d.stopCh:
			}
		}()
	}
	return nil
}

// Shutdown terminates advisor loops and waits for them to exit. The drain
// is immediate (advisors hold no work), so ctx is accepted only to satisfy
// the uniform lifecycle contract. Safe to call more than once and before
// Start.
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	d.stop()
	return nil
}

// Name implements Node.
func (d *Dispatcher) Name() string { return d.name }

// Add inserts a node into the pool (initially up, weight 1).
func (d *Dispatcher) Add(n Node) { d.AddWeighted(n, 1) }

// AddWeighted inserts a node with a capacity weight: the Network Dispatcher
// supported heterogeneous pools (the 8-way SMP could absorb several times a
// uniprocessor's load), and the picker balances outstanding work divided by
// weight. Weights below 1 are clamped to 1.
func (d *Dispatcher) AddWeighted(n Node, weight int) {
	if weight < 1 {
		weight = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.members = append(d.members, newMember(n, weight))
	d.rebuildLocked()
}

// Remove deletes a node from the pool by name, reporting whether it was
// present.
func (d *Dispatcher) Remove(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, m := range d.members {
		if m.node.Name() == name {
			d.members = append(d.members[:i], d.members[i+1:]...)
			d.rebuildLocked()
			return true
		}
	}
	return false
}

// MarkDown pulls a node from the distribution list without removing it.
// An explicit mark-down is external certainty (the cluster's advisor saw
// the node die), so it evicts immediately regardless of FailThreshold.
func (d *Dispatcher) MarkDown(name string) bool {
	d.mu.Lock()
	var changes []StateChange
	found := false
	for _, m := range d.members {
		if m.node.Name() == name {
			found = true
			changes = d.evictLocked(m, "advisor", changes)
		}
	}
	d.mu.Unlock()
	d.fire(changes)
	return found
}

// MarkUp counts one good advisor observation for the node. Under the
// default policy that readmits it to full weight immediately; under a
// stricter HealthPolicy it works through quarantine, the readmit threshold,
// and the slow-start ramp like any good probe observation.
func (d *Dispatcher) MarkUp(name string) bool {
	d.mu.Lock()
	var changes []StateChange
	found := false
	for _, m := range d.members {
		if m.node.Name() == name {
			found = true
			changes = d.observeGoodLocked(m, "advisor", changes)
		}
	}
	d.mu.Unlock()
	d.fire(changes)
	return found
}

// evictLocked transitions m to StateDown, applying flap damping. Caller
// holds d.mu; returned changes must be fired after unlock.
func (d *Dispatcher) evictLocked(m *member, cause string, changes []StateChange) []StateChange {
	if m.state == StateDown {
		return changes
	}
	from := m.state
	m.state = StateDown
	m.failStreak = 0
	m.okStreak = 0
	m.credit.Store(0)
	d.evictions.Inc()
	flapped := false
	p := d.policy
	if p.FlapWindow > 0 && m.readmits > 0 && (from == StateProbation || m.goodRun <= p.FlapWindow) {
		// The node died again before proving itself: exponentially longer
		// quarantine per flap.
		flapped = true
		m.flaps++
		d.flapsTotal.Inc()
		q := p.QuarantineBase
		for i := 1; i < m.flaps && q < p.QuarantineMax; i++ {
			q <<= 1
		}
		if q > p.QuarantineMax {
			q = p.QuarantineMax
		}
		m.quarantine = q
	}
	m.goodRun = 0
	d.rebuildLocked()
	return append(changes, StateChange{
		Node: m.node.Name(), From: from, To: StateDown, Cause: cause,
		Flapped: flapped, Flaps: m.flaps, Quarantine: m.quarantine,
	})
}

// observeGoodLocked counts one good observation for m: quarantine drains
// first, then the readmit threshold, then the slow-start ramp. Caller holds
// d.mu; returned changes must be fired after unlock.
func (d *Dispatcher) observeGoodLocked(m *member, cause string, changes []StateChange) []StateChange {
	p := d.policy
	m.failStreak = 0
	switch m.state {
	case StateDown:
		if m.quarantine > 0 {
			m.quarantine--
			return changes
		}
		m.okStreak++
		if m.okStreak < p.ReadmitThreshold {
			return changes
		}
		m.okStreak = 0
		m.readmits++
		m.goodRun = 0
		m.rampM.Store(int64(p.RampStart * creditUnit))
		m.credit.Store(0)
		to := StateProbation
		if m.rampM.Load() >= creditUnit {
			to = StateUp
		}
		m.state = to
		d.readmissions.Inc()
		d.rebuildLocked()
		return append(changes, StateChange{
			Node: m.node.Name(), From: StateDown, To: to, Cause: cause,
			Flaps: m.flaps, Quarantine: m.quarantine,
		})
	case StateProbation:
		m.goodRun++
		ramp := int64(float64(m.rampM.Load()) * p.RampFactor)
		if ramp >= creditUnit {
			m.rampM.Store(creditUnit)
			m.state = StateUp
			d.rebuildLocked()
			return append(changes, StateChange{
				Node: m.node.Name(), From: StateProbation, To: StateUp, Cause: cause,
				Flaps: m.flaps, Quarantine: m.quarantine,
			})
		}
		m.rampM.Store(ramp)
		return changes
	default: // StateUp
		m.goodRun++
		if p.FlapWindow > 0 && m.goodRun > p.FlapWindow {
			// A clean run past the flap window forgives the history.
			m.flaps = 0
		}
		return changes
	}
}

// observeBadLocked counts one bad probe observation, evicting once the
// failure streak crosses the threshold.
func (d *Dispatcher) observeBadLocked(m *member, cause string, changes []StateChange) []StateChange {
	if m.state == StateDown {
		m.okStreak = 0
		return changes
	}
	m.failStreak++
	if m.failStreak < d.policy.FailThreshold {
		return changes
	}
	return d.evictLocked(m, cause, changes)
}

// fire delivers state changes to the hook outside the lock.
func (d *Dispatcher) fire(changes []StateChange) {
	if d.onChange == nil {
		return
	}
	for _, ch := range changes {
		d.onChange(ch)
	}
}

// Healthy returns the names of nodes currently in the distribution list
// (up or in probation), sorted.
func (d *Dispatcher) Healthy() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, m := range d.members {
		if m.inList() {
			out = append(out, m.node.Name())
		}
	}
	sort.Strings(out)
	return out
}

// HealthyCount returns how many nodes are in the distribution list.
func (d *Dispatcher) HealthyCount() int {
	return len(d.snap.Load().entries)
}

// Ready implements ReadyReporter for nested dispatchers: a pool with at
// least one member in the distribution list can serve.
func (d *Dispatcher) Ready() bool { return d.HealthyCount() > 0 }

// MemberState returns the probation state of the named member.
func (d *Dispatcher) MemberState(name string) (MemberState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.members {
		if m.node.Name() == name {
			return m.state, true
		}
	}
	return StateDown, false
}

// pick selects the snapshot member with the fewest outstanding requests,
// breaking ties round-robin, and accounts an outstanding request against
// it. tried is a bitmask (by snapshot index) of members already attempted
// for this request. Returns the snapshot index, or -1 when no member is
// available. Lock-free: only atomics are touched.
//
// Probationary members are slow-started through a token bucket: each pick
// accrues `ramp` credit, and the member is only eligible once a full credit
// has accumulated (spent on selection). A member ramping at 1/4 therefore
// takes roughly a quarter of the traffic an idle up member would, growing
// exponentially as good probe observations multiply the ramp.
func (d *Dispatcher) pick(sn *snapshot, tried uint64) int {
	n := len(sn.entries)
	if n == 0 {
		return -1
	}
	start := int(d.rrc.Add(1)-1) % n
	best := -1
	var bestScore float64
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if tried&(1<<uint(idx)) != 0 {
			continue
		}
		e := &sn.entries[idx]
		if e.probation {
			c := e.m.credit.Add(e.m.rampM.Load())
			if c > 2*creditUnit {
				e.m.credit.Store(2 * creditUnit)
			}
			if c < creditUnit {
				continue
			}
		}
		if s := e.m.score(); best < 0 || s < bestScore {
			best, bestScore = idx, s
		}
	}
	if best < 0 {
		// No member passed the credit gate. A pool of only probationary
		// members must still serve: retry ignoring the gate rather than
		// black-holing the request.
		for i := 0; i < n; i++ {
			idx := (start + i) % n
			if tried&(1<<uint(idx)) != 0 {
				continue
			}
			if s := sn.entries[idx].m.score(); best < 0 || s < bestScore {
				best, bestScore = idx, s
			}
		}
	}
	if best < 0 {
		return -1
	}
	bm := sn.entries[best].m
	if sn.entries[best].probation {
		if c := bm.credit.Load(); c > creditUnit {
			bm.credit.Add(-creditUnit)
		} else {
			bm.credit.Store(0)
		}
	}
	bm.out.Add(1)
	return best
}

// lockedPick is the legacy pick path: the same selection under the
// dispatcher mutex, probing each member's live overload signal. Kept as
// the serve-path benchmark baseline (WithLockedPickPath).
func (d *Dispatcher) lockedPick(exclude map[*member]bool) *member {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best *member
	var bestScore float64
	n := len(d.members)
	if n == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		m := d.members[(d.rr+i)%n]
		if !m.inList() || exclude[m] {
			continue
		}
		if m.state == StateProbation {
			c := m.credit.Add(m.rampM.Load())
			if c > 2*creditUnit {
				m.credit.Store(2 * creditUnit)
			}
			if c < creditUnit {
				continue
			}
		}
		if s := m.legacyScore(); best == nil || s < bestScore {
			best, bestScore = m, s
		}
	}
	if best == nil {
		for i := 0; i < n; i++ {
			m := d.members[(d.rr+i)%n]
			if !m.inList() || exclude[m] {
				continue
			}
			if s := m.legacyScore(); best == nil || s < bestScore {
				best, bestScore = m, s
			}
		}
	}
	if best == nil {
		return nil
	}
	if best.state == StateProbation {
		if c := best.credit.Load(); c > creditUnit {
			best.credit.Add(-creditUnit)
		} else {
			best.credit.Store(0)
		}
	}
	d.rr = (d.rr + 1) % n
	best.out.Add(1)
	return best
}

// release accounts a finished request. On success the member's cached load
// signal is refreshed — the one LoadSignal query per request, off the pick
// path. On failure the member is evicted: a dead request is certainty, not
// probe noise.
func (d *Dispatcher) release(m *member, failed bool) {
	m.out.Add(-1)
	if !failed {
		m.served.Add(1)
		m.refreshLoad()
		return
	}
	m.failures.Add(1)
	d.mu.Lock()
	changes := d.evictLocked(m, "serve_failure", nil)
	d.mu.Unlock()
	d.fire(changes)
}

// releaseShed accounts a refusal under overload. Crucially the node stays
// up: an overloaded node is healthy and will take traffic again the moment
// its queue drains, so pulling it from the distribution list (as release
// does for failures) would turn a transient surge into a capacity loss.
func (d *Dispatcher) releaseShed(m *member) {
	m.out.Add(-1)
	m.sheds.Add(1)
	m.refreshLoad()
}

// Serve implements Node: forward the request to a healthy backend, failing
// over (and pulling failed nodes) until a node answers or the pool is
// exhausted.
func (d *Dispatcher) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	return d.ServeCtx(context.Background(), path)
}

// ServeCtx is Serve with a request context. When an observer is installed
// and ctx carries no span yet, the dispatcher mints one here — the serve
// path's entry point — sets its path, outcome and observed LSN, and records
// it when the request completes. An inherited span (nested dispatchers, the
// routing layer) is stamped but not finished: it belongs to the outermost
// dispatcher.
func (d *Dispatcher) ServeCtx(ctx context.Context, path string) (*cache.Object, httpserver.Outcome, error) {
	sp := obs.FromContext(ctx)
	minted := false
	if sp == nil && d.observer != nil {
		ctx, sp = d.observer.StartSpan(ctx)
		sp.SetPath(path)
		minted = true
	}
	var (
		obj     *cache.Object
		outcome httpserver.Outcome
		err     error
	)
	if d.locked {
		obj, outcome, err = d.serveLocked(ctx, sp, path)
	} else {
		obj, outcome, err = d.serve(ctx, sp, path)
	}
	if minted {
		sp.SetOutcome(outcome.String())
		if obj != nil {
			sp.SetLSN(obj.Version)
		}
		sp.Finish()
	}
	return obj, outcome, err
}

// serveOn forwards one attempt to a member, threading the span context when
// the node supports it.
func serveOn(ctx context.Context, m *member, path string) (*cache.Object, httpserver.Outcome, error) {
	if m.cs != nil {
		return m.cs.ServeCtx(ctx, path)
	}
	return m.node.Serve(path)
}

// serve is the lock-free failover loop behind Serve/ServeCtx. The request
// routes over one immutable snapshot: members evicted mid-request simply
// fail their attempt and are masked out; members added mid-request are
// picked up by the next request. The tried set is a bitmask over snapshot
// indices, so the hit path performs no allocation. Snapshots wider than 64
// members fall back to masking the first 64 (a pool that wide is itself a
// misconfiguration — the ND topped out at tens of nodes per site).
func (d *Dispatcher) serve(ctx context.Context, sp *obs.Span, path string) (*cache.Object, httpserver.Outcome, error) {
	sn := d.snap.Load()
	var tried uint64
	retries := 0
	var lastShed error
	for {
		idx := d.pick(sn, tried)
		if idx < 0 {
			d.rejected.Inc()
			if lastShed != nil {
				// Every reachable node refused under overload; the pool is
				// saturated, not dead. Propagate the shed so the routing
				// layer can try another complex instead of declaring this
				// one failed.
				return nil, httpserver.OutcomeShed, lastShed
			}
			return nil, httpserver.OutcomeError, fmt.Errorf("%w (%s)", ErrNoBackends, d.name)
		}
		if idx < 64 {
			tried |= 1 << uint(idx)
		}
		m := sn.entries[idx].m
		// Route selection done (possibly again after a failover — the stamp
		// reflects the last node actually tried).
		sp.Stamp(obs.SpanRoute)
		sp.SetNode(m.node.Name())
		obj, outcome, err := serveOn(ctx, m, path)
		if outcome == httpserver.OutcomeShed {
			// Overloaded, not broken: fail over to a sibling but leave the
			// node in the distribution list.
			d.releaseShed(m)
			d.shedFailovers.Inc()
			lastShed = err
			retries++
			if d.maxRetries >= 0 && retries > d.maxRetries {
				d.rejected.Inc()
				return nil, httpserver.OutcomeShed, err
			}
			continue
		}
		if outcome == httpserver.OutcomeError && err != nil && !errors.Is(err, httpserver.ErrNoRoute) {
			// Node-level failure: pull it and fail over.
			d.release(m, true)
			d.failovers.Inc()
			retries++
			if d.maxRetries >= 0 && retries > d.maxRetries {
				d.rejected.Inc()
				return nil, httpserver.OutcomeError, fmt.Errorf("dispatch: retries exhausted: %w", err)
			}
			continue
		}
		d.release(m, false)
		d.forwarded.Inc()
		return obj, outcome, err
	}
}

// serveLocked is the legacy failover loop over lockedPick (the bench
// baseline): a per-request map tracks tried members and every pick walks
// the live member list under the mutex.
func (d *Dispatcher) serveLocked(ctx context.Context, sp *obs.Span, path string) (*cache.Object, httpserver.Outcome, error) {
	tried := make(map[*member]bool)
	retries := 0
	var lastShed error
	for {
		m := d.lockedPick(tried)
		if m == nil {
			d.rejected.Inc()
			if lastShed != nil {
				return nil, httpserver.OutcomeShed, lastShed
			}
			return nil, httpserver.OutcomeError, fmt.Errorf("%w (%s)", ErrNoBackends, d.name)
		}
		tried[m] = true
		sp.Stamp(obs.SpanRoute)
		sp.SetNode(m.node.Name())
		obj, outcome, err := serveOn(ctx, m, path)
		if outcome == httpserver.OutcomeShed {
			d.releaseShed(m)
			d.shedFailovers.Inc()
			lastShed = err
			retries++
			if d.maxRetries >= 0 && retries > d.maxRetries {
				d.rejected.Inc()
				return nil, httpserver.OutcomeShed, err
			}
			continue
		}
		if outcome == httpserver.OutcomeError && err != nil && !errors.Is(err, httpserver.ErrNoRoute) {
			d.release(m, true)
			d.failovers.Inc()
			retries++
			if d.maxRetries >= 0 && retries > d.maxRetries {
				d.rejected.Inc()
				return nil, httpserver.OutcomeError, fmt.Errorf("dispatch: retries exhausted: %w", err)
			}
			continue
		}
		d.release(m, false)
		d.forwarded.Inc()
		return obj, outcome, err
	}
}

// LoadSignal implements loadSignaler for nested dispatchers and the routing
// layer: the mean live score of the distribution list. A whole complex
// therefore reports how loaded its nodes are, and MSIRP can withdraw
// addresses from a complex whose aggregate crosses the shedding threshold.
func (d *Dispatcher) LoadSignal() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var sum float64
	n := 0
	for _, m := range d.members {
		if !m.inList() {
			continue
		}
		sum += m.liveScore()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CheckNow runs one advisor sweep synchronously: every node is probed and
// the observation fed through the probation state machine (hysteresis,
// quarantine, slow-start ramp), and its cached load signal refreshed.
// Returns the number of nodes left in the distribution list. The simulation
// calls this on its own clock; live servers use StartAdvisors.
func (d *Dispatcher) CheckNow() int {
	d.mu.Lock()
	nodes := make([]*member, len(d.members))
	copy(nodes, d.members)
	d.mu.Unlock()

	var changes []StateChange
	healthy := 0
	for _, m := range nodes {
		ok := d.probe(m.node)
		m.refreshLoad()
		d.mu.Lock()
		if ok {
			changes = d.observeGoodLocked(m, "probe", changes)
		} else {
			changes = d.observeBadLocked(m, "probe", changes)
		}
		if m.inList() {
			healthy++
		}
		d.mu.Unlock()
	}
	d.fire(changes)
	return healthy
}

// StartAdvisors launches a background advisor loop probing every interval.
// Stop terminates it.
func (d *Dispatcher) StartAdvisors(interval time.Duration) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.CheckNow()
			case <-d.stopCh:
				return
			}
		}
	}()
}

// stop terminates advisor loops. Safe to call multiple times, and a no-op
// if StartAdvisors was never called.
func (d *Dispatcher) stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.wg.Wait()
}

// NodeStats describes one pool member.
type NodeStats struct {
	Name string
	// Up reports distribution-list membership (up or probation).
	Up bool
	// State is the probation-machine state ("up", "probation", "down").
	State       string
	Weight      int
	Outstanding int
	Served      int64
	Failures    int64
	// Sheds counts requests this node refused under overload (the node
	// stayed in the distribution list; the requests failed over).
	Sheds int64
	// Load is the member's current selection score: dispatcher queue depth
	// plus the node's own overload signal (queried live for the snapshot).
	Load float64
	// Ramp is the slow-start traffic share while in probation (1 otherwise).
	Ramp float64
	// Flaps and Quarantine describe flap-damping state.
	Flaps      int
	Quarantine int
}

// DispatcherStats snapshots the dispatcher.
type DispatcherStats struct {
	Forwarded int64
	Failovers int64
	// ShedFailovers counts failovers caused by overload sheds (the node was
	// not pulled from the pool).
	ShedFailovers int64
	Rejected      int64
	// Evictions/Readmissions/Flaps count probation-machine transitions.
	Evictions    int64
	Readmissions int64
	Flaps        int64
	Nodes        []NodeStats
}

// RegisterMetrics publishes the dispatcher's counters and pool health into
// a registry. labels (may be nil) are attached to every series.
func (d *Dispatcher) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("dispatch_forwarded_total",
		"requests forwarded to a pool member", labels, &d.forwarded)
	reg.RegisterCounter("dispatch_failovers_total",
		"requests retried on another member after a failure", labels, &d.failovers)
	reg.RegisterCounter("dispatch_shed_failovers_total",
		"requests retried on another member after an overload shed", labels, &d.shedFailovers)
	reg.RegisterFunc("dispatch_load_signal",
		"mean selection score across the distribution list", labels, d.LoadSignal)
	reg.RegisterCounter("dispatch_rejected_total",
		"requests rejected with no healthy member", labels, &d.rejected)
	reg.RegisterFunc("dispatch_healthy_nodes",
		"pool members currently in the distribution list", labels,
		func() float64 { return float64(d.HealthyCount()) })
	reg.RegisterCounter("dispatch_evictions_total",
		"pool members evicted from the distribution list", labels, &d.evictions)
	reg.RegisterCounter("dispatch_readmissions_total",
		"pool members readmitted after eviction", labels, &d.readmissions)
	reg.RegisterCounter("dispatch_flaps_total",
		"evictions that counted as flaps and earned a quarantine", labels, &d.flapsTotal)
	reg.RegisterFunc("dispatch_probation_nodes",
		"pool members currently in the slow-start probation state", labels,
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			n := 0
			for _, m := range d.members {
				if m.state == StateProbation {
					n++
				}
			}
			return float64(n)
		})
}

// Stats returns a snapshot of pool state and counters.
func (d *Dispatcher) Stats() DispatcherStats {
	d.mu.Lock()
	nodes := make([]NodeStats, 0, len(d.members))
	for _, m := range d.members {
		ramp := 1.0
		if m.state == StateProbation {
			ramp = float64(m.rampM.Load()) / creditUnit
		}
		nodes = append(nodes, NodeStats{
			Name:        m.node.Name(),
			Up:          m.inList(),
			State:       m.state.String(),
			Weight:      m.weight,
			Outstanding: int(m.out.Load()),
			Served:      m.served.Load(),
			Failures:    m.failures.Load(),
			Sheds:       m.sheds.Load(),
			Load:        m.liveScore(),
			Ramp:        ramp,
			Flaps:       m.flaps,
			Quarantine:  m.quarantine,
		})
	}
	d.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return DispatcherStats{
		Forwarded:     d.forwarded.Value(),
		Failovers:     d.failovers.Value(),
		ShedFailovers: d.shedFailovers.Value(),
		Rejected:      d.rejected.Value(),
		Evictions:     d.evictions.Value(),
		Readmissions:  d.readmissions.Value(),
		Flaps:         d.flapsTotal.Value(),
		Nodes:         nodes,
	}
}
