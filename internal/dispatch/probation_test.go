package dispatch

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
)

// probeNode is a backend with a synthetic health check: DefaultProbe asks
// Ready() and never touches the serve path.
type probeNode struct {
	name   string
	ready  atomic.Bool
	served atomic.Int64
}

func newProbeNode(name string) *probeNode {
	n := &probeNode{name: name}
	n.ready.Store(true)
	return n
}

func (p *probeNode) Name() string { return p.name }

func (p *probeNode) Ready() bool { return p.ready.Load() }

func (p *probeNode) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	if !p.ready.Load() {
		return nil, httpserver.OutcomeError, fmt.Errorf("%s down", p.name)
	}
	p.served.Add(1)
	return &cache.Object{Key: cache.Key(path), Value: []byte(p.name)}, httpserver.OutcomeHit, nil
}

func probePool(n int) ([]Node, []*probeNode) {
	var ns []Node
	var ps []*probeNode
	for i := 0; i < n; i++ {
		p := newProbeNode(fmt.Sprintf("up%d", i))
		ns = append(ns, p)
		ps = append(ps, p)
	}
	return ns, ps
}

// TestDefaultProbeUsesReadyReporter: a node exposing a synthetic health
// check is probed through it — advisor sweeps must not drive requests
// through the serve path (no served counters move, no spans are minted on
// behalf of a probe).
func TestDefaultProbeUsesReadyReporter(t *testing.T) {
	ns, ps := probePool(2)
	d := New(Config{Name: "nd", Nodes: ns})
	for i := 0; i < 50; i++ {
		d.CheckNow()
	}
	for _, p := range ps {
		if got := p.served.Load(); got != 0 {
			t.Fatalf("node %s served %d probe requests, want 0 (probe must use Ready)", p.name, got)
		}
	}
	ps[0].ready.Store(false)
	if got := d.CheckNow(); got != 1 {
		t.Fatalf("CheckNow = %d healthy, want 1", got)
	}
	if ps[0].served.Load() != 0 {
		t.Fatal("failing probe still drove the serve path")
	}
}

// TestProbeHysteresis: with FailThreshold and ReadmitThreshold of 2, a
// single bad (or good) probe observation changes nothing; the second one
// flips the member.
func TestProbeHysteresis(t *testing.T) {
	ns, ps := probePool(2)
	d := New(Config{Name: "nd", Nodes: ns},
		WithHealthPolicy(HealthPolicy{FailThreshold: 2, ReadmitThreshold: 2}))

	ps[0].ready.Store(false)
	if got := d.CheckNow(); got != 2 {
		t.Fatalf("after 1 bad observation: healthy = %d, want 2 (threshold not reached)", got)
	}
	if got := d.CheckNow(); got != 1 {
		t.Fatalf("after 2 bad observations: healthy = %d, want 1", got)
	}

	ps[0].ready.Store(true)
	if got := d.CheckNow(); got != 1 {
		t.Fatalf("after 1 good observation: healthy = %d, want 1 (threshold not reached)", got)
	}
	if got := d.CheckNow(); got != 2 {
		t.Fatalf("after 2 good observations: healthy = %d, want 2", got)
	}
	if st, _ := d.MemberState("up0"); st != StateUp {
		t.Fatalf("state = %s, want up (RampStart 1 skips probation)", st)
	}
}

// TestSlowStartRamp: a readmitted member starts at a fraction of the
// traffic and grows to an even share as good observations multiply the
// ramp.
func TestSlowStartRamp(t *testing.T) {
	ns, ps := probePool(2)
	d := New(Config{Name: "nd", Nodes: ns},
		WithHealthPolicy(HealthPolicy{RampStart: 0.25, RampFactor: 2}))

	ps[1].ready.Store(false)
	d.CheckNow() // evict up1
	ps[1].ready.Store(true)
	d.CheckNow() // readmit into probation at quarter weight
	if st, _ := d.MemberState("up1"); st != StateProbation {
		t.Fatalf("state = %s, want probation", st)
	}

	base := ps[1].served.Load()
	for i := 0; i < 100; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}
	ramped := ps[1].served.Load() - base
	// At a quarter weight the probationary member is eligible for roughly
	// one pick in four; it must take some traffic but well under half.
	if ramped == 0 || ramped > 40 {
		t.Fatalf("probationary member served %d of 100, want (0, 40]", ramped)
	}

	// Two more good observations: 0.25 -> 0.5 -> 1.0, back to full weight.
	d.CheckNow()
	d.CheckNow()
	if st, _ := d.MemberState("up1"); st != StateUp {
		t.Fatalf("state = %s, want up after the ramp completes", st)
	}
	base0, base1 := ps[0].served.Load(), ps[1].served.Load()
	for i := 0; i < 100; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}
	if got := ps[1].served.Load() - base1; got != 50 {
		t.Fatalf("restored member served %d of 100, want 50 (even split)", got)
	}
	if got := ps[0].served.Load() - base0; got != 50 {
		t.Fatalf("up member served %d of 100, want 50", got)
	}
}

// TestFlapQuarantineGrows: each re-eviction inside the flap window earns an
// exponentially longer quarantine (good observations ignored before
// readmission may begin), capped at QuarantineMax.
func TestFlapQuarantineGrows(t *testing.T) {
	ns, _ := probePool(2)
	d := New(Config{Name: "nd", Nodes: ns},
		WithHealthPolicy(HealthPolicy{FlapWindow: 16, QuarantineBase: 2, QuarantineMax: 8}))

	sweepsToReadmit := func() int {
		for i := 1; i <= 64; i++ {
			d.MarkUp("up0")
			if st, _ := d.MemberState("up0"); st == StateUp {
				return i
			}
		}
		t.Fatal("up0 never readmitted")
		return 0
	}

	// First eviction: no readmission history, no flap, instant readmit.
	d.MarkDown("up0")
	if got := sweepsToReadmit(); got != 1 {
		t.Fatalf("first readmission took %d observations, want 1", got)
	}

	// Flap cycles: quarantine 2, then 4, then 8, then capped at 8.
	wantQ := []int{2, 4, 8, 8}
	for i, q := range wantQ {
		d.MarkDown("up0")
		st := d.Stats()
		if got := st.Nodes[0].Quarantine; got != q {
			t.Fatalf("flap %d: quarantine = %d, want %d", i+1, got, q)
		}
		if got := sweepsToReadmit(); got != q+1 {
			t.Fatalf("flap %d: readmission took %d observations, want %d", i+1, got, q+1)
		}
	}
	if got := d.Stats().Flaps; got != int64(len(wantQ)) {
		t.Fatalf("flaps counter = %d, want %d", got, len(wantQ))
	}
}

// TestFlapForgiveness: a clean run past the flap window clears the flap
// history, so the next eviction is treated as a first failure again.
func TestFlapForgiveness(t *testing.T) {
	ns, _ := probePool(1)
	d := New(Config{Name: "nd", Nodes: ns},
		WithHealthPolicy(HealthPolicy{FlapWindow: 3, QuarantineBase: 2, QuarantineMax: 8}))

	d.MarkDown("up0")
	d.MarkUp("up0") // readmitted, readmits=1
	d.MarkDown("up0")
	if got := d.Stats().Nodes[0].Flaps; got != 1 {
		t.Fatalf("flaps = %d, want 1 (re-eviction inside the window)", got)
	}
	// Work through the quarantine and readmit, then survive past the window.
	for i := 0; i < 3; i++ {
		d.MarkUp("up0")
	}
	if st, _ := d.MemberState("up0"); st != StateUp {
		t.Fatal("up0 not readmitted after quarantine")
	}
	for i := 0; i < 4; i++ { // goodRun grows past FlapWindow=3
		d.MarkUp("up0")
	}
	if got := d.Stats().Nodes[0].Flaps; got != 0 {
		t.Fatalf("flaps = %d, want 0 (clean run forgives)", got)
	}
	d.MarkDown("up0")
	if got := d.Stats().Nodes[0].Quarantine; got != 0 {
		t.Fatalf("quarantine = %d, want 0 (forgiven history, not a flap)", got)
	}
}

// TestNoBlackHoleAllProbation: a pool whose only members are probationary
// must still serve every request — the credit gate yields rather than
// black-holing.
func TestNoBlackHoleAllProbation(t *testing.T) {
	ns, ps := probePool(1)
	d := New(Config{Name: "nd", Nodes: ns},
		WithHealthPolicy(HealthPolicy{RampStart: 0.25, RampFactor: 2}))
	ps[0].ready.Store(false)
	d.CheckNow()
	ps[0].ready.Store(true)
	d.CheckNow()
	if st, _ := d.MemberState("up0"); st != StateProbation {
		t.Fatalf("state = %s, want probation", st)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatalf("serve %d: %v (sole probationary member must not black-hole)", i, err)
		}
	}
}

// TestStateChangeHook: transitions are delivered with their cause, outside
// the dispatcher's lock (the hook may call back in).
func TestStateChangeHook(t *testing.T) {
	ns, ps := probePool(2)
	var mu sync.Mutex
	var got []StateChange
	var d *Dispatcher
	d = New(Config{Name: "nd", Nodes: ns},
		WithStateChange(func(ch StateChange) {
			d.HealthyCount() // re-entrancy: must not deadlock
			mu.Lock()
			got = append(got, ch)
			mu.Unlock()
		}))

	d.MarkDown("up0")
	d.MarkUp("up0")
	ps[1].ready.Store(false)
	// Two serves: the round-robin cursor reaches up1 on the second, which
	// dies mid-request and is pulled with cause serve_failure.
	for i := 0; i < 2; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("changes = %d, want 3: %+v", len(got), got)
	}
	if got[0].Node != "up0" || got[0].To != StateDown || got[0].Cause != "advisor" {
		t.Fatalf("change 0 = %+v, want up0 -> down by advisor", got[0])
	}
	if got[1].Node != "up0" || got[1].From != StateDown || got[1].Cause != "advisor" {
		t.Fatalf("change 1 = %+v, want up0 readmitted by advisor", got[1])
	}
	if got[2].Node != "up1" || got[2].To != StateDown || got[2].Cause != "serve_failure" {
		t.Fatalf("change 2 = %+v, want up1 -> down by serve_failure", got[2])
	}
}

// TestProbationMachineRace hammers every mutating entry point of the
// dispatcher concurrently — serves, synchronous advisor sweeps, explicit
// mark-down/up, pool membership churn, stats reads — under a running
// background advisor loop and nodes that flip health the whole time. It
// asserts nothing beyond "no crash, no deadlock, serves complete": its
// value is under -race.
func TestProbationMachineRace(t *testing.T) {
	ns, ps := probePool(4)
	var d *Dispatcher
	d = New(Config{Name: "nd", Nodes: ns},
		WithHealthPolicy(HealthPolicy{
			FailThreshold: 2, ReadmitThreshold: 2,
			RampStart: 0.25, RampFactor: 2,
			FlapWindow: 4, QuarantineBase: 2, QuarantineMax: 8,
		}),
		WithStateChange(func(ch StateChange) { _ = d.HealthyCount() }))
	d.StartAdvisors(100 * time.Microsecond)
	defer d.Shutdown(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(r *rand.Rand)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(len(ps))))
			for {
				select {
				case <-stop:
					return
				default:
					fn(r)
				}
			}
		}()
	}

	for i := 0; i < 4; i++ {
		worker(func(r *rand.Rand) { _, _, _ = d.Serve("/p") })
	}
	worker(func(r *rand.Rand) { d.CheckNow() })
	worker(func(r *rand.Rand) { ps[r.Intn(len(ps))].ready.Store(r.Intn(3) != 0) })
	worker(func(r *rand.Rand) {
		name := ps[r.Intn(len(ps))].name
		if r.Intn(2) == 0 {
			d.MarkDown(name)
		} else {
			d.MarkUp(name)
		}
	})
	worker(func(r *rand.Rand) {
		extra := newProbeNode("extra")
		d.Add(extra)
		_, _, _ = d.Serve("/p")
		d.Remove("extra")
	})
	worker(func(r *rand.Rand) {
		_ = d.Stats()
		_ = d.LoadSignal()
		_, _ = d.MemberState("up0")
		_ = d.Healthy()
	})

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Leave every node healthy and verify the pool still serves.
	for _, p := range ps {
		p.ready.Store(true)
	}
	for i := 0; i < 8; i++ {
		d.CheckNow()
	}
	if _, _, err := d.Serve("/final"); err != nil {
		t.Fatalf("pool unserviceable after the storm: %v", err)
	}
}
