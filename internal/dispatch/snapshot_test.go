package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
)

// churnNode is a node that records every serve against its own name, so a
// pick routed through a torn snapshot (a member struct observed half
// initialized, or an entry for a node that was never admitted) would
// surface as a serve against an unknown or down node.
type churnNode struct {
	name  string
	down  atomic.Bool
	hits  atomic.Int64
	valid atomic.Bool // set before the node is added, never cleared
}

func (n *churnNode) Name() string { return n.name }
func (n *churnNode) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	if !n.valid.Load() {
		panic("serve routed to a node before it was fully constructed")
	}
	if n.down.Load() {
		return nil, httpserver.OutcomeError, fmt.Errorf("churn node %s down", n.name)
	}
	n.hits.Add(1)
	return &cache.Object{Key: cache.Key(path), Value: []byte(n.name)}, httpserver.OutcomeHit, nil
}

// TestSnapshotSwapNoTornMemberList hammers the pick path while membership
// and probation state churn concurrently: nodes are added, removed, marked
// down and up while requests flow. Every serve must land on a fully
// constructed member and never panic, and the dispatcher must end in a
// consistent state. Run under -race this also proves the RCU swap
// publishes snapshots safely.
func TestSnapshotSwapNoTornMemberList(t *testing.T) {
	const stable = 4
	var nodes []*churnNode
	var seed []Node
	for i := 0; i < stable; i++ {
		n := &churnNode{name: fmt.Sprintf("stable-%d", i)}
		n.valid.Store(true)
		nodes = append(nodes, n)
		seed = append(seed, n)
	}
	d := New(Config{Name: "churn", Nodes: seed})

	const (
		servers = 4
		churns  = 2
		iters   = 2000
	)
	var wg sync.WaitGroup
	var served atomic.Int64
	for g := 0; g < servers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				obj, outcome, err := d.Serve("/p")
				if outcome == httpserver.OutcomeHit {
					if obj == nil || len(obj.Value) == 0 {
						t.Error("hit with empty object")
						return
					}
					served.Add(1)
				} else if err == nil {
					t.Errorf("non-hit outcome %v with nil error", outcome)
					return
				}
			}
		}()
	}
	// Membership churn: transient nodes come and go.
	for g := 0; g < churns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				n := &churnNode{name: fmt.Sprintf("transient-%d-%d", g, i)}
				n.valid.Store(true)
				d.Add(n)
				d.Remove(n.name)
			}
		}(g)
	}
	// Probation churn: a stable node flaps through the state machine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			nodes[0].down.Store(true)
			d.MarkDown(nodes[0].name)
			nodes[0].down.Store(false)
			d.MarkUp(nodes[0].name)
		}
	}()
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no requests served during churn")
	}
	// The pool must converge: all stable nodes present and pickable.
	d.MarkUp(nodes[0].name)
	if got := d.HealthyCount(); got != stable {
		t.Fatalf("healthy = %d after churn, want %d", got, stable)
	}
	for _, n := range d.Healthy() {
		var ok bool
		for i := 0; i < stable; i++ {
			if n == nodes[i].name {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("unexpected member %q after churn", n)
		}
	}
}

// TestSnapshotIsolatedFromMutation proves a pick loop holding one snapshot
// is unaffected by concurrent rebuilds: the snapshot a request starts with
// keeps serving it even as members are removed behind it.
func TestSnapshotIsolatedFromMutation(t *testing.T) {
	a := &churnNode{name: "a"}
	a.valid.Store(true)
	b := &churnNode{name: "b"}
	b.valid.Store(true)
	d := New(Config{Name: "iso", Nodes: []Node{a, b}})
	sn := d.snap.Load()
	if len(sn.entries) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(sn.entries))
	}
	d.Remove("a")
	d.Remove("b")
	// The captured snapshot still lists both members — immutable.
	if len(sn.entries) != 2 {
		t.Fatalf("captured snapshot mutated to %d entries", len(sn.entries))
	}
	// New requests see the empty pool.
	if _, _, err := d.Serve("/p"); err == nil {
		t.Fatal("expected ErrNoBackends after removing all members")
	}
}
