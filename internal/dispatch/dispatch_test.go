package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
)

// fakeNode is a controllable backend.
type fakeNode struct {
	name    string
	served  atomic.Int64
	failing atomic.Bool
	slow    chan struct{} // if non-nil, Serve blocks until it receives
}

func (f *fakeNode) Name() string { return f.name }

func (f *fakeNode) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	if f.failing.Load() {
		return nil, httpserver.OutcomeError, errors.New("node down")
	}
	if f.slow != nil {
		<-f.slow
	}
	f.served.Add(1)
	return &cache.Object{Key: cache.Key(path), Value: []byte(f.name)}, httpserver.OutcomeHit, nil
}

func nodes(n int) ([]Node, []*fakeNode) {
	var ns []Node
	var fs []*fakeNode
	for i := 0; i < n; i++ {
		f := &fakeNode{name: fmt.Sprintf("up%d", i)}
		ns = append(ns, f)
		fs = append(fs, f)
	}
	return ns, fs
}

func TestForwardDistributesAcrossPool(t *testing.T) {
	ns, fs := nodes(4)
	d := New(Config{Name: "nd", Nodes: ns})
	for i := 0; i < 400; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range fs {
		if got := f.served.Load(); got != 100 {
			t.Fatalf("node %s served %d, want 100 (even distribution)", f.name, got)
		}
	}
	if d.Stats().Forwarded != 400 {
		t.Fatalf("forwarded = %d", d.Stats().Forwarded)
	}
}

func TestLeastOutstandingPreferred(t *testing.T) {
	// Node up0 is wedged mid-request; new traffic must flow to up1.
	f0 := &fakeNode{name: "up0", slow: make(chan struct{})}
	f1 := &fakeNode{name: "up1"}
	d := New(Config{Name: "nd", Nodes: []Node{f0, f1}})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Serve("/slow") // occupies up0 (first pick via round-robin)
	}()
	// Wait until the slow request is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := d.Stats()
		busy := false
		for _, n := range st.Nodes {
			if n.Outstanding == 1 {
				busy = true
			}
		}
		if busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// These ten requests must all land on the idle node.
	for i := 0; i < 10; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}
	if f1.served.Load() != 10 {
		t.Fatalf("idle node served %d, want 10", f1.served.Load())
	}
	close(f0.slow)
	wg.Wait()
}

func TestFailoverOnServeError(t *testing.T) {
	ns, fs := nodes(3)
	fs[0].failing.Store(true)
	d := New(Config{Name: "nd", Nodes: ns})
	for i := 0; i < 30; i++ {
		obj, _, err := d.Serve("/p")
		if err != nil {
			t.Fatal(err)
		}
		if string(obj.Value) == "up0" {
			t.Fatal("request served by failing node")
		}
	}
	st := d.Stats()
	if st.Failovers < 1 {
		t.Fatal("no failover recorded")
	}
	// The failed node must have been pulled after its first failure.
	for _, n := range st.Nodes {
		if n.Name == "up0" {
			if n.Up {
				t.Fatal("failed node still in distribution list")
			}
			if n.Failures != 1 {
				t.Fatalf("failures = %d, want 1 (pulled immediately)", n.Failures)
			}
		}
	}
}

func TestAllNodesDown(t *testing.T) {
	ns, fs := nodes(2)
	for _, f := range fs {
		f.failing.Store(true)
	}
	d := New(Config{Name: "nd", Nodes: ns})
	_, _, err := d.Serve("/p")
	if !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want ErrNoBackends", err)
	}
	if d.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d", d.Stats().Rejected)
	}
}

func TestEmptyPool(t *testing.T) {
	d := New(Config{Name: "nd"})
	if _, _, err := d.Serve("/p"); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarkDownAndUp(t *testing.T) {
	ns, fs := nodes(2)
	d := New(Config{Name: "nd", Nodes: ns})
	if !d.MarkDown("up0") {
		t.Fatal("MarkDown failed")
	}
	if got := d.Healthy(); len(got) != 1 || got[0] != "up1" {
		t.Fatalf("Healthy = %v", got)
	}
	for i := 0; i < 10; i++ {
		d.Serve("/p")
	}
	if fs[0].served.Load() != 0 {
		t.Fatal("downed node received traffic")
	}
	if !d.MarkUp("up0") {
		t.Fatal("MarkUp failed")
	}
	if d.HealthyCount() != 2 {
		t.Fatal("MarkUp did not restore")
	}
	if d.MarkDown("ghost") {
		t.Fatal("MarkDown of unknown node returned true")
	}
}

func TestAddRemove(t *testing.T) {
	d := New(Config{Name: "nd"})
	f := &fakeNode{name: "late"}
	d.Add(f)
	if _, _, err := d.Serve("/p"); err != nil {
		t.Fatal(err)
	}
	if !d.Remove("late") {
		t.Fatal("Remove failed")
	}
	if d.Remove("late") {
		t.Fatal("double Remove returned true")
	}
	if _, _, err := d.Serve("/p"); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v", err)
	}
}

func TestAdvisorsRestoreRecoveredNode(t *testing.T) {
	ns, fs := nodes(2)
	d := New(Config{Name: "nd", Nodes: ns})
	fs[0].failing.Store(true)
	if got := d.CheckNow(); got != 1 {
		t.Fatalf("CheckNow = %d, want 1", got)
	}
	if d.HealthyCount() != 1 {
		t.Fatal("advisor did not pull failing node")
	}
	fs[0].failing.Store(false)
	if got := d.CheckNow(); got != 2 {
		t.Fatalf("CheckNow = %d, want 2", got)
	}
	if d.HealthyCount() != 2 {
		t.Fatal("advisor did not restore recovered node")
	}
}

func TestStartAdvisorsBackground(t *testing.T) {
	ns, fs := nodes(1)
	d := New(Config{Name: "nd", Nodes: ns})
	fs[0].failing.Store(true)
	d.StartAdvisors(2 * time.Millisecond)
	defer d.Shutdown(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.HealthyCount() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background advisor never pulled the failing node")
}

func TestShutdownIdempotent(t *testing.T) {
	d := New(Config{Name: "nd"})
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchersCompose(t *testing.T) {
	// Two complexes, each a dispatcher over two nodes; a top-level
	// dispatcher routes across complexes (simplified Figure 19).
	nsA, fsA := nodes(2)
	nsB, _ := nodes(2)
	complexA := New(Config{Name: "complexA", Nodes: nsA})
	complexB := New(Config{Name: "complexB", Nodes: nsB})
	top := New(Config{Name: "geo", Nodes: []Node{complexA, complexB}})

	for i := 0; i < 40; i++ {
		if _, _, err := top.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}
	// Kill all of complex A; traffic must continue via complex B.
	for _, f := range fsA {
		f.failing.Store(true)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := top.Serve("/p"); err != nil {
			t.Fatalf("request failed after complex loss: %v", err)
		}
	}
	if top.Stats().Failovers == 0 {
		t.Fatal("no complex-level failover recorded")
	}
}

func TestMaxRetriesBounds(t *testing.T) {
	ns, fs := nodes(5)
	for _, f := range fs {
		f.failing.Store(true)
	}
	d := New(Config{Name: "nd", Nodes: ns}, WithMaxRetries(2))
	_, _, err := d.Serve("/p")
	if err == nil {
		t.Fatal("expected failure")
	}
	// Only 3 nodes may have been tried (initial + 2 retries).
	tried := int64(0)
	for _, n := range d.Stats().Nodes {
		tried += n.Failures
	}
	if tried != 3 {
		t.Fatalf("nodes tried = %d, want 3", tried)
	}
}

func TestNotFoundIsNotAFailure(t *testing.T) {
	// A 404 from a healthy node must not trigger failover or pull the node.
	nf := nodeFunc{name: "nf", fn: func(path string) (*cache.Object, httpserver.Outcome, error) {
		return nil, httpserver.OutcomeNotFound, fmt.Errorf("%w: %q", httpserver.ErrNoRoute, path)
	}}
	d2 := New(Config{Name: "nd2", Nodes: []Node{nf}})
	_, outcome, _ := d2.Serve("/ghost")
	if outcome != httpserver.OutcomeNotFound {
		t.Fatalf("outcome = %v", outcome)
	}
	if d2.Stats().Failovers != 0 || d2.HealthyCount() != 1 {
		t.Fatal("404 treated as node failure")
	}
}

type nodeFunc struct {
	name string
	fn   func(path string) (*cache.Object, httpserver.Outcome, error)
}

func (n nodeFunc) Name() string { return n.name }
func (n nodeFunc) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	return n.fn(path)
}

func TestConcurrentServeAndFailure(t *testing.T) {
	ns, fs := nodes(4)
	d := New(Config{Name: "nd", Nodes: ns})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // chaos: flap nodes
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs[i%4].failing.Store(i%3 == 0)
			d.CheckNow()
			i++
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var failed atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, _, err := d.Serve("/p"); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	// With 4 nodes and at most one failing at a time, hard failures should
	// be rare; mostly we assert no panics/races and bounded rejects.
	if failed.Load() > 2400/4 {
		t.Fatalf("too many failed requests: %d", failed.Load())
	}
}

func BenchmarkDispatchForward(b *testing.B) {
	ns, _ := nodes(8)
	d := New(Config{Name: "nd", Nodes: ns})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWeightedDistribution(t *testing.T) {
	// An SMP (weight 4) alongside a UP (weight 1): with all nodes idle the
	// tie-break cycles, but under sustained concurrent load the SMP should
	// carry roughly 4x the traffic. Emulate concurrency by holding
	// requests open.
	smp := &fakeNode{name: "smp", slow: make(chan struct{})}
	up := &fakeNode{name: "up", slow: make(chan struct{})}
	d := New(Config{Name: "nd"})
	d.AddWeighted(smp, 4)
	d.AddWeighted(up, 1)

	var wg sync.WaitGroup
	const inflight = 10
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Serve("/p")
		}()
	}
	// Wait until all ten are held open, then inspect the split.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := d.Stats()
		total := 0
		for _, n := range st.Nodes {
			total += n.Outstanding
		}
		if total == inflight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := d.Stats()
	var smpOut, upOut int
	for _, n := range st.Nodes {
		switch n.Name {
		case "smp":
			smpOut = n.Outstanding
		case "up":
			upOut = n.Outstanding
		}
	}
	close(smp.slow)
	close(up.slow)
	wg.Wait()
	if smpOut != 8 || upOut != 2 {
		t.Fatalf("outstanding split smp=%d up=%d, want 8/2 (weight-proportional)", smpOut, upOut)
	}
	if got := st.Nodes[0].Weight + st.Nodes[1].Weight; got != 5 {
		t.Fatalf("weights = %d, want 5", got)
	}
}

func TestAddWeightedClampsToOne(t *testing.T) {
	d := New(Config{Name: "nd"})
	d.AddWeighted(&fakeNode{name: "n"}, 0)
	if w := d.Stats().Nodes[0].Weight; w != 1 {
		t.Fatalf("weight = %d, want clamped to 1", w)
	}
}
