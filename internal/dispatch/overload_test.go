package dispatch

import (
	"errors"
	"fmt"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/httpserver"
	"dupserve/internal/overload"
)

// loadNode is a backend with a controllable overload signal and shed state.
type loadNode struct {
	name     string
	load     float64
	shedding bool
	served   int64
}

func (n *loadNode) Name() string        { return n.name }
func (n *loadNode) LoadSignal() float64 { return n.load }

func (n *loadNode) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	if n.shedding {
		return nil, httpserver.OutcomeShed,
			fmt.Errorf("%w: %q: %w", httpserver.ErrOverloaded, n.name, overload.ErrShed)
	}
	n.served++
	return &cache.Object{Key: cache.Key(path), Value: []byte(n.name)}, httpserver.OutcomeHit, nil
}

func TestLoadSignalSteersSelection(t *testing.T) {
	// Equal outstanding counts, but up0 reports render queueing: all traffic
	// must go to the unloaded node.
	hot := &loadNode{name: "up0", load: 2.5}
	cold := &loadNode{name: "up1", load: 0}
	d := New(Config{Name: "nd", Nodes: []Node{hot, cold}})
	for i := 0; i < 20; i++ {
		if _, _, err := d.Serve("/p"); err != nil {
			t.Fatal(err)
		}
	}
	if hot.served != 0 || cold.served != 20 {
		t.Fatalf("split hot=%d cold=%d, want 0/20", hot.served, cold.served)
	}
}

func TestShedFailsOverWithoutMarkingDown(t *testing.T) {
	shedder := &loadNode{name: "up0", shedding: true}
	healthy := &loadNode{name: "up1"}
	d := New(Config{Name: "nd", Nodes: []Node{shedder, healthy}})

	// Force the shedder to be tried first by loading the healthy node's
	// signal... simpler: just issue enough requests that round-robin
	// tie-breaking hits both. Every request must succeed via up1.
	for i := 0; i < 20; i++ {
		obj, _, err := d.Serve("/p")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(obj.Value) != "up1" {
			t.Fatalf("request %d served by %q", i, obj.Value)
		}
	}
	st := d.Stats()
	if st.ShedFailovers == 0 {
		t.Fatal("no shed failover recorded")
	}
	if st.Failovers != 0 {
		t.Fatalf("shed counted as node failure: %+v", st)
	}
	// The overloaded node must still be in the distribution list.
	for _, n := range st.Nodes {
		if n.Name == "up0" {
			if !n.Up {
				t.Fatal("overloaded node pulled from pool")
			}
			if n.Sheds == 0 {
				t.Fatal("sheds not accounted")
			}
		}
	}
}

func TestAllNodesSheddingPropagatesShed(t *testing.T) {
	a := &loadNode{name: "up0", shedding: true}
	b := &loadNode{name: "up1", shedding: true}
	d := New(Config{Name: "nd", Nodes: []Node{a, b}})
	_, outcome, err := d.Serve("/p")
	if outcome != httpserver.OutcomeShed {
		t.Fatalf("outcome = %v, want shed (pool saturated, not dead)", outcome)
	}
	if !errors.Is(err, overload.ErrShed) {
		t.Fatalf("err = %v, want overload.ErrShed in chain", err)
	}
	if d.HealthyCount() != 2 {
		t.Fatal("saturated pool lost members")
	}
	// Once the surge clears, service resumes with no advisor involvement.
	a.shedding, b.shedding = false, false
	if _, _, err := d.Serve("/p"); err != nil {
		t.Fatalf("request after surge cleared: %v", err)
	}
}

func TestDispatcherLoadSignalAggregates(t *testing.T) {
	a := &loadNode{name: "up0", load: 1.0}
	b := &loadNode{name: "up1", load: 3.0}
	d := New(Config{Name: "nd", Nodes: []Node{a, b}})
	if got := d.LoadSignal(); got != 2.0 {
		t.Fatalf("aggregate load = %v, want mean 2.0", got)
	}
	// A downed member drops out of the aggregate.
	d.MarkDown("up1")
	if got := d.LoadSignal(); got != 1.0 {
		t.Fatalf("aggregate after markdown = %v, want 1.0", got)
	}
	d.MarkDown("up0")
	if got := d.LoadSignal(); got != 0 {
		t.Fatalf("aggregate with empty list = %v, want 0", got)
	}
}

func TestNodeStatsReportLoad(t *testing.T) {
	a := &loadNode{name: "up0", load: 1.5}
	d := New(Config{Name: "nd", Nodes: []Node{a}})
	st := d.Stats()
	if st.Nodes[0].Load != 1.5 {
		t.Fatalf("node load = %v, want 1.5", st.Nodes[0].Load)
	}
}
