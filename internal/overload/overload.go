// Package overload implements admission control for the serving nodes: the
// piece of the paper's availability story that PR 2 left out. The 1998 site
// rode out 5:1 peak-to-average surges (the Kiyosato and women's-freestyle
// peaks) without falling over because the Network Dispatcher shed work to
// nodes that still had headroom and DUP's prefetching kept caches so hot
// that render capacity was never the bottleneck. This package makes the
// "still had headroom" part explicit and measurable.
//
// A Limiter guards the expensive path of a node — regenerating a page on a
// cache miss — with three mechanisms layered in the classic order:
//
//  1. A concurrency limit: at most MaxConcurrent renders run at once, the
//     node-level analogue of the fixed pool of persistent server programs.
//  2. A bounded wait queue: up to MaxQueue requests may wait for a render
//     slot. A bounded queue is the difference between a node that is slow
//     and a node that is melting; past the bound, arrivals are shed
//     immediately instead of stacking up latency for everyone.
//  3. CoDel-style queue-delay shedding: the limiter tracks when queue
//     delay first rose above Target. Once it has stood above Target for a
//     full Interval the queue is carrying standing load rather than a
//     transient burst, and new arrivals are shed; any admission that waited
//     less than Target clears the state. (Sojourn-time control as in CoDel
//     [Nichols & Jacobson 2012], applied to an admission queue instead of
//     a packet queue.)
//
// The limiter also distills its state into a single load signal — an EWMA
// of queue delay normalized by Target, plus instantaneous slot utilization —
// which the dispatch advisors and the MSIRP routing layer consume so that
// an overloaded node loses traffic *before* it dies. 0 means idle, ~1 means
// fully busy, >1 means queueing; see Load.
package overload

import (
	"errors"
	"sync"
	"time"

	"dupserve/internal/stats"
)

// ErrShed is returned by Acquire when the limiter refuses admission — the
// queue is full or CoDel is in its shedding state. Callers degrade (serve a
// bounded-staleness copy, fail over to a sibling node) rather than wait.
var ErrShed = errors.New("overload: admission shed")

// Config describes a Limiter. The zero value gets working defaults.
type Config struct {
	// MaxConcurrent is the number of render slots (default 8 — the paper's
	// uniprocessor nodes ran a fixed pool of persistent server programs).
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a slot (default
	// 2*MaxConcurrent). 0 means the default; negative means no waiting at
	// all (shed the moment every slot is busy).
	MaxQueue int
	// Target is the CoDel queue-delay target: queue delay standing above it
	// flips the limiter into shedding (default 5ms).
	Target time.Duration
	// Interval is how long queue delay must stand above Target before the
	// limiter starts shedding (default 100ms).
	Interval time.Duration
	// Clock substitutes the time source (tests).
	Clock func() time.Time
	// OnShedChange, if set, is called once per CoDel shedding transition
	// (true when the limiter starts refusing admissions, false when it
	// reconverges). It runs outside the limiter's lock, on the goroutine
	// that caused the transition, and must not block.
	OnShedChange func(shedding bool)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// ewmaAlpha weights each new queue-delay observation; ~0.2 remembers the
// last dozen or so observations, fast enough to track a surge onset and
// slow enough not to flap on a single unlucky wait.
const ewmaAlpha = 0.2

// Limiter is one node's admission controller. Safe for concurrent use.
type Limiter struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	waiting  int

	// CoDel state, guarded by mu: aboveSince is the earliest instant from
	// which queue delay is known to have stood above Target (zero when it
	// last dipped below).
	aboveSince time.Time
	shedding   bool

	ewmaDelay float64 // seconds, guarded by mu

	admitted  stats.Counter // admissions straight into a free slot
	queued    stats.Counter // admissions that waited in the queue
	shed      stats.Counter // refusals (queue full or CoDel shedding)
	shedCodel stats.Counter // refusals specifically from CoDel state
}

// NewLimiter returns a limiter over cfg.
func NewLimiter(cfg Config) *Limiter {
	l := &Limiter{cfg: cfg.withDefaults()}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Acquire requests admission to the limited section. On success it returns
// a release function that MUST be called exactly once when the work
// completes. On refusal it returns ErrShed and a nil release.
func (l *Limiter) Acquire() (release func(), err error) {
	l.mu.Lock()
	if l.inflight < l.cfg.MaxConcurrent && l.waiting == 0 {
		l.inflight++
		prev := l.shedding
		l.observeDelayLocked(0)
		changed := l.shedding != prev
		cur := l.shedding
		l.mu.Unlock()
		l.admitted.Inc()
		l.notifyShed(changed, cur)
		return l.release, nil
	}
	if l.shedding || l.waiting >= l.cfg.MaxQueue {
		codel := l.shedding
		l.mu.Unlock()
		l.shed.Inc()
		if codel {
			l.shedCodel.Inc()
		}
		return nil, ErrShed
	}
	l.waiting++
	start := l.cfg.Clock()
	for l.inflight >= l.cfg.MaxConcurrent {
		l.cond.Wait()
	}
	l.waiting--
	l.inflight++
	prev := l.shedding
	l.observeDelayLocked(l.cfg.Clock().Sub(start))
	changed := l.shedding != prev
	cur := l.shedding
	l.mu.Unlock()
	l.queued.Inc()
	l.notifyShed(changed, cur)
	return l.release, nil
}

// notifyShed fires the shed-transition callback when changed is true.
func (l *Limiter) notifyShed(changed, shedding bool) {
	if changed && l.cfg.OnShedChange != nil {
		l.cfg.OnShedChange(shedding)
	}
}

// TryAcquire is Acquire without the willingness to wait: it admits only
// into a free slot. Probes and background work use it so they never add
// queueing delay to foreground traffic.
func (l *Limiter) TryAcquire() (release func(), err error) {
	l.mu.Lock()
	if l.inflight < l.cfg.MaxConcurrent && l.waiting == 0 && !l.shedding {
		l.inflight++
		l.observeDelayLocked(0)
		l.mu.Unlock()
		l.admitted.Inc()
		return l.release, nil
	}
	l.mu.Unlock()
	l.shed.Inc()
	return nil, ErrShed
}

func (l *Limiter) release() {
	l.mu.Lock()
	l.inflight--
	prev := l.shedding
	if l.inflight == 0 && l.waiting == 0 {
		// Fully drained: whatever standing queue CoDel saw is gone, so the
		// shedding state must not outlive it. This is what makes a node
		// reconverge promptly once a surge clears.
		l.shedding = false
		l.aboveSince = time.Time{}
	}
	changed := l.shedding != prev
	cur := l.shedding
	l.mu.Unlock()
	l.cond.Signal()
	l.notifyShed(changed, cur)
}

// observeDelayLocked feeds one admission's queue delay into the CoDel state
// machine and the EWMA. Caller holds mu.
func (l *Limiter) observeDelayLocked(d time.Duration) {
	if d <= l.cfg.Target {
		// Someone got through quickly: the queue is not standing. An
		// admission straight into a free slot (d == 0) lands here too.
		l.aboveSince = time.Time{}
		l.shedding = false
	} else {
		now := l.cfg.Clock()
		// This request's whole wait was spent above target, so the queue
		// has been standing at least since it entered.
		since := now.Add(-d)
		if l.aboveSince.IsZero() || since.Before(l.aboveSince) {
			l.aboveSince = since
		}
		if now.Sub(l.aboveSince) >= l.cfg.Interval {
			l.shedding = true
		}
	}
	l.ewmaDelay = (1-ewmaAlpha)*l.ewmaDelay + ewmaAlpha*d.Seconds()
}

// Load is the node's scalar load signal: instantaneous slot utilization
// (inflight + waiting, over MaxConcurrent) plus the EWMA queue delay
// normalized by the CoDel target. An idle node reads 0; a node with every
// slot busy reads ~1; queueing pushes it above 1. Dispatch advisors and the
// routing layer treat it as "how close to melting".
func (l *Limiter) Load() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	util := float64(l.inflight+l.waiting) / float64(l.cfg.MaxConcurrent)
	delay := l.ewmaDelay / l.cfg.Target.Seconds()
	return util + delay
}

// Shedding reports whether the CoDel controller is currently refusing
// admissions.
func (l *Limiter) Shedding() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shedding
}

// Inflight returns the number of admissions currently held.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Waiting returns the number of requests queued for a slot.
func (l *Limiter) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// LimiterStats snapshots the limiter's counters.
type LimiterStats struct {
	Admitted  int64 // admissions straight into a free slot
	Queued    int64 // admissions after waiting in the bounded queue
	Shed      int64 // refusals (queue full or CoDel shedding)
	ShedCodel int64 // refusals due to the CoDel standing-delay state
	Inflight  int
	Waiting   int
	Load      float64
}

// Stats returns a snapshot of the limiter.
func (l *Limiter) Stats() LimiterStats {
	load := l.Load()
	l.mu.Lock()
	inflight, waiting := l.inflight, l.waiting
	l.mu.Unlock()
	return LimiterStats{
		Admitted:  l.admitted.Value(),
		Queued:    l.queued.Value(),
		Shed:      l.shed.Value(),
		ShedCodel: l.shedCodel.Value(),
		Inflight:  inflight,
		Waiting:   waiting,
		Load:      load,
	}
}

// RegisterMetrics publishes the limiter's counters and load signal into a
// registry. labels (may be nil) are attached to every series.
func (l *Limiter) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("overload_admitted_total",
		"render admissions into a free slot", labels, &l.admitted)
	reg.RegisterCounter("overload_queued_total",
		"render admissions after waiting in the bounded queue", labels, &l.queued)
	reg.RegisterCounter("overload_shed_total",
		"render admissions refused (queue full or CoDel shedding)", labels, &l.shed)
	reg.RegisterCounter("overload_shed_codel_total",
		"admissions refused by the CoDel standing-delay controller", labels, &l.shedCodel)
	reg.RegisterFunc("overload_load",
		"node load signal: slot utilization + EWMA queue delay over target", labels,
		l.Load)
	reg.RegisterFunc("overload_inflight",
		"render slots currently held", labels,
		func() float64 { return float64(l.Inflight()) })
	reg.RegisterFunc("overload_shedding",
		"1 while the CoDel controller is refusing admissions", labels,
		func() float64 {
			if l.Shedding() {
				return 1
			}
			return 0
		})
}
