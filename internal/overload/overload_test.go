package overload

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dupserve/internal/stats"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(1998, 2, 7, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAcquireReleaseBasic(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrent: 2})
	r1, err := l.Acquire()
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	r2, err := l.Acquire()
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	r1()
	r2()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	st := l.Stats()
	if st.Admitted != 2 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want 2 admitted 0 shed", st)
	}
}

func TestQueueBoundSheds(t *testing.T) {
	// One slot, no queue: the second concurrent acquire must shed at once.
	l := NewLimiter(Config{MaxConcurrent: 1, MaxQueue: -1})
	r, err := l.Acquire()
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := l.Acquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("second acquire err = %v, want ErrShed", err)
	}
	r()
	if _, err := l.Acquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestBoundedQueueAdmitsAfterRelease(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrent: 1, MaxQueue: 1})
	r1, err := l.Acquire()
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	admitted := make(chan func(), 1)
	go func() {
		r, err := l.Acquire() // queues
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			admitted <- nil
			return
		}
		admitted <- r
	}()

	// Wait for the goroutine to be queued, then verify the queue bound.
	deadline := time.Now().Add(2 * time.Second)
	for l.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := l.Acquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("over-queue acquire err = %v, want ErrShed", err)
	}

	r1()
	r2 := <-admitted
	if r2 == nil {
		t.Fatal("queued waiter not admitted")
	}
	r2()
	st := l.Stats()
	if st.Queued != 1 {
		t.Fatalf("queued = %d, want 1", st.Queued)
	}
}

func TestCodelShedsOnStandingDelay(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Config{
		MaxConcurrent: 1, MaxQueue: 4,
		Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond,
		Clock: clk.Now,
	})

	// Hold the only slot so every admission below goes through the queue.
	hold, err := l.Acquire()
	if err != nil {
		t.Fatalf("hold: %v", err)
	}

	// One queued waiter that will observe a long delay. It keeps its slot so
	// the limiter stays busy — shedding is only meaningful under contention
	// (a full drain intentionally resets it).
	admitted := make(chan func(), 1)
	go func() {
		r, err := l.Acquire()
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			admitted <- nil
			return
		}
		admitted <- r
	}()
	deadline := time.Now().Add(2 * time.Second)
	for l.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Standing delay: more than a full interval passes with the waiter
	// stuck, so its eventual admission proves delay stood above target.
	clk.Advance(200 * time.Millisecond)
	hold()
	r2 := <-admitted
	if r2 == nil {
		t.FailNow()
	}

	if !l.Shedding() {
		t.Fatal("limiter not shedding after standing queue delay")
	}
	if _, err := l.Acquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire while shedding err = %v, want ErrShed", err)
	}
	st := l.Stats()
	if st.ShedCodel == 0 {
		t.Fatalf("shedCodel = 0, want > 0 (stats %+v)", st)
	}
	r2()
	if l.Shedding() {
		t.Fatal("shedding survived a full drain")
	}
}

func TestSheddingClearsOnDrain(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Config{
		MaxConcurrent: 1, MaxQueue: 4,
		Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond,
		Clock: clk.Now,
	})
	hold, _ := l.Acquire()
	done := make(chan struct{})
	go func() {
		r, err := l.Acquire()
		if err == nil {
			r()
		}
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for l.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	clk.Advance(200 * time.Millisecond)
	hold()
	<-done // limiter now drained; release resets the shedding state

	if l.Shedding() {
		t.Fatal("shedding survived a full drain")
	}
	if _, err := l.Acquire(); err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
}

func TestLoadSignal(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrent: 4})
	if got := l.Load(); got != 0 {
		t.Fatalf("idle load = %v, want 0", got)
	}
	var rs []func()
	for i := 0; i < 4; i++ {
		r, err := l.Acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rs = append(rs, r)
	}
	if got := l.Load(); got < 1 {
		t.Fatalf("saturated load = %v, want >= 1", got)
	}
	for _, r := range rs {
		r()
	}
	if got := l.Load(); got >= 1 {
		t.Fatalf("drained load = %v, want < 1", got)
	}
}

func TestTryAcquireNeverQueues(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrent: 1, MaxQueue: 8})
	r, err := l.TryAcquire()
	if err != nil {
		t.Fatalf("try acquire: %v", err)
	}
	if _, err := l.TryAcquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("second try acquire err = %v, want ErrShed", err)
	}
	if got := l.Waiting(); got != 0 {
		t.Fatalf("waiting = %d, want 0", got)
	}
	r()
}

func TestConcurrentChurn(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrent: 4, MaxQueue: 8})
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r, err := l.Acquire()
				if err != nil {
					shed.Add(1)
					continue
				}
				served.Add(1)
				r()
			}
		}()
	}
	wg.Wait()
	if l.Inflight() != 0 || l.Waiting() != 0 {
		t.Fatalf("limiter not drained: inflight=%d waiting=%d", l.Inflight(), l.Waiting())
	}
	total := served.Load() + shed.Load()
	if total != 16*200 {
		t.Fatalf("accounted %d of %d acquisitions", total, 16*200)
	}
	st := l.Stats()
	if st.Admitted+st.Queued != served.Load() || st.Shed != shed.Load() {
		t.Fatalf("stats %+v disagree with observed served=%d shed=%d", st, served.Load(), shed.Load())
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := stats.NewRegistry()
	l := NewLimiter(Config{MaxConcurrent: 1})
	l.RegisterMetrics(reg, stats.Labels{"node": "up0"})
	r, err := l.Acquire()
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer r()
	found := map[string]bool{}
	for _, fam := range reg.Snapshot() {
		found[fam.Name] = true
	}
	for _, want := range []string{"overload_admitted_total", "overload_shed_total", "overload_load", "overload_shedding"} {
		if !found[want] {
			t.Fatalf("metric %q not registered (have %v)", want, found)
		}
	}
}
