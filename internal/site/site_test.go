package site

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
)

// buildSite wires a complete DUP stack around a toy site: graph, cache,
// engine, site. Returns the site and the serving cache.
func buildSite(t *testing.T, spec Spec) (*Site, *core.Engine, *cache.Cache) {
	t.Helper()
	d := db.New("master")
	g := odg.New()
	c := cache.New("serving")
	// Two-phase construction: the engine needs the generator, which is the
	// site's fragment engine, which needs the engine as registrar. Break
	// the cycle with a late-bound generator.
	var st *Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	var err error
	st, err = Build(spec, d, e)
	if err != nil {
		t.Fatal(err)
	}
	return st, e, c
}

func TestBuildPageUniverse(t *testing.T) {
	st, _, _ := buildSite(t, DefaultSpec())
	spec := st.Spec
	pages := st.Pages()
	// homes + medals + sports idx + sports + events + countries +
	// athletes + news idx + stories, per language.
	perLang := spec.Days + 1 + 1 + spec.Sports + spec.Sports*spec.EventsPerSport +
		spec.Countries + spec.Athletes + 1 + spec.NewsStories
	if got, want := len(pages), perLang*len(spec.Languages); got != want {
		t.Fatalf("pages = %d, want %d", got, want)
	}
	// Spot-check path shapes.
	for _, p := range []string{"/en/home/day01", "/en/medals", "/en/sports/alpine",
		"/en/sports/alpine/alpine:e0", "/en/athletes/a0000", "/en/news/n000"} {
		if !st.Engine.Defined(p) {
			t.Fatalf("missing page %s", p)
		}
	}
}

func TestPaperSpecScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build")
	}
	st, _, _ := buildSite(t, PaperSpec())
	n := len(st.Pages())
	// The paper reports ~21,000 dynamically generated pages.
	if n < 10000 {
		t.Fatalf("paper-scale site has %d pages, want >= 10000", n)
	}
}

func TestPrerenderAll(t *testing.T) {
	st, _, c := buildSite(t, DefaultSpec())
	n := 0
	if err := st.PrerenderAll(1, func(o *cache.Object) {
		c.Put(o)
		n++
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(st.Pages()) {
		t.Fatalf("prerendered %d, want %d", n, len(st.Pages()))
	}
	if c.Len() != n {
		t.Fatalf("cache holds %d", c.Len())
	}
}

func TestEventPageBeforeAndAfterResult(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	ev := st.Events[0]
	page := cache.Key("/en/sports/" + ev.Sport + "/" + ev.Key)
	obj, _ := c.Peek(page)
	if !strings.Contains(string(obj.Value), "No results yet") {
		t.Fatalf("pre-result page = %q", obj.Value)
	}
	gold, silver, bronze := ev.Participants[0], ev.Participants[1], ev.Participants[2]
	tx, err := st.RecordResult(ev, gold, silver, bronze, "251.6")
	if err != nil {
		t.Fatal(err)
	}
	// Propagate manually (no trigger monitor in this test).
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	res := e.OnChange(tx.LSN, changed...)
	if res.Updated == 0 {
		t.Fatalf("propagation result = %+v", res)
	}
	obj, _ = c.Peek(page)
	if !strings.Contains(string(obj.Value), gold) {
		t.Fatalf("post-result page missing gold medalist: %q", obj.Value)
	}
}

func TestResultFanOutMatchesComposition(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	ev := st.Events[0]
	tx, err := st.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "10")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	res := e.OnChange(tx.LSN, changed...)

	langs := len(st.Spec.Languages)
	// Expected affected pages per language: event page, sport page,
	// current home, medals page, <=3 country pages, participant athlete
	// pages; plus frag:medals. Athletes competing in the event:
	participants := len(ev.Participants)
	min := langs*(1+1+1+1+1+participants) + 1 // at least 1 country page
	max := langs*(1+1+1+1+3+participants) + 2 // frag:medals + frag:news(?)
	if res.Updated < min || res.Updated > max+2 {
		t.Fatalf("fan-out = %d, want in [%d, %d]", res.Updated, min, max+2)
	}
}

func TestMedalStandingsUpdateOnHomeAndMedalsPages(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	ev := st.Events[0]
	gold := ev.Participants[0]
	goldCountry := st.athleteCountry[gold]
	tx, err := st.RecordResult(ev, gold, ev.Participants[1], ev.Participants[2], "10")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	e.OnChange(tx.LSN, changed...)

	medals, _ := c.Peek("/en/medals")
	if !strings.Contains(string(medals.Value), goldCountry) {
		t.Fatalf("medals page missing %s: %q", goldCountry, medals.Value)
	}
	home, _ := c.Peek(cache.Key(fmt.Sprintf("/en/home/day%02d", st.CurrentDay())))
	if !strings.Contains(string(home.Value), ev.Key) {
		t.Fatalf("home page ticker missing result: %q", home.Value)
	}
	country, _ := c.Peek(cache.Key("/en/countries/" + goldCountry))
	if !strings.Contains(string(country.Value), "Gold 1") {
		t.Fatalf("country page = %q", country.Value)
	}
}

func TestArchivedHomeDropsLiveFragments(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	// Advance to day 2: day 1's home page re-renders as an archive.
	if _, err := st.SetCurrentDay(2); err != nil {
		t.Fatal(err)
	}
	propagateAll(t, st, e)

	// A result on day 2 must not touch day 1's archived home page.
	day1 := cache.Key("/en/home/day01")
	before, _ := c.Peek(day1)
	ev := st.Events[0]
	tx, err := st.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "1")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	e.OnChange(tx.LSN, changed...)
	after, _ := c.Peek(day1)
	if string(before.Value) != string(after.Value) {
		t.Fatal("archived home page was regenerated by a later-day result")
	}
	// But day 2's home page reflects the result.
	day2, _ := c.Peek("/en/home/day02")
	if !strings.Contains(string(day2.Value), ev.Key) {
		t.Fatalf("current home missing result: %q", day2.Value)
	}
}

// propagateAll drains every un-propagated transaction through the engine,
// as a trigger monitor would.
func propagateAll(t *testing.T, st *Site, e *core.Engine) {
	t.Helper()
	for _, tx := range st.DB.LogSince(0) {
		var changed []odg.NodeID
		for _, ch := range tx.Changes {
			changed = append(changed, st.Indexer(ch)...)
		}
		e.OnChange(tx.LSN, changed...)
	}
}

func TestPublishNewsPropagates(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	tx, err := st.PublishNews(0, "Lipinski takes gold", "Figure skating story.")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	e.OnChange(tx.LSN, changed...)

	story, _ := c.Peek("/en/news/n000")
	if !strings.Contains(string(story.Value), "Lipinski") {
		t.Fatalf("story page = %q", story.Value)
	}
	idx, _ := c.Peek("/en/news")
	if !strings.Contains(string(idx.Value), "Lipinski") {
		t.Fatalf("news index = %q", idx.Value)
	}
	home, _ := c.Peek(cache.Key(fmt.Sprintf("/en/home/day%02d", st.CurrentDay())))
	if !strings.Contains(string(home.Value), "Lipinski") {
		t.Fatalf("home page headlines = %q", home.Value)
	}
}

func TestIndexerEmitsIndexOnlyForInserts(t *testing.T) {
	st, _, _ := buildSite(t, DefaultSpec())
	insert := db.Change{Table: "results", Key: "alpine:e0", Op: db.OpPut, Created: true}
	ids := st.Indexer(insert)
	if len(ids) != 2 || ids[1] != odg.NodeID("db:results:index:alpine:") {
		t.Fatalf("insert ids = %v", ids)
	}
	update := db.Change{Table: "results", Key: "alpine:e0", Op: db.OpPut, Created: false}
	ids = st.Indexer(update)
	if len(ids) != 1 {
		t.Fatalf("update ids = %v", ids)
	}
	del := db.Change{Table: "news", Key: "n001", Op: db.OpDelete}
	ids = st.Indexer(del)
	if len(ids) != 2 || ids[1] != odg.NodeID("db:news:index:") {
		t.Fatalf("delete ids = %v", ids)
	}
}

func TestConservativeMapperOverInvalidates(t *testing.T) {
	st, _, _ := buildSite(t, DefaultSpec())
	prefixes := st.ConservativeMapper("db:results:alpine:e0")
	joined := strings.Join(prefixes, " ")
	for _, want := range []string{"/en/sports/alpine", "/en/athletes", "/en/home"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("mapper missing %s: %v", want, prefixes)
		}
	}
	if got := st.ConservativeMapper("db:medals:AUT"); len(got) == 0 {
		t.Fatal("medals mapping empty")
	}
	if got := st.ConservativeMapper("db:unknown:x"); len(got) != 0 {
		t.Fatalf("unknown table mapped to %v", got)
	}
}

func TestSetCurrentDayValidation(t *testing.T) {
	st, _, _ := buildSite(t, DefaultSpec())
	if _, err := st.SetCurrentDay(0); err == nil {
		t.Fatal("day 0 accepted")
	}
	if _, err := st.SetCurrentDay(99); err == nil {
		t.Fatal("day 99 accepted")
	}
	if _, err := st.SetCurrentDay(1); err != nil {
		t.Fatalf("no-op day change errored: %v", err)
	}
}

func TestRecordResultSameCountryTwoMedals(t *testing.T) {
	st, _, _ := buildSite(t, Spec{
		Sports: 1, EventsPerSport: 1, Athletes: 16, Countries: 2,
		NewsStories: 1, Days: 1, EventsPerAthlete: 1, Languages: []string{"en"},
	})
	ev := st.Events[0]
	// Participants alternate countries: a0000 and a0002 share a country.
	gold, bronze := ev.Participants[0], ev.Participants[2]
	silver := ev.Participants[1]
	if st.athleteCountry[gold] != st.athleteCountry[bronze] {
		t.Fatal("test setup: expected shared country")
	}
	if _, err := st.RecordResult(ev, gold, silver, bronze, "1"); err != nil {
		t.Fatal(err)
	}
	row, ok, err := st.DB.Get("medals", st.athleteCountry[gold])
	if err != nil || !ok {
		t.Fatal("medals row missing")
	}
	if row.Cols["g"] != "1" || row.Cols["b"] != "1" {
		t.Fatalf("medal counts = %v, want g=1 b=1", row.Cols)
	}
}

func TestTickerCapsAtEight(t *testing.T) {
	st, _, _ := buildSite(t, DefaultSpec())
	for i, ev := range st.Events {
		if i >= 10 {
			break
		}
		if _, err := st.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "1"); err != nil {
			t.Fatal(err)
		}
	}
	row, _, err := st.DB.Get("today", dayKey(st.CurrentDay()))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(row.Cols["recent"], ";")); n > 8 {
		t.Fatalf("ticker has %d entries, want <= 8", n)
	}
}

func TestParticipantsPerEventScale(t *testing.T) {
	st, _, _ := buildSite(t, PaperSpec())
	total := 0
	for _, ev := range st.Events {
		total += len(ev.Participants)
	}
	avg := float64(total) / float64(len(st.Events))
	// Paper-scale target: ~50 participants per event so one result touches
	// ~100+ pages across two languages.
	if avg < 30 || avg > 80 {
		t.Fatalf("avg participants per event = %.1f, want 30-80", avg)
	}
}

func TestStatics(t *testing.T) {
	st, _, _ := buildSite(t, DefaultSpec())
	statics := st.Statics()
	if len(statics) != 4*len(st.Spec.Languages) {
		t.Fatalf("statics = %d", len(statics))
	}
	if _, ok := statics["/en/welcome"]; !ok {
		t.Fatal("welcome page missing")
	}
}

func TestSyndicationFeed(t *testing.T) {
	spec := DefaultSpec()
	spec.Syndication = []string{"cbs"}
	st, e, c := buildSite(t, spec)
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	feedKey := cache.Key("/feed/cbs/alpine")
	obj, ok := c.Peek(feedKey)
	if !ok {
		t.Fatal("feed not prerendered")
	}
	if obj.ContentType != "application/json" {
		t.Fatalf("content type = %q", obj.ContentType)
	}
	var doc struct {
		Sport   string `json:"sport"`
		Results []struct {
			Event string `json:"event"`
			Gold  string `json:"gold"`
		} `json:"results"`
	}
	if err := json.Unmarshal(obj.Value, &doc); err != nil {
		t.Fatalf("invalid JSON %q: %v", obj.Value, err)
	}
	if doc.Sport != "alpine" || len(doc.Results) != 0 {
		t.Fatalf("doc = %+v", doc)
	}

	// A result propagates into the feed like any other page.
	ev := st.Events[0] // alpine:e0
	tx, err := st.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "9.5")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	e.OnChange(tx.LSN, changed...)
	obj, _ = c.Peek(feedKey)
	if err := json.Unmarshal(obj.Value, &doc); err != nil {
		t.Fatalf("invalid JSON after update %q: %v", obj.Value, err)
	}
	if len(doc.Results) != 1 || doc.Results[0].Gold != ev.Participants[0] {
		t.Fatalf("feed after result = %+v", doc)
	}
}

func TestExtraNewsLanguages(t *testing.T) {
	spec := DefaultSpec()
	spec.ExtraNewsLanguages = []string{"fr"}
	st, e, c := buildSite(t, spec)
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	if !st.Engine.Defined("/fr/news/n000") || !st.Engine.Defined("/fr/news") {
		t.Fatal("french news pages missing")
	}
	// English sports pages must NOT exist in French.
	if st.Engine.Defined("/fr/sports") {
		t.Fatal("french full site should not exist")
	}
	tx, err := st.PublishNews(0, "Or pour Lipinski", "corps")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	e.OnChange(tx.LSN, changed...)
	obj, _ := c.Peek("/fr/news/n000")
	if !strings.Contains(string(obj.Value), "Lipinski") {
		t.Fatalf("french story = %q", obj.Value)
	}
}

func TestPublishPhotoPropagatesToSubjectPages(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	athlete := st.AthleteIDs[0]
	before, _ := c.Peek(cache.Key("/en/athletes/" + athlete))

	tx, err := st.PublishPhoto(0, "athlete:"+athlete, "Victory leap")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	res := e.OnChange(tx.LSN, changed...)
	if res.Updated == 0 {
		t.Fatalf("photo propagation: %+v", res)
	}
	after, _ := c.Peek(cache.Key("/en/athletes/" + athlete))
	if string(before.Value) == string(after.Value) {
		t.Fatal("athlete page unchanged by photo")
	}
	if !strings.Contains(string(after.Value), "Victory leap") {
		t.Fatalf("photo missing from athlete page: %q", after.Value)
	}
	// Unrelated athlete untouched.
	other := st.AthleteIDs[1]
	obj, _ := c.Peek(cache.Key("/en/athletes/" + other))
	if strings.Contains(string(obj.Value), "Victory leap") {
		t.Fatal("photo leaked to unrelated athlete")
	}
}

func TestPublishEventPhoto(t *testing.T) {
	st, e, c := buildSite(t, DefaultSpec())
	if err := st.PrerenderAll(1, func(o *cache.Object) { c.Put(o) }); err != nil {
		t.Fatal(err)
	}
	ev := st.Events[0]
	tx, err := st.PublishPhoto(1, "event:"+ev.Key, "Photo finish")
	if err != nil {
		t.Fatal(err)
	}
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	e.OnChange(tx.LSN, changed...)
	page, _ := c.Peek(cache.Key("/en/sports/" + ev.Sport + "/" + ev.Key))
	if !strings.Contains(string(page.Value), "Photo finish") {
		t.Fatalf("event page missing photo: %q", page.Value)
	}
}
