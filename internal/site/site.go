// Package site builds the Olympic Games web site of section 3 of the
// paper: the database schema, the taxonomy of sports, events, athletes,
// countries and news, and the renderers for every dynamic page — home pages
// per day, medal standings, sport and event pages, country and athlete
// pages, and news — composed from shared fragments exactly as Figure 15
// describes.
//
// The construction is parameterized by Spec so tests run a toy site while
// the simulator runs at paper scale (tens of thousands of dynamic pages in
// two languages). Dependencies between pages and database rows are never
// written by hand: they fall out of what each renderer reads, captured by
// the fragment engine.
package site

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/odg"
)

// Spec sizes the site.
type Spec struct {
	Sports         int
	EventsPerSport int
	Athletes       int
	Countries      int
	NewsStories    int
	Days           int
	// EventsPerAthlete is how many events each athlete competes in.
	EventsPerAthlete int
	Languages        []string
	// ExtraNewsLanguages adds news-only translations — the paper: "all
	// news articles were also available in French".
	ExtraNewsLanguages []string
	// Syndication enables the partner results feed (the paper: "the site
	// served a subset of the sport results for the CBS web page"): one
	// JSON feed per sport at /feed/<partner>/<sport>.
	Syndication []string
}

// DefaultSpec returns a toy site for tests and examples.
func DefaultSpec() Spec {
	return Spec{
		Sports: 3, EventsPerSport: 4, Athletes: 60, Countries: 8,
		NewsStories: 10, Days: 4, EventsPerAthlete: 2, Languages: []string{"en"},
	}
}

// PaperSpec returns the 1998-scale site: ~20k+ dynamic pages across two
// languages, events spread over 16 days, participant counts that make one
// result update touch on the order of a hundred pages.
func PaperSpec() Spec {
	return Spec{
		Sports: 10, EventsPerSport: 15, Athletes: 8000, Countries: 72,
		NewsStories: 500, Days: 16, EventsPerAthlete: 1,
		Languages:          []string{"en", "ja"},
		ExtraNewsLanguages: []string{"fr"},
		Syndication:        []string{"cbs"},
	}
}

var sportNames = []string{
	"alpine", "crosscountry", "skijumping", "figureskating", "speedskating",
	"shorttrack", "hockey", "luge", "bobsled", "biathlon", "curling",
	"snowboard", "freestyle", "nordiccombined",
}

var iocCodes = []string{
	"AUT", "GER", "NOR", "JPN", "USA", "RUS", "CAN", "ITA", "FIN", "FRA",
	"SUI", "NED", "KOR", "CHN", "SWE", "CZE", "UKR", "BLR", "KAZ", "POL",
	"AUS", "GBR", "ESP", "BUL", "DEN", "EST", "SLO", "SVK", "LAT", "LTU",
	"HUN", "ROU", "CRO", "BEL", "GRE", "TUR", "ARG", "BRA", "CHI", "MEX",
}

// Event is one competition: the unit whose completion triggers a result
// update.
type Event struct {
	// Key is the results/events row key, "<sport>:e<n>".
	Key string
	// Sport is the sport name.
	Sport string
	// Num is the event number within the sport.
	Num int
	// Day (1-based) is when the event is held.
	Day int
	// Participants are the athlete IDs competing.
	Participants []string
}

// Site is a built site: schema seeded, renderers defined.
type Site struct {
	Spec   Spec
	DB     *db.DB
	Engine *fragment.Engine

	Events       []*Event
	AthleteIDs   []string
	CountryCodes []string
	// athleteCountry maps athlete ID -> country code.
	athleteCountry map[string]string

	pages []string

	mu         sync.Mutex
	currentDay int
}

// Build seeds the schema and taxonomy into database and defines every
// renderer on a new fragment engine wired to registrar.
func Build(spec Spec, database *db.DB, registrar fragment.Registrar) (*Site, error) {
	return build(spec, database, registrar, true)
}

// BuildReplica defines the renderers against a replica database WITHOUT
// seeding it: the schedule, athlete registrations and today rows arrive via
// replication from the master, exactly as each complex's SP2s received
// them. The in-memory taxonomy (events, athlete countries) is derived
// deterministically from spec, so master and replicas agree on it.
func BuildReplica(spec Spec, database *db.DB, registrar fragment.Registrar) (*Site, error) {
	return build(spec, database, registrar, false)
}

func build(spec Spec, database *db.DB, registrar fragment.Registrar, seed bool) (*Site, error) {
	if spec.Sports > len(sportNames) {
		spec.Sports = len(sportNames)
	}
	if spec.Days < 1 {
		spec.Days = 1
	}
	if spec.EventsPerAthlete < 1 {
		spec.EventsPerAthlete = 1
	}
	if len(spec.Languages) == 0 {
		spec.Languages = []string{"en"}
	}
	s := &Site{
		Spec:           spec,
		DB:             database,
		Engine:         fragment.New(fragment.Config{DB: database, Registrar: registrar}),
		athleteCountry: make(map[string]string),
	}
	for _, t := range []string{"events", "results", "medals", "athletes", "news", "today", "photos"} {
		database.CreateTable(t)
	}
	s.buildTaxonomy()
	if seed {
		if err := s.seed(); err != nil {
			return nil, err
		}
	} else {
		s.currentDay = 1
	}
	s.defineFragments()
	s.definePages()
	s.defineSyndication()
	s.defineExtraNews()
	return s, nil
}

// buildTaxonomy constructs sports, events, athletes and countries
// deterministically from the spec.
func (s *Site) buildTaxonomy() {
	for i := 0; i < s.Spec.Countries; i++ {
		if i < len(iocCodes) {
			s.CountryCodes = append(s.CountryCodes, iocCodes[i])
		} else {
			s.CountryCodes = append(s.CountryCodes, fmt.Sprintf("N%02d", i))
		}
	}
	for i := 0; i < s.Spec.Athletes; i++ {
		id := fmt.Sprintf("a%04d", i)
		s.AthleteIDs = append(s.AthleteIDs, id)
		s.athleteCountry[id] = s.CountryCodes[i%len(s.CountryCodes)]
	}
	// Events per sport, spread across days with the real games' density:
	// light opening days, heavy middle weekend and closing weekend.
	schedule := competitionSchedule(s.Spec.Days)
	i := 0
	for si := 0; si < s.Spec.Sports; si++ {
		sport := sportNames[si]
		for e := 0; e < s.Spec.EventsPerSport; e++ {
			ev := &Event{
				Key:   fmt.Sprintf("%s:e%d", sport, e),
				Sport: sport,
				Num:   e,
				Day:   schedule[i%len(schedule)],
			}
			i++
			s.Events = append(s.Events, ev)
		}
	}
	// Assign athletes to events: athlete i belongs to sport i%Sports and
	// competes in EventsPerAthlete consecutive events of that sport.
	if s.Spec.Sports > 0 && s.Spec.EventsPerSport > 0 {
		byKey := make(map[string]*Event, len(s.Events))
		for _, ev := range s.Events {
			byKey[ev.Key] = ev
		}
		for i, id := range s.AthleteIDs {
			sport := sportNames[i%s.Spec.Sports]
			for k := 0; k < s.Spec.EventsPerAthlete; k++ {
				num := (i/s.Spec.Sports + k) % s.Spec.EventsPerSport
				ev := byKey[fmt.Sprintf("%s:e%d", sport, num)]
				ev.Participants = append(ev.Participants, id)
			}
		}
	}
}

// seed writes the static taxonomy (schedule, athlete registrations, today
// rows) into the database in one transaction per table.
func (s *Site) seed() error {
	tx := s.DB.NewTx()
	for _, ev := range s.Events {
		tx.Put("events", ev.Key, map[string]string{
			"sport":        ev.Sport,
			"name":         fmt.Sprintf("%s event %d", ev.Sport, ev.Num),
			"day":          fmt.Sprint(ev.Day),
			"participants": strings.Join(ev.Participants, ","),
		})
	}
	if _, err := s.DB.Commit(tx); err != nil {
		return fmt.Errorf("site: seed events: %w", err)
	}

	tx = s.DB.NewTx()
	for i, id := range s.AthleteIDs {
		sport := sportNames[i%s.Spec.Sports]
		var evs []string
		for k := 0; k < s.Spec.EventsPerAthlete; k++ {
			num := (i/s.Spec.Sports + k) % s.Spec.EventsPerSport
			evs = append(evs, fmt.Sprintf("%s:e%d", sport, num))
		}
		tx.Put("athletes", id, map[string]string{
			"name":    fmt.Sprintf("Athlete %04d", i),
			"country": s.athleteCountry[id],
			"sport":   sport,
			"events":  strings.Join(evs, ","),
		})
	}
	if _, err := s.DB.Commit(tx); err != nil {
		return fmt.Errorf("site: seed athletes: %w", err)
	}

	tx = s.DB.NewTx()
	for d := 1; d <= s.Spec.Days; d++ {
		cur := "0"
		if d == 1 {
			cur = "1"
		}
		tx.Put("today", dayKey(d), map[string]string{"recent": "", "current": cur})
	}
	if _, err := s.DB.Commit(tx); err != nil {
		return fmt.Errorf("site: seed today: %w", err)
	}
	s.currentDay = 1
	return nil
}

func dayKey(d int) string { return fmt.Sprintf("day%02d", d) }

// competitionSchedule returns an expanded day list whose multiplicities
// give the per-day event density. The 16-day games concentrated finals in
// the middle and closing stretches (days 7 and 14 were the update peaks);
// shorter toy schedules fall back to uniform.
func competitionSchedule(days int) []int {
	if days != 16 {
		out := make([]int, days)
		for d := range out {
			out[d] = d + 1
		}
		return out
	}
	weights := []int{2, 2, 3, 3, 3, 4, 6, 4, 3, 5, 4, 3, 3, 6, 3, 2}
	var out []int
	for d, w := range weights {
		for k := 0; k < w; k++ {
			out = append(out, d+1)
		}
	}
	return out
}

// --- Renderers -----------------------------------------------------------

func (s *Site) defineFragments() {
	// Medal standings: the fragment embedded in the current home page and
	// the /medals page. Depends on every medals row plus the table index.
	s.Engine.Define("frag:medals", func(ctx *fragment.Context) ([]byte, error) {
		rows, err := ctx.Scan("medals", "")
		if err != nil {
			return nil, err
		}
		sort.Slice(rows, func(i, j int) bool {
			gi, gj := rows[i].Cols["g"], rows[j].Cols["g"]
			if gi != gj {
				return gi > gj
			}
			return rows[i].Key < rows[j].Key
		})
		ctx.Printf("<table class=medals><tr><th>Country</th><th>G</th><th>S</th><th>B</th></tr>")
		for _, r := range rows {
			ctx.Printf("<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				r.Key, r.Cols["g"], r.Cols["s"], r.Cols["b"])
		}
		ctx.Printf("</table>")
		return ctx.Bytes(), nil
	})

	// Latest news headlines, newest first.
	s.Engine.Define("frag:news", func(ctx *fragment.Context) ([]byte, error) {
		rows, err := ctx.Scan("news", "")
		if err != nil {
			return nil, err
		}
		ctx.Printf("<ul class=news>")
		for i := len(rows) - 1; i >= 0 && i >= len(rows)-5; i-- {
			ctx.Printf("<li><a href=/news/%s>%s</a></li>", rows[i].Key, rows[i].Cols["headline"])
		}
		ctx.Printf("</ul>")
		return ctx.Bytes(), nil
	})
}

func (s *Site) definePages() {
	for _, lang := range s.Spec.Languages {
		lang := lang
		// Per-day home pages (the 1998 innovation: a fresh home page each
		// day carrying the information most clients came for).
		for d := 1; d <= s.Spec.Days; d++ {
			d := d
			path := fmt.Sprintf("/%s/home/day%02d", lang, d)
			s.addPage(path, func(ctx *fragment.Context) ([]byte, error) {
				row, ok, err := ctx.Get("today", dayKey(d))
				if err != nil {
					return nil, err
				}
				ctx.Printf("<html><head><title>Nagano 1998 - Day %d (%s)</title></head><body>", d, lang)
				if !ok {
					ctx.Printf("<p>The Games have not started.</p></body></html>")
					return ctx.Bytes(), nil
				}
				ctx.Printf("<h1>Day %d</h1>", d)
				ctx.Printf("<h2>Recent results</h2><ul>")
				if rec := row.Cols["recent"]; rec != "" {
					for _, item := range strings.Split(rec, ";") {
						ctx.Printf("<li>%s</li>", item)
					}
				}
				ctx.Printf("</ul>")
				if row.Cols["current"] == "1" {
					// Live home page: embed the shared fragments. Archived
					// day pages drop these dependencies on their next
					// re-render, capping the medal-update fan-out at the
					// paper's scale.
					ctx.Printf("<h2>Medal standings</h2>")
					if err := ctx.IncludeInto("frag:medals"); err != nil {
						return nil, err
					}
					ctx.Printf("<h2>News</h2>")
					if err := ctx.IncludeInto("frag:news"); err != nil {
						return nil, err
					}
				}
				ctx.Printf("</body></html>")
				return ctx.Bytes(), nil
			})
		}

		// Medal standings page.
		s.addPage("/"+lang+"/medals", func(ctx *fragment.Context) ([]byte, error) {
			ctx.Printf("<html><body><h1>Medal standings (%s)</h1>", lang)
			if err := ctx.IncludeInto("frag:medals"); err != nil {
				return nil, err
			}
			ctx.Printf("</body></html>")
			return ctx.Bytes(), nil
		})

		// Sports index (static taxonomy; no data dependencies).
		s.addPage("/"+lang+"/sports", func(ctx *fragment.Context) ([]byte, error) {
			ctx.Printf("<html><body><h1>Sports</h1><ul>")
			for i := 0; i < s.Spec.Sports; i++ {
				ctx.Printf("<li><a href=/%s/sports/%s>%s</a></li>", lang, sportNames[i], sportNames[i])
			}
			ctx.Printf("</ul></body></html>")
			return ctx.Bytes(), nil
		})

		// Per-sport pages: schedule plus all results so far.
		for i := 0; i < s.Spec.Sports; i++ {
			sport := sportNames[i]
			s.addPage("/"+lang+"/sports/"+sport, func(ctx *fragment.Context) ([]byte, error) {
				sched, err := ctx.Scan("events", sport+":")
				if err != nil {
					return nil, err
				}
				results, err := ctx.Scan("results", sport+":")
				if err != nil {
					return nil, err
				}
				resByKey := make(map[string]db.Row, len(results))
				for _, r := range results {
					resByKey[r.Key] = r
				}
				ctx.Printf("<html><body><h1>%s</h1><table>", sport)
				for _, ev := range sched {
					ctx.Printf("<tr><td><a href=/%s/sports/%s/%s>%s</a></td><td>day %s</td>",
						lang, sport, ev.Key, ev.Cols["name"], ev.Cols["day"])
					if r, ok := resByKey[ev.Key]; ok {
						ctx.Printf("<td>gold: %s (%s)</td>", r.Cols["gold"], r.Cols["goldCountry"])
					} else {
						ctx.Printf("<td>-</td>")
					}
					ctx.Printf("</tr>")
				}
				ctx.Printf("</table></body></html>")
				return ctx.Bytes(), nil
			})
		}

		// Per-event pages.
		for _, ev := range s.Events {
			ev := ev
			s.addPage(fmt.Sprintf("/%s/sports/%s/%s", lang, ev.Sport, ev.Key), func(ctx *fragment.Context) ([]byte, error) {
				sched, _, err := ctx.Get("events", ev.Key)
				if err != nil {
					return nil, err
				}
				res, ok, err := ctx.Get("results", ev.Key)
				if err != nil {
					return nil, err
				}
				ctx.Printf("<html><body><h1>%s</h1><p>Day %s, %d athletes</p>",
					sched.Cols["name"], sched.Cols["day"], len(strings.Split(sched.Cols["participants"], ",")))
				if !ok {
					ctx.Printf("<p>No results yet.</p>")
				} else if res.Cols["gold"] == "" {
					// Intermediate standings: the event is under way.
					ctx.Printf("<p>In progress - leader: %s (%s), score %s</p>",
						res.Cols["leader"], res.Cols["leaderCountry"], res.Cols["score"])
				} else {
					ctx.Printf("<table><tr><td>Gold</td><td><a href=/%s/athletes/%s>%s</a></td><td>%s</td></tr>",
						lang, res.Cols["gold"], res.Cols["gold"], res.Cols["goldCountry"])
					ctx.Printf("<tr><td>Silver</td><td>%s</td><td>%s</td></tr>", res.Cols["silver"], res.Cols["silverCountry"])
					ctx.Printf("<tr><td>Bronze</td><td>%s</td><td>%s</td></tr>", res.Cols["bronze"], res.Cols["bronzeCountry"])
					ctx.Printf("</table><p>Winning score: %s</p>", res.Cols["score"])
				}
				photos, err := ctx.Scan("photos", "event:"+ev.Key+":")
				if err != nil {
					return nil, err
				}
				for _, ph := range photos {
					ctx.Printf("<p class=photo><img alt=%q> %s</p>", ph.Cols["caption"], ph.Cols["caption"])
				}
				ctx.Printf("</body></html>")
				return ctx.Bytes(), nil
			})
		}

		// Country pages: medal tally for the country (the 1998 addition —
		// results collated by country).
		for _, cc := range s.CountryCodes {
			cc := cc
			s.addPage("/"+lang+"/countries/"+cc, func(ctx *fragment.Context) ([]byte, error) {
				row, ok, err := ctx.Get("medals", cc)
				if err != nil {
					return nil, err
				}
				ctx.Printf("<html><body><h1>%s</h1>", cc)
				if ok {
					ctx.Printf("<p>Gold %s, Silver %s, Bronze %s</p>", row.Cols["g"], row.Cols["s"], row.Cols["b"])
				} else {
					ctx.Printf("<p>No medals yet.</p>")
				}
				ctx.Printf("</body></html>")
				return ctx.Bytes(), nil
			})
		}

		// Athlete pages: biography plus results of every event the athlete
		// competes in (collation by athlete, the other 1998 addition).
		for _, id := range s.AthleteIDs {
			id := id
			s.addPage("/"+lang+"/athletes/"+id, func(ctx *fragment.Context) ([]byte, error) {
				bio, ok, err := ctx.Get("athletes", id)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("site: athlete %s not registered", id)
				}
				ctx.Printf("<html><body><h1>%s (%s)</h1><p>Sport: %s</p><ul>",
					bio.Cols["name"], bio.Cols["country"], bio.Cols["sport"])
				for _, evKey := range strings.Split(bio.Cols["events"], ",") {
					if evKey == "" {
						continue
					}
					res, ok, err := ctx.Get("results", evKey)
					if err != nil {
						return nil, err
					}
					if !ok {
						ctx.Printf("<li>%s: upcoming</li>", evKey)
						continue
					}
					medal := ""
					switch id {
					case res.Cols["gold"]:
						medal = " GOLD"
					case res.Cols["silver"]:
						medal = " SILVER"
					case res.Cols["bronze"]:
						medal = " BRONZE"
					}
					ctx.Printf("<li>%s: competed%s</li>", evKey, medal)
				}
				ctx.Printf("</ul>")
				photos, err := ctx.Scan("photos", "athlete:"+id+":")
				if err != nil {
					return nil, err
				}
				if len(photos) > 0 {
					ctx.Printf("<h2>Photos</h2><ul class=photos>")
					for _, ph := range photos {
						ctx.Printf("<li><img alt=%q> %s</li>", ph.Cols["caption"], ph.Cols["caption"])
					}
					ctx.Printf("</ul>")
				}
				ctx.Printf("</body></html>")
				return ctx.Bytes(), nil
			})
		}

		// News index and story pages.
		s.addPage("/"+lang+"/news", func(ctx *fragment.Context) ([]byte, error) {
			ctx.Printf("<html><body><h1>News</h1>")
			if err := ctx.IncludeInto("frag:news"); err != nil {
				return nil, err
			}
			ctx.Printf("</body></html>")
			return ctx.Bytes(), nil
		})
		for i := 0; i < s.Spec.NewsStories; i++ {
			id := fmt.Sprintf("n%03d", i)
			s.addPage("/"+lang+"/news/"+id, func(ctx *fragment.Context) ([]byte, error) {
				row, ok, err := ctx.Get("news", id)
				if err != nil {
					return nil, err
				}
				ctx.Printf("<html><body>")
				if !ok {
					ctx.Printf("<p>Story not yet published.</p>")
				} else {
					ctx.Printf("<h1>%s</h1><p>%s</p>", row.Cols["headline"], row.Cols["body"])
				}
				ctx.Printf("</body></html>")
				return ctx.Bytes(), nil
			})
		}
	}
}

// defineSyndication adds partner results feeds: JSON documents per sport,
// cached and DUP-maintained like any other object, but consumed by another
// web site rather than a browser.
func (s *Site) defineSyndication() {
	for _, partner := range s.Spec.Syndication {
		for i := 0; i < s.Spec.Sports; i++ {
			sport := sportNames[i]
			partner := partner
			s.addPage("/feed/"+partner+"/"+sport, func(ctx *fragment.Context) ([]byte, error) {
				ctx.SetContentType("application/json")
				rows, err := ctx.Scan("results", sport+":")
				if err != nil {
					return nil, err
				}
				ctx.Printf("{\"sport\":%q,\"results\":[", sport)
				for j, r := range rows {
					if j > 0 {
						ctx.Printf(",")
					}
					ctx.Printf("{\"event\":%q,\"gold\":%q,\"goldCountry\":%q,\"score\":%q}",
						r.Key, r.Cols["gold"], r.Cols["goldCountry"], r.Cols["score"])
				}
				ctx.Printf("]}")
				return ctx.Bytes(), nil
			})
		}
	}
}

// defineExtraNews adds news-only translations (story pages and index) for
// languages the rest of the site is not produced in.
func (s *Site) defineExtraNews() {
	for _, lang := range s.Spec.ExtraNewsLanguages {
		lang := lang
		s.addPage("/"+lang+"/news", func(ctx *fragment.Context) ([]byte, error) {
			ctx.Printf("<html><body><h1>Nouvelles (%s)</h1>", lang)
			if err := ctx.IncludeInto("frag:news"); err != nil {
				return nil, err
			}
			ctx.Printf("</body></html>")
			return ctx.Bytes(), nil
		})
		for i := 0; i < s.Spec.NewsStories; i++ {
			id := fmt.Sprintf("n%03d", i)
			s.addPage("/"+lang+"/news/"+id, func(ctx *fragment.Context) ([]byte, error) {
				row, ok, err := ctx.Get("news", id)
				if err != nil {
					return nil, err
				}
				ctx.Printf("<html><body>")
				if !ok {
					ctx.Printf("<p>Pas encore publie.</p>")
				} else {
					ctx.Printf("<h1>[%s] %s</h1><p>%s</p>", lang, row.Cols["headline"], row.Cols["body"])
				}
				ctx.Printf("</body></html>")
				return ctx.Bytes(), nil
			})
		}
	}
}

func (s *Site) addPage(path string, fn fragment.Func) {
	s.Engine.Define(path, fn)
	s.pages = append(s.pages, path)
}

// AthleteCountry returns the country code an athlete competes for ("" if
// unknown).
func (s *Site) AthleteCountry(id string) string { return s.athleteCountry[id] }

// Pages returns every dynamic page path, sorted.
func (s *Site) Pages() []string {
	out := append([]string(nil), s.pages...)
	sort.Strings(out)
	return out
}

// Statics returns the static sections of the site (Welcome, Venues, Nagano,
// Fun — content that never changes during the games).
func (s *Site) Statics() map[string][]byte {
	out := make(map[string][]byte)
	for _, lang := range s.Spec.Languages {
		out["/"+lang+"/welcome"] = []byte("<html><body><h1>Welcome to Nagano 1998 (" + lang + ")</h1></body></html>")
		out["/"+lang+"/venues"] = []byte("<html><body><h1>Venues</h1></body></html>")
		out["/"+lang+"/nagano"] = []byte("<html><body><h1>About Nagano</h1></body></html>")
		out["/"+lang+"/fun"] = []byte("<html><body><h1>Fun and games</h1></body></html>")
	}
	return out
}

// PrerenderAll generates every dynamic page at the given version, invoking
// apply for each rendered object (typically cache.Group.BroadcastPut). It
// registers all dependencies as a side effect — this is the site's initial
// cache priming, after which DUP keeps everything fresh.
func (s *Site) PrerenderAll(version int64, apply func(*cache.Object)) error {
	for _, p := range s.pages {
		obj, err := s.Engine.Generate(cache.Key(p), version)
		if err != nil {
			return fmt.Errorf("site: prerender %s: %w", p, err)
		}
		if apply != nil {
			apply(obj)
		}
	}
	return nil
}

// CurrentDay returns the day most recently set current.
func (s *Site) CurrentDay() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.currentDay
}

// SetCurrentDay flips the "current" flag from the previous day's today row
// to day d, committing one transaction (returned so callers can propagate
// it). Archived home pages drop their fragment dependencies on their next
// re-render. Setting the already-current day returns a zero Transaction.
func (s *Site) SetCurrentDay(d int) (db.Transaction, error) {
	if d < 1 || d > s.Spec.Days {
		return db.Transaction{}, fmt.Errorf("site: day %d out of range [1,%d]", d, s.Spec.Days)
	}
	s.mu.Lock()
	prev := s.currentDay
	s.currentDay = d
	s.mu.Unlock()
	if prev == d {
		return db.Transaction{}, nil
	}
	prevRow, _, err := s.DB.Get("today", dayKey(prev))
	if err != nil {
		return db.Transaction{}, err
	}
	curRow, _, err := s.DB.Get("today", dayKey(d))
	if err != nil {
		return db.Transaction{}, err
	}
	tx := s.DB.NewTx()
	tx.Put("today", dayKey(prev), map[string]string{"recent": prevRow.Cols["recent"], "current": "0"})
	tx.Put("today", dayKey(d), map[string]string{"recent": curRow.Cols["recent"], "current": "1"})
	return s.DB.Commit(tx)
}

// RecordResult commits the result of an event: the results row, medal-table
// increments for the three medalists' countries, and the current day's
// recent-results ticker. gold, silver, bronze are participant athlete IDs.
// The site assumes a single result writer (the venue feed), matching the
// paper's master-database architecture.
func (s *Site) RecordResult(ev *Event, gold, silver, bronze, score string) (db.Transaction, error) {
	day := s.CurrentDay()
	tx := s.DB.NewTx()
	tx.Put("results", ev.Key, map[string]string{
		"gold": gold, "goldCountry": s.athleteCountry[gold],
		"silver": silver, "silverCountry": s.athleteCountry[silver],
		"bronze": bronze, "bronzeCountry": s.athleteCountry[bronze],
		"score": score, "day": fmt.Sprint(day),
	})
	// Medal tallies. A single event may award the same country twice (gold
	// and bronze, say), and later Puts of the same key within one tx
	// override earlier ones — so fold the increments per country first.
	medalCols := map[string]map[string]string{}
	load := func(cc string) map[string]string {
		if cols, ok := medalCols[cc]; ok {
			return cols
		}
		cols := map[string]string{"g": "0", "s": "0", "b": "0"}
		if row, ok, _ := s.DB.Get("medals", cc); ok {
			cols["g"], cols["s"], cols["b"] = row.Cols["g"], row.Cols["s"], row.Cols["b"]
		}
		medalCols[cc] = cols
		return cols
	}
	inc := func(cc, col string) {
		cols := load(cc)
		var n int
		fmt.Sscanf(cols[col], "%d", &n)
		cols[col] = fmt.Sprint(n + 1)
	}
	inc(s.athleteCountry[gold], "g")
	inc(s.athleteCountry[silver], "s")
	inc(s.athleteCountry[bronze], "b")
	for cc, cols := range medalCols {
		tx.Put("medals", cc, cols)
	}

	// Ticker on the current day's home page: keep the last 8 entries.
	todayRow, _, err := s.DB.Get("today", dayKey(day))
	if err != nil {
		return db.Transaction{}, err
	}
	entry := fmt.Sprintf("%s gold %s (%s)", ev.Key, gold, s.athleteCountry[gold])
	recent := entry
	if prev := todayRow.Cols["recent"]; prev != "" {
		items := strings.Split(prev, ";")
		if len(items) >= 8 {
			items = items[:7]
		}
		recent = entry + ";" + strings.Join(items, ";")
	}
	tx.Put("today", dayKey(day), map[string]string{"recent": recent, "current": todayRow.Cols["current"]})
	return s.DB.Commit(tx)
}

// RecordPartial commits an intermediate scoring update for an event in
// progress (a heat result, a run standing): the paper's system received a
// continuous feed from the venue scoring equipment, not only final results.
// Partials update the results row's leader columns; they never touch medal
// tallies. If the event already has a final result, RecordPartial is a
// no-op returning a zero transaction.
func (s *Site) RecordPartial(ev *Event, leader, score string) (db.Transaction, error) {
	row, ok, err := s.DB.Get("results", ev.Key)
	if err != nil {
		return db.Transaction{}, err
	}
	if ok && row.Cols["gold"] != "" {
		return db.Transaction{}, nil
	}
	tx := s.DB.NewTx().Put("results", ev.Key, map[string]string{
		"leader": leader, "leaderCountry": s.athleteCountry[leader],
		"score": score, "day": fmt.Sprint(s.CurrentDay()),
	})
	return s.DB.Commit(tx)
}

// PublishNews commits a news story (creating its row makes the story page,
// news index, and home-page headlines refresh via the news table index).
func (s *Site) PublishNews(storyNum int, headline, body string) (db.Transaction, error) {
	id := fmt.Sprintf("n%03d", storyNum)
	tx := s.DB.NewTx().Put("news", id, map[string]string{
		"headline": headline,
		"body":     body,
		"day":      fmt.Sprint(s.CurrentDay()),
	})
	return s.DB.Commit(tx)
}

// PublishPhoto commits a classified photograph. Photographs were
// "classified by hand and dynamically inserted into the appropriate News,
// Results, Athlete, Country, Venue, and Today pages" (§3.1); here a photo
// is attached to a subject ("athlete:a0001" or "event:alpine:e0") and the
// pages that scan that subject's photo prefix refresh via the membership
// index.
func (s *Site) PublishPhoto(photoNum int, subject, caption string) (db.Transaction, error) {
	key := fmt.Sprintf("%s:p%03d", subject, photoNum)
	tx := s.DB.NewTx().Put("photos", key, map[string]string{
		"caption": caption,
		"day":     fmt.Sprint(s.CurrentDay()),
	})
	return s.DB.Commit(tx)
}

// Indexer maps database changes to ODG vertices, adding membership-index
// vertices for the scan prefixes the site's renderers use. It is the
// trigger monitor's Indexer for this site.
func (s *Site) Indexer(c db.Change) []odg.NodeID {
	ids := []odg.NodeID{odg.NodeID(c.ChangeID())}
	if c.Op == db.OpPut && !c.Created {
		return ids
	}
	// Insert or delete: membership changed; bump the indices for the scan
	// prefixes renderers use on this table.
	switch c.Table {
	case "results":
		// Sport pages scan "<sport>:".
		if i := strings.IndexByte(c.Key, ':'); i > 0 {
			ids = append(ids, odg.NodeID(fragment.IndexID("results", c.Key[:i+1])))
		}
	case "news", "medals":
		// frag:news / frag:medals scan the whole table.
		ids = append(ids, odg.NodeID(fragment.IndexID(c.Table, "")))
	case "photos":
		// Athlete/event pages scan "<subject>:", i.e. the key up to its
		// final segment.
		if i := strings.LastIndexByte(c.Key, ':'); i > 0 {
			ids = append(ids, odg.NodeID(fragment.IndexID("photos", c.Key[:i+1])))
		}
	}
	return ids
}

// ConservativeMapper reproduces the 1996 strategy for the baseline
// experiments: a change is mapped to whole sections of the site to drop.
// It deliberately over-invalidates, as the paper describes.
func (s *Site) ConservativeMapper(id odg.NodeID) []string {
	sid := string(id)
	var prefixes []string
	addForAllLangs := func(suffix string) {
		for _, lang := range s.Spec.Languages {
			prefixes = append(prefixes, "/"+lang+suffix)
		}
	}
	switch {
	case strings.HasPrefix(sid, "db:results:"):
		rest := strings.TrimPrefix(sid, "db:results:")
		sport := rest
		if i := strings.IndexByte(rest, ':'); i > 0 {
			sport = rest[:i]
		}
		sport = strings.TrimSuffix(sport, ":")
		if strings.HasPrefix(sport, "index") {
			// Index vertex: drop all sports pages.
			addForAllLangs("/sports")
		} else {
			addForAllLangs("/sports/" + sport)
		}
		// Results touch athletes and the home pages too; the 1996 site
		// could not tell which, so it dropped them all.
		addForAllLangs("/athletes")
		addForAllLangs("/home")
	case strings.HasPrefix(sid, "db:medals:"):
		addForAllLangs("/medals")
		addForAllLangs("/countries")
		addForAllLangs("/home")
	case strings.HasPrefix(sid, "db:news:"):
		addForAllLangs("/news")
		addForAllLangs("/home")
	case strings.HasPrefix(sid, "db:today:"):
		addForAllLangs("/home")
	}
	return prefixes
}
