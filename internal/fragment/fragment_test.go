package fragment

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/odg"
)

// recordingRegistrar captures registrations for assertions.
type recordingRegistrar struct {
	mu        sync.Mutex
	objects   map[cache.Key][]odg.NodeID
	fragments map[cache.Key][]odg.NodeID
}

func newRecorder() *recordingRegistrar {
	return &recordingRegistrar{
		objects:   make(map[cache.Key][]odg.NodeID),
		fragments: make(map[cache.Key][]odg.NodeID),
	}
}

func (r *recordingRegistrar) RegisterObject(key cache.Key, deps []odg.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.objects[key] = deps
}

func (r *recordingRegistrar) RegisterFragment(key cache.Key, deps []odg.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fragments[key] = deps
}

func testDB(t *testing.T) *db.DB {
	t.Helper()
	d := db.New("test")
	d.CreateTable("results")
	tx := d.NewTx().
		Put("results", "ski:ev1", map[string]string{"gold": "AUT", "score": "251.6"}).
		Put("results", "ski:ev2", map[string]string{"gold": "NOR", "score": "248.1"})
	if _, err := d.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRenderRecordsRowDependencies(t *testing.T) {
	d := testDB(t)
	rec := newRecorder()
	e := New(Config{DB: d, Registrar: rec})
	e.Define("/ski/ev1", func(ctx *Context) ([]byte, error) {
		row, ok, err := ctx.Get("results", "ski:ev1")
		if err != nil || !ok {
			return nil, fmt.Errorf("get: %v %v", ok, err)
		}
		ctx.Printf("<h1>Gold: %s</h1>", row.Cols["gold"])
		return ctx.Bytes(), nil
	})
	obj, err := e.Generate("/ski/ev1", 42)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Value) != "<h1>Gold: AUT</h1>" {
		t.Fatalf("body = %q", obj.Value)
	}
	if obj.Version != 42 || !strings.HasPrefix(obj.ContentType, "text/html") {
		t.Fatalf("obj meta = %+v", obj)
	}
	deps := rec.objects["/ski/ev1"]
	want := []odg.NodeID{"db:results:ski:ev1"}
	if !reflect.DeepEqual(deps, want) {
		t.Fatalf("deps = %v, want %v", deps, want)
	}
}

func TestGetAbsentRowStillRecordsDependency(t *testing.T) {
	d := testDB(t)
	rec := newRecorder()
	e := New(Config{DB: d, Registrar: rec})
	e.Define("/pending", func(ctx *Context) ([]byte, error) {
		_, ok, _ := ctx.Get("results", "ski:ev9")
		if !ok {
			return []byte("no results yet"), nil
		}
		return []byte("results!"), nil
	})
	if _, err := e.Generate("/pending", 1); err != nil {
		t.Fatal(err)
	}
	deps := rec.objects["/pending"]
	if len(deps) != 1 || deps[0] != "db:results:ski:ev9" {
		t.Fatalf("deps = %v", deps)
	}
}

func TestScanRecordsRowsAndIndex(t *testing.T) {
	d := testDB(t)
	rec := newRecorder()
	e := New(Config{DB: d, Registrar: rec})
	e.Define("/ski", func(ctx *Context) ([]byte, error) {
		rows, err := ctx.Scan("results", "ski:")
		if err != nil {
			return nil, err
		}
		ctx.Printf("%d events", len(rows))
		return ctx.Bytes(), nil
	})
	obj, err := e.Generate("/ski", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Value) != "2 events" {
		t.Fatalf("body = %q", obj.Value)
	}
	deps := rec.objects["/ski"]
	want := []odg.NodeID{"db:results:index:ski:", "db:results:ski:ev1", "db:results:ski:ev2"}
	if !reflect.DeepEqual(deps, want) {
		t.Fatalf("deps = %v, want %v", deps, want)
	}
}

func TestIncludeRecordsFragmentDependencyOnly(t *testing.T) {
	d := testDB(t)
	rec := newRecorder()
	e := New(Config{DB: d, Registrar: rec})
	e.Define("frag:medals", func(ctx *Context) ([]byte, error) {
		row, _, _ := ctx.Get("results", "ski:ev1")
		return []byte("medals:" + row.Cols["gold"]), nil
	})
	e.Define("/home", func(ctx *Context) ([]byte, error) {
		ctx.Printf("<body>")
		if err := ctx.IncludeInto("frag:medals"); err != nil {
			return nil, err
		}
		ctx.Printf("</body>")
		return ctx.Bytes(), nil
	})
	obj, err := e.Generate("/home", 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Value) != "<body>medals:AUT</body>" {
		t.Fatalf("body = %q", obj.Value)
	}
	// The page depends on the fragment vertex, not the fragment's rows.
	if got := rec.objects["/home"]; len(got) != 1 || got[0] != "frag:medals" {
		t.Fatalf("page deps = %v", got)
	}
	// The fragment was registered with its row dependency.
	if got := rec.fragments["frag:medals"]; len(got) != 1 || got[0] != "db:results:ski:ev1" {
		t.Fatalf("fragment deps = %v", got)
	}
	// The fragment landed in the fragment cache.
	if _, ok := e.FragmentCache().Peek("frag:medals"); !ok {
		t.Fatal("fragment not cached")
	}
}

func TestIncludeUsesCachedFragment(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	renders := 0
	e.Define("frag:f", func(ctx *Context) ([]byte, error) {
		renders++
		return []byte("F"), nil
	})
	e.Define("/a", func(ctx *Context) ([]byte, error) { return ctx.Include("frag:f") })
	e.Define("/b", func(ctx *Context) ([]byte, error) { return ctx.Include("frag:f") })
	if _, err := e.Generate("/a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Generate("/b", 1); err != nil {
		t.Fatal(err)
	}
	if renders != 1 {
		t.Fatalf("fragment rendered %d times, want 1 (cached reuse)", renders)
	}
}

func TestIncludeFreshFragmentAfterRegeneration(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	val := "v1"
	e.Define("frag:f", func(ctx *Context) ([]byte, error) { return []byte(val), nil })
	e.Define("/p", func(ctx *Context) ([]byte, error) { return ctx.Include("frag:f") })
	if _, err := e.Generate("/p", 1); err != nil {
		t.Fatal(err)
	}
	// DUP regenerates the fragment (update-in-place into the fragment
	// cache), then the page: the page must see the new bytes.
	val = "v2"
	if _, err := e.Generate("frag:f", 2); err != nil {
		t.Fatal(err)
	}
	obj, err := e.Generate("/p", 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Value) != "v2" {
		t.Fatalf("page body = %q, want v2", obj.Value)
	}
}

func TestIncludeNonFragmentRejected(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	e.Define("/p", func(ctx *Context) ([]byte, error) { return ctx.Include("/other") })
	if _, err := e.Generate("/p", 1); err == nil {
		t.Fatal("expected error including a non-fragment name")
	}
}

func TestIncludeDepthLimit(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()}, WithMaxDepth(3))
	// Self-including fragment.
	e.Define("frag:loop", func(ctx *Context) ([]byte, error) { return ctx.Include("frag:loop") })
	_, err := e.Generate("frag:loop", 1)
	if !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want ErrDepth", err)
	}
}

func TestUnknownName(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	if _, err := e.Generate("/ghost", 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
}

func TestRenderErrorWrapped(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	boom := errors.New("boom")
	e.Define("/p", func(ctx *Context) ([]byte, error) { return nil, boom })
	_, err := e.Generate("/p", 1)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "/p") {
		t.Fatalf("err = %v", err)
	}
}

func TestDependOnExplicit(t *testing.T) {
	d := testDB(t)
	rec := newRecorder()
	e := New(Config{DB: d, Registrar: rec})
	e.Define("/p", func(ctx *Context) ([]byte, error) {
		ctx.DependOn("custom:vertex")
		return []byte("x"), nil
	})
	if _, err := e.Generate("/p", 1); err != nil {
		t.Fatal(err)
	}
	if got := rec.objects["/p"]; len(got) != 1 || got[0] != "custom:vertex" {
		t.Fatalf("deps = %v", got)
	}
}

func TestNamesAndDefined(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d})
	e.Define("/b", func(*Context) ([]byte, error) { return nil, nil })
	e.Define("/a", func(*Context) ([]byte, error) { return nil, nil })
	if got := e.Names(); !reflect.DeepEqual(got, []string{"/a", "/b"}) {
		t.Fatalf("Names = %v", got)
	}
	if !e.Defined("/a") || e.Defined("/zzz") {
		t.Fatal("Defined drift")
	}
}

func TestNilRegistrarOK(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d})
	e.Define("/p", func(ctx *Context) ([]byte, error) { return []byte("x"), nil })
	e.Define("frag:f", func(ctx *Context) ([]byte, error) { return []byte("y"), nil })
	if _, err := e.Generate("/p", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Generate("frag:f", 1); err != nil {
		t.Fatal(err)
	}
}

func TestIsFragment(t *testing.T) {
	if !IsFragment("frag:x") || IsFragment("/page") {
		t.Fatal("IsFragment drift")
	}
}

func TestIndexID(t *testing.T) {
	if IndexID("results", "ski:") != "db:results:index:ski:" {
		t.Fatal("IndexID format drift")
	}
}

func TestConcurrentGenerate(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	e.Define("frag:f", func(ctx *Context) ([]byte, error) {
		row, _, _ := ctx.Get("results", "ski:ev1")
		return []byte(row.Cols["gold"]), nil
	})
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("/p%d", i)
		e.Define(name, func(ctx *Context) ([]byte, error) { return ctx.Include("frag:f") })
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := e.Generate(cache.Key(fmt.Sprintf("/p%d", (w+i)%20)), int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkGeneratePageWithFragments(b *testing.B) {
	d := db.New("b")
	d.CreateTable("results")
	tx := d.NewTx()
	for i := 0; i < 50; i++ {
		tx.Put("results", fmt.Sprintf("ev%d", i), map[string]string{"gold": "AUT", "score": "250"})
	}
	if _, err := d.Commit(tx); err != nil {
		b.Fatal(err)
	}
	e := New(Config{DB: d})
	e.Define("frag:medals", func(ctx *Context) ([]byte, error) {
		rows, err := ctx.Scan("results", "")
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			ctx.Printf("<tr><td>%s</td><td>%s</td></tr>", r.Key, r.Cols["gold"])
		}
		return ctx.Bytes(), nil
	})
	e.Define("/home", func(ctx *Context) ([]byte, error) {
		ctx.Printf("<html><body>")
		if err := ctx.IncludeInto("frag:medals"); err != nil {
			return nil, err
		}
		ctx.Printf("</body></html>")
		return ctx.Bytes(), nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Invalidate the fragment each round so the bench measures full
		// regeneration, not cached splicing.
		e.FragmentCache().Invalidate("frag:medals")
		if _, err := e.Generate("/home", int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
