// Package fragment implements the page-composition layer of the 1998 web
// site (section 3.1, figure 15 of the paper).
//
// Pages at the Olympic site were assembled from fragments: a result update
// changed a medal-standings fragment, a recent-results fragment, athlete
// fragments, and so on, and those fragments were embedded in dozens of
// pages (the home page for the day, sport/event pages, country and athlete
// pages). Fragments are themselves cached objects that other objects depend
// on — exactly the paper's "item which constitutes both an object and
// underlying data" (odg.KindBoth).
//
// The Engine renders named pages and fragments. While a renderer runs, its
// Context records every database row it reads and every fragment it
// includes; those recordings become the object's dependency registration in
// the ODG, so the application never hand-maintains the graph — it simply
// renders, and DUP learns the dependencies as a side effect. This mirrors
// the paper's statement that "an application program is responsible for
// communicating data dependencies ... to the cache".
package fragment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/lifecycle"
	"dupserve/internal/odg"
)

// FragPrefix namespaces fragment keys so they can share the page cache
// without colliding with servable page paths.
const FragPrefix = "frag:"

// Registrar receives dependency registrations after each render. It is
// satisfied by *core.Engine; the indirection keeps this package free of a
// dependency on the DUP engine.
type Registrar interface {
	RegisterObject(key cache.Key, deps []odg.NodeID)
	RegisterFragment(key cache.Key, deps []odg.NodeID)
}

// Func renders a page or fragment. It reads data exclusively through the
// Context so dependencies are captured.
type Func func(ctx *Context) ([]byte, error)

// ErrUnknown is returned when rendering an unregistered name.
var ErrUnknown = errors.New("fragment: unknown page or fragment")

// ErrDepth is returned when fragment inclusion nests deeper than the
// engine's limit (a cyclic include).
var ErrDepth = errors.New("fragment: include depth exceeded")

// Engine renders registered pages and fragments against a database,
// recording dependencies. Safe for concurrent use.
type Engine struct {
	database  *db.DB
	registrar Registrar
	fragCache *cache.Cache
	maxDepth  int

	mu   sync.RWMutex
	defs map[string]Func

	// fullReRender disables memoized assembly: every Include recursively
	// re-renders its fragment. It exists as the measured baseline for the
	// incremental-propagation benchmark and the byte-identity tests.
	fullReRender atomic.Bool

	// floors holds the per-fragment required version set by BeginBatch: a
	// cached fragment may be spliced into a page only if its Version is at
	// or above the floor. Fragments never named in a batch keep floor zero,
	// so unchanged fragments remain reusable at whatever version they were
	// last rendered.
	floorMu sync.RWMutex
	floors  map[string]int64

	// flights deduplicates concurrent renders of the same fragment at the
	// same version: parallel page-assembly workers that find a fragment
	// missing or below its floor share one render instead of each running
	// it. Only fragment Generates and Includes issued from a page context
	// enter a flight; an Include inside a fragment render — whose stack may
	// itself hold a flight — renders inline, so a flight holder never waits
	// on a flight and deadlock is impossible even with cyclic includes.
	flightMu sync.Mutex
	flights  map[string]*flight

	// Render-vs-reuse accounting. renders counts fragment renders (not
	// pages); reuses counts Includes satisfied by splicing cached bytes.
	renders atomic.Int64
	reuses  atomic.Int64
	// batchRenders/batchReuses snapshot the totals at BeginBatch so
	// EndBatch can report per-batch deltas.
	batchRenders int64
	batchReuses  int64

	// Uniform component lifecycle. The engine runs no background
	// goroutines — renders execute on the caller's goroutine — so Start
	// only arms ctx-cancellation and Shutdown is an immediate drain, but
	// the contract lets deploy supervise render engines like any other
	// component.
	lifeMu   sync.Mutex
	started  bool
	stopOnce sync.Once
	stopped  chan struct{}
}

// flight is one in-progress shared fragment render; waiters block on done
// and read obj/err afterwards.
type flight struct {
	done chan struct{}
	obj  *cache.Object
	err  error
}

// Engine follows the uniform component lifecycle so deploy can supervise
// render engines exactly like monitors and dispatchers.
var _ lifecycle.Component = (*Engine)(nil)

// Config describes an Engine. DB is required; Registrar may be nil for
// standalone use (tests, static generation).
type Config struct {
	// DB is the database renders read through.
	DB *db.DB
	// Registrar receives dependency registrations after each render
	// (typically the complex's *core.Engine); nil disables registration.
	Registrar Registrar
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxDepth bounds fragment include nesting (default 8).
func WithMaxDepth(d int) Option {
	return func(e *Engine) { e.maxDepth = d }
}

// WithFullReRender disables memoized assembly: every Include recursively
// re-renders its fragment instead of consulting the fragment cache. This is
// the O(pages x fragments) baseline the incremental-propagation benchmark
// measures against; production engines never want it.
func WithFullReRender() Option {
	return func(e *Engine) { e.fullReRender.Store(true) }
}

// New returns an engine over cfg in the repo-standard constructor shape.
func New(cfg Config, opts ...Option) *Engine {
	e := &Engine{
		database:  cfg.DB,
		registrar: cfg.Registrar,
		fragCache: cache.New("fragments"),
		maxDepth:  8,
		defs:      make(map[string]Func),
		floors:    make(map[string]int64),
		flights:   make(map[string]*flight),
		stopped:   make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SetFullReRender toggles the full-re-render baseline mode at runtime (see
// WithFullReRender). Benchmarks flip it on a site-built engine whose
// construction they do not control.
func (e *Engine) SetFullReRender(on bool) { e.fullReRender.Store(on) }

// Start implements lifecycle.Component. The engine has no background work
// of its own; Start arms ctx so cancellation initiates the same orderly
// shutdown as Shutdown. Starting twice is an error.
func (e *Engine) Start(ctx context.Context) error {
	e.lifeMu.Lock()
	if e.started {
		e.lifeMu.Unlock()
		return errors.New("fragment: engine already started")
	}
	e.started = true
	e.lifeMu.Unlock()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = e.Shutdown(context.Background())
			case <-e.stopped:
			}
		}()
	}
	return nil
}

// Shutdown implements lifecycle.Component. Renders run on the caller's
// goroutine, so by the time upstream components (trigger monitors, serving
// nodes) have drained there is no in-flight work to wait for; the drain is
// immediate and ctx is accepted only to satisfy the uniform contract. Safe
// to call more than once and before Start.
func (e *Engine) Shutdown(context.Context) error {
	e.stopOnce.Do(func() { close(e.stopped) })
	return nil
}

// BeginBatch opens one propagation batch: version becomes the required
// floor for each named fragment, so page assembly within (and after) the
// batch refuses to splice a stale copy of a changed fragment and re-renders
// it instead. It also snapshots the render/reuse totals so EndBatch can
// report the batch's deltas. The DUP engine calls this before phase-1
// fragment regeneration; it satisfies core.Assembler.
func (e *Engine) BeginBatch(version int64, fragments []cache.Key) {
	e.floorMu.Lock()
	for _, k := range fragments {
		if name := string(k); e.floors[name] < version {
			e.floors[name] = version
		}
	}
	e.batchRenders = e.renders.Load()
	e.batchReuses = e.reuses.Load()
	e.floorMu.Unlock()
}

// EndBatch closes the batch opened by BeginBatch and returns how many
// fragment renders and cached-byte reuses it performed — the render-vs-
// reuse accounting that shows each changed fragment rendered exactly once
// while every containing page spliced it.
func (e *Engine) EndBatch() (renders, reuses int64) {
	e.floorMu.RLock()
	defer e.floorMu.RUnlock()
	return e.renders.Load() - e.batchRenders, e.reuses.Load() - e.batchReuses
}

// Accounting returns the lifetime fragment render and reuse totals.
func (e *Engine) Accounting() (renders, reuses int64) {
	return e.renders.Load(), e.reuses.Load()
}

// floor returns the required version for a fragment (zero if it was never
// named in a batch).
func (e *Engine) floor(name string) int64 {
	e.floorMu.RLock()
	defer e.floorMu.RUnlock()
	return e.floors[name]
}

// Define registers the renderer for a page path ("/en/day7/home") or a
// fragment name ("frag:medals"). Redefining replaces.
func (e *Engine) Define(name string, fn Func) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defs[name] = fn
}

// Names returns all registered names, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.defs))
	for n := range e.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Defined reports whether name has a renderer.
func (e *Engine) Defined(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.defs[name]
	return ok
}

// IsFragment reports whether name uses the fragment namespace.
func IsFragment(name string) bool { return strings.HasPrefix(name, FragPrefix) }

// FragmentCache exposes the internal fragment store (diagnostics and
// tests).
func (e *Engine) FragmentCache() *cache.Cache { return e.fragCache }

// Generate renders name at the given version, registers its dependencies,
// and returns the cacheable object. It satisfies core.Generator, so an
// Engine plugs directly into the DUP engine as the regenerator for
// update-in-place propagation. Fragments are additionally stored in the
// engine's fragment cache so that including pages splice the fresh bytes;
// concurrent Generates of the same fragment at the same version share one
// render through the engine's single-flight table.
func (e *Engine) Generate(key cache.Key, version int64) (*cache.Object, error) {
	name := string(key)
	if IsFragment(name) && !e.fullReRender.Load() {
		obj, _, err := e.renderShared(name, version, 0)
		return obj, err
	}
	return e.render(name, version, 0)
}

// renderShared renders a fragment through the single-flight table: the
// first caller for a given (name, version) renders; concurrent callers
// block and share the result. The flight key pins the version so renders
// requested at different versions never alias. waited reports whether this
// caller shared another caller's render instead of performing its own —
// Include counts that as a reuse.
func (e *Engine) renderShared(name string, version int64, depth int) (obj *cache.Object, waited bool, err error) {
	fkey := name + "@" + strconv.FormatInt(version, 10)
	e.flightMu.Lock()
	if f, ok := e.flights[fkey]; ok {
		e.flightMu.Unlock()
		<-f.done
		return f.obj, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[fkey] = f
	e.flightMu.Unlock()

	f.obj, f.err = e.render(name, version, depth)
	e.flightMu.Lock()
	delete(e.flights, fkey)
	e.flightMu.Unlock()
	close(f.done)
	return f.obj, false, f.err
}

func (e *Engine) render(name string, version int64, depth int) (*cache.Object, error) {
	if depth > e.maxDepth {
		return nil, fmt.Errorf("%w (%d) rendering %q", ErrDepth, e.maxDepth, name)
	}
	e.mu.RLock()
	fn, ok := e.defs[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	ctx := &Context{engine: e, name: name, version: version, depth: depth, deps: make(map[odg.NodeID]struct{})}
	body, err := fn(ctx)
	if err != nil {
		return nil, fmt.Errorf("fragment: render %q: %w", name, err)
	}
	ct := ctx.contentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	obj := &cache.Object{
		Key:         cache.Key(name),
		Value:       body,
		ContentType: ct,
		Version:     version,
	}
	deps := ctx.depList()
	if IsFragment(name) {
		e.renders.Add(1)
		e.fragCache.Put(obj)
		if e.registrar != nil {
			e.registrar.RegisterFragment(obj.Key, deps)
		}
	} else if e.registrar != nil {
		e.registrar.RegisterObject(obj.Key, deps)
	}
	return obj, nil
}

// Context is the render-time view handed to a Func. It is not safe for
// concurrent use and must not outlive the render call.
type Context struct {
	engine      *Engine
	name        string
	version     int64
	depth       int
	deps        map[odg.NodeID]struct{}
	buf         bytes.Buffer
	contentType string
}

// SetContentType overrides the rendered object's content type (default
// "text/html; charset=utf-8") — syndication feeds render JSON or XML.
func (c *Context) SetContentType(ct string) { c.contentType = ct }

// Version returns the version (database LSN) this render was requested at.
func (c *Context) Version() int64 { return c.version }

// DependOn records an explicit dependency on an arbitrary ODG vertex.
// Renderers use it for computed dependencies that no direct read expresses
// (e.g. a per-table index vertex bumped whenever rows are inserted, so
// "list all events" pages refresh when events appear).
func (c *Context) DependOn(id odg.NodeID) { c.deps[id] = struct{}{} }

// Get reads a row and records the dependency on it. Reading an absent row
// still records the dependency — the page's content ("no results yet")
// depends on the row staying absent.
func (c *Context) Get(table, key string) (db.Row, bool, error) {
	c.deps[odg.NodeID(db.RowID(table, key))] = struct{}{}
	return c.engine.database.Get(table, key)
}

// Scan reads all rows with the key prefix, recording a dependency on each
// returned row and on the table's prefix index vertex ("db:<table>:index:
// <prefix>"), which writers bump when inserting or deleting rows under the
// prefix. The index dependency is what makes membership changes (a new
// event appearing) propagate, not just mutations of already-read rows.
func (c *Context) Scan(table, prefix string) ([]db.Row, error) {
	rows, err := c.engine.database.Scan(table, prefix)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		c.deps[odg.NodeID(db.RowID(table, r.Key))] = struct{}{}
	}
	c.deps[odg.NodeID(IndexID(table, prefix))] = struct{}{}
	return rows, nil
}

// IndexID renders the ODG vertex name for a table-prefix membership index.
// Writers that insert or delete rows under a prefix include this ID in
// their change set so scan-based pages refresh. The canonical format lives
// in db.IndexID so read-tracking views report the same vertex names.
func IndexID(table, prefix string) string {
	return db.IndexID(table, prefix)
}

// Include renders (or reuses the cached copy of) a fragment, splices its
// bytes into the caller's output, and records a dependency on the fragment
// vertex — not on the fragment's own underlying rows; transitivity through
// the ODG handles those.
//
// This is the memoized-assembly hot path: a cached fragment is reused iff
// its version is at or above the floor BeginBatch pinned for it, so a page
// rebuilt by a propagation batch splices exactly the bytes phase 1 rendered
// — never a stale copy of a changed fragment, and never a redundant
// re-render of an unchanged one. A fragment found missing or below its
// floor is rendered through the single-flight table when the including
// renderer is a page, so parallel page-assembly workers share one render;
// an Include inside a fragment render (whose stack may hold a flight)
// renders inline, keeping flight waits acyclic.
func (c *Context) Include(fragName string) ([]byte, error) {
	if !IsFragment(fragName) {
		return nil, fmt.Errorf("fragment: Include of non-fragment name %q", fragName)
	}
	c.deps[odg.NodeID(fragName)] = struct{}{}
	e := c.engine
	if !e.fullReRender.Load() {
		if obj, ok := e.fragCache.Get(cache.Key(fragName)); ok && obj.Version >= e.floor(fragName) {
			e.reuses.Add(1)
			return obj.Value, nil
		}
		if c.depth == 0 && !IsFragment(c.name) {
			obj, waited, err := e.renderShared(fragName, c.version, c.depth+1)
			if err != nil {
				return nil, err
			}
			if waited {
				e.reuses.Add(1)
			}
			return obj.Value, nil
		}
	}
	obj, err := e.render(fragName, c.version, c.depth+1)
	if err != nil {
		return nil, err
	}
	return obj.Value, nil
}

// Printf appends formatted output to the context's build buffer.
func (c *Context) Printf(format string, args ...any) {
	fmt.Fprintf(&c.buf, format, args...)
}

// Write appends raw bytes to the build buffer, implementing io.Writer.
func (c *Context) Write(p []byte) (int, error) { return c.buf.Write(p) }

// IncludeInto renders the fragment and appends it to the build buffer.
func (c *Context) IncludeInto(fragName string) error {
	b, err := c.Include(fragName)
	if err != nil {
		return err
	}
	c.buf.Write(b)
	return nil
}

// Bytes returns a copy of the build buffer; renderers that used
// Printf/Write/IncludeInto return it directly.
func (c *Context) Bytes() []byte {
	out := make([]byte, c.buf.Len())
	copy(out, c.buf.Bytes())
	return out
}

func (c *Context) depList() []odg.NodeID {
	out := make([]odg.NodeID, 0, len(c.deps))
	for id := range c.deps {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
