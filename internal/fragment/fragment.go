// Package fragment implements the page-composition layer of the 1998 web
// site (section 3.1, figure 15 of the paper).
//
// Pages at the Olympic site were assembled from fragments: a result update
// changed a medal-standings fragment, a recent-results fragment, athlete
// fragments, and so on, and those fragments were embedded in dozens of
// pages (the home page for the day, sport/event pages, country and athlete
// pages). Fragments are themselves cached objects that other objects depend
// on — exactly the paper's "item which constitutes both an object and
// underlying data" (odg.KindBoth).
//
// The Engine renders named pages and fragments. While a renderer runs, its
// Context records every database row it reads and every fragment it
// includes; those recordings become the object's dependency registration in
// the ODG, so the application never hand-maintains the graph — it simply
// renders, and DUP learns the dependencies as a side effect. This mirrors
// the paper's statement that "an application program is responsible for
// communicating data dependencies ... to the cache".
package fragment

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/odg"
)

// FragPrefix namespaces fragment keys so they can share the page cache
// without colliding with servable page paths.
const FragPrefix = "frag:"

// Registrar receives dependency registrations after each render. It is
// satisfied by *core.Engine; the indirection keeps this package free of a
// dependency on the DUP engine.
type Registrar interface {
	RegisterObject(key cache.Key, deps []odg.NodeID)
	RegisterFragment(key cache.Key, deps []odg.NodeID)
}

// Func renders a page or fragment. It reads data exclusively through the
// Context so dependencies are captured.
type Func func(ctx *Context) ([]byte, error)

// ErrUnknown is returned when rendering an unregistered name.
var ErrUnknown = errors.New("fragment: unknown page or fragment")

// ErrDepth is returned when fragment inclusion nests deeper than the
// engine's limit (a cyclic include).
var ErrDepth = errors.New("fragment: include depth exceeded")

// Engine renders registered pages and fragments against a database,
// recording dependencies. Safe for concurrent use.
type Engine struct {
	database  *db.DB
	registrar Registrar
	fragCache *cache.Cache
	maxDepth  int

	mu   sync.RWMutex
	defs map[string]Func
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxDepth bounds fragment include nesting (default 8).
func WithMaxDepth(d int) Option {
	return func(e *Engine) { e.maxDepth = d }
}

// NewEngine returns an engine reading from database and reporting
// dependency registrations to registrar (which may be nil for standalone
// use, e.g. in tests or static generation).
func NewEngine(database *db.DB, registrar Registrar, opts ...Option) *Engine {
	e := &Engine{
		database:  database,
		registrar: registrar,
		fragCache: cache.New("fragments"),
		maxDepth:  8,
		defs:      make(map[string]Func),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Define registers the renderer for a page path ("/en/day7/home") or a
// fragment name ("frag:medals"). Redefining replaces.
func (e *Engine) Define(name string, fn Func) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defs[name] = fn
}

// Names returns all registered names, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.defs))
	for n := range e.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Defined reports whether name has a renderer.
func (e *Engine) Defined(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.defs[name]
	return ok
}

// IsFragment reports whether name uses the fragment namespace.
func IsFragment(name string) bool { return strings.HasPrefix(name, FragPrefix) }

// FragmentCache exposes the internal fragment store (diagnostics and
// tests).
func (e *Engine) FragmentCache() *cache.Cache { return e.fragCache }

// Generate renders name at the given version, registers its dependencies,
// and returns the cacheable object. It satisfies core.Generator, so an
// Engine plugs directly into the DUP engine as the regenerator for
// update-in-place propagation. Fragments are additionally stored in the
// engine's fragment cache so that including pages splice the fresh bytes.
func (e *Engine) Generate(key cache.Key, version int64) (*cache.Object, error) {
	return e.render(string(key), version, 0)
}

func (e *Engine) render(name string, version int64, depth int) (*cache.Object, error) {
	if depth > e.maxDepth {
		return nil, fmt.Errorf("%w (%d) rendering %q", ErrDepth, e.maxDepth, name)
	}
	e.mu.RLock()
	fn, ok := e.defs[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	ctx := &Context{engine: e, version: version, depth: depth, deps: make(map[odg.NodeID]struct{})}
	body, err := fn(ctx)
	if err != nil {
		return nil, fmt.Errorf("fragment: render %q: %w", name, err)
	}
	ct := ctx.contentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	obj := &cache.Object{
		Key:         cache.Key(name),
		Value:       body,
		ContentType: ct,
		Version:     version,
	}
	deps := ctx.depList()
	if IsFragment(name) {
		e.fragCache.Put(obj)
		if e.registrar != nil {
			e.registrar.RegisterFragment(obj.Key, deps)
		}
	} else if e.registrar != nil {
		e.registrar.RegisterObject(obj.Key, deps)
	}
	return obj, nil
}

// Context is the render-time view handed to a Func. It is not safe for
// concurrent use and must not outlive the render call.
type Context struct {
	engine      *Engine
	version     int64
	depth       int
	deps        map[odg.NodeID]struct{}
	buf         bytes.Buffer
	contentType string
}

// SetContentType overrides the rendered object's content type (default
// "text/html; charset=utf-8") — syndication feeds render JSON or XML.
func (c *Context) SetContentType(ct string) { c.contentType = ct }

// Version returns the version (database LSN) this render was requested at.
func (c *Context) Version() int64 { return c.version }

// DependOn records an explicit dependency on an arbitrary ODG vertex.
// Renderers use it for computed dependencies that no direct read expresses
// (e.g. a per-table index vertex bumped whenever rows are inserted, so
// "list all events" pages refresh when events appear).
func (c *Context) DependOn(id odg.NodeID) { c.deps[id] = struct{}{} }

// Get reads a row and records the dependency on it. Reading an absent row
// still records the dependency — the page's content ("no results yet")
// depends on the row staying absent.
func (c *Context) Get(table, key string) (db.Row, bool, error) {
	c.deps[odg.NodeID(db.RowID(table, key))] = struct{}{}
	return c.engine.database.Get(table, key)
}

// Scan reads all rows with the key prefix, recording a dependency on each
// returned row and on the table's prefix index vertex ("db:<table>:index:
// <prefix>"), which writers bump when inserting or deleting rows under the
// prefix. The index dependency is what makes membership changes (a new
// event appearing) propagate, not just mutations of already-read rows.
func (c *Context) Scan(table, prefix string) ([]db.Row, error) {
	rows, err := c.engine.database.Scan(table, prefix)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		c.deps[odg.NodeID(db.RowID(table, r.Key))] = struct{}{}
	}
	c.deps[odg.NodeID(IndexID(table, prefix))] = struct{}{}
	return rows, nil
}

// IndexID renders the ODG vertex name for a table-prefix membership index.
// Writers that insert or delete rows under a prefix include this ID in
// their change set so scan-based pages refresh. The canonical format lives
// in db.IndexID so read-tracking views report the same vertex names.
func IndexID(table, prefix string) string {
	return db.IndexID(table, prefix)
}

// Include renders (or reuses the cached copy of) a fragment, splices its
// bytes into the caller's output, and records a dependency on the fragment
// vertex — not on the fragment's own underlying rows; transitivity through
// the ODG handles those.
func (c *Context) Include(fragName string) ([]byte, error) {
	if !IsFragment(fragName) {
		return nil, fmt.Errorf("fragment: Include of non-fragment name %q", fragName)
	}
	c.deps[odg.NodeID(fragName)] = struct{}{}
	if obj, ok := c.engine.fragCache.Get(cache.Key(fragName)); ok {
		return obj.Value, nil
	}
	obj, err := c.engine.render(fragName, c.version, c.depth+1)
	if err != nil {
		return nil, err
	}
	return obj.Value, nil
}

// Printf appends formatted output to the context's build buffer.
func (c *Context) Printf(format string, args ...any) {
	fmt.Fprintf(&c.buf, format, args...)
}

// Write appends raw bytes to the build buffer, implementing io.Writer.
func (c *Context) Write(p []byte) (int, error) { return c.buf.Write(p) }

// IncludeInto renders the fragment and appends it to the build buffer.
func (c *Context) IncludeInto(fragName string) error {
	b, err := c.Include(fragName)
	if err != nil {
		return err
	}
	c.buf.Write(b)
	return nil
}

// Bytes returns a copy of the build buffer; renderers that used
// Printf/Write/IncludeInto return it directly.
func (c *Context) Bytes() []byte {
	out := make([]byte, c.buf.Len())
	copy(out, c.buf.Bytes())
	return out
}

func (c *Context) depList() []odg.NodeID {
	out := make([]odg.NodeID, 0, len(c.deps))
	for id := range c.deps {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
