package fragment

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/odg"
)

// TestSingleFlightAcrossParallelPageAssembly: after BeginBatch raises a
// changed fragment's floor, many concurrent page assemblies that all find
// the cached copy stale must share exactly one render of it. This is the
// WithParallelism(n) propagation shape — n workers rebuilding n pages that
// embed the same changed fragment.
func TestSingleFlightAcrossParallelPageAssembly(t *testing.T) {
	const nPages = 16
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	var renders atomic.Int64
	e.Define("frag:hot", func(ctx *Context) ([]byte, error) {
		renders.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the flight open
		row, _, err := ctx.Get("results", "ski:ev1")
		if err != nil {
			return nil, err
		}
		return []byte(row.Cols["score"]), nil
	})
	for i := 0; i < nPages; i++ {
		e.Define(fmt.Sprintf("/p%d", i), func(ctx *Context) ([]byte, error) {
			if err := ctx.IncludeInto("frag:hot"); err != nil {
				return nil, err
			}
			return ctx.Bytes(), nil
		})
	}
	// Prime at version 1, then open a batch at version 2 naming the
	// fragment: the cached copy drops below its floor.
	if _, err := e.Generate("frag:hot", 1); err != nil {
		t.Fatal(err)
	}
	renders.Store(0)
	e.BeginBatch(2, []cache.Key{"frag:hot"})

	var wg sync.WaitGroup
	errs := make(chan error, nPages)
	for i := 0; i < nPages; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Generate(cache.Key(fmt.Sprintf("/p%d", i)), 2); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := renders.Load(); got != 1 {
		t.Fatalf("fragment rendered %d times across %d parallel assemblies, want 1", got, nPages)
	}
	batchRenders, batchReuses := e.EndBatch()
	if batchRenders != 1 {
		t.Fatalf("batch renders = %d, want 1", batchRenders)
	}
	if batchReuses != nPages-1 {
		t.Fatalf("batch reuses = %d, want %d (every assembly but the flight's own splice)", batchReuses, nPages-1)
	}
}

// TestGenerateSharesFlightAtSameVersion: concurrent Generates of one
// fragment at one version run a single render; requests pinned at a
// different version do not alias it.
func TestGenerateSharesFlightAtSameVersion(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	var renders atomic.Int64
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	e.Define("frag:slow", func(ctx *Context) ([]byte, error) {
		renders.Add(1)
		once.Do(func() { close(entered) })
		<-gate
		return []byte("x"), nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Generate("frag:slow", 7); err != nil {
			t.Error(err)
		}
	}()
	<-entered // the flight for frag:slow@7 is now held
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Generate("frag:slow", 7); err != nil {
				t.Error(err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the waiters reach the flight table
	close(gate)
	wg.Wait()
	if got := renders.Load(); got != 1 {
		t.Fatalf("renders = %d, want 1 shared flight", got)
	}
}

// TestFloorGatesReuse: Include reuses a cached fragment only at or above
// the floor the batch pinned; unchanged fragments (floor zero) stay
// reusable at any cached version.
func TestFloorGatesReuse(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	var renders atomic.Int64
	e.Define("frag:a", func(ctx *Context) ([]byte, error) {
		renders.Add(1)
		return []byte(fmt.Sprintf("a@%d", ctx.Version())), nil
	})
	e.Define("/page", func(ctx *Context) ([]byte, error) {
		if err := ctx.IncludeInto("frag:a"); err != nil {
			return nil, err
		}
		return ctx.Bytes(), nil
	})
	if _, err := e.Generate("frag:a", 1); err != nil {
		t.Fatal(err)
	}
	// Floor zero: the v1 copy satisfies a v5 assembly.
	obj, err := e.Generate("/page", 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Value) != "a@1" {
		t.Fatalf("page = %q, want the cached v1 bytes", obj.Value)
	}
	// Floor 6: the v1 copy is stale, assembly must re-render.
	e.BeginBatch(6, []cache.Key{"frag:a"})
	renders.Store(0)
	obj, err = e.Generate("/page", 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Value) != "a@6" {
		t.Fatalf("page = %q, want freshly rendered v6 bytes", obj.Value)
	}
	if renders.Load() != 1 {
		t.Fatalf("renders = %d, want 1", renders.Load())
	}
}

// TestIncludeReusePathAllocs guards the hot path: splicing an already-cached
// fragment into a page must not allocate.
func TestIncludeReusePathAllocs(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()})
	e.Define("frag:a", func(ctx *Context) ([]byte, error) { return []byte("a"), nil })
	if _, err := e.Generate("frag:a", 1); err != nil {
		t.Fatal(err)
	}
	c := &Context{engine: e, name: "/page", version: 1, deps: make(map[odg.NodeID]struct{})}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Include("frag:a"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Include reuse path allocates %.1f times per call, want 0", allocs)
	}
}

// TestFullReRenderBaselineBypassesCache: the benchmark baseline mode must
// re-render on every Include rather than splice cached bytes.
func TestFullReRenderBaselineBypassesCache(t *testing.T) {
	d := testDB(t)
	e := New(Config{DB: d, Registrar: newRecorder()}, WithFullReRender())
	var renders atomic.Int64
	e.Define("frag:a", func(ctx *Context) ([]byte, error) {
		renders.Add(1)
		return []byte("a"), nil
	})
	e.Define("/page", func(ctx *Context) ([]byte, error) {
		if err := ctx.IncludeInto("frag:a"); err != nil {
			return nil, err
		}
		return ctx.Bytes(), nil
	})
	for i := int64(1); i <= 3; i++ {
		if _, err := e.Generate("/page", i); err != nil {
			t.Fatal(err)
		}
	}
	if got := renders.Load(); got != 3 {
		t.Fatalf("baseline renders = %d, want 3 (one per page render)", got)
	}
	_, reuses := e.Accounting()
	if reuses != 0 {
		t.Fatalf("baseline recorded %d reuses, want 0", reuses)
	}
}
