package trigger

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
	"dupserve/internal/trace"
)

// harness wires db -> monitor -> engine -> cache with a generator that
// renders row contents, so tests observe end-to-end freshness.
type harness struct {
	db      *db.DB
	cache   *cache.Cache
	engine  *core.Engine
	monitor *Monitor
	renders *sync.Map // key -> count
}

func newHarness(t *testing.T, opts ...Option) *harness {
	t.Helper()
	d := db.New("t")
	d.CreateTable("results")
	c := cache.New("t")
	renders := &sync.Map{}
	g := odg.New()
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		n, _ := renders.LoadOrStore(string(key), new(int))
		*(n.(*int))++
		row, ok, err := d.Get("results", string(key)[len("/page/"):])
		if err != nil {
			return nil, err
		}
		body := "gone"
		if ok {
			body = row.Cols["score"]
		}
		return &cache.Object{Key: key, Value: []byte(body), Version: version}, nil
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	h := &harness{db: d, cache: c, engine: e, renders: renders}
	h.monitor = startMonitor(t, d, e, opts...)
	return h
}

// startMonitor constructs a monitor, starts it, and registers shutdown.
func startMonitor(t testing.TB, d *db.DB, e *core.Engine, opts ...Option) *Monitor {
	t.Helper()
	m := New(Config{DB: d, Engine: e}, opts...)
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Shutdown(context.Background()) })
	return m
}

// registerPage declares /page/<row> depending on db:results:<row> and
// primes the cache.
func (h *harness) registerPage(t *testing.T, row string) {
	t.Helper()
	key := cache.Key("/page/" + row)
	h.engine.RegisterObject(key, []odg.NodeID{odg.NodeID(db.RowID("results", row))})
	h.cache.Put(&cache.Object{Key: key, Value: []byte("initial")})
}

func (h *harness) commit(t *testing.T, row, score string) {
	t.Helper()
	if _, err := h.db.Commit(h.db.NewTx().Put("results", row, map[string]string{"score": score})); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndUpdateInPlace(t *testing.T) {
	h := newHarness(t, WithBatchWindow(0))
	h.registerPage(t, "ev1")
	h.commit(t, "ev1", "9.81")
	h.monitor.Flush()
	obj, ok := h.cache.Peek("/page/ev1")
	if !ok {
		t.Fatal("page missing from cache")
	}
	if string(obj.Value) != "9.81" {
		t.Fatalf("page = %q, want fresh score", obj.Value)
	}
	if obj.Version != h.db.LSN() {
		t.Fatalf("version = %d, want %d", obj.Version, h.db.LSN())
	}
}

func TestUnrelatedChangeDoesNotTouchPage(t *testing.T) {
	h := newHarness(t, WithBatchWindow(0))
	h.registerPage(t, "ev1")
	h.commit(t, "ev-other", "1")
	h.monitor.Flush()
	obj, _ := h.cache.Peek("/page/ev1")
	if string(obj.Value) != "initial" {
		t.Fatalf("unrelated change regenerated page: %q", obj.Value)
	}
	if n, ok := h.renders.Load("/page/ev1"); ok {
		t.Fatalf("page rendered %d times for unrelated change", *(n.(*int)))
	}
}

func TestBatchingCoalescesDuplicateRows(t *testing.T) {
	// Ten rapid updates to the same row inside one batch window must cause
	// exactly one regeneration (the batch dedupes changed vertices).
	h := newHarness(t, WithBatchSize(100), WithBatchWindow(time.Hour))
	h.registerPage(t, "ev1")
	for i := 0; i < 10; i++ {
		h.commit(t, "ev1", fmt.Sprintf("%d", i))
	}
	h.monitor.Flush()
	n, ok := h.renders.Load("/page/ev1")
	if !ok || *(n.(*int)) != 1 {
		t.Fatalf("renders = %v, want exactly 1", n)
	}
	obj, _ := h.cache.Peek("/page/ev1")
	if string(obj.Value) != "9" {
		t.Fatalf("page = %q, want final score", obj.Value)
	}
	st := h.monitor.Stats()
	if st.Batches != 1 || st.Transactions != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatchSizeTriggersPropagation(t *testing.T) {
	h := newHarness(t, WithBatchSize(3), WithBatchWindow(time.Hour))
	h.registerPage(t, "ev1")
	for i := 0; i < 3; i++ {
		h.commit(t, "ev1", fmt.Sprintf("%d", i))
	}
	// No Flush: the size threshold alone must fire. Poll for effect.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if obj, ok := h.cache.Peek("/page/ev1"); ok && string(obj.Value) == "2" {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("batch-size propagation never fired")
}

func TestBatchWindowTriggersPropagation(t *testing.T) {
	h := newHarness(t, WithBatchSize(1000), WithBatchWindow(10*time.Millisecond))
	h.registerPage(t, "ev1")
	h.commit(t, "ev1", "42")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if obj, ok := h.cache.Peek("/page/ev1"); ok && string(obj.Value) == "42" {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("batch-window propagation never fired")
}

func TestShutdownDrainsPending(t *testing.T) {
	h := newHarness(t, WithBatchSize(1000), WithBatchWindow(time.Hour))
	h.registerPage(t, "ev1")
	h.commit(t, "ev1", "7")
	// Give the feed a moment to deliver, then stop: the final propagation
	// on shutdown must apply the pending batch.
	deadline := time.Now().Add(5 * time.Second)
	for h.monitor.Stats().Transactions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := h.monitor.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	obj, _ := h.cache.Peek("/page/ev1")
	if string(obj.Value) != "7" {
		t.Fatalf("pending batch lost on Shutdown: %q", obj.Value)
	}
}

func TestShutdownIdempotentAndFlushAfterShutdown(t *testing.T) {
	h := newHarness(t)
	if err := h.monitor.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := h.monitor.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.monitor.Flush() // must not hang
}

func TestCustomIndexer(t *testing.T) {
	var indexed []string
	var mu sync.Mutex
	ix := func(c db.Change) []odg.NodeID {
		mu.Lock()
		indexed = append(indexed, c.Key)
		mu.Unlock()
		return []odg.NodeID{odg.NodeID(c.ChangeID()), "extra:vertex"}
	}
	d := db.New("t")
	d.CreateTable("results")
	c := cache.New("t")
	g := odg.New()
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: []byte("x"), Version: version}, nil
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	e.RegisterObject("/extra", []odg.NodeID{"extra:vertex"})
	m := startMonitor(t, d, e, WithBatchWindow(0), WithIndexer(ix))
	if _, err := d.Commit(d.NewTx().Put("results", "k", nil)); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if !c.Contains("/extra") {
		t.Fatal("custom indexer vertex did not propagate")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(indexed) != 1 || indexed[0] != "k" {
		t.Fatalf("indexed = %v", indexed)
	}
}

func TestLatencyMeasured(t *testing.T) {
	base := time.Date(1998, 2, 13, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	now := base
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	d := db.New("t", db.WithClock(clock))
	d.CreateTable("results")
	c := cache.New("t")
	g := odg.New()
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: []byte("x"), Version: version}, nil
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	m := startMonitor(t, d, e, WithBatchWindow(0), WithClock(clock))

	if _, err := d.Commit(d.NewTx().Put("results", "k", nil)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = base.Add(3 * time.Second) // propagation "takes" 3s of simulated time
	mu.Unlock()
	m.Flush()
	st := m.Stats()
	if st.LatencyMax < 2.9 || st.LatencyMax > 3.1 {
		t.Fatalf("latency max = %v, want ~3s", st.LatencyMax)
	}
	// The paper's freshness bound: within 60 seconds.
	if st.LatencyMax > 60 {
		t.Fatal("freshness bound violated")
	}
}

func TestLastLSNAdvances(t *testing.T) {
	h := newHarness(t, WithBatchWindow(0))
	h.registerPage(t, "ev1")
	for i := 0; i < 5; i++ {
		h.commit(t, "ev1", "s")
	}
	h.monitor.Flush()
	if got := h.monitor.LastLSN(); got != 5 {
		t.Fatalf("LastLSN = %d, want 5", got)
	}
}

func TestManyPagesPerUpdate(t *testing.T) {
	// A cross-country result update affecting 128 pages (paper, §3.1),
	// flowing through the full trigger pipeline.
	h := newHarness(t, WithBatchWindow(0))
	key := func(i int) cache.Key { return cache.Key(fmt.Sprintf("/cc/p%d", i)) }
	gen := odg.NodeID(db.RowID("results", "cc:ev1"))
	for i := 0; i < 128; i++ {
		h.engine.RegisterObject(key(i), []odg.NodeID{gen})
	}
	// Override generator pages aren't /page/-shaped; they'd fail the row
	// parse. Re-register with a generator-agnostic row instead:
	// the harness generator slices "/page/", so use register via harness.
	// Simpler: commit the row and verify affected count via engine stats.
	h.commit(t, "cc:ev1", "1")
	h.monitor.Flush()
	st := h.monitor.Stats()
	if st.PagesUpdated+st.Invalidations < 128 {
		t.Fatalf("pages touched = %d, want >= 128 (stats %+v)", st.PagesUpdated+st.Invalidations, st)
	}
}

func TestConcurrentCommittersSingleMonitor(t *testing.T) {
	h := newHarness(t, WithBatchSize(8), WithBatchWindow(5*time.Millisecond))
	h.registerPage(t, "ev1")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				h.commit(t, "ev1", fmt.Sprintf("%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	h.monitor.Flush()
	st := h.monitor.Stats()
	if st.Transactions != 100 {
		t.Fatalf("transactions = %d, want 100", st.Transactions)
	}
	if h.monitor.LastLSN() != 100 {
		t.Fatalf("LastLSN = %d, want 100", h.monitor.LastLSN())
	}
}

// TestTracePropagationStages asserts that every committed transaction's
// trace contains exactly the stages commit -> cdc -> batch -> dup ->
// render -> push with monotonically non-decreasing boundary timestamps.
func TestTracePropagationStages(t *testing.T) {
	cases := []struct {
		name    string
		opts    []Option
		commits int
	}{
		{"unbatched single tx", []Option{WithBatchWindow(0)}, 1},
		{"windowed batch", []Option{WithBatchWindow(5 * time.Millisecond), WithBatchSize(64)}, 5},
		{"size-triggered batch", []Option{WithBatchWindow(time.Hour), WithBatchSize(2)}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.New()
			h := newHarness(t, append(append([]Option(nil), tc.opts...), WithTracer(tr))...)
			h.registerPage(t, "ev1")
			for i := 0; i < tc.commits; i++ {
				h.commit(t, "ev1", fmt.Sprintf("score-%d", i))
			}
			h.monitor.Flush()

			if got := tr.Recorded(); got != int64(tc.commits) {
				t.Fatalf("traces recorded = %d, want %d (one per transaction)", got, tc.commits)
			}
			if tr.InFlight() != 0 {
				t.Fatalf("in-flight after flush = %d, want 0", tr.InFlight())
			}
			seenIDs := make(map[int64]bool)
			for _, got := range tr.Recent(0) {
				if got.ID == 0 {
					t.Fatal("trace ID not minted at commit")
				}
				if seenIDs[got.ID] {
					t.Fatalf("duplicate trace ID %d", got.ID)
				}
				seenIDs[got.ID] = true
				if got.LSN <= 0 {
					t.Fatalf("trace LSN = %d, want > 0", got.LSN)
				}
				if got.Vertices < 1 || got.FanOut < 1 {
					t.Fatalf("trace touched vertices=%d fanOut=%d, want >= 1 each", got.Vertices, got.FanOut)
				}
				for i, s := range trace.Stages() {
					ts := got.Times[s]
					if ts.IsZero() {
						t.Fatalf("stage %v has no timestamp", s)
					}
					if i > 0 && ts.Before(got.Times[trace.Stages()[i-1]]) {
						t.Fatalf("stage %v at %v precedes %v at %v", s, ts,
							trace.Stages()[i-1], got.Times[trace.Stages()[i-1]])
					}
				}
				if got.Total() < 0 {
					t.Fatalf("negative total latency %v", got.Total())
				}
			}
		})
	}
}

// TestTraceSLOViolation pins the database clock in the past and the
// monitor clock in the future so a propagation "takes" 70 simulated
// seconds, violating the 60-second freshness SLO.
func TestTraceSLOViolation(t *testing.T) {
	base := time.Unix(5000, 0)
	d := db.New("t", db.WithClock(func() time.Time { return base }))
	d.CreateTable("results")
	c := cache.New("t")
	g := odg.New()
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: []byte("x"), Version: version}, nil
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	tr := trace.New(trace.WithSLO(60 * time.Second))
	m := startMonitor(t, d, e, WithTracer(tr), WithBatchWindow(0),
		WithClock(func() time.Time { return base.Add(70 * time.Second) }))

	e.RegisterObject("/page/ev1", []odg.NodeID{odg.NodeID(db.RowID("results", "ev1"))})
	if _, err := d.Commit(d.NewTx().Put("results", "ev1", map[string]string{"score": "1"})); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if got := tr.Violations(); got != 1 {
		t.Fatalf("SLO violations = %d, want 1 (70s > 60s SLO)", got)
	}
	if tr.Recorded() != 1 {
		t.Fatalf("recorded = %d, want 1", tr.Recorded())
	}
}

// TestBatchHistograms verifies the monitor feeds its batching histograms:
// one batch-size and one batch-wait observation per propagated batch.
func TestBatchHistograms(t *testing.T) {
	tr := trace.New()
	h := newHarness(t, WithBatchWindow(time.Hour), WithBatchSize(3), WithTracer(tr))
	h.registerPage(t, "ev1")
	for i := 0; i < 3; i++ {
		h.commit(t, "ev1", fmt.Sprintf("s%d", i))
	}
	h.monitor.Flush()

	sizes := h.monitor.BatchSizes()
	waits := h.monitor.BatchWait()
	if sizes.Count() == 0 {
		t.Fatal("batch-size histogram recorded nothing")
	}
	if sizes.Count() != waits.Count() {
		t.Fatalf("size observations = %d, wait observations = %d, want equal",
			sizes.Count(), waits.Count())
	}
	batches := h.monitor.Stats().Batches
	if sizes.Count() != batches {
		t.Fatalf("size observations = %d, batches = %d, want one per batch", sizes.Count(), batches)
	}
	// All three commits land before the size-3 threshold flushes, so some
	// batch must have held more than one transaction.
	if sizes.Mean() < 1 {
		t.Fatalf("mean batch size = %v, want >= 1", sizes.Mean())
	}
}
