package trigger

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
)

// plant is the recovery-test fixture: db -> engine -> cache, with monitors
// constructed explicitly so a test can crash one and start a successor from
// its checkpoint.
type plant struct {
	db     *db.DB
	cache  *cache.Cache
	engine *core.Engine
}

func newPlant(t *testing.T, rows int) *plant {
	t.Helper()
	d := db.New("t")
	d.CreateTable("results")
	c := cache.New("t")
	g := odg.New()
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		row, ok, err := d.Get("results", string(key)[len("/page/"):])
		if err != nil {
			return nil, err
		}
		body := "gone"
		if ok {
			body = row.Cols["score"]
		}
		return &cache.Object{Key: key, Value: []byte(body), Version: version}, nil
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	p := &plant{db: d, cache: c, engine: e}
	for i := 0; i < rows; i++ {
		row := fmt.Sprintf("ev%d", i)
		key := cache.Key("/page/" + row)
		e.RegisterObject(key, []odg.NodeID{odg.NodeID(db.RowID("results", row))})
		c.Put(&cache.Object{Key: key, Value: []byte("initial")})
	}
	return p
}

func (p *plant) commit(t *testing.T, row, score string) int64 {
	t.Helper()
	tx, err := p.db.Commit(p.db.NewTx().Put("results", row, map[string]string{"score": score}))
	if err != nil {
		t.Fatal(err)
	}
	return tx.LSN
}

func waitDone(t *testing.T, m *Monitor) {
	t.Helper()
	select {
	case <-m.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("monitor did not stop")
	}
}

// TestCrashRecoveryZeroLoss is the paper's core availability claim for the
// trigger monitor: a crash mid-stream loses nothing, because the successor
// replays the change log from the crashed monitor's checkpoint.
func TestCrashRecoveryZeroLoss(t *testing.T) {
	p := newPlant(t, 5)
	ctx := context.Background()

	crashed := false
	hook := func(lsn int64) bool {
		if !crashed && lsn == 3 {
			crashed = true
			return true
		}
		return false
	}
	m1 := New(Config{Name: "t", DB: p.db, Engine: p.engine},
		WithBatchWindow(0), WithCrashHook(hook))
	if err := m1.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Two clean transactions, each fully propagated before the next.
	p.commit(t, "ev0", "s0")
	m1.Flush()
	p.commit(t, "ev1", "s1")
	m1.Flush()
	// The third batch (LSN 3) crashes the monitor before propagation.
	p.commit(t, "ev2", "s2")
	waitDone(t, m1)

	if !errors.Is(m1.Err(), ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", m1.Err())
	}
	if st := m1.Stats(); st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if cp := m1.Checkpoint(); cp != 2 {
		t.Fatalf("checkpoint = %d, want 2 (last fully propagated batch)", cp)
	}
	if obj, _ := p.cache.Peek("/page/ev2"); string(obj.Value) != "initial" {
		t.Fatalf("crashed batch propagated anyway: %q", obj.Value)
	}

	// More commits land while the monitor is down.
	p.commit(t, "ev3", "s3")
	p.commit(t, "ev4", "s4")

	// The successor starts from the checkpoint and replays LSN 3..5.
	m2 := New(Config{Name: "t", DB: p.db, Engine: p.engine, StartLSN: m1.Checkpoint()},
		WithBatchWindow(0))
	if err := m2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m2.Shutdown(ctx) }()
	m2.Flush()

	if got := m2.LastLSN(); got != p.db.LSN() {
		t.Fatalf("successor LSN = %d, master = %d", got, p.db.LSN())
	}
	if st := m2.Stats(); st.Replayed != 3 {
		t.Fatalf("replayed = %d, want 3 (LSN 3..5)", st.Replayed)
	}
	for i := 0; i < 5; i++ {
		key := cache.Key(fmt.Sprintf("/page/ev%d", i))
		obj, ok := p.cache.Peek(key)
		if !ok || string(obj.Value) != fmt.Sprintf("s%d", i) {
			t.Fatalf("page %s = %v %q after recovery", key, ok, obj.Value)
		}
	}
}

// TestFlushReturnsWhenMonitorCrashes guards callers blocked in Flush: a
// crash mid-batch must still release them instead of hanging forever.
func TestFlushReturnsWhenMonitorCrashes(t *testing.T) {
	p := newPlant(t, 1)
	m := New(Config{Name: "t", DB: p.db, Engine: p.engine},
		WithBatchWindow(time.Hour), // only Flush drives propagation
		WithCrashHook(func(int64) bool { return true }))
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.commit(t, "ev0", "s0")

	done := make(chan struct{})
	go func() { m.Flush(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Flush hung across a monitor crash")
	}
	waitDone(t, m)
	if !errors.Is(m.Err(), ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", m.Err())
	}
}

// TestStartLSNSkipsAlreadyPropagatedTransactions: a successor must not
// re-propagate batches its predecessor completed (replay is from the
// checkpoint, not from zero).
func TestStartLSNSkipsAlreadyPropagatedTransactions(t *testing.T) {
	p := newPlant(t, 2)
	p.commit(t, "ev0", "old")
	p.commit(t, "ev1", "new")

	m := New(Config{Name: "t", DB: p.db, Engine: p.engine, StartLSN: 1},
		WithBatchWindow(0))
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Shutdown(context.Background()) }()
	m.Flush()

	if st := m.Stats(); st.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", st.Replayed)
	}
	// LSN 1's page was never propagated by this monitor.
	if obj, _ := p.cache.Peek("/page/ev0"); string(obj.Value) != "initial" {
		t.Fatalf("pre-checkpoint batch replayed: %q", obj.Value)
	}
	if obj, _ := p.cache.Peek("/page/ev1"); string(obj.Value) != "new" {
		t.Fatalf("post-checkpoint batch not replayed: %q", obj.Value)
	}
}

// TestShutdownIsIdempotentAndBounded: Shutdown twice is fine, and a
// cancelled context bounds the wait.
func TestShutdownIsIdempotentAndBounded(t *testing.T) {
	p := newPlant(t, 1)
	m := New(Config{Name: "t", DB: p.db, Engine: p.engine}, WithBatchWindow(0))
	ctx := context.Background()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Err() != nil {
		t.Fatalf("clean shutdown left err = %v", m.Err())
	}
}

// TestOnCrashCallbackFiresAfterDone: supervisors rely on the callback
// running after Done() is observable so a restart can read the checkpoint.
func TestOnCrashCallbackFiresAfterDone(t *testing.T) {
	p := newPlant(t, 1)
	notified := make(chan error, 1)
	m := New(Config{Name: "t", DB: p.db, Engine: p.engine},
		WithBatchWindow(0),
		WithCrashHook(func(int64) bool { return true }),
		WithOnCrash(func(err error) { notified <- err }))
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.commit(t, "ev0", "s0")
	select {
	case err := <-notified:
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("callback err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnCrash never fired")
	}
	// Done must already be closed when the callback runs.
	select {
	case <-m.Done():
	default:
		t.Fatal("OnCrash fired before Done closed")
	}
}
