package trigger

import (
	"testing"
	"time"
)

// waitForTransactions blocks until the monitor has propagated n
// transactions (or the test deadline hits).
func waitForTransactions(t *testing.T, m *Monitor, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Transactions < n {
		if time.Now().After(deadline) {
			t.Fatalf("monitor stuck at %d of %d transactions", m.Stats().Transactions, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestBurstCoalescesIntoOneBatch holds the monitor mid-propagation (via a
// blocking crash hook that never crashes) while a commit burst accumulates
// in the feed, then verifies the backlog propagates as ONE merged batch:
// the sublinear-burst guarantee.
func TestBurstCoalescesIntoOneBatch(t *testing.T) {
	entered := make(chan int64)
	release := make(chan struct{})
	hook := func(lsn int64) bool {
		entered <- lsn
		<-release
		return false
	}
	h := newHarness(t,
		WithBatchSize(4),
		WithMaxPending(256),
		WithBatchWindow(time.Hour), // only batch-size/flush trigger propagation
		WithCrashHook(hook),
	)
	h.registerPage(t, "ev1")

	// Fill the first batch; the monitor blocks inside the hook.
	for i := 0; i < 4; i++ {
		h.commit(t, "ev1", "s")
	}
	<-entered

	// The burst: 60 more transactions pile up in the feed while propagation
	// is stalled (the paper's commit storm during a popular event).
	for i := 0; i < 60; i++ {
		h.commit(t, "ev1", "s")
	}
	release <- struct{}{} // batch 1 (4 txs) propagates

	// The backlog must coalesce into a single second batch.
	<-entered
	release <- struct{}{}

	// Wait for the feed path to finish the backlog before flushing, so the
	// flush observes — not performs — the coalescing.
	waitForTransactions(t, h.monitor, 64)
	h.monitor.Flush()

	st := h.monitor.Stats()
	if st.Transactions != 64 {
		t.Fatalf("transactions propagated = %d, want 64", st.Transactions)
	}
	if st.Batches != 2 {
		t.Fatalf("batches = %d, want 2 (burst must coalesce into one batch)", st.Batches)
	}
	if st.Coalesced != 56 {
		// Batch 2 starts with 4 admitted via the normal path; the other 56
		// are absorbed by backpressure coalescing.
		t.Fatalf("coalesced = %d, want 56", st.Coalesced)
	}
}

// TestMaxPendingBoundsCoalescing verifies the high-water mark: a backlog
// larger than MaxPending splits into ceil(backlog/MaxPending) batches
// rather than one unbounded batch.
func TestMaxPendingBoundsCoalescing(t *testing.T) {
	entered := make(chan int64)
	release := make(chan struct{})
	hook := func(lsn int64) bool {
		entered <- lsn
		<-release
		return false
	}
	h := newHarness(t,
		WithBatchSize(4),
		WithMaxPending(16),
		WithBatchWindow(time.Hour),
		WithCrashHook(hook),
	)
	h.registerPage(t, "ev1")

	for i := 0; i < 4; i++ {
		h.commit(t, "ev1", "s")
	}
	<-entered
	for i := 0; i < 60; i++ {
		h.commit(t, "ev1", "s")
	}
	go func() {
		for {
			select {
			case <-entered:
				release <- struct{}{}
			case <-h.monitor.Done():
				return
			}
		}
	}()
	release <- struct{}{}
	waitForTransactions(t, h.monitor, 64)
	h.monitor.Flush()

	st := h.monitor.Stats()
	if st.Transactions != 64 {
		t.Fatalf("transactions propagated = %d, want 64", st.Transactions)
	}
	// Batch 1 holds 4; the queued backlog of 60 then drains in high-water
	// slices of min(16, remaining): 16+16+16+12.
	if st.Batches != 5 {
		t.Fatalf("batches = %d, want 5 (MaxPending must bound each batch)", st.Batches)
	}
	bounds, counts := h.monitor.BatchSizes().Buckets()
	for i, c := range counts {
		if c > 0 && (i >= len(bounds) || bounds[i] > 16) {
			t.Fatalf("a batch exceeded MaxPending (histogram bucket %d has %d)", i, c)
		}
	}
}

// TestFlushBacksOffWithoutSpinning exercises the Flush retry path: a
// transaction committed immediately before Flush must be propagated by the
// time Flush returns, regardless of feed-queue timing.
func TestFlushBacksOffWithoutSpinning(t *testing.T) {
	h := newHarness(t, WithBatchWindow(time.Hour), WithBatchSize(1024))
	h.registerPage(t, "ev1")
	for i := 0; i < 50; i++ {
		h.commit(t, "ev1", "s")
		h.monitor.Flush()
		if got := h.monitor.LastLSN(); got != h.db.LSN() {
			t.Fatalf("Flush returned at LSN %d, want %d", got, h.db.LSN())
		}
	}
}
