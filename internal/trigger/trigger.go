// Package trigger implements the trigger monitor (section 2 and figure 6 of
// the paper): the component that watches the database for changes and
// drives Data Update Propagation.
//
// In the 1998 deployment, each SP2's 8-way SMP ran the triggering, caching
// and page-rendering code, deliberately separated from the uniprocessors
// serving requests so that bursts of updates never degraded serving
// latency. The Monitor mirrors that structure: it consumes the database's
// change-data-capture feed on its own goroutine, batches transactions that
// arrive close together, maps each changed row to its ODG vertices, and
// hands the batch to the DUP engine, which re-renders affected pages and
// distributes them to the serving caches.
//
// Freshness — the paper's "reflecting current events within a maximum of
// sixty seconds" — is measured per transaction as commit-to-propagated
// latency and exposed via Stats.
package trigger

import (
	"sync"
	"time"

	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
	"dupserve/internal/stats"
)

// Indexer maps one database change to the ODG vertex IDs that should be
// treated as changed. The default indexer returns just the row vertex; the
// site layer supplies one that also emits prefix-index vertices for inserts
// and deletes so scan-based pages refresh on membership changes.
type Indexer func(c db.Change) []odg.NodeID

// DefaultIndexer maps a change to its row vertex only.
func DefaultIndexer(c db.Change) []odg.NodeID {
	return []odg.NodeID{odg.NodeID(c.ChangeID())}
}

// Monitor consumes a CDC feed and drives a DUP engine. Create with Start;
// release with Stop.
type Monitor struct {
	engine      *core.Engine
	indexer     Indexer
	batchSize   int
	batchWindow time.Duration
	now         func() time.Time

	database   *db.DB
	feed       <-chan db.Transaction
	cancelFeed func()
	flushC     chan chan struct{}
	done       chan struct{}

	batches     stats.Counter
	txs         stats.Counter
	updated     stats.Counter
	invalidated stats.Counter
	latency     stats.Summary // commit -> propagated, seconds

	mu      sync.Mutex
	lastLSN int64
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithBatchSize propagates as soon as a batch holds n transactions
// (default 16).
func WithBatchSize(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.batchSize = n
		}
	}
}

// WithBatchWindow propagates a partial batch after d of quiet (default
// 50ms). Zero disables batching: every transaction propagates immediately.
func WithBatchWindow(d time.Duration) Option {
	return func(m *Monitor) { m.batchWindow = d }
}

// WithIndexer substitutes the change-to-vertex mapping.
func WithIndexer(ix Indexer) Option {
	return func(m *Monitor) { m.indexer = ix }
}

// WithClock substitutes the latency clock.
func WithClock(now func() time.Time) Option {
	return func(m *Monitor) { m.now = now }
}

// Start subscribes to database's feed and begins propagating into engine.
func Start(database *db.DB, engine *core.Engine, opts ...Option) *Monitor {
	m := &Monitor{
		database:    database,
		engine:      engine,
		indexer:     DefaultIndexer,
		batchSize:   16,
		batchWindow: 50 * time.Millisecond,
		now:         time.Now,
		flushC:      make(chan chan struct{}),
		done:        make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	m.feed, m.cancelFeed = database.Subscribe(256)
	go m.loop()
	return m
}

func (m *Monitor) loop() {
	defer close(m.done)
	var pending []db.Transaction
	var timer *time.Timer
	var timerC <-chan time.Time

	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	propagate := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		m.propagate(pending)
		pending = pending[:0]
	}

	for {
		select {
		case tx, ok := <-m.feed:
			if !ok {
				propagate()
				return
			}
			pending = append(pending, tx)
			if m.batchWindow <= 0 || len(pending) >= m.batchSize {
				propagate()
			} else if timerC == nil {
				timer = time.NewTimer(m.batchWindow)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			propagate()
		case ack := <-m.flushC:
			// Absorb anything already delivered on the feed, then
			// propagate. Flush (below) re-issues the request until every
			// transaction committed before the call has flowed through the
			// feed's internal queue and been propagated.
			for {
				select {
				case tx, ok := <-m.feed:
					if ok {
						pending = append(pending, tx)
						continue
					}
				default:
				}
				break
			}
			propagate()
			close(ack)
		}
	}
}

// propagate maps a batch of transactions to changed vertices and runs one
// DUP propagation stamped with the batch's highest LSN.
func (m *Monitor) propagate(batch []db.Transaction) {
	seen := make(map[odg.NodeID]struct{})
	var changed []odg.NodeID
	var maxLSN int64
	for _, tx := range batch {
		if tx.LSN > maxLSN {
			maxLSN = tx.LSN
		}
		for _, c := range tx.Changes {
			for _, id := range m.indexer(c) {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					changed = append(changed, id)
				}
			}
		}
	}
	res := m.engine.OnChange(maxLSN, changed...)

	m.batches.Inc()
	m.txs.Add(int64(len(batch)))
	m.updated.Add(int64(res.Updated))
	m.invalidated.Add(int64(res.Invalidated))
	end := m.now()
	for _, tx := range batch {
		m.latency.Observe(end.Sub(tx.Commit).Seconds())
	}
	m.mu.Lock()
	if maxLSN > m.lastLSN {
		m.lastLSN = maxLSN
	}
	m.mu.Unlock()
}

// Flush synchronously propagates everything committed before the call,
// returning once those propagations have completed. Tests and the
// simulator use it for deterministic sequencing. If the monitor has been
// stopped, Flush returns immediately.
func (m *Monitor) Flush() {
	target := m.database.LSN()
	for {
		ack := make(chan struct{})
		select {
		case m.flushC <- ack:
			<-ack
		case <-m.done:
			return
		}
		if m.LastLSN() >= target {
			return
		}
		// A transaction committed before the call is still traversing the
		// feed's internal queue; yield and retry.
		time.Sleep(100 * time.Microsecond)
	}
}

// Stop cancels the feed subscription and waits for the final propagation.
// Safe to call more than once.
func (m *Monitor) Stop() {
	m.cancelFeed()
	<-m.done
}

// LastLSN returns the highest LSN the monitor has propagated.
func (m *Monitor) LastLSN() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLSN
}

// MonitorStats snapshots the monitor's counters.
type MonitorStats struct {
	Batches       int64
	Transactions  int64
	PagesUpdated  int64
	Invalidations int64
	// Freshness latency, seconds, commit -> propagated.
	LatencyMean float64
	LatencyP99  float64
	LatencyMax  float64
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	return MonitorStats{
		Batches:       m.batches.Value(),
		Transactions:  m.txs.Value(),
		PagesUpdated:  m.updated.Value(),
		Invalidations: m.invalidated.Value(),
		LatencyMean:   m.latency.Mean(),
		LatencyP99:    m.latency.Percentile(99),
		LatencyMax:    m.latency.Max(),
	}
}
