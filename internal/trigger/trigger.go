// Package trigger implements the trigger monitor (section 2 and figure 6 of
// the paper): the component that watches the database for changes and
// drives Data Update Propagation.
//
// In the 1998 deployment, each SP2's 8-way SMP ran the triggering, caching
// and page-rendering code, deliberately separated from the uniprocessors
// serving requests so that bursts of updates never degraded serving
// latency. The Monitor mirrors that structure: it consumes the database's
// change-data-capture feed on its own goroutine, batches transactions that
// arrive close together, maps each changed row to its ODG vertices, and
// hands the batch to the DUP engine, which re-renders affected pages and
// distributes them to the serving caches.
//
// Availability: the monitor checkpoints the highest LSN it has propagated
// (LastLSN). If it crashes — organically or via an injected fault hook — a
// supervisor restarts it with Config.StartLSN set to the checkpoint, and
// Start replays the database's retained log from there before consuming
// the live feed, so no committed transaction is ever dropped. The paper's
// freshness guarantee survives the restart: pages are at worst delayed,
// never lost.
//
// Freshness — the paper's "reflecting current events within a maximum of
// sixty seconds" — is measured per transaction as commit-to-propagated
// latency and exposed via Stats.
package trigger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
	"dupserve/internal/stats"
	"dupserve/internal/trace"
)

// Indexer maps one database change to the ODG vertex IDs that should be
// treated as changed. The default indexer returns just the row vertex; the
// site layer supplies one that also emits prefix-index vertices for inserts
// and deletes so scan-based pages refresh on membership changes.
type Indexer func(c db.Change) []odg.NodeID

// DefaultIndexer maps a change to its row vertex only.
func DefaultIndexer(c db.Change) []odg.NodeID {
	return []odg.NodeID{odg.NodeID(c.ChangeID())}
}

// CrashHook decides, per batch about to propagate, whether the monitor
// crashes instead (fault injection). lsn is the batch's highest LSN. A
// crash drops the batch unpropagated, exactly like a process death between
// CDC consumption and propagation; recovery replays it from the log.
type CrashHook func(lsn int64) bool

// ErrCrashed is wrapped by the error a crashed monitor reports from Err.
var ErrCrashed = errors.New("trigger: monitor crashed")

// Config describes a Monitor. DB and Engine are required; everything else
// has working defaults.
type Config struct {
	// Name appears in diagnostics and fault identities ("tokyo").
	Name string
	// DB is the database whose CDC feed the monitor consumes.
	DB *db.DB
	// Engine is the DUP engine propagations are handed to.
	Engine *core.Engine
	// StartLSN is the recovery checkpoint: Start replays the database's
	// retained log for every transaction with LSN > StartLSN before
	// consuming the live feed. Zero starts from the live feed only (plus
	// any log the database retains, which for a fresh monitor is the
	// correct "everything so far already propagated by someone" choice of
	// StartLSN = DB.LSN(); pass that explicitly when taking over).
	StartLSN int64
	// BatchSize propagates as soon as a batch holds this many transactions
	// (default 16).
	BatchSize int
	// BatchWindow propagates a partial batch after this much quiet
	// (default 50ms). Zero disables batching.
	BatchWindow time.Duration
	// MaxPending is the backpressure high-water mark (default 8*BatchSize).
	// When a batch reaches BatchSize and the feed is still delivering — a
	// commit burst — the monitor keeps absorbing already-arrived
	// transactions into the same batch up to MaxPending before propagating
	// once. The merged batch's changed-vertex frontiers deduplicate, so a
	// burst costs one ODG traversal over the union instead of one per
	// BatchSize: propagation work grows sublinearly with burst size.
	MaxPending int
}

// Monitor consumes a CDC feed and drives a DUP engine. Create with New,
// begin with Start, release with Shutdown.
type Monitor struct {
	name        string
	engine      *core.Engine
	indexer     Indexer
	batchSize   int
	batchWindow time.Duration
	maxPending  int
	now         func() time.Time

	database   *db.DB
	startLSN   int64
	feed       <-chan db.Transaction
	cancelFeed func()
	flushC     chan chan struct{}
	done       chan struct{}

	tracer    *trace.Tracer
	crashHook CrashHook
	onCrash   func(err error)
	onReplay  func(count int, upto int64)

	batches     stats.Counter
	txs         stats.Counter
	updated     stats.Counter
	invalidated stats.Counter
	replayed    stats.Counter    // transactions recovered from the log at Start
	crashes     stats.Counter    // injected/organic crashes of this monitor
	coalesced   stats.Counter    // transactions absorbed into already-full batches
	latency     stats.Summary    // commit -> propagated, seconds
	batchSizes  *stats.Histogram // transactions per propagated batch
	batchWait   *stats.Histogram // arrival of first tx -> flush, seconds

	mu      sync.Mutex
	lastLSN int64
	started bool
	err     error
}

// pendingTx is a CDC transaction waiting in the monitor's batch, stamped
// with its feed-arrival time so propagation traces can separate the
// commit->cdc and cdc->flush stages.
type pendingTx struct {
	tx      db.Transaction
	arrived time.Time
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithBatchSize propagates as soon as a batch holds n transactions
// (default 16).
func WithBatchSize(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.batchSize = n
		}
	}
}

// WithBatchWindow propagates a partial batch after d of quiet (default
// 50ms). Zero disables batching: every transaction propagates immediately.
func WithBatchWindow(d time.Duration) Option {
	return func(m *Monitor) { m.batchWindow = d }
}

// WithMaxPending sets the backpressure high-water mark (see
// Config.MaxPending).
func WithMaxPending(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.maxPending = n
		}
	}
}

// WithIndexer substitutes the change-to-vertex mapping.
func WithIndexer(ix Indexer) Option {
	return func(m *Monitor) { m.indexer = ix }
}

// WithClock substitutes the latency clock.
func WithClock(now func() time.Time) Option {
	return func(m *Monitor) { m.now = now }
}

// WithTracer records an end-to-end propagation trace (commit -> cdc ->
// batch -> dup -> render -> push) for every transaction into t.
func WithTracer(t *trace.Tracer) Option {
	return func(m *Monitor) { m.tracer = t }
}

// WithCrashHook installs a fault-injection crash decision consulted once
// per batch, before propagation.
func WithCrashHook(h CrashHook) Option {
	return func(m *Monitor) { m.crashHook = h }
}

// WithOnCrash installs a supervisor callback invoked (on the monitor's
// goroutine, after the monitor has fully stopped) when the monitor
// crashes. The callback typically restarts a fresh monitor from
// Checkpoint().
func WithOnCrash(f func(err error)) Option {
	return func(m *Monitor) { m.onCrash = f }
}

// WithOnReplay installs a callback invoked (on the monitor's goroutine)
// after checkpoint replay has propagated: count transactions were recovered
// from the retained log, the highest carrying LSN upto. The observability
// journal wires in here; the callback must not block.
func WithOnReplay(f func(count int, upto int64)) Option {
	return func(m *Monitor) { m.onReplay = f }
}

// New returns an unstarted Monitor over cfg. Call Start to begin
// propagating.
func New(cfg Config, opts ...Option) *Monitor {
	m := &Monitor{
		name:        cfg.Name,
		database:    cfg.DB,
		engine:      cfg.Engine,
		startLSN:    cfg.StartLSN,
		indexer:     DefaultIndexer,
		batchSize:   16,
		batchWindow: 50 * time.Millisecond,
		now:         time.Now,
		flushC:      make(chan chan struct{}),
		done:        make(chan struct{}),
		lastLSN:     cfg.StartLSN,
		batchSizes:  stats.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256),
		batchWait: stats.NewHistogram(0.0001, 0.00025, 0.0005, 0.001, 0.0025,
			0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5),
	}
	if cfg.BatchSize > 0 {
		m.batchSize = cfg.BatchSize
	}
	if cfg.BatchWindow != 0 {
		m.batchWindow = cfg.BatchWindow
	}
	if cfg.MaxPending > 0 {
		m.maxPending = cfg.MaxPending
	}
	for _, o := range opts {
		o(m)
	}
	if m.maxPending == 0 {
		m.maxPending = 8 * m.batchSize
	}
	if m.maxPending < m.batchSize {
		m.maxPending = m.batchSize
	}
	return m
}

// Name returns the monitor's diagnostic name.
func (m *Monitor) Name() string { return m.name }

// Start subscribes to the database's CDC feed, replays the retained log
// from the checkpoint (Config.StartLSN), and begins propagating.
// Cancelling ctx initiates the same orderly drain as Shutdown. Start may
// be called once per Monitor.
func (m *Monitor) Start(ctx context.Context) error {
	if m.database == nil || m.engine == nil {
		return errors.New("trigger: Config.DB and Config.Engine are required")
	}
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return errors.New("trigger: monitor already started")
	}
	m.started = true
	m.mu.Unlock()

	// Subscribe first, then snapshot the log: a transaction committed
	// between the two appears in both and is deduplicated by LSN in loop.
	m.feed, m.cancelFeed = m.database.Subscribe(256)
	replay := m.database.LogSince(m.startLSN)
	go m.loop(replay)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				m.cancelFeed()
			case <-m.done:
			}
		}()
	}
	return nil
}

// Shutdown cancels the feed subscription, waits for the final propagation
// to drain, and returns. ctx bounds the drain. Safe to call more than
// once and before Start.
func (m *Monitor) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if !started {
		return nil
	}
	m.cancelFeed()
	if ctx == nil {
		<-m.done
		return nil
	}
	select {
	case <-m.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("trigger: shutdown of %q: %w", m.name, ctx.Err())
	}
}

// loop is the monitor goroutine: replay the checkpointed log, then batch
// and propagate the live feed.
func (m *Monitor) loop(replay []db.Transaction) {
	var crashed bool
	defer func() {
		if crashed && m.onCrash != nil {
			m.onCrash(m.Err())
		}
	}()
	defer close(m.done)

	var pending []pendingTx
	var timer *time.Timer
	var timerC <-chan time.Time

	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	admit := func(tx db.Transaction) {
		arrived := m.now()
		if m.tracer != nil {
			m.tracer.Arrive(tx.TraceID, tx.Commit)
		}
		pending = append(pending, pendingTx{tx: tx, arrived: arrived})
	}
	propagate := func() bool {
		stopTimer()
		if len(pending) == 0 {
			return true
		}
		ok := m.propagate(pending)
		pending = pending[:0]
		return ok
	}
	replayMax := int64(0)
	// absorb drains transactions already delivered on the feed into the
	// current batch, up to the maxPending high-water mark. Under a commit
	// burst this coalesces what would have been many consecutive batches
	// into one: the merged changed-vertex sets deduplicate in propagate, so
	// the DUP traversal cost grows with the union of the frontiers, not the
	// transaction count. Returns true if the feed closed while draining.
	absorb := func() (closed bool) {
		for len(pending) < m.maxPending {
			select {
			case tx, ok := <-m.feed:
				if !ok {
					return true
				}
				if tx.LSN > replayMax {
					admit(tx)
				}
			default:
				return false
			}
		}
		return false
	}

	// Recovery replay: everything the database retains past the
	// checkpoint propagates as one batch before live consumption. A crash
	// hook can fire here too — a monitor that crashes during recovery
	// recovers again from the same checkpoint.
	if len(replay) > 0 {
		for _, tx := range replay {
			admit(tx)
		}
		replayMax = replay[len(replay)-1].LSN
		m.replayed.Add(int64(len(replay)))
		if !propagate() {
			crashed = true
			return
		}
		if m.onReplay != nil {
			m.onReplay(len(replay), replayMax)
		}
	}

	for {
		select {
		case tx, ok := <-m.feed:
			if !ok {
				propagate()
				return
			}
			if tx.LSN <= replayMax {
				continue // already recovered from the log
			}
			admit(tx)
			if m.batchWindow <= 0 || len(pending) >= m.batchSize {
				// Full batch with the feed possibly still delivering:
				// absorb the backlog before propagating so a burst costs
				// one traversal, not one per batchSize.
				closed := false
				if len(pending) >= m.batchSize {
					before := len(pending)
					closed = absorb()
					m.coalesced.Add(int64(len(pending) - before))
				}
				if !propagate() {
					crashed = true
					return
				}
				if closed {
					return
				}
			} else if timerC == nil {
				timer = time.NewTimer(m.batchWindow)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			if !propagate() {
				crashed = true
				return
			}
		case ack := <-m.flushC:
			// Absorb anything already delivered on the feed and propagate,
			// in high-water slices so even flush-driven batches respect
			// MaxPending. Flush (below) re-issues the request until every
			// transaction committed before the call has flowed through the
			// feed's internal queue and been propagated.
			for {
				closed := absorb()
				full := len(pending) >= m.maxPending
				if !propagate() {
					close(ack)
					crashed = true
					return
				}
				if closed {
					close(ack)
					return
				}
				if !full {
					break
				}
			}
			close(ack)
		}
	}
}

// crash records a crash at the given batch LSN and tears the monitor down
// without propagating. Returns false for propagate's convenience.
func (m *Monitor) crash(lsn int64) bool {
	m.crashes.Inc()
	m.mu.Lock()
	m.err = fmt.Errorf("%w: %q at batch LSN %d (checkpoint %d)",
		ErrCrashed, m.name, lsn, m.lastLSN)
	m.mu.Unlock()
	m.cancelFeed()
	return false
}

// propagate maps a batch of transactions to changed vertices and runs one
// DUP propagation stamped with the batch's highest LSN. Returns false if
// the monitor crashed instead of propagating.
func (m *Monitor) propagate(batch []pendingTx) bool {
	flush := m.now()
	seen := make(map[odg.NodeID]struct{})
	var changed []odg.NodeID
	var maxLSN int64
	for _, p := range batch {
		if p.tx.LSN > maxLSN {
			maxLSN = p.tx.LSN
		}
		for _, c := range p.tx.Changes {
			for _, id := range m.indexer(c) {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					changed = append(changed, id)
				}
			}
		}
	}
	if m.crashHook != nil && m.crashHook(maxLSN) {
		return m.crash(maxLSN)
	}
	res := m.engine.OnChange(maxLSN, changed...)

	m.batches.Inc()
	m.txs.Add(int64(len(batch)))
	m.updated.Add(int64(res.Updated))
	m.invalidated.Add(int64(res.Invalidated))
	m.batchSizes.Observe(float64(len(batch)))
	m.batchWait.Observe(flush.Sub(batch[0].arrived).Seconds())
	end := m.now()
	for _, p := range batch {
		m.latency.Observe(end.Sub(p.tx.Commit).Seconds())
	}
	if m.tracer != nil {
		// Derive wall-clock stage boundaries from the engine's phase
		// durations. Render/push are cumulative across workers, so clamp
		// each boundary to the observed end of the propagation.
		dupDone := clampTime(flush.Add(res.GraphDur), end)
		renderDone := clampTime(dupDone.Add(res.RenderDur), end)
		for _, p := range batch {
			tr := trace.Trace{
				ID:              p.tx.TraceID,
				LSN:             p.tx.LSN,
				Vertices:        res.Changed,
				FanOut:          res.Affected,
				Updated:         res.Updated,
				Invalidated:     res.Invalidated,
				FragmentRenders: res.FragmentRenders,
				FragmentReuses:  res.FragmentReuses,
			}
			tr.Times[trace.StageCommit] = p.tx.Commit
			tr.Times[trace.StageCDC] = p.arrived
			tr.Times[trace.StageBatch] = flush
			tr.Times[trace.StageDUP] = dupDone
			tr.Times[trace.StageRender] = renderDone
			tr.Times[trace.StagePush] = end
			m.tracer.Record(tr)
		}
	}
	m.mu.Lock()
	if maxLSN > m.lastLSN {
		m.lastLSN = maxLSN
	}
	m.mu.Unlock()
	return true
}

// clampTime returns t, or limit if t is after it.
func clampTime(t, limit time.Time) time.Time {
	if t.After(limit) {
		return limit
	}
	return t
}

// Flush synchronously propagates everything committed before the call,
// returning once those propagations have completed. Tests and the
// simulator use it for deterministic sequencing. If the monitor has been
// stopped or has crashed, Flush returns immediately.
func (m *Monitor) Flush() {
	target := m.database.LSN()
	backoff := 50 * time.Microsecond
	for {
		ack := make(chan struct{})
		select {
		case m.flushC <- ack:
			<-ack
		case <-m.done:
			return
		}
		if m.LastLSN() >= target {
			return
		}
		// A transaction committed before the call is still traversing the
		// feed's internal queue. Back off exponentially instead of spinning:
		// each retry doubles the sleep (capped at 5ms), so a briefly-behind
		// feed costs microseconds while a busy one doesn't eat a core.
		time.Sleep(backoff)
		if backoff < 5*time.Millisecond {
			backoff *= 2
		}
	}
}

// LastLSN returns the highest LSN the monitor has propagated — its
// recovery checkpoint.
func (m *Monitor) LastLSN() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLSN
}

// Checkpoint is LastLSN under its recovery-protocol name: the LSN a
// replacement monitor should be configured with (Config.StartLSN) so that
// replay covers exactly the transactions this monitor never propagated.
func (m *Monitor) Checkpoint() int64 { return m.LastLSN() }

// Err returns the crash error, or nil while the monitor is healthy.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Done returns a channel closed when the monitor's goroutine has exited
// (shutdown or crash).
func (m *Monitor) Done() <-chan struct{} { return m.done }

// MonitorStats snapshots the monitor's counters.
type MonitorStats struct {
	Batches       int64
	Transactions  int64
	PagesUpdated  int64
	Invalidations int64
	// Replayed counts transactions recovered from the retained log at
	// Start (checkpoint replay after a crash).
	Replayed int64
	// Crashes counts monitor crashes (injected or organic).
	Crashes int64
	// Coalesced counts transactions absorbed into an already-full batch
	// under backpressure (the sublinear-burst mechanism).
	Coalesced int64
	// Freshness latency, seconds, commit -> propagated.
	LatencyMean float64
	LatencyP99  float64
	LatencyMax  float64
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	return MonitorStats{
		Batches:       m.batches.Value(),
		Transactions:  m.txs.Value(),
		PagesUpdated:  m.updated.Value(),
		Invalidations: m.invalidated.Value(),
		Replayed:      m.replayed.Value(),
		Crashes:       m.crashes.Value(),
		Coalesced:     m.coalesced.Value(),
		LatencyMean:   m.latency.Mean(),
		LatencyP99:    m.latency.Percentile(99),
		LatencyMax:    m.latency.Max(),
	}
}

// BatchSizes returns the histogram of transactions per propagated batch.
func (m *Monitor) BatchSizes() *stats.Histogram { return m.batchSizes }

// BatchWait returns the histogram of first-arrival-to-flush wait, seconds.
func (m *Monitor) BatchWait() *stats.Histogram { return m.batchWait }

// RegisterMetrics publishes the monitor's counters and batching histograms
// into a registry. labels (may be nil) are attached to every series.
func (m *Monitor) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("trigger_batches_total",
		"propagation batches flushed", labels, &m.batches)
	reg.RegisterCounter("trigger_transactions_total",
		"CDC transactions propagated", labels, &m.txs)
	reg.RegisterCounter("trigger_pages_updated_total",
		"pages updated in place by trigger-driven propagations", labels, &m.updated)
	reg.RegisterCounter("trigger_invalidations_total",
		"pages invalidated by trigger-driven propagations", labels, &m.invalidated)
	reg.RegisterCounter("trigger_replayed_transactions_total",
		"transactions recovered from the retained log at monitor start", labels, &m.replayed)
	reg.RegisterCounter("trigger_crashes_total",
		"trigger monitor crashes (injected or organic)", labels, &m.crashes)
	reg.RegisterCounter("trigger_coalesced_total",
		"transactions absorbed into already-full batches under backpressure", labels, &m.coalesced)
	reg.RegisterHistogram("trigger_batch_size_transactions",
		"transactions coalesced per batch", labels, m.batchSizes)
	reg.RegisterHistogram("trigger_batch_wait_seconds",
		"wait from a batch's first CDC arrival to its flush", labels, m.batchWait)
}
