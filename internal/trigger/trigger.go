// Package trigger implements the trigger monitor (section 2 and figure 6 of
// the paper): the component that watches the database for changes and
// drives Data Update Propagation.
//
// In the 1998 deployment, each SP2's 8-way SMP ran the triggering, caching
// and page-rendering code, deliberately separated from the uniprocessors
// serving requests so that bursts of updates never degraded serving
// latency. The Monitor mirrors that structure: it consumes the database's
// change-data-capture feed on its own goroutine, batches transactions that
// arrive close together, maps each changed row to its ODG vertices, and
// hands the batch to the DUP engine, which re-renders affected pages and
// distributes them to the serving caches.
//
// Freshness — the paper's "reflecting current events within a maximum of
// sixty seconds" — is measured per transaction as commit-to-propagated
// latency and exposed via Stats.
package trigger

import (
	"sync"
	"time"

	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
	"dupserve/internal/stats"
	"dupserve/internal/trace"
)

// Indexer maps one database change to the ODG vertex IDs that should be
// treated as changed. The default indexer returns just the row vertex; the
// site layer supplies one that also emits prefix-index vertices for inserts
// and deletes so scan-based pages refresh on membership changes.
type Indexer func(c db.Change) []odg.NodeID

// DefaultIndexer maps a change to its row vertex only.
func DefaultIndexer(c db.Change) []odg.NodeID {
	return []odg.NodeID{odg.NodeID(c.ChangeID())}
}

// Monitor consumes a CDC feed and drives a DUP engine. Create with Start;
// release with Stop.
type Monitor struct {
	engine      *core.Engine
	indexer     Indexer
	batchSize   int
	batchWindow time.Duration
	now         func() time.Time

	database   *db.DB
	feed       <-chan db.Transaction
	cancelFeed func()
	flushC     chan chan struct{}
	done       chan struct{}

	tracer *trace.Tracer

	batches     stats.Counter
	txs         stats.Counter
	updated     stats.Counter
	invalidated stats.Counter
	latency     stats.Summary    // commit -> propagated, seconds
	batchSizes  *stats.Histogram // transactions per propagated batch
	batchWait   *stats.Histogram // arrival of first tx -> flush, seconds

	mu      sync.Mutex
	lastLSN int64
}

// pendingTx is a CDC transaction waiting in the monitor's batch, stamped
// with its feed-arrival time so propagation traces can separate the
// commit->cdc and cdc->flush stages.
type pendingTx struct {
	tx      db.Transaction
	arrived time.Time
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithBatchSize propagates as soon as a batch holds n transactions
// (default 16).
func WithBatchSize(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.batchSize = n
		}
	}
}

// WithBatchWindow propagates a partial batch after d of quiet (default
// 50ms). Zero disables batching: every transaction propagates immediately.
func WithBatchWindow(d time.Duration) Option {
	return func(m *Monitor) { m.batchWindow = d }
}

// WithIndexer substitutes the change-to-vertex mapping.
func WithIndexer(ix Indexer) Option {
	return func(m *Monitor) { m.indexer = ix }
}

// WithClock substitutes the latency clock.
func WithClock(now func() time.Time) Option {
	return func(m *Monitor) { m.now = now }
}

// WithTracer records an end-to-end propagation trace (commit -> cdc ->
// batch -> dup -> render -> push) for every transaction into t.
func WithTracer(t *trace.Tracer) Option {
	return func(m *Monitor) { m.tracer = t }
}

// Start subscribes to database's feed and begins propagating into engine.
func Start(database *db.DB, engine *core.Engine, opts ...Option) *Monitor {
	m := &Monitor{
		database:    database,
		engine:      engine,
		indexer:     DefaultIndexer,
		batchSize:   16,
		batchWindow: 50 * time.Millisecond,
		now:         time.Now,
		flushC:      make(chan chan struct{}),
		done:        make(chan struct{}),
		batchSizes:  stats.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256),
		batchWait: stats.NewHistogram(0.0001, 0.00025, 0.0005, 0.001, 0.0025,
			0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5),
	}
	for _, o := range opts {
		o(m)
	}
	m.feed, m.cancelFeed = database.Subscribe(256)
	go m.loop()
	return m
}

func (m *Monitor) loop() {
	defer close(m.done)
	var pending []pendingTx
	var timer *time.Timer
	var timerC <-chan time.Time

	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	admit := func(tx db.Transaction) {
		arrived := m.now()
		if m.tracer != nil {
			m.tracer.Arrive(tx.TraceID, tx.Commit)
		}
		pending = append(pending, pendingTx{tx: tx, arrived: arrived})
	}
	propagate := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		m.propagate(pending)
		pending = pending[:0]
	}

	for {
		select {
		case tx, ok := <-m.feed:
			if !ok {
				propagate()
				return
			}
			admit(tx)
			if m.batchWindow <= 0 || len(pending) >= m.batchSize {
				propagate()
			} else if timerC == nil {
				timer = time.NewTimer(m.batchWindow)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			propagate()
		case ack := <-m.flushC:
			// Absorb anything already delivered on the feed, then
			// propagate. Flush (below) re-issues the request until every
			// transaction committed before the call has flowed through the
			// feed's internal queue and been propagated.
			for {
				select {
				case tx, ok := <-m.feed:
					if ok {
						admit(tx)
						continue
					}
				default:
				}
				break
			}
			propagate()
			close(ack)
		}
	}
}

// propagate maps a batch of transactions to changed vertices and runs one
// DUP propagation stamped with the batch's highest LSN.
func (m *Monitor) propagate(batch []pendingTx) {
	flush := m.now()
	seen := make(map[odg.NodeID]struct{})
	var changed []odg.NodeID
	var maxLSN int64
	for _, p := range batch {
		if p.tx.LSN > maxLSN {
			maxLSN = p.tx.LSN
		}
		for _, c := range p.tx.Changes {
			for _, id := range m.indexer(c) {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					changed = append(changed, id)
				}
			}
		}
	}
	res := m.engine.OnChange(maxLSN, changed...)

	m.batches.Inc()
	m.txs.Add(int64(len(batch)))
	m.updated.Add(int64(res.Updated))
	m.invalidated.Add(int64(res.Invalidated))
	m.batchSizes.Observe(float64(len(batch)))
	m.batchWait.Observe(flush.Sub(batch[0].arrived).Seconds())
	end := m.now()
	for _, p := range batch {
		m.latency.Observe(end.Sub(p.tx.Commit).Seconds())
	}
	if m.tracer != nil {
		// Derive wall-clock stage boundaries from the engine's phase
		// durations. Render/push are cumulative across workers, so clamp
		// each boundary to the observed end of the propagation.
		dupDone := clampTime(flush.Add(res.GraphDur), end)
		renderDone := clampTime(dupDone.Add(res.RenderDur), end)
		for _, p := range batch {
			tr := trace.Trace{
				ID:          p.tx.TraceID,
				LSN:         p.tx.LSN,
				Vertices:    res.Changed,
				FanOut:      res.Affected,
				Updated:     res.Updated,
				Invalidated: res.Invalidated,
			}
			tr.Times[trace.StageCommit] = p.tx.Commit
			tr.Times[trace.StageCDC] = p.arrived
			tr.Times[trace.StageBatch] = flush
			tr.Times[trace.StageDUP] = dupDone
			tr.Times[trace.StageRender] = renderDone
			tr.Times[trace.StagePush] = end
			m.tracer.Record(tr)
		}
	}
	m.mu.Lock()
	if maxLSN > m.lastLSN {
		m.lastLSN = maxLSN
	}
	m.mu.Unlock()
}

// clampTime returns t, or limit if t is after it.
func clampTime(t, limit time.Time) time.Time {
	if t.After(limit) {
		return limit
	}
	return t
}

// Flush synchronously propagates everything committed before the call,
// returning once those propagations have completed. Tests and the
// simulator use it for deterministic sequencing. If the monitor has been
// stopped, Flush returns immediately.
func (m *Monitor) Flush() {
	target := m.database.LSN()
	for {
		ack := make(chan struct{})
		select {
		case m.flushC <- ack:
			<-ack
		case <-m.done:
			return
		}
		if m.LastLSN() >= target {
			return
		}
		// A transaction committed before the call is still traversing the
		// feed's internal queue; yield and retry.
		time.Sleep(100 * time.Microsecond)
	}
}

// Stop cancels the feed subscription and waits for the final propagation.
// Safe to call more than once.
func (m *Monitor) Stop() {
	m.cancelFeed()
	<-m.done
}

// LastLSN returns the highest LSN the monitor has propagated.
func (m *Monitor) LastLSN() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLSN
}

// MonitorStats snapshots the monitor's counters.
type MonitorStats struct {
	Batches       int64
	Transactions  int64
	PagesUpdated  int64
	Invalidations int64
	// Freshness latency, seconds, commit -> propagated.
	LatencyMean float64
	LatencyP99  float64
	LatencyMax  float64
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	return MonitorStats{
		Batches:       m.batches.Value(),
		Transactions:  m.txs.Value(),
		PagesUpdated:  m.updated.Value(),
		Invalidations: m.invalidated.Value(),
		LatencyMean:   m.latency.Mean(),
		LatencyP99:    m.latency.Percentile(99),
		LatencyMax:    m.latency.Max(),
	}
}

// BatchSizes returns the histogram of transactions per propagated batch.
func (m *Monitor) BatchSizes() *stats.Histogram { return m.batchSizes }

// BatchWait returns the histogram of first-arrival-to-flush wait, seconds.
func (m *Monitor) BatchWait() *stats.Histogram { return m.batchWait }

// RegisterMetrics publishes the monitor's counters and batching histograms
// into a registry. labels (may be nil) are attached to every series.
func (m *Monitor) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("trigger_batches_total",
		"propagation batches flushed", labels, &m.batches)
	reg.RegisterCounter("trigger_transactions_total",
		"CDC transactions propagated", labels, &m.txs)
	reg.RegisterCounter("trigger_pages_updated_total",
		"pages updated in place by trigger-driven propagations", labels, &m.updated)
	reg.RegisterCounter("trigger_invalidations_total",
		"pages invalidated by trigger-driven propagations", labels, &m.invalidated)
	reg.RegisterHistogram("trigger_batch_size_transactions",
		"transactions coalesced per batch", labels, m.batchSizes)
	reg.RegisterHistogram("trigger_batch_wait_seconds",
		"wait from a batch's first CDC arrival to its flush", labels, m.batchWait)
}
