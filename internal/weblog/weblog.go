// Package weblog implements access-log writing and analysis. Section 3.1
// of the paper is explicit that the 1998 site design came out of studying
// the 1996 server logs: "The Web server logs collected during the 1996
// games provided significant insight into the design of the 1998 Web site.
// From those logs, we determined that most users were spending too much
// time looking for basic information."
//
// The Writer emits NCSA Common Log Format (the format 1990s httpd servers
// produced and the paper's team analyzed); the Analyzer reconstructs the
// per-client navigation behaviour those conclusions rest on: hits per
// section, the share of visits satisfied by the entry page, and navigation
// depth before reaching a leaf.
package weblog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Entry is one access-log record.
type Entry struct {
	Client string    // client identifier (IP or synthetic session id)
	Time   time.Time // request time
	Path   string    // request path
	Status int       // HTTP status
	Bytes  int       // response size
}

// clfTime is the Common Log Format timestamp layout.
const clfTime = "02/Jan/2006:15:04:05 -0700"

// Format renders the entry in Common Log Format.
func (e Entry) Format() string {
	return fmt.Sprintf("%s - - [%s] \"GET %s HTTP/1.0\" %d %d",
		e.Client, e.Time.Format(clfTime), e.Path, e.Status, e.Bytes)
}

// ParseEntry parses one Common Log Format line as produced by Format (and
// by period httpd servers for GET requests).
func ParseEntry(line string) (Entry, error) {
	var e Entry
	// client - - [time] "GET path HTTP/1.0" status bytes
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return e, fmt.Errorf("weblog: malformed line %q", line)
	}
	e.Client = line[:i]
	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return e, fmt.Errorf("weblog: missing timestamp in %q", line)
	}
	ts, err := time.Parse(clfTime, line[lb+1:rb])
	if err != nil {
		return e, fmt.Errorf("weblog: bad timestamp: %w", err)
	}
	e.Time = ts
	lq := strings.IndexByte(line, '"')
	rq := strings.LastIndexByte(line, '"')
	if lq < 0 || rq <= lq {
		return e, fmt.Errorf("weblog: missing request in %q", line)
	}
	req := strings.Fields(line[lq+1 : rq])
	if len(req) < 2 {
		return e, fmt.Errorf("weblog: malformed request in %q", line)
	}
	e.Path = req[1]
	rest := strings.Fields(strings.TrimSpace(line[rq+1:]))
	if len(rest) < 2 {
		return e, fmt.Errorf("weblog: missing status/bytes in %q", line)
	}
	if e.Status, err = strconv.Atoi(rest[0]); err != nil {
		return e, fmt.Errorf("weblog: bad status: %w", err)
	}
	if e.Bytes, err = strconv.Atoi(rest[1]); err != nil {
		return e, fmt.Errorf("weblog: bad bytes: %w", err)
	}
	return e, nil
}

// Writer appends Common Log Format lines to an io.Writer. Safe for
// concurrent use (one request per line, atomically).
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	now func() time.Time
}

// NewWriter wraps w. Call Flush before reading what was written.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), now: time.Now}
}

// SetClock substitutes the timestamp source (simulated time).
func (l *Writer) SetClock(now func() time.Time) { l.now = now }

// Log records one request.
func (l *Writer) Log(client, path string, status, bytes int) error {
	e := Entry{Client: client, Time: l.now(), Path: path, Status: status, Bytes: bytes}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.w.WriteString(e.Format() + "\n")
	return err
}

// Flush drains buffered lines.
func (l *Writer) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// Report is the analysis the 1998 redesign was based on.
type Report struct {
	Entries int
	Clients int
	Errors  int // status >= 400
	Bytes   int64
	// BySection counts hits per top section ("/en/sports" -> n). A section
	// is the first two path segments.
	BySection map[string]int
	// TopPages lists the most-requested paths, descending.
	TopPages []PageCount
	// Visits reconstructed per client (a visit ends after VisitGap of
	// inactivity).
	Visits int
	// HitsPerVisit is the mean page fetches per visit — the metric that
	// showed 1996 users "spending too much time looking for basic
	// information".
	HitsPerVisit float64
	// EntrySatisfied is the share of visits consisting of a single hit:
	// the visitor found what they wanted on the entry page (the paper:
	// over 25% for the 1998 design).
	EntrySatisfied float64
}

// PageCount pairs a path with its hit count.
type PageCount struct {
	Path string
	Hits int
}

// VisitGap is the idle period that terminates a reconstructed visit.
const VisitGap = 30 * time.Minute

// Analyze scans a Common Log Format stream and produces the report.
// Malformed lines are counted and skipped, not fatal — real 1990s logs
// were never pristine.
func Analyze(r io.Reader, topN int) (Report, error) {
	rep := Report{BySection: make(map[string]int)}
	pages := make(map[string]int)
	type clientState struct {
		last   time.Time
		visits int
		hits   int
		single int
		cur    int
	}
	clients := make(map[string]*clientState)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseEntry(line)
		if err != nil {
			rep.Errors++
			continue
		}
		rep.Entries++
		rep.Bytes += int64(e.Bytes)
		if e.Status >= 400 {
			rep.Errors++
		}
		pages[e.Path]++
		rep.BySection[section(e.Path)]++

		cs, ok := clients[e.Client]
		if !ok {
			cs = &clientState{}
			clients[e.Client] = cs
		}
		if cs.cur == 0 || e.Time.Sub(cs.last) > VisitGap {
			if cs.cur == 1 {
				cs.single++
			}
			if cs.cur > 0 {
				cs.visits++
				cs.hits += cs.cur
			}
			cs.cur = 0
		}
		cs.cur++
		cs.last = e.Time
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}

	totalVisits, totalHits, singles := 0, 0, 0
	for _, cs := range clients {
		if cs.cur > 0 {
			cs.visits++
			cs.hits += cs.cur
			if cs.cur == 1 {
				cs.single++
			}
		}
		totalVisits += cs.visits
		totalHits += cs.hits
		singles += cs.single
	}
	rep.Clients = len(clients)
	rep.Visits = totalVisits
	if totalVisits > 0 {
		rep.HitsPerVisit = float64(totalHits) / float64(totalVisits)
		rep.EntrySatisfied = float64(singles) / float64(totalVisits)
	}

	rep.TopPages = make([]PageCount, 0, len(pages))
	for p, n := range pages {
		rep.TopPages = append(rep.TopPages, PageCount{Path: p, Hits: n})
	}
	sort.Slice(rep.TopPages, func(i, j int) bool {
		if rep.TopPages[i].Hits != rep.TopPages[j].Hits {
			return rep.TopPages[i].Hits > rep.TopPages[j].Hits
		}
		return rep.TopPages[i].Path < rep.TopPages[j].Path
	})
	if topN > 0 && len(rep.TopPages) > topN {
		rep.TopPages = rep.TopPages[:topN]
	}
	return rep, nil
}

// section extracts the first two path segments ("/en/sports/alpine/x" ->
// "/en/sports").
func section(path string) string {
	seg := 0
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			seg++
			if seg == 2 {
				return path[:i]
			}
		}
	}
	return path
}
