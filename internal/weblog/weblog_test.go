package weblog

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFormatParseRoundTrip(t *testing.T) {
	e := Entry{
		Client: "10.9.8.7",
		Time:   time.Date(1998, 2, 13, 12, 34, 56, 0, time.UTC),
		Path:   "/en/home/day07",
		Status: 200,
		Bytes:  10240,
	}
	got, err := ParseEntry(e.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got.Client != e.Client || got.Path != e.Path || got.Status != e.Status || got.Bytes != e.Bytes {
		t.Fatalf("round trip = %+v", got)
	}
	if !got.Time.Equal(e.Time) {
		t.Fatalf("time = %v, want %v", got.Time, e.Time)
	}
}

func TestParseEntryMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"justoneword",
		`1.2.3.4 - - [bad time] "GET / HTTP/1.0" 200 1`,
		`1.2.3.4 - - [13/Feb/1998:12:00:00 +0000] no quotes 200 1`,
		`1.2.3.4 - - [13/Feb/1998:12:00:00 +0000] "GET" 200 1`,
		`1.2.3.4 - - [13/Feb/1998:12:00:00 +0000] "GET / HTTP/1.0" x 1`,
		`1.2.3.4 - - [13/Feb/1998:12:00:00 +0000] "GET / HTTP/1.0" 200 x`,
		`1.2.3.4 - - [13/Feb/1998:12:00:00 +0000] "GET / HTTP/1.0" 200`,
	} {
		if _, err := ParseEntry(line); err == nil {
			t.Fatalf("accepted malformed line %q", line)
		}
	}
}

func TestWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetClock(func() time.Time { return time.Date(1998, 2, 13, 0, 0, 0, 0, time.UTC) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := w.Log(fmt.Sprintf("c%d", g), "/p", 200, 10); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, l := range lines {
		if _, err := ParseEntry(l); err != nil {
			t.Fatalf("unparseable interleaved line %q: %v", l, err)
		}
	}
}

// buildLog writes a synthetic log: client A browses deep (4 hits), client B
// is satisfied at the entry page, client C makes two visits separated by
// more than the gap.
func buildLog(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Date(1998, 2, 13, 10, 0, 0, 0, time.UTC)
	now := base
	w.SetClock(func() time.Time { return now })

	for i, p := range []string{"/en/home/day07", "/en/sports", "/en/sports/alpine", "/en/sports/alpine/alpine:e1"} {
		now = base.Add(time.Duration(i) * time.Minute)
		if err := w.Log("clientA", p, 200, 1000); err != nil {
			t.Fatal(err)
		}
	}
	now = base
	if err := w.Log("clientB", "/en/home/day07", 200, 1000); err != nil {
		t.Fatal(err)
	}
	now = base
	if err := w.Log("clientC", "/en/news", 200, 500); err != nil {
		t.Fatal(err)
	}
	now = base.Add(2 * time.Hour) // new visit
	if err := w.Log("clientC", "/en/news/n001", 404, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestAnalyzeReport(t *testing.T) {
	rep, err := Analyze(buildLog(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 7 || rep.Clients != 3 {
		t.Fatalf("entries=%d clients=%d", rep.Entries, rep.Clients)
	}
	if rep.Errors != 1 {
		t.Fatalf("errors = %d (the 404)", rep.Errors)
	}
	if rep.Visits != 4 {
		t.Fatalf("visits = %d, want 4 (A:1, B:1, C:2)", rep.Visits)
	}
	// Hits/visit = 7/4.
	if rep.HitsPerVisit < 1.74 || rep.HitsPerVisit > 1.76 {
		t.Fatalf("hits/visit = %v", rep.HitsPerVisit)
	}
	// Satisfied at entry: B's visit and both C visits = 3 of 4.
	if rep.EntrySatisfied != 0.75 {
		t.Fatalf("entry satisfied = %v", rep.EntrySatisfied)
	}
	if rep.BySection["/en/home"] != 2 || rep.BySection["/en/sports"] != 3 {
		t.Fatalf("sections = %v", rep.BySection)
	}
	if len(rep.TopPages) != 3 || rep.TopPages[0].Hits < rep.TopPages[1].Hits {
		t.Fatalf("top pages = %v", rep.TopPages)
	}
}

func TestAnalyzeSkipsMalformed(t *testing.T) {
	in := strings.NewReader("garbage line\n" +
		Entry{Client: "c", Time: time.Now(), Path: "/p", Status: 200, Bytes: 1}.Format() + "\n")
	rep, err := Analyze(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || rep.Errors != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSection(t *testing.T) {
	cases := map[string]string{
		"/en/sports/alpine/e1": "/en/sports",
		"/en/home/day07":       "/en/home",
		"/en":                  "/en",
		"/":                    "/",
	}
	for in, want := range cases {
		if got := section(in); got != want {
			t.Fatalf("section(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: any entry with printable fields round-trips through
// Format/ParseEntry.
func TestRoundTripProperty(t *testing.T) {
	f := func(client uint16, status uint8, size uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Entry{
			Client: fmt.Sprintf("10.0.%d.%d", client>>8, client&0xff),
			Time:   time.Date(1998, 2, 1+rng.Intn(16), rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, time.UTC),
			Path:   fmt.Sprintf("/en/p%d", rng.Intn(1000)),
			Status: 200 + int(status)%400,
			Bytes:  int(size),
		}
		got, err := ParseEntry(e.Format())
		return err == nil && got.Client == e.Client && got.Path == e.Path &&
			got.Status == e.Status && got.Bytes == e.Bytes && got.Time.Equal(e.Time)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseEntry(b *testing.B) {
	line := Entry{Client: "10.1.2.3", Time: time.Now(), Path: "/en/home/day07", Status: 200, Bytes: 10240}.Format()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEntry(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze10k(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Date(1998, 2, 13, 0, 0, 0, 0, time.UTC)
	i := 0
	w.SetClock(func() time.Time { i++; return base.Add(time.Duration(i) * time.Second) })
	for j := 0; j < 10000; j++ {
		w.Log(fmt.Sprintf("c%d", j%200), fmt.Sprintf("/en/p%d", j%500), 200, 1000)
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, err := Analyze(bytes.NewReader(data), 10); err != nil {
			b.Fatal(err)
		}
	}
}
