package weblog

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseEntry asserts ParseEntry never panics and that anything it
// accepts re-formats to something it accepts again (idempotent parse).
func FuzzParseEntry(f *testing.F) {
	f.Add(`10.1.2.3 - - [13/Feb/1998:12:00:00 +0000] "GET /en/home HTTP/1.0" 200 10240`)
	f.Add(Entry{Client: "c", Time: time.Unix(0, 0).UTC(), Path: "/", Status: 200, Bytes: 0}.Format())
	f.Add("")
	f.Add(`x - - [] "" 0 0`)
	f.Add(`a b [z] "GET  HTTP" 1 2 3`)
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEntry(line)
		if err != nil {
			return
		}
		// Accepted entries must survive a format/parse cycle when the path
		// contains no whitespace or quotes (CLF cannot represent those).
		if strings.ContainsAny(e.Path, " \t\"") || strings.ContainsAny(e.Client, " \t\"[") {
			return
		}
		e2, err := ParseEntry(e.Format())
		if err != nil {
			t.Fatalf("reparse of accepted entry failed: %v (line %q)", err, line)
		}
		if e2.Path != e.Path || e2.Status != e.Status || e2.Bytes != e.Bytes {
			t.Fatalf("parse not stable: %+v vs %+v", e, e2)
		}
	})
}

// FuzzAnalyze asserts the analyzer never panics or errors on arbitrary
// input (malformed lines must be skipped, not fatal).
func FuzzAnalyze(f *testing.F) {
	f.Add("garbage\n" + Entry{Client: "c", Time: time.Now(), Path: "/p", Status: 200, Bytes: 1}.Format() + "\n")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, data string) {
		if _, err := Analyze(strings.NewReader(data), 5); err != nil {
			t.Fatalf("Analyze errored on arbitrary input: %v", err)
		}
	})
}
