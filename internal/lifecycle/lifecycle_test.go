package lifecycle

import (
	"context"
	"errors"
	"testing"
)

// fake records lifecycle calls in a shared journal so ordering is testable.
type fake struct {
	name     string
	journal  *[]string
	startErr error
	shutErr  error
}

func (f *fake) Start(ctx context.Context) error {
	*f.journal = append(*f.journal, "start:"+f.name)
	return f.startErr
}

func (f *fake) Shutdown(ctx context.Context) error {
	*f.journal = append(*f.journal, "shutdown:"+f.name)
	return f.shutErr
}

func TestGroupStartsInOrderShutsDownInReverse(t *testing.T) {
	var journal []string
	g := NewGroup()
	g.Add(&fake{name: "a", journal: &journal})
	g.Add(&fake{name: "b", journal: &journal})
	g.Add(&fake{name: "c", journal: &journal})

	ctx := context.Background()
	if err := g.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:a", "start:b", "start:c", "shutdown:c", "shutdown:b", "shutdown:a"}
	if len(journal) != len(want) {
		t.Fatalf("journal = %v", journal)
	}
	for i := range want {
		if journal[i] != want[i] {
			t.Fatalf("journal[%d] = %s, want %s (%v)", i, journal[i], want[i], journal)
		}
	}
}

func TestGroupStartFailureRollsBackStartedComponents(t *testing.T) {
	var journal []string
	boom := errors.New("boom")
	g := NewGroup()
	g.Add(&fake{name: "a", journal: &journal})
	g.Add(&fake{name: "b", journal: &journal, startErr: boom})
	g.Add(&fake{name: "c", journal: &journal})

	err := g.Start(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// a started and must be rolled back; c never starts.
	want := []string{"start:a", "start:b", "shutdown:a"}
	if len(journal) != len(want) {
		t.Fatalf("journal = %v, want %v", journal, want)
	}
	for i := range want {
		if journal[i] != want[i] {
			t.Fatalf("journal = %v, want %v", journal, want)
		}
	}
}

func TestGroupShutdownReturnsFirstErrorButVisitsAll(t *testing.T) {
	var journal []string
	boom := errors.New("boom")
	g := NewGroup()
	g.Add(&fake{name: "a", journal: &journal})
	g.Add(&fake{name: "b", journal: &journal, shutErr: boom})
	g.Add(&fake{name: "c", journal: &journal})

	ctx := context.Background()
	if err := g.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Shutdown(ctx); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// All three shut down despite b's error.
	shutdowns := 0
	for _, e := range journal {
		if e == "shutdown:a" || e == "shutdown:b" || e == "shutdown:c" {
			shutdowns++
		}
	}
	if shutdowns != 3 {
		t.Fatalf("shutdowns = %d (%v)", shutdowns, journal)
	}
}
