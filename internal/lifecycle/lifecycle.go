// Package lifecycle defines the uniform start/stop contract shared by the
// long-running components of the pipeline: the trigger monitor, the
// deployment, the dispatcher, and the serving nodes.
//
// The pre-redesign components each invented their own lifecycle — Stop()
// here, Flush() there, a constructor that also started goroutines — which
// made it impossible to thread cancellation or drain-on-shutdown through
// uniformly, and impossible for a supervisor to restart a crashed
// component generically. The contract is deliberately minimal:
//
//   - Start(ctx) begins background work; cancelling ctx initiates the same
//     orderly drain as Shutdown. Starting a component twice is an error.
//   - Shutdown(ctx) stops intake, drains in-flight work, and releases
//     goroutines; ctx bounds how long the drain may take. Shutdown is
//     idempotent.
package lifecycle

import "context"

// Component is anything with the uniform Start/Shutdown lifecycle.
type Component interface {
	// Start begins the component's background work. Cancelling ctx
	// initiates an orderly shutdown.
	Start(ctx context.Context) error
	// Shutdown stops intake and drains in-flight work; ctx bounds the
	// drain. Safe to call more than once.
	Shutdown(ctx context.Context) error
}

// Group starts components in order and shuts them down in reverse order —
// the usual dependency discipline (start upstream feeds before the
// consumers that drain them, stop consumers first).
type Group struct {
	components []Component
}

// NewGroup returns a Group over the given components in start order.
func NewGroup(components ...Component) *Group {
	return &Group{components: components}
}

// Add appends a component to the start order.
func (g *Group) Add(c Component) { g.components = append(g.components, c) }

// Start starts every component in order. On the first error, components
// already started are shut down (best effort) and the error is returned.
func (g *Group) Start(ctx context.Context) error {
	for i, c := range g.components {
		if err := c.Start(ctx); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = g.components[j].Shutdown(ctx)
			}
			return err
		}
	}
	return nil
}

// Shutdown shuts every component down in reverse start order, returning
// the first error encountered (but attempting every component regardless).
func (g *Group) Shutdown(ctx context.Context) error {
	var first error
	for i := len(g.components) - 1; i >= 0; i-- {
		if err := g.components[i].Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
