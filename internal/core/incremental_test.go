package core

import (
	"fmt"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/odg"
)

// fragmentStack wires a real fragment engine behind the DUP engine with the
// incremental assembler installed: one fragment reading a database row,
// included by nPages pages, everything primed in the serving cache.
func fragmentStack(t *testing.T, nPages int, opts ...Option) (*db.DB, *fragment.Engine, *Engine, *cache.Cache) {
	t.Helper()
	d := db.New("t")
	d.CreateTable("rows")
	if _, err := d.Commit(d.NewTx().Put("rows", "score", map[string]string{"v": "0"})); err != nil {
		t.Fatal(err)
	}
	c := cache.New("t")
	g := odg.New()
	var fe *fragment.Engine
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return fe.Generate(key, version)
	}
	e := NewEngine(g, c, append([]Option{WithGenerator(gen)}, opts...)...)
	fe = fragment.New(fragment.Config{DB: d, Registrar: e})
	e.SetAssembler(fe)

	fe.Define("frag:score", func(ctx *fragment.Context) ([]byte, error) {
		row, _, err := ctx.Get("rows", "score")
		if err != nil {
			return nil, err
		}
		return []byte("score=" + row.Cols["v"]), nil
	})
	for i := 0; i < nPages; i++ {
		fe.Define(fmt.Sprintf("/p%d", i), func(ctx *fragment.Context) ([]byte, error) {
			ctx.Printf("<h1>page</h1>")
			if err := ctx.IncludeInto("frag:score"); err != nil {
				return nil, err
			}
			return ctx.Bytes(), nil
		})
	}
	for i := 0; i < nPages; i++ {
		obj, err := fe.Generate(cache.Key(fmt.Sprintf("/p%d", i)), d.LSN())
		if err != nil {
			t.Fatal(err)
		}
		c.Put(obj)
	}
	return d, fe, e, c
}

// TestIncrementalBatchRendersFragmentOnce drives one update through the
// assembler-equipped engine with parallel workers: the changed fragment must
// render exactly once and every containing page must splice the cached
// bytes, never re-render it.
func TestIncrementalBatchRendersFragmentOnce(t *testing.T) {
	const nPages = 24
	d, fe, e, c := fragmentStack(t, nPages, WithParallelism(8))

	if _, err := d.Commit(d.NewTx().Put("rows", "score", map[string]string{"v": "251.6"})); err != nil {
		t.Fatal(err)
	}
	r0, u0 := fe.Accounting()
	res := e.OnChange(d.LSN(), odg.NodeID(db.RowID("rows", "score")))
	r1, u1 := fe.Accounting()

	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	// Affected = 1 fragment + nPages pages, all regenerated in place.
	if res.Updated != nPages+1 {
		t.Fatalf("updated = %d, want %d", res.Updated, nPages+1)
	}
	if res.FragmentRenders != 1 {
		t.Fatalf("FragmentRenders = %d, want exactly 1", res.FragmentRenders)
	}
	if res.FragmentReuses != nPages {
		t.Fatalf("FragmentReuses = %d, want %d (one splice per page)", res.FragmentReuses, nPages)
	}
	if r1-r0 != 1 {
		t.Fatalf("engine render count delta = %d, want 1", r1-r0)
	}
	if u1-u0 != int64(nPages) {
		t.Fatalf("engine reuse count delta = %d, want %d", u1-u0, nPages)
	}
	for i := 0; i < nPages; i++ {
		obj, ok := c.Peek(cache.Key(fmt.Sprintf("/p%d", i)))
		if !ok || string(obj.Value) != "<h1>page</h1>score=251.6" {
			t.Fatalf("page %d = %q, want fresh assembled bytes", i, obj.Value)
		}
	}
	st := e.Stats()
	if st.FragmentRenders != 1 || st.FragmentReuses != int64(nPages) {
		t.Fatalf("engine stats renders=%d reuses=%d, want 1/%d",
			st.FragmentRenders, st.FragmentReuses, nPages)
	}
}

// TestIncrementalBatchSkipsUnchangedFragments: a page embedding two
// fragments is rebuilt after only one of them changes; the unchanged
// fragment's cached bytes are reused, not re-rendered.
func TestIncrementalBatchSkipsUnchangedFragments(t *testing.T) {
	d := db.New("t")
	d.CreateTable("rows")
	if _, err := d.Commit(d.NewTx().
		Put("rows", "a", map[string]string{"v": "1"}).
		Put("rows", "b", map[string]string{"v": "2"})); err != nil {
		t.Fatal(err)
	}
	c := cache.New("t")
	g := odg.New()
	var fe *fragment.Engine
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return fe.Generate(key, version)
	}
	e := NewEngine(g, c, WithGenerator(gen))
	fe = fragment.New(fragment.Config{DB: d, Registrar: e})
	e.SetAssembler(fe)
	for _, name := range []string{"a", "b"} {
		name := name
		fe.Define("frag:"+name, func(ctx *fragment.Context) ([]byte, error) {
			row, _, err := ctx.Get("rows", name)
			if err != nil {
				return nil, err
			}
			return []byte(name + "=" + row.Cols["v"]), nil
		})
	}
	fe.Define("/page", func(ctx *fragment.Context) ([]byte, error) {
		if err := ctx.IncludeInto("frag:a"); err != nil {
			return nil, err
		}
		if err := ctx.IncludeInto("frag:b"); err != nil {
			return nil, err
		}
		return ctx.Bytes(), nil
	})
	obj, err := fe.Generate("/page", d.LSN())
	if err != nil {
		t.Fatal(err)
	}
	c.Put(obj)

	if _, err := d.Commit(d.NewTx().Put("rows", "a", map[string]string{"v": "9"})); err != nil {
		t.Fatal(err)
	}
	res := e.OnChange(d.LSN(), odg.NodeID(db.RowID("rows", "a")))
	if res.FragmentRenders != 1 {
		t.Fatalf("FragmentRenders = %d, want 1 (only frag:a changed)", res.FragmentRenders)
	}
	// The rebuilt page splices frag:a (fresh) and frag:b (unchanged).
	if res.FragmentReuses != 2 {
		t.Fatalf("FragmentReuses = %d, want 2", res.FragmentReuses)
	}
	got, _ := c.Peek("/page")
	if string(got.Value) != "a=9b=2" {
		t.Fatalf("page = %q, want %q", got.Value, "a=9b=2")
	}
}

// TestPartitionSeparatesFragmentsFromPages checks the batch planner's ODG
// partition: vertices with out-edges (or KindBoth) are fragments, leaves are
// pages.
func TestPartitionSeparatesFragmentsFromPages(t *testing.T) {
	_, _, e, _ := fragmentStack(t, 3)
	d := odg.NodeID(db.RowID("rows", "score"))
	affected := e.Graph().Affected(d)
	frags, pages := e.Graph().Partition(affected)
	if len(frags) != 1 || frags[0] != "frag:score" {
		t.Fatalf("fragments = %v, want [frag:score]", frags)
	}
	if len(pages) != 3 {
		t.Fatalf("pages = %v, want the three containing pages", pages)
	}
}
