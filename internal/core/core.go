// Package core implements Data Update Propagation (DUP), the paper's
// primary contribution: given a set of changes to underlying data, determine
// exactly which cached objects became obsolete, and remedy each one by
// regenerating it directly in the cache (the 1998 design) or invalidating it
// (the fallback), instead of conservatively dumping whole sections of the
// cache (the 1996 design that capped hit rates near 80%).
//
// The Engine ties together three collaborators:
//
//   - an object dependence graph (internal/odg) recording which objects
//     depend on which underlying data;
//   - a Store — anything that can accept fresh objects and invalidations
//     (a single cache, or a cache.Group fanning out to all serving nodes);
//   - a Generator that re-renders an object on demand (the page renderer).
//
// Server programs register each rendered object's dependencies with
// RegisterObject; the trigger monitor calls OnChange with the rows each
// database transaction touched. Everything in between is DUP.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/odg"
	"dupserve/internal/stats"
)

// Policy selects the remedy DUP applies to obsolete objects.
type Policy uint8

const (
	// PolicyUpdateInPlace regenerates each affected object and stores the
	// fresh version over the stale one. Pages never leave the cache, so hot
	// pages never miss — the mechanism behind the paper's ~100% hit rate.
	PolicyUpdateInPlace Policy = iota
	// PolicyInvalidate removes each affected object from the store; the
	// next request regenerates it (precise invalidation, still DUP).
	PolicyInvalidate
	// PolicyConservative ignores the dependence graph and invalidates
	// whole key prefixes derived from the changed data — the 1996 Atlanta
	// design. It requires a ConservativeMapper.
	PolicyConservative
	// PolicyHybrid regenerates *hot* objects in place and invalidates cold
	// ones — the paper's actual prose: "when hot pages in the cache became
	// obsolete as a result of updates to underlying data, new versions of
	// the pages were updated directly in the cache". Hotness comes from a
	// HotOracle; fragments (objects other objects depend on) are always
	// regenerated, since a page render must find its fragments fresh.
	PolicyHybrid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyUpdateInPlace:
		return "update-in-place"
	case PolicyInvalidate:
		return "invalidate"
	case PolicyConservative:
		return "conservative"
	case PolicyHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Store is where DUP applies its remedies. It is the single shared
// contract of the propagation pipeline: *cache.Cache and *cache.Group
// implement it directly (Apply* methods), and decorators such as
// fault.FlakyStore wrap any Store with injected failure behaviour.
type Store interface {
	// ApplyPut installs a freshly generated object.
	ApplyPut(obj *cache.Object)
	// ApplyInvalidate removes an object, reporting how many cache replicas
	// held it.
	ApplyInvalidate(key cache.Key) int
	// ApplyInvalidatePrefix removes every object whose key has the prefix,
	// returning the total entries removed across replicas.
	ApplyInvalidatePrefix(prefix string) int
}

// Assembler is the engine's contract with an incremental page-assembly
// renderer (*fragment.Engine implements it). Before phase-1 fragment
// regeneration the engine opens a batch, pinning the batch version as the
// required floor for every changed fragment — page assembly then splices
// cached fragment bytes only at or above their floors, re-rendering (with
// single-flight deduplication) anything stale. EndBatch closes the batch
// and reports its render-vs-reuse accounting.
type Assembler interface {
	// BeginBatch pins version as the required floor for the changed
	// fragments and opens the batch's accounting window.
	BeginBatch(version int64, fragments []cache.Key)
	// EndBatch reports fragment renders and cached-byte reuses performed
	// since BeginBatch.
	EndBatch() (renders, reuses int64)
}

// Generator re-renders the object stored under key. The returned object's
// Key must equal key. Version is the LSN of the change batch that made the
// object obsolete; generators stamp it into the object so freshness is
// observable end-to-end.
type Generator func(key cache.Key, version int64) (*cache.Object, error)

// HotOracle reports whether a cached object is hot enough to be worth
// regenerating eagerly under PolicyHybrid. A typical oracle compares the
// serving cache's HitCount against a threshold.
type HotOracle func(key cache.Key) bool

// ConservativeMapper translates a changed underlying-data ID into the cache
// key prefixes to drop, e.g. "db:results:alpine:*" -> ["/en/sports/alpine",
// "/ja/sports/alpine", "/en/today"]. Used only by PolicyConservative.
type ConservativeMapper func(changedID odg.NodeID) []string

// ErrNoGenerator is returned when an update-in-place engine has no
// generator to regenerate objects with.
var ErrNoGenerator = errors.New("core: no generator configured")

// Result summarizes one propagation.
type Result struct {
	// Changed is the number of underlying-data IDs in the batch.
	Changed int
	// Affected is the number of distinct cached objects DUP identified as
	// obsolete (or, for the conservative policy, the number of cache
	// entries dropped).
	Affected int
	// Updated counts objects regenerated in place.
	Updated int
	// Invalidated counts objects (or entries) removed.
	Invalidated int
	// Deferred counts objects left in place because their accumulated
	// weighted staleness has not yet crossed the threshold.
	Deferred int
	// Errors collects generation failures; failed objects are invalidated
	// instead so the cache can never serve a page DUP knows is stale.
	Errors []error

	// FragmentRenders and FragmentReuses are the batch's render-vs-reuse
	// accounting from the assembler: fragments rendered (each changed
	// fragment exactly once) and cached fragment splices during page
	// assembly. Zero when no assembler is wired.
	FragmentRenders int
	FragmentReuses  int

	// Stage timings, for propagation tracing (internal/trace): how long
	// this propagation spent traversing the dependence graph, regenerating
	// objects, and pushing remedies into the store. Render and push are
	// cumulative across workers, clamped by the caller when deriving
	// wall-clock stage boundaries.
	GraphDur  time.Duration
	RenderDur time.Duration
	PushDur   time.Duration
	// FragmentDur and AssembleDur split the incremental planner's wall
	// clock into phase 1 (changed-fragment renders) and phase 2 (page
	// assembly). Zero when no assembler is wired; RenderDur remains the
	// cumulative per-worker render time across both phases.
	FragmentDur time.Duration
	AssembleDur time.Duration
}

// stageTiming accumulates render/push nanoseconds across the (possibly
// concurrent) regeneration workers of one propagation.
type stageTiming struct {
	render atomic.Int64
	push   atomic.Int64
}

// Engine executes DUP propagations. Safe for concurrent use, though the
// intended deployment runs propagations from a single trigger-monitor
// goroutine while readers serve from the caches.
type Engine struct {
	graph  *odg.Graph
	store  Store
	gen    Generator
	policy Policy
	mapper ConservativeMapper
	hot    HotOracle
	trace  TraceFunc

	// asm, when set, switches update-in-place propagation to the
	// incremental planner: the affected set is partitioned into changed
	// fragments and containing pages, fragments render exactly once in
	// phase 1, and pages rebuild by memoized assembly in phase 2. Written
	// once at wiring time (WithAssembler or SetAssembler), before
	// propagation starts.
	asm Assembler

	// threshold enables weighted mode when > 0: objects accumulate
	// staleness across propagations and are remediated only once the
	// accumulation reaches the threshold (section 2: "it is often possible
	// to save considerable CPU cycles by allowing pages to remain in the
	// cache which are only slightly obsolete").
	threshold float64
	staleMu   sync.Mutex
	staleAcc  map[cache.Key]float64 // accumulated below-threshold staleness

	// workers > 1 regenerates affected objects concurrently, level by
	// dependency level — the paper ran triggering and rendering on an
	// 8-way SMP.
	workers int

	propagations stats.Counter
	updated      stats.Counter
	invalidated  stats.Counter
	deferred     stats.Counter
	genErrors    stats.Counter
	fragRenders  stats.Counter
	fragReuses   stats.Counter
}

// Option configures an Engine.
type Option func(*Engine)

// WithPolicy selects the remedy policy (default PolicyUpdateInPlace).
func WithPolicy(p Policy) Option {
	return func(e *Engine) { e.policy = p }
}

// WithGenerator supplies the object regenerator (required for
// PolicyUpdateInPlace).
func WithGenerator(g Generator) Option {
	return func(e *Engine) { e.gen = g }
}

// WithConservativeMapper supplies the prefix mapper for
// PolicyConservative.
func WithConservativeMapper(m ConservativeMapper) Option {
	return func(e *Engine) { e.mapper = m }
}

// WithHotOracle supplies the hot-page signal for PolicyHybrid. Without an
// oracle, PolicyHybrid treats every object as hot (equivalent to
// PolicyUpdateInPlace).
func WithHotOracle(h HotOracle) Option {
	return func(e *Engine) { e.hot = h }
}

// WithStalenessThreshold enables weighted-staleness mode: an object is
// remediated only when its accumulated staleness reaches t. Requires the
// dependence graph to carry meaningful weights.
func WithStalenessThreshold(t float64) Option {
	return func(e *Engine) { e.threshold = t }
}

// TraceEvent records one remedy decision during a propagation, for
// operational visibility into what DUP is doing and why.
type TraceEvent struct {
	Version int64
	Key     cache.Key
	// Action is "update", "invalidate", "defer", or "error".
	Action string
	// Reason explains the decision ("affected", "cold", "generator
	// failed: ...", "staleness 2.0 < threshold 5.0").
	Reason string
}

// TraceFunc receives trace events. It must be fast and must not call back
// into the engine.
type TraceFunc func(TraceEvent)

// WithTrace installs a propagation tracer.
func WithTrace(t TraceFunc) Option {
	return func(e *Engine) { e.trace = t }
}

// WithAssembler wires an incremental page assembler (typically the
// complex's *fragment.Engine): update-in-place propagation partitions the
// affected set into changed fragments and containing pages, renders each
// fragment exactly once per batch, and rebuilds pages by splicing the
// cached fragment bytes.
func WithAssembler(a Assembler) Option {
	return func(e *Engine) { e.asm = a }
}

// SetAssembler wires the incremental assembler after construction — the
// deployment builds its engine before the site (and therefore the fragment
// engine) exists, so the binding is necessarily late. Call before
// propagation starts; the engine does not synchronize this field against
// in-flight OnChange calls.
func (e *Engine) SetAssembler(a Assembler) { e.asm = a }

// WithParallelism regenerates affected objects with n concurrent workers
// per dependency level (fragments still complete before the pages embedding
// them). The generator and store must be safe for concurrent use; the
// fragment engine and all cache stores in this module are. n <= 1 keeps
// sequential regeneration.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// NewEngine returns an Engine over the given graph and store.
func NewEngine(graph *odg.Graph, store Store, opts ...Option) *Engine {
	e := &Engine{
		graph:    graph,
		store:    store,
		policy:   PolicyUpdateInPlace,
		staleAcc: make(map[cache.Key]float64),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Graph exposes the engine's dependence graph (registration helpers in
// other packages need it).
func (e *Engine) Graph() *odg.Graph { return e.graph }

// Policy returns the configured remedy policy.
func (e *Engine) Policy() Policy { return e.policy }

// RegisterObject declares that the cached object key depends on exactly the
// given underlying-data IDs, replacing any previous registration. Server
// programs call this after each render.
func (e *Engine) RegisterObject(key cache.Key, deps []odg.NodeID) {
	e.graph.ReplaceDependencies(odg.NodeID(key), deps)
}

// RegisterFragment declares a cached object that other objects depend on (a
// page fragment): it is marked KindBoth so changes flow through it.
func (e *Engine) RegisterFragment(key cache.Key, deps []odg.NodeID) {
	e.graph.ReplaceDependencies(odg.NodeID(key), deps)
	e.graph.AddNode(odg.NodeID(key), odg.KindBoth)
}

// Unregister removes the object from the dependence graph (a page retired
// from the site).
func (e *Engine) Unregister(key cache.Key) {
	e.graph.RemoveNode(odg.NodeID(key))
}

// OnChange runs one DUP propagation for a batch of changed underlying-data
// IDs. version is the LSN (or other monotone stamp) of the batch; it is
// handed to the generator so freshly rendered objects carry it.
func (e *Engine) OnChange(version int64, changed ...odg.NodeID) Result {
	e.propagations.Inc()
	res := Result{Changed: len(changed)}
	if len(changed) == 0 {
		return res
	}

	if e.policy == PolicyConservative {
		return e.conservative(res, changed)
	}

	graphStart := time.Now()
	var affected []odg.NodeID
	if e.threshold > 0 {
		affected, res.Deferred = e.thresholdFilter(changed)
	} else {
		affected = e.graph.Affected(changed...)
	}
	res.GraphDur = time.Since(graphStart)
	res.Affected = len(affected)

	switch e.policy {
	case PolicyInvalidate:
		pushStart := time.Now()
		for _, id := range affected {
			n := e.store.ApplyInvalidate(cache.Key(id))
			if n > 0 {
				res.Invalidated++
			}
			e.emit(TraceEvent{Version: version, Key: cache.Key(id), Action: "invalidate", Reason: "affected"})
		}
		res.PushDur = time.Since(pushStart)
		e.invalidated.Add(int64(res.Invalidated))
	case PolicyHybrid:
		e.hybrid(&res, version, affected)
	case PolicyUpdateInPlace:
		e.updateInPlace(&res, version, affected)
	}
	return res
}

// updateInPlace regenerates the affected objects in dependency order
// (fragments before the pages that embed them) and broadcasts each fresh
// object to the store.
func (e *Engine) updateInPlace(res *Result, version int64, affected []odg.NodeID) {
	if e.gen == nil {
		// Degrade to invalidation rather than serving stale data.
		pushStart := time.Now()
		for _, id := range affected {
			if e.store.ApplyInvalidate(cache.Key(id)) > 0 {
				res.Invalidated++
			}
		}
		res.PushDur += time.Since(pushStart)
		res.Errors = append(res.Errors, ErrNoGenerator)
		e.invalidated.Add(int64(res.Invalidated))
		return
	}
	var tm stageTiming
	if e.asm != nil {
		e.assemble(res, version, affected, &tm)
	} else {
		e.regenerateSet(res, version, e.dependencyOrder(affected), &tm)
	}
	res.RenderDur += time.Duration(tm.render.Load())
	res.PushDur += time.Duration(tm.push.Load())
	e.updated.Add(int64(res.Updated))
	e.invalidated.Add(int64(res.Invalidated))
}

// assemble is the incremental batch planner: partition the affected set
// into changed fragments and merely-containing pages, open the assembler's
// batch (pinning fragment version floors), render each changed fragment
// exactly once in phase 1 (dependency-ordered, so nested fragments precede
// their embedders), then rebuild the containing pages in phase 2 as one
// flat parallel wave — every fragment a page splices is already fresh, so
// page assembly degenerates to cached-byte concatenation and the batch's
// render work scales with the number of changed fragments, not
// pages x fragments.
func (e *Engine) assemble(res *Result, version int64, affected []odg.NodeID, tm *stageTiming) {
	fragments, pages := e.graph.Partition(affected)
	keys := make([]cache.Key, len(fragments))
	for i, id := range fragments {
		keys[i] = cache.Key(id)
	}
	e.asm.BeginBatch(version, keys)
	fragStart := time.Now()
	e.regenerateSet(res, version, e.dependencyOrder(fragments), tm)
	res.FragmentDur += time.Since(fragStart)
	asmStart := time.Now()
	// Pages have no edges among themselves (a depended-on vertex is by
	// definition in the fragment partition), so no ordering pass is needed.
	e.regenerateSet(res, version, pages, tm)
	res.AssembleDur += time.Since(asmStart)
	renders, reuses := e.asm.EndBatch()
	res.FragmentRenders += int(renders)
	res.FragmentReuses += int(reuses)
	e.fragRenders.Add(renders)
	e.fragReuses.Add(reuses)
}

// regenerateSet regenerates an ordered set of objects, concurrently when
// the engine has workers configured.
func (e *Engine) regenerateSet(res *Result, version int64, ordered []odg.NodeID, tm *stageTiming) {
	if e.workers > 1 && len(ordered) > 1 {
		e.regenerateParallel(res, version, ordered, tm)
		return
	}
	for _, id := range ordered {
		updated, invalidated, err := e.regenerateOne(version, id, tm)
		if updated {
			res.Updated++
		}
		if invalidated {
			res.Invalidated++
		}
		if err != nil {
			res.Errors = append(res.Errors, err)
		}
	}
}

// regenerateOne renders a single object and applies it, or invalidates it
// on failure — never leave a known-stale page in the cache. Safe for
// concurrent use; result accounting is the caller's job.
func (e *Engine) regenerateOne(version int64, id odg.NodeID, tm *stageTiming) (updated, invalidated bool, err error) {
	renderStart := time.Now()
	obj, genErr := e.gen(cache.Key(id), version)
	tm.render.Add(int64(time.Since(renderStart)))
	if genErr != nil {
		e.genErrors.Inc()
		pushStart := time.Now()
		invalidated = e.store.ApplyInvalidate(cache.Key(id)) > 0
		tm.push.Add(int64(time.Since(pushStart)))
		e.emit(TraceEvent{Version: version, Key: cache.Key(id), Action: "error", Reason: genErr.Error()})
		return false, invalidated, fmt.Errorf("core: regenerate %q: %w", id, genErr)
	}
	if obj.Version == 0 {
		obj.Version = version
	}
	pushStart := time.Now()
	e.store.ApplyPut(obj)
	tm.push.Add(int64(time.Since(pushStart)))
	e.emit(TraceEvent{Version: version, Key: cache.Key(id), Action: "update", Reason: "affected"})
	return true, false, nil
}

// emit delivers a trace event if a tracer is installed.
func (e *Engine) emit(ev TraceEvent) {
	if e.trace != nil {
		e.trace(ev)
	}
}

// regenerateParallel renders the ordered affected set with e.workers
// goroutines, one dependency level at a time: all of a level's objects may
// render concurrently because their predecessors completed in earlier
// levels.
func (e *Engine) regenerateParallel(res *Result, version int64, ordered []odg.NodeID, tm *stageTiming) {
	inSet := make(map[odg.NodeID]int, len(ordered)) // id -> level
	var levels [][]odg.NodeID
	for _, id := range ordered {
		lvl := 0
		for _, p := range e.graph.Predecessors(id) {
			if pl, ok := inSet[p]; ok && pl+1 > lvl {
				lvl = pl + 1
			}
		}
		inSet[id] = lvl
		for len(levels) <= lvl {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], id)
	}
	var mu sync.Mutex
	for _, level := range levels {
		sem := make(chan struct{}, e.workers)
		var wg sync.WaitGroup
		for _, id := range level {
			id := id
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				updated, invalidated, err := e.regenerateOne(version, id, tm)
				mu.Lock()
				if updated {
					res.Updated++
				}
				if invalidated {
					res.Invalidated++
				}
				if err != nil {
					res.Errors = append(res.Errors, err)
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
}

// hybrid regenerates hot objects (and every fragment, which pages depend
// on) in place, and invalidates cold objects so their next request
// regenerates them on demand.
func (e *Engine) hybrid(res *Result, version int64, affected []odg.NodeID) {
	if e.gen == nil {
		e.updateInPlace(res, version, affected) // degrades to invalidation
		return
	}
	var regen []odg.NodeID
	pushStart := time.Now()
	for _, id := range affected {
		isFragment := len(e.graph.Successors(id)) > 0
		if isFragment || e.hot == nil || e.hot(cache.Key(id)) {
			regen = append(regen, id)
			continue
		}
		if e.store.ApplyInvalidate(cache.Key(id)) > 0 {
			res.Invalidated++
		}
		e.emit(TraceEvent{Version: version, Key: cache.Key(id), Action: "invalidate", Reason: "cold"})
	}
	res.PushDur += time.Since(pushStart)
	e.invalidated.Add(int64(res.Invalidated))
	e.updateInPlace(res, version, regen)
}

// dependencyOrder sorts the affected set so that predecessors (fragments)
// come before successors (pages), using a topological sort restricted to
// the affected subgraph — propagation cost must scale with the update's
// fan-out, not the size of the site.
func (e *Engine) dependencyOrder(affected []odg.NodeID) []odg.NodeID {
	if len(affected) <= 1 {
		return affected
	}
	return e.graph.SubgraphTopoOrder(affected)
}

// thresholdFilter accumulates weighted staleness for the affected objects
// and returns only those that crossed the threshold, resetting their
// accumulators. Objects below threshold are counted as deferred.
func (e *Engine) thresholdFilter(changed []odg.NodeID) (due []odg.NodeID, deferred int) {
	changes := make(map[odg.NodeID]float64, len(changed))
	for _, id := range changed {
		changes[id] = 1
	}
	st := e.graph.Staleness(changes)
	e.staleMu.Lock()
	for id, s := range st {
		key := cache.Key(id)
		acc := e.staleAcc[key] + s
		if acc >= e.threshold {
			delete(e.staleAcc, key)
			due = append(due, id)
		} else {
			e.staleAcc[key] = acc
			deferred++
			e.deferred.Inc()
			e.emit(TraceEvent{Key: key, Action: "defer",
				Reason: fmt.Sprintf("staleness %.3g < threshold %.3g", acc, e.threshold)})
		}
	}
	e.staleMu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	return due, deferred
}

// conservative implements the 1996-style remedy: map each change to key
// prefixes and drop them all.
func (e *Engine) conservative(res Result, changed []odg.NodeID) Result {
	if e.mapper == nil {
		res.Errors = append(res.Errors, errors.New("core: conservative policy requires a mapper"))
		return res
	}
	prefixes := make(map[string]struct{})
	for _, id := range changed {
		for _, p := range e.mapper(id) {
			prefixes[p] = struct{}{}
		}
	}
	ordered := make([]string, 0, len(prefixes))
	for p := range prefixes {
		ordered = append(ordered, p)
	}
	sort.Strings(ordered)
	pushStart := time.Now()
	for _, p := range ordered {
		res.Invalidated += e.store.ApplyInvalidatePrefix(p)
	}
	res.PushDur = time.Since(pushStart)
	res.Affected = res.Invalidated
	e.invalidated.Add(int64(res.Invalidated))
	return res
}

// PendingStaleness returns the accumulated below-threshold staleness for an
// object (0 if none). Visible for tests and monitoring.
func (e *Engine) PendingStaleness(key cache.Key) float64 {
	e.staleMu.Lock()
	defer e.staleMu.Unlock()
	return e.staleAcc[key]
}

// EngineStats is a snapshot of engine counters.
type EngineStats struct {
	Propagations int64
	Updated      int64
	Invalidated  int64
	Deferred     int64
	GenErrors    int64
	// FragmentRenders and FragmentReuses accumulate the assembler's
	// render-vs-reuse accounting across batches (zero when no assembler
	// is wired).
	FragmentRenders int64
	FragmentReuses  int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Propagations:    e.propagations.Value(),
		Updated:         e.updated.Value(),
		Invalidated:     e.invalidated.Value(),
		Deferred:        e.deferred.Value(),
		GenErrors:       e.genErrors.Value(),
		FragmentRenders: e.fragRenders.Value(),
		FragmentReuses:  e.fragReuses.Value(),
	}
}

// RegisterMetrics publishes the engine's counters into a registry — the
// thin adapter that supersedes polling EngineStats. labels (may be nil)
// are attached to every series, e.g. {"complex": "tokyo"}.
func (e *Engine) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	reg.RegisterCounter("dup_propagations_total",
		"DUP propagation batches executed", labels, &e.propagations)
	reg.RegisterCounter("dup_objects_updated_total",
		"cached objects regenerated in place", labels, &e.updated)
	reg.RegisterCounter("dup_objects_invalidated_total",
		"cached objects (or entries) invalidated", labels, &e.invalidated)
	reg.RegisterCounter("dup_objects_deferred_total",
		"remedies deferred below the staleness threshold", labels, &e.deferred)
	reg.RegisterCounter("dup_generator_errors_total",
		"object regeneration failures", labels, &e.genErrors)
	reg.RegisterCounter("core_fragment_renders_total",
		"fragments rendered by incremental propagation batches", labels, &e.fragRenders)
	reg.RegisterCounter("core_fragment_reuses_total",
		"cached fragment byte-splices during page assembly", labels, &e.fragReuses)
}
