package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/odg"
)

// testGen returns a generator that renders "content-for-<key>@<version>"
// and records which keys it was asked for, in order.
func testGen() (Generator, *[]string) {
	var mu sync.Mutex
	var calls []string
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		mu.Lock()
		calls = append(calls, string(key))
		mu.Unlock()
		return &cache.Object{
			Key:     key,
			Value:   []byte(fmt.Sprintf("content-for-%s@%d", key, version)),
			Version: version,
		}, nil
	}
	return gen, &calls
}

func newEngine(t *testing.T, opts ...Option) (*Engine, *cache.Cache) {
	t.Helper()
	c := cache.New("test")
	g := odg.New()
	e := NewEngine(g, c, opts...)
	return e, c
}

func TestUpdateInPlaceKeepsPagesCached(t *testing.T) {
	gen, _ := testGen()
	e, c := newEngine(t, WithGenerator(gen))
	e.RegisterObject("/sports/ski", []odg.NodeID{"db:results:ski"})
	c.Put(&cache.Object{Key: "/sports/ski", Value: []byte("old"), Version: 1})

	res := e.OnChange(2, "db:results:ski")
	if res.Affected != 1 || res.Updated != 1 || res.Invalidated != 0 {
		t.Fatalf("result = %+v", res)
	}
	obj, ok := c.Peek("/sports/ski")
	if !ok {
		t.Fatal("page left the cache under update-in-place")
	}
	if string(obj.Value) != "content-for-/sports/ski@2" || obj.Version != 2 {
		t.Fatalf("obj = %q v%d", obj.Value, obj.Version)
	}
	// A subsequent request hits.
	if _, ok := c.Get("/sports/ski"); !ok {
		t.Fatal("miss after update-in-place")
	}
	if c.Stats().HitRate() != 1 {
		t.Fatalf("hit rate = %v, want 1", c.Stats().HitRate())
	}
}

func TestInvalidatePolicyRemoves(t *testing.T) {
	e, c := newEngine(t, WithPolicy(PolicyInvalidate))
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	c.Put(&cache.Object{Key: "/p", Value: []byte("old")})
	res := e.OnChange(1, "db:x")
	if res.Invalidated != 1 || res.Updated != 0 {
		t.Fatalf("result = %+v", res)
	}
	if c.Contains("/p") {
		t.Fatal("page still cached after invalidate policy")
	}
}

func TestInvalidateAbsentObjectNotCounted(t *testing.T) {
	e, _ := newEngine(t, WithPolicy(PolicyInvalidate))
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	res := e.OnChange(1, "db:x")
	if res.Affected != 1 || res.Invalidated != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestConservativePolicy(t *testing.T) {
	mapper := func(id odg.NodeID) []string {
		// db:results:ski:* -> all ski pages in both languages
		if strings.HasPrefix(string(id), "db:results:ski") {
			return []string{"/en/ski", "/ja/ski"}
		}
		return nil
	}
	e, c := newEngine(t, WithPolicy(PolicyConservative), WithConservativeMapper(mapper))
	for _, k := range []string{"/en/ski/e1", "/en/ski/e2", "/ja/ski/e1", "/en/skate/e1"} {
		c.Put(&cache.Object{Key: cache.Key(k), Value: []byte("x")})
	}
	res := e.OnChange(1, "db:results:ski:e1")
	if res.Invalidated != 3 {
		t.Fatalf("invalidated = %d, want 3 (all ski pages)", res.Invalidated)
	}
	if !c.Contains("/en/skate/e1") {
		t.Fatal("conservative policy dropped an unrelated page")
	}
	// The point of the 1996 baseline: it drops far more than necessary —
	// e2 pages were untouched by the change yet got invalidated.
	if c.Contains("/en/ski/e2") {
		t.Fatal("expected over-invalidation of /en/ski/e2")
	}
}

func TestConservativeWithoutMapperErrors(t *testing.T) {
	e, _ := newEngine(t, WithPolicy(PolicyConservative))
	res := e.OnChange(1, "db:x")
	if len(res.Errors) == 0 {
		t.Fatal("expected configuration error")
	}
}

func TestUpdateInPlaceWithoutGeneratorDegradesToInvalidate(t *testing.T) {
	e, c := newEngine(t)
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	c.Put(&cache.Object{Key: "/p", Value: []byte("old")})
	res := e.OnChange(1, "db:x")
	if !errors.Is(res.Errors[0], ErrNoGenerator) {
		t.Fatalf("errors = %v", res.Errors)
	}
	if c.Contains("/p") {
		t.Fatal("stale page left in cache with no generator")
	}
}

func TestGeneratorFailureInvalidates(t *testing.T) {
	boom := errors.New("render failed")
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		if key == "/bad" {
			return nil, boom
		}
		return &cache.Object{Key: key, Value: []byte("ok"), Version: version}, nil
	}
	e, c := newEngine(t, WithGenerator(gen))
	e.RegisterObject("/bad", []odg.NodeID{"db:x"})
	e.RegisterObject("/good", []odg.NodeID{"db:x"})
	c.Put(&cache.Object{Key: "/bad", Value: []byte("stale")})
	c.Put(&cache.Object{Key: "/good", Value: []byte("stale")})

	res := e.OnChange(1, "db:x")
	if res.Updated != 1 || res.Invalidated != 1 || len(res.Errors) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if c.Contains("/bad") {
		t.Fatal("known-stale page served after generator failure")
	}
	if obj, _ := c.Peek("/good"); string(obj.Value) != "ok" {
		t.Fatal("good page not regenerated")
	}
	if e.Stats().GenErrors != 1 {
		t.Fatalf("GenErrors = %d", e.Stats().GenErrors)
	}
}

func TestFragmentOrdering(t *testing.T) {
	// medal fragment depends on results; home page embeds the fragment.
	gen, calls := testGen()
	e, _ := newEngine(t, WithGenerator(gen))
	e.RegisterFragment("frag:medals", []odg.NodeID{"db:results:ski"})
	e.RegisterObject("/home", []odg.NodeID{"frag:medals"})

	res := e.OnChange(1, "db:results:ski")
	if res.Updated != 2 {
		t.Fatalf("result = %+v", res)
	}
	if len(*calls) != 2 || (*calls)[0] != "frag:medals" || (*calls)[1] != "/home" {
		t.Fatalf("generation order = %v, want fragment before page", *calls)
	}
}

func TestTransitivePropagationMatchesPaperExample(t *testing.T) {
	// "one typical update to Cross Country Skiing results affected the
	// values of 128 Web pages" — fan-out through shared fragments.
	gen, _ := testGen()
	e, c := newEngine(t, WithGenerator(gen))
	e.RegisterFragment("frag:cc-results", []odg.NodeID{"db:results:cc:ev1"})
	for i := 0; i < 128; i++ {
		e.RegisterObject(cache.Key(fmt.Sprintf("/page%d", i)), []odg.NodeID{"frag:cc-results"})
	}
	res := e.OnChange(1, "db:results:cc:ev1")
	if res.Affected != 129 { // 128 pages + the fragment itself
		t.Fatalf("affected = %d, want 129", res.Affected)
	}
	if c.Len() != 129 {
		t.Fatalf("cache entries = %d", c.Len())
	}
}

func TestRegisterObjectReplacesDeps(t *testing.T) {
	gen, _ := testGen()
	e, c := newEngine(t, WithGenerator(gen))
	e.RegisterObject("/p", []odg.NodeID{"db:a"})
	e.RegisterObject("/p", []odg.NodeID{"db:b"})
	res := e.OnChange(1, "db:a")
	if res.Affected != 0 {
		t.Fatalf("stale dependency still active: %+v", res)
	}
	res = e.OnChange(2, "db:b")
	if res.Affected != 1 {
		t.Fatalf("new dependency inactive: %+v", res)
	}
	_ = c
}

func TestUnregister(t *testing.T) {
	gen, _ := testGen()
	e, _ := newEngine(t, WithGenerator(gen))
	e.RegisterObject("/p", []odg.NodeID{"db:a"})
	e.Unregister("/p")
	res := e.OnChange(1, "db:a")
	if res.Affected != 0 {
		t.Fatalf("unregistered page still affected: %+v", res)
	}
}

func TestOnChangeEmpty(t *testing.T) {
	gen, _ := testGen()
	e, _ := newEngine(t, WithGenerator(gen))
	res := e.OnChange(1)
	if res.Affected != 0 || res.Updated != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestWeightedThresholdDefersMinorUpdates(t *testing.T) {
	gen, _ := testGen()
	c := cache.New("t")
	g := odg.New()
	e := NewEngine(g, c, WithGenerator(gen), WithStalenessThreshold(3))
	// A page depends weakly (w=1) on a ticker row and strongly (w=5) on
	// the event result row.
	g.AddNode("/p", odg.KindObject)
	if err := g.AddWeightedEdge("db:ticker", "/p", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge("db:result", "/p", 5); err != nil {
		t.Fatal(err)
	}
	c.Put(&cache.Object{Key: "/p", Value: []byte("v0")})

	// First two ticker changes accumulate 1+1 < 3: deferred.
	for i := 0; i < 2; i++ {
		res := e.OnChange(int64(i+1), "db:ticker")
		if res.Updated != 0 || res.Deferred != 1 {
			t.Fatalf("tick %d: %+v", i, res)
		}
	}
	if got := e.PendingStaleness("/p"); got != 2 {
		t.Fatalf("pending staleness = %v, want 2", got)
	}
	// Third ticker change crosses the threshold: regenerate and reset.
	res := e.OnChange(3, "db:ticker")
	if res.Updated != 1 {
		t.Fatalf("threshold crossing: %+v", res)
	}
	if got := e.PendingStaleness("/p"); got != 0 {
		t.Fatalf("pending staleness after update = %v, want 0", got)
	}
	// A result change (weight 5) crosses immediately.
	res = e.OnChange(4, "db:result")
	if res.Updated != 1 || res.Deferred != 0 {
		t.Fatalf("heavy change: %+v", res)
	}
}

func TestGroupStoreFansOut(t *testing.T) {
	grp := cache.NewGroup()
	for i := 0; i < 8; i++ {
		grp.Add(cache.New(fmt.Sprintf("up%d", i)))
	}
	gen, _ := testGen()
	g := odg.New()
	e := NewEngine(g, grp, WithGenerator(gen))
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	res := e.OnChange(1, "db:x")
	if res.Updated != 1 {
		t.Fatalf("result = %+v", res)
	}
	for _, c := range grp.Members() {
		if !c.Contains("/p") {
			t.Fatalf("cache %s missed the broadcast", c.Name())
		}
	}
	// Invalidate fan-out counts replicas.
	if n := grp.ApplyInvalidate("/p"); n != 8 {
		t.Fatalf("ApplyInvalidate = %d, want 8", n)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyUpdateInPlace.String() != "update-in-place" ||
		PolicyInvalidate.String() != "invalidate" ||
		PolicyConservative.String() != "conservative" {
		t.Fatal("policy name drift")
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	gen, _ := testGen()
	e, _ := newEngine(t, WithGenerator(gen))
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	e.OnChange(1, "db:x")
	e.OnChange(2, "db:x")
	s := e.Stats()
	if s.Propagations != 2 || s.Updated != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentPropagationsAndRegistrations(t *testing.T) {
	gen, _ := testGen()
	e, _ := newEngine(t, WithGenerator(gen))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := cache.Key(fmt.Sprintf("/p%d-%d", w, i%10))
				e.RegisterObject(key, []odg.NodeID{odg.NodeID(fmt.Sprintf("db:x%d", i%5))})
				e.OnChange(int64(i), odg.NodeID(fmt.Sprintf("db:x%d", i%5)))
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkOnChangeUpdateInPlace(b *testing.B) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: make([]byte, 4096), Version: version}, nil
	}
	c := cache.New("b")
	g := odg.New()
	e := NewEngine(g, c, WithGenerator(gen))
	for i := 0; i < 100; i++ {
		e.RegisterObject(cache.Key(fmt.Sprintf("/p%d", i)), []odg.NodeID{"db:hot"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.OnChange(int64(i), "db:hot")
	}
}

func BenchmarkOnChangeInvalidate(b *testing.B) {
	c := cache.New("b")
	g := odg.New()
	e := NewEngine(g, c, WithPolicy(PolicyInvalidate))
	for i := 0; i < 100; i++ {
		e.RegisterObject(cache.Key(fmt.Sprintf("/p%d", i)), []odg.NodeID{"db:hot"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.OnChange(int64(i), "db:hot")
	}
}

func TestParallelRegenerationOrdersFragmentsFirst(t *testing.T) {
	// Record generation order with a mutex; fragments must complete before
	// any page that embeds them starts.
	var mu sync.Mutex
	var order []string
	fragDone := make(map[string]bool)
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		mu.Lock()
		if strings.HasPrefix(string(key), "/page") {
			for f := range map[string]bool{"frag:a": true, "frag:b": true} {
				if !fragDone[f] {
					mu.Unlock()
					return nil, fmt.Errorf("page %s rendered before fragment %s", key, f)
				}
			}
		}
		if strings.HasPrefix(string(key), "frag:") {
			fragDone[string(key)] = true
		}
		order = append(order, string(key))
		mu.Unlock()
		return &cache.Object{Key: key, Value: []byte("x"), Version: version}, nil
	}
	c := cache.New("t")
	g := odg.New()
	e := NewEngine(g, c, WithGenerator(gen), WithParallelism(4))
	e.RegisterFragment("frag:a", []odg.NodeID{"db:x"})
	e.RegisterFragment("frag:b", []odg.NodeID{"db:x"})
	for i := 0; i < 20; i++ {
		e.RegisterObject(cache.Key(fmt.Sprintf("/page%d", i)), []odg.NodeID{"frag:a", "frag:b"})
	}
	res := e.OnChange(1, "db:x")
	if len(res.Errors) > 0 {
		t.Fatalf("ordering violations: %v", res.Errors)
	}
	if res.Updated != 22 {
		t.Fatalf("updated = %d, want 22", res.Updated)
	}
	if c.Len() != 22 {
		t.Fatalf("cache = %d entries", c.Len())
	}
}

func TestParallelMatchesSequentialCounts(t *testing.T) {
	build := func(workers int) Result {
		gen, _ := testGen()
		c := cache.New("t")
		g := odg.New()
		opts := []Option{WithGenerator(gen)}
		if workers > 1 {
			opts = append(opts, WithParallelism(workers))
		}
		e := NewEngine(g, c, opts...)
		e.RegisterFragment("frag:m", []odg.NodeID{"db:x"})
		for i := 0; i < 50; i++ {
			e.RegisterObject(cache.Key(fmt.Sprintf("/p%d", i)), []odg.NodeID{"frag:m"})
		}
		return e.OnChange(1, "db:x")
	}
	seq := build(1)
	par := build(8)
	if seq.Updated != par.Updated || seq.Affected != par.Affected {
		t.Fatalf("sequential %+v vs parallel %+v", seq, par)
	}
}

func TestParallelGeneratorFailureStillInvalidates(t *testing.T) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		if key == "/bad" {
			return nil, errors.New("boom")
		}
		return &cache.Object{Key: key, Value: []byte("ok"), Version: version}, nil
	}
	c := cache.New("t")
	g := odg.New()
	e := NewEngine(g, c, WithGenerator(gen), WithParallelism(4))
	c.Put(&cache.Object{Key: "/bad", Value: []byte("stale")})
	e.RegisterObject("/bad", []odg.NodeID{"db:x"})
	for i := 0; i < 10; i++ {
		e.RegisterObject(cache.Key(fmt.Sprintf("/ok%d", i)), []odg.NodeID{"db:x"})
	}
	res := e.OnChange(1, "db:x")
	if res.Updated != 10 || res.Invalidated != 1 || len(res.Errors) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if c.Contains("/bad") {
		t.Fatal("stale page survived parallel failure path")
	}
}

func TestHybridPolicyHotVsCold(t *testing.T) {
	gen, _ := testGen()
	c := cache.New("t")
	g := odg.New()
	hot := func(key cache.Key) bool { return c.HitCount(key) >= 3 }
	e := NewEngine(g, c, WithGenerator(gen),
		WithPolicy(PolicyHybrid), WithHotOracle(hot))
	e.RegisterObject("/hot", []odg.NodeID{"db:x"})
	e.RegisterObject("/cold", []odg.NodeID{"db:x"})
	c.Put(&cache.Object{Key: "/hot", Value: []byte("v0")})
	c.Put(&cache.Object{Key: "/cold", Value: []byte("v0")})
	for i := 0; i < 5; i++ {
		c.Get("/hot") // make it hot
	}

	res := e.OnChange(1, "db:x")
	if res.Updated != 1 || res.Invalidated != 1 {
		t.Fatalf("result = %+v", res)
	}
	if !c.Contains("/hot") {
		t.Fatal("hot page was invalidated")
	}
	if c.Contains("/cold") {
		t.Fatal("cold page was regenerated eagerly")
	}
	obj, _ := c.Peek("/hot")
	if string(obj.Value) != "content-for-/hot@1" {
		t.Fatalf("hot page = %q", obj.Value)
	}
}

func TestHybridFragmentsAlwaysRegenerated(t *testing.T) {
	gen, calls := testGen()
	c := cache.New("t")
	g := odg.New()
	cold := func(cache.Key) bool { return false } // everything is cold
	e := NewEngine(g, c, WithGenerator(gen),
		WithPolicy(PolicyHybrid), WithHotOracle(cold))
	e.RegisterFragment("frag:m", []odg.NodeID{"db:x"})
	e.RegisterObject("/p", []odg.NodeID{"frag:m"})
	c.Put(&cache.Object{Key: "/p", Value: []byte("v0")})

	res := e.OnChange(1, "db:x")
	// Fragment regenerated despite being "cold"; page invalidated.
	if res.Updated != 1 || res.Invalidated != 1 {
		t.Fatalf("result = %+v", res)
	}
	if len(*calls) != 1 || (*calls)[0] != "frag:m" {
		t.Fatalf("calls = %v", *calls)
	}
}

func TestHybridWithoutOracleEqualsUpdateInPlace(t *testing.T) {
	gen, _ := testGen()
	c := cache.New("t")
	g := odg.New()
	e := NewEngine(g, c, WithGenerator(gen), WithPolicy(PolicyHybrid))
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	res := e.OnChange(1, "db:x")
	if res.Updated != 1 || res.Invalidated != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestHitCountSemantics(t *testing.T) {
	c := cache.New("t")
	c.Put(&cache.Object{Key: "/p", Value: []byte("x")})
	if c.HitCount("/p") != 0 {
		t.Fatal("fresh entry has hits")
	}
	c.Get("/p")
	c.Get("/p")
	if c.HitCount("/p") != 2 {
		t.Fatalf("HitCount = %d", c.HitCount("/p"))
	}
	// Update-in-place preserves the popularity signal.
	c.Put(&cache.Object{Key: "/p", Value: []byte("y")})
	if c.HitCount("/p") != 2 {
		t.Fatal("Put reset hit count")
	}
	// Invalidation resets it.
	c.Invalidate("/p")
	c.Put(&cache.Object{Key: "/p", Value: []byte("z")})
	if c.HitCount("/p") != 0 {
		t.Fatal("Invalidate did not reset hit count")
	}
	if c.HitCount("/absent") != 0 {
		t.Fatal("absent key has hits")
	}
}

func TestTraceEvents(t *testing.T) {
	var mu sync.Mutex
	var events []TraceEvent
	tr := func(ev TraceEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		if key == "/bad" {
			return nil, errors.New("render exploded")
		}
		return &cache.Object{Key: key, Value: []byte("x"), Version: version}, nil
	}
	c := cache.New("t")
	g := odg.New()
	e := NewEngine(g, c, WithGenerator(gen), WithTrace(tr))
	e.RegisterObject("/ok", []odg.NodeID{"db:x"})
	e.RegisterObject("/bad", []odg.NodeID{"db:x"})
	e.OnChange(7, "db:x")

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	byKey := map[cache.Key]TraceEvent{}
	for _, ev := range events {
		byKey[ev.Key] = ev
	}
	if byKey["/ok"].Action != "update" || byKey["/ok"].Version != 7 {
		t.Fatalf("ok event = %+v", byKey["/ok"])
	}
	if byKey["/bad"].Action != "error" || !strings.Contains(byKey["/bad"].Reason, "exploded") {
		t.Fatalf("bad event = %+v", byKey["/bad"])
	}
}

func TestTraceInvalidateAndDefer(t *testing.T) {
	var events []TraceEvent
	tr := func(ev TraceEvent) { events = append(events, ev) }
	c := cache.New("t")
	g := odg.New()
	e := NewEngine(g, c, WithPolicy(PolicyInvalidate), WithTrace(tr))
	e.RegisterObject("/p", []odg.NodeID{"db:x"})
	e.OnChange(1, "db:x")
	if len(events) != 1 || events[0].Action != "invalidate" {
		t.Fatalf("events = %v", events)
	}

	// Deferred trace under the weighted threshold.
	events = nil
	gen, _ := testGen()
	g2 := odg.New()
	e2 := NewEngine(g2, c, WithGenerator(gen),
		WithStalenessThreshold(10), WithTrace(tr))
	g2.AddNode("/q", odg.KindObject)
	if err := g2.AddWeightedEdge("db:t", "/q", 1); err != nil {
		t.Fatal(err)
	}
	e2.OnChange(1, "db:t")
	if len(events) != 1 || events[0].Action != "defer" || !strings.Contains(events[0].Reason, "threshold") {
		t.Fatalf("events = %v", events)
	}
}
