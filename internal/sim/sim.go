// Package sim runs the 16-day Olympic Games deployment as a deterministic
// discrete-event simulation, producing every series the paper's evaluation
// reports: hits by day (figure 20), bytes by day (figure 21), response
// times by day and region (figure 22), geographic breakdown (figure 23),
// hourly traffic per complex (figure 18), peak-minute statistics, cache hit
// rates under the three propagation policies, page-regeneration volume and
// freshness, and availability under failure injection.
//
// The simulated plant mirrors the paper: a master database feeding a DUP
// engine whose updates are distributed to the caches of every serving node
// in four geographic complexes (Tokyo, Schaumburg, Columbus, Bethesda),
// fronted by Network Dispatchers and MSIRP routing. Time advances in
// simulated hours; traffic within an hour is generated per request so cache
// and dispatcher behaviour is exercised end to end, not approximated.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/cluster"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/netsim"
	"dupserve/internal/odg"
	"dupserve/internal/routing"
	"dupserve/internal/site"
	"dupserve/internal/stats"
	"dupserve/internal/workload"
)

// FailureKind selects a failure-injection level.
type FailureKind int

const (
	// FailNode downs one serving node.
	FailNode FailureKind = iota
	// FailFrame downs one SP2 frame (all its nodes).
	FailFrame
	// FailComplex downs an entire geographic complex.
	FailComplex
)

// Failure schedules an outage.
type Failure struct {
	Day     int // 1-based
	Hour    int // UTC, 0-23
	Complex string
	Kind    FailureKind
	// Frame index for FailFrame (node failures use frame 0, node 0).
	Frame int
	// DurationHours until recovery.
	DurationHours int
}

// Config parameterizes a simulation run.
type Config struct {
	Seed      int64
	SiteSpec  site.Spec
	TotalHits int64
	Policy    core.Policy
	// Frames and NodesPerFrame size each complex (scaled down from the
	// paper's 3-4 frames x 8 nodes to keep broadcast cost proportionate).
	Frames        int
	NodesPerFrame int
	// PartialsPerEvent is how many intermediate scoring updates precede
	// each final result.
	PartialsPerEvent int
	// Failures to inject (nil = none).
	Failures []Failure
	// USCongestion multiplies US client-path congestion on days 7-9,
	// reproducing the figure-22 blip the paper attributes to causes
	// external to the site.
	USCongestion float64
	// NoReprimeOnRecovery disables the warm-up the paper's operators
	// performed when a node rejoined: redistributing the current page set
	// into its cold cache. With it disabled, recovered nodes warm up only
	// through on-demand misses.
	NoReprimeOnRecovery bool
	// Spikes are the scheduled traffic surges.
	Spikes []workload.Spike
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// DefaultConfig returns the paper-shaped run at 1/1000 traffic scale.
func DefaultConfig() Config {
	return Config{
		Seed:             1998,
		SiteSpec:         site.PaperSpec(),
		TotalHits:        600_000,
		Policy:           core.PolicyUpdateInPlace,
		Frames:           2,
		NodesPerFrame:    2,
		PartialsPerEvent: 16,
		USCongestion:     1.6,
		Spikes:           workload.PaperSpikes(),
		Failures: []Failure{
			{Day: 3, Hour: 5, Complex: "columbus", Kind: FailNode, DurationHours: 2},
			{Day: 6, Hour: 9, Complex: "schaumburg", Kind: FailFrame, DurationHours: 3},
			{Day: 9, Hour: 4, Complex: "bethesda", Kind: FailComplex, DurationHours: 4},
			{Day: 12, Hour: 7, Complex: "tokyo", Kind: FailNode, DurationHours: 1},
		},
	}
}

// HybridHotHits is the request count at which the hybrid policy considers
// a page hot enough for eager regeneration.
const HybridHotHits = 3

// PeakMinute records the busiest simulated minute.
type PeakMinute struct {
	Day    int
	Hour   int
	Minute int
	Hits   int64
}

// Result carries every series the experiments report.
type Result struct {
	Days       int
	Scale      float64 // TotalHits / paper total, for rescaling labels
	HitsByDay  []int64
	BytesByDay []int64
	// HourlyByComplex[name][utcHour] = average hits in that hour per day.
	HourlyByComplex map[string][24]float64
	// ResponseByRegion[region][day-1] = home-page response seconds on a
	// 28.8 modem.
	ResponseByRegion map[routing.Region][]float64
	GeoBreakdown     map[routing.Region]int64
	ComplexBreakdown map[string]int64

	// Cache behaviour aggregated over all serving nodes.
	DynamicHits   int64
	DynamicMisses int64
	HitRate       float64
	StaticHits    int64
	Evictions     int64

	PeakMinute           PeakMinute
	SkiJumpMinuteHits    int64   // busiest minute of the day-10 spike hour
	SkiJumpTokyoShare    float64 // fraction of that hour served by Tokyo
	RegenByDay           []int64
	TotalRegens          int64
	FreshnessMeanSec     float64
	FreshnessMaxSec      float64
	Availability         float64
	Outages              int64
	Rejected             int64
	CachePeakBytesSingle int64
	CacheItemsSingle     int
	PagesTotal           int
	WallClock            time.Duration
}

// multiStore broadcasts DUP remedies to every complex's cache group — the
// paper's "distributed updated pages to each of the UP's serving the
// Internet", across all sites.
type multiStore struct {
	groups []*cache.Group
}

func (m multiStore) ApplyPut(obj *cache.Object) {
	for _, g := range m.groups {
		g.BroadcastPut(obj)
	}
}

func (m multiStore) ApplyInvalidate(key cache.Key) int {
	n := 0
	for _, g := range m.groups {
		n += g.BroadcastInvalidate(key)
	}
	return n
}

func (m multiStore) ApplyInvalidatePrefix(prefix string) int {
	n := 0
	for _, g := range m.groups {
		n += g.BroadcastInvalidatePrefix(prefix)
	}
	return n
}

// topology returns the four-site layout with backbone distances chosen so
// geography dominates the primary/secondary advertisement spread.
func topology() []struct {
	Name string
	Dist map[routing.Region]int
} {
	return []struct {
		Name string
		Dist map[routing.Region]int
	}{
		{"tokyo", map[routing.Region]int{routing.RegionJapan: 10, routing.RegionAsia: 20, routing.RegionUS: 80, routing.RegionEurope: 90, routing.RegionOther: 60}},
		{"schaumburg", map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 50, routing.RegionJapan: 80, routing.RegionAsia: 70, routing.RegionOther: 50}},
		{"columbus", map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 50, routing.RegionJapan: 90, routing.RegionAsia: 80, routing.RegionOther: 50}},
		{"bethesda", map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 48, routing.RegionJapan: 90, routing.RegionAsia: 80, routing.RegionOther: 50}},
	}
}

type runner struct {
	cfg    Config
	rng    *rand.Rand
	master *db.DB
	engine *core.Engine
	site   *site.Site
	model  *workload.Model
	router *routing.Router

	complexes map[string]*cluster.Complex
	names     []string

	addrRR int

	freshness stats.Summary
	ledger    cluster.Ledger

	minuteMax     PeakMinute
	minuteCounts  [60]int64 // reused per hour
	uniformMinute []float64
	spikyMinute   []float64
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 1
	}
	if cfg.NodesPerFrame <= 0 {
		cfg.NodesPerFrame = 4
	}
	if cfg.USCongestion < 1 {
		cfg.USCongestion = 1
	}

	r := &runner{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	r.master = db.New("nagano-master")

	// DUP engine over a store spanning every complex.
	graph := odg.New()
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}

	r.complexes = make(map[string]*cluster.Complex)
	var groups []*cache.Group
	var err error
	// Construction order: the engine is the site's dependency registrar,
	// so it must exist first; its generator and conservative mapper close
	// over the site pointer, bound below (late binding breaks the cycle).
	store := &multiStore{}
	var opts []core.Option
	switch cfg.Policy {
	case core.PolicyInvalidate:
		opts = []core.Option{core.WithPolicy(core.PolicyInvalidate)}
	case core.PolicyConservative:
		opts = []core.Option{
			core.WithPolicy(core.PolicyConservative),
			core.WithConservativeMapper(func(id odg.NodeID) []string {
				return st.ConservativeMapper(id)
			}),
		}
	case core.PolicyHybrid:
		// Hotness observed on one representative serving cache: a page
		// requested at least HybridHotHits times is regenerated eagerly.
		opts = []core.Option{
			core.WithGenerator(gen),
			core.WithPolicy(core.PolicyHybrid),
			core.WithHotOracle(func(key cache.Key) bool {
				if len(r.names) == 0 {
					return true
				}
				c := r.complexes[r.names[0]].Caches.Members()[0]
				return c.HitCount(key) >= HybridHotHits
			}),
		}
	default:
		opts = []core.Option{core.WithGenerator(gen)}
	}
	r.engine = core.NewEngine(graph, store, opts...)
	st, err = site.Build(cfg.SiteSpec, r.master, r.engine)
	if err != nil {
		return nil, err
	}
	r.site = st
	// Incremental propagation: rebuild affected pages by splicing cached
	// fragment bytes instead of re-rendering each fragment under every page.
	r.engine.SetAssembler(st.Engine)

	statics := st.Statics()
	for _, tp := range topology() {
		cx := cluster.NewComplex(cluster.Config{
			Name:          tp.Name,
			Frames:        cfg.Frames,
			NodesPerFrame: cfg.NodesPerFrame,
			Generator:     gen,
			Version:       r.master.LSN,
			Statics:       statics,
		})
		r.complexes[tp.Name] = cx
		r.names = append(r.names, tp.Name)
		groups = append(groups, cx.Caches)
	}
	store.groups = groups

	r.router = routing.NewRouter(routing.NumAddresses)
	for _, tp := range topology() {
		r.router.AddComplex(tp.Name, r.complexes[tp.Name], tp.Dist)
	}
	if err := r.router.AdvertiseSpread(r.names, 10, 20); err != nil {
		return nil, err
	}

	r.model = workload.New(workload.Config{
		Seed:      cfg.Seed + 1,
		Days:      cfg.SiteSpec.Days,
		TotalHits: cfg.TotalHits,
		Spikes:    cfg.Spikes,
	}, st)

	// Prime every cache: the paper pre-rendered and distributed all
	// dynamic pages, so the site opened warm.
	logf("prerendering %d pages into %d complexes", len(st.Pages()), len(r.names))
	if err := st.PrerenderAll(r.master.LSN(), func(o *cache.Object) {
		store.ApplyPut(o)
	}); err != nil {
		return nil, err
	}
	for _, cx := range r.complexes {
		for _, c := range cx.Caches.Members() {
			c.ResetCounters()
		}
	}

	r.buildMinuteWeights()
	return r.mainLoop(start, logf)
}

func (r *runner) buildMinuteWeights() {
	r.uniformMinute = make([]float64, 60)
	r.spikyMinute = make([]float64, 60)
	var us, ss float64
	for m := 0; m < 60; m++ {
		r.uniformMinute[m] = 1
		us++
		d := float64(m - 30)
		w := 1 + 1.2*math.Exp(-d*d/120)
		r.spikyMinute[m] = w
		ss += w
	}
	for m := 0; m < 60; m++ {
		r.uniformMinute[m] /= us
		r.spikyMinute[m] /= ss
	}
}

type failureAction struct {
	apply func()
}

func (r *runner) mainLoop(start time.Time, logf func(string, ...any)) (*Result, error) {
	cfg := r.cfg
	days := cfg.SiteSpec.Days
	res := &Result{
		Days:             days,
		Scale:            float64(cfg.TotalHits) / (workload.TotalPaperHits * 1e6),
		HitsByDay:        make([]int64, days),
		BytesByDay:       make([]int64, days),
		HourlyByComplex:  make(map[string][24]float64),
		ResponseByRegion: make(map[routing.Region][]float64),
		GeoBreakdown:     make(map[routing.Region]int64),
		ComplexBreakdown: make(map[string]int64),
		RegenByDay:       make([]int64, days),
		PagesTotal:       len(r.site.Pages()),
	}
	hourlyAccum := make(map[string]*[24]float64)
	for _, n := range r.names {
		hourlyAccum[n] = &[24]float64{}
	}
	for _, rg := range r.model.Regions() {
		res.ResponseByRegion[rg] = make([]float64, days)
	}

	// Failure schedule: (day, hour) -> actions.
	schedule := make(map[[2]int][]failureAction)
	for _, f := range cfg.Failures {
		f := f
		cx := r.complexes[f.Complex]
		if cx == nil {
			return nil, fmt.Errorf("sim: failure references unknown complex %q", f.Complex)
		}
		add := func(day, hour int, fn func()) {
			k := [2]int{day, hour}
			schedule[k] = append(schedule[k], failureAction{apply: fn})
		}
		name := f.Complex
		switch f.Kind {
		case FailNode:
			node := cx.Frames[0].Nodes[0]
			add(f.Day, f.Hour, func() { node.Fail(); cx.Advise() })
			add(recoverAt(f, days)[0], recoverAt(f, days)[1], func() {
				node.Recover()
				cx.Advise()
				// The router may have marked the complex down if this was
				// its last healthy node; recovery re-advertises.
				r.router.SetComplexUp(name, true)
				r.reprime(cx, node)
			})
		case FailFrame:
			fi := f.Frame
			if fi < 0 || fi >= len(cx.Frames) {
				fi = 0
			}
			add(f.Day, f.Hour, func() { cx.FailFrame(fi) })
			add(recoverAt(f, days)[0], recoverAt(f, days)[1], func() {
				cx.RecoverFrame(fi)
				r.router.SetComplexUp(name, true)
				r.reprime(cx, cx.Frames[fi].Nodes...)
			})
		case FailComplex:
			add(f.Day, f.Hour, func() { cx.FailAll() })
			add(recoverAt(f, days)[0], recoverAt(f, days)[1], func() {
				cx.RecoverAll()
				r.router.SetComplexUp(name, true)
				r.reprime(cx, cx.Nodes()...)
			})
		}
	}

	prevHits, prevMisses := r.dynamicCounters()
	var rejected int64

	for day := 1; day <= days; day++ {
		if day > 1 {
			tx, err := r.site.SetCurrentDay(day)
			if err != nil {
				return nil, err
			}
			r.propagate(tx, day)
		}
		// Editorial desk: publish the day's stories through the morning,
		// plus a handful of classified photographs of yesterday's medal
		// winners.
		for _, sn := range r.model.StoriesForDay(day) {
			tx, err := r.site.PublishNews(sn, fmt.Sprintf("Day %d story %d", day, sn), "Reported from Nagano.")
			if err != nil {
				return nil, err
			}
			r.propagate(tx, day)
		}
		for p := 0; p < 5; p++ {
			athlete := r.site.AthleteIDs[r.rng.Intn(len(r.site.AthleteIDs))]
			tx, err := r.site.PublishPhoto(day*10+p, "athlete:"+athlete, fmt.Sprintf("Day %d photo %d", day, p))
			if err != nil {
				return nil, err
			}
			r.propagate(tx, day)
		}
		// Result schedule for the day, grouped by hour.
		compsByHour := make(map[int][]workload.Completion)
		for _, c := range r.model.CompletionsForDay(day) {
			compsByHour[c.UTCHour] = append(compsByHour[c.UTCHour], c)
		}

		dayStartHits, dayStartMisses := prevHits, prevMisses
		for hour := 0; hour < 24; hour++ {
			for _, act := range schedule[[2]int{day, hour}] {
				act.apply()
			}
			// Results arriving this hour: partial updates then the final.
			for _, comp := range compsByHour[hour] {
				ev := comp.Event
				for p := 0; p < cfg.PartialsPerEvent; p++ {
					leader := ev.Participants[(p*5)%len(ev.Participants)]
					tx, err := r.site.RecordPartial(ev, leader, fmt.Sprintf("%d.%02d", 200+p, p))
					if err != nil {
						return nil, err
					}
					r.propagate(tx, day)
				}
				g, s, b := podium(ev, r.rng)
				tx, err := r.site.RecordResult(ev, g, s, b, fmt.Sprintf("%d.%d", 240+ev.Num, ev.Num))
				if err != nil {
					return nil, err
				}
				r.propagate(tx, day)
			}

			// Client traffic.
			spiked := r.model.SpikeMultiplier(day, hour) > 1
			minuteW := r.uniformMinute
			if spiked {
				minuteW = r.spikyMinute
			}
			for m := range r.minuteCounts {
				r.minuteCounts[m] = 0
			}
			var hourHits, hourTokyo int64
			hourErrors := int64(0)
			for _, region := range r.model.Regions() {
				n := r.model.HitsForHour(day, hour, region)
				for i := int64(0); i < n; i++ {
					page := r.model.SamplePage(r.rng, day, region)
					addr := routing.Address(r.addrRR % r.router.NumAddrs())
					r.addrRR++
					obj, _, complexName, err := r.router.RequestVia(region, addr, page)
					if err != nil {
						hourErrors++
						rejected++
						continue
					}
					res.HitsByDay[day-1]++
					res.BytesByDay[day-1] += int64(len(obj.Value))
					res.GeoBreakdown[region]++
					res.ComplexBreakdown[complexName]++
					hourlyAccum[complexName][hour]++
					hourHits++
					if complexName == "tokyo" {
						hourTokyo++
					}
					mi := sampleIndex(r.rng, minuteW)
					r.minuteCounts[mi]++
				}
			}
			// Peak-minute bookkeeping.
			for m, c := range r.minuteCounts {
				if c > r.minuteMax.Hits {
					r.minuteMax = PeakMinute{Day: day, Hour: hour, Minute: m, Hits: c}
				}
			}
			if day == 10 && spiked && hourHits > 0 {
				var best int64
				for _, c := range r.minuteCounts {
					if c > best {
						best = c
					}
				}
				res.SkiJumpMinuteHits = best
				res.SkiJumpTokyoShare = float64(hourTokyo) / float64(hourHits)
			}
			r.ledger.Record(hourErrors == 0)
		}

		// End-of-day response-time measurement (figure 22).
		hits, misses := r.dynamicCounters()
		dayMissShare := missShare(hits-dayStartHits, misses-dayStartMisses)
		prevHits, prevMisses = hits, misses
		for ri, region := range r.model.Regions() {
			congestion := 1.0 + 0.035*float64((day+ri)%4)
			if region == routing.RegionUS && day >= 7 && day <= 9 {
				congestion *= cfg.USCongestion
			}
			serverTime := 2*time.Millisecond + time.Duration(dayMissShare*float64(40*time.Millisecond))
			ft := netsim.FetchTime(netsim.Modem288(), netsim.HomePage1998(), serverTime, congestion)
			res.ResponseByRegion[region][day-1] = ft.Seconds()
		}
		regenSoFar := r.engine.Stats().Updated + r.engine.Stats().Invalidated
		res.RegenByDay[day-1] = regenSoFar - sum64(res.RegenByDay[:day-1])
		logf("day %2d: hits=%8d regens=%6d missShare=%.4f", day, res.HitsByDay[day-1], res.RegenByDay[day-1], dayMissShare)
	}

	// Final aggregation.
	hits, misses := r.dynamicCounters()
	res.DynamicHits, res.DynamicMisses = hits, misses
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	for _, cx := range r.complexes {
		res.Evictions += cx.Caches.AggregateStats().Evictions
	}
	for name, acc := range hourlyAccum {
		var avg [24]float64
		for h := 0; h < 24; h++ {
			avg[h] = acc[h] / float64(days)
		}
		res.HourlyByComplex[name] = avg
	}
	res.PeakMinute = r.minuteMax
	es := r.engine.Stats()
	res.TotalRegens = es.Updated + es.Invalidated
	res.FreshnessMeanSec = r.freshness.Mean()
	res.FreshnessMaxSec = r.freshness.Max()
	res.Availability = r.ledger.Availability()
	res.Outages = r.ledger.Outages()
	res.Rejected = rejected
	// Single-copy cache footprint: one serving node's cache (they all hold
	// the same set under update-in-place).
	one := r.complexes[r.names[0]].Caches.Members()[0]
	res.CachePeakBytesSingle = one.PeakBytes()
	res.CacheItemsSingle = one.Len()
	res.WallClock = time.Since(start)
	return res, nil
}

// reprime copies the current page set from a warm peer cache into the
// recovered nodes' cold caches — the operational warm-up the paper's
// trigger-monitor distribution made routine, without which hot pages would
// miss until traffic re-faulted them in.
func (r *runner) reprime(cx *cluster.Complex, nodes ...*cluster.Node) {
	if r.cfg.NoReprimeOnRecovery {
		return
	}
	var src *cache.Cache
	for _, name := range r.names {
		for _, c := range r.complexes[name].Caches.Members() {
			if c.Len() > 0 {
				src = c
				break
			}
		}
		if src != nil {
			break
		}
	}
	if src == nil {
		return
	}
	for _, n := range nodes {
		dst, ok := cx.Caches.Get(n.Name())
		if !ok || dst == src {
			continue
		}
		for _, k := range src.Keys() {
			if o, ok := src.Peek(k); ok {
				dst.Put(o.Copy())
			}
		}
	}
}

// propagate maps a committed transaction through the site's indexer into
// one DUP propagation, and records the end-to-end freshness latency
// (replication to the farthest complex plus rendering and distribution).
func (r *runner) propagate(tx db.Transaction, day int) {
	if tx.LSN == 0 {
		return
	}
	var changed []odg.NodeID
	seen := make(map[odg.NodeID]struct{})
	for _, c := range tx.Changes {
		for _, id := range r.site.Indexer(c) {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				changed = append(changed, id)
			}
		}
	}
	pres := r.engine.OnChange(tx.LSN, changed...)
	pages := pres.Updated + pres.Invalidated
	// Freshness model: master->complex replication (chained shipping to
	// the US east coast dominates) + render + distribution.
	const replicationSec = 5.0
	lat := replicationSec + 0.03 + 0.002*float64(pages)
	r.freshness.Observe(lat)
}

func (r *runner) dynamicCounters() (hits, misses int64) {
	for _, cx := range r.complexes {
		agg := cx.Caches.AggregateStats()
		hits += agg.Hits
		misses += agg.Misses
	}
	return hits, misses
}

func recoverAt(f Failure, days int) [2]int {
	h := f.Hour + f.DurationHours
	d := f.Day + h/24
	h %= 24
	if d > days {
		d, h = days, 23
	}
	return [2]int{d, h}
}

func podium(ev *site.Event, rng *rand.Rand) (g, s, b string) {
	n := len(ev.Participants)
	if n == 0 {
		return "", "", ""
	}
	if n < 3 {
		// Degenerate toy events: reuse participants rather than spinning
		// looking for three distinct ones.
		return ev.Participants[0], ev.Participants[n-1], ev.Participants[0]
	}
	i := rng.Intn(n)
	j := (i + 1 + rng.Intn(max(n-1, 1))) % n
	k := (j + 1 + rng.Intn(max(n-1, 1))) % n
	if j == i {
		j = (i + 1) % n
	}
	for k == i || k == j {
		k = (k + 1) % n
	}
	return ev.Participants[i], ev.Participants[j], ev.Participants[k]
}

func sampleIndex(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func missShare(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(misses) / float64(hits+misses)
}

func sum64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
