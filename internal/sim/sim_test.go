package sim

import (
	"testing"

	"dupserve/internal/core"
	"dupserve/internal/routing"
	"dupserve/internal/site"
	"dupserve/internal/workload"
)

// smallConfig runs a 4-day toy games quickly.
func smallConfig(policy core.Policy) Config {
	spec := site.Spec{
		Sports: 3, EventsPerSport: 4, Athletes: 120, Countries: 8,
		NewsStories: 20, Days: 4, EventsPerAthlete: 1, Languages: []string{"en"},
	}
	return Config{
		Seed:             7,
		SiteSpec:         spec,
		TotalHits:        40_000,
		Policy:           policy,
		Frames:           1,
		NodesPerFrame:    2,
		PartialsPerEvent: 3,
		USCongestion:     1.6,
		Spikes:           []workload.Spike{{Day: 2, UTCHour: 8, Multiplier: 2.5, Name: "test-spike"}},
	}
}

func TestRunProducesAllSeries(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	if res.Days != 4 || len(res.HitsByDay) != 4 || len(res.BytesByDay) != 4 || len(res.RegenByDay) != 4 {
		t.Fatalf("series lengths wrong: %+v", res)
	}
	var total int64
	for _, h := range res.HitsByDay {
		if h <= 0 {
			t.Fatalf("day with no hits: %v", res.HitsByDay)
		}
		total += h
	}
	// Rounding and region/hour quantization lose a little volume.
	if total < 30_000 || total > 45_000 {
		t.Fatalf("total hits = %d, want ~40000", total)
	}
	for _, b := range res.BytesByDay {
		if b <= 0 {
			t.Fatal("day with no bytes")
		}
	}
	if len(res.HourlyByComplex) != 4 {
		t.Fatalf("complex series = %d", len(res.HourlyByComplex))
	}
	for _, rg := range []routing.Region{routing.RegionUS, routing.RegionJapan} {
		if len(res.ResponseByRegion[rg]) != 4 {
			t.Fatalf("response series missing for %s", rg)
		}
	}
	if res.PagesTotal == 0 || res.CacheItemsSingle == 0 {
		t.Fatal("cache accounting empty")
	}
}

func TestUpdateInPlaceHitRateNear100(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "cache hit rates of close to 100%".
	if res.HitRate < 0.99 {
		t.Fatalf("hit rate = %.4f, want >= 0.99", res.HitRate)
	}
	if res.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 (no replacement ever ran)", res.Evictions)
	}
}

func TestPolicyOrderingMatchesPaper(t *testing.T) {
	update, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	inval, err := Run(smallConfig(core.PolicyInvalidate))
	if err != nil {
		t.Fatal(err)
	}
	conserv, err := Run(smallConfig(core.PolicyConservative))
	if err != nil {
		t.Fatal(err)
	}
	if !(update.HitRate > inval.HitRate && inval.HitRate > conserv.HitRate) {
		t.Fatalf("hit rates: update=%.4f invalidate=%.4f conservative=%.4f, want strict ordering",
			update.HitRate, inval.HitRate, conserv.HitRate)
	}
	// The 1996-vs-1998 contrast: conservative clearly below, update ~100%.
	if conserv.HitRate > 0.97 {
		t.Fatalf("conservative hit rate = %.4f, expected visibly degraded", conserv.HitRate)
	}
}

func TestDailyShapePeakDay(t *testing.T) {
	cfg := smallConfig(core.PolicyUpdateInPlace)
	cfg.SiteSpec.Days = 8
	cfg.TotalHits = 60_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 20 shape: day 7 is the maximum of the first 8 days.
	peak, peakDay := int64(0), 0
	for d, h := range res.HitsByDay {
		if h > peak {
			peak, peakDay = h, d+1
		}
	}
	if peakDay != 7 {
		t.Fatalf("peak day = %d, want 7 (%v)", peakDay, res.HitsByDay)
	}
}

func TestGeoBreakdownShape(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	us := res.GeoBreakdown[routing.RegionUS]
	jp := res.GeoBreakdown[routing.RegionJapan]
	eu := res.GeoBreakdown[routing.RegionEurope]
	if !(us > jp && jp > eu) {
		t.Fatalf("geo breakdown out of shape: %v", res.GeoBreakdown)
	}
	// Japanese traffic lands on Tokyo.
	if res.ComplexBreakdown["tokyo"] == 0 {
		t.Fatalf("tokyo served nothing: %v", res.ComplexBreakdown)
	}
}

func TestFailuresStillFullyAvailable(t *testing.T) {
	cfg := smallConfig(core.PolicyUpdateInPlace)
	cfg.Failures = []Failure{
		{Day: 1, Hour: 5, Complex: "columbus", Kind: FailNode, DurationHours: 2},
		{Day: 2, Hour: 3, Complex: "schaumburg", Kind: FailFrame, DurationHours: 2},
		{Day: 3, Hour: 6, Complex: "bethesda", Kind: FailComplex, DurationHours: 3},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Elegant degradation: the site never went down and no request was
	// rejected despite node, frame and complex failures.
	if res.Availability != 1 {
		t.Fatalf("availability = %.4f, want 1.0", res.Availability)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", res.Rejected)
	}
	if res.Outages != 0 {
		t.Fatalf("outages = %d", res.Outages)
	}
}

func TestUnknownFailureComplexErrors(t *testing.T) {
	cfg := smallConfig(core.PolicyUpdateInPlace)
	cfg.Failures = []Failure{{Day: 1, Hour: 0, Complex: "atlantis", Kind: FailNode, DurationHours: 1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for unknown complex")
	}
}

func TestUSCongestionBlipsResponse(t *testing.T) {
	cfg := smallConfig(core.PolicyUpdateInPlace)
	cfg.SiteSpec.Days = 10
	cfg.TotalHits = 50_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	us := res.ResponseByRegion[routing.RegionUS]
	jp := res.ResponseByRegion[routing.RegionJapan]
	// Days 7-9 must be visibly worse for the US than its neighbours...
	if !(us[7] > us[5]*1.2) {
		t.Fatalf("US day 8 = %.2fs vs day 6 = %.2fs, want a clear blip", us[7], us[5])
	}
	// ...while Japan stays flat through the same days (external cause).
	if jp[7] > jp[5]*1.1 {
		t.Fatalf("Japan blipped too: day 8 = %.2fs vs day 6 = %.2fs", jp[7], jp[5])
	}
}

func TestFreshnessWithinPaperBound(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	if res.FreshnessMaxSec <= 0 {
		t.Fatal("no freshness samples")
	}
	// "reflecting current events within a maximum of sixty seconds".
	if res.FreshnessMaxSec > 60 {
		t.Fatalf("freshness max = %.1fs, want <= 60", res.FreshnessMaxSec)
	}
}

func TestRegensHappen(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRegens == 0 {
		t.Fatal("no regenerations")
	}
	var sum int64
	for _, x := range res.RegenByDay {
		sum += x
	}
	if sum != res.TotalRegens {
		t.Fatalf("RegenByDay sum %d != total %d", sum, res.TotalRegens)
	}
}

func TestSpikeProducesPeakMinute(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakMinute.Hits == 0 {
		t.Fatal("no peak minute recorded")
	}
	if res.PeakMinute.Day != 2 || res.PeakMinute.Hour != 8 {
		t.Fatalf("peak minute at day %d hour %d, want spike hour (day 2, hour 8)",
			res.PeakMinute.Day, res.PeakMinute.Hour)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.HitsByDay {
		if a.HitsByDay[d] != b.HitsByDay[d] || a.BytesByDay[d] != b.BytesByDay[d] {
			t.Fatalf("runs diverged on day %d", d+1)
		}
	}
	if a.HitRate != b.HitRate || a.PeakMinute != b.PeakMinute {
		t.Fatal("summary stats diverged")
	}
}

func TestHybridPolicyHitRateBetweenUpdateAndInvalidate(t *testing.T) {
	update, err := Run(smallConfig(core.PolicyUpdateInPlace))
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Run(smallConfig(core.PolicyHybrid))
	if err != nil {
		t.Fatal(err)
	}
	inval, err := Run(smallConfig(core.PolicyInvalidate))
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid misses only on cold pages: at or below pure update-in-place,
	// at or above pure invalidation, and much less regeneration work than
	// updating everything.
	if hybrid.HitRate > update.HitRate+1e-9 || hybrid.HitRate < inval.HitRate-1e-9 {
		t.Fatalf("hybrid %.4f not between update %.4f and invalidate %.4f",
			hybrid.HitRate, update.HitRate, inval.HitRate)
	}
	if hybrid.TotalRegens >= update.TotalRegens {
		t.Fatalf("hybrid regens %d not below update-all %d", hybrid.TotalRegens, update.TotalRegens)
	}
}
