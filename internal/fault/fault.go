// Package fault makes failure a first-class, injectable input to the
// propagation pipeline. The paper's availability story — the Nagano site
// stayed up through node deaths and WAN hiccups because every layer had a
// remedy (Network Dispatcher eviction, MSIRP failover, trigger-monitor
// restart) — is only believable if failures can be produced on demand and
// the remedies observed to hold. An Injector is that producer.
//
// Determinism is the design constraint: a chaos run must be byte-for-byte
// reproducible across invocations with the same seed, yet fault decisions
// are consulted from many goroutines (per-node cache pushes iterate a map,
// monitors race replicators). A sequential seeded RNG would make decisions
// depend on goroutine interleaving, so the Injector instead hashes
// (seed, kind, identity-key) into a uniform [0,1) value and compares it to
// the armed rate. The same identity always gets the same verdict no matter
// when — or on which goroutine — it is evaluated.
//
// Injection points cover every stage of the committed-transaction path:
//
//   - KindReplication: log-shipping link partitions (db.Replicator holds
//     delivery while the link is partitioned, then catches up);
//   - KindMonitorCrash: trigger-monitor crashes mid-batch (the monitor
//     checkpoints LastLSN and the supervisor restarts it, replaying the
//     CDC log from the checkpoint);
//   - KindPush: per-node cache push failures (cache.Group retries with
//     backoff and downgrades to an invalidation on exhaustion — a miss,
//     never a stale hit);
//   - KindRender: page regeneration errors (core invalidates instead of
//     leaving a known-stale page cached);
//   - KindNode: serving-node deaths (the dispatcher's advisors evict the
//     node; scenarios report these via CountInjected).
package fault

import (
	"fmt"
	"sync"

	"dupserve/internal/stats"
)

// Kind identifies an injection point in the pipeline.
type Kind uint8

const (
	// KindReplication partitions a master->replica log-shipping link.
	KindReplication Kind = iota
	// KindMonitorCrash crashes a trigger monitor before it propagates a
	// batch.
	KindMonitorCrash
	// KindPush fails a single node's cache push within a broadcast.
	KindPush
	// KindRender fails a page regeneration.
	KindRender
	// KindNode kills a serving node.
	KindNode
	// NumKinds is the number of fault kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	"replication", "monitor-crash", "push", "render", "node",
}

// String names the kind.
func (k Kind) String() string {
	if k >= NumKinds {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// Kinds returns every fault kind in pipeline order.
func Kinds() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Config seeds an Injector.
type Config struct {
	// Seed drives every fault decision. Two injectors with the same seed
	// and the same identity keys make identical decisions.
	Seed int64
}

// Option configures an Injector.
type Option func(*Injector)

// WithRate arms kind k at probability p at construction time.
func WithRate(k Kind, p float64) Option {
	return func(i *Injector) { i.SetRate(k, p) }
}

// Injector is a deterministic, seeded source of fault decisions. Safe for
// concurrent use. All kinds start disarmed (rate 0): an idle injector wired
// through the whole pipeline injects nothing.
type Injector struct {
	seed int64

	mu         sync.RWMutex
	rates      [NumKinds]float64
	budgets    [NumKinds]int64
	hasBudget  [NumKinds]bool
	partitions map[string]bool

	injected [NumKinds]stats.Counter
}

// New returns an Injector with every kind disarmed.
func New(cfg Config, opts ...Option) *Injector {
	i := &Injector{seed: cfg.Seed, partitions: make(map[string]bool)}
	for _, o := range opts {
		o(i)
	}
	return i
}

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 { return i.seed }

// SetRate arms (p > 0) or disarms (p <= 0) fault kind k. p is a probability
// in [0, 1]; p >= 1 faults every evaluated identity.
func (i *Injector) SetRate(k Kind, p float64) {
	if k >= NumKinds {
		return
	}
	if p < 0 {
		p = 0
	}
	i.mu.Lock()
	i.rates[k] = p
	i.mu.Unlock()
}

// Rate returns the armed probability for kind k.
func (i *Injector) Rate(k Kind) float64 {
	if k >= NumKinds {
		return 0
	}
	i.mu.RLock()
	defer i.mu.RUnlock()
	return i.rates[k]
}

// ClearRates disarms every kind and removes any budgets (partitions are
// separate; see SetPartition).
func (i *Injector) ClearRates() {
	i.mu.Lock()
	for k := range i.rates {
		i.rates[k] = 0
		i.budgets[k] = 0
		i.hasBudget[k] = false
	}
	i.mu.Unlock()
}

// SetBudget caps how many times kind k may fire through Should: after n
// true verdicts the kind stops firing even while its rate stays armed.
// Deterministic scenarios use rate 1 plus a budget of 1 to fault *exactly
// one* identity regardless of evaluation order. A negative n removes the
// budget. The budget gates Should only — Decide and Burst stay pure, so
// retry loops that re-evaluate an identity (cache push bursts) are
// unaffected.
func (i *Injector) SetBudget(k Kind, n int64) {
	if k >= NumKinds {
		return
	}
	i.mu.Lock()
	if n < 0 {
		i.budgets[k] = 0
		i.hasBudget[k] = false
	} else {
		i.budgets[k] = n
		i.hasBudget[k] = true
	}
	i.mu.Unlock()
}

// consumeBudget reports whether kind k may fire, decrementing its budget if
// one is set.
func (i *Injector) consumeBudget(k Kind) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.hasBudget[k] {
		return true
	}
	if i.budgets[k] <= 0 {
		return false
	}
	i.budgets[k]--
	return true
}

// Decide reports whether the fault of kind k fires for the given identity
// key. It is pure — no counters move — so retry loops can re-evaluate the
// same identity; use Should when one evaluation should also count as one
// injection. The decision depends only on (seed, kind, key, rate), never on
// evaluation order.
func (i *Injector) Decide(k Kind, key string) bool {
	rate := i.Rate(k)
	if rate <= 0 {
		return false
	}
	return unit(i.seed, k, key) < rate
}

// Should is Decide plus accounting and budgeting: a true verdict consumes
// one unit of the kind's budget (if set) and increments the kind's
// injection counter.
func (i *Injector) Should(k Kind, key string) bool {
	if !i.Decide(k, key) {
		return false
	}
	if !i.consumeBudget(k) {
		return false
	}
	i.injected[k].Inc()
	return true
}

// Burst returns how many consecutive attempts should fail for a faulted
// identity: 0 when the fault does not fire, otherwise a deterministic value
// in [1, max]. Retry remedies consult it so that some faults clear within
// the retry budget and some exhaust it — both paths stay exercised.
func (i *Injector) Burst(k Kind, key string, max int) int {
	if max < 1 {
		max = 1
	}
	if !i.Decide(k, key) {
		return 0
	}
	return 1 + int(mix(i.seed^0x7f4a7c15, k, key)%uint64(max))
}

// CountInjected records n injections of kind k that were performed by the
// scenario itself rather than decided by the injector (e.g. a scheduled
// node death).
func (i *Injector) CountInjected(k Kind, n int64) {
	if k < NumKinds {
		i.injected[k].Add(n)
	}
}

// Injected returns how many faults of kind k have fired.
func (i *Injector) Injected(k Kind) int64 {
	if k >= NumKinds {
		return 0
	}
	return i.injected[k].Value()
}

// SetPartition opens (on=true) or heals (on=false) a named replication
// link. Opening a healthy link counts one KindReplication injection.
func (i *Injector) SetPartition(link string, on bool) {
	i.mu.Lock()
	was := i.partitions[link]
	if on {
		i.partitions[link] = true
	} else {
		delete(i.partitions, link)
	}
	i.mu.Unlock()
	if on && !was {
		i.injected[KindReplication].Inc()
	}
}

// Partitioned reports whether the named link is currently partitioned.
func (i *Injector) Partitioned(link string) bool {
	i.mu.RLock()
	defer i.mu.RUnlock()
	return i.partitions[link]
}

// PartitionCheck returns a closure suitable for db.WithPartitionCheck: it
// reports whether the named link is partitioned right now.
func (i *Injector) PartitionCheck(link string) func() bool {
	return func() bool { return i.Partitioned(link) }
}

// RegisterMetrics publishes per-kind injection counters as the
// fault_injected_total family, labeled by kind.
func (i *Injector) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	for _, k := range Kinds() {
		labels := stats.Labels{"kind": k.String()}
		for key, v := range extra {
			labels[key] = v
		}
		reg.RegisterCounter("fault_injected_total",
			"faults injected into the propagation pipeline", labels, &i.injected[k])
	}
}

// unit hashes (seed, kind, key) to a uniform float64 in [0, 1).
func unit(seed int64, k Kind, key string) float64 {
	return float64(mix(seed, k, key)>>11) / float64(1<<53)
}

// mix is an FNV-1a pass over the identity folded through splitmix64, giving
// well-distributed 64-bit values even for near-identical keys.
func mix(seed int64, k Kind, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(seed)
	h *= prime64
	h ^= uint64(k) + 1
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
