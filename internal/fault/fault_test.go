package fault

import (
	"errors"
	"fmt"
	"testing"

	"dupserve/internal/cache"
	"dupserve/internal/core"
)

func TestDecideIsDeterministicAndOrderIndependent(t *testing.T) {
	a := New(Config{Seed: 42}, WithRate(KindPush, 0.5))
	b := New(Config{Seed: 42}, WithRate(KindPush, 0.5))
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("node%d|/page/%d|v%d", i%4, i, i)
	}
	// a evaluates forward, b backward: verdicts must still agree per key.
	got := make(map[string]bool)
	for _, k := range keys {
		got[k] = a.Decide(KindPush, k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if b.Decide(KindPush, k) != got[k] {
			t.Fatalf("verdict for %q depends on evaluation order", k)
		}
	}
	// Re-evaluation is stable.
	for _, k := range keys {
		if a.Decide(KindPush, k) != got[k] {
			t.Fatalf("verdict for %q changed on re-evaluation", k)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1}, WithRate(KindRender, 0.5))
	b := New(Config{Seed: 2}, WithRate(KindRender, 0.5))
	diff := 0
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.Decide(KindRender, k) != b.Decide(KindRender, k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical verdicts on 500 keys")
	}
}

func TestRateBounds(t *testing.T) {
	i := New(Config{Seed: 9})
	for n := 0; n < 100; n++ {
		if i.Decide(KindPush, fmt.Sprint(n)) {
			t.Fatal("disarmed kind fired")
		}
	}
	i.SetRate(KindPush, 1)
	for n := 0; n < 100; n++ {
		if !i.Decide(KindPush, fmt.Sprint(n)) {
			t.Fatal("rate 1 did not fire")
		}
	}
	i.ClearRates()
	if i.Decide(KindPush, "x") {
		t.Fatal("ClearRates left the kind armed")
	}
}

func TestRateIsRoughlyCalibrated(t *testing.T) {
	i := New(Config{Seed: 1998}, WithRate(KindPush, 0.3))
	fired := 0
	const n = 10000
	for k := 0; k < n; k++ {
		if i.Decide(KindPush, fmt.Sprintf("id-%d", k)) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("armed at 0.3, fired %.3f of identities", frac)
	}
}

func TestShouldCountsDecideDoesNot(t *testing.T) {
	i := New(Config{Seed: 3}, WithRate(KindRender, 1))
	i.Decide(KindRender, "a")
	if i.Injected(KindRender) != 0 {
		t.Fatal("Decide moved the counter")
	}
	i.Should(KindRender, "a")
	i.Should(KindRender, "b")
	if got := i.Injected(KindRender); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
}

func TestBurstBoundsAndDeterminism(t *testing.T) {
	i := New(Config{Seed: 5}, WithRate(KindPush, 1))
	seen := make(map[int]bool)
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("b-%d", k)
		b := i.Burst(KindPush, key, 4)
		if b < 1 || b > 4 {
			t.Fatalf("burst = %d, want [1,4]", b)
		}
		if b != i.Burst(KindPush, key, 4) {
			t.Fatalf("burst for %q not deterministic", key)
		}
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Fatalf("bursts never varied: %v", seen)
	}
	i.SetRate(KindPush, 0)
	if i.Burst(KindPush, "b-0", 4) != 0 {
		t.Fatal("disarmed burst should be 0")
	}
}

func TestPartitions(t *testing.T) {
	i := New(Config{Seed: 7})
	link := "master->tokyo"
	if i.Partitioned(link) {
		t.Fatal("link born partitioned")
	}
	check := i.PartitionCheck(link)
	i.SetPartition(link, true)
	if !i.Partitioned(link) || !check() {
		t.Fatal("partition not visible")
	}
	// Re-opening an already-open link is not a second injection.
	i.SetPartition(link, true)
	if got := i.Injected(KindReplication); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
	i.SetPartition(link, false)
	if i.Partitioned(link) || check() {
		t.Fatal("heal not visible")
	}
}

func TestPushHookBurstThenRecovers(t *testing.T) {
	i := New(Config{Seed: 11}, WithRate(KindPush, 1))
	hook := i.PushHook("tokyo")
	obj := &cache.Object{Key: "/p", Version: 3}
	// With rate 1 every identity faults; the burst bounds how many leading
	// attempts fail, and attempts past the burst succeed.
	var failed int
	for attempt := 1; attempt <= 8; attempt++ {
		if err := hook("up0", obj, attempt); err != nil {
			var inj ErrInjected
			if !errors.As(err, &inj) || inj.Kind != KindPush {
				t.Fatalf("unexpected error %v", err)
			}
			if attempt != failed+1 {
				t.Fatalf("failures not consecutive: attempt %d failed after %d failures", attempt, failed)
			}
			failed++
		}
	}
	if failed < 1 || failed > 4 {
		t.Fatalf("burst length = %d, want [1,4]", failed)
	}
	if err := hook("up0", obj, failed+1); err != nil {
		t.Fatal("attempt past the burst should succeed")
	}
}

func TestGeneratorFaultsAndPassesThrough(t *testing.T) {
	i := New(Config{Seed: 13})
	calls := 0
	inner := core.Generator(func(key cache.Key, version int64) (*cache.Object, error) {
		calls++
		return &cache.Object{Key: key, Version: version}, nil
	})
	gen := i.Generator("tokyo", inner)
	if _, err := gen("/p", 1); err != nil || calls != 1 {
		t.Fatalf("disarmed generator: err=%v calls=%d", err, calls)
	}
	i.SetRate(KindRender, 1)
	if _, err := gen("/p", 2); err == nil {
		t.Fatal("armed render fault did not fire")
	}
	if calls != 1 {
		t.Fatal("faulted render still invoked inner generator")
	}
	if i.Injected(KindRender) != 1 {
		t.Fatalf("injected = %d", i.Injected(KindRender))
	}
}

func TestCrashHookGenerationIndependence(t *testing.T) {
	i := New(Config{Seed: 17}, WithRate(KindMonitorCrash, 0.5))
	// Across many LSNs, generation 0 and generation 1 must not make
	// identical decisions — otherwise a restarted monitor replaying the
	// same batch would crash forever.
	h0 := i.CrashHook("tokyo", 0)
	h1 := i.CrashHook("tokyo", 1)
	diff := 0
	for lsn := int64(1); lsn <= 200; lsn++ {
		if h0(lsn) != h1(lsn) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("generations 0 and 1 decide identically")
	}
}

func TestFlakyStoreDowngradesToInvalidation(t *testing.T) {
	inner := cache.New("n0")
	inj := New(Config{Seed: 19})
	var s core.Store = &FlakyStore{Inner: inner, Inj: inj, Site: "tokyo"}

	stale := &cache.Object{Key: "/p", Value: []byte("old"), Version: 1}
	s.ApplyPut(stale)
	if _, ok := inner.Peek("/p"); !ok {
		t.Fatal("healthy put did not land")
	}

	inj.SetRate(KindPush, 1)
	s.ApplyPut(&cache.Object{Key: "/p", Value: []byte("new"), Version: 2})
	if _, ok := inner.Peek("/p"); ok {
		t.Fatal("faulted put left a (stale) entry cached")
	}
	fs := s.(*FlakyStore)
	if fs.Downgrades() != 1 {
		t.Fatalf("downgrades = %d, want 1", fs.Downgrades())
	}

	// Invalidations never fault.
	s.ApplyPut(stale) // faulted again, no entry
	inner.Put(&cache.Object{Key: "/q", Value: []byte("x")})
	if n := s.ApplyInvalidate("/q"); n != 1 {
		t.Fatalf("invalidate = %d, want 1", n)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" || k.String() == fmt.Sprintf("kind(%d)", uint8(k)) {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if Kind(250).String() != "kind(250)" {
		t.Fatal("out-of-range kind string")
	}
}
