package fault

import (
	"fmt"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/stats"
)

// ErrInjected wraps every synthetic failure an Injector produces, so logs
// and tests can distinguish injected faults from organic ones.
type ErrInjected struct {
	Kind Kind
	Key  string
}

// Error implements error.
func (e ErrInjected) Error() string {
	return fmt.Sprintf("fault: injected %s failure (%s)", e.Kind, e.Key)
}

// PushHook returns a cache.PutHook that fails per-node pushes. site
// namespaces decisions so complexes with identically named nodes fault
// independently. The identity of a push is (site, node, key, version):
// re-broadcasts of a newer version of the same page are fresh coin flips,
// while retries of the same push see a deterministic failure burst — the
// injector's Burst decides how many attempts fail, so some pushes recover
// within the retry budget and some exhaust it and degrade to invalidation.
func (i *Injector) PushHook(site string) cache.PutHook {
	return func(node string, obj *cache.Object, attempt int) error {
		id := site + "|" + node + "|" + string(obj.Key) + "|" + fmt.Sprint(obj.Version)
		burst := i.Burst(KindPush, id, 4)
		if burst == 0 || attempt > burst {
			return nil
		}
		if attempt == 1 {
			i.CountInjected(KindPush, 1)
		}
		return ErrInjected{Kind: KindPush, Key: id}
	}
}

// Generator wraps a core.Generator with render faults: a faulted
// (key, version) pair fails regeneration, which core remedies by
// invalidating the object — the cache serves a miss, never a stale page.
func (i *Injector) Generator(site string, gen core.Generator) core.Generator {
	return func(key cache.Key, version int64) (*cache.Object, error) {
		id := site + "|" + string(key) + "|" + fmt.Sprint(version)
		if i.Should(KindRender, id) {
			return nil, ErrInjected{Kind: KindRender, Key: id}
		}
		return gen(key, version)
	}
}

// CrashHook returns a trigger-monitor crash decision function. generation
// is the monitor's restart count: it is folded into the identity so a
// restarted monitor replaying the same batch (same LSN) gets a fresh
// decision instead of deterministically crashing forever.
func (i *Injector) CrashHook(site string, generation int) func(lsn int64) bool {
	return func(lsn int64) bool {
		id := fmt.Sprintf("%s|g%d|lsn%d", site, generation, lsn)
		return i.Should(KindMonitorCrash, id)
	}
}

// FlakyStore decorates any core.Store with push faults at the store level:
// a faulted put is downgraded to an invalidation of the same key, so the
// inner store can transiently miss but can never serve a page the pipeline
// knows is stale. It satisfies core.Store, composing with SingleCache-style
// direct stores, groups, and other decorators.
type FlakyStore struct {
	Inner core.Store
	Inj   *Injector
	// Site namespaces fault decisions (may be empty).
	Site string

	downgrades stats.Counter
}

// ApplyPut implements core.Store: install the object, or — under an
// injected push fault — invalidate it instead.
func (s *FlakyStore) ApplyPut(obj *cache.Object) {
	id := s.Site + "|" + string(obj.Key) + "|" + fmt.Sprint(obj.Version)
	if s.Inj != nil && s.Inj.Should(KindPush, id) {
		s.Inner.ApplyInvalidate(obj.Key)
		s.downgrades.Inc()
		return
	}
	s.Inner.ApplyPut(obj)
}

// ApplyInvalidate implements core.Store (invalidations never fault: the
// degraded path must stay reliable).
func (s *FlakyStore) ApplyInvalidate(key cache.Key) int {
	return s.Inner.ApplyInvalidate(key)
}

// ApplyInvalidatePrefix implements core.Store.
func (s *FlakyStore) ApplyInvalidatePrefix(prefix string) int {
	return s.Inner.ApplyInvalidatePrefix(prefix)
}

// Downgrades returns how many puts this store downgraded to invalidations.
func (s *FlakyStore) Downgrades() int64 { return s.downgrades.Value() }
