// Package netsim models the client-side network path used in the paper's
// response-time measurements (section 5, figure 22 and tables 1-2).
//
// The paper measured "time to access the home page" from 28.8 Kbps modems
// in several countries. At modem speeds the response time is dominated by
// the transfer itself: a home page of H bytes plus its embedded objects,
// each costing TCP/HTTP round trips, moving through a pipe whose effective
// throughput is the modem rate times a protocol-efficiency factor. Server
// time matters only when a site is slow to generate pages — which is
// exactly the contrast the tables draw between the cache-served Olympics
// site and conventional dynamic sites.
//
// The model is deterministic: given a link, a page, a server time, and a
// congestion factor, FetchTime always returns the same duration. The
// simulator layers day-by-day congestion (the US days 7-9 blip) on top.
package netsim

import (
	"math"
	"math/rand"
	"time"
)

// LinkSpec describes a client access link.
type LinkSpec struct {
	// DownKbps is the nominal downstream rate in kilobits/second.
	DownKbps float64
	// RTT is the round-trip time between client and server.
	RTT time.Duration
	// Efficiency is the fraction of nominal bandwidth achieved after
	// protocol overhead (TCP slow start, PPP framing); 0 < Efficiency <= 1.
	Efficiency float64
}

// Modem288 returns the paper's measurement link: a 28.8 Kbps modem with a
// typical dial-up ISP round trip.
func Modem288() LinkSpec {
	return LinkSpec{DownKbps: 28.8, RTT: 150 * time.Millisecond, Efficiency: 0.92}
}

// LAN returns a fast local link (used to show that "for clients
// communicating via fast links, response times were nearly instantaneous").
func LAN() LinkSpec {
	return LinkSpec{DownKbps: 10_000, RTT: 2 * time.Millisecond, Efficiency: 0.9}
}

// FrameDelay returns the one-way time for a frame of n bytes to cross the
// link: half a round trip of propagation plus serialization at effective
// bandwidth. The wire transport uses it to shape its frames when a
// deployment wants the propagation plane to feel like the paper's WAN hops
// (Nagano to Schaumburg) instead of loopback.
func FrameDelay(link LinkSpec, n int) time.Duration {
	eff := link.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	bps := link.DownKbps * 1000 * eff
	if bps <= 1 {
		bps = 1
	}
	if n < 0 {
		n = 0
	}
	return link.RTT/2 + time.Duration(float64(n*8)/bps*float64(time.Second))
}

// PageSpec describes a fetched page: total payload bytes and the number of
// HTTP objects composing it (HTML plus embedded images). Each object costs
// connection round trips under HTTP/1.0-era behaviour.
type PageSpec struct {
	Bytes   int
	Objects int
}

// HomePage1998 approximates the Nagano home page: rich (figure 13) but
// engineered for modem delivery — roughly 45 KB across 8 objects.
func HomePage1998() PageSpec { return PageSpec{Bytes: 45 * 1024, Objects: 8} }

// rttsPerObject is the round trips each object costs: TCP connect plus
// HTTP request/response (HTTP/1.0, no keep-alive — the 1998 norm).
const rttsPerObject = 2

// FetchTime returns the time for a client on link to fetch page from a
// server that spends serverTime producing each object, under a congestion
// multiplier (1 = clear network; 2 = half effective bandwidth and double
// queueing delay). It never returns a negative duration; degenerate inputs
// (zero bandwidth) yield a very large but finite time.
func FetchTime(link LinkSpec, page PageSpec, serverTime time.Duration, congestion float64) time.Duration {
	if congestion < 1 {
		congestion = 1
	}
	eff := link.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	bps := link.DownKbps * 1000 * eff / congestion
	if bps <= 1 {
		bps = 1
	}
	objects := page.Objects
	if objects < 1 {
		objects = 1
	}
	// Per-object setup cost: round trips inflated by congestion (queueing).
	setup := time.Duration(float64(link.RTT) * rttsPerObject * congestion * float64(objects))
	transfer := time.Duration(float64(page.Bytes*8) / bps * float64(time.Second))
	server := time.Duration(objects) * serverTime
	return setup + transfer + server
}

// TransmitRate returns the effective throughput in Kbps that the paper's
// tables report: total payload bits divided by the full fetch time.
func TransmitRate(page PageSpec, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(page.Bytes*8) / 1000 / total.Seconds()
}

// SiteProfile describes a measured web site for the table 1/2 comparisons.
type SiteProfile struct {
	Name string
	// Page is the site's home page composition.
	Page PageSpec
	// ServerTime is per-object server-side latency. The cache-served
	// Olympics site is near zero; conventional dynamic sites are tens to
	// hundreds of milliseconds.
	ServerTime time.Duration
	// PathCongestion models how loaded the route between a typical client
	// and the site is (>= 1).
	PathCongestion float64
}

// Measurement is one row of the paper's tables 1 and 2.
type Measurement struct {
	Site         string
	MeanResponse float64 // seconds
	TransmitRate float64 // Kbps
}

// Measure fetches the site's home page over the link and reports the
// table-style row.
func Measure(link LinkSpec, site SiteProfile) Measurement {
	t := FetchTime(link, site.Page, site.ServerTime, site.PathCongestion)
	return Measurement{
		Site:         site.Name,
		MeanResponse: t.Seconds(),
		TransmitRate: TransmitRate(site.Page, t),
	}
}

// SampledMeasurement extends Measurement with spread across repeated
// fetches — the paper's tables are means over a day of measurements, not
// single probes.
type SampledMeasurement struct {
	Measurement
	Samples int
	StdDev  float64 // seconds
	Min     float64
	Max     float64
}

// MeasureSamples fetches the site n times with deterministic multiplicative
// congestion jitter (seeded), reporting mean, spread, and the mean
// effective transmit rate. jitter is the fractional amplitude (0.15 = ±15%
// around the configured PathCongestion).
func MeasureSamples(link LinkSpec, site SiteProfile, n int, jitter float64, seed int64) SampledMeasurement {
	if n < 1 {
		n = 1
	}
	if jitter < 0 {
		jitter = 0
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq, min, max float64
	for i := 0; i < n; i++ {
		c := site.PathCongestion * (1 + jitter*(2*rng.Float64()-1))
		if c < 1 {
			c = 1
		}
		t := FetchTime(link, site.Page, site.ServerTime, c).Seconds()
		sum += t
		sumSq += t * t
		if i == 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return SampledMeasurement{
		Measurement: Measurement{
			Site:         site.Name,
			MeanResponse: mean,
			TransmitRate: TransmitRate(site.Page, time.Duration(mean*float64(time.Second))),
		},
		Samples: n,
		StdDev:  math.Sqrt(variance),
		Min:     min,
		Max:     max,
	}
}
