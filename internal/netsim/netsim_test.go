package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestModemHomePageInPaperRange(t *testing.T) {
	// The paper's Olympics rows: mean response 16-19s, transmit rate
	// 22-26 Kbps on a 28.8 modem. Our model must land in that band for the
	// cache-served (near-zero server time) case.
	m := Measure(Modem288(), SiteProfile{
		Name:           "olympics",
		Page:           HomePage1998(),
		ServerTime:     2 * time.Millisecond,
		PathCongestion: 1,
	})
	if m.MeanResponse < 14 || m.MeanResponse > 21 {
		t.Fatalf("response = %.2fs, want 14-21s", m.MeanResponse)
	}
	if m.TransmitRate < 17 || m.TransmitRate > 27 {
		t.Fatalf("rate = %.2f Kbps, want 17-27", m.TransmitRate)
	}
}

func TestFastLinkNearlyInstant(t *testing.T) {
	// "For clients communicating with the Internet via fast links,
	// response times were nearly instantaneous."
	ft := FetchTime(LAN(), HomePage1998(), 2*time.Millisecond, 1)
	if ft > time.Second {
		t.Fatalf("LAN fetch = %v, want < 1s", ft)
	}
}

func TestServerTimeSeparatesSites(t *testing.T) {
	link := Modem288()
	fast := Measure(link, SiteProfile{Name: "cached", Page: HomePage1998(), ServerTime: 2 * time.Millisecond, PathCongestion: 1})
	slow := Measure(link, SiteProfile{Name: "cgi", Page: HomePage1998(), ServerTime: 400 * time.Millisecond, PathCongestion: 1})
	if slow.MeanResponse <= fast.MeanResponse+2 {
		t.Fatalf("slow site %.2fs not clearly slower than fast site %.2fs", slow.MeanResponse, fast.MeanResponse)
	}
	if slow.TransmitRate >= fast.TransmitRate {
		t.Fatal("slow site should show lower effective transmit rate")
	}
}

func TestCongestionSlowsFetch(t *testing.T) {
	link := Modem288()
	page := HomePage1998()
	clear := FetchTime(link, page, 0, 1)
	congested := FetchTime(link, page, 0, 2)
	if congested <= clear {
		t.Fatal("congestion had no effect")
	}
	// Congestion below 1 is clamped to 1.
	if FetchTime(link, page, 0, 0.1) != clear {
		t.Fatal("congestion < 1 not clamped")
	}
}

func TestFetchTimeDegenerateInputs(t *testing.T) {
	// Zero bandwidth must not divide by zero or go negative.
	ft := FetchTime(LinkSpec{DownKbps: 0, RTT: 0, Efficiency: 0}, PageSpec{Bytes: 100, Objects: 0}, 0, 1)
	if ft <= 0 {
		t.Fatalf("degenerate fetch = %v", ft)
	}
}

func TestTransmitRateZeroDuration(t *testing.T) {
	if TransmitRate(HomePage1998(), 0) != 0 {
		t.Fatal("zero duration should yield zero rate")
	}
	if TransmitRate(HomePage1998(), -time.Second) != 0 {
		t.Fatal("negative duration should yield zero rate")
	}
}

func TestTransmitRateConsistency(t *testing.T) {
	// rate * time == bits, by definition.
	page := PageSpec{Bytes: 36000, Objects: 4}
	d := 10 * time.Second
	rate := TransmitRate(page, d)
	bits := rate * 1000 * d.Seconds()
	if math.Abs(bits-float64(page.Bytes*8)) > 1 {
		t.Fatalf("rate inconsistency: %v bits vs %v", bits, page.Bytes*8)
	}
}

// Property: fetch time is monotone in page size, server time, and
// congestion.
func TestFetchTimeMonotoneProperty(t *testing.T) {
	f := func(extraKB uint8, extraServerMS uint8, extraCongestion uint8) bool {
		link := Modem288()
		base := PageSpec{Bytes: 10_000, Objects: 4}
		bigger := PageSpec{Bytes: base.Bytes + int(extraKB)*1024, Objects: 4}
		t0 := FetchTime(link, base, 0, 1)
		if FetchTime(link, bigger, 0, 1) < t0 {
			return false
		}
		if FetchTime(link, base, time.Duration(extraServerMS)*time.Millisecond, 1) < t0 {
			return false
		}
		if FetchTime(link, base, 0, 1+float64(extraCongestion)/16) < t0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMoreObjectsCostMoreSetup(t *testing.T) {
	link := Modem288()
	few := FetchTime(link, PageSpec{Bytes: 40000, Objects: 2}, 0, 1)
	many := FetchTime(link, PageSpec{Bytes: 40000, Objects: 20}, 0, 1)
	if many <= few {
		t.Fatal("object count had no setup cost")
	}
}

func BenchmarkFetchTime(b *testing.B) {
	link := Modem288()
	page := HomePage1998()
	for i := 0; i < b.N; i++ {
		FetchTime(link, page, 2*time.Millisecond, 1.2)
	}
}

func TestMeasureSamplesSpread(t *testing.T) {
	site := SiteProfile{Name: "s", Page: HomePage1998(), ServerTime: 2 * time.Millisecond, PathCongestion: 1.2}
	m := MeasureSamples(Modem288(), site, 200, 0.15, 7)
	if m.Samples != 200 {
		t.Fatalf("samples = %d", m.Samples)
	}
	if m.StdDev <= 0 {
		t.Fatal("no spread with jitter enabled")
	}
	if m.Min > m.MeanResponse || m.Max < m.MeanResponse {
		t.Fatalf("mean %.2f outside [%.2f, %.2f]", m.MeanResponse, m.Min, m.Max)
	}
	// Deterministic for a seed.
	m2 := MeasureSamples(Modem288(), site, 200, 0.15, 7)
	if m.MeanResponse != m2.MeanResponse || m.StdDev != m2.StdDev {
		t.Fatal("non-deterministic sampling")
	}
	// Zero jitter collapses the spread.
	m3 := MeasureSamples(Modem288(), site, 50, 0, 7)
	if m3.StdDev != 0 {
		t.Fatalf("stddev = %v with zero jitter", m3.StdDev)
	}
	// Degenerate n.
	m4 := MeasureSamples(Modem288(), site, 0, 0.1, 7)
	if m4.Samples != 1 {
		t.Fatalf("n clamp failed: %d", m4.Samples)
	}
}
