package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStripedMatchesSingleLockReference drives an identical randomized op
// stream — Put, Get, Invalidate, GetStale, InvalidatePrefix, Clear —
// through a striped cache and a single-shard (single-lock) reference, and
// requires every observable result and the final state to match exactly.
// Striping must be a pure concurrency optimization with no semantic drift.
func TestStripedMatchesSingleLockReference(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	striped := New("striped", WithShards(8), WithStaleRetention(), WithClock(now))
	ref := New("ref", WithShards(1), WithStaleRetention(), WithClock(now))

	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 40)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("/en/p%02d", i))
	}
	version := int64(0)
	for op := 0; op < 20000; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2: // Put
			version++
			val := []byte(fmt.Sprintf("%s@%d", k, version))
			a := striped.Put(&Object{Key: k, Value: val, Version: version, StoredAt: clock})
			b := ref.Put(&Object{Key: k, Value: val, Version: version, StoredAt: clock})
			if a != b {
				t.Fatalf("op %d: Put(%s) fresh=%v, ref %v", op, k, a, b)
			}
		case 3: // Invalidate
			a := striped.Invalidate(k)
			b := ref.Invalidate(k)
			if a != b {
				t.Fatalf("op %d: Invalidate(%s) = %v, ref %v", op, k, a, b)
			}
		case 4: // GetStale within budget
			ao, aage, aok := striped.GetStale(k, time.Minute)
			bo, bage, bok := ref.GetStale(k, time.Minute)
			if aok != bok || aage != bage || (aok && ao.Version != bo.Version) {
				t.Fatalf("op %d: GetStale(%s) = (%v,%v,%v), ref (%v,%v,%v)",
					op, k, ao, aage, aok, bo, bage, bok)
			}
		case 5: // InvalidatePrefix
			p := fmt.Sprintf("/en/p%d", rng.Intn(4))
			a := striped.InvalidatePrefix(p)
			b := ref.InvalidatePrefix(p)
			if a != b {
				t.Fatalf("op %d: InvalidatePrefix(%s) = %d, ref %d", op, p, a, b)
			}
		case 6: // time advances (staleness decays)
			clock = clock.Add(time.Duration(rng.Intn(20)) * time.Second)
		case 7:
			if rng.Intn(50) == 0 { // rare full clear
				a := striped.Clear()
				b := ref.Clear()
				if a != b {
					t.Fatalf("op %d: Clear() = %d, ref %d", op, a, b)
				}
			}
		default: // Get
			ao, aok := striped.Get(k)
			bo, bok := ref.Get(k)
			if aok != bok || (aok && (ao.Version != bo.Version || string(ao.Value) != string(bo.Value))) {
				t.Fatalf("op %d: Get(%s) = (%v,%v), ref (%v,%v)", op, k, ao, aok, bo, bok)
			}
		}
	}

	// Final state identical: same keys, same stats (modulo nothing — the op
	// streams were identical, so even counters must agree).
	sa, sb := striped.Stats(), ref.Stats()
	if sa != sb {
		t.Fatalf("final stats diverge:\nstriped %+v\nref     %+v", sa, sb)
	}
	ka, kb := striped.Keys(), ref.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("key count %d, ref %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key[%d] = %s, ref %s", i, ka[i], kb[i])
		}
	}
	if striped.StaleLen() != ref.StaleLen() {
		t.Fatalf("stale len %d, ref %d", striped.StaleLen(), ref.StaleLen())
	}
}

// TestStripedTorture hammers one striped cache from many goroutines with
// overlapping keys — gets, puts, invalidations, warm-style peer copies,
// prefix invalidations and stats reads — and checks structural invariants
// the whole way: a Get hit always returns the object stored under that key,
// versions returned for a key never regress below the floor established by
// a completed Put, and the cache's byte accounting ends exactly consistent
// with its contents. Run under -race this is the striping memory-safety
// proof.
func TestStripedTorture(t *testing.T) {
	c := New("torture", WithShards(8), WithStaleRetention())
	const (
		workers = 8
		iters   = 4000
		nkeys   = 16
	)
	keys := make([]Key, nkeys)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("/p%02d", i))
	}
	// floor[i] is a version known to be fully Put for keys[i]; a later Get
	// may see a newer version but never an older one once the floor is set
	// (Invalidate clears the floor first, so the invariant stays sound).
	var floor [nkeys]atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				ki := rng.Intn(nkeys)
				k := keys[ki]
				switch rng.Intn(8) {
				case 0, 1: // Put a strictly newer version
					v := floor[ki].Load() + 1 + int64(rng.Intn(3))
					c.Put(&Object{Key: k, Value: []byte(fmt.Sprintf("%s@%d", k, v)), Version: v})
					// Raise the floor only if nobody raced past us.
					for {
						cur := floor[ki].Load()
						if v <= cur || floor[ki].CompareAndSwap(cur, v) {
							break
						}
					}
				case 2: // Invalidate: clear the floor before dropping the entry
					floor[ki].Store(0)
					c.Invalidate(k)
				case 3: // warm-style peer copy (recovery Warmer discipline)
					if obj, ok := c.Peek(k); ok {
						c.Put(obj.Copy())
					}
				case 4:
					c.GetStale(k, time.Minute)
				case 5:
					if rng.Intn(100) == 0 {
						c.InvalidatePrefix("/p0")
						for j := range keys {
							if j < 10 { // "/p00".."/p09" share the prefix
								floor[j].Store(0)
							}
						}
					} else {
						_ = c.Stats()
						_ = c.Len()
					}
				default:
					if obj, ok := c.Get(k); ok {
						if obj.Key != k {
							t.Errorf("Get(%s) returned object for %s", k, obj.Key)
							return
						}
						want := fmt.Sprintf("%s@%d", k, obj.Version)
						if string(obj.Value) != want {
							t.Errorf("Get(%s) torn object: version %d value %q", k, obj.Version, obj.Value)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiescent consistency: byte gauge equals the sum of live objects, and
	// every key is findable through the shard it hashes to.
	var sum int64
	for _, k := range c.Keys() {
		obj, ok := c.Peek(k)
		if !ok {
			t.Fatalf("Keys() listed %s but Peek missed", k)
		}
		sum += obj.Size()
	}
	st := c.Stats()
	if st.Bytes != sum {
		t.Fatalf("byte gauge %d, live objects sum to %d", st.Bytes, sum)
	}
	if st.Items != len(c.Keys()) {
		t.Fatalf("Items %d, Keys %d", st.Items, len(c.Keys()))
	}
}

// TestShardDistribution sanity-checks the stripe hash: across a realistic
// page population every shard of a 64-way cache gets some keys (no dead or
// pathologically hot stripes).
func TestShardDistribution(t *testing.T) {
	c := New("dist", WithShards(64))
	counts := make([]int, c.ShardCount())
	for i := 0; i < 6400; i++ {
		k := Key(fmt.Sprintf("/en/event%d/results", i))
		counts[c.shardIndex(k)]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no keys", i)
		}
		if n > 400 { // mean is 100; 4x the mean means the hash is broken
			t.Fatalf("shard %d received %d of 6400 keys", i, n)
		}
	}
}
