package cache

import (
	"testing"
)

// FuzzCacheKeyStripe checks the striping function on arbitrary keys:
// shard assignment must be stable (the same key always lands on the same
// shard of the same cache), in range for every shard count, and operations
// on fuzzer-chosen keys must round-trip through the striped table exactly
// like a single-shard cache.
func FuzzCacheKeyStripe(f *testing.F) {
	f.Add("/en/day7/home")
	f.Add("")
	f.Add("/")
	f.Add("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz")
	f.Add("\x00\xff\x80 unicode: é世界")
	f.Fuzz(func(t *testing.T, key string) {
		k := Key(key)
		for _, shards := range []int{1, 2, 8, 64} {
			c := New("fuzz", WithShards(shards))
			if got := c.ShardCount(); got != shards {
				t.Fatalf("ShardCount = %d, want %d", got, shards)
			}
			idx := c.shardIndex(k)
			if idx < 0 || idx >= shards {
				t.Fatalf("shardIndex(%q) = %d with %d shards", key, idx, shards)
			}
			for i := 0; i < 4; i++ {
				if again := c.shardIndex(k); again != idx {
					t.Fatalf("shardIndex(%q) unstable: %d then %d", key, idx, again)
				}
			}
			// Round-trip through the stripe the key hashes to.
			c.Put(&Object{Key: k, Value: []byte("v"), Version: 1})
			obj, ok := c.Get(k)
			if !ok || obj.Key != k {
				t.Fatalf("Get(%q) after Put = (%v, %v) with %d shards", key, obj, ok, shards)
			}
			if !c.Invalidate(k) {
				t.Fatalf("Invalidate(%q) found nothing with %d shards", key, shards)
			}
			if _, ok := c.Get(k); ok {
				t.Fatalf("Get(%q) after Invalidate still hits with %d shards", key, shards)
			}
		}
	})
}

// FuzzShardUniformity feeds the fuzzer-derived key population through a
// 16-way stripe and rejects any input set that collapses onto one shard
// once it is large enough to make that statistically absurd — the hash must
// not be defeated by structured keys (shared prefixes, length patterns).
func FuzzShardUniformity(f *testing.F) {
	f.Add("/en/day", 64)
	f.Add("/results/event", 256)
	f.Fuzz(func(t *testing.T, prefix string, n int) {
		if n < 0 || n > 4096 {
			return
		}
		c := New("fuzz-uniform", WithShards(16))
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			seen[c.shardIndex(Key(prefix+string(rune('a'+i%26))+string(rune('0'+i%10))))] = true
		}
		if n >= 260 && len(seen) < 2 {
			t.Fatalf("%d structured keys with prefix %q all hashed to one shard", n, prefix)
		}
	})
}
