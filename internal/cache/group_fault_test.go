package cache

import (
	"errors"
	"testing"
	"time"
)

// noSleep is a RetryPolicy that retries instantly.
func noSleep(max int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: max,
		Backoff:     time.Microsecond,
		MaxBackoff:  time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
}

func TestBroadcastPutRetriesTransientFailure(t *testing.T) {
	calls := 0
	hook := func(node string, obj *Object, attempt int) error {
		calls++
		if attempt == 1 {
			return errors.New("transient push failure")
		}
		return nil
	}
	g := NewGroup(WithPutHook(hook), WithRetryPolicy(noSleep(3)))
	g.Add(New("n0"))

	fresh := g.BroadcastPut(&Object{Key: "/p", Value: []byte("v2"), Version: 2})
	if fresh != 1 {
		t.Fatalf("fresh = %d, want 1", fresh)
	}
	obj, ok := g.Members()[0].Peek("/p")
	if !ok || obj.Version != 2 {
		t.Fatalf("member state = %v %v, want version 2 cached", ok, obj)
	}
	ps := g.PushStats()
	if ps.Retries < 1 || ps.Failures < 1 || ps.Downgrades != 0 {
		t.Fatalf("push stats = %+v", ps)
	}
	if calls != 2 {
		t.Fatalf("hook calls = %d, want 2 (fail then succeed)", calls)
	}
}

func TestBroadcastPutExhaustionDowngradesToInvalidation(t *testing.T) {
	hook := func(node string, obj *Object, attempt int) error {
		if node == "bad" {
			return errors.New("persistent push failure")
		}
		return nil
	}
	g := NewGroup(WithPutHook(hook), WithRetryPolicy(noSleep(3)))
	bad, good := New("bad"), New("good")
	g.Add(bad)
	g.Add(good)
	// Both members hold the OLD version before the broadcast.
	old := &Object{Key: "/p", Value: []byte("v1"), Version: 1}
	bad.Put(old)
	good.Put(old)

	fresh := g.BroadcastPut(&Object{Key: "/p", Value: []byte("v2"), Version: 2})
	if fresh != 1 {
		t.Fatalf("fresh = %d, want 1 (only the healthy member)", fresh)
	}
	// The failed member must NOT keep its stale copy: downgrade means a
	// future read is a miss, never a stale hit.
	if _, ok := bad.Peek("/p"); ok {
		t.Fatal("exhausted push left the stale entry cached")
	}
	obj, ok := good.Peek("/p")
	if !ok || obj.Version != 2 {
		t.Fatalf("healthy member = %v %v, want fresh", ok, obj)
	}
	ps := g.PushStats()
	if ps.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", ps.Downgrades)
	}
	if ps.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2 (attempts between failures)", ps.Retries)
	}
}

func TestBroadcastPutBackoffDoublesAndCaps(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 5,
		Backoff:     100 * time.Microsecond,
		MaxBackoff:  300 * time.Microsecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	hook := func(node string, obj *Object, attempt int) error {
		return errors.New("always")
	}
	g := NewGroup(WithPutHook(hook), WithRetryPolicy(p))
	g.Add(New("n0"))
	g.BroadcastPut(&Object{Key: "/p", Version: 1})

	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond,
		300 * time.Microsecond, 300 * time.Microsecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestGroupImplementsStoreSemantics(t *testing.T) {
	g := NewGroup()
	g.Add(New("a"))
	g.Add(New("b"))
	g.ApplyPut(&Object{Key: "/x", Value: []byte("v"), Version: 1})
	for _, c := range g.Members() {
		if _, ok := c.Peek("/x"); !ok {
			t.Fatalf("%s missing /x after ApplyPut", c.Name())
		}
	}
	if n := g.ApplyInvalidate("/x"); n != 2 {
		t.Fatalf("ApplyInvalidate = %d, want 2", n)
	}
	g.ApplyPut(&Object{Key: "/pre/a", Version: 1})
	g.ApplyPut(&Object{Key: "/pre/b", Version: 1})
	if n := g.ApplyInvalidatePrefix("/pre/"); n != 4 {
		t.Fatalf("ApplyInvalidatePrefix = %d, want 4", n)
	}
}
