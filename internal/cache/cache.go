// Package cache implements the dynamic-page object cache used by the 1998
// Olympic Games web site (section 2 of the paper).
//
// A Cache stores rendered objects (pages, fragments) keyed by name. It
// supports the two staleness remedies DUP can apply: Invalidate (drop the
// entry; next request regenerates it — the 1996 behaviour) and Put of a
// freshly rendered value over the old one (update-in-place — the 1998
// behaviour that achieved hit rates near 100%, because hot pages are never
// absent from the cache).
//
// The cache keeps byte-accounting with an LRU eviction policy. At Olympic
// scale the paper observes that "the system never had to apply a cache
// replacement algorithm" (all dynamic pages fit in ~175 MB); the eviction
// machinery exists so that the claim is a measured property, not an
// assumption, and Stats.Evictions lets experiments verify it stayed zero.
package cache

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"time"

	"dupserve/internal/stats"
)

// Key names a cached object. dupserve uses the page path ("/en/day7/home").
type Key string

// Object is an immutable cached value. Callers must not modify Value after
// handing it to the cache; Put stores the slice without copying because the
// trigger pipeline renders a fresh buffer per update.
type Object struct {
	Key         Key
	Value       []byte
	ContentType string
	// Version is a monotonically increasing generation number assigned by
	// the writer (the trigger monitor uses the database transaction LSN),
	// letting readers detect which update a page reflects.
	Version int64
	// StoredAt is the (possibly simulated) time the object entered the
	// cache.
	StoredAt time.Time
}

// Size returns the accounted byte size of the object.
func (o *Object) Size() int64 {
	return int64(len(o.Value)) + int64(len(o.Key)) + int64(len(o.ContentType))
}

type entry struct {
	obj  *Object
	el   *list.Element
	hits int64
}

// staleEntry is an invalidated object retained for bounded-staleness
// fallback: the value the cache held just before the invalidation, plus the
// instant it stopped being fresh.
type staleEntry struct {
	obj   *Object
	since time.Time
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Updates       int64 // Puts that replaced an existing entry (update-in-place)
	Invalidations int64
	Evictions     int64
	Items         int
	Bytes         int64
	PeakBytes     int64
}

// HitRate returns hits/(hits+misses), or 0 when no lookups occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a concurrency-safe object cache with optional byte-bounded LRU
// eviction. The zero value is not usable; call New.
type Cache struct {
	name     string
	maxBytes int64 // 0 means unbounded
	now      func() time.Time

	mu    sync.Mutex
	items map[Key]*entry
	lru   *list.List // front = most recently used; values are Key
	// stale holds the last value of invalidated entries when stale
	// retention is on, for overload fallback (GetStale). At most one copy
	// per key; replaced entries and Clear drop it.
	stale map[Key]*staleEntry
	// retainStale enables the stale side-table.
	retainStale bool

	hits          stats.Counter
	misses        stats.Counter
	puts          stats.Counter
	updates       stats.Counter
	invalidations stats.Counter
	evictions     stats.Counter
	bytes         stats.Gauge
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxBytes bounds the cache to maxBytes, evicting least-recently-used
// entries when a Put would exceed it. maxBytes <= 0 means unbounded.
func WithMaxBytes(maxBytes int64) Option {
	return func(c *Cache) { c.maxBytes = maxBytes }
}

// WithClock substitutes the time source (used by the discrete-event
// simulation so StoredAt reflects simulated time).
func WithClock(now func() time.Time) Option {
	return func(c *Cache) { c.now = now }
}

// WithStaleRetention keeps the last value of every invalidated entry in a
// stale side-table, so that an overloaded node can degrade to serving a
// bounded-staleness copy (GetStale) instead of a 503. The stale copy never
// satisfies Get — fresh-path semantics are unchanged — and it is dropped as
// soon as a fresh Put arrives, the freshness budget expires, or the cache
// is cleared (node death loses memory-resident state, stale or not).
func WithStaleRetention() Option {
	return func(c *Cache) { c.retainStale = true }
}

// New returns an empty cache. name appears in diagnostics only.
func New(name string, opts ...Option) *Cache {
	c := &Cache{
		name:  name,
		now:   time.Now,
		items: make(map[Key]*entry),
		lru:   list.New(),
	}
	for _, o := range opts {
		o(c)
	}
	if c.retainStale {
		c.stale = make(map[Key]*staleEntry)
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Get returns the cached object for key, recording a hit or miss. The
// returned object must be treated as read-only.
func (c *Cache) Get(key Key) (*Object, bool) {
	c.mu.Lock()
	e, ok := c.items[key]
	if ok {
		c.lru.MoveToFront(e.el)
		e.hits++
		obj := e.obj
		c.mu.Unlock()
		c.hits.Inc()
		return obj, true
	}
	c.mu.Unlock()
	c.misses.Inc()
	return nil, false
}

// HitCount returns how many times key has been served from this cache
// since it was first inserted (reinsertion via Put preserves the count;
// Invalidate resets it). The hybrid propagation policy uses it as its
// hot-page signal.
func (c *Cache) HitCount(key Key) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		return e.hits
	}
	return 0
}

// Peek returns the cached object without affecting LRU order or hit/miss
// counters. Monitoring code uses it so that diagnostics do not perturb the
// replacement state.
func (c *Cache) Peek(key Key) (*Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return e.obj, true
}

// Contains reports whether key is cached, without touching counters or LRU
// order.
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put inserts or replaces the object stored under obj.Key. Replacing an
// existing entry is the paper's update-in-place: the page never leaves the
// cache, so no request ever misses on it. Returns true if an existing entry
// was replaced.
func (c *Cache) Put(obj *Object) bool {
	if obj.StoredAt.IsZero() {
		obj.StoredAt = c.now()
	}
	c.mu.Lock()
	var replaced bool
	if e, ok := c.items[obj.Key]; ok {
		c.bytes.Add(obj.Size() - e.obj.Size())
		e.obj = obj
		c.lru.MoveToFront(e.el)
		replaced = true
	} else {
		el := c.lru.PushFront(obj.Key)
		c.items[obj.Key] = &entry{obj: obj, el: el}
		c.bytes.Add(obj.Size())
	}
	if c.retainStale {
		delete(c.stale, obj.Key) // fresh value supersedes any retained copy
	}
	evicted := c.evictLocked()
	c.mu.Unlock()

	c.puts.Inc()
	if replaced {
		c.updates.Inc()
	}
	c.evictions.Add(int64(evicted))
	return replaced
}

// evictLocked drops LRU entries until the byte budget is met. Returns the
// number of entries evicted.
func (c *Cache) evictLocked() int {
	if c.maxBytes <= 0 {
		return 0
	}
	n := 0
	for c.bytes.Value() > c.maxBytes && c.lru.Len() > 0 {
		back := c.lru.Back()
		key := back.Value.(Key)
		e := c.items[key]
		c.lru.Remove(back)
		delete(c.items, key)
		c.bytes.Add(-e.obj.Size())
		n++
	}
	return n
}

// Invalidate removes key from the cache, returning true if it was present.
// With stale retention on, the removed value stays reachable via GetStale
// until a fresh Put or its freshness budget expires.
func (c *Cache) Invalidate(key Key) bool {
	c.mu.Lock()
	e, ok := c.items[key]
	if ok {
		c.lru.Remove(e.el)
		delete(c.items, key)
		c.bytes.Add(-e.obj.Size())
		c.retainLocked(e.obj)
	}
	c.mu.Unlock()
	if ok {
		c.invalidations.Inc()
	}
	return ok
}

// retainLocked moves an invalidated object into the stale side-table when
// retention is enabled. Caller holds mu. Repeated invalidations keep the
// earliest since-time: the page has been continuously stale since the first
// update it missed, and the freshness budget must count from there.
func (c *Cache) retainLocked(obj *Object) {
	if !c.retainStale {
		return
	}
	if _, already := c.stale[obj.Key]; already {
		return
	}
	c.stale[obj.Key] = &staleEntry{obj: obj, since: c.now()}
}

// GetStale returns the retained copy of an invalidated entry, provided it
// went stale no longer than maxAge ago — the overload path's bounded
// staleness budget. The second return is how stale the copy is. A retained
// copy past the budget is dropped on the spot and never returned, so a
// caller can never observe staleness beyond maxAge. GetStale touches
// neither the hit/miss counters nor LRU order; fresh-path behaviour is
// unchanged.
func (c *Cache) GetStale(key Key, maxAge time.Duration) (*Object, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	se, ok := c.stale[key]
	if !ok {
		return nil, 0, false
	}
	age := c.now().Sub(se.since)
	if age > maxAge {
		delete(c.stale, key)
		return nil, 0, false
	}
	return se.obj, age, true
}

// StaleLen returns the number of retained stale copies (0 when retention is
// off).
func (c *Cache) StaleLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stale)
}

// InvalidatePrefix removes every key with the given prefix and returns the
// number removed. This is the conservative 1996-style remedy: after a
// database update, drop whole sections of the site ("all ski pages") rather
// than computing the precise affected set.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	var victims []Key
	for k := range c.items {
		if strings.HasPrefix(string(k), prefix) {
			victims = append(victims, k)
		}
	}
	for _, k := range victims {
		e := c.items[k]
		c.lru.Remove(e.el)
		delete(c.items, k)
		c.bytes.Add(-e.obj.Size())
		c.retainLocked(e.obj)
	}
	c.mu.Unlock()
	c.invalidations.Add(int64(len(victims)))
	return len(victims)
}

// ApplyPut implements the DUP store contract (core.Store) directly on a
// single cache: install a freshly generated object.
func (c *Cache) ApplyPut(obj *Object) { c.Put(obj) }

// ApplyInvalidate implements the DUP store contract: remove an object,
// reporting how many replicas held it (0 or 1 for a single cache).
func (c *Cache) ApplyInvalidate(key Key) int {
	if c.Invalidate(key) {
		return 1
	}
	return 0
}

// ApplyInvalidatePrefix implements the DUP store contract: remove every
// object whose key has the prefix.
func (c *Cache) ApplyInvalidatePrefix(prefix string) int {
	return c.InvalidatePrefix(prefix)
}

// Clear removes every entry, counting them as invalidations. Stale-retained
// copies are dropped too: Clear models losing the node's memory-resident
// state, and a rebooted node has nothing to degrade to.
func (c *Cache) Clear() int {
	c.mu.Lock()
	n := len(c.items)
	c.items = make(map[Key]*entry)
	c.lru.Init()
	if c.retainStale {
		c.stale = make(map[Key]*staleEntry)
	}
	c.bytes.Add(-c.bytes.Value())
	c.mu.Unlock()
	c.invalidations.Add(int64(n))
	return n
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the current accounted size of the cache.
func (c *Cache) Bytes() int64 { return c.bytes.Value() }

// PeakBytes returns the largest size the cache ever reached — the number the
// paper reports as "maximum memory required for a single copy of all cached
// objects was around 175 Mbytes".
func (c *Cache) PeakBytes() int64 { return c.bytes.Max() }

// Keys returns all cached keys, sorted.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	out := make([]Key, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	items := len(c.items)
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Puts:          c.puts.Value(),
		Updates:       c.updates.Value(),
		Invalidations: c.invalidations.Value(),
		Evictions:     c.evictions.Value(),
		Items:         items,
		Bytes:         c.bytes.Value(),
		PeakBytes:     c.bytes.Max(),
	}
}

// RegisterMetrics publishes the cache's counters into a registry under a
// node label (plus any extra labels), the thin adapter replacing ad-hoc
// Stats polling. Counter families are shared across caches; each cache is
// one labeled series.
func (c *Cache) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	labels := stats.Labels{"node": c.name}
	for k, v := range extra {
		labels[k] = v
	}
	reg.RegisterCounter("cache_hits_total", "cache lookups served", labels, &c.hits)
	reg.RegisterCounter("cache_misses_total", "cache lookups that missed", labels, &c.misses)
	reg.RegisterCounter("cache_puts_total", "objects stored", labels, &c.puts)
	reg.RegisterCounter("cache_updates_total", "puts that replaced an entry (update-in-place)", labels, &c.updates)
	reg.RegisterCounter("cache_invalidations_total", "entries invalidated", labels, &c.invalidations)
	reg.RegisterCounter("cache_evictions_total", "entries evicted by the LRU", labels, &c.evictions)
	reg.RegisterGauge("cache_bytes", "accounted bytes cached", labels, &c.bytes)
	reg.RegisterFunc("cache_items", "entries cached", labels,
		func() float64 { return float64(c.Len()) })
	reg.RegisterFunc("cache_hit_ratio", "hits/(hits+misses) since start", labels,
		func() float64 { return c.Stats().HitRate() })
}

// ResetCounters zeroes hit/miss/put/invalidation/eviction counters while
// leaving contents intact. Experiments use it to discard warm-up effects.
func (c *Cache) ResetCounters() {
	c.hits.Reset()
	c.misses.Reset()
	c.puts.Reset()
	c.updates.Reset()
	c.invalidations.Reset()
	c.evictions.Reset()
}
