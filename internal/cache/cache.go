// Package cache implements the dynamic-page object cache used by the 1998
// Olympic Games web site (section 2 of the paper).
//
// A Cache stores rendered objects (pages, fragments) keyed by name. It
// supports the two staleness remedies DUP can apply: Invalidate (drop the
// entry; next request regenerates it — the 1996 behaviour) and Put of a
// freshly rendered value over the old one (update-in-place — the 1998
// behaviour that achieved hit rates near 100%, because hot pages are never
// absent from the cache).
//
// # Striping
//
// The cache is lock-striped: keys hash onto N independent shards, each with
// its own mutex, item table, and stale side-table, so concurrent hits on
// different pages never contend on a shared lock. Per-shard counters are
// plain integers mutated under the shard lock and folded into totals at
// Stats()/RegisterMetrics read time — the hit path pays no shared atomic
// traffic at all. Byte accounting is the one global: an atomic gauge keeps
// the exact aggregate (and its high-water mark, the paper's "~175 MB for a
// single copy of all cached objects" figure).
//
// The cache keeps byte-accounting with an LRU eviction policy. At Olympic
// scale the paper observes that "the system never had to apply a cache
// replacement algorithm" (all dynamic pages fit in memory); the eviction
// machinery exists so that the claim is a measured property, not an
// assumption, and Stats.Evictions lets experiments verify it stayed zero.
// A byte-bounded cache therefore defaults to a single shard, preserving the
// exact global LRU order; the unbounded serving configuration — the one the
// paper ran — defaults to 64 shards and keeps no LRU lists at all, because
// nothing will ever be evicted. A bounded cache explicitly configured with
// WithShards splits the budget evenly across shards (per-shard LRU).
package cache

import (
	"container/list"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/stats"
)

// Key names a cached object. dupserve uses the page path ("/en/day7/home").
type Key string

// Object is an immutable cached value. Callers must not modify Value after
// handing it to the cache; Put stores the slice without copying because the
// trigger pipeline renders a fresh buffer per update.
type Object struct {
	Key         Key
	Value       []byte
	ContentType string
	// Version is a monotonically increasing generation number assigned by
	// the writer (the trigger monitor uses the database transaction LSN),
	// letting readers detect which update a page reflects.
	Version int64
	// StoredAt is the (possibly simulated) time the object entered the
	// cache.
	StoredAt time.Time

	// hdr memoizes the pre-serialized response headers for the zero-alloc
	// HTTP hit path; see ResponseHeaders. Never copied by the cache (the
	// group's broadcast copies share Value but re-derive hdr lazily).
	hdr atomic.Pointer[ObjectHeaders]
}

// ObjectHeaders is the pre-serialized response-header material for an
// object: the strings the HTTP layer would otherwise format per request,
// plus ready-made single-value header slices that can be assigned into an
// http.Header without allocating. Built once per object, on first serve.
type ObjectHeaders struct {
	ETag        string
	Version     string
	ETagV       []string // []string{ETag}
	VersionV    []string // []string{Version}
	ContentType []string // []string{obj.ContentType}; nil when empty
}

// ResponseHeaders returns the object's memoized pre-serialized headers,
// building them with build on first call. Concurrent first calls may both
// build; one wins, and both results are equivalent because the object is
// immutable.
func (o *Object) ResponseHeaders(build func(*Object) *ObjectHeaders) *ObjectHeaders {
	if h := o.hdr.Load(); h != nil {
		return h
	}
	h := build(o)
	o.hdr.Store(h)
	return h
}

// Copy returns a new Object sharing the (immutable) Value bytes but with
// its own metadata and no memoized headers. Object cannot be copied by
// value (the header memo is an atomic); every fan-out that needs a
// per-cache Object goes through Copy.
func (o *Object) Copy() *Object {
	return &Object{
		Key:         o.Key,
		Value:       o.Value,
		ContentType: o.ContentType,
		Version:     o.Version,
		StoredAt:    o.StoredAt,
	}
}

// Size returns the accounted byte size of the object.
func (o *Object) Size() int64 {
	return int64(len(o.Value)) + int64(len(o.Key)) + int64(len(o.ContentType))
}

type entry struct {
	obj  *Object
	el   *list.Element // nil in unbounded caches (no LRU bookkeeping)
	hits int64
}

// staleEntry is an invalidated object retained for bounded-staleness
// fallback: the value the cache held just before the invalidation, plus the
// instant it stopped being fresh.
type staleEntry struct {
	obj   *Object
	since time.Time
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Updates       int64 // Puts that replaced an existing entry (update-in-place)
	Invalidations int64
	Evictions     int64
	Items         int
	Bytes         int64
	PeakBytes     int64
}

// HitRate returns hits/(hits+misses), or 0 when no lookups occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// shard is one stripe: an independent item table with its own lock, stale
// side-table, LRU list (bounded caches only), and plain-integer counters
// folded at snapshot time. Padded to a cache line so neighbouring shards'
// locks never false-share.
type shard struct {
	mu    sync.Mutex
	items map[Key]*entry
	lru   *list.List // nil when the cache is unbounded
	// stale holds the last value of invalidated entries when stale
	// retention is on, for overload fallback (GetStale). At most one copy
	// per key; replaced entries and Clear drop it.
	stale map[Key]*staleEntry

	// Counters; mutated under mu, folded at Stats() time.
	hits          int64
	misses        int64
	puts          int64
	updates       int64
	invalidations int64
	evictions     int64
	bytes         int64 // shard-local byte accounting (eviction budget)

	_ [24]byte // pad to a cache-line multiple
}

// Cache is a concurrency-safe, lock-striped object cache with optional
// byte-bounded LRU eviction. The zero value is not usable; call New.
type Cache struct {
	name        string
	maxBytes    int64 // 0 means unbounded
	perShard    int64 // per-shard byte budget (maxBytes/len(shards))
	now         func() time.Time
	seed        maphash.Seed
	shards      []shard
	mask        uint64
	nshards     int // requested via WithShards; 0 = default
	retainStale bool

	bytes stats.Gauge // exact aggregate bytes + high-water mark
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxBytes bounds the cache to maxBytes, evicting least-recently-used
// entries when a Put would exceed it. maxBytes <= 0 means unbounded. A
// bounded cache defaults to a single shard so the LRU order stays global;
// combine with WithShards to trade exact global LRU for concurrency (the
// budget then splits evenly across shards).
func WithMaxBytes(maxBytes int64) Option {
	return func(c *Cache) { c.maxBytes = maxBytes }
}

// WithClock substitutes the time source (used by the discrete-event
// simulation so StoredAt reflects simulated time).
func WithClock(now func() time.Time) Option {
	return func(c *Cache) { c.now = now }
}

// WithStaleRetention keeps the last value of every invalidated entry in a
// stale side-table, so that an overloaded node can degrade to serving a
// bounded-staleness copy (GetStale) instead of a 503. The stale copy never
// satisfies Get — fresh-path semantics are unchanged — and it is dropped as
// soon as a fresh Put arrives, the freshness budget expires, or the cache
// is cleared (node death loses memory-resident state, stale or not).
func WithStaleRetention() Option {
	return func(c *Cache) { c.retainStale = true }
}

// WithShards sets the stripe count, rounded up to a power of two and
// clamped to [1, 4096]. n = 1 reproduces the single-lock layout exactly
// (the pre-stripe baseline the serve benchmark compares against).
func WithShards(n int) Option {
	return func(c *Cache) { c.nshards = n }
}

// DefaultShards is the stripe count of an unbounded cache.
const DefaultShards = 64

// New returns an empty cache. name appears in diagnostics only.
func New(name string, opts ...Option) *Cache {
	c := &Cache{
		name: name,
		now:  time.Now,
		seed: maphash.MakeSeed(),
	}
	for _, o := range opts {
		o(c)
	}
	n := c.nshards
	if n <= 0 {
		if c.maxBytes > 0 {
			n = 1 // bounded: keep the exact global LRU
		} else {
			n = DefaultShards
		}
	}
	if n > 4096 {
		n = 4096
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	c.shards = make([]shard, p)
	c.mask = uint64(p - 1)
	if c.maxBytes > 0 {
		c.perShard = c.maxBytes / int64(p)
		if c.perShard < 1 {
			c.perShard = 1
		}
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.items = make(map[Key]*entry)
		if c.maxBytes > 0 {
			sh.lru = list.New()
		}
		if c.retainStale {
			sh.stale = make(map[Key]*staleEntry)
		}
	}
	return c
}

// shardOf returns the stripe owning key. Single-shard caches skip the hash
// entirely — the pre-stripe baseline pays nothing for the striping seam.
func (c *Cache) shardOf(key Key) *shard {
	if c.mask == 0 {
		return &c.shards[0]
	}
	return &c.shards[maphash.String(c.seed, string(key))&c.mask]
}

// shardIndex exposes the stripe assignment for tests (stability and
// uniformity properties).
func (c *Cache) shardIndex(key Key) int {
	if c.mask == 0 {
		return 0
	}
	return int(maphash.String(c.seed, string(key)) & c.mask)
}

// ShardCount returns the number of stripes.
func (c *Cache) ShardCount() int { return len(c.shards) }

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Get returns the cached object for key, recording a hit or miss. The
// returned object must be treated as read-only.
func (c *Cache) Get(key Key) (*Object, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.items[key]
	if ok {
		if sh.lru != nil {
			sh.lru.MoveToFront(e.el)
		}
		e.hits++
		sh.hits++
		obj := e.obj
		sh.mu.Unlock()
		return obj, true
	}
	sh.misses++
	sh.mu.Unlock()
	return nil, false
}

// HitCount returns how many times key has been served from this cache
// since it was first inserted (reinsertion via Put preserves the count;
// Invalidate resets it). The hybrid propagation policy uses it as its
// hot-page signal.
func (c *Cache) HitCount(key Key) int64 {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		return e.hits
	}
	return 0
}

// Peek returns the cached object without affecting LRU order or hit/miss
// counters. Monitoring code uses it so that diagnostics do not perturb the
// replacement state.
func (c *Cache) Peek(key Key) (*Object, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	return e.obj, true
}

// Contains reports whether key is cached, without touching counters or LRU
// order.
func (c *Cache) Contains(key Key) bool {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.items[key]
	return ok
}

// Put inserts or replaces the object stored under obj.Key. Replacing an
// existing entry is the paper's update-in-place: the page never leaves the
// cache, so no request ever misses on it. Returns true if an existing entry
// was replaced.
func (c *Cache) Put(obj *Object) bool {
	if obj.StoredAt.IsZero() {
		obj.StoredAt = c.now()
	}
	sh := c.shardOf(obj.Key)
	sh.mu.Lock()
	var delta int64
	var replaced bool
	if e, ok := sh.items[obj.Key]; ok {
		delta = obj.Size() - e.obj.Size()
		e.obj = obj
		if sh.lru != nil {
			sh.lru.MoveToFront(e.el)
		}
		replaced = true
	} else {
		e := &entry{obj: obj}
		if sh.lru != nil {
			e.el = sh.lru.PushFront(obj.Key)
		}
		sh.items[obj.Key] = e
		delta = obj.Size()
	}
	if sh.stale != nil {
		delete(sh.stale, obj.Key) // fresh value supersedes any retained copy
	}
	sh.bytes += delta
	evicted := c.evictLocked(sh, &delta)
	sh.puts++
	if replaced {
		sh.updates++
	}
	sh.evictions += int64(evicted)
	sh.mu.Unlock()

	c.bytes.Add(delta)
	return replaced
}

// evictLocked drops LRU entries until the shard's byte budget is met,
// folding the freed bytes into *delta. Returns the number of entries
// evicted. Caller holds sh.mu.
func (c *Cache) evictLocked(sh *shard, delta *int64) int {
	if c.maxBytes <= 0 {
		return 0
	}
	n := 0
	for sh.bytes > c.perShard && sh.lru.Len() > 0 {
		back := sh.lru.Back()
		key := back.Value.(Key)
		e := sh.items[key]
		sh.lru.Remove(back)
		delete(sh.items, key)
		sh.bytes -= e.obj.Size()
		*delta -= e.obj.Size()
		n++
	}
	return n
}

// Invalidate removes key from the cache, returning true if it was present.
// With stale retention on, the removed value stays reachable via GetStale
// until a fresh Put or its freshness budget expires.
func (c *Cache) Invalidate(key Key) bool {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.items[key]
	var size int64
	if ok {
		if sh.lru != nil {
			sh.lru.Remove(e.el)
		}
		delete(sh.items, key)
		size = e.obj.Size()
		sh.bytes -= size
		sh.invalidations++
		c.retainLocked(sh, e.obj)
	}
	sh.mu.Unlock()
	if ok {
		c.bytes.Add(-size)
	}
	return ok
}

// retainLocked moves an invalidated object into the stale side-table when
// retention is enabled. Caller holds the shard's mu. Repeated invalidations
// keep the earliest since-time: the page has been continuously stale since
// the first update it missed, and the freshness budget must count from
// there.
func (c *Cache) retainLocked(sh *shard, obj *Object) {
	if sh.stale == nil {
		return
	}
	if _, already := sh.stale[obj.Key]; already {
		return
	}
	sh.stale[obj.Key] = &staleEntry{obj: obj, since: c.now()}
}

// GetStale returns the retained copy of an invalidated entry, provided it
// went stale no longer than maxAge ago — the overload path's bounded
// staleness budget. The second return is how stale the copy is. A retained
// copy past the budget is dropped on the spot and never returned, so a
// caller can never observe staleness beyond maxAge. GetStale touches
// neither the hit/miss counters nor LRU order; fresh-path behaviour is
// unchanged.
func (c *Cache) GetStale(key Key, maxAge time.Duration) (*Object, time.Duration, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	se, ok := sh.stale[key]
	if !ok {
		return nil, 0, false
	}
	age := c.now().Sub(se.since)
	if age > maxAge {
		delete(sh.stale, key)
		return nil, 0, false
	}
	return se.obj, age, true
}

// StaleLen returns the number of retained stale copies (0 when retention is
// off).
func (c *Cache) StaleLen() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.stale)
		sh.mu.Unlock()
	}
	return n
}

// InvalidatePrefix removes every key with the given prefix and returns the
// number removed. This is the conservative 1996-style remedy: after a
// database update, drop whole sections of the site ("all ski pages") rather
// than computing the precise affected set.
func (c *Cache) InvalidatePrefix(prefix string) int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var victims []Key
		for k := range sh.items {
			if strings.HasPrefix(string(k), prefix) {
				victims = append(victims, k)
			}
		}
		var freed int64
		for _, k := range victims {
			e := sh.items[k]
			if sh.lru != nil {
				sh.lru.Remove(e.el)
			}
			delete(sh.items, k)
			freed += e.obj.Size()
			c.retainLocked(sh, e.obj)
		}
		sh.bytes -= freed
		sh.invalidations += int64(len(victims))
		sh.mu.Unlock()
		c.bytes.Add(-freed)
		total += len(victims)
	}
	return total
}

// ApplyPut implements the DUP store contract (core.Store) directly on a
// single cache: install a freshly generated object.
func (c *Cache) ApplyPut(obj *Object) { c.Put(obj) }

// ApplyInvalidate implements the DUP store contract: remove an object,
// reporting how many replicas held it (0 or 1 for a single cache).
func (c *Cache) ApplyInvalidate(key Key) int {
	if c.Invalidate(key) {
		return 1
	}
	return 0
}

// ApplyInvalidatePrefix implements the DUP store contract: remove every
// object whose key has the prefix.
func (c *Cache) ApplyInvalidatePrefix(prefix string) int {
	return c.InvalidatePrefix(prefix)
}

// Clear removes every entry, counting them as invalidations. Stale-retained
// copies are dropped too: Clear models losing the node's memory-resident
// state, and a rebooted node has nothing to degrade to.
func (c *Cache) Clear() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := len(sh.items)
		freed := sh.bytes
		sh.items = make(map[Key]*entry)
		if sh.lru != nil {
			sh.lru.Init()
		}
		if sh.stale != nil {
			sh.stale = make(map[Key]*staleEntry)
		}
		sh.bytes = 0
		sh.invalidations += int64(n)
		sh.mu.Unlock()
		c.bytes.Add(-freed)
		total += n
	}
	return total
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the current accounted size of the cache.
func (c *Cache) Bytes() int64 { return c.bytes.Value() }

// PeakBytes returns the largest size the cache ever reached — the number the
// paper reports as "maximum memory required for a single copy of all cached
// objects was around 175 Mbytes".
func (c *Cache) PeakBytes() int64 { return c.bytes.Max() }

// Keys returns all cached keys, sorted.
func (c *Cache) Keys() []Key {
	var out []Key
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k := range sh.items {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fold sums the per-shard counters into a Stats snapshot. Each shard is
// locked briefly in turn, so the snapshot is per-shard consistent (the
// cross-shard total may interleave with concurrent traffic, exactly like
// reading a set of independent atomics).
func (c *Cache) fold() Stats {
	var s Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Puts += sh.puts
		s.Updates += sh.updates
		s.Invalidations += sh.invalidations
		s.Evictions += sh.evictions
		s.Items += len(sh.items)
		sh.mu.Unlock()
	}
	s.Bytes = c.bytes.Value()
	s.PeakBytes = c.bytes.Max()
	return s
}

// Stats returns a snapshot of the counters, folded across shards.
func (c *Cache) Stats() Stats { return c.fold() }

// counterFold returns a fold of one per-shard counter for metric
// registration.
func (c *Cache) counterFold(pick func(*shard) int64) func() int64 {
	return func() int64 {
		var n int64
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			n += pick(sh)
			sh.mu.Unlock()
		}
		return n
	}
}

// RegisterMetrics publishes the cache's counters into a registry under a
// node label (plus any extra labels), the thin adapter replacing ad-hoc
// Stats polling. Counter families are shared across caches; each cache is
// one labeled series, folded from the shards at scrape time.
func (c *Cache) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	labels := stats.Labels{"node": c.name}
	for k, v := range extra {
		labels[k] = v
	}
	reg.RegisterCounterFunc("cache_hits_total", "cache lookups served", labels,
		c.counterFold(func(sh *shard) int64 { return sh.hits }))
	reg.RegisterCounterFunc("cache_misses_total", "cache lookups that missed", labels,
		c.counterFold(func(sh *shard) int64 { return sh.misses }))
	reg.RegisterCounterFunc("cache_puts_total", "objects stored", labels,
		c.counterFold(func(sh *shard) int64 { return sh.puts }))
	reg.RegisterCounterFunc("cache_updates_total", "puts that replaced an entry (update-in-place)", labels,
		c.counterFold(func(sh *shard) int64 { return sh.updates }))
	reg.RegisterCounterFunc("cache_invalidations_total", "entries invalidated", labels,
		c.counterFold(func(sh *shard) int64 { return sh.invalidations }))
	reg.RegisterCounterFunc("cache_evictions_total", "entries evicted by the LRU", labels,
		c.counterFold(func(sh *shard) int64 { return sh.evictions }))
	reg.RegisterGauge("cache_bytes", "accounted bytes cached", labels, &c.bytes)
	reg.RegisterFunc("cache_items", "entries cached", labels,
		func() float64 { return float64(c.Len()) })
	reg.RegisterFunc("cache_hit_ratio", "hits/(hits+misses) since start", labels,
		func() float64 { return c.Stats().HitRate() })
}

// ResetCounters zeroes hit/miss/put/invalidation/eviction counters while
// leaving contents intact. Experiments use it to discard warm-up effects.
func (c *Cache) ResetCounters() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.hits = 0
		sh.misses = 0
		sh.puts = 0
		sh.updates = 0
		sh.invalidations = 0
		sh.evictions = 0
		sh.mu.Unlock()
	}
}
