package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func obj(key string, size int) *Object {
	return &Object{Key: Key(key), Value: make([]byte, size)}
}

func TestGetMiss(t *testing.T) {
	c := New("t")
	if _, ok := c.Get("nope"); ok {
		t.Fatal("empty cache returned a hit")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutGetHit(t *testing.T) {
	c := New("t")
	c.Put(&Object{Key: "k", Value: []byte("v"), ContentType: "text/html", Version: 7})
	got, ok := c.Get("k")
	if !ok || string(got.Value) != "v" || got.Version != 7 || got.ContentType != "text/html" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if got.StoredAt.IsZero() {
		t.Fatal("StoredAt not stamped")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Puts != 1 || s.Items != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New("t")
	if replaced := c.Put(obj("k", 10)); replaced {
		t.Fatal("first Put reported replacement")
	}
	if replaced := c.Put(obj("k", 20)); !replaced {
		t.Fatal("second Put did not report replacement")
	}
	s := c.Stats()
	if s.Updates != 1 || s.Items != 1 {
		t.Fatalf("stats = %+v", s)
	}
	got, _ := c.Get("k")
	if len(got.Value) != 20 {
		t.Fatalf("value len = %d, want 20", len(got.Value))
	}
}

func TestInvalidate(t *testing.T) {
	c := New("t")
	c.Put(obj("k", 5))
	if !c.Invalidate("k") {
		t.Fatal("Invalidate returned false for present key")
	}
	if c.Invalidate("k") {
		t.Fatal("Invalidate returned true for absent key")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated key still cached")
	}
	s := c.Stats()
	if s.Invalidations != 1 || s.Items != 0 || s.Bytes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidatePrefix(t *testing.T) {
	c := New("t")
	for _, k := range []string{"/ski/a", "/ski/b", "/skate/a", "/home"} {
		c.Put(obj(k, 5))
	}
	if n := c.InvalidatePrefix("/ski/"); n != 2 {
		t.Fatalf("InvalidatePrefix = %d, want 2", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !c.Contains("/skate/a") || !c.Contains("/home") {
		t.Fatal("unrelated keys were invalidated")
	}
}

func TestClear(t *testing.T) {
	c := New("t")
	c.Put(obj("a", 5))
	c.Put(obj("b", 5))
	if n := c.Clear(); n != 2 {
		t.Fatalf("Clear = %d, want 2", n)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("len=%d bytes=%d after Clear", c.Len(), c.Bytes())
	}
	if c.Stats().Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", c.Stats().Invalidations)
	}
}

func TestLRUEviction(t *testing.T) {
	// Each object: 100 value bytes + 2 key bytes = 102.
	c := New("t", WithMaxBytes(310))
	c.Put(obj("k1", 100))
	c.Put(obj("k2", 100))
	c.Put(obj("k3", 100))
	if c.Stats().Evictions != 0 {
		t.Fatal("premature eviction")
	}
	// Touch k1 so k2 becomes LRU, then overflow.
	c.Get("k1")
	c.Put(obj("k4", 100))
	if c.Contains("k2") {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if !c.Contains("k1") || !c.Contains("k3") || !c.Contains("k4") {
		t.Fatalf("unexpected contents: %v", c.Keys())
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestEvictionOversizedObject(t *testing.T) {
	c := New("t", WithMaxBytes(50))
	c.Put(obj("big", 500))
	// The oversized object cannot fit; cache must end up empty, not loop.
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d, want 0", c.Bytes())
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New("t")
	for i := 0; i < 1000; i++ {
		c.Put(obj(fmt.Sprintf("k%d", i), 1000))
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("unbounded cache evicted")
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPeakBytes(t *testing.T) {
	c := New("t")
	c.Put(obj("a", 100))
	c.Put(obj("b", 100))
	peak := c.PeakBytes()
	c.Invalidate("a")
	c.Invalidate("b")
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d, want 0", c.Bytes())
	}
	if c.PeakBytes() != peak || peak < 200 {
		t.Fatalf("PeakBytes = %d (was %d)", c.PeakBytes(), peak)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New("t")
	c.Put(obj("k", 1))
	if _, ok := c.Peek("k"); !ok {
		t.Fatal("Peek missed")
	}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek hit on absent key")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("Peek affected counters: %+v", s)
	}
}

func TestWithClock(t *testing.T) {
	fixed := time.Date(1998, 2, 13, 12, 0, 0, 0, time.UTC)
	c := New("t", WithClock(func() time.Time { return fixed }))
	c.Put(obj("k", 1))
	got, _ := c.Get("k")
	if !got.StoredAt.Equal(fixed) {
		t.Fatalf("StoredAt = %v, want %v", got.StoredAt, fixed)
	}
}

func TestHitRate(t *testing.T) {
	c := New("t")
	c.Put(obj("k", 1))
	c.Get("k")
	c.Get("k")
	c.Get("absent")
	s := c.Stats()
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRate = %v, want ~2/3", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
}

func TestResetCounters(t *testing.T) {
	c := New("t")
	c.Put(obj("k", 1))
	c.Get("k")
	c.ResetCounters()
	s := c.Stats()
	if s.Hits != 0 || s.Puts != 0 {
		t.Fatalf("counters not reset: %+v", s)
	}
	if s.Items != 1 {
		t.Fatal("ResetCounters must not drop contents")
	}
}

func TestKeysSorted(t *testing.T) {
	c := New("t")
	for _, k := range []string{"c", "a", "b"} {
		c.Put(obj(k, 1))
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New("t", WithMaxBytes(1<<20))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(100))
				switch rng.Intn(3) {
				case 0:
					c.Put(obj(k, rng.Intn(200)))
				case 1:
					c.Get(Key(k))
				case 2:
					c.Invalidate(Key(k))
				}
			}
		}(w)
	}
	wg.Wait()
	// Byte accounting must be consistent with contents.
	var want int64
	for _, k := range c.Keys() {
		o, _ := c.Peek(k)
		want += o.Size()
	}
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes = %d, recount = %d", got, want)
	}
}

// Property: byte accounting matches a full recount after any operation mix.
func TestByteAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("t", WithMaxBytes(int64(rng.Intn(3000))))
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(4) {
			case 0, 1:
				c.Put(obj(k, rng.Intn(150)))
			case 2:
				c.Invalidate(Key(k))
			case 3:
				c.Get(Key(k))
			}
		}
		var want int64
		for _, k := range c.Keys() {
			o, _ := c.Peek(k)
			want += o.Size()
		}
		return c.Bytes() == want && (c.maxBytes <= 0 || c.Bytes() <= c.maxBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBroadcastPut(t *testing.T) {
	g := NewGroup()
	for i := 0; i < 8; i++ {
		g.Add(New(fmt.Sprintf("up%d", i)))
	}
	n := g.BroadcastPut(&Object{Key: "/home", Value: []byte("x"), Version: 3})
	if n != 8 {
		t.Fatalf("BroadcastPut reached %d, want 8", n)
	}
	for _, c := range g.Members() {
		o, ok := c.Peek("/home")
		if !ok || o.Version != 3 {
			t.Fatalf("cache %s missing broadcast object", c.Name())
		}
	}
}

func TestGroupBroadcastInvalidate(t *testing.T) {
	g := NewGroup()
	a, b := New("a"), New("b")
	g.Add(a)
	g.Add(b)
	a.Put(obj("k", 1))
	if n := g.BroadcastInvalidate("k"); n != 1 {
		t.Fatalf("BroadcastInvalidate = %d, want 1", n)
	}
}

func TestGroupBroadcastInvalidatePrefix(t *testing.T) {
	g := NewGroup()
	a, b := New("a"), New("b")
	g.Add(a)
	g.Add(b)
	a.Put(obj("/ski/1", 1))
	b.Put(obj("/ski/1", 1))
	b.Put(obj("/ski/2", 1))
	if n := g.BroadcastInvalidatePrefix("/ski/"); n != 3 {
		t.Fatalf("BroadcastInvalidatePrefix = %d, want 3", n)
	}
}

func TestGroupMembership(t *testing.T) {
	g := NewGroup()
	c := New("n1")
	g.Add(c)
	if got, ok := g.Get("n1"); !ok || got != c {
		t.Fatal("Get after Add failed")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	if rem := g.Remove("n1"); rem != c {
		t.Fatal("Remove returned wrong cache")
	}
	if g.Len() != 0 {
		t.Fatal("Remove did not shrink group")
	}
	if g.Remove("ghost") != nil {
		t.Fatal("Remove of absent member should return nil")
	}
}

func TestGroupAggregateStats(t *testing.T) {
	g := NewGroup()
	a, b := New("a"), New("b")
	g.Add(a)
	g.Add(b)
	a.Put(obj("k", 1))
	a.Get("k")
	b.Get("k") // miss
	s := g.AggregateStats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Items != 1 {
		t.Fatalf("aggregate = %+v", s)
	}
}

func TestGroupBroadcastCopiesObjectHeader(t *testing.T) {
	g := NewGroup()
	a, b := New("a"), New("b")
	g.Add(a)
	g.Add(b)
	src := &Object{Key: "k", Value: []byte("v")}
	g.BroadcastPut(src)
	oa, _ := a.Peek("k")
	ob, _ := b.Peek("k")
	if oa == ob {
		t.Fatal("members must not share an Object header")
	}
	if &oa.Value[0] != &ob.Value[0] {
		t.Fatal("members should share the immutable value bytes")
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New("b")
	c.Put(obj("k", 8192))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get("k")
	}
}

func BenchmarkCachePutUpdate(b *testing.B) {
	c := New("b")
	o := obj("k", 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(o)
	}
}

func BenchmarkGroupBroadcast8(b *testing.B) {
	g := NewGroup()
	for i := 0; i < 8; i++ {
		g.Add(New(fmt.Sprintf("up%d", i)))
	}
	o := &Object{Key: "k", Value: make([]byte, 8192)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BroadcastPut(o)
	}
}
