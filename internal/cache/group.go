package cache

import (
	"fmt"
	"sync"

	"dupserve/internal/stats"
)

// Group manages the set of per-serving-node caches inside one complex. In
// the paper's SP2 layout (Figure 6) the trigger monitor on the SMP renders a
// page once and distributes the result to the caches of all eight
// uniprocessor serving nodes; Group.BroadcastPut is that distribution step.
//
// A Group is safe for concurrent use. Membership changes (nodes failing and
// rejoining) may interleave with broadcasts; a broadcast reaches exactly the
// members present when it starts.
type Group struct {
	mu     sync.RWMutex
	caches map[string]*Cache
}

// NewGroup returns an empty group.
func NewGroup() *Group {
	return &Group{caches: make(map[string]*Cache)}
}

// Add registers a member cache under its name. Adding a second cache with
// the same name replaces the first (a node that rebooted rejoins with an
// empty cache).
func (g *Group) Add(c *Cache) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.caches[c.Name()] = c
}

// Remove drops the named member, returning it (or nil).
func (g *Group) Remove(name string) *Cache {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.caches[name]
	delete(g.caches, name)
	return c
}

// Get returns the named member cache.
func (g *Group) Get(name string) (*Cache, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.caches[name]
	return c, ok
}

// Len returns the number of member caches.
func (g *Group) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.caches)
}

// Members returns the current member caches in unspecified order.
func (g *Group) Members() []*Cache {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Cache, 0, len(g.caches))
	for _, c := range g.caches {
		out = append(out, c)
	}
	return out
}

// BroadcastPut stores a copy of obj's metadata (sharing the value bytes,
// which are immutable by contract) into every member cache. It returns the
// number of caches updated.
func (g *Group) BroadcastPut(obj *Object) int {
	members := g.Members()
	for _, c := range members {
		// Each cache gets its own Object so StoredAt/Version remain
		// per-cache consistent even if a member applies it later.
		o := *obj
		c.Put(&o)
	}
	return len(members)
}

// BroadcastInvalidate removes key from every member cache and returns how
// many caches held it.
func (g *Group) BroadcastInvalidate(key Key) int {
	n := 0
	for _, c := range g.Members() {
		if c.Invalidate(key) {
			n++
		}
	}
	return n
}

// BroadcastInvalidatePrefix applies InvalidatePrefix to every member and
// returns the total number of entries removed.
func (g *Group) BroadcastInvalidatePrefix(prefix string) int {
	n := 0
	for _, c := range g.Members() {
		n += c.InvalidatePrefix(prefix)
	}
	return n
}

// AggregateStats sums the counters of all member caches.
func (g *Group) AggregateStats() Stats {
	var agg Stats
	for _, c := range g.Members() {
		s := c.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Puts += s.Puts
		agg.Updates += s.Updates
		agg.Invalidations += s.Invalidations
		agg.Evictions += s.Evictions
		agg.Items += s.Items
		agg.Bytes += s.Bytes
		agg.PeakBytes += s.PeakBytes
	}
	return agg
}

// RegisterMetrics publishes every current member's counters plus
// aggregate compute-on-read gauges (total hit ratio, total bytes) into a
// registry. Call after membership is assembled; members added later need
// their own RegisterMetrics call.
func (g *Group) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	for _, c := range g.Members() {
		c.RegisterMetrics(reg, extra)
	}
	reg.RegisterFunc("cache_group_hit_ratio",
		"aggregate hits/(hits+misses) across member caches", extra,
		func() float64 { return g.AggregateStats().HitRate() })
	reg.RegisterFunc("cache_group_bytes",
		"aggregate bytes across member caches", extra,
		func() float64 { return float64(g.AggregateStats().Bytes) })
	reg.RegisterFunc("cache_group_members",
		"member caches in the complex", extra,
		func() float64 { return float64(g.Len()) })
}

// String describes the group for diagnostics.
func (g *Group) String() string {
	return fmt.Sprintf("cache.Group(%d members)", g.Len())
}
