package cache

import (
	"fmt"
	"sync"
	"time"

	"dupserve/internal/stats"
)

// PutHook intercepts one node's share of a broadcast put. node is the
// member cache's name and attempt counts from 1; returning an error fails
// that attempt. Fault injection wires in here: a hook that errors models a
// push that never reached the node.
type PutHook func(node string, obj *Object, attempt int) error

// RetryPolicy bounds how hard BroadcastPut fights a failing push before
// degrading. The remedy on exhaustion is always an invalidation of that
// node's entry: the node takes a miss on the next request instead of ever
// serving a page the pipeline knows is stale.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per node per broadcast
	// (first try included). <= 0 means DefaultRetryPolicy's value.
	MaxAttempts int
	// Backoff is the sleep before the second attempt; it doubles each
	// further attempt. <= 0 means DefaultRetryPolicy's value.
	Backoff time.Duration
	// MaxBackoff caps the doubling. <= 0 means DefaultRetryPolicy's value.
	MaxBackoff time.Duration
	// Sleep substitutes the sleep implementation (tests and deterministic
	// chaos runs use a no-op). nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the policy used when a put hook is installed
// without an explicit policy: three attempts, 200µs exponential backoff
// capped at 5ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Backoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond}
}

// normalize fills zero fields from the default policy.
func (p RetryPolicy) normalize() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = def.Backoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Group manages the set of per-serving-node caches inside one complex. In
// the paper's SP2 layout (Figure 6) the trigger monitor on the SMP renders a
// page once and distributes the result to the caches of all eight
// uniprocessor serving nodes; Group.BroadcastPut is that distribution step.
//
// A Group is safe for concurrent use. Membership changes (nodes failing and
// rejoining) may interleave with broadcasts; a broadcast reaches exactly the
// members present when it starts.
type Group struct {
	mu     sync.RWMutex
	caches map[string]*Cache

	putHook   PutHook
	retry     RetryPolicy
	downgrade func(node string, key Key)

	pushRetries    stats.Counter // retry attempts after a failed push
	pushFailures   stats.Counter // individual failed push attempts
	pushDowngrades stats.Counter // pushes downgraded to invalidation
}

// GroupOption configures a Group.
type GroupOption func(*Group)

// WithPutHook intercepts every per-node put in BroadcastPut (fault
// injection). A failing hook triggers the group's retry policy.
func WithPutHook(h PutHook) GroupOption {
	return func(g *Group) { g.putHook = h }
}

// WithRetryPolicy sets the bounded-retry policy applied when a put hook
// fails. Without this option the default policy applies.
func WithRetryPolicy(p RetryPolicy) GroupOption {
	return func(g *Group) { g.retry = p.normalize() }
}

// WithDowngradeHook installs a callback fired each time a push exhausts its
// retries and is downgraded to an invalidation — the moment a node silently
// trades freshness for safety. The observability journal wires in here. The
// callback runs on the broadcasting goroutine and must not block.
func WithDowngradeHook(h func(node string, key Key)) GroupOption {
	return func(g *Group) { g.downgrade = h }
}

// NewGroup returns an empty group.
func NewGroup(opts ...GroupOption) *Group {
	g := &Group{caches: make(map[string]*Cache), retry: DefaultRetryPolicy().normalize()}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Add registers a member cache under its name. Adding a second cache with
// the same name replaces the first (a node that rebooted rejoins with an
// empty cache).
func (g *Group) Add(c *Cache) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.caches[c.Name()] = c
}

// Remove drops the named member, returning it (or nil).
func (g *Group) Remove(name string) *Cache {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.caches[name]
	delete(g.caches, name)
	return c
}

// Get returns the named member cache.
func (g *Group) Get(name string) (*Cache, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.caches[name]
	return c, ok
}

// Len returns the number of member caches.
func (g *Group) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.caches)
}

// Members returns the current member caches in unspecified order.
func (g *Group) Members() []*Cache {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Cache, 0, len(g.caches))
	for _, c := range g.caches {
		out = append(out, c)
	}
	return out
}

// BroadcastPut stores a copy of obj's metadata (sharing the value bytes,
// which are immutable by contract) into every member cache. If a put hook
// is installed and fails, the push to that node is retried with exponential
// backoff up to the retry policy's budget; on exhaustion the node's entry
// is invalidated instead — graceful degradation to a miss, never a stale
// hit. It returns the number of caches that received the fresh object.
func (g *Group) BroadcastPut(obj *Object) int {
	members := g.Members()
	g.mu.RLock()
	hook, retry, downgrade := g.putHook, g.retry, g.downgrade
	g.mu.RUnlock()

	fresh := 0
	for _, c := range members {
		// Each cache gets its own Object so StoredAt/Version remain
		// per-cache consistent even if a member applies it later.
		o := obj.Copy()
		if hook == nil {
			c.Put(o)
			fresh++
			continue
		}
		if g.pushWithRetry(hook, retry, downgrade, c, o) {
			fresh++
		}
	}
	return fresh
}

// pushWithRetry drives one node's push through the hook, retrying per the
// policy and invalidating the node's entry on exhaustion. Reports whether
// the node ended up with the fresh object.
func (g *Group) pushWithRetry(hook PutHook, retry RetryPolicy, downgrade func(string, Key), c *Cache, o *Object) bool {
	backoff := retry.Backoff
	for attempt := 1; ; attempt++ {
		err := hook(c.Name(), o, attempt)
		if err == nil {
			c.Put(o)
			return true
		}
		g.pushFailures.Inc()
		if attempt >= retry.MaxAttempts {
			// Exhausted: never leave the stale version serveable.
			c.Invalidate(o.Key)
			g.pushDowngrades.Inc()
			if downgrade != nil {
				downgrade(c.Name(), o.Key)
			}
			return false
		}
		g.pushRetries.Inc()
		retry.Sleep(backoff)
		backoff *= 2
		if backoff > retry.MaxBackoff {
			backoff = retry.MaxBackoff
		}
	}
}

// BroadcastInvalidate removes key from every member cache and returns how
// many caches held it. Invalidations are the degraded remedy and are never
// subject to push faults: dropping an entry requires no data transfer.
func (g *Group) BroadcastInvalidate(key Key) int {
	n := 0
	for _, c := range g.Members() {
		if c.Invalidate(key) {
			n++
		}
	}
	return n
}

// BroadcastInvalidatePrefix applies InvalidatePrefix to every member and
// returns the total number of entries removed.
func (g *Group) BroadcastInvalidatePrefix(prefix string) int {
	n := 0
	for _, c := range g.Members() {
		n += c.InvalidatePrefix(prefix)
	}
	return n
}

// ApplyPut implements the DUP store contract (core.Store) by broadcasting.
func (g *Group) ApplyPut(obj *Object) { g.BroadcastPut(obj) }

// ApplyInvalidate implements the DUP store contract by broadcasting.
func (g *Group) ApplyInvalidate(key Key) int { return g.BroadcastInvalidate(key) }

// ApplyInvalidatePrefix implements the DUP store contract by broadcasting.
func (g *Group) ApplyInvalidatePrefix(prefix string) int {
	return g.BroadcastInvalidatePrefix(prefix)
}

// PushStats snapshots the group's push-degradation counters.
type PushStats struct {
	Retries    int64 // retry attempts after failed pushes
	Failures   int64 // individual failed push attempts
	Downgrades int64 // pushes downgraded to an invalidation
}

// PushStats returns the group's push-degradation counters.
func (g *Group) PushStats() PushStats {
	return PushStats{
		Retries:    g.pushRetries.Value(),
		Failures:   g.pushFailures.Value(),
		Downgrades: g.pushDowngrades.Value(),
	}
}

// AggregateStats sums the counters of all member caches.
func (g *Group) AggregateStats() Stats {
	var agg Stats
	for _, c := range g.Members() {
		s := c.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Puts += s.Puts
		agg.Updates += s.Updates
		agg.Invalidations += s.Invalidations
		agg.Evictions += s.Evictions
		agg.Items += s.Items
		agg.Bytes += s.Bytes
		agg.PeakBytes += s.PeakBytes
	}
	return agg
}

// RegisterMetrics publishes every current member's counters plus
// aggregate compute-on-read gauges (total hit ratio, total bytes) into a
// registry. Call after membership is assembled; members added later need
// their own RegisterMetrics call.
func (g *Group) RegisterMetrics(reg *stats.Registry, extra stats.Labels) {
	for _, c := range g.Members() {
		c.RegisterMetrics(reg, extra)
	}
	reg.RegisterFunc("cache_group_hit_ratio",
		"aggregate hits/(hits+misses) across member caches", extra,
		func() float64 { return g.AggregateStats().HitRate() })
	reg.RegisterFunc("cache_group_bytes",
		"aggregate bytes across member caches", extra,
		func() float64 { return float64(g.AggregateStats().Bytes) })
	reg.RegisterFunc("cache_group_members",
		"member caches in the complex", extra,
		func() float64 { return float64(g.Len()) })
	reg.RegisterCounter("push_retries_total",
		"broadcast push attempts retried after a per-node failure", extra, &g.pushRetries)
	reg.RegisterCounter("push_failures_total",
		"individual per-node push attempts that failed", extra, &g.pushFailures)
	reg.RegisterCounter("push_downgrades_total",
		"pushes downgraded to invalidation after retry exhaustion", extra, &g.pushDowngrades)
}

// String describes the group for diagnostics.
func (g *Group) String() string {
	return fmt.Sprintf("cache.Group(%d members)", g.Len())
}
