package cache

import (
	"testing"
	"time"
)

// tick is a manual clock for stale-age control.
type tick struct{ t time.Time }

func newTick() *tick {
	return &tick{t: time.Date(1998, 2, 7, 0, 0, 0, 0, time.UTC)}
}
func (k *tick) now() time.Time          { return k.t }
func (k *tick) advance(d time.Duration) { k.t = k.t.Add(d) }

func TestStaleRetentionOnInvalidate(t *testing.T) {
	clk := newTick()
	c := New("t", WithStaleRetention(), WithClock(clk.now))
	o := &Object{Key: "k", Value: []byte("v1"), Version: 1}
	c.Put(o)
	c.Invalidate("k")

	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated entry still served by Get")
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatal("invalidated entry visible to Peek")
	}
	clk.advance(time.Second)
	got, age, ok := c.GetStale("k", 5*time.Second)
	if !ok {
		t.Fatal("stale copy not retained")
	}
	if got.Version != 1 || age != time.Second {
		t.Fatalf("stale copy version=%d age=%v, want 1/1s", got.Version, age)
	}
}

func TestStaleBudgetEnforced(t *testing.T) {
	clk := newTick()
	c := New("t", WithStaleRetention(), WithClock(clk.now))
	c.Put(&Object{Key: "k", Value: []byte("v1")})
	c.Invalidate("k")
	clk.advance(10 * time.Second)
	if _, _, ok := c.GetStale("k", 5*time.Second); ok {
		t.Fatal("stale copy served beyond its freshness budget")
	}
	// The over-budget copy is dropped, not just hidden.
	if got := c.StaleLen(); got != 0 {
		t.Fatalf("stale entries after budget expiry = %d, want 0", got)
	}
}

func TestStaleSupersededByPut(t *testing.T) {
	c := New("t", WithStaleRetention())
	c.Put(&Object{Key: "k", Value: []byte("v1"), Version: 1})
	c.Invalidate("k")
	c.Put(&Object{Key: "k", Value: []byte("v2"), Version: 2})
	if got := c.StaleLen(); got != 0 {
		t.Fatalf("stale entries after fresh put = %d, want 0", got)
	}
	// Invalidate again: the retained copy must be the newer version.
	c.Invalidate("k")
	got, _, ok := c.GetStale("k", time.Hour)
	if !ok || got.Version != 2 {
		t.Fatalf("retained copy = %+v ok=%t, want version 2", got, ok)
	}
}

func TestStaleKeepsEarliestSince(t *testing.T) {
	clk := newTick()
	c := New("t", WithStaleRetention(), WithClock(clk.now))
	c.Put(&Object{Key: "k", Value: []byte("v1"), Version: 1})
	c.Invalidate("k")
	clk.advance(3 * time.Second)
	// A second invalidation without an intervening Put (e.g. a prefix sweep)
	// must not refresh the staleness clock.
	c.Invalidate("k")
	_, age, ok := c.GetStale("k", time.Hour)
	if !ok || age != 3*time.Second {
		t.Fatalf("age = %v ok=%t, want 3s (earliest since-time)", age, ok)
	}
}

func TestStaleDroppedOnClear(t *testing.T) {
	c := New("t", WithStaleRetention())
	c.Put(&Object{Key: "k", Value: []byte("v1")})
	c.Invalidate("k")
	c.Clear()
	if _, _, ok := c.GetStale("k", time.Hour); ok {
		t.Fatal("stale copy survived Clear (node death)")
	}
}

func TestStaleRetentionOffByDefault(t *testing.T) {
	c := New("t")
	c.Put(&Object{Key: "k", Value: []byte("v1")})
	c.Invalidate("k")
	if _, _, ok := c.GetStale("k", time.Hour); ok {
		t.Fatal("stale copy retained without WithStaleRetention")
	}
}

func TestStaleRetentionOnPrefixInvalidate(t *testing.T) {
	c := New("t", WithStaleRetention())
	c.Put(&Object{Key: "/en/a", Value: []byte("a")})
	c.Put(&Object{Key: "/en/b", Value: []byte("b")})
	c.Put(&Object{Key: "/ja/a", Value: []byte("c")})
	c.InvalidatePrefix("/en/")
	if got := c.StaleLen(); got != 2 {
		t.Fatalf("stale entries after prefix invalidate = %d, want 2", got)
	}
	if _, _, ok := c.GetStale("/en/a", time.Hour); !ok {
		t.Fatal("prefix-invalidated entry not retained")
	}
	if _, _, ok := c.GetStale("/ja/a", time.Hour); ok {
		t.Fatal("untouched entry present in stale table")
	}
}
