package odg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// paperFig1 builds the weighted ODG from Figure 1 of the paper:
//
//	go1 --5--> go5
//	go2 --1--> go5, go2 --1--> go6
//	go5 --1--> go7
//	go6 --1--> go7   (go5, go6 feed go7 transitively)
func paperFig1(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode("go1", KindUnderlying)
	g.AddNode("go2", KindUnderlying)
	g.AddNode("go5", KindBoth)
	g.AddNode("go6", KindBoth)
	g.AddNode("go7", KindObject)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddWeightedEdge("go1", "go5", 5))
	must(g.AddWeightedEdge("go2", "go5", 1))
	must(g.AddWeightedEdge("go2", "go6", 1))
	must(g.AddWeightedEdge("go5", "go7", 1))
	must(g.AddWeightedEdge("go6", "go7", 1))
	return g
}

func TestPaperFigure1Propagation(t *testing.T) {
	g := paperFig1(t)
	// "If node go2 changes ... DUP determines that nodes go5 and go6 also
	// change. By transitivity, go7 also changes."
	got := g.Affected("go2")
	want := []NodeID{"go5", "go6", "go7"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Affected(go2) = %v, want %v", got, want)
	}
	if g.IsSimple() {
		t.Fatal("figure 1 graph must not be simple (weighted edges, both-kind nodes)")
	}
}

func TestPaperFigure1Weights(t *testing.T) {
	g := paperFig1(t)
	// The go1->go5 dependence is 5x as important as go2->go5.
	st := g.Staleness(map[NodeID]float64{"go1": 1})
	if st["go5"] != 5 {
		t.Fatalf("staleness(go5 | go1 changed) = %v, want 5", st["go5"])
	}
	st2 := g.Staleness(map[NodeID]float64{"go2": 1})
	if st2["go5"] != 1 {
		t.Fatalf("staleness(go5 | go2 changed) = %v, want 1", st2["go5"])
	}
	// go7 accumulates from both go5 and go6 when go2 changes: 1*1 + 1*1.
	if st2["go7"] != 2 {
		t.Fatalf("staleness(go7 | go2 changed) = %v, want 2", st2["go7"])
	}
}

func TestSimpleODGFastPath(t *testing.T) {
	g := New()
	// Figure 2: bipartite, unweighted.
	for i := 0; i < 3; i++ {
		u := NodeID(fmt.Sprintf("u%d", i))
		for j := 0; j < 4; j++ {
			o := NodeID(fmt.Sprintf("o%d", j))
			if (i+j)%2 == 0 {
				if err := g.AddEdge(u, o); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if !g.IsSimple() {
		t.Fatal("bipartite unweighted graph should be simple")
	}
	got := g.Affected("u0")
	want := []NodeID{"o0", "o2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Affected(u0) = %v, want %v", got, want)
	}
}

func TestSimplicityTransitions(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if !g.IsSimple() {
		t.Fatal("single unweighted edge should be simple")
	}
	// Weighted edge breaks simplicity.
	if err := g.AddWeightedEdge("a", "c", 3); err != nil {
		t.Fatal(err)
	}
	if g.IsSimple() {
		t.Fatal("weighted edge should break simplicity")
	}
	g.RemoveEdge("a", "c")
	if !g.IsSimple() {
		t.Fatal("removing the weighted edge should restore simplicity")
	}
	// Chain through an object breaks simplicity (b gains an out-edge).
	if err := g.AddEdge("b", "d"); err != nil {
		t.Fatal(err)
	}
	if g.IsSimple() {
		t.Fatal("object with out-edge should break simplicity")
	}
	g.RemoveNode("d")
	if !g.IsSimple() {
		t.Fatal("removing d should restore simplicity")
	}
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeUpdatesKind(t *testing.T) {
	g := New()
	g.AddNode("x", KindObject)
	if k, _ := g.NodeKind("x"); k != KindObject {
		t.Fatalf("kind = %v, want object", k)
	}
	g.AddNode("x", KindBoth)
	if k, _ := g.NodeKind("x"); k != KindBoth {
		t.Fatalf("kind = %v, want both", k)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestNodeKindMissing(t *testing.T) {
	g := New()
	if _, err := g.NodeKind("ghost"); err == nil {
		t.Fatal("expected error for missing node")
	}
}

func TestBadWeightRejected(t *testing.T) {
	g := New()
	for _, w := range []float64{0, -1} {
		if err := g.AddWeightedEdge("a", "b", w); err == nil {
			t.Fatalf("weight %v accepted", w)
		}
	}
	if g.NumNodes() != 0 {
		t.Fatal("failed AddWeightedEdge must not create nodes")
	}
}

func TestRemoveEdgeNonexistentNoop(t *testing.T) {
	g := New()
	g.RemoveEdge("a", "b") // nothing should happen
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	g.RemoveEdge("a", "zzz")
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveNode(t *testing.T) {
	g := paperFig1(t)
	g.RemoveNode("go5")
	got := g.Affected("go2")
	want := []NodeID{"go6", "go7"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after RemoveNode(go5), Affected(go2) = %v, want %v", got, want)
	}
	got = g.Affected("go1")
	if len(got) != 0 {
		t.Fatalf("Affected(go1) = %v, want empty", got)
	}
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeWithSelfLoop(t *testing.T) {
	g := New()
	g.AddNode("s", KindBoth)
	if err := g.AddEdge("s", "s"); err != nil {
		t.Fatal(err)
	}
	if !g.HasCycle() {
		t.Fatal("self-loop should be a cycle")
	}
	g.RemoveNode("s")
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("nodes=%d edges=%d after removal, want 0/0", g.NumNodes(), g.NumEdges())
	}
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceDependencies(t *testing.T) {
	g := New()
	g.ReplaceDependencies("page", []NodeID{"r1", "r2"})
	got := g.Affected("r1")
	if !reflect.DeepEqual(got, []NodeID{"page"}) {
		t.Fatalf("Affected(r1) = %v", got)
	}
	// Re-render: page now depends on r2, r3 only.
	g.ReplaceDependencies("page", []NodeID{"r2", "r3"})
	if got := g.Affected("r1"); len(got) != 0 {
		t.Fatalf("Affected(r1) after replace = %v, want empty", got)
	}
	if got := g.Affected("r3"); !reflect.DeepEqual(got, []NodeID{"page"}) {
		t.Fatalf("Affected(r3) = %v", got)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.IsSimple() {
		t.Fatal("replace-deps graph should be simple")
	}
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceDependenciesDuplicatePreds(t *testing.T) {
	g := New()
	g.ReplaceDependencies("page", []NodeID{"r1", "r1", "r1"})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (deduped)", g.NumEdges())
	}
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAffectedUnknownNode(t *testing.T) {
	g := paperFig1(t)
	if got := g.Affected("nope"); len(got) != 0 {
		t.Fatalf("Affected(unknown) = %v, want empty", got)
	}
}

func TestAffectedIncludesChangedObject(t *testing.T) {
	g := paperFig1(t)
	// go5 is KindBoth: when it changes directly it must itself be refreshed.
	got := g.Affected("go5")
	want := []NodeID{"go5", "go7"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Affected(go5) = %v, want %v", got, want)
	}
}

func TestAffectedMultipleRoots(t *testing.T) {
	g := paperFig1(t)
	got := g.Affected("go1", "go2")
	want := []NodeID{"go5", "go6", "go7"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Affected(go1,go2) = %v, want %v", got, want)
	}
}

func TestStalenessCycle(t *testing.T) {
	g := New()
	g.AddNode("a", KindUnderlying)
	g.AddNode("x", KindBoth)
	g.AddNode("y", KindBoth)
	for _, e := range [][2]NodeID{{"a", "x"}, {"x", "y"}, {"y", "x"}} {
		if err := g.AddWeightedEdge(e[0], e[1], 2); err != nil {
			t.Fatal(err)
		}
	}
	if !g.HasCycle() {
		t.Fatal("x<->y should form a cycle")
	}
	st := g.Staleness(map[NodeID]float64{"a": 1})
	// a contributes 2 into the {x,y} SCC; both members share it.
	if st["x"] != 2 || st["y"] != 2 {
		t.Fatalf("staleness = %v, want x=y=2", st)
	}
}

func TestStalenessIgnoresNonPositiveAndUnknown(t *testing.T) {
	g := paperFig1(t)
	st := g.Staleness(map[NodeID]float64{"go1": 0, "ghost": 5, "go2": -1})
	if len(st) != 0 {
		t.Fatalf("staleness = %v, want empty", st)
	}
}

func TestStalenessDiamond(t *testing.T) {
	// u -> a (w2), u -> b (w3), a -> o (w1), b -> o (w1): o gets 2+3=5.
	g := New()
	g.AddNode("a", KindBoth)
	g.AddNode("b", KindBoth)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddWeightedEdge("u", "a", 2))
	must(g.AddWeightedEdge("u", "b", 3))
	must(g.AddWeightedEdge("a", "o", 1))
	must(g.AddWeightedEdge("b", "o", 1))
	st := g.Staleness(map[NodeID]float64{"u": 1})
	if st["o"] != 5 {
		t.Fatalf("staleness(o) = %v, want 5", st["o"])
	}
}

func TestTopoOrder(t *testing.T) {
	g := paperFig1(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range [][2]NodeID{{"go1", "go5"}, {"go2", "go5"}, {"go2", "go6"}, {"go5", "go7"}, {"go6", "go7"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("topo order violates edge %v->%v: %v", e[0], e[1], order)
		}
	}
}

func TestTopoOrderCycleError(t *testing.T) {
	g := New()
	g.AddNode("x", KindBoth)
	g.AddNode("y", KindBoth)
	if err := g.AddEdge("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("y", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestObjectsUnderlyingPartition(t *testing.T) {
	g := paperFig1(t)
	objs := g.Objects()
	want := []NodeID{"go5", "go6", "go7"}
	if !reflect.DeepEqual(objs, want) {
		t.Fatalf("Objects = %v, want %v", objs, want)
	}
	und := g.Underlying()
	wantU := []NodeID{"go1", "go2", "go5", "go6"}
	if !reflect.DeepEqual(und, wantU) {
		t.Fatalf("Underlying = %v, want %v", und, wantU)
	}
}

func TestSnapshot(t *testing.T) {
	g := paperFig1(t)
	st := g.Snapshot()
	if st.Nodes != 5 || st.Edges != 5 || st.Objects != 1 || st.Underlying != 2 || st.Both != 2 {
		t.Fatalf("snapshot = %+v", st)
	}
	if st.Simple {
		t.Fatal("figure 1 graph must not report simple")
	}
	if st.MaxOutDeg != 2 || st.MaxInDeg != 2 {
		t.Fatalf("degrees = out %d in %d, want 2/2", st.MaxOutDeg, st.MaxInDeg)
	}
}

func TestEdgeWeight(t *testing.T) {
	g := paperFig1(t)
	if w, ok := g.EdgeWeight("go1", "go5"); !ok || w != 5 {
		t.Fatalf("EdgeWeight(go1,go5) = %v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight("go1", "go7"); ok {
		t.Fatal("EdgeWeight of missing edge reported ok")
	}
	if _, ok := g.EdgeWeight("ghost", "go7"); ok {
		t.Fatal("EdgeWeight from missing node reported ok")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := paperFig1(t)
	succs := g.Successors("go2")
	if len(succs) != 2 {
		t.Fatalf("Successors(go2) = %v", succs)
	}
	preds := g.Predecessors("go7")
	if len(preds) != 2 {
		t.Fatalf("Predecessors(go7) = %v", preds)
	}
	if g.Successors("ghost") != nil || g.Predecessors("ghost") != nil {
		t.Fatal("missing node should return nil adjacency")
	}
}

func TestConcurrentMutationAndQuery(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := NodeID(fmt.Sprintf("u%d", (w*7+i)%50))
				o := NodeID(fmt.Sprintf("o%d", i%80))
				switch i % 4 {
				case 0:
					_ = g.AddEdge(u, o)
				case 1:
					g.Affected(u)
				case 2:
					g.RemoveEdge(u, o)
				case 3:
					g.Staleness(map[NodeID]float64{u: 1})
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// buildRandom constructs a random graph from an operation script; used by
// the property tests below.
func buildRandom(rng *rand.Rand, nOps int) *Graph {
	g := New()
	id := func(n int) NodeID { return NodeID(fmt.Sprintf("n%d", n)) }
	for i := 0; i < nOps; i++ {
		a, b := id(rng.Intn(30)), id(rng.Intn(30))
		switch rng.Intn(6) {
		case 0, 1, 2:
			_ = g.AddEdge(a, b)
		case 3:
			_ = g.AddWeightedEdge(a, b, float64(1+rng.Intn(5)))
		case 4:
			g.RemoveEdge(a, b)
		case 5:
			g.RemoveNode(a)
		}
	}
	return g
}

// Property: internal counters (edges, weighted, violations) never drift from
// a full recount, for any mutation sequence.
func TestInvariantsUnderRandomMutation(t *testing.T) {
	f := func(seed int64) bool {
		g := buildRandom(rand.New(rand.NewSource(seed)), 300)
		return g.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Affected via the simple fast path equals Affected computed by
// BFS. We verify by comparing against an independent reachability check.
func TestAffectedMatchesReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandom(rng, 200)
		roots := []NodeID{NodeID(fmt.Sprintf("n%d", rng.Intn(30)))}
		got := g.Affected(roots...)
		// Independent reachability: repeated Successors expansion.
		seen := map[NodeID]struct{}{}
		var frontier []NodeID
		for _, r := range roots {
			if g.Contains(r) {
				seen[r] = struct{}{}
				frontier = append(frontier, r)
			}
		}
		for len(frontier) > 0 {
			next := frontier[:0:0]
			for _, id := range frontier {
				for _, s := range g.Successors(id) {
					if _, ok := seen[s]; !ok {
						seen[s] = struct{}{}
						next = append(next, s)
					}
				}
			}
			frontier = next
		}
		want := map[NodeID]struct{}{}
		for id := range seen {
			if k, err := g.NodeKind(id); err == nil && k != KindUnderlying {
				want[id] = struct{}{}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if _, ok := want[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: staleness is monotone in change magnitude — doubling every
// change magnitude doubles every staleness value.
func TestStalenessLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandom(rng, 150)
		changes := map[NodeID]float64{}
		for i := 0; i < 5; i++ {
			changes[NodeID(fmt.Sprintf("n%d", rng.Intn(30)))] = float64(1 + rng.Intn(3))
		}
		st1 := g.Staleness(changes)
		doubled := map[NodeID]float64{}
		for k, v := range changes {
			doubled[k] = 2 * v
		}
		st2 := g.Staleness(doubled)
		if len(st1) != len(st2) {
			return false
		}
		for k, v := range st1 {
			w, ok := st2[k]
			if !ok {
				return false
			}
			if diff := w - 2*v; diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every object reported by Staleness is also reported by Affected
// (weighted propagation never invents reachability).
func TestStalenessSubsetOfAffected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandom(rng, 150)
		var roots []NodeID
		changes := map[NodeID]float64{}
		for i := 0; i < 4; i++ {
			id := NodeID(fmt.Sprintf("n%d", rng.Intn(30)))
			roots = append(roots, id)
			changes[id] = 1
		}
		affected := map[NodeID]struct{}{}
		for _, id := range g.Affected(roots...) {
			affected[id] = struct{}{}
		}
		for id := range g.Staleness(changes) {
			if _, ok := affected[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAffectedSimple(b *testing.B) {
	g := New()
	for i := 0; i < 1000; i++ {
		u := NodeID(fmt.Sprintf("u%d", i))
		for j := 0; j < 8; j++ {
			_ = g.AddEdge(u, NodeID(fmt.Sprintf("o%d", (i*3+j)%4000)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Affected(NodeID(fmt.Sprintf("u%d", i%1000)))
	}
}

func BenchmarkAffectedGeneral(b *testing.B) {
	g := New()
	// Layered DAG with weighted edges to force the general path.
	for l := 0; l < 4; l++ {
		for i := 0; i < 250; i++ {
			from := NodeID(fmt.Sprintf("l%d_%d", l, i))
			for j := 0; j < 4; j++ {
				to := NodeID(fmt.Sprintf("l%d_%d", l+1, (i+j*17)%250))
				_ = g.AddWeightedEdge(from, to, 2)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Affected(NodeID(fmt.Sprintf("l0_%d", i%250)))
	}
}

func BenchmarkStaleness(b *testing.B) {
	g := New()
	for l := 0; l < 4; l++ {
		for i := 0; i < 250; i++ {
			from := NodeID(fmt.Sprintf("l%d_%d", l, i))
			for j := 0; j < 4; j++ {
				to := NodeID(fmt.Sprintf("l%d_%d", l+1, (i+j*17)%250))
				_ = g.AddWeightedEdge(from, to, 2)
			}
		}
	}
	changes := map[NodeID]float64{"l0_0": 1, "l0_1": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Staleness(changes)
	}
}

func TestSubgraphTopoOrderRespectsEdges(t *testing.T) {
	g := paperFig1(t)
	order := g.SubgraphTopoOrder([]NodeID{"go7", "go5", "go6"})
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["go5"] > pos["go7"] || pos["go6"] > pos["go7"] {
		t.Fatalf("order = %v, want go5/go6 before go7", order)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSubgraphTopoOrderIgnoresOutsideEdges(t *testing.T) {
	g := paperFig1(t)
	// go5 and go6 have no edges between each other; order is just sorted.
	order := g.SubgraphTopoOrder([]NodeID{"go6", "go5"})
	if !reflect.DeepEqual(order, []NodeID{"go5", "go6"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestSubgraphTopoOrderDropsUnknown(t *testing.T) {
	g := paperFig1(t)
	order := g.SubgraphTopoOrder([]NodeID{"ghost", "go7"})
	if !reflect.DeepEqual(order, []NodeID{"go7"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestSubgraphTopoOrderCycleFallback(t *testing.T) {
	g := New()
	g.AddNode("x", KindBoth)
	g.AddNode("y", KindBoth)
	if err := g.AddEdge("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("y", "x"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("y", "z"); err != nil {
		t.Fatal(err)
	}
	order := g.SubgraphTopoOrder([]NodeID{"x", "y", "z"})
	if len(order) != 3 {
		t.Fatalf("order = %v, want all three", order)
	}
	// z depends on the cycle; it should still be emitted, and the cycle
	// members appended deterministically.
	seen := map[NodeID]bool{}
	for _, id := range order {
		seen[id] = true
	}
	if !seen["x"] || !seen["y"] || !seen["z"] {
		t.Fatalf("order = %v", order)
	}
}

// Property: SubgraphTopoOrder is a permutation of the known subset, and for
// acyclic subsets every internal edge goes forward.
func TestSubgraphTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandom(rng, 150)
		var subset []NodeID
		for i := 0; i < 12; i++ {
			id := NodeID(fmt.Sprintf("n%d", rng.Intn(30)))
			if g.Contains(id) {
				subset = append(subset, id)
			}
		}
		// Dedup.
		uniq := map[NodeID]struct{}{}
		var ids []NodeID
		for _, id := range subset {
			if _, ok := uniq[id]; !ok {
				uniq[id] = struct{}{}
				ids = append(ids, id)
			}
		}
		order := g.SubgraphTopoOrder(ids)
		if len(order) != len(ids) {
			return false
		}
		pos := map[NodeID]int{}
		for i, id := range order {
			pos[id] = i
		}
		if g.HasCycle() {
			return true // ordering not guaranteed, only permutation
		}
		for _, id := range ids {
			for _, s := range g.Successors(id) {
				if sp, ok := pos[s]; ok && s != id && sp < pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSubgraphTopoOrder(b *testing.B) {
	g := New()
	// Fragment layer feeding 128 pages each, in a 20k-object graph.
	for s := 0; s < 150; s++ {
		frag := NodeID(fmt.Sprintf("frag%d", s))
		g.AddNode(frag, KindBoth)
		_ = g.AddEdge(NodeID(fmt.Sprintf("db%d", s)), frag)
		for i := 0; i < 128; i++ {
			_ = g.AddEdge(frag, NodeID(fmt.Sprintf("p%d-%d", s, i)))
		}
	}
	subset := g.Affected("db3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SubgraphTopoOrder(subset)
	}
}
