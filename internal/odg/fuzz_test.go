package odg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode asserts the graph decoder never panics, and that any graph it
// accepts re-encodes and re-decodes to the same shape.
func FuzzDecode(f *testing.F) {
	g := New()
	g.AddNode("o", KindObject)
	_ = g.AddWeightedEdge("u", "o", 2)
	var seed bytes.Buffer
	if err := g.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"nodes":[],"edges":[]}`)
	f.Add(`{"nodes":[{"id":"a","kind":"object"}]}`)
	f.Add(`{`)
	f.Add(`{"edges":[{"from":"a","to":"b","weight":0}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		g1, err := Decode(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g1.Encode(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		g2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() || g1.IsSimple() != g2.IsSimple() {
			t.Fatalf("round trip changed shape: %d/%d/%v vs %d/%d/%v",
				g1.NumNodes(), g1.NumEdges(), g1.IsSimple(),
				g2.NumNodes(), g2.NumEdges(), g2.IsSimple())
		}
	})
}
