// Package odg implements the object dependence graph (ODG) at the heart of
// Data Update Propagation (DUP), as described in section 2 of Challenger,
// Dantzig & Iyengar (SC '98) and the companion technical report (Iyengar &
// Challenger, RC 21093).
//
// An ODG is a directed graph whose vertices are either underlying data
// (database rows, result feeds), cacheable objects (pages, page fragments),
// or both. An edge v -> u means "a change to v also affects u". Edges may
// carry positive weights expressing the importance of the dependence; the
// weights let DUP quantify *how* obsolete an object has become rather than
// only whether it is obsolete.
//
// The paper singles out the common case of a "simple" ODG — underlying-data
// vertices have no incoming edges, object vertices have no outgoing edges,
// and no edge is weighted — for which propagation reduces to reading the
// direct successor list. Graph tracks simplicity incrementally and Affected
// takes that O(out-degree) fast path automatically.
//
// All methods are safe for concurrent use. Mutations (AddEdge, RemoveNode,
// ...) take the write lock; propagation queries take the read lock, so many
// trigger-monitor propagations may run concurrently with page serving.
package odg

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a vertex in the graph. IDs are opaque to the package;
// dupserve uses hierarchical names such as "db:results:row:1234" and
// "page:/sports/ski/event7".
type NodeID string

// Kind classifies a vertex per the paper's taxonomy.
type Kind uint8

const (
	// KindUnderlying marks underlying data: items that change and drive
	// propagation but are not themselves cached (e.g. database rows).
	KindUnderlying Kind = iota
	// KindObject marks cacheable objects (pages, fragments).
	KindObject
	// KindBoth marks items that are both cached and act as underlying data
	// for other objects (e.g. a cached page fragment embedded in pages).
	KindBoth
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindUnderlying:
		return "underlying"
	case KindObject:
		return "object"
	case KindBoth:
		return "both"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// DefaultWeight is the weight assigned to edges added without an explicit
// weight. A simple ODG contains only edges of this weight.
const DefaultWeight = 1.0

// ErrNodeNotFound is returned by operations that reference a vertex absent
// from the graph.
var ErrNodeNotFound = errors.New("odg: node not found")

// ErrBadWeight is returned when an edge weight is not strictly positive.
var ErrBadWeight = errors.New("odg: edge weight must be > 0")

type node struct {
	id   NodeID
	kind Kind
	out  map[NodeID]float64
	in   map[NodeID]float64
}

// Graph is a mutable, concurrency-safe object dependence graph.
//
// The zero value is not usable; call New.
type Graph struct {
	mu    sync.RWMutex
	nodes map[NodeID]*node
	edges int
	// weighted counts edges whose weight differs from DefaultWeight;
	// simplicity requires weighted == 0 plus the structural bipartite
	// property, tracked by violations.
	weighted int
	// violations counts vertices that break the simple-ODG structural
	// rules: an underlying-data vertex with incoming edges, or an object
	// vertex with outgoing edges.
	violations int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[NodeID]*node)}
}

// violationCount reports how many simple-ODG structural rules node n breaks.
func violationCount(n *node) int {
	v := 0
	if n.kind == KindUnderlying && len(n.in) > 0 {
		v++
	}
	if n.kind == KindObject && len(n.out) > 0 {
		v++
	}
	if n.kind == KindBoth && len(n.in) > 0 && len(n.out) > 0 {
		// A vertex that is simultaneously cached and feeding other objects
		// is outside the simple (bipartite) form.
		v++
	}
	return v
}

// mutateLocked runs fn while keeping the violations counter consistent for
// the given nodes: their contributions are subtracted before fn and added
// back afterwards for every node still present in the graph. All structural
// mutations funnel through this helper so the simplicity bookkeeping lives
// in exactly one place.
func (g *Graph) mutateLocked(touched map[NodeID]*node, fn func()) {
	for _, n := range touched {
		g.violations -= violationCount(n)
	}
	fn()
	for id, n := range touched {
		if g.nodes[id] == n {
			g.violations += violationCount(n)
		}
	}
}

func (g *Graph) getOrAddLocked(id NodeID, kind Kind) *node {
	n, ok := g.nodes[id]
	if !ok {
		n = &node{id: id, kind: kind, out: make(map[NodeID]float64), in: make(map[NodeID]float64)}
		g.nodes[id] = n
		g.violations += violationCount(n)
	}
	return n
}

// AddNode inserts a vertex with the given kind. Adding an existing vertex
// updates its kind (re-evaluating simplicity) and is not an error: DUP
// applications routinely re-register dependencies as pages are re-rendered.
func (g *Graph) AddNode(id NodeID, kind Kind) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.getOrAddLocked(id, kind)
	g.mutateLocked(map[NodeID]*node{id: n}, func() {
		n.kind = kind
	})
}

// Contains reports whether id is a vertex of the graph.
func (g *Graph) Contains(id NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[id]
	return ok
}

// NodeKind returns the kind of vertex id.
func (g *Graph) NodeKind(id NodeID) (Kind, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNodeNotFound, id)
	}
	return n.kind, nil
}

// AddEdge records the dependence from -> to with DefaultWeight, creating
// missing vertices (from as underlying data, to as object — the common
// registration pattern for server programs declaring "this page depends on
// that row"). Re-adding an edge overwrites its weight.
func (g *Graph) AddEdge(from, to NodeID) error {
	return g.AddWeightedEdge(from, to, DefaultWeight)
}

// AddWeightedEdge records the dependence from -> to with the given positive
// weight, creating missing vertices as AddEdge does.
func (g *Graph) AddWeightedEdge(from, to NodeID, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("%w: %v -> %v weight %v", ErrBadWeight, from, to, weight)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	nf := g.getOrAddLocked(from, KindUnderlying)
	nt := g.getOrAddLocked(to, KindObject)
	g.mutateLocked(map[NodeID]*node{from: nf, to: nt}, func() {
		if old, existed := nf.out[to]; existed {
			if old != DefaultWeight {
				g.weighted--
			}
		} else {
			g.edges++
		}
		nf.out[to] = weight
		nt.in[from] = weight
		if weight != DefaultWeight {
			g.weighted++
		}
	})
	return nil
}

// RemoveEdge deletes the dependence from -> to. Removing a non-existent
// edge is a no-op, mirroring delete on maps.
func (g *Graph) RemoveEdge(from, to NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	nf, ok := g.nodes[from]
	if !ok {
		return
	}
	w, ok := nf.out[to]
	if !ok {
		return
	}
	nt := g.nodes[to]
	g.mutateLocked(map[NodeID]*node{from: nf, to: nt}, func() {
		delete(nf.out, to)
		delete(nt.in, from)
		g.edges--
		if w != DefaultWeight {
			g.weighted--
		}
	})
}

// RemoveNode deletes a vertex and all edges incident on it. Removing a
// non-existent vertex is a no-op.
func (g *Graph) RemoveNode(id NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return
	}
	touched := map[NodeID]*node{id: n}
	for succ := range n.out {
		touched[succ] = g.nodes[succ]
	}
	for pred := range n.in {
		touched[pred] = g.nodes[pred]
	}
	g.mutateLocked(touched, func() {
		for succ, w := range n.out {
			delete(g.nodes[succ].in, id)
			g.edges--
			if w != DefaultWeight {
				g.weighted--
			}
		}
		for pred, w := range n.in {
			if pred == id {
				continue // self-loop already counted via out
			}
			delete(g.nodes[pred].out, id)
			g.edges--
			if w != DefaultWeight {
				g.weighted--
			}
		}
		delete(g.nodes, id)
	})
}

// ReplaceDependencies atomically replaces the full set of incoming edges of
// object id with the given predecessor set at DefaultWeight. This is the
// operation a page renderer performs after regenerating a page: the page's
// dependencies are exactly the data it read this time. Missing vertices are
// created (id as object, predecessors as underlying data).
func (g *Graph) ReplaceDependencies(id NodeID, preds []NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.getOrAddLocked(id, KindObject)
	touched := map[NodeID]*node{id: n}
	for pred := range n.in {
		touched[pred] = g.nodes[pred]
	}
	for _, pred := range preds {
		touched[pred] = g.getOrAddLocked(pred, KindUnderlying)
	}
	g.mutateLocked(touched, func() {
		for pred, w := range n.in {
			delete(g.nodes[pred].out, id)
			g.edges--
			if w != DefaultWeight {
				g.weighted--
			}
		}
		n.in = make(map[NodeID]float64, len(preds))
		for _, pred := range preds {
			np := g.nodes[pred]
			if _, existed := np.out[id]; !existed {
				g.edges++
			}
			np.out[id] = DefaultWeight
			n.in[pred] = DefaultWeight
		}
	})
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edges
}

// IsSimple reports whether the graph currently satisfies the paper's three
// simple-ODG conditions: underlying-data vertices have no incoming edges,
// object vertices have no outgoing edges, and all edges are unweighted
// (weight == DefaultWeight).
func (g *Graph) IsSimple() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.weighted == 0 && g.violations == 0
}

// Successors returns the direct successors of id in unspecified order, or
// nil if id is absent.
func (g *Graph) Successors(id NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(n.out))
	for s := range n.out {
		out = append(out, s)
	}
	return out
}

// Predecessors returns the direct predecessors of id in unspecified order,
// or nil if id is absent.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(n.in))
	for p := range n.in {
		out = append(out, p)
	}
	return out
}

// EdgeWeight returns the weight of edge from -> to, with ok reporting
// whether the edge exists.
func (g *Graph) EdgeWeight(from, to NodeID) (weight float64, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, found := g.nodes[from]
	if !found {
		return 0, false
	}
	weight, ok = n.out[to]
	return weight, ok
}

// Affected returns every object vertex transitively reachable from the
// changed vertices — the set DUP must invalidate or update. The changed
// vertices themselves are included only if they are objects (KindObject or
// KindBoth), because a cached item that is also underlying data must itself
// be refreshed.
//
// For simple ODGs this is a union of successor lists with no traversal; for
// general graphs it is a BFS over the reachable subgraph. The result is
// sorted so propagation order (and tests) are deterministic.
func (g *Graph) Affected(changed ...NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()

	set := make(map[NodeID]struct{})
	if g.weighted == 0 && g.violations == 0 {
		// Simple fast path: affected objects are exactly the direct
		// successors (objects have no outgoing edges, so reachability
		// terminates after one hop).
		for _, c := range changed {
			n, ok := g.nodes[c]
			if !ok {
				continue
			}
			if n.kind != KindUnderlying {
				set[c] = struct{}{}
			}
			for s := range n.out {
				set[s] = struct{}{}
			}
		}
	} else {
		// General case: BFS over the reachable subgraph.
		visited := make(map[NodeID]struct{}, len(changed))
		queue := make([]NodeID, 0, len(changed))
		for _, c := range changed {
			if _, ok := g.nodes[c]; !ok {
				continue
			}
			if _, seen := visited[c]; seen {
				continue
			}
			visited[c] = struct{}{}
			queue = append(queue, c)
		}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			n := g.nodes[id]
			if n.kind != KindUnderlying {
				set[id] = struct{}{}
			}
			for s := range n.out {
				if _, seen := visited[s]; !seen {
					visited[s] = struct{}{}
					queue = append(queue, s)
				}
			}
		}
	}
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partition splits a set of object vertices into *fragments* — vertices
// other cached objects depend on (KindBoth, or any vertex with outgoing
// edges) — and leaf *pages*. DUP's incremental planner renders the fragment
// half of an affected set first, exactly once per batch, then rebuilds the
// page half by assembly, splicing the fresh fragment bytes instead of
// re-rendering them under every containing page. Unknown vertices are
// dropped; both halves preserve the input's relative order, so feeding
// Affected's sorted output keeps the partition deterministic.
func (g *Graph) Partition(ids []NodeID) (fragments, pages []NodeID) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, id := range ids {
		n, ok := g.nodes[id]
		if !ok {
			continue
		}
		if n.kind == KindBoth || len(n.out) > 0 {
			fragments = append(fragments, id)
		} else {
			pages = append(pages, id)
		}
	}
	return fragments, pages
}

// Staleness quantifies how obsolete each affected object becomes when the
// given underlying vertices change with the given magnitudes. It implements
// the weighted-propagation scheme of the DUP technical report: the graph is
// condensed into strongly connected components, and staleness flows through
// the condensation in topological order, with each edge contributing
// (source staleness) x (edge weight) to its target. Vertices in a cycle
// share the combined staleness that enters the cycle.
//
// Only vertices of kind object/both appear in the result. A caller then
// compares staleness against a threshold to decide whether a slightly
// obsolete page may stay in the cache (section 2 of the paper).
func (g *Graph) Staleness(changes map[NodeID]float64) map[NodeID]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()

	// Restrict work to the subgraph reachable from the changed set.
	reach := make(map[NodeID]struct{})
	var stack []NodeID
	for id, mag := range changes {
		if mag <= 0 {
			continue
		}
		if _, ok := g.nodes[id]; !ok {
			continue
		}
		if _, seen := reach[id]; !seen {
			reach[id] = struct{}{}
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.nodes[id].out {
			if _, seen := reach[s]; !seen {
				reach[s] = struct{}{}
				stack = append(stack, s)
			}
		}
	}
	if len(reach) == 0 {
		return map[NodeID]float64{}
	}

	comps := g.sccLocked(reach)
	compOf := make(map[NodeID]int, len(reach))
	for ci, members := range comps {
		for _, m := range members {
			compOf[m] = ci
		}
	}

	// Build the condensation with accumulated edge weights, and seed
	// component staleness with the external change magnitudes.
	type cedge struct {
		to int
		w  float64
	}
	cout := make([][]cedge, len(comps))
	indeg := make([]int, len(comps))
	seen := make([]map[int]int, len(comps)) // target comp -> index in cout[ci]
	stale := make([]float64, len(comps))
	for ci := range comps {
		seen[ci] = make(map[int]int)
	}
	for id := range reach {
		ci := compOf[id]
		if mag, ok := changes[id]; ok && mag > 0 {
			stale[ci] += mag
		}
		for s, w := range g.nodes[id].out {
			cj, inReach := compOf[s]
			if !inReach || cj == ci {
				continue
			}
			if k, ok := seen[ci][cj]; ok {
				cout[ci][k].w += w
			} else {
				seen[ci][cj] = len(cout[ci])
				cout[ci] = append(cout[ci], cedge{to: cj, w: w})
				indeg[cj]++
			}
		}
	}

	// Kahn's algorithm over the condensation (a DAG by construction).
	queue := make([]int, 0, len(comps))
	for ci := range comps {
		if indeg[ci] == 0 {
			queue = append(queue, ci)
		}
	}
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		for _, e := range cout[ci] {
			stale[e.to] += stale[ci] * e.w
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}

	out := make(map[NodeID]float64)
	for ci, members := range comps {
		if stale[ci] <= 0 {
			continue
		}
		for _, m := range members {
			if g.nodes[m].kind != KindUnderlying {
				out[m] = stale[ci]
			}
		}
	}
	return out
}

// sccLocked computes strongly connected components of the induced subgraph
// over the given vertex set using an iterative Tarjan's algorithm (the page
// universe is large enough that recursion depth would be a hazard).
func (g *Graph) sccLocked(sub map[NodeID]struct{}) [][]NodeID {
	index := make(map[NodeID]int, len(sub))
	low := make(map[NodeID]int, len(sub))
	onStack := make(map[NodeID]bool, len(sub))
	var sccStack []NodeID
	var comps [][]NodeID
	next := 0

	type frame struct {
		id    NodeID
		succs []NodeID
		i     int
	}
	for start := range sub {
		if _, done := index[start]; done {
			continue
		}
		var callStack []frame
		push := func(id NodeID) {
			index[id] = next
			low[id] = next
			next++
			sccStack = append(sccStack, id)
			onStack[id] = true
			n := g.nodes[id]
			succs := make([]NodeID, 0, len(n.out))
			for s := range n.out {
				if _, ok := sub[s]; ok {
					succs = append(succs, s)
				}
			}
			callStack = append(callStack, frame{id: id, succs: succs})
		}
		push(start)
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.i < len(f.succs) {
				s := f.succs[f.i]
				f.i++
				if _, visited := index[s]; !visited {
					push(s)
				} else if onStack[s] && index[s] < low[f.id] {
					low[f.id] = index[s]
				}
				continue
			}
			// Post-order: pop frame, possibly emit an SCC.
			if low[f.id] == index[f.id] {
				var comp []NodeID
				for {
					top := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.id {
						break
					}
				}
				comps = append(comps, comp)
			}
			id := f.id
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[id] < low[parent.id] {
					low[parent.id] = low[id]
				}
			}
		}
	}
	return comps
}

// HasCycle reports whether the graph contains a directed cycle. Simple ODGs
// are acyclic by construction; general ODGs may not be, and DUP must remain
// correct on them (Staleness handles cycles via SCC condensation).
func (g *Graph) HasCycle() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	all := make(map[NodeID]struct{}, len(g.nodes))
	for id, n := range g.nodes {
		all[id] = struct{}{}
		if _, self := n.out[id]; self {
			return true
		}
	}
	for _, comp := range g.sccLocked(all) {
		if len(comp) > 1 {
			return true
		}
	}
	return false
}

// TopoOrder returns the vertices in a topological order, or an error if the
// graph has a cycle. Useful for regenerating objects bottom-up (fragments
// before the pages embedding them).
func (g *Graph) TopoOrder() ([]NodeID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	indeg := make(map[NodeID]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = 0
	}
	for _, n := range g.nodes {
		for s := range n.out {
			indeg[s]++
		}
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	order := make([]NodeID, 0, len(g.nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		succs := make([]NodeID, 0, len(g.nodes[id].out))
		for s := range g.nodes[id].out {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, errors.New("odg: graph has a cycle")
	}
	return order, nil
}

// SubgraphTopoOrder orders the given vertices so that, within the set,
// predecessors come before successors — the order DUP regenerates affected
// objects in (fragments before the pages embedding them). Unknown vertices
// are dropped. Vertices on cycles (which have no valid order) are appended
// at the end in sorted order. Cost is proportional to the subset and its
// internal edges, not the whole graph, which matters because propagation
// runs on every database update.
func (g *Graph) SubgraphTopoOrder(ids []NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	in := make(map[NodeID]int, len(ids))
	for _, id := range ids {
		if _, ok := g.nodes[id]; ok {
			in[id] = 0
		}
	}
	for id := range in {
		for s := range g.nodes[id].out {
			if _, ok := in[s]; ok && s != id {
				in[s]++
			}
		}
	}
	queue := make([]NodeID, 0, len(in))
	for id, d := range in {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	order := make([]NodeID, 0, len(in))
	emitted := make(map[NodeID]struct{}, len(in))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		emitted[id] = struct{}{}
		var ready []NodeID
		for s := range g.nodes[id].out {
			if _, ok := in[s]; !ok || s == id {
				continue
			}
			in[s]--
			if in[s] == 0 {
				ready = append(ready, s)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		queue = append(queue, ready...)
	}
	if len(order) < len(in) {
		var rest []NodeID
		for id := range in {
			if _, ok := emitted[id]; !ok {
				rest = append(rest, id)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		order = append(order, rest...)
	}
	return order
}

// Objects returns all vertices of kind object or both, sorted.
func (g *Graph) Objects() []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]NodeID, 0, len(g.nodes))
	for id, n := range g.nodes {
		if n.kind != KindUnderlying {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Underlying returns all vertices of kind underlying or both, sorted.
func (g *Graph) Underlying() []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]NodeID, 0, len(g.nodes))
	for id, n := range g.nodes {
		if n.kind != KindObject {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes the graph for diagnostics.
type Stats struct {
	Nodes      int
	Edges      int
	Objects    int
	Underlying int
	Both       int
	Simple     bool
	MaxOutDeg  int
	MaxInDeg   int
}

// Snapshot returns current graph statistics.
func (g *Graph) Snapshot() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := Stats{Nodes: len(g.nodes), Edges: g.edges, Simple: g.weighted == 0 && g.violations == 0}
	for _, n := range g.nodes {
		switch n.kind {
		case KindObject:
			st.Objects++
		case KindUnderlying:
			st.Underlying++
		case KindBoth:
			st.Both++
		}
		if len(n.out) > st.MaxOutDeg {
			st.MaxOutDeg = len(n.out)
		}
		if len(n.in) > st.MaxInDeg {
			st.MaxInDeg = len(n.in)
		}
	}
	return st
}

// checkInvariants verifies internal consistency (edge symmetry, counter
// accuracy). It exists for tests; it is unexported but reachable via the
// package's test files.
func (g *Graph) checkInvariants() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	edges, weighted, violations := 0, 0, 0
	for id, n := range g.nodes {
		violations += violationCount(n)
		for s, w := range n.out {
			edges++
			if w != DefaultWeight {
				weighted++
			}
			ns, ok := g.nodes[s]
			if !ok {
				return fmt.Errorf("edge %v->%v points to missing node", id, s)
			}
			if win, ok := ns.in[id]; !ok || win != w {
				return fmt.Errorf("edge %v->%v asymmetric (out %v, in %v ok=%v)", id, s, w, win, ok)
			}
		}
		for p, w := range n.in {
			np, ok := g.nodes[p]
			if !ok {
				return fmt.Errorf("in-edge %v<-%v from missing node", id, p)
			}
			if wout, ok := np.out[id]; !ok || wout != w {
				return fmt.Errorf("in-edge %v<-%v asymmetric", id, p)
			}
		}
	}
	if edges != g.edges {
		return fmt.Errorf("edge count drift: counted %d, stored %d", edges, g.edges)
	}
	if weighted != g.weighted {
		return fmt.Errorf("weighted count drift: counted %d, stored %d", weighted, g.weighted)
	}
	if violations != g.violations {
		return fmt.Errorf("violation count drift: counted %d, stored %d", violations, g.violations)
	}
	return nil
}
