package odg

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// wireGraph is the serialized form: vertices with kinds, and edges with
// weights, both sorted for stable output.
type wireGraph struct {
	Nodes []wireNode `json:"nodes"`
	Edges []wireEdge `json:"edges"`
}

type wireNode struct {
	ID   NodeID `json:"id"`
	Kind string `json:"kind"`
}

type wireEdge struct {
	From   NodeID  `json:"from"`
	To     NodeID  `json:"to"`
	Weight float64 `json:"weight"`
}

// Encode writes the graph as JSON. The output is deterministic (sorted), so
// it diffs and hashes stably — a trigger monitor can checkpoint the ODG and
// recover it after a restart instead of waiting for every page to re-render
// and re-register.
func (g *Graph) Encode(w io.Writer) error {
	g.mu.RLock()
	wire := wireGraph{}
	for id, n := range g.nodes {
		wire.Nodes = append(wire.Nodes, wireNode{ID: id, Kind: n.kind.String()})
		for to, weight := range n.out {
			wire.Edges = append(wire.Edges, wireEdge{From: id, To: to, Weight: weight})
		}
	}
	g.mu.RUnlock()
	sort.Slice(wire.Nodes, func(i, j int) bool { return wire.Nodes[i].ID < wire.Nodes[j].ID })
	sort.Slice(wire.Edges, func(i, j int) bool {
		if wire.Edges[i].From != wire.Edges[j].From {
			return wire.Edges[i].From < wire.Edges[j].From
		}
		return wire.Edges[i].To < wire.Edges[j].To
	})
	enc := json.NewEncoder(w)
	return enc.Encode(wire)
}

// Decode reads a graph written by Encode into a new Graph.
func Decode(r io.Reader) (*Graph, error) {
	var wire wireGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("odg: decode: %w", err)
	}
	g := New()
	for _, n := range wire.Nodes {
		var k Kind
		switch n.Kind {
		case "underlying":
			k = KindUnderlying
		case "object":
			k = KindObject
		case "both":
			k = KindBoth
		default:
			return nil, fmt.Errorf("odg: decode: unknown kind %q for %q", n.Kind, n.ID)
		}
		g.AddNode(n.ID, k)
	}
	for _, e := range wire.Edges {
		if err := g.AddWeightedEdge(e.From, e.To, e.Weight); err != nil {
			return nil, fmt.Errorf("odg: decode edge %v->%v: %w", e.From, e.To, err)
		}
	}
	return g, nil
}

// Dot renders the graph in Graphviz dot syntax for visual inspection:
// underlying data as boxes, objects as ellipses, both-kind vertices as
// double ellipses, with edge weights labeled when not DefaultWeight.
// Output is deterministic.
func (g *Graph) Dot(w io.Writer, name string) error {
	g.mu.RLock()
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", name); err != nil {
		g.mu.RUnlock()
		return err
	}
	for _, id := range ids {
		shape := "ellipse"
		switch g.nodes[id].kind {
		case KindUnderlying:
			shape = "box"
		case KindBoth:
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  %q [shape=%s];\n", id, shape); err != nil {
			g.mu.RUnlock()
			return err
		}
	}
	for _, id := range ids {
		outs := make([]NodeID, 0, len(g.nodes[id].out))
		for to := range g.nodes[id].out {
			outs = append(outs, to)
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
		for _, to := range outs {
			weight := g.nodes[id].out[to]
			if weight != DefaultWeight {
				if _, err := fmt.Fprintf(w, "  %q -> %q [label=\"%g\"];\n", id, to, weight); err != nil {
					g.mu.RUnlock()
					return err
				}
			} else if _, err := fmt.Fprintf(w, "  %q -> %q;\n", id, to); err != nil {
				g.mu.RUnlock()
				return err
			}
		}
	}
	g.mu.RUnlock()
	_, err := fmt.Fprintln(w, "}")
	return err
}
