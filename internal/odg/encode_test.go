package odg

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := paperFig1(t)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("decoded %d/%d, want %d/%d", got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if w, ok := got.EdgeWeight("go1", "go5"); !ok || w != 5 {
		t.Fatalf("weight lost: %v %v", w, ok)
	}
	if k, _ := got.NodeKind("go5"); k != KindBoth {
		t.Fatalf("kind lost: %v", k)
	}
	if !reflect.DeepEqual(got.Affected("go2"), g.Affected("go2")) {
		t.Fatal("propagation differs after round trip")
	}
	if got.IsSimple() != g.IsSimple() {
		t.Fatal("simplicity differs after round trip")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := paperFig1(t)
	var a, b bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("non-deterministic encoding")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(strings.NewReader(`{"nodes":[{"id":"x","kind":"alien"}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Decode(strings.NewReader(`{"edges":[{"from":"a","to":"b","weight":-1}]}`)); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// Property: round-tripping any random graph preserves node count, edge
// count, simplicity, and the affected set of every vertex.
func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := buildRandom(rand.New(rand.NewSource(seed)), 120)
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() || got.IsSimple() != g.IsSimple() {
			return false
		}
		for _, id := range g.Underlying() {
			if !reflect.DeepEqual(got.Affected(id), g.Affected(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDotOutput(t *testing.T) {
	g := New()
	g.AddNode("both", KindBoth)
	if err := g.AddWeightedEdge("data", "both", 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("both", "page"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Dot(&buf, "odg"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "odg"`,
		`"data" [shape=box]`,
		`"page" [shape=ellipse]`,
		`"both" [shape=doublecircle]`,
		`"data" -> "both" [label="5"]`,
		`"both" -> "page";`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
	// Deterministic.
	var buf2 bytes.Buffer
	if err := g.Dot(&buf2, "odg"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("non-deterministic dot output")
	}
}
