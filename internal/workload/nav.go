package workload

// Design identifies a site structure for the navigation model.
type Design int

const (
	// Design1996 is the Atlanta hierarchy (Figure 7): home -> section ->
	// subsection -> leaf, no cross-links, no country/athlete collation.
	Design1996 Design = iota
	// Design1998 is the Nagano structure (Figure 11): per-day home pages
	// that carry the most-wanted information, plus cross-links between
	// results, athletes and countries.
	Design1998
)

// String names the design.
func (d Design) String() string {
	if d == Design1996 {
		return "1996-hierarchy"
	}
	return "1998-day-home"
}

// NavConfig parameterizes the navigation model: how many pieces of
// information a visit seeks and what each piece costs to reach under each
// structure.
type NavConfig struct {
	// PiecesPerVisit is the mean number of distinct facts (a result, a
	// medal count, an athlete's standing) a visitor wants.
	PiecesPerVisit float64
	// Depth1996 is the hits to descend the 1996 hierarchy to one leaf
	// (home, section index, sub-index, leaf = 4; fractional values model
	// mixed-depth content).
	Depth1996 float64
	// Misnav1996 is the extra hits per piece from wrong turns — the log
	// finding that "most users were spending too much time looking for
	// basic information".
	Misnav1996 float64
	// HomeSatisfied is the fraction of visits whose first piece is on the
	// current day's home page (the paper: over 25%).
	HomeSatisfied float64
	// FirstCost1998 is the hits for a first piece not on the home page.
	FirstCost1998 float64
	// CrossLinkCost is the hits for each additional piece in 1998, where
	// every leaf links to pertinent pages in other sections.
	CrossLinkCost float64
}

// DefaultNavConfig returns parameters calibrated to the paper's estimate:
// the 1996 design with 1998 content would have drawn over 200M hits on the
// peak day versus the 56.8M observed — a ratio just over 3.5x.
func DefaultNavConfig() NavConfig {
	return NavConfig{
		PiecesPerVisit: 2.0,
		Depth1996:      4.5,
		Misnav1996:     0.5,
		HomeSatisfied:  0.25,
		FirstCost1998:  2.2,
		CrossLinkCost:  0.95,
	}
}

// HitsPerVisit returns the expected page fetches per visit under the given
// design.
func (c NavConfig) HitsPerVisit(d Design) float64 {
	switch d {
	case Design1996:
		// No collation and no cross-links: every piece is a fresh descent.
		return c.PiecesPerVisit * (c.Depth1996 + c.Misnav1996)
	default:
		first := c.HomeSatisfied*1 + (1-c.HomeSatisfied)*c.FirstCost1998
		rest := (c.PiecesPerVisit - 1) * c.CrossLinkCost
		if rest < 0 {
			rest = 0
		}
		return first + rest
	}
}

// ProjectedDailyHits scales a 1998-design observed day to what the 1996
// design would have drawn for the same visitor demand.
func (c NavConfig) ProjectedDailyHits(observed1998 int64) int64 {
	ratio := c.HitsPerVisit(Design1996) / c.HitsPerVisit(Design1998)
	return int64(float64(observed1998) * ratio)
}
