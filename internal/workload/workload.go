// Package workload models the client traffic and the result/news feed of
// the 1998 Olympic Games web site (sections 3.1 and 5 of the paper).
//
// The model has four parts:
//
//   - a daily volume profile shaped like Figure 20 (ramp to the day-7 peak
//     of 56.8M hits, a second swell around day 14's figure skating);
//   - per-region diurnal curves like Figure 18, with each region peaking in
//     its local evening, plus event-completion spikes (the ski-jump peak of
//     98,000 hits/minute on day 10, the figure-skating peak of 110,414 on
//     day 14);
//   - a geographic mix like Figure 23 and a page-popularity mix over the
//     site's categories (a quarter of visitors satisfied by the current
//     day's home page);
//   - a navigation model comparing the 1996 hierarchy against the 1998
//     design for the E13 redesign experiment.
//
// All sampling is driven by a caller-supplied *rand.Rand so simulations are
// reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dupserve/internal/routing"
	"dupserve/internal/site"
)

// dailyMillions is the Figure 20 shape: hits per day in millions, summing
// to the paper's 634.7M over 16 days, peaking at 56.8M on day 7.
var dailyMillions = []float64{
	20.0, 28.0, 33.0, 37.0, 42.0, 48.0, 56.8, 45.0,
	40.0, 50.0, 42.0, 38.0, 36.0, 53.0, 36.0, 29.9,
}

// TotalPaperHits is the sum of the daily profile (millions).
const TotalPaperHits = 634.7

// Region UTC offsets (hours) for the diurnal model.
var regionUTCOffset = map[routing.Region]int{
	routing.RegionUS:     -6, // US Central, between the coasts
	routing.RegionJapan:  9,
	routing.RegionEurope: 1,
	routing.RegionAsia:   8,
	routing.RegionOther:  0,
}

// regionShare is the Figure 23 geographic mix.
var regionShare = map[routing.Region]float64{
	routing.RegionUS:     0.44,
	routing.RegionJapan:  0.30,
	routing.RegionEurope: 0.13,
	routing.RegionAsia:   0.08,
	routing.RegionOther:  0.05,
}

// Spike is a scheduled traffic surge around a marquee event.
type Spike struct {
	Day        int // 1-based
	UTCHour    int
	Multiplier float64 // applied to that hour's traffic
	Name       string
}

// PaperSpikes returns the two surges the paper calls out: men's ski jumping
// finals on day 10 (98k hits/min, mostly via Tokyo) and women's figure
// skating free skate on day 14 (110,414 hits/min record).
func PaperSpikes() []Spike {
	return []Spike{
		{Day: 10, UTCHour: 8, Multiplier: 1.8, Name: "mens-ski-jumping-final"},
		{Day: 14, UTCHour: 11, Multiplier: 2.0, Name: "womens-figure-skating-free"},
	}
}

// Config parameterizes a Model.
type Config struct {
	Seed int64
	// Days of competition; defaults to len(dailyMillions).
	Days int
	// TotalHits is the full-run hit count the daily profile is scaled to.
	// The simulator typically runs at 1/1000 of paper scale.
	TotalHits int64
	// Spikes lists scheduled surges (PaperSpikes for the paper's run).
	Spikes []Spike
}

// Model generates traffic against a built site.
type Model struct {
	cfg  Config
	site *site.Site

	days       int
	dayWeights []float64     // normalized
	spikeByKey map[int]Spike // day*24+hour -> spike

	zipfEvents   *rand.Zipf
	zipfAthletes *rand.Zipf
	zipfNews     *rand.Zipf
	zipfRng      *rand.Rand
}

// New returns a model over the site. The site provides the concrete page
// paths; the model owns popularity and timing.
func New(cfg Config, st *site.Site) *Model {
	if cfg.Days <= 0 {
		cfg.Days = len(dailyMillions)
	}
	if cfg.TotalHits <= 0 {
		cfg.TotalHits = 600_000 // ~1/1000 of paper scale
	}
	m := &Model{
		cfg:        cfg,
		site:       st,
		days:       cfg.Days,
		spikeByKey: make(map[int]Spike),
	}
	var total float64
	m.dayWeights = make([]float64, cfg.Days)
	for d := 0; d < cfg.Days; d++ {
		w := dailyMillions[d%len(dailyMillions)]
		m.dayWeights[d] = w
		total += w
	}
	for d := range m.dayWeights {
		m.dayWeights[d] /= total
	}
	for _, s := range cfg.Spikes {
		m.spikeByKey[s.Day*24+s.UTCHour] = s
	}
	m.zipfRng = rand.New(rand.NewSource(cfg.Seed))
	nEvents := uint64(len(st.Events))
	if nEvents == 0 {
		nEvents = 1
	}
	nAth := uint64(len(st.AthleteIDs))
	if nAth == 0 {
		nAth = 1
	}
	nNews := uint64(st.Spec.NewsStories)
	if nNews == 0 {
		nNews = 1
	}
	m.zipfEvents = rand.NewZipf(m.zipfRng, 1.2, 1, nEvents-1+1)
	m.zipfAthletes = rand.NewZipf(m.zipfRng, 1.3, 1, nAth-1+1)
	m.zipfNews = rand.NewZipf(m.zipfRng, 1.2, 1, nNews-1+1)
	return m
}

// Days returns the number of competition days.
func (m *Model) Days() int { return m.days }

// HitsForDay returns the target hit count for day (1-based), following the
// Figure 20 shape.
func (m *Model) HitsForDay(day int) int64 {
	if day < 1 || day > m.days {
		return 0
	}
	return int64(math.Round(float64(m.cfg.TotalHits) * m.dayWeights[day-1]))
}

// RegionShare returns the Figure 23 share for the region.
func (m *Model) RegionShare(r routing.Region) float64 { return regionShare[r] }

// Regions returns the modeled regions in stable order.
func (m *Model) Regions() []routing.Region {
	return []routing.Region{
		routing.RegionUS, routing.RegionJapan, routing.RegionEurope,
		routing.RegionAsia, routing.RegionOther,
	}
}

// HourWeight returns the relative traffic weight for the region at the
// given UTC hour: a diurnal curve peaking in the region's local evening,
// normalized so the 24 weights sum to 1.
func (m *Model) HourWeight(r routing.Region, utcHour int) float64 {
	local := ((utcHour+regionUTCOffset[r])%24 + 24) % 24
	return diurnal(local)
}

// diurnal is a normalized local-time curve: quiet 03:00, rising through
// the workday, peaking 20:00.
func diurnal(localHour int) float64 {
	// Base 1 plus an evening gaussian and a lunchtime bump.
	h := float64(localHour)
	w := 0.35 +
		1.6*math.Exp(-sq(angularDist(h, 20))/10) +
		0.7*math.Exp(-sq(angularDist(h, 13))/6)
	return w / diurnalNorm
}

var diurnalNorm = func() float64 {
	var t float64
	for h := 0; h < 24; h++ {
		hh := float64(h)
		t += 0.35 +
			1.6*math.Exp(-sq(angularDist(hh, 20))/10) +
			0.7*math.Exp(-sq(angularDist(hh, 13))/6)
	}
	return t
}()

func sq(x float64) float64 { return x * x }

// angularDist is the wrap-around distance between two hours of day.
func angularDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// SpikeMultiplier returns the surge factor for (day, utcHour): 1 normally,
// the configured multiplier during a scheduled spike.
func (m *Model) SpikeMultiplier(day, utcHour int) float64 {
	if s, ok := m.spikeByKey[day*24+utcHour]; ok {
		return s.Multiplier
	}
	return 1
}

// HitsForHour returns the target hits for a (day, utcHour, region) cell:
// day volume x region share x region-local diurnal weight x spike factor,
// renormalized over the day so that spikes concentrate traffic into their
// hour without inflating the daily total — a marquee event pulls the
// audience forward, it does not mint new visitors (day 14 had the record
// minute, but day 7 remained the record day).
func (m *Model) HitsForHour(day, utcHour int, r routing.Region) int64 {
	var norm float64
	for h := 0; h < 24; h++ {
		norm += m.HourWeight(r, h) * m.SpikeMultiplier(day, h)
	}
	if norm <= 0 {
		return 0
	}
	w := m.HourWeight(r, utcHour) * m.SpikeMultiplier(day, utcHour) / norm
	return int64(math.Round(float64(m.HitsForDay(day)) * m.RegionShare(r) * w))
}

// SampleRegion draws a region from the Figure 23 mix.
func (m *Model) SampleRegion(rng *rand.Rand) routing.Region {
	x := rng.Float64()
	for _, r := range m.Regions() {
		x -= regionShare[r]
		if x < 0 {
			return r
		}
	}
	return routing.RegionOther
}

// SamplePage draws a page path for a request arriving on the given day from
// the given region. The category mix reflects the 1998 logs: over a quarter
// of users found what they wanted on the current day's home page.
func (m *Model) SamplePage(rng *rand.Rand, day int, r routing.Region) string {
	lang := "en"
	if r == routing.RegionJapan && len(m.site.Spec.Languages) > 1 && rng.Float64() < 0.8 {
		lang = m.site.Spec.Languages[1]
	}
	x := rng.Float64()
	switch {
	case x < 0.28: // current day's home page
		return fmt.Sprintf("/%s/home/day%02d", lang, clamp(day, 1, m.site.Spec.Days))
	case x < 0.36: // an earlier day's home page
		d := 1
		if day > 1 {
			d = 1 + rng.Intn(day)
		}
		return fmt.Sprintf("/%s/home/day%02d", lang, clamp(d, 1, m.site.Spec.Days))
	case x < 0.56: // sport and event pages, Zipf over events
		ev := m.site.Events[m.zipfIndex(m.zipfEvents, len(m.site.Events))]
		if rng.Float64() < 0.35 {
			return "/" + lang + "/sports/" + ev.Sport
		}
		return "/" + lang + "/sports/" + ev.Sport + "/" + ev.Key
	case x < 0.71: // athlete pages
		id := m.site.AthleteIDs[m.zipfIndex(m.zipfAthletes, len(m.site.AthleteIDs))]
		return "/" + lang + "/athletes/" + id
	case x < 0.79: // country pages
		cc := m.site.CountryCodes[rng.Intn(len(m.site.CountryCodes))]
		return "/" + lang + "/countries/" + cc
	case x < 0.89: // news
		if rng.Float64() < 0.3 {
			return "/" + lang + "/news"
		}
		n := m.zipfIndex(m.zipfNews, m.site.Spec.NewsStories)
		return fmt.Sprintf("/%s/news/n%03d", lang, n)
	case x < 0.93: // medal standings
		return "/" + lang + "/medals"
	default: // static sections
		statics := []string{"/welcome", "/venues", "/nagano", "/fun"}
		return "/" + lang + statics[rng.Intn(len(statics))]
	}
}

// zipfIndex draws a bounded index from a Zipf source. rand.Zipf is not
// safe for concurrent use; the Model serializes access through its own rng,
// so SamplePage must be called from one goroutine at a time (the simulator
// does, per run).
func (m *Model) zipfIndex(z *rand.Zipf, n int) int {
	if n <= 0 {
		return 0
	}
	v := int(z.Uint64())
	if v >= n {
		v = n - 1
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Completion schedules one event's result arriving during the games.
type Completion struct {
	Event   *site.Event
	Day     int
	UTCHour int
	Minute  int
}

// CompletionsForDay lists the events whose results arrive on the given day,
// spread deterministically across the competition hours (02:00-14:00 UTC,
// i.e. 11:00-23:00 JST — Nagano's competition window).
func (m *Model) CompletionsForDay(day int) []Completion {
	var out []Completion
	i := 0
	for _, ev := range m.site.Events {
		if ev.Day != day {
			continue
		}
		out = append(out, Completion{
			Event:   ev,
			Day:     day,
			UTCHour: 2 + (i*3)%12,
			Minute:  (i * 17) % 60,
		})
		i++
	}
	return out
}

// NewsPerDay is how many stories the editorial desk publishes daily.
const NewsPerDay = 20

// StoriesForDay returns the story numbers published on the given day (story
// pages exist for all numbers up front; publishing fills them in).
func (m *Model) StoriesForDay(day int) []int {
	var out []int
	for i := 0; i < NewsPerDay; i++ {
		n := (day-1)*NewsPerDay + i
		if n >= m.site.Spec.NewsStories {
			break
		}
		out = append(out, n)
	}
	return out
}
