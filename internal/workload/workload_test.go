package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
	"dupserve/internal/routing"
	"dupserve/internal/site"

	"dupserve/internal/cache"
)

func testModel(t *testing.T) (*Model, *site.Site) {
	t.Helper()
	d := db.New("m")
	g := odg.New()
	c := cache.New("c")
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	var err error
	st, err = site.Build(site.DefaultSpec(), d, e)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Seed: 7, TotalHits: 100_000, Spikes: PaperSpikes()}, st)
	return m, st
}

func TestDailyProfileShape(t *testing.T) {
	m, _ := testModel(t)
	var total int64
	peakDay, peak := 0, int64(0)
	for d := 1; d <= m.Days(); d++ {
		h := m.HitsForDay(d)
		total += h
		if h > peak {
			peak, peakDay = h, d
		}
	}
	if peakDay != 7 {
		t.Fatalf("peak day = %d, want 7 (figure 20)", peakDay)
	}
	if math.Abs(float64(total)-100_000) > 20 {
		t.Fatalf("total = %d, want ~100000", total)
	}
	// Second swell around day 14 (figure skating): day 14 beats days 13
	// and 15.
	if m.HitsForDay(14) <= m.HitsForDay(13) || m.HitsForDay(14) <= m.HitsForDay(15) {
		t.Fatal("day 14 is not a local peak")
	}
	if m.HitsForDay(0) != 0 || m.HitsForDay(99) != 0 {
		t.Fatal("out-of-range days should be 0")
	}
}

func TestRegionSharesSumToOne(t *testing.T) {
	m, _ := testModel(t)
	var total float64
	for _, r := range m.Regions() {
		total += m.RegionShare(r)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("region shares sum to %v", total)
	}
	if m.RegionShare(routing.RegionUS) <= m.RegionShare(routing.RegionEurope) {
		t.Fatal("US should dominate the mix (figure 23)")
	}
}

func TestHourWeightsNormalizedAndPeakEvening(t *testing.T) {
	m, _ := testModel(t)
	for _, r := range m.Regions() {
		var total float64
		best, bestH := 0.0, -1
		for h := 0; h < 24; h++ {
			w := m.HourWeight(r, h)
			total += w
			if w > best {
				best, bestH = w, h
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("region %s hour weights sum to %v", r, total)
		}
		// Peak must be the region's local evening (20:00 local).
		wantUTC := ((20-utcOffset(r))%24 + 24) % 24
		if bestH != wantUTC {
			t.Fatalf("region %s peaks at UTC %d, want %d", r, bestH, wantUTC)
		}
	}
}

func utcOffset(r routing.Region) int { return regionUTCOffset[r] }

func TestDiurnalPeakToAverage(t *testing.T) {
	// The paper planned for a 5:1 peak-to-average ratio including event
	// spikes. Diurnal alone should give 2-4x; with a 2.8x spike the
	// combined ratio lands in the planned band.
	m, _ := testModel(t)
	var sum, peak float64
	for h := 0; h < 24; h++ {
		w := m.HourWeight(routing.RegionJapan, h)
		sum += w
		if w > peak {
			peak = w
		}
	}
	avg := sum / 24
	ratio := peak / avg
	if ratio < 1.8 || ratio > 4 {
		t.Fatalf("diurnal peak/avg = %v, want 1.8-4", ratio)
	}
	spiked := ratio * 2.8
	if spiked < 5 {
		t.Fatalf("spiked peak/avg = %v, want >= 5", spiked)
	}
}

func TestSpikeMultiplier(t *testing.T) {
	m, _ := testModel(t)
	if m.SpikeMultiplier(10, 8) <= 1 || m.SpikeMultiplier(14, 11) <= 1 {
		t.Fatal("paper spikes missing")
	}
	if m.SpikeMultiplier(1, 1) != 1 {
		t.Fatal("quiet hour has a spike")
	}
}

func TestHitsForHourComposition(t *testing.T) {
	m, _ := testModel(t)
	h := m.HitsForHour(7, 11, routing.RegionJapan)
	manual := float64(m.HitsForDay(7)) * m.RegionShare(routing.RegionJapan) * m.HourWeight(routing.RegionJapan, 11)
	if math.Abs(float64(h)-manual) > 1 {
		t.Fatalf("HitsForHour = %d, manual = %v", h, manual)
	}
}

func TestSamplePageAlwaysResolvable(t *testing.T) {
	m, st := testModel(t)
	rng := rand.New(rand.NewSource(42))
	statics := st.Statics()
	for i := 0; i < 5000; i++ {
		day := 1 + rng.Intn(st.Spec.Days)
		p := m.SamplePage(rng, day, m.SampleRegion(rng))
		if st.Engine.Defined(p) {
			continue
		}
		if _, ok := statics[p]; ok {
			continue
		}
		t.Fatalf("sampled unresolvable page %q", p)
	}
}

func TestSamplePageHomeShare(t *testing.T) {
	m, _ := testModel(t)
	rng := rand.New(rand.NewSource(1))
	home := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := m.SamplePage(rng, 3, routing.RegionUS)
		if strings.Contains(p, "/home/day03") {
			home++
		}
	}
	share := float64(home) / n
	// "over 25% of the users found the information they were looking for
	// by examining the home page for the current day"
	if share < 0.25 || share > 0.33 {
		t.Fatalf("current-day home share = %v, want 0.25-0.33", share)
	}
}

func TestSamplePageLanguageByRegion(t *testing.T) {
	// Japanese pages require a 2-language site.
	d := db.New("m2")
	g := odg.New()
	c := cache.New("c2")
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	e := core.NewEngine(g, c, core.WithGenerator(gen))
	spec := site.DefaultSpec()
	spec.Languages = []string{"en", "ja"}
	var err error
	st, err = site.Build(spec, d, e)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Seed: 3, TotalHits: 1000}, st)
	rng := rand.New(rand.NewSource(2))
	ja := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if strings.HasPrefix(m.SamplePage(rng, 1, routing.RegionJapan), "/ja/") {
			ja++
		}
	}
	if share := float64(ja) / n; share < 0.7 || share > 0.9 {
		t.Fatalf("japanese-language share from Japan = %v, want ~0.8", share)
	}
	us := 0
	for i := 0; i < n; i++ {
		if strings.HasPrefix(m.SamplePage(rng, 1, routing.RegionUS), "/ja/") {
			us++
		}
	}
	if us != 0 {
		t.Fatalf("US clients sampled %d japanese pages", us)
	}
}

func TestSampleRegionDistribution(t *testing.T) {
	m, _ := testModel(t)
	rng := rand.New(rand.NewSource(5))
	counts := map[routing.Region]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[m.SampleRegion(rng)]++
	}
	for _, r := range m.Regions() {
		got := float64(counts[r]) / n
		want := m.RegionShare(r)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("region %s share = %v, want ~%v", r, got, want)
		}
	}
}

func TestCompletionsCoverAllEvents(t *testing.T) {
	m, st := testModel(t)
	total := 0
	for d := 1; d <= st.Spec.Days; d++ {
		comps := m.CompletionsForDay(d)
		for _, c := range comps {
			if c.Event.Day != d {
				t.Fatalf("completion on wrong day: %+v", c)
			}
			if c.UTCHour < 2 || c.UTCHour > 13 {
				t.Fatalf("completion outside competition window: %+v", c)
			}
		}
		total += len(comps)
	}
	if total != len(st.Events) {
		t.Fatalf("completions = %d, events = %d", total, len(st.Events))
	}
}

func TestStoriesForDay(t *testing.T) {
	m, st := testModel(t)
	seen := map[int]bool{}
	for d := 1; d <= st.Spec.Days; d++ {
		for _, n := range m.StoriesForDay(d) {
			if seen[n] {
				t.Fatalf("story %d published twice", n)
			}
			seen[n] = true
			if n >= st.Spec.NewsStories {
				t.Fatalf("story %d out of range", n)
			}
		}
	}
}

func TestNavigationRedesignRatio(t *testing.T) {
	cfg := DefaultNavConfig()
	h96 := cfg.HitsPerVisit(Design1996)
	h98 := cfg.HitsPerVisit(Design1998)
	ratio := h96 / h98
	// "over three times the maximum number of hits we received" — the
	// paper's 200M projection vs 56.8M observed is 3.52x.
	if ratio < 3.0 || ratio > 4.0 {
		t.Fatalf("hits ratio = %v, want 3-4", ratio)
	}
	proj := cfg.ProjectedDailyHits(56_800_000)
	if proj < 170_000_000 || proj > 230_000_000 {
		t.Fatalf("projected peak-day hits = %d, want ~200M", proj)
	}
}

func TestNavigationSinglePieceVisit(t *testing.T) {
	cfg := DefaultNavConfig()
	cfg.PiecesPerVisit = 1
	if got := cfg.HitsPerVisit(Design1998); got < 1 || got > cfg.FirstCost1998 {
		t.Fatalf("single-piece 1998 visit = %v", got)
	}
}

func TestDesignString(t *testing.T) {
	if Design1996.String() == Design1998.String() {
		t.Fatal("design names collide")
	}
}

func TestSampleSessionStructure(t *testing.T) {
	m, st := testModel(t)
	rng := rand.New(rand.NewSource(9))
	statics := st.Statics()
	starts, singles, total := 0, 0, 0
	for i := 0; i < 5000; i++ {
		visit := m.SampleSession(rng, 2, routing.RegionUS)
		if len(visit) == 0 || len(visit) > 12 {
			t.Fatalf("visit length %d", len(visit))
		}
		if visit[0] == "/en/home/day02" {
			starts++
		}
		if len(visit) == 1 {
			singles++
		}
		total += len(visit)
		// Every page in a session must resolve.
		for _, p := range visit {
			if !st.Engine.Defined(p) {
				if _, ok := statics[p]; !ok {
					t.Fatalf("session page %q unresolvable", p)
				}
			}
		}
	}
	if starts != 5000 {
		t.Fatalf("all sessions must enter at the day home page: %d", starts)
	}
	share := float64(singles) / 5000
	if share < 0.22 || share > 0.33 {
		t.Fatalf("home-satisfied share = %.3f, want ~0.27", share)
	}
	mean := float64(total) / 5000
	if mean < 1.5 || mean > 4.5 {
		t.Fatalf("mean session length = %.2f, want short 1998-style visits", mean)
	}
}

func TestSampleSessionCrossLinks(t *testing.T) {
	// Event pages must link to participants, athlete pages to their
	// country.
	m, st := testModel(t)
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for i := 0; i < 3000 && checked < 50; i++ {
		visit := m.SampleSession(rng, 1, routing.RegionUS)
		for j := 0; j+1 < len(visit); j++ {
			cur, next := visit[j], visit[j+1]
			if strings.Contains(cur, "/athletes/") && strings.Contains(next, "/countries/") {
				id := cur[strings.LastIndex(cur, "/")+1:]
				wantCC := st.AthleteCountry(id)
				gotCC := next[strings.LastIndex(next, "/")+1:]
				if wantCC != gotCC {
					t.Fatalf("athlete %s (%s) linked to country %s", id, wantCC, gotCC)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no athlete->country transitions sampled")
	}
}
