package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"dupserve/internal/routing"
	"dupserve/internal/site"
)

// SampleSession returns one correlated visit: the sequence of page paths a
// 1998-design user follows, entering at the current day's home page and
// riding cross-links — an event page leads to a participant's athlete page,
// which leads to that athlete's country page; the news index leads into a
// story. Independent-sample traffic (SamplePage) models aggregate load;
// sessions model the navigation behaviour the weblog analyzer
// reconstructs, so both ends of the paper's methodology meet in one model.
//
// Sessions are bounded at 12 pages; the mean length tracks the 1998
// design's short visits (a quarter of users satisfied at the home page).
func (m *Model) SampleSession(rng *rand.Rand, day int, r routing.Region) []string {
	lang := "en"
	if r == routing.RegionJapan && len(m.site.Spec.Languages) > 1 && rng.Float64() < 0.8 {
		lang = m.site.Spec.Languages[1]
	}
	day = clamp(day, 1, m.site.Spec.Days)
	visit := []string{fmt.Sprintf("/%s/home/day%02d", lang, day)}
	// A quarter of visits end right at the home page.
	if rng.Float64() < 0.27 {
		return visit
	}

	cur := visit[0]
	for len(visit) < 12 {
		next := m.nextPage(rng, lang, cur)
		if next == "" {
			break
		}
		visit = append(visit, next)
		cur = next
		// Geometric continuation: mean ~2 follow-ups.
		if rng.Float64() < 0.45 {
			break
		}
	}
	return visit
}

// nextPage follows one cross-link from the current page.
func (m *Model) nextPage(rng *rand.Rand, lang, cur string) string {
	switch {
	case strings.Contains(cur, "/home/"):
		// The home page links to everything; weight toward results.
		switch rng.Intn(5) {
		case 0:
			return "/" + lang + "/medals"
		case 1:
			return "/" + lang + "/news"
		default:
			ev := m.site.Events[m.zipfIndex(m.zipfEvents, len(m.site.Events))]
			return "/" + lang + "/sports/" + ev.Sport + "/" + ev.Key
		}
	case strings.Contains(cur, "/sports/") && strings.Contains(cur[strings.Index(cur, "/sports/")+8:], "/"):
		// Event page: follow the gold medalist (the page links athletes).
		ev := m.eventForPage(cur)
		if ev == nil || len(ev.Participants) == 0 {
			return ""
		}
		id := ev.Participants[rng.Intn(len(ev.Participants))]
		return "/" + lang + "/athletes/" + id
	case strings.Contains(cur, "/athletes/"):
		// Athlete page links to the athlete's country.
		id := cur[strings.LastIndexByte(cur, '/')+1:]
		if cc := m.site.AthleteCountry(id); cc != "" {
			return "/" + lang + "/countries/" + cc
		}
		return ""
	case strings.HasSuffix(cur, "/news"):
		n := m.zipfIndex(m.zipfNews, m.site.Spec.NewsStories)
		return fmt.Sprintf("/%s/news/n%03d", lang, n)
	case strings.Contains(cur, "/medals"):
		cc := m.site.CountryCodes[rng.Intn(len(m.site.CountryCodes))]
		return "/" + lang + "/countries/" + cc
	default:
		return ""
	}
}

// eventForPage resolves an event page path back to its Event.
func (m *Model) eventForPage(path string) *site.Event {
	key := path[strings.LastIndexByte(path, '/')+1:]
	for _, ev := range m.site.Events {
		if ev.Key == key {
			return ev
		}
	}
	return nil
}
