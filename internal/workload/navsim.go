package workload

import (
	"math/rand"
)

// GoalKind is what a visitor came to learn.
type GoalKind int

const (
	// GoalResult: the outcome of a specific event.
	GoalResult GoalKind = iota
	// GoalMedals: a country's medal tally. In 1996 this information was
	// not collated — "results corresponding to a particular country or
	// athlete could not be collated. Many users ... felt that this was a
	// limitation" — so a 1996 visitor had to tally event pages by hand.
	GoalMedals
	// GoalNews: the current top story.
	GoalNews
)

// NavSimConfig parameterizes the navigation Monte Carlo. The structural
// constants encode the two page organizations (figures 7 and 11); the
// behavioural constants (misnavigation, goals per visit) encode the log
// findings.
type NavSimConfig struct {
	// GoalsPerVisitMean is the mean of the (geometric) number of facts a
	// visitor wants.
	GoalsPerVisitMean float64
	// MisnavProb is the chance of a wrong turn during a hierarchy descent,
	// costing a backtrack (2 extra hits).
	MisnavProb float64
	// EventsPerTally is how many event pages a 1996 visitor checks to
	// assemble a country's medal standing by hand.
	EventsPerTally int
	// HomeSatisfiedProb is the chance a 1998 result/news goal is answered
	// directly by the current day's home page.
	HomeSatisfiedProb float64
	// GoalMix is the probability of each goal kind, indexed by GoalKind;
	// must sum to 1.
	GoalMix [3]float64
}

// DefaultNavSimConfig matches the paper's observations: ≥25% of visitors
// satisfied at the home page, a hierarchy at least 3 requests deep to any
// 1996 result, and enough hand-tallying to produce the >3x hit inflation
// the team projected for the 1996 design.
func DefaultNavSimConfig() NavSimConfig {
	return NavSimConfig{
		GoalsPerVisitMean: 2.0,
		MisnavProb:        0.2,
		EventsPerTally:    3,
		HomeSatisfiedProb: 0.28,
		GoalMix:           [3]float64{0.55, 0.25, 0.20},
	}
}

// NavStats summarizes simulated visits under one design.
type NavStats struct {
	Visits       int
	TotalHits    int
	MeanHits     float64
	SingleHit    float64 // share of visits satisfied by one fetch
	MaxHits      int
	LeafReached  int // goals resolved at a leaf page
	HandTallies  int // 1996-only: goals resolved by tallying event pages
	HomeAnswered int // 1998-only: goals answered on the home page
}

// SimulateVisits runs n visits against the given design and returns the
// aggregate. Deterministic for a given rng state.
func (c NavSimConfig) SimulateVisits(d Design, n int, rng *rand.Rand) NavStats {
	st := NavStats{Visits: n}
	for v := 0; v < n; v++ {
		hits := c.simulateVisit(d, rng, &st)
		st.TotalHits += hits
		if hits == 1 {
			st.SingleHit++
		}
		if hits > st.MaxHits {
			st.MaxHits = hits
		}
	}
	if n > 0 {
		st.MeanHits = float64(st.TotalHits) / float64(n)
		st.SingleHit /= float64(n)
	}
	return st
}

// simulateVisit walks one user session and returns its page fetches.
func (c NavSimConfig) simulateVisit(d Design, rng *rand.Rand, st *NavStats) int {
	goals := 1
	for rng.Float64() < 1-1/c.GoalsPerVisitMean {
		goals++
		if goals >= 8 {
			break
		}
	}
	hits := 0
	for g := 0; g < goals; g++ {
		kind := c.sampleGoal(rng)
		first := g == 0
		switch d {
		case Design1996:
			hits += c.hits1996(kind, first, rng, st)
		default:
			hits += c.hits1998(kind, first, rng, st)
		}
	}
	return hits
}

func (c NavSimConfig) sampleGoal(rng *rand.Rand) GoalKind {
	x := rng.Float64()
	for k, p := range c.GoalMix {
		x -= p
		if x < 0 {
			return GoalKind(k)
		}
	}
	return GoalNews
}

// descend1996 walks home -> section index -> subsection -> leaf, with
// misnavigation backtracks. The entry hit (home) is charged only for the
// first goal of the visit; the 1996 hierarchy has no cross-links ("when a
// client reached a leaf page, there were no direct links to pertinent
// information in other sections"), so every later goal re-descends from
// the top but the home page itself is cached by the browser.
func (c NavSimConfig) descend1996(first bool, rng *rand.Rand) int {
	hits := 3 // section index, subsection, leaf
	if first {
		hits++ // the home page itself
	}
	for level := 0; level < 3; level++ {
		if rng.Float64() < c.MisnavProb {
			hits += 2 // wrong branch and back
		}
	}
	return hits
}

func (c NavSimConfig) hits1996(kind GoalKind, first bool, rng *rand.Rand, st *NavStats) int {
	switch kind {
	case GoalMedals:
		// No country collation: descend once, then tally event leaves.
		st.HandTallies++
		hits := c.descend1996(first, rng)
		for i := 1; i < c.EventsPerTally; i++ {
			// Each further event requires climbing back and descending
			// within the sport section: ~2 hits.
			hits += 2
		}
		return hits
	default:
		st.LeafReached++
		return c.descend1996(first, rng)
	}
}

func (c NavSimConfig) hits1998(kind GoalKind, first bool, rng *rand.Rand, st *NavStats) int {
	// The day's home page carries recent results, medal standings and top
	// stories; country/athlete pages collate; leaves cross-link.
	if first {
		if rng.Float64() < c.HomeSatisfiedProb {
			st.HomeAnswered++
			return 1 // answered on the home page itself
		}
		switch kind {
		case GoalMedals:
			st.LeafReached++
			return 2 // home -> country page (collated)
		default:
			st.LeafReached++
			// home -> section or event page; deep events one more hop.
			if rng.Float64() < 0.4 {
				return 3
			}
			return 2
		}
	}
	// Subsequent goals ride cross-links from the current leaf.
	st.LeafReached++
	if rng.Float64() < 0.3 {
		return 2
	}
	return 1
}
