package workload

import (
	"math/rand"
	"testing"
)

func TestNavSimRatioMatchesPaperProjection(t *testing.T) {
	cfg := DefaultNavSimConfig()
	rng := rand.New(rand.NewSource(98))
	s96 := cfg.SimulateVisits(Design1996, 50_000, rng)
	s98 := cfg.SimulateVisits(Design1998, 50_000, rng)
	ratio := s96.MeanHits / s98.MeanHits
	// The paper projected >200M hits/day under the 1996 design vs 56.8M
	// observed — "over three times".
	if ratio < 3.0 || ratio > 4.5 {
		t.Fatalf("hits ratio = %.2f (96: %.2f, 98: %.2f), want 3-4.5", ratio, s96.MeanHits, s98.MeanHits)
	}
}

func TestNavSim1998HomeSatisfaction(t *testing.T) {
	cfg := DefaultNavSimConfig()
	rng := rand.New(rand.NewSource(7))
	s98 := cfg.SimulateVisits(Design1998, 50_000, rng)
	// "over 25% of the users found the information they were looking for
	// by examining the home page for the current day". Single-hit visits
	// are the strict subset of those with exactly one goal; HomeAnswered
	// counts all goals answered at home.
	homeShare := float64(s98.HomeAnswered) / float64(s98.Visits)
	if homeShare < 0.25 {
		t.Fatalf("home-answered share = %.3f, want >= 0.25", homeShare)
	}
	if s98.SingleHit <= 0 {
		t.Fatal("no single-hit visits at all")
	}
}

func TestNavSim1996DepthAtLeastThree(t *testing.T) {
	// "At least three Web server requests were needed to navigate to a
	// result page."
	cfg := DefaultNavSimConfig()
	cfg.GoalsPerVisitMean = 1
	cfg.MisnavProb = 0
	cfg.GoalMix = [3]float64{1, 0, 0} // results only
	rng := rand.New(rand.NewSource(1))
	s96 := cfg.SimulateVisits(Design1996, 1_000, rng)
	if s96.MeanHits < 3 {
		t.Fatalf("1996 result goal costs %.2f hits, want >= 3", s96.MeanHits)
	}
	if s96.SingleHit != 0 {
		t.Fatal("1996 hierarchy cannot satisfy at the home page")
	}
}

func TestNavSimHandTalliesOnlyIn1996(t *testing.T) {
	cfg := DefaultNavSimConfig()
	cfg.GoalMix = [3]float64{0, 1, 0} // medal goals only
	rng := rand.New(rand.NewSource(2))
	s96 := cfg.SimulateVisits(Design1996, 5_000, rng)
	s98 := cfg.SimulateVisits(Design1998, 5_000, rng)
	if s96.HandTallies == 0 {
		t.Fatal("1996 medal goals never hand-tallied")
	}
	if s98.HandTallies != 0 {
		t.Fatal("1998 collated design should never hand-tally")
	}
	if s96.MeanHits <= s98.MeanHits*2 {
		t.Fatalf("medal tallying should be much worse in 1996: %.2f vs %.2f", s96.MeanHits, s98.MeanHits)
	}
}

func TestNavSimDeterministic(t *testing.T) {
	cfg := DefaultNavSimConfig()
	a := cfg.SimulateVisits(Design1996, 1000, rand.New(rand.NewSource(5)))
	b := cfg.SimulateVisits(Design1996, 1000, rand.New(rand.NewSource(5)))
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestNavSimZeroVisits(t *testing.T) {
	cfg := DefaultNavSimConfig()
	s := cfg.SimulateVisits(Design1998, 0, rand.New(rand.NewSource(1)))
	if s.MeanHits != 0 || s.Visits != 0 {
		t.Fatalf("zero-visit stats = %+v", s)
	}
}

func TestNavSimMisnavigationIncreasesHits(t *testing.T) {
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	clean := DefaultNavSimConfig()
	clean.MisnavProb = 0
	lost := DefaultNavSimConfig()
	lost.MisnavProb = 0.5
	a := clean.SimulateVisits(Design1996, 20_000, rng1)
	b := lost.SimulateVisits(Design1996, 20_000, rng2)
	if b.MeanHits <= a.MeanHits {
		t.Fatalf("misnavigation had no cost: %.2f vs %.2f", b.MeanHits, a.MeanHits)
	}
}

func BenchmarkNavSimVisit(b *testing.B) {
	cfg := DefaultNavSimConfig()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.SimulateVisits(Design1998, 1, rng)
	}
}
