// Package trace implements end-to-end propagation tracing for the DUP
// pipeline: commit → CDC → batch → DUP traversal → render → cache push.
//
// The paper's headline operational claim — pages "reflecting current events
// within a maximum of sixty seconds" — is a statement about propagation
// delay, yet that delay spans four subsystems (database, trigger monitor,
// DUP engine, cache distribution) and is invisible to any one of them. This
// package makes it first-class: the database mints a trace ID at commit
// time, the ID rides the CDC transaction through the trigger monitor's
// batching and the engine's traversal/render/push phases, and the monitor
// records one Trace per transaction carrying the boundary timestamp of
// every stage.
//
// A Tracer keeps a bounded ring of recent traces (for /debug/traces), feeds
// per-stage latency histograms (for percentiles), and continuously
// evaluates the freshness SLO: each completed trace whose commit-to-push
// latency exceeds the SLO counts as a violation, and the set of in-flight
// transactions yields the current worst staleness — how far behind the
// site is right now.
//
// Record is the hot path: it takes a Trace by value, writes into
// preallocated storage, and performs no allocation, so tracing every
// transaction is affordable even at Olympic update rates.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"dupserve/internal/stats"
)

// Stage indexes the boundary timestamps of a propagation trace. Each
// constant names the event that *ends* the stage: StageCDC is the moment
// the transaction arrived at the trigger monitor, StagePush the moment the
// last fresh page reached the serving caches.
type Stage int

const (
	// StageCommit is the database commit (the trace's birth).
	StageCommit Stage = iota
	// StageCDC is arrival at the trigger monitor via the change feed.
	StageCDC
	// StageBatch is the batch flush that began the propagation.
	StageBatch
	// StageDUP is completion of the dependence-graph traversal.
	StageDUP
	// StageRender is completion of page regeneration.
	StageRender
	// StagePush is completion of distribution to the serving caches.
	StagePush
	// NumStages is the number of trace stages.
	NumStages
)

var stageNames = [NumStages]string{"commit", "cdc", "batch", "dup", "render", "push"}

// String names the stage.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Stages returns all stages in pipeline order.
func Stages() [NumStages]Stage {
	var out [NumStages]Stage
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Trace is one transaction's journey through the pipeline: a boundary
// timestamp per stage plus what the propagation touched. Traces are plain
// values so recording them never allocates.
type Trace struct {
	// ID is the trace ID minted by the database at commit.
	ID int64
	// LSN is the transaction's log sequence number.
	LSN int64
	// Times holds the boundary timestamp of each stage, indexed by Stage.
	Times [NumStages]time.Time
	// Vertices is the number of changed ODG vertices in the propagation
	// batch that carried this transaction.
	Vertices int
	// FanOut is the number of cached objects the traversal found affected.
	FanOut int
	// Updated and Invalidated count the remedies the batch applied.
	Updated, Invalidated int
	// FragmentRenders and FragmentReuses carry the batch's render-vs-reuse
	// accounting from incremental assembly: fragments rendered (each
	// changed fragment once) and cached fragment splices during page
	// rebuilds. Zero when the engine propagated without an assembler.
	FragmentRenders, FragmentReuses int
}

// Total returns the commit-to-push latency.
func (t Trace) Total() time.Duration {
	return t.Times[StagePush].Sub(t.Times[StageCommit])
}

// StageDur returns the duration of stage s — the gap between its boundary
// and the previous stage's. StageCommit has no predecessor and returns 0.
func (t Trace) StageDur(s Stage) time.Duration {
	if s <= StageCommit || s >= NumStages {
		return 0
	}
	return t.Times[s].Sub(t.Times[s-1])
}

// normalize clamps the timestamps to be monotonically non-decreasing in
// stage order. Simulated clocks and cross-goroutine stamping can produce
// microscopic inversions; a trace must never report a negative stage.
func (t *Trace) normalize() {
	for s := StageCDC; s < NumStages; s++ {
		if t.Times[s].Before(t.Times[s-1]) {
			t.Times[s] = t.Times[s-1]
		}
	}
}

// MarshalJSON renders the trace with named stage durations for the
// /debug/traces endpoint.
func (t Trace) MarshalJSON() ([]byte, error) {
	stages := make(map[string]float64, NumStages-1)
	for s := StageCDC; s < NumStages; s++ {
		stages[s.String()+"_ms"] = float64(t.StageDur(s).Microseconds()) / 1e3
	}
	return json.Marshal(struct {
		ID              int64              `json:"id"`
		LSN             int64              `json:"lsn"`
		Commit          time.Time          `json:"commit"`
		TotalMS         float64            `json:"total_ms"`
		Stages          map[string]float64 `json:"stages"`
		Vertices        int                `json:"vertices"`
		FanOut          int                `json:"fan_out"`
		Updated         int                `json:"updated"`
		Invalidated     int                `json:"invalidated"`
		FragmentRenders int                `json:"fragment_renders"`
		FragmentReuses  int                `json:"fragment_reuses"`
	}{t.ID, t.LSN, t.Times[StageCommit], float64(t.Total().Microseconds()) / 1e3,
		stages, t.Vertices, t.FanOut, t.Updated, t.Invalidated,
		t.FragmentRenders, t.FragmentReuses})
}

// latencyBounds are the default histogram bucket bounds, in seconds, for
// stage and total latencies: 1ms resolution at the bottom, reaching past
// the 60-second SLO so violations land in real buckets, not overflow.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 20, 30, 45, 60, 90, 120,
}

// Tracer collects propagation traces: a bounded ring of recent traces,
// per-stage latency histograms, and the freshness-SLO monitor. Safe for
// concurrent use.
type Tracer struct {
	slo time.Duration
	now func() time.Time

	mu       sync.Mutex
	ring     []Trace
	next     int
	filled   bool
	inflight map[int64]time.Time // trace ID -> commit time

	stageHist [NumStages]*stats.Histogram // index 0 (commit) unused
	totalHist *stats.Histogram

	recorded   stats.Counter
	violations stats.Counter
	lastMicro  stats.Gauge // most recent commit->push latency, µs; Max() is worst ever

	onViolation func(Trace) // fired (outside mu) for each SLO-violating trace
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithRingSize bounds the recent-trace ring to n entries (default 256).
func WithRingSize(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.ring = make([]Trace, n)
		}
	}
}

// WithSLO sets the freshness objective (default 60s, the paper's
// guarantee). Zero disables violation counting.
func WithSLO(d time.Duration) Option {
	return func(t *Tracer) { t.slo = d }
}

// WithClock substitutes the staleness clock.
func WithClock(now func() time.Time) Option {
	return func(t *Tracer) { t.now = now }
}

// New returns a Tracer with a 256-entry ring and the paper's 60-second
// freshness SLO.
func New(opts ...Option) *Tracer {
	t := &Tracer{
		slo:      60 * time.Second,
		now:      time.Now,
		ring:     make([]Trace, 256),
		inflight: make(map[int64]time.Time),
	}
	for _, o := range opts {
		o(t)
	}
	for s := StageCDC; s < NumStages; s++ {
		t.stageHist[s] = stats.NewHistogram(latencyBounds...)
	}
	t.totalHist = stats.NewHistogram(latencyBounds...)
	return t
}

// SLO returns the configured freshness objective.
func (t *Tracer) SLO() time.Duration { return t.slo }

// SetOnViolation installs a callback fired once per trace whose
// commit-to-push latency exceeds the SLO. The callback runs on the
// recording goroutine after the tracer's lock is released; it must not
// block. Intended for wiring time (the observability journal), before
// propagation starts.
func (t *Tracer) SetOnViolation(fn func(Trace)) {
	t.mu.Lock()
	t.onViolation = fn
	t.mu.Unlock()
}

// Arrive registers an in-flight transaction: committed, seen on the CDC
// feed, not yet propagated. Until Record retires the ID, the transaction
// contributes to WorstInFlight.
func (t *Tracer) Arrive(id int64, commit time.Time) {
	t.mu.Lock()
	t.inflight[id] = commit
	t.mu.Unlock()
}

// Record completes a trace: it is normalized, stored in the ring, its
// stage latencies observed into the histograms, its ID retired from the
// in-flight set, and the SLO evaluated. The hot path — no allocation.
func (t *Tracer) Record(tr Trace) {
	tr.normalize()
	for s := StageCDC; s < NumStages; s++ {
		t.stageHist[s].Observe(tr.StageDur(s).Seconds())
	}
	total := tr.Total()
	t.totalHist.Observe(total.Seconds())
	t.recorded.Inc()
	t.lastMicro.Set(total.Microseconds())
	violated := t.slo > 0 && total > t.slo
	if violated {
		t.violations.Inc()
	}
	t.mu.Lock()
	delete(t.inflight, tr.ID)
	t.ring[t.next] = tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	cb := t.onViolation
	t.mu.Unlock()
	if violated && cb != nil {
		cb(tr)
	}
}

// Recent returns up to n of the most recently recorded traces, newest
// first. n <= 0 means the whole ring.
func (t *Tracer) Recent(n int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.filled {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// RingSize returns the ring capacity.
func (t *Tracer) RingSize() int { return len(t.ring) }

// Recorded returns the total number of traces recorded.
func (t *Tracer) Recorded() int64 { return t.recorded.Value() }

// Violations returns the number of completed traces that exceeded the SLO.
func (t *Tracer) Violations() int64 { return t.violations.Value() }

// InFlight returns the number of transactions seen on the CDC feed but not
// yet propagated.
func (t *Tracer) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inflight)
}

// WorstInFlight returns the age of the oldest unpropagated transaction —
// the staleness bound the site is exposing *right now*. Zero when nothing
// is in flight.
func (t *Tracer) WorstInFlight() time.Duration {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var worst time.Duration
	for _, commit := range t.inflight {
		if d := now.Sub(commit); d > worst {
			worst = d
		}
	}
	return worst
}

// StageHistogram returns the latency histogram for stage s (nil for
// StageCommit, which has no duration).
func (t *Tracer) StageHistogram(s Stage) *stats.Histogram {
	if s <= StageCommit || s >= NumStages {
		return nil
	}
	return t.stageHist[s]
}

// TotalHistogram returns the commit-to-push latency histogram.
func (t *Tracer) TotalHistogram() *stats.Histogram { return t.totalHist }

// RegisterMetrics publishes the tracer into a registry: per-stage latency
// histograms (labeled by stage), the end-to-end latency histogram, the SLO
// violation counter, and live gauges for in-flight count and worst
// staleness.
func (t *Tracer) RegisterMetrics(reg *stats.Registry) {
	for s := StageCDC; s < NumStages; s++ {
		reg.RegisterHistogram("dup_propagation_stage_seconds",
			"per-stage propagation latency (gap from previous stage boundary)",
			stats.Labels{"stage": s.String()}, t.stageHist[s])
	}
	reg.RegisterHistogram("dup_propagation_seconds",
		"end-to-end commit-to-push propagation latency", nil, t.totalHist)
	reg.RegisterCounter("dup_traces_recorded_total",
		"propagation traces recorded", nil, &t.recorded)
	reg.RegisterCounter("dup_freshness_slo_violations_total",
		fmt.Sprintf("traces whose commit-to-push latency exceeded the %s SLO", t.slo),
		nil, &t.violations)
	reg.RegisterGauge("dup_last_propagation_micros",
		"commit-to-push latency of the most recently completed trace, microseconds", nil, &t.lastMicro)
	reg.RegisterFunc("dup_worst_propagation_seconds",
		"worst commit-to-push latency ever completed", nil,
		func() float64 { return float64(t.lastMicro.Max()) / 1e6 })
	reg.RegisterFunc("dup_inflight_transactions",
		"transactions committed but not yet propagated", nil,
		func() float64 { return float64(t.InFlight()) })
	reg.RegisterFunc("dup_worst_inflight_staleness_seconds",
		"age of the oldest unpropagated transaction", nil,
		func() float64 { return t.WorstInFlight().Seconds() })
}

// StageSnapshot is the latency summary of one stage.
type StageSnapshot struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P95   float64 `json:"p95_s"`
	P99   float64 `json:"p99_s"`
}

// Snapshot is a point-in-time summary of the tracer for JSON endpoints.
type Snapshot struct {
	SLOSeconds        float64         `json:"slo_seconds"`
	Recorded          int64           `json:"recorded"`
	Violations        int64           `json:"slo_violations"`
	InFlight          int             `json:"inflight"`
	WorstInFlightSecs float64         `json:"worst_inflight_staleness_s"`
	Total             StageSnapshot   `json:"total"`
	Stages            []StageSnapshot `json:"stages"`
}

func histSnapshot(name string, h *stats.Histogram) StageSnapshot {
	return StageSnapshot{
		Stage: name,
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Snapshot summarizes the tracer.
func (t *Tracer) Snapshot() Snapshot {
	s := Snapshot{
		SLOSeconds:        t.slo.Seconds(),
		Recorded:          t.Recorded(),
		Violations:        t.Violations(),
		InFlight:          t.InFlight(),
		WorstInFlightSecs: t.WorstInFlight().Seconds(),
		Total:             histSnapshot("total", t.totalHist),
	}
	for st := StageCDC; st < NumStages; st++ {
		s.Stages = append(s.Stages, histSnapshot(st.String(), t.stageHist[st]))
	}
	return s
}
