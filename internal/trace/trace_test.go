package trace

import (
	"encoding/json"
	"testing"
	"time"
)

// mk builds a trace whose stage boundaries are base plus the given offsets
// (one per stage, in order).
func mk(id, lsn int64, base time.Time, offsets [NumStages]time.Duration) Trace {
	tr := Trace{ID: id, LSN: lsn}
	for s := Stage(0); s < NumStages; s++ {
		tr.Times[s] = base.Add(offsets[s])
	}
	return tr
}

func TestStageString(t *testing.T) {
	want := []string{"commit", "cdc", "batch", "dup", "render", "push"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, s.String(), want[i])
		}
	}
}

func TestTraceStageDurations(t *testing.T) {
	base := time.Unix(1000, 0)
	tr := mk(1, 1, base, [NumStages]time.Duration{
		0, 10 * time.Millisecond, 30 * time.Millisecond,
		35 * time.Millisecond, 95 * time.Millisecond, 100 * time.Millisecond,
	})
	if tr.Total() != 100*time.Millisecond {
		t.Fatalf("Total = %v, want 100ms", tr.Total())
	}
	wantDur := map[Stage]time.Duration{
		StageCDC:    10 * time.Millisecond,
		StageBatch:  20 * time.Millisecond,
		StageDUP:    5 * time.Millisecond,
		StageRender: 60 * time.Millisecond,
		StagePush:   5 * time.Millisecond,
	}
	for s, want := range wantDur {
		if got := tr.StageDur(s); got != want {
			t.Fatalf("StageDur(%v) = %v, want %v", s, got, want)
		}
	}
	if tr.StageDur(StageCommit) != 0 {
		t.Fatalf("StageDur(commit) = %v, want 0", tr.StageDur(StageCommit))
	}
}

func TestRecordNormalizesInvertedTimestamps(t *testing.T) {
	tr := New(WithRingSize(4))
	base := time.Unix(1000, 0)
	// render stamped before dup (cross-goroutine clock skew).
	in := mk(1, 1, base, [NumStages]time.Duration{
		0, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond,
	})
	tr.Record(in)
	got := tr.Recent(1)[0]
	for s := StageCDC; s < NumStages; s++ {
		if got.Times[s].Before(got.Times[s-1]) {
			t.Fatalf("stage %v timestamp precedes %v after normalize", s, s-1)
		}
	}
	if got.StageDur(StageRender) != 0 {
		t.Fatalf("inverted stage duration = %v, want clamped to 0", got.StageDur(StageRender))
	}
}

func TestRingBoundsMemoryUnder10kTransactions(t *testing.T) {
	const ringSize, txCount = 256, 10_000
	tr := New(WithRingSize(ringSize))
	base := time.Unix(1000, 0)
	for i := 0; i < txCount; i++ {
		tr.Record(mk(int64(i), int64(i), base.Add(time.Duration(i)*time.Millisecond),
			[NumStages]time.Duration{0, 1, 2, 3, 4, 5}))
	}
	if tr.RingSize() != ringSize {
		t.Fatalf("RingSize = %d, want %d (ring must not grow)", tr.RingSize(), ringSize)
	}
	if got := tr.Recorded(); got != txCount {
		t.Fatalf("Recorded = %d, want %d", got, txCount)
	}
	all := tr.Recent(0)
	if len(all) != ringSize {
		t.Fatalf("Recent(0) = %d traces, want %d", len(all), ringSize)
	}
	// Newest first: the last recorded ID leads.
	if all[0].ID != txCount-1 {
		t.Fatalf("Recent[0].ID = %d, want %d", all[0].ID, txCount-1)
	}
	if all[ringSize-1].ID != txCount-ringSize {
		t.Fatalf("oldest retained ID = %d, want %d", all[ringSize-1].ID, txCount-ringSize)
	}
}

func TestRecordHotPathDoesNotAllocate(t *testing.T) {
	tr := New()
	base := time.Unix(1000, 0)
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		tr.Record(mk(i, i, base, [NumStages]time.Duration{0, 1, 2, 3, 4, 5}))
	})
	if allocs > 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestSLOViolations(t *testing.T) {
	tr := New(WithSLO(60 * time.Second))
	base := time.Unix(1000, 0)
	tr.Record(mk(1, 1, base, [NumStages]time.Duration{0, 0, 0, 0, 0, 30 * time.Second}))
	if tr.Violations() != 0 {
		t.Fatalf("violations after 30s trace = %d, want 0", tr.Violations())
	}
	tr.Record(mk(2, 2, base, [NumStages]time.Duration{0, 0, 0, 0, 0, 61 * time.Second}))
	if tr.Violations() != 1 {
		t.Fatalf("violations after 61s trace = %d, want 1", tr.Violations())
	}
	// SLO 0 disables counting.
	tr2 := New(WithSLO(0))
	tr2.Record(mk(3, 3, base, [NumStages]time.Duration{0, 0, 0, 0, 0, time.Hour}))
	if tr2.Violations() != 0 {
		t.Fatalf("violations with SLO disabled = %d, want 0", tr2.Violations())
	}
}

func TestWorstInFlightStaleness(t *testing.T) {
	now := time.Unix(2000, 0)
	tr := New(WithClock(func() time.Time { return now }))
	if tr.WorstInFlight() != 0 {
		t.Fatalf("WorstInFlight empty = %v, want 0", tr.WorstInFlight())
	}
	tr.Arrive(1, now.Add(-10*time.Second))
	tr.Arrive(2, now.Add(-45*time.Second))
	tr.Arrive(3, now.Add(-2*time.Second))
	if got := tr.WorstInFlight(); got != 45*time.Second {
		t.Fatalf("WorstInFlight = %v, want 45s", got)
	}
	if tr.InFlight() != 3 {
		t.Fatalf("InFlight = %d, want 3", tr.InFlight())
	}
	// Retiring the oldest via Record shrinks the worst case.
	done := Trace{ID: 2}
	done.Times[StageCommit] = now.Add(-45 * time.Second)
	done.Times[StagePush] = now
	tr.Record(done)
	if got := tr.WorstInFlight(); got != 10*time.Second {
		t.Fatalf("WorstInFlight after retire = %v, want 10s", got)
	}
}

func TestStageHistogramsObserve(t *testing.T) {
	tr := New()
	base := time.Unix(1000, 0)
	for i := 0; i < 50; i++ {
		tr.Record(mk(int64(i), int64(i), base, [NumStages]time.Duration{
			0, 10 * time.Millisecond, 20 * time.Millisecond,
			30 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond,
		}))
	}
	for s := StageCDC; s < NumStages; s++ {
		h := tr.StageHistogram(s)
		if h.Count() != 50 {
			t.Fatalf("stage %v histogram count = %d, want 50", s, h.Count())
		}
	}
	if tr.StageHistogram(StageCommit) != nil {
		t.Fatal("StageHistogram(commit) should be nil")
	}
	total := tr.TotalHistogram()
	if total.Count() != 50 {
		t.Fatalf("total histogram count = %d, want 50", total.Count())
	}
	if p50 := total.Quantile(0.5); p50 < 0.025 || p50 > 0.1 {
		t.Fatalf("total p50 = %v, want near 50ms", p50)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	tr := New()
	base := time.Unix(1000, 0)
	tr.Record(Trace{
		ID: 7, LSN: 9,
		Times: [NumStages]time.Time{
			base, base.Add(time.Millisecond), base.Add(2 * time.Millisecond),
			base.Add(3 * time.Millisecond), base.Add(4 * time.Millisecond),
			base.Add(5 * time.Millisecond),
		},
		Vertices: 2, FanOut: 11, Updated: 10, Invalidated: 1,
	})
	snap := tr.Snapshot()
	if snap.Recorded != 1 || len(snap.Stages) != int(NumStages)-1 {
		t.Fatalf("snapshot recorded=%d stages=%d", snap.Recorded, len(snap.Stages))
	}
	b, err := json.Marshal(tr.Recent(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["id"].(float64) != 7 || decoded["fan_out"].(float64) != 11 {
		t.Fatalf("trace JSON = %s", b)
	}
	stages := decoded["stages"].(map[string]any)
	for _, k := range []string{"cdc_ms", "batch_ms", "dup_ms", "render_ms", "push_ms"} {
		if _, ok := stages[k]; !ok {
			t.Fatalf("trace JSON missing stage %q: %s", k, b)
		}
	}
}
