package deploy

import (
	"context"
	"testing"
	"time"

	"dupserve/internal/core"
	"dupserve/internal/httpserver"
	"dupserve/internal/overload"
)

func newOverloadDeployment(t *testing.T, ocfg overload.Config, budget time.Duration) *Deployment {
	t.Helper()
	cfg := NaganoConfig(smallSpec())
	for i := range cfg.Complexes {
		cfg.Complexes[i].ReplicationDelay = time.Millisecond
	}
	cfg.BatchWindow = 2 * time.Millisecond
	cfg.Policy = core.PolicyInvalidate
	d, err := New(cfg, WithOverload(ocfg, budget))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	if err := d.Prime(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWithOverloadArmsEveryNode(t *testing.T) {
	d := newOverloadDeployment(t, overload.Config{MaxConcurrent: 2}, time.Minute)
	seen := make(map[*overload.Limiter]bool)
	for _, cx := range d.Complexes() {
		for _, node := range cx.Cluster.Nodes() {
			srv, ok := node.Server().(*httpserver.Server)
			if !ok {
				t.Fatalf("node %s does not wrap an httpserver.Server", node.Name())
			}
			lim := srv.Limiter()
			if lim == nil {
				t.Fatalf("node %s has no admission limiter", node.Name())
			}
			if seen[lim] {
				t.Fatalf("node %s shares a limiter with another node", node.Name())
			}
			seen[lim] = true
		}
	}
}

func TestPolicyReachesEveryEngine(t *testing.T) {
	d := newOverloadDeployment(t, overload.Config{MaxConcurrent: 2}, time.Minute)
	for _, cx := range d.Complexes() {
		if got := cx.Engine.Policy(); got != core.PolicyInvalidate {
			t.Fatalf("complex %s engine policy = %v, want invalidate", cx.Name, got)
		}
	}
}

func TestAdviseLoadWithdrawsAndRestores(t *testing.T) {
	d := newOverloadDeployment(t, overload.Config{MaxConcurrent: 2}, time.Minute)

	loads := d.AdviseLoad()
	if len(loads) != len(d.Complexes()) {
		t.Fatalf("AdviseLoad covered %d complexes, want %d", len(loads), len(d.Complexes()))
	}
	for name, load := range loads {
		if load >= 1 {
			t.Fatalf("idle complex %s reports load %v", name, load)
		}
		if shed := d.Router.LoadShedAddrs(name); len(shed) != 0 {
			t.Fatalf("idle complex %s has withdrawn addrs %v", name, shed)
		}
	}

	// Saturate every limiter slot in tokyo: its aggregate load crosses the
	// shed threshold, so the next advisor sweep withdraws addresses.
	cx, _ := d.Complex("tokyo")
	var releases []func()
	for _, node := range cx.Cluster.Nodes() {
		lim := node.Server().(*httpserver.Server).Limiter()
		for i := 0; i < 2; i++ {
			release, err := lim.TryAcquire()
			if err != nil {
				t.Fatal(err)
			}
			releases = append(releases, release)
		}
	}
	loads = d.AdviseLoad()
	if loads["tokyo"] < 1 {
		t.Fatalf("saturated tokyo reports load %v, want >= 1", loads["tokyo"])
	}
	if shed := d.Router.LoadShedAddrs("tokyo"); len(shed) == 0 {
		t.Fatal("saturated complex kept all addresses advertised")
	}

	// The surge clears; the next sweep re-advertises everything.
	for _, release := range releases {
		release()
	}
	if loads = d.AdviseLoad(); loads["tokyo"] >= 1 {
		t.Fatalf("drained tokyo reports load %v", loads["tokyo"])
	}
	if shed := d.Router.LoadShedAddrs("tokyo"); len(shed) != 0 {
		t.Fatalf("drained complex still sheds %v", shed)
	}
}
