package deploy

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"dupserve/internal/httpserver"
	"dupserve/internal/routing"
	"dupserve/internal/site"
)

func smallSpec() site.Spec {
	return site.Spec{
		Sports: 2, EventsPerSport: 3, Athletes: 30, Countries: 6,
		NewsStories: 5, Days: 3, EventsPerAthlete: 1, Languages: []string{"en"},
	}
}

func newDeployment(t *testing.T) *Deployment {
	t.Helper()
	cfg := NaganoConfig(smallSpec())
	// Shrink WAN delays so tests are fast but still exercise the path.
	for i := range cfg.Complexes {
		cfg.Complexes[i].ReplicationDelay = time.Millisecond
	}
	cfg.BatchWindow = 2 * time.Millisecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	if err := d.Prime(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Spec: smallSpec()}); err == nil {
		t.Fatal("empty complex list accepted")
	}
	cfg := Config{Spec: smallSpec(), Complexes: []ComplexSpec{
		{Name: "a", ChainFrom: "missing"},
	}}
	if _, err := New(cfg); err == nil {
		t.Fatal("chain from unknown complex accepted")
	}
}

func TestPrimeWarmsEveryComplex(t *testing.T) {
	d := newDeployment(t)
	for _, cx := range d.Complexes() {
		agg := cx.Cluster.Caches.AggregateStats()
		if agg.Items == 0 {
			t.Fatalf("complex %s not primed", cx.Name)
		}
	}
	// Every request from every region is a hit immediately after priming.
	for _, region := range []routing.Region{routing.RegionUS, routing.RegionJapan, routing.RegionEurope} {
		obj, outcome, name, err := d.Serve(region, "/en/home/day01")
		if err != nil || outcome != httpserver.OutcomeHit {
			t.Fatalf("region %s: %v %v (complex %s)", region, outcome, err, name)
		}
		if len(obj.Value) == 0 {
			t.Fatal("empty page")
		}
	}
}

func TestGeographicServing(t *testing.T) {
	d := newDeployment(t)
	for i := 0; i < 24; i++ {
		_, _, name, err := d.Serve(routing.RegionJapan, "/en/medals")
		if err != nil {
			t.Fatal(err)
		}
		if name != "tokyo" {
			t.Fatalf("japan served by %s", name)
		}
	}
}

func TestResultPropagatesToEveryComplex(t *testing.T) {
	d := newDeployment(t)
	ev := d.MasterSite.Events[0]
	gold := ev.Participants[0]
	if _, err := d.MasterSite.RecordResult(ev, gold, ev.Participants[1], ev.Participants[2], "199.9"); err != nil {
		t.Fatal(err)
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("freshness timeout")
	}
	page := "/en/sports/" + ev.Sport + "/" + ev.Key
	for _, region := range []routing.Region{routing.RegionUS, routing.RegionJapan, routing.RegionEurope, routing.RegionAsia} {
		obj, outcome, name, err := d.Serve(region, page)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != httpserver.OutcomeHit {
			t.Fatalf("region %s (complex %s): outcome %v, want hit (update-in-place)", region, name, outcome)
		}
		if !strings.Contains(string(obj.Value), gold) {
			t.Fatalf("complex %s serves stale page: %q", name, obj.Value)
		}
	}
}

func TestChainedComplexesReceiveViaSchaumburg(t *testing.T) {
	d := newDeployment(t)
	if _, err := d.MasterSite.PublishNews(0, "Chained headline", "body"); err != nil {
		t.Fatal(err)
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("freshness timeout")
	}
	for _, name := range []string{"columbus", "bethesda"} {
		cx, _ := d.Complex(name)
		if cx.Replica.LSN() != d.Master.LSN() {
			t.Fatalf("%s LSN %d, master %d", name, cx.Replica.LSN(), d.Master.LSN())
		}
		// Served from the chained complex's own cache.
		c := cx.Cluster.Caches.Members()[0]
		obj, ok := c.Peek("/en/news/n000")
		if !ok || !strings.Contains(string(obj.Value), "Chained headline") {
			t.Fatalf("%s cache = %v %v", name, ok, obj)
		}
	}
}

func TestHitRateStays100UnderLiveUpdates(t *testing.T) {
	d := newDeployment(t)
	// Interleave updates and traffic; every read must hit.
	for i, ev := range d.MasterSite.Events {
		if _, err := d.MasterSite.RecordPartial(ev, ev.Participants[i%len(ev.Participants)], fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
		if !d.WaitFresh(10 * time.Second) {
			t.Fatal("freshness timeout")
		}
		for j := 0; j < 10; j++ {
			_, outcome, _, err := d.Serve(routing.RegionUS, "/en/sports/"+ev.Sport+"/"+ev.Key)
			if err != nil || outcome != httpserver.OutcomeHit {
				t.Fatalf("update %d read %d: %v %v", i, j, outcome, err)
			}
		}
	}
	agg := d.Stats()
	if agg.Misses != 0 {
		t.Fatalf("misses = %d, want 0", agg.Misses)
	}
}

func TestComplexFailureServedElsewhere(t *testing.T) {
	d := newDeployment(t)
	d.FailComplex("tokyo")
	for i := 0; i < 24; i++ {
		_, _, name, err := d.Serve(routing.RegionJapan, "/en/medals")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if name == "tokyo" {
			t.Fatal("served by failed complex")
		}
	}
	// Recovery re-advertises and rewarms the crashed caches.
	if err := d.RecoverComplex("tokyo"); err != nil {
		t.Fatal(err)
	}
	_, outcome, name, err := d.Serve(routing.RegionJapan, "/en/medals")
	if err != nil || name != "tokyo" || outcome != httpserver.OutcomeHit {
		t.Fatalf("after recovery: %v %s %v", outcome, name, err)
	}
	// Helpers tolerate unknown names.
	d.FailComplex("atlantis")
	if err := d.RecoverComplex("atlantis"); err == nil {
		t.Fatal("recover of unknown complex should error")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	d := newDeployment(t)
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestFreshnessLatencyIsSeconds(t *testing.T) {
	// The paper: "updated Web pages ... within seconds". With millisecond
	// WAN delays the whole pipeline completes well inside a second.
	d := newDeployment(t)
	ev := d.MasterSite.Events[1]
	start := time.Now()
	if _, err := d.MasterSite.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "1"); err != nil {
		t.Fatal(err)
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("freshness timeout")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("freshness took %v", el)
	}
}

func TestRenderWorkersDeployment(t *testing.T) {
	cfg := NaganoConfig(smallSpec())
	cfg.RenderWorkers = 4
	for i := range cfg.Complexes {
		cfg.Complexes[i].ReplicationDelay = time.Millisecond
	}
	cfg.BatchWindow = 2 * time.Millisecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := d.Prime(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ev := d.MasterSite.Events[0]
	if _, err := d.MasterSite.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "1"); err != nil {
		t.Fatal(err)
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("freshness timeout with parallel rendering")
	}
	page := "/en/sports/" + ev.Sport + "/" + ev.Key
	obj, outcome, _, err := d.Serve(routing.RegionUS, page)
	if err != nil || outcome != httpserver.OutcomeHit {
		t.Fatalf("serve = %v %v", outcome, err)
	}
	if !strings.Contains(string(obj.Value), ev.Participants[0]) {
		t.Fatal("stale page under parallel rendering")
	}
}
