package deploy

import (
	"context"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/fault"
)

// faultyDeployment builds a Nagano-shaped deployment with fault injection
// armed through the given injector.
func faultyDeployment(t *testing.T, inj *fault.Injector, opts ...Option) *Deployment {
	t.Helper()
	cfg := NaganoConfig(smallSpec())
	for i := range cfg.Complexes {
		cfg.Complexes[i].ReplicationDelay = time.Millisecond
	}
	cfg.BatchWindow = 2 * time.Millisecond
	opts = append([]Option{
		WithFaults(inj),
		WithRetryPolicy(cache.RetryPolicy{
			MaxAttempts: 3,
			Backoff:     50 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Sleep:       func(time.Duration) {},
		}),
	}, opts...)
	d, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	if err := d.Prime(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMonitorCrashIsSupervisedAndRecovers: with crashes armed, the
// deployment restarts dead monitors from their checkpoints; once the fault
// clears, every complex converges to the master with nothing lost.
func TestMonitorCrashIsSupervisedAndRecovers(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 23})
	d := faultyDeployment(t, inj)

	inj.SetRate(fault.KindMonitorCrash, 1)
	ev := d.MasterSite.Events[0]
	if _, err := d.MasterSite.RecordPartial(ev, ev.Participants[0], "1.0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.MonitorRestarts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no monitor restart despite certain crashes")
		}
		time.Sleep(time.Millisecond)
	}
	inj.ClearRates()

	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("deployment never converged after crashes cleared")
	}
	target := d.Master.LSN()
	for _, cx := range d.Complexes() {
		mon := cx.Monitor()
		if mon == nil {
			t.Fatalf("%s has no live monitor after recovery", cx.Name)
		}
		if mon.LastLSN() != target {
			t.Fatalf("%s monitor LSN %d, master %d — committed work lost",
				cx.Name, mon.LastLSN(), target)
		}
	}
	if d.MonitorRestarts() < 1 {
		t.Fatalf("restarts = %d", d.MonitorRestarts())
	}
}

// TestPartitionHealsWithZeroLoss: a partitioned replication link queues
// commits; the heal ships them all.
func TestPartitionHealsWithZeroLoss(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 29})
	d := faultyDeployment(t, inj)
	cx, ok := d.Complex("tokyo")
	if !ok {
		t.Fatal("no tokyo complex")
	}

	inj.SetPartition(cx.Link, true)
	for i, ev := range d.MasterSite.Events[:3] {
		if _, err := d.MasterSite.RecordPartial(ev, ev.Participants[0], "2.0"); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	// The partitioned replica must fall behind while others converge.
	time.Sleep(20 * time.Millisecond)
	if cx.Replica.LSN() == d.Master.LSN() {
		t.Fatal("partitioned link still shipped")
	}

	inj.SetPartition(cx.Link, false)
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("no convergence after heal")
	}
	if cx.Replica.LSN() != d.Master.LSN() {
		t.Fatalf("tokyo LSN %d, master %d after heal", cx.Replica.LSN(), d.Master.LSN())
	}
}

// TestSLOViolationsReturnToZeroAfterFaultClears: transactions delayed past
// the freshness SLO by a partition are recorded as violations, but once the
// fault clears a fresh transaction propagates with zero new violations.
func TestSLOViolationsReturnToZeroAfterFaultClears(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 31})
	d := faultyDeployment(t, inj, WithTracing(50*time.Millisecond))
	cx, _ := d.Complex("tokyo")

	inj.SetPartition(cx.Link, true)
	ev := d.MasterSite.Events[0]
	if _, err := d.MasterSite.RecordPartial(ev, ev.Participants[0], "3.0"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // hold well past the 50ms SLO
	inj.SetPartition(cx.Link, false)
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("no convergence after heal")
	}
	if cx.Tracer == nil {
		t.Fatal("tracing enabled but no tracer")
	}
	if cx.Tracer.Violations() == 0 {
		t.Fatal("held transaction did not register an SLO violation")
	}

	// Healthy pipeline: a probe transaction adds zero violations.
	base := int64(0)
	for _, c := range d.Complexes() {
		if c.Tracer != nil {
			base += c.Tracer.Violations()
		}
	}
	if _, err := d.MasterSite.RecordPartial(ev, ev.Participants[1], "3.1"); err != nil {
		t.Fatal(err)
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("probe did not converge")
	}
	after := int64(0)
	for _, c := range d.Complexes() {
		if c.Tracer != nil {
			after += c.Tracer.Violations()
		}
	}
	if after != base {
		t.Fatalf("healthy probe added %d SLO violations", after-base)
	}
}

// TestPushFaultsNeverServeStale: with push failures armed, broadcasts may
// downgrade to invalidations — but no cache may keep a version older than
// the committed update.
func TestPushFaultsNeverServeStale(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 37})
	d := faultyDeployment(t, inj)

	inj.SetRate(fault.KindPush, 0.5)
	ev := d.MasterSite.Events[1]
	tx, err := d.MasterSite.RecordPartial(ev, ev.Participants[0], "4.0")
	if err != nil {
		t.Fatal(err)
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("no convergence under push faults")
	}
	inj.ClearRates()

	page := cache.Key("/en/sports/" + ev.Sport + "/" + ev.Key)
	for _, cx := range d.Complexes() {
		for _, c := range cx.Cluster.Caches.Members() {
			if obj, cached := c.Peek(page); cached && obj.Version < tx.LSN {
				t.Fatalf("%s/%s holds stale %s (v%d < v%d)",
					cx.Name, c.Name(), page, obj.Version, tx.LSN)
			}
		}
	}
}
