package deploy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
	"dupserve/internal/recovery"
	"dupserve/internal/routing"
)

// recoveryDeployment builds a single-complex plant (three nodes, so a dead
// one has two peers) armed with the recovery protocol.
func recoveryDeployment(t *testing.T, p recovery.Policy) *Deployment {
	t.Helper()
	d, err := New(Config{
		Spec: smallSpec(),
		Complexes: []ComplexSpec{
			{Name: "tokyo", Frames: 1, NodesPerFrame: 3, ReplicationDelay: time.Millisecond,
				Distance: map[routing.Region]int{
					routing.RegionJapan: 10, routing.RegionAsia: 10, routing.RegionUS: 10,
					routing.RegionEurope: 10, routing.RegionOther: 10,
				}},
		},
		BatchWindow: 2 * time.Millisecond,
	}, WithRecovery(p))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	if err := d.Prime(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRecoveredNodeNeverServesBelowPreFailureLSN is the protocol's
// acceptance invariant, enforced end-to-end: record every page version the
// victim held before dying, commit a burst while it is down (its cache is
// detached, so the pushes miss it), readmit it through the warmup, and
// verify every page it now serves is a hit at a version no older than its
// own pre-failure copy.
func TestRecoveredNodeNeverServesBelowPreFailureLSN(t *testing.T) {
	d := recoveryDeployment(t, recovery.Policy{
		Warm: true, FailThreshold: 1, ReadmitThreshold: 1, RampStart: 1,
	})
	cx := d.Complexes()[0]
	victim := cx.Cluster.Nodes()[0]
	vcache, ok := cx.Cluster.Caches.Get(victim.Name())
	if !ok {
		t.Fatalf("no cache for %s", victim.Name())
	}
	pages := cx.Site.Pages()
	pre := make(map[string]int64, len(pages))
	for _, p := range pages {
		obj, cached := vcache.Peek(cache.Key(p))
		if !cached {
			t.Fatalf("page %s not primed on %s", p, victim.Name())
		}
		pre[p] = obj.Version
	}

	victim.Fail()
	cx.Cluster.Advise()
	if got := cx.Cluster.Healthy(); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}

	events := d.MasterSite.Events
	for i := 0; i < 6; i++ {
		ev := events[i%len(events)]
		if _, err := d.MasterSite.RecordPartial(ev,
			ev.Participants[i%len(ev.Participants)], fmt.Sprintf("floor.%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.WaitFresh(10 * time.Second) {
		t.Fatal("plant did not converge while victim was down")
	}

	victim.Recover()
	if !victim.WaitReady(10 * time.Second) {
		t.Fatal("victim never became ready")
	}
	cx.Cluster.Advise()
	if st, _ := cx.Cluster.Dispatcher.MemberState(victim.Name()); st != dispatch.StateUp {
		t.Fatalf("victim state = %s, want up", st)
	}

	for _, p := range pages {
		obj, outcome, err := victim.Serve(p)
		if err != nil {
			t.Fatalf("post-rejoin serve %s: %v", p, err)
		}
		if outcome != httpserver.OutcomeHit {
			t.Errorf("post-rejoin %s: outcome %s, want hit (warmup must prevent the miss storm)", p, outcome)
		}
		if obj.Version < pre[p] {
			t.Errorf("post-rejoin %s: version %d below pre-failure %d (LSN-floor violation)",
				p, obj.Version, pre[p])
		}
	}
	if cx.Recovery == nil || cx.Recovery.Warmups.Value() != 1 {
		t.Fatalf("recovery metrics missing or warmups != 1: %+v", cx.Recovery)
	}
}

// TestDetachedCacheMissesPushesWhileDown: the recovery wiring detaches a
// failed node's cache from the broadcast group (a dead machine receives no
// pushes) and the warmup's re-attach restores membership.
func TestDetachedCacheMissesPushesWhileDown(t *testing.T) {
	d := recoveryDeployment(t, recovery.Policy{
		Warm: true, FailThreshold: 1, ReadmitThreshold: 1, RampStart: 1,
	})
	cx := d.Complexes()[0]
	victim := cx.Cluster.Nodes()[0]
	group := cx.Cluster.Caches

	before := group.Len()
	victim.Fail()
	if got := group.Len(); got != before-1 {
		t.Fatalf("group members = %d after fail, want %d (cache detached)", got, before-1)
	}
	victim.Recover()
	if !victim.WaitReady(10 * time.Second) {
		t.Fatal("victim never became ready")
	}
	if got := group.Len(); got != before {
		t.Fatalf("group members = %d after rejoin, want %d (cache re-attached)", got, before)
	}
}

// TestColdPolicyRejoinsEmpty: with Warm off the node rejoins with an empty
// cache — the baseline the benchmark compares against — and every
// post-rejoin serve is a render.
func TestColdPolicyRejoinsEmpty(t *testing.T) {
	d := recoveryDeployment(t, recovery.Policy{
		Warm: false, FailThreshold: 1, ReadmitThreshold: 1, RampStart: 1,
	})
	cx := d.Complexes()[0]
	victim := cx.Cluster.Nodes()[0]
	victim.Fail()
	cx.Cluster.Advise()
	victim.Recover()
	if !victim.WaitReady(10 * time.Second) {
		t.Fatal("victim never became ready")
	}
	page := cx.Site.Pages()[0]
	_, outcome, err := victim.Serve(page)
	if err != nil {
		t.Fatal(err)
	}
	if outcome == httpserver.OutcomeHit {
		t.Fatal("cold rejoin served a hit, want a miss (empty cache)")
	}
}
